#!/usr/bin/env python3
"""Render a per-round critical-path attribution JSONL file.

Input is the file written by ObsConfig::attribution_path (or the
--attribution-out flag of fig4_vgg / fig4_resnet / fault_sweep /
churn_sweep / platform_scaling): one JSON object per round with the
simulated-time split across {platform_compute, uplink, server_queue,
server_compute, downlink, retransmit, deadline_slack} plus the straggler
platform (docs/OBSERVABILITY.md has the schema).

Prints a p50/p99 table per segment and the top straggler platforms, and
verifies the analyzer's core invariant on every round — the segments must
sum to the round's simulated duration (within --tolerance, default 1 µs).
Exits nonzero on an empty file or any violated round, so CI can gate on it:

    build/bench/fig4_vgg --rounds 10 --attribution-out attribution.jsonl
    python3 scripts/trace_report.py attribution.jsonl
"""

import argparse
import json
import sys
from pathlib import Path

SEGMENTS = [
    "platform_compute",
    "uplink",
    "server_queue",
    "server_compute",
    "downlink",
    "retransmit",
    "deadline_slack",
]


def load_rounds(path: Path) -> list:
    rounds = []
    for lineno, line in enumerate(path.read_text().splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        try:
            obj = json.loads(line)
        except json.JSONDecodeError as e:
            raise SystemExit(f"{path}:{lineno}: invalid JSON: {e}")
        for key in ("round", "duration_s", "segments"):
            if key not in obj:
                raise SystemExit(f"{path}:{lineno}: missing '{key}'")
        rounds.append(obj)
    return rounds


def check_sums(rounds: list, tolerance: float) -> list:
    """Returns [(round, duration, segment_sum)] for every violated round."""
    bad = []
    for r in rounds:
        total = sum(float(r["segments"].get(s, 0.0)) for s in SEGMENTS)
        if abs(total - float(r["duration_s"])) > tolerance:
            bad.append((r["round"], float(r["duration_s"]), total))
    return bad


def percentile(sorted_values: list, q: float) -> float:
    """Nearest-rank percentile on an already-sorted list."""
    if not sorted_values:
        return 0.0
    rank = max(0, min(len(sorted_values) - 1,
                      round(q * (len(sorted_values) - 1))))
    return sorted_values[rank]


def print_segment_table(rounds: list) -> None:
    total_sim = sum(float(r["duration_s"]) for r in rounds)
    print(f"{len(rounds)} rounds, {total_sim:.3f} simulated seconds total\n")
    header = f"{'segment':<18} {'total s':>10} {'share':>7} {'p50 s':>10} {'p99 s':>10}"
    print(header)
    print("-" * len(header))
    for seg in SEGMENTS:
        values = sorted(float(r["segments"].get(seg, 0.0)) for r in rounds)
        total = sum(values)
        share = total / total_sim if total_sim > 0 else 0.0
        print(f"{seg:<18} {total:>10.3f} {share:>6.1%} "
              f"{percentile(values, 0.50):>10.4f} "
              f"{percentile(values, 0.99):>10.4f}")


def print_stragglers(rounds: list, top: int) -> None:
    tallies = {}  # platform -> [rounds_as_straggler, seconds, {reason: n}]
    for r in rounds:
        s = r.get("straggler")
        if not s:
            continue
        entry = tallies.setdefault(s["platform"], [0, 0.0, {}])
        entry[0] += 1
        entry[1] += float(s["seconds"])
        entry[2][s["reason"]] = entry[2].get(s["reason"], 0) + 1
    if not tallies:
        print("\nno straggler identified in any round")
        return
    print(f"\ntop stragglers ({sum(e[0] for e in tallies.values())} "
          f"attributed rounds):")
    ranked = sorted(tallies.items(), key=lambda kv: (-kv[1][0], kv[0]))
    for platform, (count, seconds, reasons) in ranked[:top]:
        dominant = max(sorted(reasons), key=lambda k: reasons[k])
        print(f"  {platform:<16} straggler in {count} round(s), "
              f"{seconds:.3f} s attributed, mostly {dominant}")


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("jsonl", help="attribution JSONL file to render")
    ap.add_argument("--top", type=int, default=5,
                    help="straggler platforms to list (default 5)")
    ap.add_argument("--tolerance", type=float, default=1e-6,
                    help="allowed |sum(segments) - duration| per round in "
                         "seconds (default 1 µs)")
    args = ap.parse_args()

    path = Path(args.jsonl)
    if not path.exists():
        raise SystemExit(f"{path}: no such file")
    rounds = load_rounds(path)
    if not rounds:
        raise SystemExit(f"{path}: no per-round attribution records")

    print_segment_table(rounds)
    print_stragglers(rounds, args.top)

    bad = check_sums(rounds, args.tolerance)
    if bad:
        for rnd, duration, total in bad:
            sys.stderr.write(
                f"round {rnd}: segments sum to {total:.9f} s but the round "
                f"lasted {duration:.9f} s (tolerance {args.tolerance})\n")
        raise SystemExit(
            f"{len(bad)} round(s) violate the sum-to-duration invariant")
    print(f"\nOK: all {len(rounds)} rounds sum to their duration "
          f"(±{args.tolerance} s)")


if __name__ == "__main__":
    main()
