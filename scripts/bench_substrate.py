#!/usr/bin/env python3
"""Record a substrate benchmark trajectory point into BENCH_substrate.json.

Runs bench/micro_substrate with --benchmark_format=json (or distills an
already-captured JSON file via --from-json), reduces each benchmark to
ns/op plus the throughput counter it reports (GFLOP/s for the GEMM
families, items/s for layers, bytes/s for the codec), and merges the
result under a label into the committed BENCH_substrate.json.

This file is a trajectory, not a gate: CI runs a quick subset and uploads
the raw JSON as an artifact, but nothing fails on a slow machine. Refresh
the committed numbers from an idle machine with:

    cmake -B build -S . -DCMAKE_BUILD_TYPE=Release && cmake --build build -j
    python3 scripts/bench_substrate.py --bin build/bench/micro_substrate \
        --label my-change --min-time 1.0

See docs/PERFORMANCE.md for what each benchmark family measures.
"""

import argparse
import json
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_OUT = REPO_ROOT / "BENCH_substrate.json"

# Benchmarks whose items_per_second counter is FLOPs/s (SetItemsProcessed
# of 2*m*n*k); everything else reports domain items (samples, bytes).
GEMM_PREFIXES = ("BM_Gemm",)


def run_bench(binary: str, bench_filter: str, min_time: float,
              repetitions: int) -> dict:
    cmd = [
        binary,
        "--benchmark_format=json",
        f"--benchmark_min_time={min_time}",
        f"--benchmark_repetitions={repetitions}",
    ]
    if bench_filter:
        cmd.append(f"--benchmark_filter={bench_filter}")
    proc = subprocess.run(cmd, capture_output=True, text=True, check=False)
    if proc.returncode != 0:
        sys.stderr.write(proc.stderr)
        raise SystemExit(f"benchmark run failed ({proc.returncode})")
    return json.loads(proc.stdout)


def distill(raw: dict) -> dict:
    """Reduce google-benchmark JSON to {name: {ns_per_op, ...throughput}}.

    With repetitions, keeps the fastest repetition per benchmark: on a
    shared machine the minimum is the closest estimate of unperturbed
    speed, and the trajectory should track the code, not the neighbors.
    """
    out = {}
    for b in raw.get("benchmarks", []):
        if b.get("run_type") == "aggregate":
            continue
        name = b["name"].split("/repeats:")[0]
        prev = out.get(name)
        if prev is not None and prev["ns_per_op"] <= float(b["real_time"]):
            continue
        entry = {"ns_per_op": round(float(b["real_time"]), 1)}
        ips = b.get("items_per_second")
        if ips is not None:
            if name.startswith(GEMM_PREFIXES):
                entry["gflops"] = round(float(ips) / 1e9, 2)
            else:
                entry["items_per_second"] = round(float(ips), 1)
        bps = b.get("bytes_per_second")
        if bps is not None:
            entry["mb_per_second"] = round(float(bps) / 1e6, 1)
        out[name] = entry
    return out


def context_summary(raw: dict) -> dict:
    ctx = raw.get("context", {})
    return {
        "date": ctx.get("date", ""),
        "num_cpus": ctx.get("num_cpus"),
        "mhz_per_cpu": ctx.get("mhz_per_cpu"),
        "build_type": build_type(raw),
    }


def build_type(raw: dict) -> str:
    """The build type of OUR code, not of libbenchmark.

    micro_substrate stamps `splitmed_build_type` into the benchmark context
    from its own NDEBUG state; `library_build_type` (the only key old
    captures had) describes how the benchmark LIBRARY was compiled, which on
    distro packages is always release. Prefer ours, fall back to the
    library's for pre-existing JSON.
    """
    ctx = raw.get("context", {})
    return ctx.get("splitmed_build_type", ctx.get("library_build_type", ""))


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--bin", default=str(REPO_ROOT / "build/bench/micro_substrate"),
                    help="micro_substrate binary to run")
    ap.add_argument("--from-json", default=None,
                    help="distill this pre-captured benchmark JSON instead of "
                         "running the binary")
    ap.add_argument("--label", required=True,
                    help="trajectory label to file results under "
                         "(e.g. 'seed', 'packed-kernels')")
    ap.add_argument("--filter", default="",
                    help="--benchmark_filter regex (default: all)")
    ap.add_argument("--min-time", type=float, default=0.5,
                    help="--benchmark_min_time per benchmark (seconds)")
    ap.add_argument("--repetitions", type=int, default=3,
                    help="repetitions per benchmark; the fastest is recorded")
    ap.add_argument("--out", default=str(DEFAULT_OUT),
                    help="trajectory file to merge into")
    ap.add_argument("--raw-out", default=None,
                    help="also write the raw benchmark JSON here (CI artifact)")
    ap.add_argument("--allow-debug", action="store_true",
                    help="record a non-release capture anyway; the entry is "
                         "tagged with a loud 'warning' field")
    args = ap.parse_args()

    if args.from_json:
        raw = json.loads(Path(args.from_json).read_text())
    else:
        raw = run_bench(args.bin, args.filter, args.min_time, args.repetitions)

    # Debug numbers are not a trajectory point — they move with assertion
    # density, not with the code's speed. Refuse them unless explicitly
    # overridden, and even then tag the entry so nobody reads it as real.
    capture_build = build_type(raw)
    if capture_build != "release" and not args.allow_debug:
        raise SystemExit(
            f"refusing to record a '{capture_build or 'unknown'}' build "
            "capture: rebuild with -DCMAKE_BUILD_TYPE=Release, or pass "
            "--allow-debug to record it tagged")

    if args.raw_out:
        Path(args.raw_out).write_text(json.dumps(raw, indent=1) + "\n")

    out_path = Path(args.out)
    if out_path.exists():
        trajectory = json.loads(out_path.read_text())
    else:
        trajectory = {
            "_comment": "Substrate perf trajectory; refresh via "
                        "scripts/bench_substrate.py (docs/PERFORMANCE.md). "
                        "gflops entries use items_per_second = 2*m*n*k FLOPs.",
            "entries": {},
        }

    entry = {
        "context": context_summary(raw),
        "benchmarks": distill(raw),
    }
    if capture_build != "release":
        entry["warning"] = (f"NON-RELEASE CAPTURE ({capture_build or 'unknown'}"
                            ") recorded with --allow-debug; numbers are not "
                            "comparable to release entries")
    trajectory.setdefault("entries", {})[args.label] = entry
    out_path.write_text(json.dumps(trajectory, indent=1, sort_keys=False) + "\n")

    benches = trajectory["entries"][args.label]["benchmarks"]
    print(f"recorded {len(benches)} benchmarks under '{args.label}' "
          f"-> {out_path}")
    for name, e in benches.items():
        extra = ""
        if "gflops" in e:
            extra = f"  {e['gflops']:.2f} GFLOP/s"
        elif "items_per_second" in e:
            extra = f"  {e['items_per_second']:.0f} items/s"
        elif "mb_per_second" in e:
            extra = f"  {e['mb_per_second']:.1f} MB/s"
        print(f"  {name:36s} {e['ns_per_op']:>14.1f} ns/op{extra}")


if __name__ == "__main__":
    main()
