#!/usr/bin/env python3
"""Record a platform-scaling trajectory point into BENCH_scaling.json.

Runs bench/platform_scaling with --json-out (or distills an already-captured
JSON file via --from-json) and merges the per-(K, schedule) rows under a
label into the committed BENCH_scaling.json.

This file is a trajectory, not a gate: CI runs the --smoke point (K=1000)
under a wall-time bound and uploads the raw JSON as an artifact, but
nothing fails on a slow machine. Refresh the committed numbers from an idle
machine with:

    cmake -B build -S . -DCMAKE_BUILD_TYPE=Release && cmake --build build -j
    python3 scripts/bench_scaling.py --bin build/bench/platform_scaling \
        --label my-change

See EXPERIMENTS.md ("Reading the platform-count sweep") for what each
column means.
"""

import argparse
import json
import subprocess
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_OUT = REPO_ROOT / "BENCH_scaling.json"


def run_bench(binary: str, max_k: int, rounds: int, smoke: bool) -> dict:
    with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as tmp:
        json_path = tmp.name
    cmd = [binary, "--json-out", json_path]
    if smoke:
        cmd.append("--smoke")
    else:
        cmd += ["--max-k", str(max_k), "--rounds", str(rounds)]
    proc = subprocess.run(cmd, capture_output=True, text=True, check=False)
    sys.stdout.write(proc.stdout)
    if proc.returncode != 0:
        sys.stderr.write(proc.stderr)
        raise SystemExit(f"benchmark run failed ({proc.returncode})")
    return json.loads(Path(json_path).read_text())


def distill(raw: dict) -> dict:
    """Reduce the bench rows to {"K<k>/<schedule>": {columns...}}."""
    out = {}
    for row in raw.get("rows", []):
        key = f"K{row['k']}/{row['schedule']}"
        out[key] = {
            "steps_per_round": round(float(row["steps_per_round"]), 1),
            "bytes_per_round": round(float(row["bytes_per_round"])),
            "sim_s_per_round": round(float(row["sim_s_per_round"]), 3),
            "wall_ms_per_round": round(float(row["wall_ms_per_round"]), 2),
        }
    return out


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--bin", default=str(REPO_ROOT / "build/bench/platform_scaling"),
                    help="platform_scaling binary to run")
    ap.add_argument("--from-json", default=None,
                    help="distill this pre-captured --json-out file instead "
                         "of running the binary")
    ap.add_argument("--label", required=True,
                    help="trajectory label to file results under "
                         "(e.g. 'seed', 'event-scheduler')")
    ap.add_argument("--max-k", type=int, default=4096,
                    help="largest K in the sweep")
    ap.add_argument("--rounds", type=int, default=5,
                    help="rounds per run")
    ap.add_argument("--smoke", action="store_true",
                    help="CI mode: single K=1000 point, 3 rounds")
    ap.add_argument("--out", default=str(DEFAULT_OUT),
                    help="trajectory file to merge into")
    args = ap.parse_args()

    if args.from_json:
        raw = json.loads(Path(args.from_json).read_text())
    else:
        raw = run_bench(args.bin, args.max_k, args.rounds, args.smoke)

    out_path = Path(args.out)
    if out_path.exists():
        trajectory = json.loads(out_path.read_text())
    else:
        trajectory = {
            "_comment": "Platform-count scaling trajectory for the "
                        "event-driven round scheduler; refresh via "
                        "scripts/bench_scaling.py (EXPERIMENTS.md). "
                        "wall_ms_per_round excludes the final evaluation.",
            "entries": {},
        }

    trajectory.setdefault("entries", {})[args.label] = {
        "rounds": raw.get("rounds"),
        "rows": distill(raw),
    }
    out_path.write_text(json.dumps(trajectory, indent=1, sort_keys=False) + "\n")

    rows = trajectory["entries"][args.label]["rows"]
    print(f"recorded {len(rows)} sweep rows under '{args.label}' -> {out_path}")


if __name__ == "__main__":
    main()
