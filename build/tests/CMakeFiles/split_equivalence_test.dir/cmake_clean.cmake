file(REMOVE_RECURSE
  "CMakeFiles/split_equivalence_test.dir/split_equivalence_test.cpp.o"
  "CMakeFiles/split_equivalence_test.dir/split_equivalence_test.cpp.o.d"
  "split_equivalence_test"
  "split_equivalence_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/split_equivalence_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
