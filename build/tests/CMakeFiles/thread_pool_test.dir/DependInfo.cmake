
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/thread_pool_test.cpp" "tests/CMakeFiles/thread_pool_test.dir/thread_pool_test.cpp.o" "gcc" "tests/CMakeFiles/thread_pool_test.dir/thread_pool_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/baselines/CMakeFiles/splitmed_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/splitmed_core.dir/DependInfo.cmake"
  "/root/repo/build/src/models/CMakeFiles/splitmed_models.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/splitmed_net.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/splitmed_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/privacy/CMakeFiles/splitmed_privacy.dir/DependInfo.cmake"
  "/root/repo/build/src/optim/CMakeFiles/splitmed_optim.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/splitmed_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/serial/CMakeFiles/splitmed_serial.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/splitmed_data.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/splitmed_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/splitmed_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
