file(REMOVE_RECURSE
  "CMakeFiles/param_util_test.dir/param_util_test.cpp.o"
  "CMakeFiles/param_util_test.dir/param_util_test.cpp.o.d"
  "param_util_test"
  "param_util_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/param_util_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
