file(REMOVE_RECURSE
  "CMakeFiles/trainer_integration_test.dir/trainer_integration_test.cpp.o"
  "CMakeFiles/trainer_integration_test.dir/trainer_integration_test.cpp.o.d"
  "trainer_integration_test"
  "trainer_integration_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trainer_integration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
