# Empty dependencies file for quantization.
# This may be replaced when dependencies are built.
