# Empty dependencies file for l1_sync.
# This may be replaced when dependencies are built.
