file(REMOVE_RECURSE
  "../bench/l1_sync"
  "../bench/l1_sync.pdb"
  "CMakeFiles/l1_sync.dir/l1_sync.cpp.o"
  "CMakeFiles/l1_sync.dir/l1_sync.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/l1_sync.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
