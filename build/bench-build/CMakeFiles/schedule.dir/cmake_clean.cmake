file(REMOVE_RECURSE
  "../bench/schedule"
  "../bench/schedule.pdb"
  "CMakeFiles/schedule.dir/schedule.cpp.o"
  "CMakeFiles/schedule.dir/schedule.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/schedule.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
