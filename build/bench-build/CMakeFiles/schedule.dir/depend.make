# Empty dependencies file for schedule.
# This may be replaced when dependencies are built.
