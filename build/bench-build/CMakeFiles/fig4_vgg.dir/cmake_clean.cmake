file(REMOVE_RECURSE
  "../bench/fig4_vgg"
  "../bench/fig4_vgg.pdb"
  "CMakeFiles/fig4_vgg.dir/fig4_vgg.cpp.o"
  "CMakeFiles/fig4_vgg.dir/fig4_vgg.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_vgg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
