# Empty dependencies file for fig4_vgg.
# This may be replaced when dependencies are built.
