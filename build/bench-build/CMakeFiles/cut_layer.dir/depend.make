# Empty dependencies file for cut_layer.
# This may be replaced when dependencies are built.
