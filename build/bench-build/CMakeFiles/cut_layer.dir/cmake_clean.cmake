file(REMOVE_RECURSE
  "../bench/cut_layer"
  "../bench/cut_layer.pdb"
  "CMakeFiles/cut_layer.dir/cut_layer.cpp.o"
  "CMakeFiles/cut_layer.dir/cut_layer.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cut_layer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
