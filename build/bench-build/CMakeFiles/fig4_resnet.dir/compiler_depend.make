# Empty compiler generated dependencies file for fig4_resnet.
# This may be replaced when dependencies are built.
