file(REMOVE_RECURSE
  "../bench/fig4_resnet"
  "../bench/fig4_resnet.pdb"
  "CMakeFiles/fig4_resnet.dir/fig4_resnet.cpp.o"
  "CMakeFiles/fig4_resnet.dir/fig4_resnet.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_resnet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
