# Empty dependencies file for noise_defense.
# This may be replaced when dependencies are built.
