file(REMOVE_RECURSE
  "../bench/noise_defense"
  "../bench/noise_defense.pdb"
  "CMakeFiles/noise_defense.dir/noise_defense.cpp.o"
  "CMakeFiles/noise_defense.dir/noise_defense.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/noise_defense.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
