file(REMOVE_RECURSE
  "../bench/depth_sweep"
  "../bench/depth_sweep.pdb"
  "CMakeFiles/depth_sweep.dir/depth_sweep.cpp.o"
  "CMakeFiles/depth_sweep.dir/depth_sweep.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/depth_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
