# Empty dependencies file for depth_sweep.
# This may be replaced when dependencies are built.
