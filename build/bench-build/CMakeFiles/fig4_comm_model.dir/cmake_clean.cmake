file(REMOVE_RECURSE
  "../bench/fig4_comm_model"
  "../bench/fig4_comm_model.pdb"
  "CMakeFiles/fig4_comm_model.dir/fig4_comm_model.cpp.o"
  "CMakeFiles/fig4_comm_model.dir/fig4_comm_model.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_comm_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
