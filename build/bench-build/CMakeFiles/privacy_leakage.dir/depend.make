# Empty dependencies file for privacy_leakage.
# This may be replaced when dependencies are built.
