file(REMOVE_RECURSE
  "../bench/privacy_leakage"
  "../bench/privacy_leakage.pdb"
  "CMakeFiles/privacy_leakage.dir/privacy_leakage.cpp.o"
  "CMakeFiles/privacy_leakage.dir/privacy_leakage.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/privacy_leakage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
