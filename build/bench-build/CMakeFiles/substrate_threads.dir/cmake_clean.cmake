file(REMOVE_RECURSE
  "../bench/substrate_threads"
  "../bench/substrate_threads.pdb"
  "CMakeFiles/substrate_threads.dir/substrate_threads.cpp.o"
  "CMakeFiles/substrate_threads.dir/substrate_threads.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/substrate_threads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
