# Empty dependencies file for substrate_threads.
# This may be replaced when dependencies are built.
