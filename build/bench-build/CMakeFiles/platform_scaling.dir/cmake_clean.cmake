file(REMOVE_RECURSE
  "../bench/platform_scaling"
  "../bench/platform_scaling.pdb"
  "CMakeFiles/platform_scaling.dir/platform_scaling.cpp.o"
  "CMakeFiles/platform_scaling.dir/platform_scaling.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/platform_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
