# Empty compiler generated dependencies file for imbalance.
# This may be replaced when dependencies are built.
