file(REMOVE_RECURSE
  "../bench/imbalance"
  "../bench/imbalance.pdb"
  "CMakeFiles/imbalance.dir/imbalance.cpp.o"
  "CMakeFiles/imbalance.dir/imbalance.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/imbalance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
