# Empty dependencies file for hospital_network.
# This may be replaced when dependencies are built.
