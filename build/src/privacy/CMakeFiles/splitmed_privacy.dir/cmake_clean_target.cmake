file(REMOVE_RECURSE
  "libsplitmed_privacy.a"
)
