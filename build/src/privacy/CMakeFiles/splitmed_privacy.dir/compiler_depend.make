# Empty compiler generated dependencies file for splitmed_privacy.
# This may be replaced when dependencies are built.
