file(REMOVE_RECURSE
  "CMakeFiles/splitmed_privacy.dir/distance_correlation.cpp.o"
  "CMakeFiles/splitmed_privacy.dir/distance_correlation.cpp.o.d"
  "CMakeFiles/splitmed_privacy.dir/reconstruction.cpp.o"
  "CMakeFiles/splitmed_privacy.dir/reconstruction.cpp.o.d"
  "libsplitmed_privacy.a"
  "libsplitmed_privacy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/splitmed_privacy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
