file(REMOVE_RECURSE
  "CMakeFiles/splitmed_optim.dir/adam.cpp.o"
  "CMakeFiles/splitmed_optim.dir/adam.cpp.o.d"
  "CMakeFiles/splitmed_optim.dir/lr_schedule.cpp.o"
  "CMakeFiles/splitmed_optim.dir/lr_schedule.cpp.o.d"
  "CMakeFiles/splitmed_optim.dir/sgd.cpp.o"
  "CMakeFiles/splitmed_optim.dir/sgd.cpp.o.d"
  "libsplitmed_optim.a"
  "libsplitmed_optim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/splitmed_optim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
