
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/optim/adam.cpp" "src/optim/CMakeFiles/splitmed_optim.dir/adam.cpp.o" "gcc" "src/optim/CMakeFiles/splitmed_optim.dir/adam.cpp.o.d"
  "/root/repo/src/optim/lr_schedule.cpp" "src/optim/CMakeFiles/splitmed_optim.dir/lr_schedule.cpp.o" "gcc" "src/optim/CMakeFiles/splitmed_optim.dir/lr_schedule.cpp.o.d"
  "/root/repo/src/optim/sgd.cpp" "src/optim/CMakeFiles/splitmed_optim.dir/sgd.cpp.o" "gcc" "src/optim/CMakeFiles/splitmed_optim.dir/sgd.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/splitmed_common.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/splitmed_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/splitmed_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/serial/CMakeFiles/splitmed_serial.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
