# Empty compiler generated dependencies file for splitmed_optim.
# This may be replaced when dependencies are built.
