file(REMOVE_RECURSE
  "libsplitmed_optim.a"
)
