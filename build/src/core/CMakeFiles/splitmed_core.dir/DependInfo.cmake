
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/minibatch_policy.cpp" "src/core/CMakeFiles/splitmed_core.dir/minibatch_policy.cpp.o" "gcc" "src/core/CMakeFiles/splitmed_core.dir/minibatch_policy.cpp.o.d"
  "/root/repo/src/core/platform.cpp" "src/core/CMakeFiles/splitmed_core.dir/platform.cpp.o" "gcc" "src/core/CMakeFiles/splitmed_core.dir/platform.cpp.o.d"
  "/root/repo/src/core/protocol.cpp" "src/core/CMakeFiles/splitmed_core.dir/protocol.cpp.o" "gcc" "src/core/CMakeFiles/splitmed_core.dir/protocol.cpp.o.d"
  "/root/repo/src/core/server.cpp" "src/core/CMakeFiles/splitmed_core.dir/server.cpp.o" "gcc" "src/core/CMakeFiles/splitmed_core.dir/server.cpp.o.d"
  "/root/repo/src/core/split_model.cpp" "src/core/CMakeFiles/splitmed_core.dir/split_model.cpp.o" "gcc" "src/core/CMakeFiles/splitmed_core.dir/split_model.cpp.o.d"
  "/root/repo/src/core/trainer.cpp" "src/core/CMakeFiles/splitmed_core.dir/trainer.cpp.o" "gcc" "src/core/CMakeFiles/splitmed_core.dir/trainer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/splitmed_common.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/splitmed_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/serial/CMakeFiles/splitmed_serial.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/splitmed_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/optim/CMakeFiles/splitmed_optim.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/splitmed_data.dir/DependInfo.cmake"
  "/root/repo/build/src/models/CMakeFiles/splitmed_models.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/splitmed_net.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/splitmed_metrics.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
