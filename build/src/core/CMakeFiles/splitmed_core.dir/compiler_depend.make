# Empty compiler generated dependencies file for splitmed_core.
# This may be replaced when dependencies are built.
