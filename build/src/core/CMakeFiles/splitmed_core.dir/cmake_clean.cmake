file(REMOVE_RECURSE
  "CMakeFiles/splitmed_core.dir/minibatch_policy.cpp.o"
  "CMakeFiles/splitmed_core.dir/minibatch_policy.cpp.o.d"
  "CMakeFiles/splitmed_core.dir/platform.cpp.o"
  "CMakeFiles/splitmed_core.dir/platform.cpp.o.d"
  "CMakeFiles/splitmed_core.dir/protocol.cpp.o"
  "CMakeFiles/splitmed_core.dir/protocol.cpp.o.d"
  "CMakeFiles/splitmed_core.dir/server.cpp.o"
  "CMakeFiles/splitmed_core.dir/server.cpp.o.d"
  "CMakeFiles/splitmed_core.dir/split_model.cpp.o"
  "CMakeFiles/splitmed_core.dir/split_model.cpp.o.d"
  "CMakeFiles/splitmed_core.dir/trainer.cpp.o"
  "CMakeFiles/splitmed_core.dir/trainer.cpp.o.d"
  "libsplitmed_core.a"
  "libsplitmed_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/splitmed_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
