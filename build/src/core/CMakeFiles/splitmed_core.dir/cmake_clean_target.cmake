file(REMOVE_RECURSE
  "libsplitmed_core.a"
)
