# Empty compiler generated dependencies file for splitmed_metrics.
# This may be replaced when dependencies are built.
