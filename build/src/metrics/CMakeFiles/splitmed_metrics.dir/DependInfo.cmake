
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/metrics/confusion.cpp" "src/metrics/CMakeFiles/splitmed_metrics.dir/confusion.cpp.o" "gcc" "src/metrics/CMakeFiles/splitmed_metrics.dir/confusion.cpp.o.d"
  "/root/repo/src/metrics/evaluate.cpp" "src/metrics/CMakeFiles/splitmed_metrics.dir/evaluate.cpp.o" "gcc" "src/metrics/CMakeFiles/splitmed_metrics.dir/evaluate.cpp.o.d"
  "/root/repo/src/metrics/recorder.cpp" "src/metrics/CMakeFiles/splitmed_metrics.dir/recorder.cpp.o" "gcc" "src/metrics/CMakeFiles/splitmed_metrics.dir/recorder.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/splitmed_common.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/splitmed_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/splitmed_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/splitmed_data.dir/DependInfo.cmake"
  "/root/repo/build/src/serial/CMakeFiles/splitmed_serial.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
