file(REMOVE_RECURSE
  "libsplitmed_metrics.a"
)
