file(REMOVE_RECURSE
  "CMakeFiles/splitmed_metrics.dir/confusion.cpp.o"
  "CMakeFiles/splitmed_metrics.dir/confusion.cpp.o.d"
  "CMakeFiles/splitmed_metrics.dir/evaluate.cpp.o"
  "CMakeFiles/splitmed_metrics.dir/evaluate.cpp.o.d"
  "CMakeFiles/splitmed_metrics.dir/recorder.cpp.o"
  "CMakeFiles/splitmed_metrics.dir/recorder.cpp.o.d"
  "libsplitmed_metrics.a"
  "libsplitmed_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/splitmed_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
