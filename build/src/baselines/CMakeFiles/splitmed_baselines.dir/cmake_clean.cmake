file(REMOVE_RECURSE
  "CMakeFiles/splitmed_baselines.dir/centralized.cpp.o"
  "CMakeFiles/splitmed_baselines.dir/centralized.cpp.o.d"
  "CMakeFiles/splitmed_baselines.dir/cyclic.cpp.o"
  "CMakeFiles/splitmed_baselines.dir/cyclic.cpp.o.d"
  "CMakeFiles/splitmed_baselines.dir/fedavg.cpp.o"
  "CMakeFiles/splitmed_baselines.dir/fedavg.cpp.o.d"
  "CMakeFiles/splitmed_baselines.dir/local_only.cpp.o"
  "CMakeFiles/splitmed_baselines.dir/local_only.cpp.o.d"
  "CMakeFiles/splitmed_baselines.dir/sync_sgd.cpp.o"
  "CMakeFiles/splitmed_baselines.dir/sync_sgd.cpp.o.d"
  "libsplitmed_baselines.a"
  "libsplitmed_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/splitmed_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
