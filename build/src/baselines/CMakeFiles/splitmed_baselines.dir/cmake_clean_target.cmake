file(REMOVE_RECURSE
  "libsplitmed_baselines.a"
)
