# Empty compiler generated dependencies file for splitmed_baselines.
# This may be replaced when dependencies are built.
