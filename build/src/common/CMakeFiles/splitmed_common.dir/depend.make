# Empty dependencies file for splitmed_common.
# This may be replaced when dependencies are built.
