file(REMOVE_RECURSE
  "CMakeFiles/splitmed_common.dir/csv.cpp.o"
  "CMakeFiles/splitmed_common.dir/csv.cpp.o.d"
  "CMakeFiles/splitmed_common.dir/flags.cpp.o"
  "CMakeFiles/splitmed_common.dir/flags.cpp.o.d"
  "CMakeFiles/splitmed_common.dir/format.cpp.o"
  "CMakeFiles/splitmed_common.dir/format.cpp.o.d"
  "CMakeFiles/splitmed_common.dir/logging.cpp.o"
  "CMakeFiles/splitmed_common.dir/logging.cpp.o.d"
  "CMakeFiles/splitmed_common.dir/rng.cpp.o"
  "CMakeFiles/splitmed_common.dir/rng.cpp.o.d"
  "CMakeFiles/splitmed_common.dir/table.cpp.o"
  "CMakeFiles/splitmed_common.dir/table.cpp.o.d"
  "CMakeFiles/splitmed_common.dir/thread_pool.cpp.o"
  "CMakeFiles/splitmed_common.dir/thread_pool.cpp.o.d"
  "libsplitmed_common.a"
  "libsplitmed_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/splitmed_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
