file(REMOVE_RECURSE
  "libsplitmed_common.a"
)
