file(REMOVE_RECURSE
  "libsplitmed_net.a"
)
