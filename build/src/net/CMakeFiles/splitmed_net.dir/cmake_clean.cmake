file(REMOVE_RECURSE
  "CMakeFiles/splitmed_net.dir/link.cpp.o"
  "CMakeFiles/splitmed_net.dir/link.cpp.o.d"
  "CMakeFiles/splitmed_net.dir/network.cpp.o"
  "CMakeFiles/splitmed_net.dir/network.cpp.o.d"
  "CMakeFiles/splitmed_net.dir/topology.cpp.o"
  "CMakeFiles/splitmed_net.dir/topology.cpp.o.d"
  "CMakeFiles/splitmed_net.dir/traffic_stats.cpp.o"
  "CMakeFiles/splitmed_net.dir/traffic_stats.cpp.o.d"
  "libsplitmed_net.a"
  "libsplitmed_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/splitmed_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
