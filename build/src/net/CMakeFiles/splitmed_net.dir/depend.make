# Empty dependencies file for splitmed_net.
# This may be replaced when dependencies are built.
