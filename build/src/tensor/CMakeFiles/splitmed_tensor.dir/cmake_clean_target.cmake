file(REMOVE_RECURSE
  "libsplitmed_tensor.a"
)
