# Empty compiler generated dependencies file for splitmed_tensor.
# This may be replaced when dependencies are built.
