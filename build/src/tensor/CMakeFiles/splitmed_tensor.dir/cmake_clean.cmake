file(REMOVE_RECURSE
  "CMakeFiles/splitmed_tensor.dir/gemm.cpp.o"
  "CMakeFiles/splitmed_tensor.dir/gemm.cpp.o.d"
  "CMakeFiles/splitmed_tensor.dir/im2col.cpp.o"
  "CMakeFiles/splitmed_tensor.dir/im2col.cpp.o.d"
  "CMakeFiles/splitmed_tensor.dir/ops.cpp.o"
  "CMakeFiles/splitmed_tensor.dir/ops.cpp.o.d"
  "CMakeFiles/splitmed_tensor.dir/shape.cpp.o"
  "CMakeFiles/splitmed_tensor.dir/shape.cpp.o.d"
  "CMakeFiles/splitmed_tensor.dir/tensor.cpp.o"
  "CMakeFiles/splitmed_tensor.dir/tensor.cpp.o.d"
  "libsplitmed_tensor.a"
  "libsplitmed_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/splitmed_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
