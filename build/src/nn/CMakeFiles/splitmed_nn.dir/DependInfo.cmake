
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/activations.cpp" "src/nn/CMakeFiles/splitmed_nn.dir/activations.cpp.o" "gcc" "src/nn/CMakeFiles/splitmed_nn.dir/activations.cpp.o.d"
  "/root/repo/src/nn/batchnorm.cpp" "src/nn/CMakeFiles/splitmed_nn.dir/batchnorm.cpp.o" "gcc" "src/nn/CMakeFiles/splitmed_nn.dir/batchnorm.cpp.o.d"
  "/root/repo/src/nn/checkpoint.cpp" "src/nn/CMakeFiles/splitmed_nn.dir/checkpoint.cpp.o" "gcc" "src/nn/CMakeFiles/splitmed_nn.dir/checkpoint.cpp.o.d"
  "/root/repo/src/nn/conv2d.cpp" "src/nn/CMakeFiles/splitmed_nn.dir/conv2d.cpp.o" "gcc" "src/nn/CMakeFiles/splitmed_nn.dir/conv2d.cpp.o.d"
  "/root/repo/src/nn/dropout.cpp" "src/nn/CMakeFiles/splitmed_nn.dir/dropout.cpp.o" "gcc" "src/nn/CMakeFiles/splitmed_nn.dir/dropout.cpp.o.d"
  "/root/repo/src/nn/flatten.cpp" "src/nn/CMakeFiles/splitmed_nn.dir/flatten.cpp.o" "gcc" "src/nn/CMakeFiles/splitmed_nn.dir/flatten.cpp.o.d"
  "/root/repo/src/nn/init.cpp" "src/nn/CMakeFiles/splitmed_nn.dir/init.cpp.o" "gcc" "src/nn/CMakeFiles/splitmed_nn.dir/init.cpp.o.d"
  "/root/repo/src/nn/layer.cpp" "src/nn/CMakeFiles/splitmed_nn.dir/layer.cpp.o" "gcc" "src/nn/CMakeFiles/splitmed_nn.dir/layer.cpp.o.d"
  "/root/repo/src/nn/linear.cpp" "src/nn/CMakeFiles/splitmed_nn.dir/linear.cpp.o" "gcc" "src/nn/CMakeFiles/splitmed_nn.dir/linear.cpp.o.d"
  "/root/repo/src/nn/loss.cpp" "src/nn/CMakeFiles/splitmed_nn.dir/loss.cpp.o" "gcc" "src/nn/CMakeFiles/splitmed_nn.dir/loss.cpp.o.d"
  "/root/repo/src/nn/param_util.cpp" "src/nn/CMakeFiles/splitmed_nn.dir/param_util.cpp.o" "gcc" "src/nn/CMakeFiles/splitmed_nn.dir/param_util.cpp.o.d"
  "/root/repo/src/nn/pool.cpp" "src/nn/CMakeFiles/splitmed_nn.dir/pool.cpp.o" "gcc" "src/nn/CMakeFiles/splitmed_nn.dir/pool.cpp.o.d"
  "/root/repo/src/nn/residual.cpp" "src/nn/CMakeFiles/splitmed_nn.dir/residual.cpp.o" "gcc" "src/nn/CMakeFiles/splitmed_nn.dir/residual.cpp.o.d"
  "/root/repo/src/nn/sequential.cpp" "src/nn/CMakeFiles/splitmed_nn.dir/sequential.cpp.o" "gcc" "src/nn/CMakeFiles/splitmed_nn.dir/sequential.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/splitmed_common.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/splitmed_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/serial/CMakeFiles/splitmed_serial.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
