# Empty dependencies file for splitmed_nn.
# This may be replaced when dependencies are built.
