file(REMOVE_RECURSE
  "libsplitmed_nn.a"
)
