file(REMOVE_RECURSE
  "CMakeFiles/splitmed_nn.dir/activations.cpp.o"
  "CMakeFiles/splitmed_nn.dir/activations.cpp.o.d"
  "CMakeFiles/splitmed_nn.dir/batchnorm.cpp.o"
  "CMakeFiles/splitmed_nn.dir/batchnorm.cpp.o.d"
  "CMakeFiles/splitmed_nn.dir/checkpoint.cpp.o"
  "CMakeFiles/splitmed_nn.dir/checkpoint.cpp.o.d"
  "CMakeFiles/splitmed_nn.dir/conv2d.cpp.o"
  "CMakeFiles/splitmed_nn.dir/conv2d.cpp.o.d"
  "CMakeFiles/splitmed_nn.dir/dropout.cpp.o"
  "CMakeFiles/splitmed_nn.dir/dropout.cpp.o.d"
  "CMakeFiles/splitmed_nn.dir/flatten.cpp.o"
  "CMakeFiles/splitmed_nn.dir/flatten.cpp.o.d"
  "CMakeFiles/splitmed_nn.dir/init.cpp.o"
  "CMakeFiles/splitmed_nn.dir/init.cpp.o.d"
  "CMakeFiles/splitmed_nn.dir/layer.cpp.o"
  "CMakeFiles/splitmed_nn.dir/layer.cpp.o.d"
  "CMakeFiles/splitmed_nn.dir/linear.cpp.o"
  "CMakeFiles/splitmed_nn.dir/linear.cpp.o.d"
  "CMakeFiles/splitmed_nn.dir/loss.cpp.o"
  "CMakeFiles/splitmed_nn.dir/loss.cpp.o.d"
  "CMakeFiles/splitmed_nn.dir/param_util.cpp.o"
  "CMakeFiles/splitmed_nn.dir/param_util.cpp.o.d"
  "CMakeFiles/splitmed_nn.dir/pool.cpp.o"
  "CMakeFiles/splitmed_nn.dir/pool.cpp.o.d"
  "CMakeFiles/splitmed_nn.dir/residual.cpp.o"
  "CMakeFiles/splitmed_nn.dir/residual.cpp.o.d"
  "CMakeFiles/splitmed_nn.dir/sequential.cpp.o"
  "CMakeFiles/splitmed_nn.dir/sequential.cpp.o.d"
  "libsplitmed_nn.a"
  "libsplitmed_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/splitmed_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
