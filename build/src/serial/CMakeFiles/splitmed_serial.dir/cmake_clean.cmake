file(REMOVE_RECURSE
  "CMakeFiles/splitmed_serial.dir/buffer.cpp.o"
  "CMakeFiles/splitmed_serial.dir/buffer.cpp.o.d"
  "CMakeFiles/splitmed_serial.dir/quantize.cpp.o"
  "CMakeFiles/splitmed_serial.dir/quantize.cpp.o.d"
  "CMakeFiles/splitmed_serial.dir/tensor_codec.cpp.o"
  "CMakeFiles/splitmed_serial.dir/tensor_codec.cpp.o.d"
  "libsplitmed_serial.a"
  "libsplitmed_serial.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/splitmed_serial.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
