# Empty dependencies file for splitmed_serial.
# This may be replaced when dependencies are built.
