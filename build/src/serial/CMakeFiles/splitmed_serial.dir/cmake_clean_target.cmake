file(REMOVE_RECURSE
  "libsplitmed_serial.a"
)
