
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/serial/buffer.cpp" "src/serial/CMakeFiles/splitmed_serial.dir/buffer.cpp.o" "gcc" "src/serial/CMakeFiles/splitmed_serial.dir/buffer.cpp.o.d"
  "/root/repo/src/serial/quantize.cpp" "src/serial/CMakeFiles/splitmed_serial.dir/quantize.cpp.o" "gcc" "src/serial/CMakeFiles/splitmed_serial.dir/quantize.cpp.o.d"
  "/root/repo/src/serial/tensor_codec.cpp" "src/serial/CMakeFiles/splitmed_serial.dir/tensor_codec.cpp.o" "gcc" "src/serial/CMakeFiles/splitmed_serial.dir/tensor_codec.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/splitmed_common.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/splitmed_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
