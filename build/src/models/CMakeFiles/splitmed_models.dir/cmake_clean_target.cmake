file(REMOVE_RECURSE
  "libsplitmed_models.a"
)
