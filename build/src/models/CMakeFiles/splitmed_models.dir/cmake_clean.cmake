file(REMOVE_RECURSE
  "CMakeFiles/splitmed_models.dir/factory.cpp.o"
  "CMakeFiles/splitmed_models.dir/factory.cpp.o.d"
  "CMakeFiles/splitmed_models.dir/mlp.cpp.o"
  "CMakeFiles/splitmed_models.dir/mlp.cpp.o.d"
  "CMakeFiles/splitmed_models.dir/model_stats.cpp.o"
  "CMakeFiles/splitmed_models.dir/model_stats.cpp.o.d"
  "CMakeFiles/splitmed_models.dir/resnet.cpp.o"
  "CMakeFiles/splitmed_models.dir/resnet.cpp.o.d"
  "CMakeFiles/splitmed_models.dir/vgg.cpp.o"
  "CMakeFiles/splitmed_models.dir/vgg.cpp.o.d"
  "libsplitmed_models.a"
  "libsplitmed_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/splitmed_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
