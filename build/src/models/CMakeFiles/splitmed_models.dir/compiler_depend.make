# Empty compiler generated dependencies file for splitmed_models.
# This may be replaced when dependencies are built.
