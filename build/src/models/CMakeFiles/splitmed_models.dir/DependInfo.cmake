
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/models/factory.cpp" "src/models/CMakeFiles/splitmed_models.dir/factory.cpp.o" "gcc" "src/models/CMakeFiles/splitmed_models.dir/factory.cpp.o.d"
  "/root/repo/src/models/mlp.cpp" "src/models/CMakeFiles/splitmed_models.dir/mlp.cpp.o" "gcc" "src/models/CMakeFiles/splitmed_models.dir/mlp.cpp.o.d"
  "/root/repo/src/models/model_stats.cpp" "src/models/CMakeFiles/splitmed_models.dir/model_stats.cpp.o" "gcc" "src/models/CMakeFiles/splitmed_models.dir/model_stats.cpp.o.d"
  "/root/repo/src/models/resnet.cpp" "src/models/CMakeFiles/splitmed_models.dir/resnet.cpp.o" "gcc" "src/models/CMakeFiles/splitmed_models.dir/resnet.cpp.o.d"
  "/root/repo/src/models/vgg.cpp" "src/models/CMakeFiles/splitmed_models.dir/vgg.cpp.o" "gcc" "src/models/CMakeFiles/splitmed_models.dir/vgg.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/splitmed_common.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/splitmed_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/splitmed_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/serial/CMakeFiles/splitmed_serial.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
