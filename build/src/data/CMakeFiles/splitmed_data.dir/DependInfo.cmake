
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/dataloader.cpp" "src/data/CMakeFiles/splitmed_data.dir/dataloader.cpp.o" "gcc" "src/data/CMakeFiles/splitmed_data.dir/dataloader.cpp.o.d"
  "/root/repo/src/data/dataset.cpp" "src/data/CMakeFiles/splitmed_data.dir/dataset.cpp.o" "gcc" "src/data/CMakeFiles/splitmed_data.dir/dataset.cpp.o.d"
  "/root/repo/src/data/partition.cpp" "src/data/CMakeFiles/splitmed_data.dir/partition.cpp.o" "gcc" "src/data/CMakeFiles/splitmed_data.dir/partition.cpp.o.d"
  "/root/repo/src/data/synthetic_cifar.cpp" "src/data/CMakeFiles/splitmed_data.dir/synthetic_cifar.cpp.o" "gcc" "src/data/CMakeFiles/splitmed_data.dir/synthetic_cifar.cpp.o.d"
  "/root/repo/src/data/synthetic_medical.cpp" "src/data/CMakeFiles/splitmed_data.dir/synthetic_medical.cpp.o" "gcc" "src/data/CMakeFiles/splitmed_data.dir/synthetic_medical.cpp.o.d"
  "/root/repo/src/data/transforms.cpp" "src/data/CMakeFiles/splitmed_data.dir/transforms.cpp.o" "gcc" "src/data/CMakeFiles/splitmed_data.dir/transforms.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/splitmed_common.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/splitmed_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
