# Empty dependencies file for splitmed_data.
# This may be replaced when dependencies are built.
