file(REMOVE_RECURSE
  "CMakeFiles/splitmed_data.dir/dataloader.cpp.o"
  "CMakeFiles/splitmed_data.dir/dataloader.cpp.o.d"
  "CMakeFiles/splitmed_data.dir/dataset.cpp.o"
  "CMakeFiles/splitmed_data.dir/dataset.cpp.o.d"
  "CMakeFiles/splitmed_data.dir/partition.cpp.o"
  "CMakeFiles/splitmed_data.dir/partition.cpp.o.d"
  "CMakeFiles/splitmed_data.dir/synthetic_cifar.cpp.o"
  "CMakeFiles/splitmed_data.dir/synthetic_cifar.cpp.o.d"
  "CMakeFiles/splitmed_data.dir/synthetic_medical.cpp.o"
  "CMakeFiles/splitmed_data.dir/synthetic_medical.cpp.o.d"
  "CMakeFiles/splitmed_data.dir/transforms.cpp.o"
  "CMakeFiles/splitmed_data.dir/transforms.cpp.o.d"
  "libsplitmed_data.a"
  "libsplitmed_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/splitmed_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
