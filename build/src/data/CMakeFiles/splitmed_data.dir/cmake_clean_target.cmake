file(REMOVE_RECURSE
  "libsplitmed_data.a"
)
