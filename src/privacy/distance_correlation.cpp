#include "src/privacy/distance_correlation.hpp"

#include <cmath>
#include <vector>

#include "src/common/error.hpp"

namespace splitmed::privacy {
namespace {

/// Pairwise Euclidean distance matrix between rows, doubly centered.
std::vector<double> centered_distances(const Tensor& t) {
  SPLITMED_CHECK(t.shape().rank() >= 1, "need at least rank 1");
  const std::int64_t n = t.shape().dim(0);
  SPLITMED_CHECK(n >= 2, "distance correlation needs >= 2 samples");
  const std::int64_t d = t.numel() / n;
  auto data = t.data();

  std::vector<double> dist(static_cast<std::size_t>(n * n), 0.0);
  for (std::int64_t i = 0; i < n; ++i) {
    const float* ri = data.data() + i * d;
    for (std::int64_t j = i + 1; j < n; ++j) {
      const float* rj = data.data() + j * d;
      double acc = 0.0;
      for (std::int64_t c = 0; c < d; ++c) {
        const double diff = static_cast<double>(ri[c]) - rj[c];
        acc += diff * diff;
      }
      const double v = std::sqrt(acc);
      dist[static_cast<std::size_t>(i * n + j)] = v;
      dist[static_cast<std::size_t>(j * n + i)] = v;
    }
  }

  std::vector<double> row_mean(static_cast<std::size_t>(n), 0.0);
  double grand = 0.0;
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      row_mean[static_cast<std::size_t>(i)] +=
          dist[static_cast<std::size_t>(i * n + j)];
    }
    row_mean[static_cast<std::size_t>(i)] /= static_cast<double>(n);
    grand += row_mean[static_cast<std::size_t>(i)];
  }
  grand /= static_cast<double>(n);

  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      dist[static_cast<std::size_t>(i * n + j)] +=
          grand - row_mean[static_cast<std::size_t>(i)] -
          row_mean[static_cast<std::size_t>(j)];
    }
  }
  return dist;
}

}  // namespace

double distance_correlation(const Tensor& a, const Tensor& b) {
  SPLITMED_CHECK(a.shape().dim(0) == b.shape().dim(0),
                 "distance_correlation: sample counts differ");
  const auto ca = centered_distances(a);
  const auto cb = centered_distances(b);
  double vab = 0.0, vaa = 0.0, vbb = 0.0;
  for (std::size_t i = 0; i < ca.size(); ++i) {
    vab += ca[i] * cb[i];
    vaa += ca[i] * ca[i];
    vbb += cb[i] * cb[i];
  }
  if (vaa <= 0.0 || vbb <= 0.0) return 0.0;
  const double r2 = vab / std::sqrt(vaa * vbb);
  return r2 <= 0.0 ? 0.0 : std::sqrt(r2);
}

}  // namespace splitmed::privacy
