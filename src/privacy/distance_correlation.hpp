// Distance correlation — a standard leakage metric for split learning
// (Vepakomma et al.): how statistically dependent are the smashed activations
// the server sees on the raw inputs? 1.0 = fully dependent, 0.0 =
// independent. Quantifies (rather than assumes) the paper's privacy claim.
#pragma once

#include "src/tensor/tensor.hpp"

namespace splitmed::privacy {

/// Empirical distance correlation between row-paired samples.
/// a: [n, da...] and b: [n, db...] are flattened per row; O(n^2) memory/time.
/// Requires n >= 2.
double distance_correlation(const Tensor& a, const Tensor& b);

}  // namespace splitmed::privacy
