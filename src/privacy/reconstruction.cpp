#include "src/privacy/reconstruction.hpp"

#include <cmath>

#include "src/common/error.hpp"
#include "src/tensor/ops.hpp"

namespace splitmed::privacy {

ReconstructionResult reconstruct_from_observation(
    nn::Layer& l1, const Tensor& observed_activation, const Tensor& true_x,
    const ReconstructionOptions& options) {
  SPLITMED_CHECK(options.iterations > 0 && options.learning_rate > 0.0F,
                 "bad reconstruction options");
  Rng rng(options.seed);
  Tensor x = Tensor::normal(true_x.shape(), rng, 0.5F, 0.25F);
  // Adam state over the pixel tensor.
  Tensor m(x.shape()), v(x.shape());
  const float beta1 = 0.9F, beta2 = 0.999F, eps = 1e-8F;

  float last_loss = 0.0F;
  for (std::int64_t it = 1; it <= options.iterations; ++it) {
    const Tensor a = l1.forward(x, /*training=*/false);
    check_same_shape(a.shape(), observed_activation.shape(),
                     "reconstruct_from_observation");
    const Tensor diff = ops::sub(a, observed_activation);
    last_loss = ops::mse(a, observed_activation);
    // d/da of mean squared error.
    const Tensor grad_a =
        ops::scale(diff, 2.0F / static_cast<float>(a.numel()));
    const Tensor grad_x = l1.backward(grad_a);

    const float bc1 = 1.0F - std::pow(beta1, static_cast<float>(it));
    const float bc2 = 1.0F - std::pow(beta2, static_cast<float>(it));
    const float lr = options.learning_rate * std::sqrt(bc2) / bc1;
    auto xd = x.data();
    auto gd = grad_x.data();
    auto md = m.data();
    auto vd = v.data();
    for (std::size_t i = 0; i < xd.size(); ++i) {
      md[i] = beta1 * md[i] + (1.0F - beta1) * gd[i];
      vd[i] = beta2 * vd[i] + (1.0F - beta2) * gd[i] * gd[i];
      xd[i] -= lr * md[i] / (std::sqrt(vd[i]) + eps);
    }
  }
  // The attack must not corrupt L1's training state.
  l1.zero_grad();

  ReconstructionResult result;
  result.activation_mse = last_loss;
  result.input_mse = ops::mse(x, true_x);
  result.reconstruction = std::move(x);
  return result;
}

ReconstructionResult reconstruct_inputs(nn::Layer& l1, const Tensor& target_x,
                                        const ReconstructionOptions& options) {
  SPLITMED_CHECK(options.iterations > 0 && options.learning_rate > 0.0F,
                 "bad reconstruction options");
  // The attacker's observation (eval mode: deterministic L1).
  const Tensor target_a = l1.forward(target_x, /*training=*/false);
  return reconstruct_from_observation(l1, target_a, target_x, options);
}

}  // namespace splitmed::privacy
