// Model-inversion reconstruction attack against the split protocol.
//
// Threat model: an honest-but-curious server knows the L1 architecture AND
// weights (worst case — e.g. it orchestrated initialization) and observes a
// platform's smashed activations a* = L1(x*). It reconstructs x̂ by gradient
// descent on || L1(x̂) − a* ||² over the input pixels.
//
// The attack turns the paper's qualitative "the server cannot look at the
// original data" into a measurable quantity: reconstruction MSE (and its
// trend with cut depth — deeper cuts leak less, at higher platform cost).
#pragma once

#include <cstdint>

#include "src/common/rng.hpp"
#include "src/nn/layer.hpp"

namespace splitmed::privacy {

struct ReconstructionOptions {
  std::int64_t iterations = 300;
  float learning_rate = 0.05F;  // Adam on the input pixels
  std::uint64_t seed = 99;
};

struct ReconstructionResult {
  Tensor reconstruction;   // same shape as the target input
  float activation_mse = 0.0F;  // final || L1(x̂) − a* ||² / numel
  float input_mse = 0.0F;       // || x̂ − x* ||² / numel (attacker can't see it)
};

/// Runs the attack against `l1` for target input batch `target_x`
/// ([n, C, H, W]). Uses only L1's forward/backward — parameters are left
/// untouched (their gradients are zeroed afterwards).
ReconstructionResult reconstruct_inputs(nn::Layer& l1, const Tensor& target_x,
                                        const ReconstructionOptions& options);

/// Same attack, but from an OBSERVED activation (e.g. one that crossed the
/// wire with defensive noise applied): minimizes ||L1(x̂) − observed||².
/// `true_x` is only used to score input_mse; pass the ground truth.
ReconstructionResult reconstruct_from_observation(
    nn::Layer& l1, const Tensor& observed_activation, const Tensor& true_x,
    const ReconstructionOptions& options);

}  // namespace splitmed::privacy
