// Confusion matrix for per-class error analysis of the medical workloads
// (grade-level sensitivity matters more than raw accuracy in that setting).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/tensor/tensor.hpp"

namespace splitmed::metrics {

class ConfusionMatrix {
 public:
  explicit ConfusionMatrix(std::int64_t num_classes);

  /// Adds argmax(logits) vs labels.
  void add_batch(const Tensor& logits,
                 const std::vector<std::int64_t>& labels);

  [[nodiscard]] std::int64_t count(std::int64_t actual,
                                   std::int64_t predicted) const;
  [[nodiscard]] std::int64_t total() const { return total_; }
  [[nodiscard]] double accuracy() const;
  /// Recall of one class (0 when the class never occurred).
  [[nodiscard]] double recall(std::int64_t cls) const;
  [[nodiscard]] double precision(std::int64_t cls) const;
  /// Mean per-class recall — robust to class imbalance.
  [[nodiscard]] double balanced_accuracy() const;

  [[nodiscard]] std::string str() const;

 private:
  std::int64_t num_classes_;
  std::vector<std::int64_t> counts_;  // [actual * num_classes + predicted]
  std::int64_t total_ = 0;
};

}  // namespace splitmed::metrics
