// Experiment recorder: collects TrainReports, prints the comparison table a
// bench reports, and writes the full curves to CSV for plotting.
#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "src/metrics/curve.hpp"

namespace splitmed::metrics {

class ExperimentRecorder {
 public:
  explicit ExperimentRecorder(std::string experiment_name);

  void add(TrainReport report);

  [[nodiscard]] const std::vector<TrainReport>& reports() const {
    return reports_;
  }

  /// Summary table: one row per protocol (final accuracy, bytes, sim time).
  void print_summary(std::ostream& os) const;

  /// Fig.4-style table: accuracy of each protocol at shared byte budgets.
  void print_bytes_vs_accuracy(std::ostream& os,
                               const std::vector<std::uint64_t>& budgets) const;

  /// Writes every curve point of every report to `path` as CSV.
  void write_csv(const std::string& path) const;

 private:
  std::string name_;
  std::vector<TrainReport> reports_;
};

}  // namespace splitmed::metrics
