#include "src/metrics/confusion.hpp"

#include <sstream>

#include "src/common/error.hpp"
#include "src/tensor/ops.hpp"

namespace splitmed::metrics {

ConfusionMatrix::ConfusionMatrix(std::int64_t num_classes)
    : num_classes_(num_classes),
      counts_(static_cast<std::size_t>(num_classes * num_classes), 0) {
  SPLITMED_CHECK(num_classes > 0, "need at least one class");
}

void ConfusionMatrix::add_batch(const Tensor& logits,
                                const std::vector<std::int64_t>& labels) {
  const auto pred = ops::argmax_rows(logits);
  SPLITMED_CHECK(pred.size() == labels.size(),
                 "confusion: prediction/label count mismatch");
  for (std::size_t i = 0; i < pred.size(); ++i) {
    SPLITMED_CHECK(labels[i] >= 0 && labels[i] < num_classes_ &&
                       pred[i] >= 0 && pred[i] < num_classes_,
                   "confusion: class out of range");
    ++counts_[static_cast<std::size_t>(labels[i] * num_classes_ + pred[i])];
    ++total_;
  }
}

std::int64_t ConfusionMatrix::count(std::int64_t actual,
                                    std::int64_t predicted) const {
  SPLITMED_CHECK(actual >= 0 && actual < num_classes_ && predicted >= 0 &&
                     predicted < num_classes_,
                 "confusion: class out of range");
  return counts_[static_cast<std::size_t>(actual * num_classes_ + predicted)];
}

double ConfusionMatrix::accuracy() const {
  if (total_ == 0) return 0.0;
  std::int64_t diag = 0;
  for (std::int64_t c = 0; c < num_classes_; ++c) diag += count(c, c);
  return static_cast<double>(diag) / static_cast<double>(total_);
}

double ConfusionMatrix::recall(std::int64_t cls) const {
  std::int64_t row = 0;
  for (std::int64_t p = 0; p < num_classes_; ++p) row += count(cls, p);
  return row == 0 ? 0.0
                  : static_cast<double>(count(cls, cls)) /
                        static_cast<double>(row);
}

double ConfusionMatrix::precision(std::int64_t cls) const {
  std::int64_t col = 0;
  for (std::int64_t a = 0; a < num_classes_; ++a) col += count(a, cls);
  return col == 0 ? 0.0
                  : static_cast<double>(count(cls, cls)) /
                        static_cast<double>(col);
}

double ConfusionMatrix::balanced_accuracy() const {
  double acc = 0.0;
  for (std::int64_t c = 0; c < num_classes_; ++c) acc += recall(c);
  return acc / static_cast<double>(num_classes_);
}

std::string ConfusionMatrix::str() const {
  std::ostringstream os;
  os << "confusion (rows=actual, cols=predicted):\n";
  for (std::int64_t a = 0; a < num_classes_; ++a) {
    for (std::int64_t p = 0; p < num_classes_; ++p) {
      os << count(a, p) << (p + 1 == num_classes_ ? '\n' : '\t');
    }
  }
  return os.str();
}

}  // namespace splitmed::metrics
