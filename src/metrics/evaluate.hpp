// Model evaluation helpers.
//
// evaluate_composite runs up to two layer stacks back-to-back in eval mode —
// the natural operation for a split model, whose first stage (L1) lives on a
// platform and whose remainder lives on the server.
#pragma once

#include <cstdint>

#include "src/data/dataset.hpp"
#include "src/nn/layer.hpp"

namespace splitmed::metrics {

/// Accuracy of `front` (+ optional `back`) over the whole dataset, evaluated
/// in minibatches of `batch_size` (eval mode: no dropout, BN running stats).
double evaluate_composite(nn::Layer& front, nn::Layer* back,
                          const data::Dataset& dataset,
                          std::int64_t batch_size);

/// Single-stack convenience overload.
double evaluate_model(nn::Layer& model, const data::Dataset& dataset,
                      std::int64_t batch_size);

}  // namespace splitmed::metrics
