#include "src/metrics/evaluate.hpp"

#include <algorithm>
#include <numeric>

#include "src/common/error.hpp"
#include "src/nn/loss.hpp"

namespace splitmed::metrics {

double evaluate_composite(nn::Layer& front, nn::Layer* back,
                          const data::Dataset& dataset,
                          std::int64_t batch_size) {
  SPLITMED_CHECK(batch_size > 0, "batch size must be positive");
  const std::int64_t n = dataset.size();
  SPLITMED_CHECK(n > 0, "cannot evaluate on an empty dataset");
  std::int64_t correct = 0;
  std::vector<std::int64_t> idx(static_cast<std::size_t>(batch_size));
  for (std::int64_t begin = 0; begin < n; begin += batch_size) {
    const std::int64_t end = std::min(begin + batch_size, n);
    idx.resize(static_cast<std::size_t>(end - begin));
    std::iota(idx.begin(), idx.end(), begin);
    Tensor x = dataset.batch_images(idx);
    const auto labels = dataset.batch_labels(idx);
    Tensor logits = front.forward(x, /*training=*/false);
    if (back != nullptr) logits = back->forward(logits, /*training=*/false);
    correct += static_cast<std::int64_t>(
        nn::accuracy(logits, labels) * static_cast<double>(labels.size()) +
        0.5);
  }
  return static_cast<double>(correct) / static_cast<double>(n);
}

double evaluate_model(nn::Layer& model, const data::Dataset& dataset,
                      std::int64_t batch_size) {
  return evaluate_composite(model, nullptr, dataset, batch_size);
}

}  // namespace splitmed::metrics
