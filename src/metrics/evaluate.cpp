#include "src/metrics/evaluate.hpp"

#include <algorithm>
#include <numeric>

#include "src/common/error.hpp"
#include "src/common/thread_pool.hpp"
#include "src/nn/loss.hpp"

namespace splitmed::metrics {

namespace {

/// Counts label hits over the logits rows. The argmax of each row lands in a
/// per-row flag slot (disjoint writes), and the integer reduction runs
/// serially — bitwise-stable for every thread count.
std::int64_t count_correct(const Tensor& logits,
                           const std::vector<std::int64_t>& labels) {
  SPLITMED_CHECK(logits.shape().rank() == 2,
                 "evaluate: logits must be [batch, classes]");
  const std::int64_t rows = logits.shape().dim(0);
  const std::int64_t classes = logits.shape().dim(1);
  SPLITMED_CHECK(rows == static_cast<std::int64_t>(labels.size()),
                 "evaluate: prediction/label count mismatch");
  SPLITMED_CHECK(classes > 0, "evaluate: logits need at least one class");
  auto ld = logits.data();
  std::vector<unsigned char> hit(static_cast<std::size_t>(rows), 0);
  const std::int64_t grain = std::max<std::int64_t>(1, 1024 / classes);
  parallel_for(0, rows, grain, [&](std::int64_t r0, std::int64_t r1) {
    for (std::int64_t r = r0; r < r1; ++r) {
      const float* row = ld.data() + r * classes;
      std::int64_t best = 0;
      for (std::int64_t c = 1; c < classes; ++c) {
        if (row[c] > row[best]) best = c;
      }
      hit[static_cast<std::size_t>(r)] =
          best == labels[static_cast<std::size_t>(r)] ? 1 : 0;
    }
  });
  std::int64_t correct = 0;
  for (const unsigned char h : hit) correct += h;
  return correct;
}

}  // namespace

double evaluate_composite(nn::Layer& front, nn::Layer* back,
                          const data::Dataset& dataset,
                          std::int64_t batch_size) {
  SPLITMED_CHECK(batch_size > 0, "batch size must be positive");
  const std::int64_t n = dataset.size();
  SPLITMED_CHECK(n > 0, "cannot evaluate on an empty dataset");
  std::int64_t correct = 0;
  std::vector<std::int64_t> idx(static_cast<std::size_t>(batch_size));
  for (std::int64_t begin = 0; begin < n; begin += batch_size) {
    const std::int64_t end = std::min(begin + batch_size, n);
    idx.resize(static_cast<std::size_t>(end - begin));
    std::iota(idx.begin(), idx.end(), begin);
    Tensor x = dataset.batch_images(idx);
    const auto labels = dataset.batch_labels(idx);
    // infer(): bitwise identical to forward(x, false), but lets the
    // execution planner fuse eval BN and chain through workspace slabs
    // instead of materializing per-layer Tensors.
    Tensor logits = front.infer(x);
    if (back != nullptr) logits = back->infer(logits);
    correct += count_correct(logits, labels);
  }
  return static_cast<double>(correct) / static_cast<double>(n);
}

double evaluate_model(nn::Layer& model, const data::Dataset& dataset,
                      std::int64_t batch_size) {
  return evaluate_composite(model, nullptr, dataset, batch_size);
}

}  // namespace splitmed::metrics
