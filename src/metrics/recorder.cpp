#include "src/metrics/recorder.hpp"

#include "src/common/csv.hpp"
#include "src/common/error.hpp"
#include "src/common/format.hpp"
#include "src/common/table.hpp"

namespace splitmed::metrics {

ExperimentRecorder::ExperimentRecorder(std::string experiment_name)
    : name_(std::move(experiment_name)) {}

void ExperimentRecorder::add(TrainReport report) {
  reports_.push_back(std::move(report));
}

void ExperimentRecorder::print_summary(std::ostream& os) const {
  os << "== " << name_ << " ==\n";
  Table t({"protocol", "model", "steps", "final accuracy", "bytes moved",
           "sim time"});
  for (const auto& r : reports_) {
    t.add_row({r.protocol, r.model, std::to_string(r.steps_completed),
               format_percent(r.final_accuracy), format_bytes(r.total_bytes),
               format_duration(r.total_sim_seconds)});
  }
  t.print(os);
}

void ExperimentRecorder::print_bytes_vs_accuracy(
    std::ostream& os, const std::vector<std::uint64_t>& budgets) const {
  os << "accuracy at transmitted-byte budgets (Fig. 4 axes):\n";
  std::vector<std::string> header = {"protocol"};
  for (const auto b : budgets) header.push_back(format_bytes(b));
  Table t(header);
  for (const auto& r : reports_) {
    std::vector<std::string> row = {r.protocol};
    for (const auto b : budgets) {
      row.push_back(format_percent(r.accuracy_at_bytes(b)));
    }
    t.add_row(row);
  }
  t.print(os);
}

void ExperimentRecorder::write_csv(const std::string& path) const {
  CsvWriter csv(path);
  csv.write_row({"experiment", "protocol", "model", "step", "epoch",
                 "cumulative_bytes", "sim_seconds", "train_loss",
                 "test_accuracy"});
  for (const auto& r : reports_) {
    for (const auto& p : r.curve) {
      csv.write_row({name_, r.protocol, r.model, std::to_string(p.step),
                     CsvWriter::field(p.epoch),
                     CsvWriter::field(p.cumulative_bytes),
                     CsvWriter::field(p.sim_seconds),
                     CsvWriter::field(p.train_loss),
                     CsvWriter::field(p.test_accuracy)});
    }
  }
}

}  // namespace splitmed::metrics
