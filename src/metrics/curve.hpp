// Training-curve records. A CurvePoint is one evaluation snapshot; a
// TrainReport is what every trainer returns. The (cumulative_bytes,
// accuracy) pairs across a run are exactly the series Fig. 4 plots.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace splitmed::metrics {

struct CurvePoint {
  std::int64_t step = 0;          // optimization steps (or rounds for FedAvg)
  double epoch = 0.0;             // fractional epochs of the global dataset
  std::uint64_t cumulative_bytes = 0;
  double sim_seconds = 0.0;       // simulated WAN time elapsed
  double train_loss = 0.0;
  double test_accuracy = 0.0;
};

struct TrainReport {
  std::string protocol;           // "split", "sync-sgd", "fedavg", ...
  std::string model;
  std::vector<CurvePoint> curve;
  std::uint64_t total_bytes = 0;
  double total_sim_seconds = 0.0;
  double final_accuracy = 0.0;
  std::int64_t steps_completed = 0;
  /// Platform steps abandoned after retransmissions were exhausted (WAN
  /// fault recovery; always 0 in a fault-free run).
  std::int64_t skipped_steps = 0;
  /// Examples consumed from platform loaders but never applied to any
  /// optimizer step because the step was abandoned (sum of the platforms'
  /// examples_lost counters; under membership also the minibatches offline
  /// hospitals never drew; always 0 in a fault-free run).
  std::int64_t examples_lost = 0;

  /// Membership extension (all 0 unless SplitConfig::membership.enabled).
  /// Updates the server refused (non-finite or norm-bomb payloads).
  std::int64_t rejected_updates = 0;
  /// Platforms quarantined by the strike policy (counting re-quarantines).
  std::int64_t quarantines = 0;
  /// Rounds closed below min_quorum (loss carried, never fabricated).
  std::int64_t void_rounds = 0;
  /// Platform-steps skipped because the round deadline had passed.
  std::int64_t deadline_misses = 0;

  /// Accuracy of the last point at or under the byte budget (0.0 when the
  /// first point already exceeds it).
  [[nodiscard]] double accuracy_at_bytes(std::uint64_t byte_budget) const {
    double best = 0.0;
    for (const auto& p : curve) {
      if (p.cumulative_bytes <= byte_budget && p.test_accuracy > best) {
        best = p.test_accuracy;
      }
    }
    return best;
  }

  /// First cumulative byte count at which accuracy reached `target`
  /// (returns 0 when never reached).
  [[nodiscard]] std::uint64_t bytes_to_accuracy(double target) const {
    for (const auto& p : curve) {
      if (p.test_accuracy >= target) return p.cumulative_bytes;
    }
    return 0;
  }
};

}  // namespace splitmed::metrics
