// SGD with optional momentum, Nesterov and decoupled L2 weight decay.
#pragma once

#include "src/optim/optimizer.hpp"
#include "src/tensor/tensor.hpp"

namespace splitmed::optim {

struct SgdOptions {
  float learning_rate = 0.01F;
  float momentum = 0.0F;
  float weight_decay = 0.0F;
  bool nesterov = false;
};

class Sgd final : public Optimizer {
 public:
  Sgd(std::vector<nn::Parameter*> params, SgdOptions options);

  void step() override;
  void reset_state() override;
  [[nodiscard]] float learning_rate() const override {
    return options_.learning_rate;
  }
  void set_learning_rate(float lr) override { options_.learning_rate = lr; }

  void save_state(BufferWriter& writer) const override;
  void load_state(BufferReader& reader) override;

 private:
  SgdOptions options_;
  std::vector<Tensor> velocity_;  // parallel to params_, lazily sized
};

}  // namespace splitmed::optim
