#include "src/optim/lr_schedule.hpp"

#include <cmath>

#include "src/common/error.hpp"

namespace splitmed::optim {

LrSchedule constant_lr(float lr) {
  SPLITMED_CHECK(lr > 0.0F, "constant_lr: lr must be positive");
  return [lr](std::int64_t) { return lr; };
}

LrSchedule step_lr(float lr, std::int64_t step_size, float gamma) {
  SPLITMED_CHECK(lr > 0.0F && step_size > 0 && gamma > 0.0F,
                 "step_lr: bad arguments");
  return [=](std::int64_t epoch) {
    return lr * std::pow(gamma, static_cast<float>(epoch / step_size));
  };
}

LrSchedule cosine_lr(float lr, float lr_min, std::int64_t total_epochs) {
  SPLITMED_CHECK(lr > lr_min && lr_min >= 0.0F && total_epochs > 0,
                 "cosine_lr: bad arguments");
  return [=](std::int64_t epoch) {
    const float t = static_cast<float>(epoch) /
                    static_cast<float>(total_epochs);
    const float clamped = t > 1.0F ? 1.0F : t;
    return lr_min + 0.5F * (lr - lr_min) *
                        (1.0F + std::cos(3.14159265358979F * clamped));
  };
}

}  // namespace splitmed::optim
