#include "src/optim/sgd.hpp"

#include "src/common/error.hpp"
#include "src/serial/tensor_codec.hpp"

namespace splitmed::optim {

Sgd::Sgd(std::vector<nn::Parameter*> params, SgdOptions options)
    : Optimizer(std::move(params)), options_(options) {
  SPLITMED_CHECK(options_.learning_rate > 0.0F, "Sgd: lr must be positive");
  SPLITMED_CHECK(options_.momentum >= 0.0F && options_.momentum < 1.0F,
                 "Sgd: momentum must be in [0,1)");
  SPLITMED_CHECK(!options_.nesterov || options_.momentum > 0.0F,
                 "Sgd: nesterov requires momentum");
  velocity_.reserve(params_.size());
  for (const nn::Parameter* p : params_) {
    velocity_.emplace_back(p->value.shape());
  }
}

void Sgd::reset_state() {
  for (Tensor& v : velocity_) v.zero();
}

void Sgd::step() {
  const float lr = options_.learning_rate;
  for (std::size_t i = 0; i < params_.size(); ++i) {
    nn::Parameter& p = *params_[i];
    auto v = p.value.data();
    auto g = p.grad.data();
    if (options_.momentum == 0.0F) {
      for (std::size_t j = 0; j < v.size(); ++j) {
        const float grad = g[j] + options_.weight_decay * v[j];
        v[j] -= lr * grad;
      }
      continue;
    }
    auto vel = velocity_[i].data();
    for (std::size_t j = 0; j < v.size(); ++j) {
      const float grad = g[j] + options_.weight_decay * v[j];
      vel[j] = options_.momentum * vel[j] + grad;
      const float update =
          options_.nesterov ? grad + options_.momentum * vel[j] : vel[j];
      v[j] -= lr * update;
    }
  }
}

void Sgd::save_state(BufferWriter& writer) const {
  writer.write_u32(static_cast<std::uint32_t>(velocity_.size()));
  for (const Tensor& v : velocity_) encode_tensor(v, writer);
}

void Sgd::load_state(BufferReader& reader) {
  const std::uint32_t count = reader.read_u32();
  if (count != velocity_.size()) {
    throw SerializationError("Sgd state: checkpoint has " +
                             std::to_string(count) + " velocity buffers, " +
                             "optimizer has " +
                             std::to_string(velocity_.size()));
  }
  std::vector<Tensor> loaded;
  loaded.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    Tensor v = decode_tensor(reader);
    if (v.shape() != params_[i]->value.shape()) {
      throw SerializationError(
          "Sgd state: velocity " + std::to_string(i) + " expected shape " +
          params_[i]->value.shape().str() + ", got " + v.shape().str());
    }
    loaded.push_back(std::move(v));
  }
  velocity_ = std::move(loaded);
}

}  // namespace splitmed::optim
