// Adam (Kingma & Ba) with bias correction and optional L2 weight decay.
#pragma once

#include "src/optim/optimizer.hpp"
#include "src/tensor/tensor.hpp"

namespace splitmed::optim {

struct AdamOptions {
  float learning_rate = 1e-3F;
  float beta1 = 0.9F;
  float beta2 = 0.999F;
  float eps = 1e-8F;
  float weight_decay = 0.0F;
};

class Adam final : public Optimizer {
 public:
  Adam(std::vector<nn::Parameter*> params, AdamOptions options);

  void step() override;
  void reset_state() override;
  [[nodiscard]] float learning_rate() const override {
    return options_.learning_rate;
  }
  void set_learning_rate(float lr) override { options_.learning_rate = lr; }

  void save_state(BufferWriter& writer) const override;
  void load_state(BufferReader& reader) override;

 private:
  AdamOptions options_;
  std::vector<Tensor> m_;
  std::vector<Tensor> v_;
  std::int64_t t_ = 0;
};

}  // namespace splitmed::optim
