// Learning-rate schedules as pure epoch -> lr functions, applied by trainers.
#pragma once

#include <cstdint>
#include <functional>

namespace splitmed::optim {

using LrSchedule = std::function<float(std::int64_t epoch)>;

/// Constant lr.
LrSchedule constant_lr(float lr);

/// lr * gamma^(epoch / step_size) — classic step decay.
LrSchedule step_lr(float lr, std::int64_t step_size, float gamma);

/// Cosine annealing from lr to lr_min over total_epochs.
LrSchedule cosine_lr(float lr, float lr_min, std::int64_t total_epochs);

}  // namespace splitmed::optim
