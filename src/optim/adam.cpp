#include "src/optim/adam.hpp"

#include <cmath>

#include "src/common/error.hpp"
#include "src/serial/tensor_codec.hpp"

namespace splitmed::optim {

Adam::Adam(std::vector<nn::Parameter*> params, AdamOptions options)
    : Optimizer(std::move(params)), options_(options) {
  SPLITMED_CHECK(options_.learning_rate > 0.0F, "Adam: lr must be positive");
  SPLITMED_CHECK(options_.beta1 >= 0.0F && options_.beta1 < 1.0F &&
                     options_.beta2 >= 0.0F && options_.beta2 < 1.0F,
                 "Adam: betas must be in [0,1)");
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const nn::Parameter* p : params_) {
    m_.emplace_back(p->value.shape());
    v_.emplace_back(p->value.shape());
  }
}

void Adam::reset_state() {
  for (Tensor& m : m_) m.zero();
  for (Tensor& v : v_) v.zero();
  t_ = 0;
}

void Adam::step() {
  ++t_;
  const float bc1 =
      1.0F - std::pow(options_.beta1, static_cast<float>(t_));
  const float bc2 =
      1.0F - std::pow(options_.beta2, static_cast<float>(t_));
  const float lr = options_.learning_rate * std::sqrt(bc2) / bc1;
  for (std::size_t i = 0; i < params_.size(); ++i) {
    nn::Parameter& p = *params_[i];
    auto val = p.value.data();
    auto g = p.grad.data();
    auto m = m_[i].data();
    auto v = v_[i].data();
    for (std::size_t j = 0; j < val.size(); ++j) {
      const float grad = g[j] + options_.weight_decay * val[j];
      m[j] = options_.beta1 * m[j] + (1.0F - options_.beta1) * grad;
      v[j] = options_.beta2 * v[j] + (1.0F - options_.beta2) * grad * grad;
      val[j] -= lr * m[j] / (std::sqrt(v[j]) + options_.eps);
    }
  }
}

void Adam::save_state(BufferWriter& writer) const {
  writer.write_i64(t_);
  writer.write_u32(static_cast<std::uint32_t>(m_.size()));
  for (const Tensor& m : m_) encode_tensor(m, writer);
  for (const Tensor& v : v_) encode_tensor(v, writer);
}

void Adam::load_state(BufferReader& reader) {
  const std::int64_t t = reader.read_i64();
  if (t < 0) {
    throw SerializationError("Adam state: negative step count " +
                             std::to_string(t));
  }
  const std::uint32_t count = reader.read_u32();
  if (count != m_.size()) {
    throw SerializationError("Adam state: checkpoint has " +
                             std::to_string(count) + " moment buffers, " +
                             "optimizer has " + std::to_string(m_.size()));
  }
  std::vector<Tensor> m_loaded;
  std::vector<Tensor> v_loaded;
  m_loaded.reserve(count);
  v_loaded.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    Tensor m = decode_tensor(reader);
    if (m.shape() != params_[i]->value.shape()) {
      throw SerializationError(
          "Adam state: first moment " + std::to_string(i) +
          " expected shape " + params_[i]->value.shape().str() + ", got " +
          m.shape().str());
    }
    m_loaded.push_back(std::move(m));
  }
  for (std::uint32_t i = 0; i < count; ++i) {
    Tensor v = decode_tensor(reader);
    if (v.shape() != params_[i]->value.shape()) {
      throw SerializationError(
          "Adam state: second moment " + std::to_string(i) +
          " expected shape " + params_[i]->value.shape().str() + ", got " +
          v.shape().str());
    }
    v_loaded.push_back(std::move(v));
  }
  t_ = t;
  m_ = std::move(m_loaded);
  v_ = std::move(v_loaded);
}

}  // namespace splitmed::optim
