#include "src/optim/adam.hpp"

#include <cmath>

#include "src/common/error.hpp"

namespace splitmed::optim {

Adam::Adam(std::vector<nn::Parameter*> params, AdamOptions options)
    : Optimizer(std::move(params)), options_(options) {
  SPLITMED_CHECK(options_.learning_rate > 0.0F, "Adam: lr must be positive");
  SPLITMED_CHECK(options_.beta1 >= 0.0F && options_.beta1 < 1.0F &&
                     options_.beta2 >= 0.0F && options_.beta2 < 1.0F,
                 "Adam: betas must be in [0,1)");
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const nn::Parameter* p : params_) {
    m_.emplace_back(p->value.shape());
    v_.emplace_back(p->value.shape());
  }
}

void Adam::step() {
  ++t_;
  const float bc1 =
      1.0F - std::pow(options_.beta1, static_cast<float>(t_));
  const float bc2 =
      1.0F - std::pow(options_.beta2, static_cast<float>(t_));
  const float lr = options_.learning_rate * std::sqrt(bc2) / bc1;
  for (std::size_t i = 0; i < params_.size(); ++i) {
    nn::Parameter& p = *params_[i];
    auto val = p.value.data();
    auto g = p.grad.data();
    auto m = m_[i].data();
    auto v = v_[i].data();
    for (std::size_t j = 0; j < val.size(); ++j) {
      const float grad = g[j] + options_.weight_decay * val[j];
      m[j] = options_.beta1 * m[j] + (1.0F - options_.beta1) * grad;
      v[j] = options_.beta2 * v[j] + (1.0F - options_.beta2) * grad * grad;
      val[j] -= lr * m[j] / (std::sqrt(v[j]) + options_.eps);
    }
  }
}

}  // namespace splitmed::optim
