// Optimizer interface: owns no parameters, updates the ones it is given.
//
// The split framework instantiates one optimizer on the server (for L2…Lk)
// and one per platform (for L1), each over its own parameter set — exactly
// the paper's division of labour.
#pragma once

#include <vector>

#include "src/nn/parameter.hpp"
#include "src/serial/buffer.hpp"

namespace splitmed::optim {

class Optimizer {
 public:
  explicit Optimizer(std::vector<nn::Parameter*> params)
      : params_(std::move(params)) {}
  virtual ~Optimizer() = default;

  /// Applies one update from the accumulated gradients. Does NOT zero them.
  virtual void step() = 0;

  /// Zeroes all gradient accumulators.
  void zero_grad() {
    for (nn::Parameter* p : params_) p->zero_grad();
  }

  /// Current learning rate (mutable so schedules can drive it).
  [[nodiscard]] virtual float learning_rate() const = 0;
  virtual void set_learning_rate(float lr) = 0;

  /// Clears all accumulator state (momentum / moment estimates) back to the
  /// freshly-constructed value. Used by a cold platform rejoin: a platform
  /// that lost its local state restarts from the genesis L1 weights, and
  /// momentum accumulated against the lost trajectory must not leak in.
  virtual void reset_state() = 0;

  /// Serializes accumulator state (momentum / moment estimates). Hyper-
  /// parameters are NOT included: they come from config at reconstruction,
  /// so a checkpoint cannot silently override the configured run.
  virtual void save_state(BufferWriter& writer) const = 0;

  /// Mirror of save_state. Throws SerializationError when the stored
  /// accumulators do not match this optimizer's parameter shapes.
  virtual void load_state(BufferReader& reader) = 0;

  [[nodiscard]] const std::vector<nn::Parameter*>& parameters() const {
    return params_;
  }

 protected:
  std::vector<nn::Parameter*> params_;
};

}  // namespace splitmed::optim
