#include "src/core/minibatch_policy.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "src/common/error.hpp"

namespace splitmed::core {

std::vector<std::int64_t> minibatch_sizes(
    MinibatchPolicy policy, std::int64_t total_batch,
    const std::vector<std::int64_t>& shard_sizes) {
  const std::int64_t k = static_cast<std::int64_t>(shard_sizes.size());
  SPLITMED_CHECK(k > 0, "no platforms");
  SPLITMED_CHECK(total_batch >= k, "total batch " << total_batch
                                                  << " below one per platform");
  for (const auto s : shard_sizes) {
    SPLITMED_CHECK(s > 0, "empty shard");
  }

  std::vector<std::int64_t> out(shard_sizes.size(), 1);
  if (policy == MinibatchPolicy::kUniform) {
    std::fill(out.begin(), out.end(), total_batch / k);
    for (std::int64_t r = 0; r < total_batch % k; ++r) {
      ++out[static_cast<std::size_t>(r)];
    }
    return out;
  }

  // Proportional: largest-remainder apportionment with a floor of 1.
  const double total_data = static_cast<double>(
      std::accumulate(shard_sizes.begin(), shard_sizes.end(), std::int64_t{0}));
  std::int64_t assigned = k;
  std::vector<std::pair<double, std::size_t>> remainders;
  for (std::size_t i = 0; i < shard_sizes.size(); ++i) {
    const double exact = static_cast<double>(shard_sizes[i]) / total_data *
                         static_cast<double>(total_batch);
    const std::int64_t extra =
        std::max<std::int64_t>(0, static_cast<std::int64_t>(exact) - 1);
    out[i] += extra;
    assigned += extra;
    remainders.emplace_back(exact - std::floor(exact), i);
  }
  std::sort(remainders.rbegin(), remainders.rend());
  for (std::size_t r = 0; assigned < total_batch; ++assigned, ++r) {
    ++out[remainders[r % remainders.size()].second];
  }
  while (assigned > total_batch) {
    auto it = std::max_element(out.begin(), out.end());
    SPLITMED_ASSERT(*it > 1, "cannot trim below the one-example floor");
    --*it;
    --assigned;
  }
  return out;
}

const char* minibatch_policy_name(MinibatchPolicy policy) {
  switch (policy) {
    case MinibatchPolicy::kUniform: return "uniform";
    case MinibatchPolicy::kProportional: return "proportional";
  }
  return "unknown";
}

}  // namespace splitmed::core
