#include "src/core/protocol.hpp"

#include <string>

#include "src/common/error.hpp"
#include "src/obs/obs.hpp"
#include "src/serial/buffer.hpp"
#include "src/serial/codec.hpp"

namespace splitmed::core {

const char* msg_kind_name(MsgKind kind) {
  switch (kind) {
    case MsgKind::kActivation: return "activation";
    case MsgKind::kLogits: return "logits";
    case MsgKind::kLogitGrad: return "logit-grad";
    case MsgKind::kCutGrad: return "cut-grad";
    case MsgKind::kL1SyncUp: return "l1-sync-up";
    case MsgKind::kL1SyncDown: return "l1-sync-down";
    case MsgKind::kHeartbeat: return "heartbeat";
    case MsgKind::kJoinRequest: return "join-request";
    case MsgKind::kJoinAccept: return "join-accept";
    case MsgKind::kUpdateReject: return "update-reject";
  }
  return "unknown";
}

std::vector<std::uint8_t> encode_tensor_payload(const Tensor& t,
                                                WireCodec codec) {
  BufferWriter w;
  encode_tensor_tagged(t, codec, w);
  return w.take();
}

Tensor decode_tensor_payload(std::span<const std::uint8_t> payload,
                             WireCodec expected) {
  // postmortem() at this boundary covers every decode failure — truncated
  // buffers, unknown or mismatched codec tags, trailing bytes — so a
  // malformed frame dumps the flight recorder before the error unwinds past
  // protocol code.
  try {
    BufferReader r(payload);
    TaggedTensor tagged = decode_tensor_tagged(r);
    if (tagged.codec != expected) {
      throw ProtocolError(std::string("tensor frame tagged ") +
                          wire_codec_name(tagged.codec) +
                          " on a channel negotiated for " +
                          wire_codec_name(expected));
    }
    if (!r.exhausted()) {
      throw SerializationError("tensor payload has trailing bytes");
    }
    return std::move(tagged.tensor);
  } catch (const SerializationError& e) {
    obs::postmortem(e.what());
    throw;
  } catch (const ProtocolError& e) {
    obs::postmortem(e.what());
    throw;
  }
}

Envelope make_tensor_envelope(NodeId src, NodeId dst, std::uint32_t kind,
                              std::uint64_t round, const Tensor& t,
                              WireCodec codec) {
  Envelope e =
      make_envelope(src, dst, kind, round, encode_tensor_payload(t, codec));
  e.codec = codec;
  return e;
}

}  // namespace splitmed::core
