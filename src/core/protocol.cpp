#include "src/core/protocol.hpp"

#include "src/common/error.hpp"
#include "src/obs/obs.hpp"
#include "src/serial/buffer.hpp"
#include "src/serial/quantize.hpp"
#include "src/serial/tensor_codec.hpp"

namespace splitmed::core {

const char* msg_kind_name(MsgKind kind) {
  switch (kind) {
    case MsgKind::kActivation: return "activation";
    case MsgKind::kLogits: return "logits";
    case MsgKind::kLogitGrad: return "logit-grad";
    case MsgKind::kCutGrad: return "cut-grad";
    case MsgKind::kL1SyncUp: return "l1-sync-up";
    case MsgKind::kL1SyncDown: return "l1-sync-down";
  }
  return "unknown";
}

const char* wire_dtype_name(WireDtype dtype) {
  switch (dtype) {
    case WireDtype::kF32: return "f32";
    case WireDtype::kI8: return "i8";
  }
  return "unknown";
}

std::vector<std::uint8_t> encode_tensor_payload(const Tensor& t,
                                                WireDtype dtype) {
  BufferWriter w;
  if (dtype == WireDtype::kI8) {
    encode_tensor_i8(t, w);
  } else {
    encode_tensor(t, w);
  }
  return w.take();
}

Tensor decode_tensor_payload(std::span<const std::uint8_t> payload,
                             WireDtype dtype) {
  // postmortem() at this boundary covers every decode failure — truncated
  // buffers, bad dtype tags, trailing bytes — so a malformed frame dumps the
  // flight recorder before the error unwinds past protocol code.
  try {
    BufferReader r(payload);
    Tensor t =
        dtype == WireDtype::kI8 ? decode_tensor_i8(r) : decode_tensor(r);
    if (!r.exhausted()) {
      throw SerializationError("tensor payload has trailing bytes");
    }
    return t;
  } catch (const SerializationError& e) {
    obs::postmortem(e.what());
    throw;
  }
}

Envelope make_tensor_envelope(NodeId src, NodeId dst, std::uint32_t kind,
                              std::uint64_t round, const Tensor& t,
                              WireDtype dtype) {
  return make_envelope(src, dst, kind, round,
                       encode_tensor_payload(t, dtype));
}

}  // namespace splitmed::core
