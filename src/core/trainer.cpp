#include "src/core/trainer.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>

#include "src/common/error.hpp"
#include "src/common/logging.hpp"
#include "src/common/thread_pool.hpp"
#include "src/core/checkpoint.hpp"
#include "src/core/split_model.hpp"
#include "src/metrics/evaluate.hpp"
#include "src/nn/param_util.hpp"
#include "src/obs/critical_path.hpp"
#include "src/tensor/ops.hpp"

namespace splitmed::core {

void SplitConfig::validate(std::size_t num_platforms) const {
  SPLITMED_CHECK(num_platforms > 0, "partition has no platforms");
  SPLITMED_CHECK(rounds > 0, "rounds must be positive, got " << rounds);
  SPLITMED_CHECK(eval_every > 0,
                 "eval_every must be positive, got " << eval_every);
  SPLITMED_CHECK(total_batch > 0,
                 "total_batch must be positive, got " << total_batch);
  SPLITMED_CHECK(eval_batch > 0,
                 "eval_batch must be positive, got " << eval_batch);
  SPLITMED_CHECK(threads >= 0, "threads must be >= 0, got " << threads);
  SPLITMED_CHECK(participation > 0.0 && participation <= 1.0,
                 "participation must be in (0, 1]");
  faults.validate();
  recovery.validate();
  SPLITMED_CHECK(checkpoint_every >= 0,
                 "checkpoint_every must be >= 0, got " << checkpoint_every);
  SPLITMED_CHECK(checkpoint_every == 0 || !checkpoint_dir.empty(),
                 "checkpoint_every > 0 requires a checkpoint_dir");
  SPLITMED_CHECK(sync_l1_every >= 0,
                 "sync_l1_every must be >= 0, got " << sync_l1_every);
  if (faults.any()) {
    SPLITMED_CHECK(schedule == Schedule::kSequential,
                   "WAN fault injection requires the sequential schedule");
    SPLITMED_CHECK(sync_l1_every == 0,
                   "WAN fault injection does not cover the L1-sync extension");
  }
  if (schedule == Schedule::kBoundedStaleness) {
    SPLITMED_CHECK(staleness_bound >= 0,
                   "staleness_bound must be >= 0, got " << staleness_bound);
    SPLITMED_CHECK(sync_l1_every == 0,
                   "bounded staleness does not cover the L1-sync extension "
                   "(its sync barrier assumes drained round boundaries)");
  }
  if (membership.enabled) {
    membership.validate(num_platforms);
    churn.validate(num_platforms);
    SPLITMED_CHECK(schedule == Schedule::kSequential,
                   "membership requires the sequential schedule");
    SPLITMED_CHECK(sync_l1_every == 0,
                   "membership does not cover the L1-sync extension");
    SPLITMED_CHECK(participation >= 1.0,
                   "membership subsumes participation sampling (the churn "
                   "plan is the absence model) — participation must stay 1.0, "
                   "got "
                       << participation);
  } else {
    SPLITMED_CHECK(!churn.any(),
                   "churn plan has " << churn.crashes.size() << " crash and "
                                     << churn.poisons.size()
                                     << " poison event(s) but "
                                        "membership.enabled is false");
  }
}

SplitTrainer::SplitTrainer(ModelBuilder builder, const data::Dataset& train,
                           data::Partition partition,
                           const data::Dataset& test, SplitConfig config)
    : config_(std::move(config)), train_(&train), test_(&test) {
  config_.validate(partition.size());
  if (config_.threads > 0) set_global_threads(config_.threads);
  const bool faulted = config_.faults.any();
  if (config_.obs.enabled) {
    obs_session_ = std::make_unique<obs::ObsSession>(config_.obs);
    obs_session_->set_sim_source([this] { return network_.clock().now(); });
    obs::set_kind_namer([](std::uint32_t kind) {
      return std::string(msg_kind_name(static_cast<MsgKind>(kind)));
    });
    obs::metrics()
        ->gauge("splitmed_threads",
                "Compute threads in the tensor-substrate pool")
        .set(static_cast<double>(global_threads()));
    obs::metrics()
        ->gauge("splitmed_platforms",
                "Participating platform (hospital) count")
        .set(static_cast<double>(partition.size()));
  }
  participation_rng_ = Rng(config_.seed ^ 0xC2B2AE3D27D4EB4FULL);
  const std::int64_t k = static_cast<std::int64_t>(partition.size());

  topology_ = config_.hospital_wan
                  ? net::build_hospital_star(network_, k)
                  : net::build_uniform_star(network_, k, config_.uniform_link);
  if (faulted) {
    // A dedicated stream: fault draws never perturb loaders or init.
    network_.set_fault_seed(config_.seed ^ 0x9E3779B97F4A7C15ULL);
    network_.set_default_fault_plan(config_.faults);
  }

  // Replica 0 supplies the server body; every replica k supplies platform
  // k's L1. Deterministic builders make all replicas identical, realizing
  // the paper's "same initial weights in L1" postulate.
  std::vector<std::int64_t> shard_sizes;
  Rng loader_rng(config_.seed);
  for (std::int64_t p = 0; p < k; ++p) {
    models::BuiltModel replica = builder();
    const std::size_t cut = config_.cut > 0
                                ? static_cast<std::size_t>(config_.cut)
                                : replica.default_cut;
    if (p == 0) model_name_ = replica.name;
    SplitParts parts = split_at(std::move(replica.net), cut);
    if (p == 0) {
      ServerOptions server_opt;
      server_opt.codec = config_.codec;
      server_opt.allow_queueing = config_.schedule != Schedule::kSequential;
      server_opt.tolerate_faults = config_.faults.any();
      server_ = std::make_unique<CentralServer>(topology_.server,
                                                std::move(parts.server),
                                                config_.sgd, server_opt);
    }
    SPLITMED_CHECK(!partition[static_cast<std::size_t>(p)].empty(),
                   "platform " << p << " has an empty shard");
    shard_sizes.push_back(static_cast<std::int64_t>(
        partition[static_cast<std::size_t>(p)].size()));
    // drop_last: a platform always ships minibatches of exactly s_k — the
    // protocol's message sizes are constant, as the paper's byte model
    // assumes. Short epoch tails are dropped (reshuffled into next epoch).
    data::DataLoader loader(train, partition[static_cast<std::size_t>(p)],
                            /*batch_size=*/1,
                            loader_rng.split(static_cast<std::uint64_t>(p)),
                            /*drop_last=*/true);
    PlatformOptions platform_opt;
    platform_opt.codec = config_.codec;
    platform_opt.smash_noise_std = config_.smash_noise_std;
    platform_opt.noise_seed = config_.seed;
    platform_opt.tolerate_faults = config_.faults.any();
    platforms_.push_back(std::make_unique<PlatformNode>(
        topology_.platforms[static_cast<std::size_t>(p)], topology_.server,
        std::move(parts.platform), std::move(loader), config_.sgd,
        platform_opt));
    replica_rngs_.push_back(std::move(replica.rng));
  }

  minibatches_ =
      minibatch_sizes(config_.policy, config_.total_batch, shard_sizes);
  for (std::size_t p = 0; p < platforms_.size(); ++p) {
    SPLITMED_CHECK(minibatches_[p] <= shard_sizes[p],
                   "platform " << p << ": minibatch " << minibatches_[p]
                               << " exceeds its shard of " << shard_sizes[p]
                               << " examples — lower total_batch or use the "
                                  "proportional policy");
    platforms_[p]->set_minibatch_size(minibatches_[p]);
    examples_per_round_ += minibatches_[p];
  }
  scheduler_ = std::make_unique<EventScheduler>(network_, *server_,
                                                platforms_);
  if (obs::CriticalPathAnalyzer* cp = obs::attribution()) {
    std::vector<std::string> names;
    names.reserve(network_.node_count());
    for (NodeId n = 0; n < network_.node_count(); ++n) {
      names.push_back(network_.node_name(n));
    }
    cp->set_topology(topology_.server, std::move(names));
  }
  if (config_.membership.enabled) {
    membership_ = std::make_unique<MembershipService>(
        config_.membership, config_.churn, platforms_.size(), config_.seed,
        minibatches_);
    server_->set_membership(membership_.get(), topology_.platforms);
    // Genesis L1 snapshot: at construction every replica is identical (the
    // paper's postulate), so platform 0's flattened values ARE the weights a
    // cold rejoin restarts from — the server never sees a CURRENT L1.
    server_->set_genesis_l1(
        nn::flatten_values(platforms_[0]->l1().parameters()));
  }
  report_.protocol = "split";
  report_.model = model_name_;
  if (!config_.resume_from.empty()) {
    load_checkpoint(resolve_resume_dir(config_.resume_from));
  }
}

PlatformNode& SplitTrainer::platform(std::size_t k) {
  SPLITMED_CHECK(k < platforms_.size(), "platform index out of range");
  return *platforms_[k];
}

void SplitTrainer::run_platform_step(PlatformNode& platform,
                                     std::uint64_t step_id) {
  obs::Span span(obs::trace(), "trainer.step", "trainer");
  span.arg("platform", static_cast<std::uint64_t>(platform.id()));
  span.arg("step", step_id);
  platform.send_activation(network_, step_id);
  server_->handle(network_, network_.receive(server_->id()));   // activation
  platform.handle(network_, network_.receive(platform.id()));   // logits
  server_->handle(network_, network_.receive(server_->id()));   // logit grad
  platform.handle(network_, network_.receive(platform.id()));   // cut grad
}

bool SplitTrainer::await_platform_progress(PlatformNode& platform) {
  const PlatformState entry = platform.state();
  double timeout = config_.recovery.timeout_sec;
  for (int attempt = 0; attempt <= config_.recovery.max_retries; ++attempt) {
    const double deadline = network_.clock().now() + timeout;
    while (platform.state() == entry) {
      // Deliver the globally earliest frame (the network's arrival index).
      // Frames for other platforms are late replies to already-completed or
      // abandoned steps — their state machines count and ignore them; the
      // clock passes through their arrivals exactly as it would when that
      // platform eventually pumped them itself.
      const auto event = network_.next_event();
      if (!event) break;  // nothing in flight at all — only a retransmit
                          // can help
      if (event->arrival > deadline) break;  // beyond this timeout window
      const auto env = network_.receive_before(event->node, deadline);
      // nullopt: the window held only corrupted frames (now discarded and
      // counted) — re-evaluate the queue.
      if (!env) continue;
      scheduler_->dispatch(*env);
    }
    if (platform.state() != entry) return true;
    if (obs::CriticalPathAnalyzer* cp = obs::attribution()) {
      // Waiting out the rest of the timeout window is pure recovery
      // overhead, owned by the unresponsive platform.
      cp->note_timeout_wait(network_.clock().now(), deadline, platform.id());
    }
    network_.clock().advance_to(deadline);
    if (attempt == config_.recovery.max_retries) break;
    if (obs::TraceRecorder* tr = obs::trace()) {
      tr->instant("trainer.timeout", "fault",
                  {obs::arg("platform",
                            static_cast<std::uint64_t>(platform.id())),
                   obs::arg("attempt",
                            static_cast<std::uint64_t>(attempt + 1))});
    }
    if (obs::FlightRecorder* fr = obs::flight()) {
      fr->note(network_.clock().now(),
               "TIMEOUT platform " + std::to_string(platform.id()) +
                   " attempt " + std::to_string(attempt + 1) +
                   " — retransmitting");
    }
    platform.resend_last(network_);
    timeout *= config_.recovery.backoff;
  }
  return false;
}

SplitTrainer::StepOutcome SplitTrainer::run_platform_step_reliable(
    PlatformNode& platform, std::uint64_t step_id) {
  obs::Span span(obs::trace(), "trainer.step", "trainer");
  span.arg("platform", static_cast<std::uint64_t>(platform.id()));
  span.arg("step", step_id);
  const std::int64_t before = platform.steps_completed();
  server_->expect_round(step_id);
  platform.send_activation(network_, step_id);
  // Stage 1: reach kAwaitCutGrad (activation delivered, logits back).
  // Stage 2: reach kIdle (logit grad delivered, cut grad back).
  // Either stage may instead end at kIdle on a kUpdateReject (membership
  // admission refused the update and the platform aborted the step).
  for (int stage = 0; stage < 2; ++stage) {
    if (!await_platform_progress(platform)) {
      SPLITMED_LOG(kWarn) << "platform " << platform.id()
                          << " unreachable in round " << step_id
                          << " — skipping its step";
      span.arg("abandoned", true);
      if (obs::FlightRecorder* fr = obs::flight()) {
        fr->note(network_.clock().now(),
                 "ABANDON step " + std::to_string(step_id) + ": platform " +
                     std::to_string(platform.id()) +
                     " unreachable, retries exhausted");
      }
      platform.abort_step();
      server_->abort_pending(platform.id());
      return StepOutcome::kUnreachable;
    }
    if (platform.state() == PlatformState::kIdle) break;
  }
  if (platform.steps_completed() > before) return StepOutcome::kCompleted;
  span.arg("rejected", true);
  return StepOutcome::kRejected;
}

SplitTrainer::StepOutcome SplitTrainer::run_membership_step(
    PlatformNode& platform, std::uint64_t step_id) {
  obs::Span span(obs::trace(), "trainer.step", "trainer");
  span.arg("platform", static_cast<std::uint64_t>(platform.id()));
  span.arg("step", step_id);
  const std::int64_t before = platform.steps_completed();
  platform.send_activation(network_, step_id);
  server_->handle(network_, network_.receive(server_->id()));  // activation
  platform.handle(network_, network_.receive(platform.id()));  // logits|reject
  if (platform.state() != PlatformState::kIdle) {
    server_->handle(network_, network_.receive(server_->id()));  // logit grad
    platform.handle(network_, network_.receive(platform.id()));  // cut|reject
  }
  if (platform.steps_completed() > before) return StepOutcome::kCompleted;
  span.arg("rejected", true);
  return StepOutcome::kRejected;
}

void SplitTrainer::drain_network() {
  while (const auto event = network_.next_event()) {
    const auto env = network_.receive_before(
        event->node, std::numeric_limits<double>::infinity());
    if (!env) continue;  // window held only corrupted frames
    scheduler_->dispatch(*env);
  }
}

bool SplitTrainer::await_join(PlatformNode& platform) {
  double timeout = config_.recovery.timeout_sec;
  for (int attempt = 0; attempt <= config_.recovery.max_retries; ++attempt) {
    const double deadline = network_.clock().now() + timeout;
    while (platform.awaiting_join()) {
      const auto event = network_.next_event();
      if (!event) break;
      if (event->arrival > deadline) break;
      const auto env = network_.receive_before(event->node, deadline);
      if (!env) continue;
      scheduler_->dispatch(*env);
    }
    if (!platform.awaiting_join()) return true;
    if (obs::CriticalPathAnalyzer* cp = obs::attribution()) {
      cp->note_timeout_wait(network_.clock().now(), deadline, platform.id());
    }
    network_.clock().advance_to(deadline);
    if (attempt == config_.recovery.max_retries) break;
    platform.resend_last(network_);
    timeout *= config_.recovery.backoff;
  }
  return false;
}

bool SplitTrainer::run_rejoin_handshake(std::size_t p, std::int64_t round) {
  PlatformNode& platform = *platforms_[p];
  const RejoinMode mode = membership_->rejoin_mode(p);
  platform.send_join_request(network_, static_cast<std::uint32_t>(p),
                             static_cast<std::uint64_t>(round), mode);
  if (!config_.faults.any()) {
    server_->handle(network_, network_.receive(server_->id()));    // request
    platform.handle(network_, network_.receive(platform.id()));    // accept
  } else if (!await_join(platform)) {
    // Request or accept lost beyond the retry budget: abandon the handshake;
    // begin_round re-promotes the platform to REJOINING next round.
    if (obs::FlightRecorder* fr = obs::flight()) {
      fr->note(network_.clock().now(),
               "ABANDON join: platform " + std::to_string(platform.id()) +
                   " unreachable, retries exhausted");
    }
    platform.abort_join();
    return false;
  }
  membership_->note_rejoin_completed(p, network_.clock().now());
  return true;
}

void SplitTrainer::run_membership_round(std::int64_t round,
                                        std::vector<std::size_t>& stepped) {
  const double round_start = network_.clock().now();
  membership_->begin_round(round, round_start);
  const double deadline = round_start + config_.membership.round_deadline_sec;

  // Poison spells are chaos-harness config, reapplied from the plan every
  // round — they need no checkpoint state.
  for (std::size_t p = 0; p < platforms_.size(); ++p) {
    if (const auto poison = membership_->active_poison(p, round)) {
      platforms_[p]->set_poison(poison->kind, poison->scale);
    } else {
      platforms_[p]->clear_poison();
    }
  }

  // Liveness beacons, delivered before any step so the server's lease sweep
  // next round sees them even when this round's steps never start.
  for (std::size_t p = 0; p < platforms_.size(); ++p) {
    if (membership_->sends_heartbeat(p, network_.clock().now())) {
      platforms_[p]->send_heartbeat(network_, static_cast<std::uint32_t>(p),
                                    static_cast<std::uint64_t>(round));
      membership_->note_heartbeat_sent(p, network_.clock().now());
    }
  }
  drain_network();

  // Returned platforms owe a join handshake before they may step again.
  for (std::size_t p = 0; p < platforms_.size(); ++p) {
    if (membership_->needs_rejoin(p)) run_rejoin_handshake(p, round);
  }

  // Deadline-gated protocol steps, start order rotated by round so a tight
  // deadline does not starve the same tail of hospitals every round. The
  // first eligible platform always steps (the liveness floor every other
  // schedule also guarantees); the deadline gates the rest.
  const std::size_t n = platforms_.size();
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t p = (i + static_cast<std::size_t>(round)) % n;
    if (!membership_->can_step(p)) continue;
    if (!stepped.empty() && network_.clock().now() >= deadline) {
      membership_->note_deadline_miss(p);
      continue;
    }
    StepOutcome outcome;
    if (config_.faults.any()) {
      outcome = run_platform_step_reliable(*platforms_[p], ++step_id_);
    } else {
      outcome = run_membership_step(*platforms_[p], ++step_id_);
    }
    if (outcome == StepOutcome::kCompleted) {
      stepped.push_back(p);
      membership_->note_step_completed(p, network_.clock().now());
    } else if (outcome == StepOutcome::kUnreachable) {
      ++skipped_steps_;
    }
    // kRejected: the platform aborted on the server's refusal — the strike
    // is on the ledger and the drawn minibatch rides in examples_lost.
  }
  // Completion order is the rotated start order; report ascending so
  // downstream accounting is independent of the rotation.
  std::sort(stepped.begin(), stepped.end());
  last_round_void_ =
      membership_->end_round(round,
                             static_cast<std::int64_t>(stepped.size()));
}

void SplitTrainer::run_event_round(
    const std::vector<std::size_t>& participants, std::int64_t round,
    bool drain_fully, std::vector<std::size_t>& stepped) {
  // Idle participants begin a step; a participant still mid-step (a
  // straggler under bounded staleness) keeps its in-flight step — it will
  // fold in when its frames arrive, never twice in one round.
  for (const std::size_t p : participants) {
    if (!scheduler_->busy(p)) {
      scheduler_->begin_step(p, ++step_id_, round);
    }
  }
  // The round boundary waits for every step older than the staleness bound
  // (all of them when draining fully: overlapped rounds, checkpoint
  // boundaries, the final round) and for at least one completion.
  const std::int64_t horizon =
      drain_fully ? round : round - config_.staleness_bound;
  std::vector<std::size_t> completed;
  scheduler_->drain(horizon, completed);
  // Completion order is arrival order; report in ascending platform index
  // so downstream accounting (loss averaging, example sums) is independent
  // of WAN timing.
  std::sort(completed.begin(), completed.end());
  stepped = std::move(completed);
}

std::vector<std::size_t> SplitTrainer::sample_participants(
    std::int64_t round) {
  std::vector<std::size_t> out;
  if (config_.participation >= 1.0) {
    out.resize(platforms_.size());
    for (std::size_t p = 0; p < platforms_.size(); ++p) out[p] = p;
    return out;
  }
  for (std::size_t p = 0; p < platforms_.size(); ++p) {
    // Double-precision draw: narrowing the configured rate to float shifted
    // it by up to ~6e-8, so extreme rates (participation = 1e-6 sweeps)
    // sampled a measurably different distribution than configured.
    if (participation_rng_.bernoulli(config_.participation)) {
      out.push_back(p);
    }
  }
  if (out.empty()) {
    // Liveness: at least one hospital joins every round.
    out.push_back(static_cast<std::size_t>(
        static_cast<std::uint64_t>(round) % platforms_.size()));
  }
  return out;
}

void SplitTrainer::sync_l1(std::uint64_t round) {
  obs::Span span(obs::trace(), "trainer.sync_l1", "trainer");
  span.arg("round", round);
  // Weighted average of all platform L1 parameter vectors, by shard size.
  Tensor mean;
  double total_weight = 0.0;
  for (auto& p : platforms_) total_weight += static_cast<double>(p->shard_size());
  bool first = true;
  for (auto& p : platforms_) {
    const Tensor flat = nn::flatten_values(p->l1().parameters());
    network_.send(make_tensor_envelope(p->id(), server_->id(),
                                       MsgKind::kL1SyncUp, round, flat));
    const Tensor received =
        decode_tensor_payload(network_.receive(server_->id()).payload);
    const float w = static_cast<float>(
        static_cast<double>(p->shard_size()) / total_weight);
    if (first) {
      mean = ops::scale(received, w);
      first = false;
    } else {
      ops::axpy(w, received, mean);
    }
  }
  for (auto& p : platforms_) {
    network_.send(make_tensor_envelope(server_->id(), p->id(),
                                       MsgKind::kL1SyncDown, round, mean));
    const Tensor down =
        decode_tensor_payload(network_.receive(p->id()).payload);
    nn::load_values(p->l1().parameters(), down);
  }
}

double SplitTrainer::round_train_loss(
    const std::vector<std::size_t>& participants) const {
  // Once every platform has stepped at least once, all last_loss() values
  // are real (if possibly a round stale) and the all-platform average is the
  // smoother curve. Before that — early rounds under partial participation —
  // averaging everyone would mix initial last_loss_ = 0 placeholders into
  // the reported loss, biasing the Fig. 4 curve low, so only this round's
  // participants count.
  bool all_stepped = true;
  for (const auto& p : platforms_) {
    if (p->steps_completed() == 0) {
      all_stepped = false;
      break;
    }
  }
  double loss = 0.0;
  if (all_stepped) {
    for (const auto& p : platforms_) loss += p->last_loss();
    return loss / static_cast<double>(platforms_.size());
  }
  SPLITMED_ASSERT(!participants.empty(), "round without participants");
  // Only platforms that have completed at least one step carry a real
  // last_loss(); a never-stepped platform's 0.0 is a placeholder, not an
  // observation. Averaging placeholders in (the pre-fix behaviour) reported
  // a fake 0.0 loss whenever every participant of a round was abandoned
  // under faults.
  std::int64_t counted = 0;
  for (const std::size_t p : participants) {
    if (platforms_[p]->steps_completed() == 0) continue;
    loss += platforms_[p]->last_loss();
    ++counted;
  }
  if (counted > 0) return loss / static_cast<double>(counted);
  // Nobody in the fallback set has ever stepped (e.g. a 100% drop plan in
  // the first round): carry the previous curve point forward, or report NaN
  // when there is no observation at all — never a fabricated 0.0.
  if (!report_.curve.empty()) return report_.curve.back().train_loss;
  return std::numeric_limits<double>::quiet_NaN();
}

double SplitTrainer::evaluate() {
  double acc = 0.0;
  for (auto& p : platforms_) {
    acc += metrics::evaluate_composite(p->l1(), &server_->body(), *test_,
                                       config_.eval_batch);
  }
  return acc / static_cast<double>(platforms_.size());
}

metrics::TrainReport SplitTrainer::run() {
  // Buckets for the per-round wall-time histogram: synthetic smoke runs sit
  // in the 10ms decade, the full Fig. 4 workloads in the seconds decade.
  static const std::vector<double> kRoundWallBounds{
      0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0};
  for (std::int64_t round = static_cast<std::int64_t>(next_round_);
       round <= config_.rounds; ++round) {
    obs::Span round_span(obs::trace(), "trainer.round", "trainer");
    round_span.arg("round", static_cast<std::uint64_t>(round));
    if (obs::CriticalPathAnalyzer* cp = obs::attribution()) {
      cp->begin_round(round, network_.clock().now());
    }
    const bool timed = obs::metrics() != nullptr;
    const auto round_begin = timed ? std::chrono::steady_clock::now()
                                   : std::chrono::steady_clock::time_point{};
    if (config_.lr_schedule) {
      const auto epoch = static_cast<std::int64_t>(
          static_cast<double>(examples_processed_) /
          static_cast<double>(train_->size()));
      const float lr = config_.lr_schedule(epoch);
      server_->set_learning_rate(lr);
      for (auto& p : platforms_) p->set_learning_rate(lr);
    }
    const auto participants = sample_participants(round);
    // Under fault injection a participant's step can be abandoned (hospital
    // unreachable); only platforms that actually stepped count toward the
    // examples processed and the reported loss.
    std::vector<std::size_t> stepped;
    if (membership_) {
      run_membership_round(round, stepped);
    } else if (config_.schedule != Schedule::kSequential) {
      // Event-driven schedules: checkpoint boundaries and the final round
      // force a full drain barrier (quiescence — every straggler folds in
      // before state is captured or the report closes).
      const bool drain_fully =
          config_.schedule == Schedule::kOverlapped ||
          round == config_.rounds ||
          (config_.checkpoint_every > 0 &&
           round % config_.checkpoint_every == 0) ||
          (config_.sync_l1_every > 0 && round % config_.sync_l1_every == 0);
      run_event_round(participants, round, drain_fully, stepped);
    } else if (!config_.faults.any()) {
      for (const std::size_t p : participants) {
        run_platform_step(*platforms_[p], ++step_id_);
      }
      stepped = participants;
    } else {
      for (const std::size_t p : participants) {
        if (run_platform_step_reliable(*platforms_[p], ++step_id_) ==
            StepOutcome::kCompleted) {
          stepped.push_back(p);
        } else {
          // Without membership the server never rejects, so every
          // non-completed step was an unreachable hospital.
          ++skipped_steps_;
        }
      }
    }
    for (const std::size_t p : stepped) {
      examples_processed_ += minibatches_[p];
    }
    if (obs::MetricsRegistry* m = obs::metrics()) {
      m->gauge("splitmed_active_platforms",
               "Platforms whose protocol step completed this round")
          .set(static_cast<double>(stepped.size()));
    }
    if (obs::Gauge* g = obs::event_queue_depth_gauge()) {
      g->set(static_cast<double>(network_.total_in_flight()));
    }
    // Every protocol step of this round has folded in (or been abandoned),
    // so the round's attributable sim time is complete. Eval and
    // checkpointing below are sim-instantaneous; the periodic L1 sync does
    // move the clock, but that time belongs to the sync barrier, not to any
    // round's critical path — it falls in the gap between this close and the
    // next begin.
    if (obs::CriticalPathAnalyzer* cp = obs::attribution()) {
      cp->close_round(round, network_.clock().now());
    }
    if (config_.sync_l1_every > 0 && round % config_.sync_l1_every == 0) {
      sync_l1(step_id_);
    }

    const bool budget_hit =
        config_.byte_budget > 0 &&
        network_.stats().total_bytes() >= config_.byte_budget;
    if (round % config_.eval_every == 0 || round == config_.rounds ||
        budget_hit) {
      metrics::CurvePoint point;
      point.step = round;
      point.epoch = static_cast<double>(examples_processed_) /
                    static_cast<double>(train_->size());
      point.cumulative_bytes = network_.stats().total_bytes();
      point.sim_seconds = network_.clock().now();
      // When every participant was unreachable this round, fall back to the
      // sampled participants' (stale) losses rather than averaging nothing.
      // A VOID membership round (below min_quorum) carries the previous
      // point's loss instead — the round is declared not to have happened.
      if (membership_ && last_round_void_ && !report_.curve.empty()) {
        point.train_loss = report_.curve.back().train_loss;
      } else {
        point.train_loss = round_train_loss(stepped.empty() ? participants
                                                            : stepped);
      }
      {
        obs::Span eval_span(obs::trace(), "trainer.eval", "trainer");
        eval_span.arg("round", static_cast<std::uint64_t>(round));
        point.test_accuracy = evaluate();
      }
      if (obs::TraceRecorder* tr = obs::trace()) {
        tr->counter("train_loss", point.train_loss);
        tr->counter("test_accuracy", point.test_accuracy);
        tr->counter("cumulative_bytes",
                    static_cast<double>(point.cumulative_bytes));
      }
      if (obs::MetricsRegistry* m = obs::metrics()) {
        m->gauge("splitmed_train_loss", "Round-mean training loss")
            .set(point.train_loss);
        m->gauge("splitmed_test_accuracy",
                 "Mean composite-model test accuracy")
            .set(point.test_accuracy);
        m->gauge("splitmed_sim_seconds", "Simulated WAN clock")
            .set(point.sim_seconds);
      }
      report_.curve.push_back(point);
      SPLITMED_LOG(kInfo) << "split round " << round << " loss "
                          << point.train_loss << " acc "
                          << point.test_accuracy << " bytes "
                          << point.cumulative_bytes;
      report_.steps_completed = round;
      report_.final_accuracy = point.test_accuracy;
    }
    next_round_ = static_cast<std::uint64_t>(round) + 1;
    // Checkpoint at the round boundary (network quiescent, every node
    // idle), after the curve point so a resumed report continues it.
    // Saving reads but never mutates training state — the curve is bitwise
    // identical with checkpointing on or off.
    if (config_.checkpoint_every > 0 &&
        round % config_.checkpoint_every == 0) {
      obs::Span ckpt_span(obs::trace(), "trainer.checkpoint", "trainer");
      ckpt_span.arg("round", static_cast<std::uint64_t>(round));
      obs::flight_note(network_.clock().now(),
                       "checkpoint round " + std::to_string(round));
      save_checkpoint(config_.checkpoint_dir,
                      static_cast<std::uint64_t>(round));
    }
    if (timed) {
      obs::metrics()
          ->histogram("splitmed_round_wall_seconds",
                      "Host wall-clock time per training round",
                      kRoundWallBounds)
          .observe(std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - round_begin)
                       .count());
    }
    if (budget_hit) break;
  }
  report_.total_bytes = network_.stats().total_bytes();
  report_.total_sim_seconds = network_.clock().now();
  report_.skipped_steps = skipped_steps_;
  report_.examples_lost = 0;
  for (const auto& p : platforms_) report_.examples_lost += p->examples_lost();
  if (membership_) {
    // Outage windows are the membership extension of examples_lost: the
    // minibatches an offline hospital never even drew.
    const MembershipLedger& led = membership_->ledger();
    report_.examples_lost += led.outage_examples_lost;
    report_.rejected_updates = led.rejected_updates();
    report_.quarantines = led.quarantines;
    report_.void_rounds = led.void_rounds;
    report_.deadline_misses = led.deadline_misses;
  }
  return report_;
}

}  // namespace splitmed::core
