// Wire protocol of the split-learning framework (the paper's Fig. 2/3).
//
// One training step for platform k is exactly four messages:
//   1. kActivation  platform -> server : L1 outputs on minibatch s_k
//   2. kLogits      server -> platform : Lk outputs for that minibatch
//   3. kLogitGrad   platform -> server : dLoss/dlogits (loss computed where
//                                        the labels live — on the platform)
//   4. kCutGrad     server -> platform : dLoss/d(L1 output)
// kL1SyncUp/Down implement the optional L1 weight-averaging extension
// (ablation; the paper never re-syncs L1 after initialization).
//
// Tensor payloads are codec-tagged (serial/codec.hpp): the negotiated
// WireCodec (SplitConfig::codec) applies to the bulky activation/cut-grad
// messages; logits and logit-grads are always kF32. A frame whose tag does
// not match what the channel negotiated raises ProtocolError — never UB,
// never a silently mis-decoded tensor.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "src/serial/message.hpp"
#include "src/serial/wire_codec.hpp"
#include "src/tensor/tensor.hpp"

namespace splitmed::core {

enum class MsgKind : std::uint32_t {
  kActivation = 1,
  kLogits = 2,
  kLogitGrad = 3,
  kCutGrad = 4,
  kL1SyncUp = 5,
  kL1SyncDown = 6,
  // Membership control plane (src/core/membership.hpp). Only flows when
  // SplitConfig::membership.enabled — a zero-churn, membership-off session
  // never puts these on the wire, keeping the golden byte series fixed.
  kHeartbeat = 7,    ///< platform -> server : liveness beacon
  kJoinRequest = 8,  ///< platform -> server : rejoin handshake open
  kJoinAccept = 9,   ///< server -> platform : admission (+ genesis L1 if cold)
  kUpdateReject = 10,  ///< server -> platform : update refused, step aborted
};

/// Readable name for reports ("activation", "logits", ...).
const char* msg_kind_name(MsgKind kind);

/// Serializes one tensor as a codec-tagged payload.
std::vector<std::uint8_t> encode_tensor_payload(const Tensor& t,
                                                WireCodec codec =
                                                    WireCodec::kF32);

/// Parses a payload that must contain exactly one tensor tagged `expected`.
/// Unknown tags and malformed frames raise SerializationError; a valid tag
/// that is not the negotiated one raises ProtocolError.
Tensor decode_tensor_payload(std::span<const std::uint8_t> payload,
                             WireCodec expected = WireCodec::kF32);

/// Builds a protocol envelope around one tensor (Envelope::codec mirrors the
/// payload tag for per-codec byte accounting). The uint32 overload exists
/// for baseline protocols with their own kind namespaces.
Envelope make_tensor_envelope(NodeId src, NodeId dst, std::uint32_t kind,
                              std::uint64_t round, const Tensor& t,
                              WireCodec codec = WireCodec::kF32);
inline Envelope make_tensor_envelope(NodeId src, NodeId dst, MsgKind kind,
                                     std::uint64_t round, const Tensor& t,
                                     WireCodec codec = WireCodec::kF32) {
  return make_tensor_envelope(src, dst, static_cast<std::uint32_t>(kind),
                              round, t, codec);
}

}  // namespace splitmed::core
