// CentralServer — owns the hidden layers L2..Lk and the output layer.
//
// Sees only L1 activations and logit gradients — never raw patient data or
// labels (the paper's privacy argument). Because it trains on every
// platform's activations it realizes the "training with all data" benefit.
#pragma once

#include <deque>

#include "src/core/protocol.hpp"
#include "src/net/network.hpp"
#include "src/nn/sequential.hpp"
#include "src/optim/sgd.hpp"

namespace splitmed::core {

/// Server-side protocol extensions (defaults = the paper's behaviour).
struct ServerOptions {
  /// Must match the platforms' PlatformOptions::wire_dtype.
  WireDtype wire_dtype = WireDtype::kF32;
  /// When true, activations arriving while a backward is outstanding are
  /// queued and served FIFO (the overlapped schedule); when false they are
  /// a protocol violation (the paper's strictly sequential workflow).
  bool allow_queueing = false;
};

class CentralServer {
 public:
  CentralServer(NodeId id, nn::Sequential body, const optim::SgdOptions& opt,
                ServerOptions options = {});

  /// Handles kActivation (forward L2..Lk, reply logits) and kLogitGrad
  /// (backward, optimizer step, reply cut gradient). The protocol is
  /// sequential per platform: an activation's backward must complete before
  /// the next activation is PROCESSED; with allow_queueing the next
  /// activation may ARRIVE early and waits its turn.
  void handle(net::Network& network, const Envelope& envelope);

  void set_learning_rate(float lr) { opt_.set_learning_rate(lr); }

  [[nodiscard]] NodeId id() const { return id_; }
  [[nodiscard]] nn::Sequential& body() { return body_; }
  [[nodiscard]] std::int64_t steps_completed() const {
    return steps_completed_;
  }

 private:
  /// Runs forward on a (decoded) activation and replies with logits.
  void process_activation(net::Network& network, const Envelope& envelope);

  NodeId id_;
  nn::Sequential body_;
  optim::Sgd opt_;
  ServerOptions options_;

  bool awaiting_grad_ = false;
  NodeId pending_platform_ = 0;
  std::uint64_t pending_round_ = 0;
  std::int64_t steps_completed_ = 0;
  std::deque<Envelope> queued_activations_;
};

}  // namespace splitmed::core
