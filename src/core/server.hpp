// CentralServer — owns the hidden layers L2..Lk and the output layer.
//
// Sees only L1 activations and logit gradients — never raw patient data or
// labels (the paper's privacy argument). Because it trains on every
// platform's activations it realizes the "training with all data" benefit.
#pragma once

#include <deque>
#include <map>
#include <vector>

#include "src/core/membership.hpp"
#include "src/core/protocol.hpp"
#include "src/net/network.hpp"
#include "src/nn/sequential.hpp"
#include "src/optim/sgd.hpp"

namespace splitmed::core {

/// Server-side protocol extensions (defaults = the paper's behaviour).
struct ServerOptions {
  /// Negotiated wire codec for activation / cut-grad messages. Must match
  /// the platforms' PlatformOptions::codec; a frame tagged otherwise is a
  /// ProtocolError.
  WireCodec codec = WireCodec::kF32;
  /// When true, activations arriving while a backward is outstanding are
  /// queued and served FIFO (the overlapped schedule); when false they are
  /// a protocol violation (the paper's strictly sequential workflow).
  bool allow_queueing = false;
  /// WAN fault tolerance: requests are handled idempotently — a duplicated
  /// request (same src, kind, round as one already processed) re-sends the
  /// cached reply instead of re-training on it, and stale frames are counted
  /// and ignored instead of throwing. Off = strict state machine.
  bool tolerate_faults = false;
};

class CentralServer {
 public:
  CentralServer(NodeId id, nn::Sequential body, const optim::SgdOptions& opt,
                ServerOptions options = {});

  /// Handles kActivation (forward L2..Lk, reply logits) and kLogitGrad
  /// (backward, optimizer step, reply cut gradient). The protocol is
  /// sequential per platform: an activation's backward must complete before
  /// the next activation is PROCESSED; with allow_queueing the next
  /// activation may ARRIVE early and waits its turn.
  void handle(net::Network& network, const Envelope& envelope);

  /// Recovery: no request with round < `round` will be treated as new work
  /// anymore (retransmissions of abandoned steps must not start training).
  /// The trainer calls this as each protocol step begins.
  void expect_round(std::uint64_t round);

  /// Recovery: clears a pending forward for `platform` after the trainer
  /// gave up on its step (the logit gradient will never come).
  void abort_pending(NodeId platform);

  void set_learning_rate(float lr) { opt_.set_learning_rate(lr); }

  /// Attaches the membership authority (not owned; the trainer holds it) and
  /// the roster mapping NodeId -> platform index. Once attached, the server
  /// handles the membership control plane (kHeartbeat / kJoinRequest),
  /// renews leases on every platform frame, and polices incoming updates —
  /// a refused update is answered with kUpdateReject instead of training.
  void set_membership(MembershipService* service,
                      std::vector<NodeId> platform_nodes);

  /// Genesis L1 snapshot (flattened parameter values captured at t=0, when
  /// every platform's replica is identical) served to cold rejoins. The
  /// server never sees a platform's CURRENT L1 — that privacy boundary is
  /// the paper's core argument — so a platform that lost its state restarts
  /// its L1 from genesis.
  void set_genesis_l1(Tensor flat);

  [[nodiscard]] NodeId id() const { return id_; }
  [[nodiscard]] nn::Sequential& body() { return body_; }
  [[nodiscard]] std::int64_t steps_completed() const {
    return steps_completed_;
  }
  /// Idempotent reply re-sends triggered by duplicated requests.
  [[nodiscard]] std::int64_t replays() const { return replays_; }
  /// Stale frames ignored under tolerate_faults.
  [[nodiscard]] std::int64_t stale_ignored() const { return stale_ignored_; }

  /// Serializes the server's complete training state: body parameters and
  /// extra state (BatchNorm statistics), optimizer accumulators, the round
  /// horizon, per-platform request rounds, counters, and the reply cache
  /// (under fault injection, duplicates of pre-crash requests can still be
  /// in flight at the boundary — they travel in the Network checkpoint and
  /// must find the cached reply waiting after resume). Requires no forward
  /// in flight.
  void save_state(BufferWriter& writer);

  /// Mirror of save_state; requires no forward in flight. Throws
  /// SerializationError on malformed or mismatched input — the node must
  /// then be discarded (a failed load may have applied a prefix).
  void load_state(BufferReader& reader);

 private:
  /// Runs forward on a (decoded) activation and replies with logits. When
  /// membership admission already decoded the payload it is passed in via
  /// `decoded` (consumed) so the tensor is never decoded twice.
  void process_activation(net::Network& network, const Envelope& envelope,
                          Tensor* decoded = nullptr);
  /// Roster position of `src`; throws ProtocolError for unknown senders.
  std::size_t member_index(NodeId src) const;
  /// Builds, caches (under tolerate_faults) and sends a kUpdateReject reply.
  void send_reject(net::Network& network, const Envelope& request,
                   MembershipService::Verdict verdict);
  /// Tolerant-mode triage for frames that do not match the strict state
  /// machine: replay the cached reply for a duplicated request, ignore the
  /// rest. Returns true when the frame was consumed.
  bool absorb_faulty(net::Network& network, const Envelope& envelope);

  /// Last reply per platform, keyed by the request that produced it — the
  /// idempotence unit for duplicate/retransmitted requests.
  struct CachedReply {
    std::uint32_t request_kind = 0;
    std::uint64_t request_round = 0;
    Envelope reply;
  };

  NodeId id_;
  nn::Sequential body_;
  optim::Sgd opt_;
  ServerOptions options_;

  bool awaiting_grad_ = false;
  NodeId pending_platform_ = 0;
  std::uint64_t pending_round_ = 0;
  std::int64_t steps_completed_ = 0;
  std::deque<Envelope> queued_activations_;
  std::map<NodeId, CachedReply> reply_cache_;
  /// Round of the newest request processed per platform — a fresh request
  /// must beat it (rejects duplicates arriving after their reply was
  /// already superseded in the cache).
  std::map<NodeId, std::uint64_t> last_request_round_;
  std::uint64_t min_round_ = 0;
  std::int64_t replays_ = 0;
  std::int64_t stale_ignored_ = 0;

  // Membership extension (null/empty when the feature is off — the default,
  // in which case none of the code paths below ever run).
  MembershipService* membership_ = nullptr;
  std::map<NodeId, std::size_t> node_to_index_;
  Tensor genesis_l1_;
  bool has_genesis_ = false;
};

}  // namespace splitmed::core
