// Full-state crash recovery for split training.
//
// A checkpoint is a DIRECTORY, `<checkpoint_dir>/round_<NNNNNN>/`, holding
// one SMCKPT02 file per trust domain plus a manifest:
//
//   server.smckpt        the server's complete state   (written first)
//   platform_<k>.smckpt  platform k's complete state
//   manifest.smckpt      run-level state               (written LAST)
//
// Every file is published atomically (see serial/section_file.hpp), and the
// manifest is written only after every node file landed — so a crash at ANY
// point during a save leaves a directory without a valid manifest, which
// find_resumable_checkpoint() skips in favour of the previous round. A save
// can be torn; a *resumable* checkpoint cannot.
//
// Trust boundary: a platform's file contains its L1, optimizer, loader
// cursor/permutation and RNGs — never raw examples or labels (those exist
// only in the platform's in-memory shard, rebuilt from config). The server's
// file contains only what the server legitimately holds (L2..Lk).
//
// Round-stamped manifest handshake: the manifest and every node file carry
// the checkpoint's round. On load, a node file whose round differs from the
// manifest's is refused with ProtocolError — a restarted node cannot be
// paired with mismatched-round peers (e.g. files mixed from two checkpoint
// directories).
//
// Resume is exact: the restored run produces bitwise-identical wire bytes
// and identical loss/accuracy curves to the uninterrupted run (asserted by
// tests/crash_resume_test.cpp). See docs/CHECKPOINT.md for the full format
// and the list of deliberately-not-captured state.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

namespace splitmed::core {

/// File names inside a round directory.
inline constexpr const char* kManifestFile = "manifest.smckpt";
inline constexpr const char* kServerFile = "server.smckpt";

/// "round_000042" — fixed width so lexicographic order == numeric order.
std::string checkpoint_round_dirname(std::uint64_t round);

/// "platform_3.smckpt".
std::string checkpoint_platform_filename(std::size_t index);

/// Scans `dir` for round_* subdirectories and returns the path of the
/// newest one that contains a decodable manifest (newest round first);
/// nullopt when none qualifies. Directories without a valid manifest are
/// exactly the torn saves the write protocol produces on crash — they are
/// skipped, so the previous complete checkpoint is found instead.
std::optional<std::string> find_resumable_checkpoint(const std::string& dir);

/// Resolves a --resume argument: `path` itself when it already contains a
/// manifest, else the newest complete round directory under it. Throws
/// Error when neither exists.
std::string resolve_resume_dir(const std::string& path);

}  // namespace splitmed::core
