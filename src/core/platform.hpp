// PlatformNode — one geo-distributed medical platform (hospital).
//
// Owns: the raw local dataset shard (never serialized), the labels, the
// first hidden layer L1 and its optimizer, and the loss (computed here so
// labels never leave the platform). Drives its half of the 4-message
// protocol; see core/protocol.hpp for the message sequence.
#pragma once

#include <cstdint>
#include <optional>

#include "src/core/membership.hpp"
#include "src/core/protocol.hpp"
#include "src/data/dataloader.hpp"
#include "src/net/network.hpp"
#include "src/nn/loss.hpp"
#include "src/nn/sequential.hpp"
#include "src/optim/sgd.hpp"

namespace splitmed::core {

/// Per-platform protocol extensions (all default to the paper's behaviour).
struct PlatformOptions {
  /// Negotiated wire codec for activation / cut-grad messages (logits and
  /// logit-grads stay f32). Must match the server's ServerOptions::codec.
  WireCodec codec = WireCodec::kF32;
  /// Gaussian noise added to outgoing activations (privacy defense; 0 = off).
  float smash_noise_std = 0.0F;
  std::uint64_t noise_seed = 17;
  /// WAN fault tolerance: stale / duplicated protocol messages are counted
  /// and ignored instead of throwing, and the most recent outgoing message
  /// is cached so the recovery layer can retransmit it. Off = the paper's
  /// strict state machine (any anomaly is a ProtocolError).
  bool tolerate_faults = false;
};

/// Protocol position of a platform; exposed so the recovery layer can tell
/// when a step progressed without inspecting message contents.
enum class PlatformState { kIdle, kAwaitLogits, kAwaitCutGrad };

class PlatformNode {
 public:
  PlatformNode(NodeId id, NodeId server_id, nn::Sequential l1,
               data::DataLoader loader, const optim::SgdOptions& opt,
               PlatformOptions options = {});

  /// Paper workflow step 1: draws the next minibatch (size set by
  /// set_minibatch_size), runs L1 forward, ships the activations.
  void send_activation(net::Network& network, std::uint64_t round);

  /// Handles kLogits (compute loss + send logit grads), kCutGrad (backprop
  /// L1, apply the local optimizer step), kUpdateReject (abort the in-flight
  /// step — the server refused the update) and kJoinAccept (complete a
  /// rejoin handshake; a cold accept overwrites L1 with the genesis weights
  /// and resets the optimizer). Throws ProtocolError on out-of-order or
  /// foreign messages — unless tolerate_faults, which counts and ignores
  /// stale/duplicate frames (WAN recovery).
  void handle(net::Network& network, const Envelope& envelope);

  /// Membership liveness beacon (kHeartbeat). `index` is this platform's
  /// roster position (payloads carry indices, not NodeIds).
  void send_heartbeat(net::Network& network, std::uint32_t index,
                      std::uint64_t round);

  /// Opens a rejoin handshake (kJoinRequest); the platform then awaits a
  /// kJoinAccept for `round`. Requires kIdle and no handshake in flight.
  void send_join_request(net::Network& network, std::uint32_t index,
                         std::uint64_t round, RejoinMode mode);

  /// Abandons an unanswered join handshake (retransmissions exhausted); the
  /// trainer retries next round.
  void abort_join();

  /// Chaos-harness hook: corrupt outgoing tensors until clear_poison().
  /// kNonFinite injects a NaN into the logit-grad (the always-f32 channel —
  /// an i8-negotiated activation could not even encode a NaN); kNormBomb
  /// scales both the activation and the logit-grad by `scale`.
  void set_poison(PoisonKind kind, float scale);
  void clear_poison();

  /// Re-sends the most recent outgoing message, flagged as a retransmission
  /// (recovery path; requires tolerate_faults and a message in flight).
  void resend_last(net::Network& network);

  /// Abandons the in-flight step after retransmissions were exhausted: the
  /// platform returns to Idle without applying an optimizer step (the drawn
  /// minibatch is lost — the hospital was unreachable this round).
  void abort_step();

  /// Paper's imbalance mitigation: the trainer sets s_k per round.
  void set_minibatch_size(std::int64_t s);
  void set_learning_rate(float lr) { opt_.set_learning_rate(lr); }

  [[nodiscard]] NodeId id() const { return id_; }
  [[nodiscard]] std::int64_t shard_size() const {
    return loader_.shard_size();
  }
  [[nodiscard]] float last_loss() const { return last_loss_; }
  [[nodiscard]] double last_batch_accuracy() const {
    return last_batch_accuracy_;
  }
  /// Number of optimizer steps completed (== protocol rounds finished).
  [[nodiscard]] std::int64_t steps_completed() const {
    return steps_completed_;
  }
  [[nodiscard]] PlatformState state() const { return state_; }
  /// Stale or duplicated messages ignored under tolerate_faults.
  [[nodiscard]] std::int64_t stale_ignored() const { return stale_ignored_; }
  /// Steps abandoned by abort_step().
  [[nodiscard]] std::int64_t aborted_steps() const { return aborted_steps_; }
  /// Examples drawn from the loader but discarded by abort_step() — work the
  /// epoch accounting would otherwise silently lose.
  [[nodiscard]] std::int64_t examples_lost() const { return examples_lost_; }
  /// True while a join handshake awaits its kJoinAccept.
  [[nodiscard]] bool awaiting_join() const { return awaiting_join_; }
  /// Steps aborted because the server refused the update (kUpdateReject).
  [[nodiscard]] std::int64_t rejected_steps() const { return rejected_steps_; }
  /// Join handshakes completed (kJoinAccept received).
  [[nodiscard]] std::int64_t rejoins_completed() const {
    return rejoins_completed_;
  }
  [[nodiscard]] std::uint64_t heartbeats_sent() const { return beats_sent_; }
  [[nodiscard]] nn::Sequential& l1() { return l1_; }

  /// Serializes the platform's complete training state: L1 parameters and
  /// extra state (BatchNorm statistics), optimizer accumulators, loader
  /// iteration state, the noise Rng, and the per-step counters/caches.
  /// Raw examples and labels are NEVER written — they live only on the
  /// platform (the trust boundary), and the loader shard is rebuilt from
  /// config. Requires kIdle (checkpoints happen at round boundaries), so
  /// mid-step caches (pending labels, last-sent frame) are vacuously empty
  /// and are not serialized.
  void save_state(BufferWriter& writer);

  /// Mirror of save_state; requires kIdle. Throws SerializationError on
  /// malformed or mismatched input — the node must then be discarded (a
  /// failed load may have applied a prefix of the fields).
  void load_state(BufferReader& reader);

 private:
  NodeId id_;
  NodeId server_;
  nn::Sequential l1_;
  data::DataLoader loader_;
  optim::Sgd opt_;
  nn::SoftmaxCrossEntropy loss_;
  PlatformOptions options_;
  Rng noise_rng_;

  void apply_poison(Tensor& t, bool f32_channel) const;

  PlatformState state_ = PlatformState::kIdle;
  std::uint64_t pending_round_ = 0;
  std::vector<std::int64_t> pending_labels_;
  std::optional<Envelope> last_sent_;  // cached only under tolerate_faults
  float last_loss_ = 0.0F;
  double last_batch_accuracy_ = 0.0;
  std::int64_t steps_completed_ = 0;
  std::int64_t stale_ignored_ = 0;
  std::int64_t aborted_steps_ = 0;
  std::int64_t examples_lost_ = 0;

  // Membership extension state. The poison fields are chaos-harness config
  // (reapplied per round from the ChurnPlan), not checkpointed; the
  // counters and the beat sequence are.
  bool awaiting_join_ = false;
  std::uint64_t join_round_ = 0;
  std::uint64_t beats_sent_ = 0;
  std::int64_t rejected_steps_ = 0;
  std::int64_t rejoins_completed_ = 0;
  std::optional<PoisonKind> poison_;
  float poison_scale_ = 1.0F;
};

}  // namespace splitmed::core
