// PlatformNode — one geo-distributed medical platform (hospital).
//
// Owns: the raw local dataset shard (never serialized), the labels, the
// first hidden layer L1 and its optimizer, and the loss (computed here so
// labels never leave the platform). Drives its half of the 4-message
// protocol; see core/protocol.hpp for the message sequence.
#pragma once

#include <cstdint>
#include <optional>

#include "src/core/protocol.hpp"
#include "src/data/dataloader.hpp"
#include "src/net/network.hpp"
#include "src/nn/loss.hpp"
#include "src/nn/sequential.hpp"
#include "src/optim/sgd.hpp"

namespace splitmed::core {

/// Per-platform protocol extensions (all default to the paper's behaviour).
struct PlatformOptions {
  /// Negotiated wire codec for activation / cut-grad messages (logits and
  /// logit-grads stay f32). Must match the server's ServerOptions::codec.
  WireCodec codec = WireCodec::kF32;
  /// Gaussian noise added to outgoing activations (privacy defense; 0 = off).
  float smash_noise_std = 0.0F;
  std::uint64_t noise_seed = 17;
  /// WAN fault tolerance: stale / duplicated protocol messages are counted
  /// and ignored instead of throwing, and the most recent outgoing message
  /// is cached so the recovery layer can retransmit it. Off = the paper's
  /// strict state machine (any anomaly is a ProtocolError).
  bool tolerate_faults = false;
};

/// Protocol position of a platform; exposed so the recovery layer can tell
/// when a step progressed without inspecting message contents.
enum class PlatformState { kIdle, kAwaitLogits, kAwaitCutGrad };

class PlatformNode {
 public:
  PlatformNode(NodeId id, NodeId server_id, nn::Sequential l1,
               data::DataLoader loader, const optim::SgdOptions& opt,
               PlatformOptions options = {});

  /// Paper workflow step 1: draws the next minibatch (size set by
  /// set_minibatch_size), runs L1 forward, ships the activations.
  void send_activation(net::Network& network, std::uint64_t round);

  /// Handles kLogits (compute loss + send logit grads) and kCutGrad
  /// (backprop L1, apply the local optimizer step). Throws ProtocolError on
  /// out-of-order or foreign messages — unless tolerate_faults, which
  /// counts and ignores stale/duplicate frames (WAN recovery).
  void handle(net::Network& network, const Envelope& envelope);

  /// Re-sends the most recent outgoing message, flagged as a retransmission
  /// (recovery path; requires tolerate_faults and a message in flight).
  void resend_last(net::Network& network);

  /// Abandons the in-flight step after retransmissions were exhausted: the
  /// platform returns to Idle without applying an optimizer step (the drawn
  /// minibatch is lost — the hospital was unreachable this round).
  void abort_step();

  /// Paper's imbalance mitigation: the trainer sets s_k per round.
  void set_minibatch_size(std::int64_t s);
  void set_learning_rate(float lr) { opt_.set_learning_rate(lr); }

  [[nodiscard]] NodeId id() const { return id_; }
  [[nodiscard]] std::int64_t shard_size() const {
    return loader_.shard_size();
  }
  [[nodiscard]] float last_loss() const { return last_loss_; }
  [[nodiscard]] double last_batch_accuracy() const {
    return last_batch_accuracy_;
  }
  /// Number of optimizer steps completed (== protocol rounds finished).
  [[nodiscard]] std::int64_t steps_completed() const {
    return steps_completed_;
  }
  [[nodiscard]] PlatformState state() const { return state_; }
  /// Stale or duplicated messages ignored under tolerate_faults.
  [[nodiscard]] std::int64_t stale_ignored() const { return stale_ignored_; }
  /// Steps abandoned by abort_step().
  [[nodiscard]] std::int64_t aborted_steps() const { return aborted_steps_; }
  /// Examples drawn from the loader but discarded by abort_step() — work the
  /// epoch accounting would otherwise silently lose.
  [[nodiscard]] std::int64_t examples_lost() const { return examples_lost_; }
  [[nodiscard]] nn::Sequential& l1() { return l1_; }

  /// Serializes the platform's complete training state: L1 parameters and
  /// extra state (BatchNorm statistics), optimizer accumulators, loader
  /// iteration state, the noise Rng, and the per-step counters/caches.
  /// Raw examples and labels are NEVER written — they live only on the
  /// platform (the trust boundary), and the loader shard is rebuilt from
  /// config. Requires kIdle (checkpoints happen at round boundaries), so
  /// mid-step caches (pending labels, last-sent frame) are vacuously empty
  /// and are not serialized.
  void save_state(BufferWriter& writer);

  /// Mirror of save_state; requires kIdle. Throws SerializationError on
  /// malformed or mismatched input — the node must then be discarded (a
  /// failed load may have applied a prefix of the fields).
  void load_state(BufferReader& reader);

 private:
  NodeId id_;
  NodeId server_;
  nn::Sequential l1_;
  data::DataLoader loader_;
  optim::Sgd opt_;
  nn::SoftmaxCrossEntropy loss_;
  PlatformOptions options_;
  Rng noise_rng_;

  PlatformState state_ = PlatformState::kIdle;
  std::uint64_t pending_round_ = 0;
  std::vector<std::int64_t> pending_labels_;
  std::optional<Envelope> last_sent_;  // cached only under tolerate_faults
  float last_loss_ = 0.0F;
  double last_batch_accuracy_ = 0.0;
  std::int64_t steps_completed_ = 0;
  std::int64_t stale_ignored_ = 0;
  std::int64_t aborted_steps_ = 0;
  std::int64_t examples_lost_ = 0;
};

}  // namespace splitmed::core
