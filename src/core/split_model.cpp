#include "src/core/split_model.hpp"

#include "src/common/error.hpp"

namespace splitmed::core {

SplitParts split_at(nn::Sequential&& net, std::size_t cut) {
  SPLITMED_CHECK(cut > 0 && cut < net.size(),
                 "cut " << cut << " must leave layers on both sides of a "
                        << net.size() << "-layer network");
  SplitParts parts;
  parts.platform = net.extract(0, cut);
  parts.server = std::move(net);
  return parts;
}

void copy_parameters(nn::Layer& src, nn::Layer& dst) {
  const auto s = src.parameters();
  const auto d = dst.parameters();
  SPLITMED_CHECK(s.size() == d.size(),
                 "copy_parameters: architectures differ (" << s.size() << " vs "
                                                           << d.size()
                                                           << " tensors)");
  for (std::size_t i = 0; i < s.size(); ++i) {
    check_same_shape(s[i]->value.shape(), d[i]->value.shape(),
                     "copy_parameters");
    d[i]->value = s[i]->value;
  }
}

}  // namespace splitmed::core
