#include "src/core/platform.hpp"

#include "src/common/error.hpp"
#include "src/nn/checkpoint.hpp"
#include "src/obs/obs.hpp"
#include "src/serial/state_codec.hpp"

namespace splitmed::core {

PlatformNode::PlatformNode(NodeId id, NodeId server_id, nn::Sequential l1,
                           data::DataLoader loader,
                           const optim::SgdOptions& opt,
                           PlatformOptions options)
    : id_(id),
      server_(server_id),
      l1_(std::move(l1)),
      loader_(std::move(loader)),
      opt_(l1_.parameters(), opt),
      options_(options),
      noise_rng_(options.noise_seed ^
                 (0x6C62272E07BB0142ULL + static_cast<std::uint64_t>(id))) {
  SPLITMED_CHECK(options_.smash_noise_std >= 0.0F,
                 "smash noise stddev must be >= 0");
}

void PlatformNode::set_minibatch_size(std::int64_t s) {
  loader_.set_batch_size(s);
}

void PlatformNode::send_activation(net::Network& network,
                                   std::uint64_t round) {
  SPLITMED_CHECK(state_ == PlatformState::kIdle,
                 "platform " << id_ << ": send_activation while mid-step");
  obs::Span span(obs::trace(), "platform.l1_forward", "core");
  span.arg("platform", static_cast<std::uint64_t>(id_));
  span.arg("round", round);
  data::Batch batch = loader_.next_batch();
  pending_labels_ = std::move(batch.labels);
  pending_round_ = round;
  Tensor activation = l1_.forward(batch.images, /*training=*/true);
  if (options_.smash_noise_std > 0.0F) {
    // Privacy defense: the server only ever sees a noised view of the
    // smashed data. L1's own cache stays clean — the noise is part of the
    // channel, not of the platform's backward pass.
    auto d = activation.data();
    for (auto& v : d) v += options_.smash_noise_std * noise_rng_.normal();
  }
  Envelope out = make_tensor_envelope(id_, server_, MsgKind::kActivation,
                                      round, activation, options_.codec);
  if (options_.tolerate_faults) last_sent_ = out;
  network.send(std::move(out));
  state_ = PlatformState::kAwaitLogits;
}

void PlatformNode::resend_last(net::Network& network) {
  SPLITMED_CHECK(options_.tolerate_faults,
                 "resend_last requires tolerate_faults");
  SPLITMED_CHECK(last_sent_.has_value(),
                 "platform " << id_ << ": nothing to retransmit");
  Envelope copy = *last_sent_;
  copy.retransmit = true;
  network.send(std::move(copy));
}

void PlatformNode::abort_step() {
  SPLITMED_CHECK(state_ != PlatformState::kIdle,
                 "platform " << id_ << ": abort_step while idle");
  state_ = PlatformState::kIdle;
  // The loader already consumed this minibatch; abandoning the step means
  // those examples never reach an optimizer step anywhere. Count them —
  // epoch accounting and the fault benches must show the lost work, not
  // silently absorb it.
  examples_lost_ += static_cast<std::int64_t>(pending_labels_.size());
  pending_labels_.clear();
  last_sent_.reset();
  ++aborted_steps_;
}

void PlatformNode::handle(net::Network& network, const Envelope& envelope) {
  if (envelope.dst != id_) {
    const std::string reason = "platform " + std::to_string(id_) +
                               " got a message addressed to node " +
                               std::to_string(envelope.dst);
    obs::postmortem(reason);
    throw ProtocolError(reason);
  }
  const auto kind = static_cast<MsgKind>(envelope.kind);
  // Which message would advance the state machine right now?
  const bool expected =
      (state_ == PlatformState::kAwaitLogits && kind == MsgKind::kLogits &&
       envelope.round == pending_round_) ||
      (state_ == PlatformState::kAwaitCutGrad && kind == MsgKind::kCutGrad &&
       envelope.round == pending_round_);
  if (!expected) {
    if (options_.tolerate_faults &&
        (kind == MsgKind::kLogits || kind == MsgKind::kCutGrad)) {
      // A duplicated delivery or a reply to a step already completed or
      // abandoned — drop it; the WAN produced it, not a peer bug.
      ++stale_ignored_;
      if (obs::FlightRecorder* fr = obs::flight()) {
        fr->note(-1.0, "platform " + std::to_string(id_) +
                           " ignored stale " + msg_kind_name(kind) +
                           " round=" + std::to_string(envelope.round));
      }
      return;
    }
    if (envelope.round != pending_round_) {
      const std::string reason =
          "platform " + std::to_string(id_) + " expected round " +
          std::to_string(pending_round_) + ", got " +
          std::to_string(envelope.round);
      obs::postmortem(reason);
      throw ProtocolError(reason);
    }
    const std::string reason =
        (kind == MsgKind::kLogits || kind == MsgKind::kCutGrad)
            ? std::string("platform: unexpected ") + msg_kind_name(kind) +
                  " message"
            : std::string("platform: unexpected message kind '") +
                  msg_kind_name(kind) + "'";
    obs::postmortem(reason);
    throw ProtocolError(reason);
  }
  if (kind == MsgKind::kLogits) {
    obs::Span span(obs::trace(), "platform.loss_backward", "core");
    span.arg("platform", static_cast<std::uint64_t>(id_));
    span.arg("round", envelope.round);
    const Tensor logits = decode_tensor_payload(envelope.payload);
    last_loss_ = loss_.forward(logits, pending_labels_);
    last_batch_accuracy_ = nn::accuracy(logits, pending_labels_);
    Envelope grad = make_tensor_envelope(id_, server_, MsgKind::kLogitGrad,
                                         pending_round_, loss_.backward());
    if (options_.tolerate_faults) last_sent_ = grad;
    network.send(std::move(grad));
    state_ = PlatformState::kAwaitCutGrad;
    return;
  }
  // kCutGrad
  obs::Span span(obs::trace(), "platform.l1_backward", "core");
  span.arg("platform", static_cast<std::uint64_t>(id_));
  span.arg("round", envelope.round);
  const Tensor cut_grad =
      decode_tensor_payload(envelope.payload, options_.codec);
  l1_.zero_grad();
  l1_.backward(cut_grad);
  opt_.step();
  ++steps_completed_;
  state_ = PlatformState::kIdle;
  last_sent_.reset();
}

void PlatformNode::save_state(BufferWriter& writer) {
  SPLITMED_CHECK(state_ == PlatformState::kIdle,
                 "platform " << id_
                             << ": checkpoint requires an idle protocol "
                                "state (round boundary)");
  write_parameters(writer, l1_.parameters());
  l1_.save_extra_state(writer);
  opt_.save_state(writer);
  loader_.save_state(writer);
  encode_rng(noise_rng_, writer);
  writer.write_f32(last_loss_);
  writer.write_f64(last_batch_accuracy_);
  writer.write_i64(steps_completed_);
  writer.write_i64(stale_ignored_);
  writer.write_i64(aborted_steps_);
  writer.write_i64(examples_lost_);
}

void PlatformNode::load_state(BufferReader& reader) {
  SPLITMED_CHECK(state_ == PlatformState::kIdle,
                 "platform " << id_ << ": load_state while mid-step");
  read_parameters(reader, l1_.parameters(),
                  "platform " + std::to_string(id_) + " L1");
  l1_.load_extra_state(reader);
  opt_.load_state(reader);
  loader_.load_state(reader);
  decode_rng(reader, noise_rng_);
  last_loss_ = reader.read_f32();
  last_batch_accuracy_ = reader.read_f64();
  steps_completed_ = reader.read_i64();
  stale_ignored_ = reader.read_i64();
  aborted_steps_ = reader.read_i64();
  examples_lost_ = reader.read_i64();
  if (steps_completed_ < 0 || stale_ignored_ < 0 || aborted_steps_ < 0 ||
      examples_lost_ < 0) {
    throw SerializationError("platform " + std::to_string(id_) +
                             ": negative counter in checkpoint");
  }
}

}  // namespace splitmed::core
