#include "src/core/platform.hpp"

#include <algorithm>
#include <limits>

#include "src/common/error.hpp"
#include "src/nn/checkpoint.hpp"
#include "src/obs/obs.hpp"
#include "src/serial/state_codec.hpp"

namespace splitmed::core {

PlatformNode::PlatformNode(NodeId id, NodeId server_id, nn::Sequential l1,
                           data::DataLoader loader,
                           const optim::SgdOptions& opt,
                           PlatformOptions options)
    : id_(id),
      server_(server_id),
      l1_(std::move(l1)),
      loader_(std::move(loader)),
      opt_(l1_.parameters(), opt),
      options_(options),
      noise_rng_(options.noise_seed ^
                 (0x6C62272E07BB0142ULL + static_cast<std::uint64_t>(id))) {
  SPLITMED_CHECK(options_.smash_noise_std >= 0.0F,
                 "smash noise stddev must be >= 0");
}

void PlatformNode::set_minibatch_size(std::int64_t s) {
  loader_.set_batch_size(s);
}

void PlatformNode::send_activation(net::Network& network,
                                   std::uint64_t round) {
  SPLITMED_CHECK(state_ == PlatformState::kIdle,
                 "platform " << id_ << ": send_activation while mid-step");
  obs::Span span(obs::trace(), "platform.l1_forward", "core");
  span.arg("platform", static_cast<std::uint64_t>(id_));
  span.arg("round", round);
  data::Batch batch = loader_.next_batch();
  pending_labels_ = std::move(batch.labels);
  pending_round_ = round;
  Tensor activation = l1_.forward(batch.images, /*training=*/true);
  if (options_.smash_noise_std > 0.0F) {
    // Privacy defense: the server only ever sees a noised view of the
    // smashed data. L1's own cache stays clean — the noise is part of the
    // channel, not of the platform's backward pass.
    auto d = activation.data();
    for (auto& v : d) v += options_.smash_noise_std * noise_rng_.normal();
  }
  apply_poison(activation, /*f32_channel=*/false);
  Envelope out = make_tensor_envelope(id_, server_, MsgKind::kActivation,
                                      round, activation, options_.codec);
  out.trace.platform = id_;
  out.trace.step = round;
  if (options_.tolerate_faults) last_sent_ = out;
  network.send(std::move(out));
  state_ = PlatformState::kAwaitLogits;
}

void PlatformNode::resend_last(net::Network& network) {
  SPLITMED_CHECK(options_.tolerate_faults,
                 "resend_last requires tolerate_faults");
  SPLITMED_CHECK(last_sent_.has_value(),
                 "platform " << id_ << ": nothing to retransmit");
  Envelope copy = *last_sent_;
  copy.retransmit = true;
  copy.trace.attempt = ++last_sent_->trace.attempt;
  network.send(std::move(copy));
}

void PlatformNode::abort_step() {
  SPLITMED_CHECK(state_ != PlatformState::kIdle,
                 "platform " << id_ << ": abort_step while idle");
  state_ = PlatformState::kIdle;
  // The loader already consumed this minibatch; abandoning the step means
  // those examples never reach an optimizer step anywhere. Count them —
  // epoch accounting and the fault benches must show the lost work, not
  // silently absorb it.
  examples_lost_ += static_cast<std::int64_t>(pending_labels_.size());
  pending_labels_.clear();
  last_sent_.reset();
  ++aborted_steps_;
}

void PlatformNode::handle(net::Network& network, const Envelope& envelope) {
  if (envelope.dst != id_) {
    const std::string reason = "platform " + std::to_string(id_) +
                               " got a message addressed to node " +
                               std::to_string(envelope.dst);
    obs::postmortem(reason);
    throw ProtocolError(reason);
  }
  const auto kind = static_cast<MsgKind>(envelope.kind);
  // Which message would advance the state machine right now?
  const bool mid_step = state_ == PlatformState::kAwaitLogits ||
                        state_ == PlatformState::kAwaitCutGrad;
  const bool expected =
      (state_ == PlatformState::kAwaitLogits && kind == MsgKind::kLogits &&
       envelope.round == pending_round_) ||
      (state_ == PlatformState::kAwaitCutGrad && kind == MsgKind::kCutGrad &&
       envelope.round == pending_round_) ||
      (mid_step && kind == MsgKind::kUpdateReject &&
       envelope.round == pending_round_) ||
      (awaiting_join_ && kind == MsgKind::kJoinAccept &&
       envelope.round == join_round_);
  if (!expected) {
    if (options_.tolerate_faults &&
        (kind == MsgKind::kLogits || kind == MsgKind::kCutGrad ||
         kind == MsgKind::kUpdateReject || kind == MsgKind::kJoinAccept)) {
      // A duplicated delivery or a reply to a step already completed or
      // abandoned — drop it; the WAN produced it, not a peer bug.
      ++stale_ignored_;
      if (obs::FlightRecorder* fr = obs::flight()) {
        fr->note(-1.0, "platform " + std::to_string(id_) +
                           " ignored stale " + msg_kind_name(kind) +
                           " round=" + std::to_string(envelope.round));
      }
      return;
    }
    if (envelope.round != pending_round_) {
      const std::string reason =
          "platform " + std::to_string(id_) + " expected round " +
          std::to_string(pending_round_) + ", got " +
          std::to_string(envelope.round);
      obs::postmortem(reason);
      throw ProtocolError(reason);
    }
    const std::string reason =
        (kind == MsgKind::kLogits || kind == MsgKind::kCutGrad)
            ? std::string("platform: unexpected ") + msg_kind_name(kind) +
                  " message"
            : std::string("platform: unexpected message kind '") +
                  msg_kind_name(kind) + "'";
    obs::postmortem(reason);
    throw ProtocolError(reason);
  }
  if (kind == MsgKind::kLogits) {
    obs::Span span(obs::trace(), "platform.loss_backward", "core");
    span.arg("platform", static_cast<std::uint64_t>(id_));
    span.arg("round", envelope.round);
    const Tensor logits = decode_tensor_payload(envelope.payload);
    last_loss_ = loss_.forward(logits, pending_labels_);
    last_batch_accuracy_ = nn::accuracy(logits, pending_labels_);
    Tensor logit_grad = loss_.backward();
    apply_poison(logit_grad, /*f32_channel=*/true);
    Envelope grad = make_tensor_envelope(id_, server_, MsgKind::kLogitGrad,
                                         pending_round_, logit_grad);
    grad.trace.platform = id_;
    grad.trace.step = pending_round_;
    grad.trace.parent_flow = envelope.trace.flow_id;
    if (options_.tolerate_faults) last_sent_ = grad;
    network.send(std::move(grad));
    state_ = PlatformState::kAwaitCutGrad;
    return;
  }
  if (kind == MsgKind::kUpdateReject) {
    // The server refused this step's update (validation strike). The step is
    // over: the drawn minibatch is lost, exactly like an unreachable abort.
    const UpdateRejectMsg msg = decode_update_reject_payload(envelope.payload);
    if (obs::FlightRecorder* fr = obs::flight()) {
      fr->note(-1.0, "platform " + std::to_string(id_) + " update rejected (" +
                         reject_reason_name(msg.reason) + ", strikes=" +
                         std::to_string(msg.strikes) + ", now " +
                         member_state_name(msg.state) + ") round=" +
                         std::to_string(envelope.round));
    }
    ++rejected_steps_;
    abort_step();
    return;
  }
  if (kind == MsgKind::kJoinAccept) {
    const JoinAcceptMsg msg = decode_join_accept_payload(envelope.payload);
    if (msg.has_l1) {
      // Cold rejoin: local training state was lost with the crash. Overwrite
      // L1 with the server-held genesis weights and drop momentum — it was
      // accumulated against a trajectory that no longer exists.
      std::span<const float> flat = msg.l1.data();
      std::size_t off = 0;
      for (nn::Parameter* p : l1_.parameters()) {
        auto dst = p->value.data();
        if (off + dst.size() > flat.size()) {
          const std::string reason =
              "platform " + std::to_string(id_) +
              ": genesis L1 payload too small for the local model";
          obs::postmortem(reason);
          throw ProtocolError(reason);
        }
        std::copy_n(flat.begin() + static_cast<std::ptrdiff_t>(off),
                    dst.size(), dst.begin());
        off += dst.size();
      }
      if (off != flat.size()) {
        const std::string reason =
            "platform " + std::to_string(id_) + ": genesis L1 payload has " +
            std::to_string(flat.size()) + " values, local model takes " +
            std::to_string(off);
        obs::postmortem(reason);
        throw ProtocolError(reason);
      }
      opt_.reset_state();
    }
    awaiting_join_ = false;
    last_sent_.reset();
    ++rejoins_completed_;
    return;
  }
  // kCutGrad
  obs::Span span(obs::trace(), "platform.l1_backward", "core");
  span.arg("platform", static_cast<std::uint64_t>(id_));
  span.arg("round", envelope.round);
  const Tensor cut_grad =
      decode_tensor_payload(envelope.payload, options_.codec);
  l1_.zero_grad();
  l1_.backward(cut_grad);
  opt_.step();
  ++steps_completed_;
  state_ = PlatformState::kIdle;
  last_sent_.reset();
}

void PlatformNode::send_heartbeat(net::Network& network, std::uint32_t index,
                                  std::uint64_t round) {
  HeartbeatMsg msg;
  msg.platform = index;
  msg.beat = ++beats_sent_;
  msg.last_completed_round = static_cast<std::uint64_t>(steps_completed_);
  Envelope out = make_envelope(id_, server_,
                               static_cast<std::uint32_t>(MsgKind::kHeartbeat),
                               round, encode_heartbeat_payload(msg));
  out.trace.platform = id_;
  out.trace.step = round;
  network.send(std::move(out));
}

void PlatformNode::send_join_request(net::Network& network,
                                     std::uint32_t index, std::uint64_t round,
                                     RejoinMode mode) {
  SPLITMED_CHECK(state_ == PlatformState::kIdle,
                 "platform " << id_ << ": send_join_request while mid-step");
  SPLITMED_CHECK(!awaiting_join_,
                 "platform " << id_ << ": join handshake already in flight");
  JoinRequestMsg msg;
  msg.platform = index;
  msg.mode = mode;
  msg.last_completed_round = static_cast<std::uint64_t>(steps_completed_);
  Envelope out = make_envelope(
      id_, server_, static_cast<std::uint32_t>(MsgKind::kJoinRequest), round,
      encode_join_request_payload(msg));
  out.trace.platform = id_;
  out.trace.step = round;
  if (options_.tolerate_faults) last_sent_ = out;
  network.send(std::move(out));
  awaiting_join_ = true;
  join_round_ = round;
}

void PlatformNode::abort_join() {
  SPLITMED_CHECK(awaiting_join_,
                 "platform " << id_ << ": abort_join without a handshake");
  awaiting_join_ = false;
  last_sent_.reset();
}

void PlatformNode::set_poison(PoisonKind kind, float scale) {
  poison_ = kind;
  poison_scale_ = scale;
}

void PlatformNode::clear_poison() { poison_.reset(); }

void PlatformNode::apply_poison(Tensor& t, bool f32_channel) const {
  if (!poison_) return;
  if (*poison_ == PoisonKind::kNonFinite) {
    if (f32_channel && t.numel() > 0) {
      t.data()[0] = std::numeric_limits<float>::quiet_NaN();
    }
    return;
  }
  for (auto& v : t.data()) v *= poison_scale_;
}

void PlatformNode::save_state(BufferWriter& writer) {
  SPLITMED_CHECK(!awaiting_join_,
                 "platform " << id_
                             << ": checkpoint requires no join handshake in "
                                "flight (round boundary)");
  SPLITMED_CHECK(state_ == PlatformState::kIdle,
                 "platform " << id_
                             << ": checkpoint requires an idle protocol "
                                "state (round boundary)");
  write_parameters(writer, l1_.parameters());
  l1_.save_extra_state(writer);
  opt_.save_state(writer);
  loader_.save_state(writer);
  encode_rng(noise_rng_, writer);
  writer.write_f32(last_loss_);
  writer.write_f64(last_batch_accuracy_);
  writer.write_i64(steps_completed_);
  writer.write_i64(stale_ignored_);
  writer.write_i64(aborted_steps_);
  writer.write_i64(examples_lost_);
  writer.write_u64(beats_sent_);
  writer.write_i64(rejected_steps_);
  writer.write_i64(rejoins_completed_);
}

void PlatformNode::load_state(BufferReader& reader) {
  SPLITMED_CHECK(state_ == PlatformState::kIdle,
                 "platform " << id_ << ": load_state while mid-step");
  read_parameters(reader, l1_.parameters(),
                  "platform " + std::to_string(id_) + " L1");
  l1_.load_extra_state(reader);
  opt_.load_state(reader);
  loader_.load_state(reader);
  decode_rng(reader, noise_rng_);
  last_loss_ = reader.read_f32();
  last_batch_accuracy_ = reader.read_f64();
  steps_completed_ = reader.read_i64();
  stale_ignored_ = reader.read_i64();
  aborted_steps_ = reader.read_i64();
  examples_lost_ = reader.read_i64();
  beats_sent_ = reader.read_u64();
  rejected_steps_ = reader.read_i64();
  rejoins_completed_ = reader.read_i64();
  if (steps_completed_ < 0 || stale_ignored_ < 0 || aborted_steps_ < 0 ||
      examples_lost_ < 0 || rejected_steps_ < 0 || rejoins_completed_ < 0) {
    throw SerializationError("platform " + std::to_string(id_) +
                             ": negative counter in checkpoint");
  }
}

}  // namespace splitmed::core
