#include "src/core/platform.hpp"

#include "src/common/error.hpp"

namespace splitmed::core {

PlatformNode::PlatformNode(NodeId id, NodeId server_id, nn::Sequential l1,
                           data::DataLoader loader,
                           const optim::SgdOptions& opt,
                           PlatformOptions options)
    : id_(id),
      server_(server_id),
      l1_(std::move(l1)),
      loader_(std::move(loader)),
      opt_(l1_.parameters(), opt),
      options_(options),
      noise_rng_(options.noise_seed ^
                 (0x6C62272E07BB0142ULL + static_cast<std::uint64_t>(id))) {
  SPLITMED_CHECK(options_.smash_noise_std >= 0.0F,
                 "smash noise stddev must be >= 0");
}

void PlatformNode::set_minibatch_size(std::int64_t s) {
  loader_.set_batch_size(s);
}

void PlatformNode::send_activation(net::Network& network,
                                   std::uint64_t round) {
  SPLITMED_CHECK(state_ == State::kIdle,
                 "platform " << id_ << ": send_activation while mid-step");
  data::Batch batch = loader_.next_batch();
  pending_labels_ = std::move(batch.labels);
  pending_round_ = round;
  Tensor activation = l1_.forward(batch.images, /*training=*/true);
  if (options_.smash_noise_std > 0.0F) {
    // Privacy defense: the server only ever sees a noised view of the
    // smashed data. L1's own cache stays clean — the noise is part of the
    // channel, not of the platform's backward pass.
    auto d = activation.data();
    for (auto& v : d) v += options_.smash_noise_std * noise_rng_.normal();
  }
  network.send(make_tensor_envelope(id_, server_, MsgKind::kActivation, round,
                                    activation, options_.wire_dtype));
  state_ = State::kAwaitLogits;
}

void PlatformNode::handle(net::Network& network, const Envelope& envelope) {
  if (envelope.dst != id_) {
    throw ProtocolError("platform " + std::to_string(id_) +
                        " got a message addressed to node " +
                        std::to_string(envelope.dst));
  }
  if (envelope.round != pending_round_) {
    throw ProtocolError("platform " + std::to_string(id_) + " expected round " +
                        std::to_string(pending_round_) + ", got " +
                        std::to_string(envelope.round));
  }
  switch (static_cast<MsgKind>(envelope.kind)) {
    case MsgKind::kLogits: {
      if (state_ != State::kAwaitLogits) {
        throw ProtocolError("platform: unexpected logits message");
      }
      const Tensor logits = decode_tensor_payload(envelope.payload);
      last_loss_ = loss_.forward(logits, pending_labels_);
      last_batch_accuracy_ = nn::accuracy(logits, pending_labels_);
      network.send(make_tensor_envelope(id_, server_, MsgKind::kLogitGrad,
                                        pending_round_, loss_.backward()));
      state_ = State::kAwaitCutGrad;
      return;
    }
    case MsgKind::kCutGrad: {
      if (state_ != State::kAwaitCutGrad) {
        throw ProtocolError("platform: unexpected cut-grad message");
      }
      const Tensor cut_grad =
          decode_tensor_payload(envelope.payload, options_.wire_dtype);
      l1_.zero_grad();
      l1_.backward(cut_grad);
      opt_.step();
      ++steps_completed_;
      state_ = State::kIdle;
      return;
    }
    default:
      throw ProtocolError(std::string("platform: unexpected message kind '") +
                          msg_kind_name(static_cast<MsgKind>(envelope.kind)) +
                          "'");
  }
}

}  // namespace splitmed::core
