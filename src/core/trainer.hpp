// SplitTrainer — orchestrates the paper's training workflow (Fig. 3) over
// the simulated network.
//
// One round = every platform performs one 4-message protocol step against
// the server, sequentially (the server's L2..Lk state is updated after each
// platform's minibatch — round-robin split learning). Platforms keep their
// own L1 replicas, initialized identically (the paper's postulate) and never
// re-synchronized unless the sync_l1_every extension is enabled.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "src/core/membership.hpp"
#include "src/core/minibatch_policy.hpp"
#include "src/core/platform.hpp"
#include "src/core/scheduler.hpp"
#include "src/core/server.hpp"
#include "src/data/partition.hpp"
#include "src/metrics/curve.hpp"
#include "src/models/model.hpp"
#include "src/net/topology.hpp"
#include "src/obs/obs.hpp"
#include "src/optim/lr_schedule.hpp"

namespace splitmed::core {

/// Builds one fresh replica of the model. Must be deterministic: every call
/// returns identical weights (same seed), which is how all platforms start
/// with the same L1.
using ModelBuilder = std::function<models::BuiltModel()>;

/// How a round's K platform steps are laid onto the WAN.
enum class Schedule {
  /// The paper's Fig. 3 workflow: platforms served strictly one after
  /// another; platform k+1 starts uploading only after k fully finished.
  kSequential,
  /// All participating platforms upload concurrently (separate WAN links);
  /// the server processes arrivals FIFO. Same mathematics, same bytes, less
  /// wall-clock — the latency optimization the sequential workflow leaves
  /// on the table. Round boundaries are full drain barriers.
  kOverlapped,
  /// Overlapped uploads WITHOUT the per-round drain barrier: a round only
  /// waits for steps that started more than `staleness_bound` rounds ago,
  /// so a straggler hospital folds its step in late instead of stalling
  /// everyone. Deterministic — completion order is the network's
  /// (arrival time, send sequence) order. Requires sync_l1_every == 0.
  kBoundedStaleness,
};

struct SplitConfig {
  /// Sequential entries kept on the platform; 0 = the model's default_cut.
  std::int64_t cut = 0;
  /// Sum of all platform minibatches per round (paper: sum of s_k).
  std::int64_t total_batch = 64;
  MinibatchPolicy policy = MinibatchPolicy::kProportional;
  std::int64_t rounds = 100;
  /// Evaluate + record a curve point every this many rounds.
  std::int64_t eval_every = 10;
  /// Stop early once this many wire bytes have moved (0 = unlimited).
  std::uint64_t byte_budget = 0;
  std::int64_t eval_batch = 64;
  optim::SgdOptions sgd{};
  /// Optional lr schedule over (integer) epochs; empty keeps sgd.learning_rate.
  optim::LrSchedule lr_schedule;
  /// Extension (ablation): average L1 weights across platforms every N
  /// rounds through the server, byte-accounted. 0 = never (the paper).
  std::int64_t sync_l1_every = 0;
  /// Heterogeneous hospital WAN star vs a uniform star.
  bool hospital_wan = true;
  net::Link uniform_link = net::Link::mbps(300.0, 20.0);
  std::uint64_t seed = 123;

  /// --- extensions (defaults reproduce the paper exactly) -------------------
  /// Negotiated wire codec for activations / cut grads (kF16 = 2x, kI8 = 4x
  /// payload compression; logits stay f32). Saved in checkpoints — resume
  /// refuses a mismatched codec so recovery is bitwise-faithful per codec.
  WireCodec codec = WireCodec::kF32;
  /// Gaussian noise stddev added to outgoing activations (privacy defense).
  float smash_noise_std = 0.0F;
  Schedule schedule = Schedule::kSequential;
  /// kBoundedStaleness only: how many rounds late a straggler's step may
  /// fold in. Round r's boundary waits for every step begun at or before
  /// round r - staleness_bound (and for at least one completion, so every
  /// round makes progress). 0 = the overlapped barrier.
  std::int64_t staleness_bound = 1;
  /// Per-round probability that a platform participates (fault injection /
  /// intermittent hospitals). At least one platform always participates.
  double participation = 1.0;
  /// WAN fault injection (extension): seeded per-link drop / duplicate /
  /// corruption / delay-spike rates, installed as the network-wide default
  /// plan. Any nonzero rate turns on CRC trailers and protocol-level
  /// recovery (timeouts, retransmissions, idempotent duplicate handling).
  /// All-zero (the default) leaves every byte and RNG stream untouched —
  /// bitwise identical to a fault-free build. Requires the sequential
  /// schedule and sync_l1_every == 0.
  net::FaultPlan faults{};
  /// Timeout / exponential-backoff retransmission policy (simulated time)
  /// used when `faults` has any nonzero rate.
  net::RetryPolicy recovery{};
  /// Compute threads for the tensor substrate (resizes the process-global
  /// pool). 0 keeps the current global default (SPLITMED_THREADS env var or
  /// hardware_concurrency); 1 forces the serial path. Thread count never
  /// changes bytes, message order, or curves — see docs/PROTOCOL.md.
  int threads = 0;

  /// Crash recovery (extension; see docs/CHECKPOINT.md). checkpoint_every
  /// > 0 writes a full-state checkpoint to checkpoint_dir every N rounds
  /// (at the round boundary, after eval). Saving never touches training
  /// state — curves are bitwise identical with checkpointing on or off.
  std::int64_t checkpoint_every = 0;
  std::string checkpoint_dir;
  /// Resume path: either one round directory (".../round_000040") or a
  /// checkpoint_dir to scan for the newest complete round. Empty = fresh
  /// run. The checkpoint must match this config (seed, model, platform
  /// count) — resuming under a different config is refused.
  std::string resume_from;

  /// Observability (extension; see docs/OBSERVABILITY.md): dual-clock
  /// tracing, a metrics registry, and the protocol flight recorder. The
  /// trainer owns the ObsSession; files are exported when the trainer is
  /// destroyed (or on ObsSession::flush). Disabled (the default) is bitwise
  /// inert, and enabling it never changes bytes, RNG streams, or curves —
  /// asserted by golden_curve_test.
  obs::ObsConfig obs{};

  /// Platform membership under churn (extension; see docs/PROTOCOL.md
  /// "Membership"): liveness leases, deadline-closed rounds with quorum
  /// degradation, update validation with quarantine, and rejoin handshakes.
  /// Disabled (the default) is bitwise inert. Requires the sequential
  /// schedule, sync_l1_every == 0, and participation == 1.0 (membership
  /// subsumes participation sampling — churn IS the absence model).
  MembershipConfig membership{};
  /// Deterministic environment script (crashes / outages / poison spells)
  /// driving the chaos harness. Requires membership.enabled when non-empty.
  ChurnPlan churn{};

  /// Full config validation; throws InvalidArgument naming the offending
  /// flag (and both sides of a contradictory combination). Called by the
  /// trainer constructor with the partition's platform count.
  void validate(std::size_t num_platforms) const;
};

class SplitTrainer {
 public:
  /// `partition[k]` is platform k's shard of `train`. Both datasets must
  /// outlive the trainer.
  SplitTrainer(ModelBuilder builder, const data::Dataset& train,
               data::Partition partition, const data::Dataset& test,
               SplitConfig config);

  /// Runs the configured number of rounds (or until the byte budget) and
  /// returns the training curve.
  metrics::TrainReport run();

  /// Mean test accuracy over the K composite models (platform k's L1 + the
  /// shared server body) — each hospital's deployable model.
  double evaluate();

  [[nodiscard]] std::size_t num_platforms() const { return platforms_.size(); }
  [[nodiscard]] PlatformNode& platform(std::size_t k);
  [[nodiscard]] CentralServer& server() { return *server_; }
  [[nodiscard]] net::Network& network() { return network_; }
  [[nodiscard]] const std::vector<std::int64_t>& minibatches() const {
    return minibatches_;
  }
  /// The trainer-owned observability session; null when config.obs is
  /// disabled. Benches use it to flush trace/metrics files mid-run.
  [[nodiscard]] obs::ObsSession* obs_session() { return obs_session_.get(); }
  /// The membership authority; null when config.membership is disabled.
  [[nodiscard]] const MembershipService* membership() const {
    return membership_.get();
  }

  /// Writes a complete round-stamped checkpoint to
  /// `<dir>/round_<round>/` (node files first, manifest last; every file
  /// atomic). Must be called at a round boundary (every node idle; frames
  /// still in flight — possible under fault injection — are captured in the
  /// network state). Side-effect free on training state.
  void save_checkpoint(const std::string& dir, std::uint64_t round);

  /// Restores the trainer from the round directory `round_dir` (a path
  /// containing manifest.smckpt). Throws SerializationError on malformed or
  /// config-mismatched files, ProtocolError when a node file's round stamp
  /// disagrees with the manifest. Called by the constructor when
  /// config.resume_from is set.
  void load_checkpoint(const std::string& round_dir);

  /// First round the next run() call will execute (1 for a fresh trainer,
  /// checkpoint round + 1 after a resume).
  [[nodiscard]] std::uint64_t next_round() const { return next_round_; }

 private:
  /// How one platform's protocol step ended.
  enum class StepOutcome {
    kCompleted,    ///< optimizer stepped on both sides
    kRejected,     ///< the server refused the update (kUpdateReject)
    kUnreachable,  ///< retransmissions exhausted, step abandoned
  };

  /// One full 4-message protocol exchange for one platform.
  void run_platform_step(PlatformNode& platform, std::uint64_t step_id);
  /// Fault-tolerant variant: pumps the WAN with per-stage timeouts and
  /// bounded retransmissions.
  StepOutcome run_platform_step_reliable(PlatformNode& platform,
                                         std::uint64_t step_id);
  /// Fault-free membership variant of run_platform_step: the server may
  /// answer either protocol stage with kUpdateReject, which ends the step.
  StepOutcome run_membership_step(PlatformNode& platform,
                                  std::uint64_t step_id);
  /// One membership round: crash/poison script, heartbeats, rejoin
  /// handshakes, then deadline-gated protocol steps in rotated order.
  /// `stepped` receives the completed platforms in ascending index order.
  void run_membership_round(std::int64_t round,
                            std::vector<std::size_t>& stepped);
  /// Runs the join handshake for platform p; false = retransmissions
  /// exhausted (the handshake is abandoned and retried next round).
  bool run_rejoin_handshake(std::size_t p, std::int64_t round);
  /// Delivers frames until `platform`'s join handshake completes,
  /// retransmitting on timeout (mirrors await_platform_progress).
  bool await_join(PlatformNode& platform);
  /// Delivers every frame currently in flight (heartbeat batches; under
  /// fault injection also strays, which the state machines absorb).
  void drain_network();
  /// Delivers frames until `platform` leaves its current protocol state,
  /// retransmitting its last message on timeout (exponential backoff over
  /// simulated time). False = retries exhausted without progress.
  bool await_platform_progress(PlatformNode& platform);
  /// One event-driven round (overlapped / bounded staleness): idle
  /// participants begin steps, then the scheduler pumps the global arrival
  /// queue to the round's staleness horizon (`drain_fully` forces a full
  /// barrier — overlapped rounds, checkpoint boundaries, the final round).
  /// `stepped` receives the platforms whose steps completed this round, in
  /// ascending index order.
  void run_event_round(const std::vector<std::size_t>& participants,
                       std::int64_t round, bool drain_fully,
                       std::vector<std::size_t>& stepped);
  /// Samples this round's participants (>= 1, deterministic in the seed).
  std::vector<std::size_t> sample_participants(std::int64_t round);
  /// Mean last_loss over this round's participants; once every platform has
  /// taken >= 1 step, the mean over all platforms (see docs/PROTOCOL.md).
  double round_train_loss(const std::vector<std::size_t>& participants) const;
  /// L1 weight averaging extension (byte-accounted through the network).
  void sync_l1(std::uint64_t round);

  SplitConfig config_;
  const data::Dataset* train_;
  const data::Dataset* test_;
  net::Network network_;
  net::StarTopology topology_;
  std::unique_ptr<CentralServer> server_;
  std::vector<std::unique_ptr<PlatformNode>> platforms_;
  /// Event-driven round engine (overlapped / bounded-staleness schedules;
  /// also routes frames for the reliable sequential path). Built after the
  /// node set is final.
  std::unique_ptr<EventScheduler> scheduler_;
  /// Keeps each replica's Rng alive (Dropout layers hold pointers into it).
  std::vector<std::unique_ptr<Rng>> replica_rngs_;
  std::vector<std::int64_t> minibatches_;
  std::string model_name_;
  std::int64_t examples_per_round_ = 0;
  std::int64_t examples_processed_ = 0;
  std::int64_t skipped_steps_ = 0;
  Rng participation_rng_{0};
  /// Membership authority (null unless config.membership.enabled); the
  /// server holds a non-owning pointer for admission and lease renewal.
  std::unique_ptr<MembershipService> membership_;
  /// Set by run_membership_round when the round closed below min_quorum —
  /// the curve point carries the previous loss instead of fabricating one.
  bool last_round_void_ = false;
  /// Run-progress state, members (not run() locals) so a checkpoint can
  /// capture them and a resumed trainer continues mid-report.
  std::uint64_t next_round_ = 1;
  std::uint64_t step_id_ = 0;
  metrics::TrainReport report_;
  /// Declared LAST so it is destroyed FIRST: the destructor exports trace /
  /// metrics / flight-recorder files while the rest of the trainer (network
  /// clock, stats) is still alive.
  std::unique_ptr<obs::ObsSession> obs_session_;
};

}  // namespace splitmed::core
