#include "src/core/checkpoint.hpp"

#include <algorithm>
#include <filesystem>
#include <iomanip>
#include <sstream>

#include "src/common/error.hpp"
#include "src/common/logging.hpp"
#include "src/core/trainer.hpp"
#include "src/serial/section_file.hpp"
#include "src/serial/state_codec.hpp"

namespace splitmed::core {

namespace fs = std::filesystem;

namespace {

// Format 2 added the wire codec byte to the "run" section (resume must be
// bitwise-faithful per codec, so the codec is part of the saved config).
// Format 3 added the platform roster (per-platform shard sizes) and the
// membership flag to the "run" section, plus a "membership" manifest section
// when the membership extension is on — resume refuses a roster or
// membership-mode mismatch.
constexpr std::uint32_t kManifestFormat = 3;

void require_exhausted(const BufferReader& r, const std::string& what) {
  if (!r.exhausted()) {
    throw SerializationError(what + ": trailing bytes (" +
                             std::to_string(r.remaining()) + " unread)");
  }
}

void encode_report(const metrics::TrainReport& report, BufferWriter& w) {
  w.write_string(report.protocol);
  w.write_string(report.model);
  w.write_u32(static_cast<std::uint32_t>(report.curve.size()));
  for (const auto& p : report.curve) {
    w.write_i64(p.step);
    w.write_f64(p.epoch);
    w.write_u64(p.cumulative_bytes);
    w.write_f64(p.sim_seconds);
    w.write_f64(p.train_loss);
    w.write_f64(p.test_accuracy);
  }
  w.write_i64(report.steps_completed);
  w.write_f64(report.final_accuracy);
}

metrics::TrainReport decode_report(BufferReader& r) {
  metrics::TrainReport report;
  report.protocol = r.read_string();
  report.model = r.read_string();
  const std::uint32_t points = r.read_u32();
  report.curve.reserve(points);
  for (std::uint32_t i = 0; i < points; ++i) {
    metrics::CurvePoint p;
    p.step = r.read_i64();
    p.epoch = r.read_f64();
    p.cumulative_bytes = r.read_u64();
    p.sim_seconds = r.read_f64();
    p.train_loss = r.read_f64();
    p.test_accuracy = r.read_f64();
    report.curve.push_back(p);
  }
  report.steps_completed = r.read_i64();
  report.final_accuracy = r.read_f64();
  return report;
}

/// Node-file "meta" section: role byte, optional platform index, round
/// stamp, seed. The round stamp is the handshake that refuses
/// mismatched-round peers.
enum class NodeRole : std::uint8_t { kServer = 0, kPlatform = 1 };

void write_node_meta(BufferWriter& w, NodeRole role, std::uint32_t index,
                     std::uint64_t round, std::uint64_t seed) {
  w.write_u8(static_cast<std::uint8_t>(role));
  w.write_u32(index);
  w.write_u64(round);
  w.write_u64(seed);
}

void check_node_meta(const SectionFileReader& file, const std::string& path,
                     NodeRole role, std::uint32_t index,
                     std::uint64_t manifest_round, std::uint64_t seed) {
  BufferReader meta = file.reader("meta");
  const std::uint8_t got_role = meta.read_u8();
  if (got_role != static_cast<std::uint8_t>(role)) {
    throw SerializationError("checkpoint '" + path + "': wrong node role " +
                             std::to_string(got_role));
  }
  const std::uint32_t got_index = meta.read_u32();
  if (got_index != index) {
    throw SerializationError("checkpoint '" + path + "': platform index " +
                             std::to_string(got_index) + ", expected " +
                             std::to_string(index));
  }
  const std::uint64_t got_round = meta.read_u64();
  if (got_round != manifest_round) {
    // The round-stamped handshake: a node file from a different round must
    // never be combined with this manifest's peers.
    throw ProtocolError("checkpoint '" + path + "': node state is from round " +
                        std::to_string(got_round) + " but the manifest says " +
                        std::to_string(manifest_round) +
                        " — refusing a mismatched-round peer");
  }
  const std::uint64_t got_seed = meta.read_u64();
  if (got_seed != seed) {
    throw SerializationError("checkpoint '" + path + "': seed " +
                             std::to_string(got_seed) +
                             " does not match the run seed " +
                             std::to_string(seed));
  }
  require_exhausted(meta, "checkpoint '" + path + "' meta");
}

}  // namespace

std::string checkpoint_round_dirname(std::uint64_t round) {
  std::ostringstream os;
  os << "round_" << std::setw(6) << std::setfill('0') << round;
  return os.str();
}

std::string checkpoint_platform_filename(std::size_t index) {
  return "platform_" + std::to_string(index) + ".smckpt";
}

std::optional<std::string> find_resumable_checkpoint(const std::string& dir) {
  if (!fs::is_directory(dir)) return std::nullopt;
  // Collect (round, path), newest first.
  std::vector<std::pair<std::uint64_t, std::string>> candidates;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (!entry.is_directory()) continue;
    const std::string name = entry.path().filename().string();
    if (name.rfind("round_", 0) != 0) continue;
    const std::string digits = name.substr(6);
    if (digits.empty() ||
        digits.find_first_not_of("0123456789") != std::string::npos) {
      continue;
    }
    candidates.emplace_back(std::stoull(digits), entry.path().string());
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  for (const auto& [round, path] : candidates) {
    const std::string manifest =
        (fs::path(path) / kManifestFile).string();
    if (!fs::exists(manifest)) continue;  // torn save: manifest never landed
    try {
      const SectionFileReader file = SectionFileReader::read_file(manifest);
      if (file.has("run") && file.has("network") && file.has("report")) {
        return path;
      }
    } catch (const Error&) {
      // Corrupt or truncated manifest — fall through to an older round.
      SPLITMED_LOG(kWarn) << "skipping unreadable checkpoint manifest '"
                          << manifest << "'";
    }
  }
  return std::nullopt;
}

std::string resolve_resume_dir(const std::string& path) {
  if (fs::exists(fs::path(path) / kManifestFile)) return path;
  const auto found = find_resumable_checkpoint(path);
  if (!found) {
    throw Error("no resumable checkpoint found at '" + path +
                "' (neither a round directory nor a parent of one)");
  }
  return *found;
}

void SplitTrainer::save_checkpoint(const std::string& dir,
                                   std::uint64_t round) {
  const fs::path round_dir = fs::path(dir) / checkpoint_round_dirname(round);
  fs::create_directories(round_dir);

  // Node files first; the manifest last, so a crash anywhere in this
  // function leaves a directory find_resumable_checkpoint() skips.
  {
    SectionFileWriter file;
    BufferWriter meta;
    write_node_meta(meta, NodeRole::kServer, 0, round, config_.seed);
    file.add("meta", std::move(meta));
    BufferWriter state;
    server_->save_state(state);
    file.add("state", std::move(state));
    file.write_file((round_dir / kServerFile).string());
  }
  for (std::size_t k = 0; k < platforms_.size(); ++k) {
    SectionFileWriter file;
    BufferWriter meta;
    write_node_meta(meta, NodeRole::kPlatform, static_cast<std::uint32_t>(k),
                    round, config_.seed);
    file.add("meta", std::move(meta));
    BufferWriter state;
    platforms_[k]->save_state(state);
    file.add("state", std::move(state));
    BufferWriter rng;
    encode_rng(*replica_rngs_[k], rng);
    file.add("rng", std::move(rng));
    file.write_file((round_dir / checkpoint_platform_filename(k)).string());
  }
  {
    SectionFileWriter file;
    BufferWriter run;
    run.write_u32(kManifestFormat);
    run.write_u64(round);
    run.write_u64(step_id_);
    run.write_u64(config_.seed);
    run.write_u32(static_cast<std::uint32_t>(platforms_.size()));
    // The roster: each platform's shard size. Platform count alone cannot
    // tell two different partitions of the same dataset apart, and resuming
    // under a re-shuffled roster would silently feed every hospital someone
    // else's loader state.
    for (const auto& p : platforms_) run.write_i64(p->shard_size());
    run.write_string(model_name_);
    run.write_u8(static_cast<std::uint8_t>(config_.codec));
    run.write_u8(membership_ ? 1 : 0);
    run.write_i64(examples_processed_);
    run.write_i64(skipped_steps_);
    encode_rng(participation_rng_, run);
    file.add("run", std::move(run));
    if (membership_) {
      BufferWriter membership;
      membership_->save_state(membership);
      file.add("membership", std::move(membership));
    }
    BufferWriter network;
    network_.save_state(network);
    file.add("network", std::move(network));
    BufferWriter report;
    encode_report(report_, report);
    file.add("report", std::move(report));
    file.write_file((round_dir / kManifestFile).string());
  }
}

void SplitTrainer::load_checkpoint(const std::string& round_dir) {
  const fs::path base(round_dir);
  const SectionFileReader manifest =
      SectionFileReader::read_file((base / kManifestFile).string());

  BufferReader run = manifest.reader("run");
  const std::uint32_t format = run.read_u32();
  if (format != kManifestFormat) {
    throw SerializationError("checkpoint manifest: unsupported format " +
                             std::to_string(format));
  }
  const std::uint64_t round = run.read_u64();
  const std::uint64_t step_id = run.read_u64();
  const std::uint64_t seed = run.read_u64();
  if (seed != config_.seed) {
    throw SerializationError(
        "checkpoint manifest: run seed " + std::to_string(seed) +
        " does not match the configured seed " + std::to_string(config_.seed));
  }
  const std::uint32_t num_platforms = run.read_u32();
  if (num_platforms != platforms_.size()) {
    throw SerializationError("checkpoint manifest: " +
                             std::to_string(num_platforms) +
                             " platforms, this run has " +
                             std::to_string(platforms_.size()));
  }
  for (std::size_t k = 0; k < platforms_.size(); ++k) {
    const std::int64_t saved_shard = run.read_i64();
    const std::int64_t this_shard = platforms_[k]->shard_size();
    if (saved_shard != this_shard) {
      throw SerializationError(
          "checkpoint manifest: platform " + std::to_string(k) +
          " was saved with a shard of " + std::to_string(saved_shard) +
          " example(s) but this run partitions it " +
          std::to_string(this_shard) +
          " — refusing to resume under a different roster");
    }
  }
  const std::string model = run.read_string();
  if (model != model_name_) {
    throw SerializationError("checkpoint manifest: model '" + model +
                             "' does not match this run's model '" +
                             model_name_ + "'");
  }
  const std::uint8_t codec = run.read_u8();
  if (codec >= kWireCodecCount) {
    throw SerializationError("checkpoint manifest: unknown wire codec tag " +
                             std::to_string(codec));
  }
  if (static_cast<WireCodec>(codec) != config_.codec) {
    throw SerializationError(
        std::string("checkpoint manifest: saved under wire codec ") +
        wire_codec_name(static_cast<WireCodec>(codec)) +
        ", this run is configured for " + wire_codec_name(config_.codec));
  }
  const std::uint8_t saved_membership = run.read_u8();
  if (saved_membership > 1) {
    throw SerializationError(
        "checkpoint manifest: membership flag must be 0 or 1, got " +
        std::to_string(saved_membership));
  }
  if ((saved_membership == 1) != (membership_ != nullptr)) {
    throw SerializationError(
        std::string("checkpoint manifest: saved with membership ") +
        (saved_membership ? "enabled" : "disabled") + ", this run has it " +
        (membership_ ? "enabled" : "disabled"));
  }
  const std::int64_t examples_processed = run.read_i64();
  const std::int64_t skipped_steps = run.read_i64();
  if (examples_processed < 0 || skipped_steps < 0) {
    throw SerializationError("checkpoint manifest: negative progress counter");
  }
  Rng participation_rng = participation_rng_;
  decode_rng(run, participation_rng);
  require_exhausted(run, "checkpoint manifest 'run' section");

  // Node files: validate every meta stamp against the manifest round before
  // applying any state, so a refused peer leaves the trainer untouched.
  const std::string server_path = (base / kServerFile).string();
  const SectionFileReader server_file =
      SectionFileReader::read_file(server_path);
  check_node_meta(server_file, server_path, NodeRole::kServer, 0, round, seed);
  std::vector<SectionFileReader> platform_files;
  platform_files.reserve(platforms_.size());
  for (std::size_t k = 0; k < platforms_.size(); ++k) {
    const std::string path =
        (base / checkpoint_platform_filename(k)).string();
    platform_files.push_back(SectionFileReader::read_file(path));
    check_node_meta(platform_files.back(), path, NodeRole::kPlatform,
                    static_cast<std::uint32_t>(k), round, seed);
  }

  BufferReader network = manifest.reader("network");
  network_.load_state(network);
  require_exhausted(network, "checkpoint manifest 'network' section");
  BufferReader report = manifest.reader("report");
  report_ = decode_report(report);
  require_exhausted(report, "checkpoint manifest 'report' section");
  if (membership_) {
    if (!manifest.has("membership")) {
      throw SerializationError(
          "checkpoint manifest: membership is enabled but the manifest has "
          "no 'membership' section");
    }
    BufferReader membership = manifest.reader("membership");
    membership_->load_state(membership);
    require_exhausted(membership,
                      "checkpoint manifest 'membership' section");
  }

  {
    BufferReader state = server_file.reader("state");
    server_->load_state(state);
    require_exhausted(state, "server checkpoint 'state' section");
  }
  for (std::size_t k = 0; k < platforms_.size(); ++k) {
    BufferReader state = platform_files[k].reader("state");
    platforms_[k]->load_state(state);
    require_exhausted(state,
                      "platform " + std::to_string(k) + " 'state' section");
    BufferReader rng = platform_files[k].reader("rng");
    decode_rng(rng, *replica_rngs_[k]);
    require_exhausted(rng, "platform " + std::to_string(k) + " 'rng' section");
  }

  participation_rng_ = participation_rng;
  examples_processed_ = examples_processed;
  skipped_steps_ = skipped_steps;
  step_id_ = step_id;
  next_round_ = round + 1;
  SPLITMED_LOG(kInfo) << "resumed from checkpoint '" << round_dir
                      << "' (round " << round << ", step " << step_id << ")";
}

}  // namespace splitmed::core
