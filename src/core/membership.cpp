#include "src/core/membership.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <sstream>
#include <string>

#include "src/common/error.hpp"
#include "src/obs/obs.hpp"
#include "src/serial/codec.hpp"
#include "src/serial/state_codec.hpp"

namespace splitmed::core {
namespace {

constexpr std::uint64_t kChurnSalt = 0xA24BAED4963EE407ULL;
constexpr std::uint64_t kProbationSalt = 0x9FB21C651E98DF25ULL;
/// Re-quarantine spells double up to this cap (rounds).
constexpr std::int64_t kMaxQuarantineSpell = std::int64_t{1} << 20;
/// ChurnPlan::random leaves at least this many rounds between events on the
/// same platform, so a generated schedule never crashes a platform that is
/// still serving the previous outage.
constexpr std::int64_t kRandomEventGapRounds = 8;

void require_state_byte(std::uint8_t v, const char* where) {
  if (v >= kMemberStateCount) {
    std::ostringstream os;
    os << where << ": unknown lifecycle state byte " << int{v};
    throw SerializationError(os.str());
  }
}

void require_mode_byte(std::uint8_t v, const char* where) {
  if (v > static_cast<std::uint8_t>(RejoinMode::kCold)) {
    std::ostringstream os;
    os << where << ": unknown rejoin mode byte " << int{v};
    throw SerializationError(os.str());
  }
}

void require_exhausted(const BufferReader& r, const char* where) {
  if (!r.exhausted()) {
    std::ostringstream os;
    os << where << ": " << r.remaining() << " trailing byte(s) after payload";
    throw SerializationError(os.str());
  }
}

}  // namespace

const char* member_state_name(MemberState s) {
  switch (s) {
    case MemberState::kJoining:
      return "joining";
    case MemberState::kActive:
      return "active";
    case MemberState::kSuspect:
      return "suspect";
    case MemberState::kQuarantined:
      return "quarantined";
    case MemberState::kDead:
      return "dead";
    case MemberState::kRejoining:
      return "rejoining";
  }
  return "unknown";
}

const char* reject_reason_name(RejectReason r) {
  switch (r) {
    case RejectReason::kNonFinite:
      return "non-finite";
    case RejectReason::kNormBomb:
      return "norm-bomb";
  }
  return "unknown";
}

// ---------------------------------------------------------------------------
// ChurnPlan
// ---------------------------------------------------------------------------

void ChurnPlan::validate(std::size_t num_platforms) const {
  for (const CrashEvent& e : crashes) {
    SPLITMED_CHECK(e.platform < num_platforms,
                   "churn.crashes: platform index " << e.platform
                       << " out of range for " << num_platforms
                       << " platform(s)");
    SPLITMED_CHECK(e.round >= 1,
                   "churn.crashes: round must be >= 1, got " << e.round);
    SPLITMED_CHECK(std::isfinite(e.offline_sec) && e.offline_sec > 0.0,
                   "churn.crashes: offline_sec must be finite and positive, "
                   "got "
                       << e.offline_sec);
  }
  for (const PoisonEvent& e : poisons) {
    SPLITMED_CHECK(e.platform < num_platforms,
                   "churn.poisons: platform index " << e.platform
                       << " out of range for " << num_platforms
                       << " platform(s)");
    SPLITMED_CHECK(e.round >= 1,
                   "churn.poisons: round must be >= 1, got " << e.round);
    SPLITMED_CHECK(e.duration_rounds >= 1,
                   "churn.poisons: duration_rounds must be >= 1, got "
                       << e.duration_rounds);
    SPLITMED_CHECK(std::isfinite(e.scale),
                   "churn.poisons: scale must be finite, got " << e.scale);
  }
}

ChurnPlan ChurnPlan::random(std::uint64_t seed, std::size_t num_platforms,
                            std::int64_t rounds, const ChurnRates& rates) {
  SPLITMED_CHECK(num_platforms > 0, "ChurnPlan::random: no platforms");
  SPLITMED_CHECK(rounds >= 1, "ChurnPlan::random: rounds must be >= 1, got "
                                  << rounds);
  SPLITMED_CHECK(rates.crash_rate >= 0.0 && rates.crash_rate <= 1.0,
                 "ChurnPlan::random: crash_rate must be in [0,1], got "
                     << rates.crash_rate);
  SPLITMED_CHECK(rates.poison_rate >= 0.0 && rates.poison_rate <= 1.0,
                 "ChurnPlan::random: poison_rate must be in [0,1], got "
                     << rates.poison_rate);
  SPLITMED_CHECK(rates.mean_offline_sec > 0.0,
                 "ChurnPlan::random: mean_offline_sec must be positive, got "
                     << rates.mean_offline_sec);
  SPLITMED_CHECK(rates.cold_fraction >= 0.0 && rates.cold_fraction <= 1.0,
                 "ChurnPlan::random: cold_fraction must be in [0,1], got "
                     << rates.cold_fraction);
  SPLITMED_CHECK(rates.poison_rounds >= 1,
                 "ChurnPlan::random: poison_rounds must be >= 1, got "
                     << rates.poison_rounds);

  Rng rng(seed ^ kChurnSalt);
  ChurnPlan plan;
  std::vector<std::int64_t> next_free(num_platforms, 1);
  // Round-major, platform-minor walk: the draw order (and therefore the
  // schedule) is a pure function of (seed, num_platforms, rounds, rates).
  for (std::int64_t r = 1; r <= rounds; ++r) {
    for (std::size_t p = 0; p < num_platforms; ++p) {
      if (r < next_free[p]) continue;
      if (rates.crash_rate > 0.0 && rng.bernoulli(rates.crash_rate)) {
        CrashEvent e;
        e.platform = p;
        e.round = r;
        e.offline_sec =
            rates.mean_offline_sec * (0.5 + static_cast<double>(rng.uniform()));
        e.rejoin = rng.bernoulli(rates.cold_fraction) ? RejoinMode::kCold
                                                      : RejoinMode::kWarm;
        plan.crashes.push_back(e);
        next_free[p] = r + kRandomEventGapRounds;
        continue;
      }
      if (rates.poison_rate > 0.0 && rng.bernoulli(rates.poison_rate)) {
        PoisonEvent e;
        e.platform = p;
        e.round = r;
        e.duration_rounds = rates.poison_rounds;
        e.kind = rng.bernoulli(0.5F) ? PoisonKind::kNonFinite
                                     : PoisonKind::kNormBomb;
        e.scale = rates.poison_scale;
        plan.poisons.push_back(e);
        next_free[p] = r + kRandomEventGapRounds;
      }
    }
  }
  return plan;
}

// ---------------------------------------------------------------------------
// MembershipConfig
// ---------------------------------------------------------------------------

void MembershipConfig::validate(std::size_t num_platforms) const {
  SPLITMED_CHECK(std::isfinite(heartbeat_interval_sec) &&
                     heartbeat_interval_sec > 0.0,
                 "membership.heartbeat_interval_sec must be positive, got "
                     << heartbeat_interval_sec);
  SPLITMED_CHECK(std::isfinite(lease_sec) && lease_sec > 0.0,
                 "membership.lease_sec must be positive, got " << lease_sec);
  SPLITMED_CHECK(std::isfinite(dead_sec) && dead_sec > lease_sec,
                 "membership.dead_sec must exceed membership.lease_sec ("
                     << lease_sec << "), got " << dead_sec);
  SPLITMED_CHECK(std::isfinite(round_deadline_sec) && round_deadline_sec > 0.0,
                 "membership.round_deadline_sec must be positive, got "
                     << round_deadline_sec);
  SPLITMED_CHECK(min_quorum >= 1,
                 "membership.min_quorum must be >= 1, got " << min_quorum);
  SPLITMED_CHECK(min_quorum <= static_cast<std::int64_t>(num_platforms),
                 "membership.min_quorum (" << min_quorum
                     << ") exceeds the platform count (" << num_platforms
                     << ") — no round could ever reach quorum");
  SPLITMED_CHECK(std::isfinite(norm_bomb_factor) && norm_bomb_factor > 1.0,
                 "membership.norm_bomb_factor must be > 1, got "
                     << norm_bomb_factor);
  SPLITMED_CHECK(norm_window >= 1,
                 "membership.norm_window must be >= 1, got " << norm_window);
  SPLITMED_CHECK(norm_warmup >= 1 && norm_warmup <= norm_window,
                 "membership.norm_warmup must be in [1, norm_window="
                     << norm_window << "], got " << norm_warmup);
  SPLITMED_CHECK(strikes_to_quarantine >= 1,
                 "membership.strikes_to_quarantine must be >= 1, got "
                     << strikes_to_quarantine);
  SPLITMED_CHECK(quarantine_rounds >= 1,
                 "membership.quarantine_rounds must be >= 1, got "
                     << quarantine_rounds);
  SPLITMED_CHECK(probation_readmit_prob > 0.0 && probation_readmit_prob <= 1.0,
                 "membership.probation_readmit_prob must be in (0,1], got "
                     << probation_readmit_prob
                     << " (0 would quarantine forever)");
  SPLITMED_CHECK(probation_clean_steps >= 1,
                 "membership.probation_clean_steps must be >= 1, got "
                     << probation_clean_steps);
}

// ---------------------------------------------------------------------------
// Control-frame payload codecs
// ---------------------------------------------------------------------------

std::vector<std::uint8_t> encode_heartbeat_payload(const HeartbeatMsg& m) {
  BufferWriter w;
  w.write_u32(m.platform);
  w.write_u64(m.beat);
  w.write_u64(m.last_completed_round);
  return w.take();
}

HeartbeatMsg decode_heartbeat_payload(std::span<const std::uint8_t> payload) {
  BufferReader r(payload);
  HeartbeatMsg m;
  m.platform = r.read_u32();
  m.beat = r.read_u64();
  m.last_completed_round = r.read_u64();
  require_exhausted(r, "heartbeat");
  return m;
}

std::vector<std::uint8_t> encode_join_request_payload(const JoinRequestMsg& m) {
  BufferWriter w;
  w.write_u32(m.platform);
  w.write_u8(static_cast<std::uint8_t>(m.mode));
  w.write_u64(m.last_completed_round);
  return w.take();
}

JoinRequestMsg decode_join_request_payload(
    std::span<const std::uint8_t> payload) {
  BufferReader r(payload);
  JoinRequestMsg m;
  m.platform = r.read_u32();
  const std::uint8_t mode = r.read_u8();
  require_mode_byte(mode, "join request");
  m.mode = static_cast<RejoinMode>(mode);
  m.last_completed_round = r.read_u64();
  require_exhausted(r, "join request");
  return m;
}

std::vector<std::uint8_t> encode_join_accept_payload(const JoinAcceptMsg& m) {
  BufferWriter w;
  w.write_u64(m.current_round);
  w.write_u8(m.has_l1 ? 1 : 0);
  // Genesis weights always travel full-precision: a lossy codec here would
  // fork a cold-rejoined platform's L1 from every other replica's bitwise.
  if (m.has_l1) encode_tensor_tagged(m.l1, WireCodec::kF32, w);
  return w.take();
}

JoinAcceptMsg decode_join_accept_payload(
    std::span<const std::uint8_t> payload) {
  BufferReader r(payload);
  JoinAcceptMsg m;
  m.current_round = r.read_u64();
  const std::uint8_t has_l1 = r.read_u8();
  if (has_l1 > 1) {
    std::ostringstream os;
    os << "join accept: has_l1 flag must be 0 or 1, got " << int{has_l1};
    throw SerializationError(os.str());
  }
  m.has_l1 = has_l1 == 1;
  if (m.has_l1) {
    TaggedTensor tagged = decode_tensor_tagged(r);
    if (tagged.codec != WireCodec::kF32) {
      throw SerializationError(
          "join accept: genesis L1 payload must be f32-tagged");
    }
    m.l1 = std::move(tagged.tensor);
  }
  require_exhausted(r, "join accept");
  return m;
}

std::vector<std::uint8_t> encode_update_reject_payload(
    const UpdateRejectMsg& m) {
  BufferWriter w;
  w.write_u8(static_cast<std::uint8_t>(m.reason));
  w.write_u32(m.strikes);
  w.write_u8(static_cast<std::uint8_t>(m.state));
  return w.take();
}

UpdateRejectMsg decode_update_reject_payload(
    std::span<const std::uint8_t> payload) {
  BufferReader r(payload);
  UpdateRejectMsg m;
  const std::uint8_t reason = r.read_u8();
  if (reason != static_cast<std::uint8_t>(RejectReason::kNonFinite) &&
      reason != static_cast<std::uint8_t>(RejectReason::kNormBomb)) {
    std::ostringstream os;
    os << "update reject: unknown reason byte " << int{reason};
    throw SerializationError(os.str());
  }
  m.reason = static_cast<RejectReason>(reason);
  m.strikes = r.read_u32();
  const std::uint8_t state = r.read_u8();
  require_state_byte(state, "update reject");
  m.state = static_cast<MemberState>(state);
  require_exhausted(r, "update reject");
  return m;
}

// ---------------------------------------------------------------------------
// Ledger
// ---------------------------------------------------------------------------

std::uint64_t MembershipLedger::fingerprint() const {
  std::uint64_t h = 0xCBF29CE484222325ULL;  // FNV-1a offset basis
  const auto mix = [&h](std::int64_t v) {
    std::uint64_t u = 0;
    std::memcpy(&u, &v, sizeof(u));
    for (int i = 0; i < 8; ++i) {
      h ^= (u >> (8 * i)) & 0xFFU;
      h *= 0x100000001B3ULL;
    }
  };
  for (const auto& row : transitions) {
    for (std::int64_t v : row) mix(v);
  }
  mix(strikes);
  mix(quarantines);
  mix(readmissions);
  mix(probation_clears);
  mix(rejected_nonfinite);
  mix(rejected_normbomb);
  mix(rejoins_warm);
  mix(rejoins_cold);
  mix(heartbeats_fresh);
  mix(heartbeats_stale);
  mix(deadline_misses);
  mix(void_rounds);
  mix(crashes);
  mix(outage_examples_lost);
  return h;
}

// ---------------------------------------------------------------------------
// MembershipService
// ---------------------------------------------------------------------------

double update_rms_norm(const Tensor& t) {
  if (t.numel() == 0) return 0.0;
  double sumsq = 0.0;
  for (float v : t.data()) {
    const double d = static_cast<double>(v);
    sumsq += d * d;
  }
  return std::sqrt(sumsq / static_cast<double>(t.numel()));
}

MembershipService::MembershipService(const MembershipConfig& config,
                                     ChurnPlan plan, std::size_t num_platforms,
                                     std::uint64_t seed,
                                     std::vector<std::int64_t> minibatches)
    : config_(config),
      plan_(std::move(plan)),
      minibatches_(std::move(minibatches)),
      probation_rng_(seed ^ kProbationSalt) {
  SPLITMED_CHECK(num_platforms > 0, "MembershipService: no platforms");
  SPLITMED_CHECK(minibatches_.size() == num_platforms,
                 "MembershipService: minibatch profile has "
                     << minibatches_.size() << " entries for " << num_platforms
                     << " platform(s)");
  config_.validate(num_platforms);
  plan_.validate(num_platforms);
  records_.resize(num_platforms);
}

void MembershipService::check_platform(std::size_t p) const {
  if (p >= records_.size()) {
    std::ostringstream os;
    os << "membership: platform index " << p << " out of range for "
       << records_.size() << " platform(s)";
    throw ProtocolError(os.str());
  }
}

void MembershipService::transition(std::size_t p, MemberState to) {
  MemberRecord& rec = records_[p];
  if (rec.state == to) return;
  ++ledger_.transitions[static_cast<std::size_t>(rec.state)]
                       [static_cast<std::size_t>(to)];
  if (obs::MetricsRegistry* m = obs::metrics()) {
    m->counter("splitmed_membership_transitions_total",
               "Membership lifecycle transitions by (from, to) state.",
               {{"from", member_state_name(rec.state)},
                {"to", member_state_name(to)}})
        .inc();
  }
  rec.state = to;
}

void MembershipService::quarantine(std::size_t p) {
  MemberRecord& rec = records_[p];
  rec.quarantine_spell =
      rec.quarantine_spell == 0
          ? config_.quarantine_rounds
          : std::min(rec.quarantine_spell * 2, kMaxQuarantineSpell);
  rec.quarantined_until_round = current_round_ + rec.quarantine_spell;
  rec.strikes = 0;
  rec.probation = 0;
  rec.clean_accepts = 0;
  ++ledger_.quarantines;
  if (obs::MetricsRegistry* m = obs::metrics()) {
    m->counter("splitmed_membership_quarantines_total",
               "Platforms quarantined by the strike policy.")
        .inc();
  }
  // Quarantine is the strike policy's terminal verdict on a misbehaving
  // hospital — exactly the moment an operator wants the recent protocol
  // history that led to it.
  obs::postmortem("platform " + std::to_string(p) +
                  " quarantined until round " +
                  std::to_string(rec.quarantined_until_round) + " (spell " +
                  std::to_string(rec.quarantine_spell) + " rounds)");
  transition(p, MemberState::kQuarantined);
}

void MembershipService::begin_round(std::int64_t round, double now) {
  current_round_ = round;

  // 1. Environment script: crashes scheduled for this round take effect
  //    before anything else — the platform is simply gone.
  for (const CrashEvent& e : plan_.crashes) {
    if (e.round != round) continue;
    MemberRecord& rec = records_[e.platform];
    if (rec.offline_until >= 0.0) continue;  // already mid-outage
    rec.offline_until = now + e.offline_sec;
    rec.pending_rejoin = 1;
    rec.rejoin_mode = static_cast<std::uint8_t>(e.rejoin);
    ++ledger_.crashes;
  }

  // 2. Lease sweep over the server's belief. JOINING platforms have never
  //    been heard from and are exempt; quarantine outranks liveness (a
  //    quarantined platform leaves quarantine only through probation).
  for (std::size_t p = 0; p < records_.size(); ++p) {
    MemberRecord& rec = records_[p];
    const double silence = now - rec.last_heard;
    if (rec.state == MemberState::kActive && silence > config_.lease_sec) {
      transition(p, MemberState::kSuspect);
    }
    if (rec.state == MemberState::kSuspect && silence > config_.dead_sec) {
      transition(p, MemberState::kDead);
    }
  }

  // 3. Quarantine expiry: once the spell is served, an ONLINE platform gets
  //    one seeded probation draw per round. Ascending platform order keeps
  //    the rng stream deterministic.
  for (std::size_t p = 0; p < records_.size(); ++p) {
    MemberRecord& rec = records_[p];
    if (rec.state != MemberState::kQuarantined) continue;
    if (round <= rec.quarantined_until_round) continue;
    if (rec.offline_until >= 0.0 && now < rec.offline_until) continue;
    if (probation_rng_.bernoulli(config_.probation_readmit_prob)) {
      rec.probation = 1;
      rec.clean_accepts = 0;
      ++ledger_.readmissions;
      transition(p, MemberState::kActive);
    }
  }

  // 4. Returned platforms: end finished outages, then promote everything
  //    that owes a join handshake (a served crash, or a belief-DEAD platform
  //    the server will not admit without one) to REJOINING.
  for (std::size_t p = 0; p < records_.size(); ++p) {
    MemberRecord& rec = records_[p];
    if (rec.offline_until >= 0.0 && now >= rec.offline_until) {
      rec.offline_until = -1.0;
    }
    if (!online(p) || rec.state == MemberState::kQuarantined) continue;
    if (rec.state == MemberState::kDead && !rec.pending_rejoin) {
      // Believed dead from silence alone (dropped heartbeats, long deadline
      // starvation): the platform is intact, so a warm handshake suffices.
      rec.pending_rejoin = 1;
      rec.rejoin_mode = static_cast<std::uint8_t>(RejoinMode::kWarm);
    }
    if (rec.pending_rejoin && rec.state != MemberState::kRejoining) {
      transition(p, MemberState::kRejoining);
    }
  }

  // 5. Outage accounting: an offline platform's minibatch this round is
  //    examples the global model never saw.
  for (std::size_t p = 0; p < records_.size(); ++p) {
    if (!online(p)) ledger_.outage_examples_lost += minibatches_[p];
  }

  if (obs::MetricsRegistry* m = obs::metrics()) {
    for (std::size_t s = 0; s < kMemberStateCount; ++s) {
      m->gauge("splitmed_membership_platforms",
               "Platforms currently in each membership lifecycle state.",
               {{"state",
                 member_state_name(static_cast<MemberState>(s))}})
          .set(static_cast<double>(
              count_in_state(static_cast<MemberState>(s))));
    }
  }
}

bool MembershipService::online(std::size_t p) const {
  return records_[p].offline_until < 0.0;
}

bool MembershipService::can_step(std::size_t p) const {
  const MemberRecord& rec = records_[p];
  if (!online(p) || rec.pending_rejoin) return false;
  return rec.state == MemberState::kJoining ||
         rec.state == MemberState::kActive ||
         rec.state == MemberState::kSuspect;
}

bool MembershipService::needs_rejoin(std::size_t p) const {
  const MemberRecord& rec = records_[p];
  return online(p) && rec.pending_rejoin != 0 &&
         rec.state == MemberState::kRejoining;
}

bool MembershipService::sends_heartbeat(std::size_t p, double now) const {
  const MemberRecord& rec = records_[p];
  if (!online(p) || needs_rejoin(p)) return false;
  return now - rec.last_beat_sent >= config_.heartbeat_interval_sec;
}

void MembershipService::note_heartbeat_sent(std::size_t p, double now) {
  records_[p].last_beat_sent = now;
}

RejoinMode MembershipService::rejoin_mode(std::size_t p) const {
  return static_cast<RejoinMode>(records_[p].rejoin_mode);
}

std::optional<PoisonEvent> MembershipService::active_poison(
    std::size_t p, std::int64_t round) const {
  for (const PoisonEvent& e : plan_.poisons) {
    if (e.platform == p && round >= e.round &&
        round < e.round + e.duration_rounds) {
      return e;
    }
  }
  return std::nullopt;
}

void MembershipService::note_rejoin_completed(std::size_t p, double now) {
  MemberRecord& rec = records_[p];
  if (rec.rejoin_mode == static_cast<std::uint8_t>(RejoinMode::kCold)) {
    ++ledger_.rejoins_cold;
  } else {
    ++ledger_.rejoins_warm;
  }
  rec.pending_rejoin = 0;
  rec.last_heard = now;
  if (rec.state == MemberState::kRejoining) {
    transition(p, MemberState::kActive);
  }
}

void MembershipService::note_deadline_miss(std::size_t p) {
  ++ledger_.deadline_misses;
  if (obs::MetricsRegistry* m = obs::metrics()) {
    m->counter("splitmed_membership_deadline_misses_total",
               "Platform-steps skipped because the round deadline passed "
               "before they could start.")
        .inc();
  }
  (void)p;
}

void MembershipService::note_step_completed(std::size_t p, double now) {
  MemberRecord& rec = records_[p];
  rec.last_heard = now;
  if (rec.probation) {
    ++rec.clean_accepts;
    if (rec.clean_accepts >= config_.probation_clean_steps) {
      rec.probation = 0;
      rec.strikes = 0;
      rec.quarantine_spell = 0;  // served clean — escalation resets
      ++ledger_.probation_clears;
    }
  }
}

bool MembershipService::end_round(std::int64_t round,
                                  std::int64_t steps_completed) {
  const bool voided = steps_completed < config_.min_quorum;
  if (voided) {
    ++ledger_.void_rounds;
    if (obs::MetricsRegistry* m = obs::metrics()) {
      m->counter("splitmed_membership_void_rounds_total",
                 "Rounds closed below min_quorum (loss carried, no update "
                 "fabricated).")
          .inc();
    }
    obs::postmortem("round " + std::to_string(round) +
                    " closed below min_quorum (" +
                    std::to_string(steps_completed) + " of " +
                    std::to_string(config_.min_quorum) +
                    " required steps) — declared void");
  }
  return voided;
}

void MembershipService::observe_contact(std::size_t p, double now) {
  check_platform(p);
  MemberRecord& rec = records_[p];
  rec.last_heard = now;
  if (rec.state == MemberState::kJoining ||
      rec.state == MemberState::kSuspect ||
      rec.state == MemberState::kDead) {
    transition(p, MemberState::kActive);
  }
}

MembershipService::Verdict MembershipService::admit_update(std::size_t p,
                                                           int kind_index,
                                                           const Tensor& t) {
  check_platform(p);
  SPLITMED_CHECK(kind_index == 0 || kind_index == 1,
                 "admit_update: kind_index must be 0 (activation) or 1 "
                 "(logit grad), got "
                     << kind_index);
  const double rms = update_rms_norm(t);

  Verdict verdict = Verdict::kAccept;
  if (!std::isfinite(rms)) {
    verdict = Verdict::kRejectNonFinite;
  } else {
    std::deque<double>& hist = norm_history_[kind_index];
    if (static_cast<std::int64_t>(hist.size()) >= config_.norm_warmup) {
      // Lower median of the accepted history — nth_element on a scratch
      // copy; deterministic, and O(window) is nothing next to a GEMM.
      std::vector<double> scratch(hist.begin(), hist.end());
      const std::size_t mid = (scratch.size() - 1) / 2;
      std::nth_element(scratch.begin(),
                       scratch.begin() + static_cast<std::ptrdiff_t>(mid),
                       scratch.end());
      const double median = scratch[mid];
      if (rms > config_.norm_bomb_factor * std::max(median, 1.0e-12)) {
        verdict = Verdict::kRejectNormBomb;
      }
    }
    if (verdict == Verdict::kAccept) {
      hist.push_back(rms);
      while (static_cast<std::int64_t>(hist.size()) > config_.norm_window) {
        hist.pop_front();
      }
    }
  }

  if (verdict == Verdict::kAccept) return verdict;

  MemberRecord& rec = records_[p];
  ++rec.strikes;
  ++ledger_.strikes;
  if (verdict == Verdict::kRejectNonFinite) {
    ++ledger_.rejected_nonfinite;
  } else {
    ++ledger_.rejected_normbomb;
  }
  if (obs::MetricsRegistry* m = obs::metrics()) {
    m->counter("splitmed_updates_rejected_total",
               "Incoming tensor updates refused by validation.",
               {{"reason", verdict == Verdict::kRejectNonFinite
                               ? "non_finite"
                               : "norm_bomb"}})
        .inc();
  }
  // On probation one strike re-quarantines immediately (with a doubled
  // spell); otherwise strikes accumulate to the configured threshold.
  if (rec.probation ||
      rec.strikes >= static_cast<std::int32_t>(config_.strikes_to_quarantine)) {
    quarantine(p);
  }
  return verdict;
}

bool MembershipService::note_heartbeat(std::size_t p, std::uint64_t beat,
                                       double now) {
  check_platform(p);
  MemberRecord& rec = records_[p];
  if (beat <= rec.last_beat_seen) {
    // Replayed or duplicated beat (WAN duplicate, or hostile replay): count
    // it and ignore it — stale liveness evidence must not renew a lease.
    ++ledger_.heartbeats_stale;
    if (obs::MetricsRegistry* m = obs::metrics()) {
      m->counter("splitmed_membership_heartbeats_total",
                 "Heartbeat control frames by freshness.",
                 {{"freshness", "stale"}})
          .inc();
    }
    return false;
  }
  rec.last_beat_seen = beat;
  ++ledger_.heartbeats_fresh;
  if (obs::MetricsRegistry* m = obs::metrics()) {
    m->counter("splitmed_membership_heartbeats_total",
               "Heartbeat control frames by freshness.",
               {{"freshness", "fresh"}})
        .inc();
  }
  observe_contact(p, now);
  return true;
}

void MembershipService::note_join_request(std::size_t p, RejoinMode mode,
                                          double now) {
  check_platform(p);
  MemberRecord& rec = records_[p];
  if (rec.state == MemberState::kQuarantined) {
    std::ostringstream os;
    os << "join request from quarantined platform " << p
       << " refused — quarantine ends only through probation (until round "
       << rec.quarantined_until_round << ")";
    throw ProtocolError(os.str());
  }
  rec.last_heard = now;
  rec.rejoin_mode = static_cast<std::uint8_t>(mode);
  if (rec.state != MemberState::kActive) {
    transition(p, MemberState::kActive);
  }
}

MemberState MembershipService::state(std::size_t p) const {
  return records_[p].state;
}

int MembershipService::strikes(std::size_t p) const {
  return records_[p].strikes;
}

bool MembershipService::on_probation(std::size_t p) const {
  return records_[p].probation != 0;
}

std::size_t MembershipService::count_in_state(MemberState s) const {
  std::size_t n = 0;
  for (const MemberRecord& rec : records_) {
    if (rec.state == s) ++n;
  }
  return n;
}

void MembershipService::save_state(BufferWriter& w) const {
  w.write_u32(static_cast<std::uint32_t>(records_.size()));
  for (const MemberRecord& rec : records_) {
    w.write_u8(static_cast<std::uint8_t>(rec.state));
    w.write_f64(rec.last_heard);
    w.write_f64(rec.last_beat_sent);
    w.write_f64(rec.offline_until);
    w.write_u8(rec.rejoin_mode);
    w.write_u8(rec.pending_rejoin);
    w.write_i64(rec.strikes);
    w.write_i64(rec.quarantined_until_round);
    w.write_i64(rec.quarantine_spell);
    w.write_u8(rec.probation);
    w.write_i64(rec.clean_accepts);
    w.write_u64(rec.last_beat_seen);
  }
  for (const std::deque<double>& hist : norm_history_) {
    w.write_u32(static_cast<std::uint32_t>(hist.size()));
    for (double v : hist) w.write_f64(v);
  }
  encode_rng(probation_rng_, w);
  w.write_i64(current_round_);
  for (const auto& row : ledger_.transitions) {
    for (std::int64_t v : row) w.write_i64(v);
  }
  w.write_i64(ledger_.strikes);
  w.write_i64(ledger_.quarantines);
  w.write_i64(ledger_.readmissions);
  w.write_i64(ledger_.probation_clears);
  w.write_i64(ledger_.rejected_nonfinite);
  w.write_i64(ledger_.rejected_normbomb);
  w.write_i64(ledger_.rejoins_warm);
  w.write_i64(ledger_.rejoins_cold);
  w.write_i64(ledger_.heartbeats_fresh);
  w.write_i64(ledger_.heartbeats_stale);
  w.write_i64(ledger_.deadline_misses);
  w.write_i64(ledger_.void_rounds);
  w.write_i64(ledger_.crashes);
  w.write_i64(ledger_.outage_examples_lost);
}

void MembershipService::load_state(BufferReader& r) {
  const std::uint32_t n = r.read_u32();
  if (n != records_.size()) {
    std::ostringstream os;
    os << "membership state: checkpoint roster has " << n
       << " platform(s), this session has " << records_.size();
    throw SerializationError(os.str());
  }
  for (MemberRecord& rec : records_) {
    const std::uint8_t state = r.read_u8();
    require_state_byte(state, "membership state");
    rec.state = static_cast<MemberState>(state);
    rec.last_heard = r.read_f64();
    rec.last_beat_sent = r.read_f64();
    rec.offline_until = r.read_f64();
    rec.rejoin_mode = r.read_u8();
    require_mode_byte(rec.rejoin_mode, "membership state");
    rec.pending_rejoin = r.read_u8();
    if (rec.pending_rejoin > 1) {
      throw SerializationError(
          "membership state: pending_rejoin flag must be 0 or 1");
    }
    const std::int64_t strikes = r.read_i64();
    if (strikes < 0 ||
        strikes > std::numeric_limits<std::int32_t>::max()) {
      // Validate BEFORE the i32 narrowing: a sign-bit-corrupted i64 (e.g.
      // 2^63) would otherwise truncate to a harmless-looking value.
      throw SerializationError(
          "membership state: strike counter out of range");
    }
    rec.strikes = static_cast<std::int32_t>(strikes);
    rec.quarantined_until_round = r.read_i64();
    rec.quarantine_spell = r.read_i64();
    rec.probation = r.read_u8();
    if (rec.probation > 1) {
      throw SerializationError(
          "membership state: probation flag must be 0 or 1");
    }
    rec.clean_accepts = r.read_i64();
    if (rec.clean_accepts < 0 || rec.quarantine_spell < 0) {
      throw SerializationError(
          "membership state: negative counter in member record");
    }
    rec.last_beat_seen = r.read_u64();
  }
  for (std::deque<double>& hist : norm_history_) {
    const std::uint32_t len = r.read_u32();
    hist.clear();
    for (std::uint32_t i = 0; i < len; ++i) hist.push_back(r.read_f64());
  }
  decode_rng(r, probation_rng_);
  current_round_ = r.read_i64();
  for (auto& row : ledger_.transitions) {
    for (std::int64_t& v : row) v = r.read_i64();
  }
  ledger_.strikes = r.read_i64();
  ledger_.quarantines = r.read_i64();
  ledger_.readmissions = r.read_i64();
  ledger_.probation_clears = r.read_i64();
  ledger_.rejected_nonfinite = r.read_i64();
  ledger_.rejected_normbomb = r.read_i64();
  ledger_.rejoins_warm = r.read_i64();
  ledger_.rejoins_cold = r.read_i64();
  ledger_.heartbeats_fresh = r.read_i64();
  ledger_.heartbeats_stale = r.read_i64();
  ledger_.deadline_misses = r.read_i64();
  ledger_.void_rounds = r.read_i64();
  ledger_.crashes = r.read_i64();
  ledger_.outage_examples_lost = r.read_i64();
}

}  // namespace splitmed::core
