// Minibatch-size policies — the paper's data-imbalance mitigation (§II):
// "the minibatch size in each platform can be adjusted as the proportion of
// the amount of local data in each platform."
#pragma once

#include <cstdint>
#include <vector>

namespace splitmed::core {

enum class MinibatchPolicy {
  /// s_k = total/K regardless of shard sizes (the ablation control).
  kUniform,
  /// s_k ∝ |D_k| (the paper's mitigation) — every example then has the same
  /// expected sampling rate, and all platforms finish an epoch together.
  kProportional,
};

/// Computes per-platform minibatch sizes summing exactly to `total_batch`
/// with a floor of one example per platform.
/// Requires total_batch >= #platforms and every shard non-empty.
std::vector<std::int64_t> minibatch_sizes(
    MinibatchPolicy policy, std::int64_t total_batch,
    const std::vector<std::int64_t>& shard_sizes);

const char* minibatch_policy_name(MinibatchPolicy policy);

}  // namespace splitmed::core
