// EventScheduler — the event-driven round engine.
//
// The paper's workflow serves platforms strictly one after another; the
// overlapped and bounded-staleness schedules instead keep many platform
// protocol steps in flight at once. This class drives those steps as
// per-platform state machines off the network's global arrival index
// (Network::next_event()): each pump delivers exactly the globally earliest
// in-flight frame to its destination node, so every delivery is O(log n) and
// a round costs O(active events), not O(platforms) per tick.
//
// Determinism: the only ordering source is the network's (arrival time, send
// sequence) total order, which is itself a pure function of the
// configuration. Two runs of the same config execute the identical event
// sequence; thread count, observability, and ISA never enter the ordering.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "src/core/platform.hpp"
#include "src/core/server.hpp"
#include "src/net/network.hpp"

namespace splitmed::core {

class EventScheduler {
 public:
  /// Holds references only — the trainer owns the nodes. `platforms` must be
  /// fully populated before construction.
  EventScheduler(net::Network& network, CentralServer& server,
                 const std::vector<std::unique_ptr<PlatformNode>>& platforms);

  /// Starts a protocol step for an idle platform: ships its activation and
  /// tracks the step as in flight, tagged with the round it started in.
  void begin_step(std::size_t platform, std::uint64_t step_id,
                  std::int64_t round);

  /// True while the platform's step is in flight (a straggler at a round
  /// boundary under bounded staleness).
  [[nodiscard]] bool busy(std::size_t platform) const {
    return in_flight_[platform].has_value();
  }
  [[nodiscard]] std::size_t steps_in_flight() const {
    return steps_in_flight_;
  }
  /// True when some in-flight step started at or before `round` — the
  /// staleness-horizon predicate.
  [[nodiscard]] bool has_step_at_or_before(std::int64_t round) const {
    return !inflight_by_round_.empty() &&
           inflight_by_round_.begin()->first <= round;
  }

  /// Delivers the globally earliest in-flight frame and dispatches it to its
  /// node's state machine. Returns the platform index when that delivery
  /// completed the platform's step, nullopt otherwise. Requires a frame in
  /// flight (an in-flight step always has exactly one frame moving or a
  /// queued activation behind a moving frame, so a pump can never starve
  /// while steps_in_flight() > 0).
  std::optional<std::size_t> pump_one();

  /// Pumps until every step with start_round <= `horizon` has completed AND
  /// at least one step completed during this call (liveness: every round
  /// folds in work, however stale) — or nothing is left in flight.
  /// Completed platform indices are appended to `completed` in completion
  /// order. With horizon >= the newest start round this is a full drain
  /// barrier (the overlapped schedule, checkpoint boundaries, the final
  /// round).
  void drain(std::int64_t horizon, std::vector<std::size_t>& completed);

  /// Routes an already-received envelope to its destination state machine
  /// (server or platform). Used by the reliable sequential path, which
  /// shares the global event ordering but manages its own timeout windows
  /// and does not track steps here.
  void dispatch(const Envelope& envelope);

 private:
  struct InFlightStep {
    std::uint64_t step_id = 0;
    std::int64_t start_round = 0;
  };

  /// Publishes the current in-flight frame count to the pre-registered
  /// splitmed_event_queue_depth gauge. One atomic load when observability is
  /// off; called after every delivery so the gauge tracks the scheduler's
  /// actual pump cadence, not just round boundaries.
  void sample_queue_depth() const;

  net::Network& network_;
  CentralServer& server_;
  const std::vector<std::unique_ptr<PlatformNode>>& platforms_;
  /// Dense node id -> platform index (kNoPlatform for the server).
  std::vector<std::size_t> node_to_platform_;
  std::vector<std::optional<InFlightStep>> in_flight_;
  /// start_round -> number of in-flight steps begun that round; the head is
  /// the oldest outstanding round, so the staleness predicate is O(1).
  std::map<std::int64_t, std::size_t> inflight_by_round_;
  std::size_t steps_in_flight_ = 0;
};

}  // namespace splitmed::core
