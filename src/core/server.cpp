#include "src/core/server.hpp"

#include "src/common/error.hpp"
#include "src/nn/checkpoint.hpp"
#include "src/obs/obs.hpp"
#include "src/serial/state_codec.hpp"

namespace splitmed::core {

CentralServer::CentralServer(NodeId id, nn::Sequential body,
                             const optim::SgdOptions& opt,
                             ServerOptions options)
    : id_(id),
      body_(std::move(body)),
      opt_(body_.parameters(), opt),
      options_(options) {}

void CentralServer::expect_round(std::uint64_t round) { min_round_ = round; }

void CentralServer::abort_pending(NodeId platform) {
  if (awaiting_grad_ && pending_platform_ == platform) {
    awaiting_grad_ = false;
  }
}

void CentralServer::process_activation(net::Network& network,
                                       const Envelope& envelope) {
  obs::Span span(obs::trace(), "server.forward", "core");
  span.arg("platform", static_cast<std::uint64_t>(envelope.src));
  span.arg("round", envelope.round);
  const Tensor activation =
      decode_tensor_payload(envelope.payload, options_.codec);
  const Tensor logits = body_.forward(activation, /*training=*/true);
  pending_platform_ = envelope.src;
  pending_round_ = envelope.round;
  awaiting_grad_ = true;
  Envelope reply = make_tensor_envelope(id_, envelope.src, MsgKind::kLogits,
                                        envelope.round, logits);
  if (options_.tolerate_faults) {
    reply_cache_[envelope.src] =
        CachedReply{envelope.kind, envelope.round, reply};
    last_request_round_[envelope.src] = envelope.round;
  }
  network.send(std::move(reply));
}

bool CentralServer::absorb_faulty(net::Network& network,
                                  const Envelope& envelope) {
  // A duplicate of a request already answered: re-send the cached reply
  // instead of re-training on it (idempotence).
  const auto cached = reply_cache_.find(envelope.src);
  if (cached != reply_cache_.end() &&
      cached->second.request_kind == envelope.kind &&
      cached->second.request_round == envelope.round) {
    if (obs::TraceRecorder* tr = obs::trace()) {
      tr->instant("server.replay", "fault",
                  {obs::arg("platform",
                            static_cast<std::uint64_t>(envelope.src)),
                   obs::arg("round", envelope.round)});
    }
    if (obs::FlightRecorder* fr = obs::flight()) {
      fr->note(-1.0, "server replayed cached reply to platform " +
                         std::to_string(envelope.src) +
                         " round=" + std::to_string(envelope.round));
    }
    Envelope again = cached->second.reply;
    again.retransmit = true;
    network.send(std::move(again));
    ++replays_;
    return true;
  }
  // Frames the strict state machine would accept are not ours to absorb.
  const auto kind = static_cast<MsgKind>(envelope.kind);
  if (kind == MsgKind::kLogitGrad && awaiting_grad_ &&
      envelope.src == pending_platform_ && envelope.round == pending_round_) {
    return false;
  }
  if (kind == MsgKind::kActivation && !awaiting_grad_ &&
      envelope.round >= min_round_) {
    const auto last = last_request_round_.find(envelope.src);
    if (last == last_request_round_.end() || envelope.round > last->second) {
      return false;
    }
  }
  // Anything else is WAN debris: a reply to an abandoned round, a duplicate
  // whose cache slot was already superseded, a frame from before the
  // current expect_round() horizon.
  ++stale_ignored_;
  return true;
}

void CentralServer::handle(net::Network& network, const Envelope& envelope) {
  if (envelope.dst != id_) {
    const std::string reason = "server got a message addressed to node " +
                               std::to_string(envelope.dst);
    obs::postmortem(reason);
    throw ProtocolError(reason);
  }
  if (options_.tolerate_faults && absorb_faulty(network, envelope)) return;
  switch (static_cast<MsgKind>(envelope.kind)) {
    case MsgKind::kActivation: {
      if (awaiting_grad_) {
        if (!options_.allow_queueing) {
          const std::string reason =
              "server: new activation before the previous backward finished";
          obs::postmortem(reason);
          throw ProtocolError(reason);
        }
        queued_activations_.push_back(envelope);
        return;
      }
      process_activation(network, envelope);
      return;
    }
    case MsgKind::kLogitGrad: {
      if (!awaiting_grad_ || envelope.src != pending_platform_ ||
          envelope.round != pending_round_) {
        const std::string reason =
            "server: logit grad does not match the pending forward "
            "(platform/round mismatch)";
        obs::postmortem(reason);
        throw ProtocolError(reason);
      }
      obs::Span span(obs::trace(), "server.backward", "core");
      span.arg("platform", static_cast<std::uint64_t>(envelope.src));
      span.arg("round", envelope.round);
      const Tensor logit_grad = decode_tensor_payload(envelope.payload);
      body_.zero_grad();
      const Tensor cut_grad = body_.backward(logit_grad);
      opt_.step();
      ++steps_completed_;
      awaiting_grad_ = false;
      Envelope reply =
          make_tensor_envelope(id_, envelope.src, MsgKind::kCutGrad,
                               envelope.round, cut_grad, options_.codec);
      if (options_.tolerate_faults) {
        reply_cache_[envelope.src] =
            CachedReply{envelope.kind, envelope.round, reply};
        last_request_round_[envelope.src] = envelope.round;
      }
      network.send(std::move(reply));
      if (!queued_activations_.empty()) {
        const Envelope next = std::move(queued_activations_.front());
        queued_activations_.pop_front();
        process_activation(network, next);
      }
      return;
    }
    default: {
      const std::string reason =
          std::string("server: unexpected message kind '") +
          msg_kind_name(static_cast<MsgKind>(envelope.kind)) + "'";
      obs::postmortem(reason);
      throw ProtocolError(reason);
    }
  }
}

void CentralServer::save_state(BufferWriter& writer) {
  SPLITMED_CHECK(!awaiting_grad_ && queued_activations_.empty(),
                 "server: checkpoint requires no forward in flight "
                 "(round boundary)");
  write_parameters(writer, body_.parameters());
  body_.save_extra_state(writer);
  opt_.save_state(writer);
  writer.write_u64(min_round_);
  writer.write_i64(steps_completed_);
  writer.write_i64(replays_);
  writer.write_i64(stale_ignored_);
  writer.write_u32(static_cast<std::uint32_t>(last_request_round_.size()));
  for (const auto& [platform, round] : last_request_round_) {
    writer.write_u32(platform);
    writer.write_u64(round);
  }
  // The reply cache answers duplicates of already-processed requests. Under
  // fault injection such duplicates can still be in flight at a round
  // boundary (they ride along in the Network checkpoint), so the cache must
  // survive resume or the replayed duplicate would be treated as new work.
  writer.write_u32(static_cast<std::uint32_t>(reply_cache_.size()));
  for (const auto& [platform, cached] : reply_cache_) {
    writer.write_u32(platform);
    writer.write_u32(cached.request_kind);
    writer.write_u64(cached.request_round);
    encode_envelope(cached.reply, writer);
  }
}

void CentralServer::load_state(BufferReader& reader) {
  SPLITMED_CHECK(!awaiting_grad_ && queued_activations_.empty(),
                 "server: load_state while a forward is in flight");
  read_parameters(reader, body_.parameters(), "server body");
  body_.load_extra_state(reader);
  opt_.load_state(reader);
  min_round_ = reader.read_u64();
  steps_completed_ = reader.read_i64();
  replays_ = reader.read_i64();
  stale_ignored_ = reader.read_i64();
  if (steps_completed_ < 0 || replays_ < 0 || stale_ignored_ < 0) {
    throw SerializationError("server: negative counter in checkpoint");
  }
  const std::uint32_t n_rounds = reader.read_u32();
  std::map<NodeId, std::uint64_t> last_rounds;
  for (std::uint32_t i = 0; i < n_rounds; ++i) {
    const NodeId platform = reader.read_u32();
    last_rounds[platform] = reader.read_u64();
  }
  const std::uint32_t n_cached = reader.read_u32();
  std::map<NodeId, CachedReply> cache;
  for (std::uint32_t i = 0; i < n_cached; ++i) {
    const NodeId platform = reader.read_u32();
    CachedReply cached;
    cached.request_kind = reader.read_u32();
    cached.request_round = reader.read_u64();
    cached.reply = decode_envelope(reader);
    cache[platform] = std::move(cached);
  }
  last_request_round_ = std::move(last_rounds);
  reply_cache_ = std::move(cache);
}

}  // namespace splitmed::core
