#include "src/core/server.hpp"

#include "src/common/error.hpp"

namespace splitmed::core {

CentralServer::CentralServer(NodeId id, nn::Sequential body,
                             const optim::SgdOptions& opt,
                             ServerOptions options)
    : id_(id),
      body_(std::move(body)),
      opt_(body_.parameters(), opt),
      options_(options) {}

void CentralServer::process_activation(net::Network& network,
                                       const Envelope& envelope) {
  const Tensor activation =
      decode_tensor_payload(envelope.payload, options_.wire_dtype);
  const Tensor logits = body_.forward(activation, /*training=*/true);
  pending_platform_ = envelope.src;
  pending_round_ = envelope.round;
  awaiting_grad_ = true;
  network.send(make_tensor_envelope(id_, envelope.src, MsgKind::kLogits,
                                    envelope.round, logits));
}

void CentralServer::handle(net::Network& network, const Envelope& envelope) {
  if (envelope.dst != id_) {
    throw ProtocolError("server got a message addressed to node " +
                        std::to_string(envelope.dst));
  }
  switch (static_cast<MsgKind>(envelope.kind)) {
    case MsgKind::kActivation: {
      if (awaiting_grad_) {
        if (!options_.allow_queueing) {
          throw ProtocolError(
              "server: new activation before the previous backward finished");
        }
        queued_activations_.push_back(envelope);
        return;
      }
      process_activation(network, envelope);
      return;
    }
    case MsgKind::kLogitGrad: {
      if (!awaiting_grad_ || envelope.src != pending_platform_ ||
          envelope.round != pending_round_) {
        throw ProtocolError("server: logit grad does not match the pending "
                            "forward (platform/round mismatch)");
      }
      const Tensor logit_grad = decode_tensor_payload(envelope.payload);
      body_.zero_grad();
      const Tensor cut_grad = body_.backward(logit_grad);
      opt_.step();
      ++steps_completed_;
      awaiting_grad_ = false;
      network.send(make_tensor_envelope(id_, envelope.src, MsgKind::kCutGrad,
                                        envelope.round, cut_grad,
                                        options_.wire_dtype));
      if (!queued_activations_.empty()) {
        const Envelope next = std::move(queued_activations_.front());
        queued_activations_.pop_front();
        process_activation(network, next);
      }
      return;
    }
    default:
      throw ProtocolError(std::string("server: unexpected message kind '") +
                          msg_kind_name(static_cast<MsgKind>(envelope.kind)) +
                          "'");
  }
}

}  // namespace splitmed::core
