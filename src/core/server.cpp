#include "src/core/server.hpp"

#include "src/common/error.hpp"

namespace splitmed::core {

CentralServer::CentralServer(NodeId id, nn::Sequential body,
                             const optim::SgdOptions& opt,
                             ServerOptions options)
    : id_(id),
      body_(std::move(body)),
      opt_(body_.parameters(), opt),
      options_(options) {}

void CentralServer::expect_round(std::uint64_t round) { min_round_ = round; }

void CentralServer::abort_pending(NodeId platform) {
  if (awaiting_grad_ && pending_platform_ == platform) {
    awaiting_grad_ = false;
  }
}

void CentralServer::process_activation(net::Network& network,
                                       const Envelope& envelope) {
  const Tensor activation =
      decode_tensor_payload(envelope.payload, options_.wire_dtype);
  const Tensor logits = body_.forward(activation, /*training=*/true);
  pending_platform_ = envelope.src;
  pending_round_ = envelope.round;
  awaiting_grad_ = true;
  Envelope reply = make_tensor_envelope(id_, envelope.src, MsgKind::kLogits,
                                        envelope.round, logits);
  if (options_.tolerate_faults) {
    reply_cache_[envelope.src] =
        CachedReply{envelope.kind, envelope.round, reply};
    last_request_round_[envelope.src] = envelope.round;
  }
  network.send(std::move(reply));
}

bool CentralServer::absorb_faulty(net::Network& network,
                                  const Envelope& envelope) {
  // A duplicate of a request already answered: re-send the cached reply
  // instead of re-training on it (idempotence).
  const auto cached = reply_cache_.find(envelope.src);
  if (cached != reply_cache_.end() &&
      cached->second.request_kind == envelope.kind &&
      cached->second.request_round == envelope.round) {
    Envelope again = cached->second.reply;
    again.retransmit = true;
    network.send(std::move(again));
    ++replays_;
    return true;
  }
  // Frames the strict state machine would accept are not ours to absorb.
  const auto kind = static_cast<MsgKind>(envelope.kind);
  if (kind == MsgKind::kLogitGrad && awaiting_grad_ &&
      envelope.src == pending_platform_ && envelope.round == pending_round_) {
    return false;
  }
  if (kind == MsgKind::kActivation && !awaiting_grad_ &&
      envelope.round >= min_round_) {
    const auto last = last_request_round_.find(envelope.src);
    if (last == last_request_round_.end() || envelope.round > last->second) {
      return false;
    }
  }
  // Anything else is WAN debris: a reply to an abandoned round, a duplicate
  // whose cache slot was already superseded, a frame from before the
  // current expect_round() horizon.
  ++stale_ignored_;
  return true;
}

void CentralServer::handle(net::Network& network, const Envelope& envelope) {
  if (envelope.dst != id_) {
    throw ProtocolError("server got a message addressed to node " +
                        std::to_string(envelope.dst));
  }
  if (options_.tolerate_faults && absorb_faulty(network, envelope)) return;
  switch (static_cast<MsgKind>(envelope.kind)) {
    case MsgKind::kActivation: {
      if (awaiting_grad_) {
        if (!options_.allow_queueing) {
          throw ProtocolError(
              "server: new activation before the previous backward finished");
        }
        queued_activations_.push_back(envelope);
        return;
      }
      process_activation(network, envelope);
      return;
    }
    case MsgKind::kLogitGrad: {
      if (!awaiting_grad_ || envelope.src != pending_platform_ ||
          envelope.round != pending_round_) {
        throw ProtocolError("server: logit grad does not match the pending "
                            "forward (platform/round mismatch)");
      }
      const Tensor logit_grad = decode_tensor_payload(envelope.payload);
      body_.zero_grad();
      const Tensor cut_grad = body_.backward(logit_grad);
      opt_.step();
      ++steps_completed_;
      awaiting_grad_ = false;
      Envelope reply =
          make_tensor_envelope(id_, envelope.src, MsgKind::kCutGrad,
                               envelope.round, cut_grad, options_.wire_dtype);
      if (options_.tolerate_faults) {
        reply_cache_[envelope.src] =
            CachedReply{envelope.kind, envelope.round, reply};
        last_request_round_[envelope.src] = envelope.round;
      }
      network.send(std::move(reply));
      if (!queued_activations_.empty()) {
        const Envelope next = std::move(queued_activations_.front());
        queued_activations_.pop_front();
        process_activation(network, next);
      }
      return;
    }
    default:
      throw ProtocolError(std::string("server: unexpected message kind '") +
                          msg_kind_name(static_cast<MsgKind>(envelope.kind)) +
                          "'");
  }
}

}  // namespace splitmed::core
