#include "src/core/server.hpp"

#include "src/common/error.hpp"
#include "src/nn/checkpoint.hpp"
#include "src/obs/obs.hpp"
#include "src/serial/state_codec.hpp"

namespace splitmed::core {

CentralServer::CentralServer(NodeId id, nn::Sequential body,
                             const optim::SgdOptions& opt,
                             ServerOptions options)
    : id_(id),
      body_(std::move(body)),
      opt_(body_.parameters(), opt),
      options_(options) {}

void CentralServer::expect_round(std::uint64_t round) { min_round_ = round; }

void CentralServer::set_membership(MembershipService* service,
                                   std::vector<NodeId> platform_nodes) {
  SPLITMED_CHECK(service != nullptr, "set_membership: null service");
  SPLITMED_CHECK(platform_nodes.size() == service->num_platforms(),
                 "set_membership: roster has " << platform_nodes.size()
                     << " node(s), service tracks "
                     << service->num_platforms());
  membership_ = service;
  node_to_index_.clear();
  for (std::size_t i = 0; i < platform_nodes.size(); ++i) {
    node_to_index_[platform_nodes[i]] = i;
  }
}

void CentralServer::set_genesis_l1(Tensor flat) {
  genesis_l1_ = std::move(flat);
  has_genesis_ = true;
}

std::size_t CentralServer::member_index(NodeId src) const {
  const auto it = node_to_index_.find(src);
  if (it == node_to_index_.end()) {
    const std::string reason = "server: membership frame from node " +
                               std::to_string(src) +
                               ", which is not on the roster";
    obs::postmortem(reason);
    throw ProtocolError(reason);
  }
  return it->second;
}

void CentralServer::send_reject(net::Network& network, const Envelope& request,
                                MembershipService::Verdict verdict) {
  const std::size_t p = member_index(request.src);
  UpdateRejectMsg msg;
  msg.reason = verdict == MembershipService::Verdict::kRejectNonFinite
                   ? RejectReason::kNonFinite
                   : RejectReason::kNormBomb;
  msg.strikes = static_cast<std::uint32_t>(membership_->strikes(p));
  msg.state = membership_->state(p);
  Envelope reply = make_envelope(
      id_, request.src, static_cast<std::uint32_t>(MsgKind::kUpdateReject),
      request.round, encode_update_reject_payload(msg));
  reply.trace.platform = request.src;
  reply.trace.step = request.round;
  reply.trace.parent_flow = request.trace.flow_id;
  if (options_.tolerate_faults) {
    reply_cache_[request.src] = CachedReply{request.kind, request.round, reply};
    last_request_round_[request.src] = request.round;
  }
  network.send(std::move(reply));
}

void CentralServer::abort_pending(NodeId platform) {
  if (awaiting_grad_ && pending_platform_ == platform) {
    awaiting_grad_ = false;
  }
}

void CentralServer::process_activation(net::Network& network,
                                       const Envelope& envelope,
                                       Tensor* decoded) {
  obs::Span span(obs::trace(), "server.forward", "core");
  span.arg("platform", static_cast<std::uint64_t>(envelope.src));
  span.arg("round", envelope.round);
  const Tensor activation =
      decoded ? std::move(*decoded)
              : decode_tensor_payload(envelope.payload, options_.codec);
  const Tensor logits = body_.forward(activation, /*training=*/true);
  pending_platform_ = envelope.src;
  pending_round_ = envelope.round;
  awaiting_grad_ = true;
  Envelope reply = make_tensor_envelope(id_, envelope.src, MsgKind::kLogits,
                                        envelope.round, logits);
  reply.trace.platform = envelope.src;
  reply.trace.step = envelope.round;
  reply.trace.parent_flow = envelope.trace.flow_id;
  if (options_.tolerate_faults) {
    reply_cache_[envelope.src] =
        CachedReply{envelope.kind, envelope.round, reply};
    last_request_round_[envelope.src] = envelope.round;
  }
  network.send(std::move(reply));
}

bool CentralServer::absorb_faulty(net::Network& network,
                                  const Envelope& envelope) {
  // A duplicate of a request already answered: re-send the cached reply
  // instead of re-training on it (idempotence).
  const auto cached = reply_cache_.find(envelope.src);
  if (cached != reply_cache_.end() &&
      cached->second.request_kind == envelope.kind &&
      cached->second.request_round == envelope.round) {
    if (obs::TraceRecorder* tr = obs::trace()) {
      tr->instant("server.replay", "fault",
                  {obs::arg("platform",
                            static_cast<std::uint64_t>(envelope.src)),
                   obs::arg("round", envelope.round)});
    }
    if (obs::FlightRecorder* fr = obs::flight()) {
      fr->note(-1.0, "server replayed cached reply to platform " +
                         std::to_string(envelope.src) +
                         " round=" + std::to_string(envelope.round));
    }
    Envelope again = cached->second.reply;
    again.retransmit = true;
    again.trace.attempt = ++cached->second.reply.trace.attempt;
    network.send(std::move(again));
    ++replays_;
    return true;
  }
  // Frames the strict state machine would accept are not ours to absorb.
  const auto kind = static_cast<MsgKind>(envelope.kind);
  if (kind == MsgKind::kLogitGrad && awaiting_grad_ &&
      envelope.src == pending_platform_ && envelope.round == pending_round_) {
    return false;
  }
  if (kind == MsgKind::kActivation && !awaiting_grad_ &&
      envelope.round >= min_round_) {
    const auto last = last_request_round_.find(envelope.src);
    if (last == last_request_round_.end() || envelope.round > last->second) {
      return false;
    }
  }
  // Membership control frames are idempotent in the main switch (stale
  // heartbeats are counted there; a repeated join request is re-accepted) —
  // never absorb them as debris.
  if (kind == MsgKind::kHeartbeat || kind == MsgKind::kJoinRequest) {
    return false;
  }
  // Anything else is WAN debris: a reply to an abandoned round, a duplicate
  // whose cache slot was already superseded, a frame from before the
  // current expect_round() horizon.
  ++stale_ignored_;
  return true;
}

void CentralServer::handle(net::Network& network, const Envelope& envelope) {
  if (envelope.dst != id_) {
    const std::string reason = "server got a message addressed to node " +
                               std::to_string(envelope.dst);
    obs::postmortem(reason);
    throw ProtocolError(reason);
  }
  if (options_.tolerate_faults && absorb_faulty(network, envelope)) return;
  switch (static_cast<MsgKind>(envelope.kind)) {
    case MsgKind::kActivation: {
      if (awaiting_grad_) {
        if (!options_.allow_queueing) {
          const std::string reason =
              "server: new activation before the previous backward finished";
          obs::postmortem(reason);
          throw ProtocolError(reason);
        }
        queued_activations_.push_back(envelope);
        return;
      }
      if (membership_ != nullptr) {
        // Admission control: decode once, police the payload, and only then
        // let it anywhere near the model. A refused update answers with
        // kUpdateReject — the platform aborts its step, nothing trains.
        const std::size_t p = member_index(envelope.src);
        Tensor activation =
            decode_tensor_payload(envelope.payload, options_.codec);
        membership_->observe_contact(p, network.clock().now());
        const auto verdict = membership_->admit_update(p, 0, activation);
        if (verdict != MembershipService::Verdict::kAccept) {
          send_reject(network, envelope, verdict);
          return;
        }
        process_activation(network, envelope, &activation);
        return;
      }
      process_activation(network, envelope);
      return;
    }
    case MsgKind::kLogitGrad: {
      if (!awaiting_grad_ || envelope.src != pending_platform_ ||
          envelope.round != pending_round_) {
        const std::string reason =
            "server: logit grad does not match the pending forward "
            "(platform/round mismatch)";
        obs::postmortem(reason);
        throw ProtocolError(reason);
      }
      const Tensor logit_grad = decode_tensor_payload(envelope.payload);
      if (membership_ != nullptr) {
        const std::size_t p = member_index(envelope.src);
        membership_->observe_contact(p, network.clock().now());
        const auto verdict = membership_->admit_update(p, 1, logit_grad);
        if (verdict != MembershipService::Verdict::kAccept) {
          // The pending forward's activations came from this same poisoned
          // step — discard them along with the gradient.
          awaiting_grad_ = false;
          send_reject(network, envelope, verdict);
          return;
        }
      }
      obs::Span span(obs::trace(), "server.backward", "core");
      span.arg("platform", static_cast<std::uint64_t>(envelope.src));
      span.arg("round", envelope.round);
      body_.zero_grad();
      const Tensor cut_grad = body_.backward(logit_grad);
      opt_.step();
      ++steps_completed_;
      awaiting_grad_ = false;
      Envelope reply =
          make_tensor_envelope(id_, envelope.src, MsgKind::kCutGrad,
                               envelope.round, cut_grad, options_.codec);
      reply.trace.platform = envelope.src;
      reply.trace.step = envelope.round;
      reply.trace.parent_flow = envelope.trace.flow_id;
      if (options_.tolerate_faults) {
        reply_cache_[envelope.src] =
            CachedReply{envelope.kind, envelope.round, reply};
        last_request_round_[envelope.src] = envelope.round;
      }
      network.send(std::move(reply));
      if (!queued_activations_.empty()) {
        const Envelope next = std::move(queued_activations_.front());
        queued_activations_.pop_front();
        process_activation(network, next);
      }
      return;
    }
    case MsgKind::kHeartbeat: {
      if (membership_ == nullptr) {
        const std::string reason =
            "server: heartbeat received but membership is not enabled";
        obs::postmortem(reason);
        throw ProtocolError(reason);
      }
      // Decode and validate fully before any membership state moves.
      const HeartbeatMsg msg = decode_heartbeat_payload(envelope.payload);
      const std::size_t p = member_index(envelope.src);
      if (msg.platform != p) {
        const std::string reason =
            "server: heartbeat from node " + std::to_string(envelope.src) +
            " claims platform index " + std::to_string(msg.platform) +
            " but the roster maps it to " + std::to_string(p);
        obs::postmortem(reason);
        throw ProtocolError(reason);
      }
      membership_->note_heartbeat(p, msg.beat, network.clock().now());
      return;
    }
    case MsgKind::kJoinRequest: {
      if (membership_ == nullptr) {
        const std::string reason =
            "server: join request received but membership is not enabled";
        obs::postmortem(reason);
        throw ProtocolError(reason);
      }
      const JoinRequestMsg msg = decode_join_request_payload(envelope.payload);
      const std::size_t p = member_index(envelope.src);
      if (msg.platform != p) {
        const std::string reason =
            "server: join request from node " + std::to_string(envelope.src) +
            " claims platform index " + std::to_string(msg.platform) +
            " but the roster maps it to " + std::to_string(p);
        obs::postmortem(reason);
        throw ProtocolError(reason);
      }
      // Throws ProtocolError (quarantine bypass attempt) before anything
      // below runs; re-requests from an already-ACTIVE platform are
      // idempotently re-accepted (retransmitted joins under WAN faults).
      membership_->note_join_request(p, msg.mode, network.clock().now());
      JoinAcceptMsg accept;
      accept.current_round =
          static_cast<std::uint64_t>(membership_->current_round());
      accept.has_l1 = msg.mode == RejoinMode::kCold;
      if (accept.has_l1) {
        SPLITMED_CHECK(has_genesis_,
                       "server: cold rejoin needs a genesis L1 snapshot "
                       "(set_genesis_l1 was never called)");
        accept.l1 = genesis_l1_;
      }
      Envelope reply = make_envelope(
          id_, envelope.src, static_cast<std::uint32_t>(MsgKind::kJoinAccept),
          envelope.round, encode_join_accept_payload(accept));
      reply.trace.platform = envelope.src;
      reply.trace.step = envelope.round;
      reply.trace.parent_flow = envelope.trace.flow_id;
      if (options_.tolerate_faults) {
        // Cache for duplicate-join replay, but do NOT advance the
        // last-request horizon: join envelopes are stamped with the ROUND
        // number while protocol steps are stamped with step ids, and mixing
        // the namespaces could absorb a legitimate later activation.
        reply_cache_[envelope.src] =
            CachedReply{envelope.kind, envelope.round, reply};
      }
      network.send(std::move(reply));
      return;
    }
    default: {
      const std::string reason =
          std::string("server: unexpected message kind '") +
          msg_kind_name(static_cast<MsgKind>(envelope.kind)) + "'";
      obs::postmortem(reason);
      throw ProtocolError(reason);
    }
  }
}

void CentralServer::save_state(BufferWriter& writer) {
  SPLITMED_CHECK(!awaiting_grad_ && queued_activations_.empty(),
                 "server: checkpoint requires no forward in flight "
                 "(round boundary)");
  write_parameters(writer, body_.parameters());
  body_.save_extra_state(writer);
  opt_.save_state(writer);
  writer.write_u64(min_round_);
  writer.write_i64(steps_completed_);
  writer.write_i64(replays_);
  writer.write_i64(stale_ignored_);
  writer.write_u32(static_cast<std::uint32_t>(last_request_round_.size()));
  for (const auto& [platform, round] : last_request_round_) {
    writer.write_u32(platform);
    writer.write_u64(round);
  }
  // The reply cache answers duplicates of already-processed requests. Under
  // fault injection such duplicates can still be in flight at a round
  // boundary (they ride along in the Network checkpoint), so the cache must
  // survive resume or the replayed duplicate would be treated as new work.
  writer.write_u32(static_cast<std::uint32_t>(reply_cache_.size()));
  for (const auto& [platform, cached] : reply_cache_) {
    writer.write_u32(platform);
    writer.write_u32(cached.request_kind);
    writer.write_u64(cached.request_round);
    encode_envelope(cached.reply, writer);
  }
}

void CentralServer::load_state(BufferReader& reader) {
  SPLITMED_CHECK(!awaiting_grad_ && queued_activations_.empty(),
                 "server: load_state while a forward is in flight");
  read_parameters(reader, body_.parameters(), "server body");
  body_.load_extra_state(reader);
  opt_.load_state(reader);
  min_round_ = reader.read_u64();
  steps_completed_ = reader.read_i64();
  replays_ = reader.read_i64();
  stale_ignored_ = reader.read_i64();
  if (steps_completed_ < 0 || replays_ < 0 || stale_ignored_ < 0) {
    throw SerializationError("server: negative counter in checkpoint");
  }
  const std::uint32_t n_rounds = reader.read_u32();
  std::map<NodeId, std::uint64_t> last_rounds;
  for (std::uint32_t i = 0; i < n_rounds; ++i) {
    const NodeId platform = reader.read_u32();
    last_rounds[platform] = reader.read_u64();
  }
  const std::uint32_t n_cached = reader.read_u32();
  std::map<NodeId, CachedReply> cache;
  for (std::uint32_t i = 0; i < n_cached; ++i) {
    const NodeId platform = reader.read_u32();
    CachedReply cached;
    cached.request_kind = reader.read_u32();
    cached.request_round = reader.read_u64();
    cached.reply = decode_envelope(reader);
    cache[platform] = std::move(cached);
  }
  last_request_round_ = std::move(last_rounds);
  reply_cache_ = std::move(cache);
}

}  // namespace splitmed::core
