// Membership subsystem — platform lifecycle under churn (extension).
//
// The paper's deployment is geo-distributed hospitals whose platforms go
// offline for hours, rejoin, and occasionally misbehave. This module gives
// the split-learning session a membership authority on the server side:
//
//   * a per-platform lifecycle state machine
//         JOINING -> ACTIVE <-> SUSPECT -> DEAD -> REJOINING -> ACTIVE
//                       \-> QUARANTINED -> (probation) -> ACTIVE
//     driven by liveness leases over the simulated clock (heartbeat /
//     protocol contact renews the lease; silence degrades the belief),
//   * deadline-based round admission: the trainer closes each round at a
//     configurable sim-time deadline and degrades to whichever quorum
//     arrived (below min_quorum the round is void and the reported loss is
//     carried — never fabricated, see docs/PROTOCOL.md "Reported train
//     loss"),
//   * update validation and quarantine: incoming activation / logit-grad
//     payloads are policed for non-finite values and norm-bombs against a
//     running per-kind median RMS norm; strikes escalate to quarantine with
//     seeded probation readmission,
//   * a deterministic ChurnPlan: seeded crash-at-round / offline-for-
//     d-sim-seconds / rejoin-mode schedules (plus poisoned-platform spells)
//     that compose with net::FaultPlan.
//
// Determinism contract: with MembershipConfig::enabled == false nothing in
// this module runs — no bytes, no RNG draws, bitwise identical to a build
// without it. With it enabled, every decision is a pure function of
// (config, churn plan, seed, sim clock), so the full quarantine ledger and
// every curve are bit-reproducible across runs and thread counts.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <span>
#include <vector>

#include "src/common/rng.hpp"
#include "src/serial/buffer.hpp"
#include "src/tensor/tensor.hpp"

namespace splitmed::core {

// ---------------------------------------------------------------------------
// Lifecycle states
// ---------------------------------------------------------------------------

/// Server-side belief about one platform. Serialized in checkpoints and in
/// kUpdateReject frames — decode validates the byte (unknown states are a
/// SerializationError, never UB).
enum class MemberState : std::uint8_t {
  kJoining = 0,      ///< registered, never heard from
  kActive = 1,       ///< lease current, admitted to rounds
  kSuspect = 2,      ///< lease expired — still admitted, watched
  kQuarantined = 3,  ///< struck out — updates refused until probation
  kDead = 4,         ///< silent past the grace window — must rejoin
  kRejoining = 5,    ///< join handshake in flight
};
inline constexpr std::size_t kMemberStateCount = 6;

/// Readable name ("joining", "active", ...).
const char* member_state_name(MemberState s);

// ---------------------------------------------------------------------------
// ChurnPlan — the deterministic environment script
// ---------------------------------------------------------------------------

/// What a crashed platform still has when it comes back.
enum class RejoinMode : std::uint8_t {
  kWarm = 0,  ///< local L1 / optimizer state survived (process restart)
  kCold = 1,  ///< local state lost — pulls the server-held genesis L1
};

/// How a compromised platform corrupts its outgoing tensors.
enum class PoisonKind : std::uint8_t {
  /// Injects a NaN into the outgoing logit-grad (the always-f32 channel —
  /// an i8-negotiated activation could not even encode a NaN).
  kNonFinite = 0,
  /// Scales the outgoing activation and logit-grad by `scale`.
  kNormBomb = 1,
};

/// Platform `platform` goes offline at the START of round `round` for
/// `offline_sec` simulated seconds, then rejoins in `rejoin` mode.
struct CrashEvent {
  std::size_t platform = 0;
  std::int64_t round = 1;
  double offline_sec = 60.0;
  RejoinMode rejoin = RejoinMode::kWarm;
};

/// Platform `platform` sends poisoned updates for rounds
/// [round, round + duration_rounds).
struct PoisonEvent {
  std::size_t platform = 0;
  std::int64_t round = 1;
  std::int64_t duration_rounds = 1;
  PoisonKind kind = PoisonKind::kNormBomb;
  float scale = 1.0e6F;
};

/// Rates for ChurnPlan::random — per platform-round probabilities.
struct ChurnRates {
  double crash_rate = 0.0;
  double mean_offline_sec = 60.0;  ///< outage duration ~ U[0.5, 1.5] * mean
  double cold_fraction = 0.5;      ///< fraction of crashes that lose state
  double poison_rate = 0.0;
  std::int64_t poison_rounds = 3;
  float poison_scale = 1.0e6F;
};

/// A fully explicit, deterministic churn schedule. An empty plan is inert.
struct ChurnPlan {
  std::vector<CrashEvent> crashes;
  std::vector<PoisonEvent> poisons;

  [[nodiscard]] bool any() const {
    return !crashes.empty() || !poisons.empty();
  }

  /// Throws InvalidArgument naming the offending field when an event is out
  /// of range (platform index, non-positive round/duration, non-finite or
  /// non-positive outage / scale).
  void validate(std::size_t num_platforms) const;

  /// Seeded generator: walks rounds x platforms with a dedicated Rng, so the
  /// same (seed, shape, rates) always yields the identical schedule. At most
  /// one event per platform per 8-round window (a hospital that just crashed
  /// does not crash again mid-outage).
  static ChurnPlan random(std::uint64_t seed, std::size_t num_platforms,
                          std::int64_t rounds, const ChurnRates& rates);
};

// ---------------------------------------------------------------------------
// Configuration
// ---------------------------------------------------------------------------

/// Membership / lease / quarantine policy. Defaults are inert: enabled is
/// false and the trainer never constructs the service.
struct MembershipConfig {
  bool enabled = false;

  /// Liveness beacon period: an online platform sends a kHeartbeat control
  /// frame at round start when this much sim time passed since its last one.
  double heartbeat_interval_sec = 5.0;
  /// No contact for this long (sim seconds) -> ACTIVE degrades to SUSPECT.
  double lease_sec = 30.0;
  /// No contact for this long -> SUSPECT degrades to DEAD (must rejoin).
  double dead_sec = 90.0;

  /// The server closes each round at round_start + this; platforms whose
  /// step has not STARTED by then are skipped (graceful degradation).
  double round_deadline_sec = 120.0;
  /// Fewer completed steps than this voids the round (loss is carried).
  std::int64_t min_quorum = 1;

  /// An accepted update's RMS norm may exceed the running per-kind median
  /// by at most this factor; beyond it is a norm-bomb strike.
  double norm_bomb_factor = 8.0;
  /// Accepted-norm history window per message kind.
  std::int64_t norm_window = 32;
  /// Accepted updates per kind before norm policing arms.
  std::int64_t norm_warmup = 8;

  /// Strikes before a platform is quarantined.
  int strikes_to_quarantine = 3;
  /// Base quarantine length in rounds (doubles on each re-quarantine).
  std::int64_t quarantine_rounds = 8;
  /// Seeded per-round readmission probability once quarantine expired.
  double probation_readmit_prob = 0.5;
  /// Accepted updates on probation before the slate is wiped clean.
  std::int64_t probation_clean_steps = 4;

  /// Throws InvalidArgument naming the offending field (and the platform
  /// count for contradictory combinations like min_quorum > platforms).
  void validate(std::size_t num_platforms) const;
};

// ---------------------------------------------------------------------------
// Control-frame payloads (MsgKind::kHeartbeat / kJoinRequest / kJoinAccept /
// kUpdateReject). Little-endian, fixed-width; decode validates every enum
// byte and the exact length — truncation, trailing bytes, and unknown
// lifecycle/mode/reason values raise SerializationError before any state is
// touched.
// ---------------------------------------------------------------------------

struct HeartbeatMsg {
  std::uint32_t platform = 0;        ///< sender's platform index
  std::uint64_t beat = 0;            ///< per-platform sequence, 1-based
  std::uint64_t last_completed_round = 0;
};

struct JoinRequestMsg {
  std::uint32_t platform = 0;
  RejoinMode mode = RejoinMode::kWarm;
  std::uint64_t last_completed_round = 0;
};

struct JoinAcceptMsg {
  std::uint64_t current_round = 0;
  bool has_l1 = false;
  Tensor l1;  ///< flattened genesis L1 values (kCold rejoin only)
};

/// Why an update was refused (rides in kUpdateReject).
enum class RejectReason : std::uint8_t {
  kNonFinite = 1,
  kNormBomb = 2,
};
const char* reject_reason_name(RejectReason r);

struct UpdateRejectMsg {
  RejectReason reason = RejectReason::kNonFinite;
  std::uint32_t strikes = 0;
  MemberState state = MemberState::kActive;  ///< sender's new belief
};

std::vector<std::uint8_t> encode_heartbeat_payload(const HeartbeatMsg& m);
HeartbeatMsg decode_heartbeat_payload(std::span<const std::uint8_t> payload);
std::vector<std::uint8_t> encode_join_request_payload(const JoinRequestMsg& m);
JoinRequestMsg decode_join_request_payload(
    std::span<const std::uint8_t> payload);
std::vector<std::uint8_t> encode_join_accept_payload(const JoinAcceptMsg& m);
JoinAcceptMsg decode_join_accept_payload(std::span<const std::uint8_t> payload);
std::vector<std::uint8_t> encode_update_reject_payload(
    const UpdateRejectMsg& m);
UpdateRejectMsg decode_update_reject_payload(
    std::span<const std::uint8_t> payload);

// ---------------------------------------------------------------------------
// Ledger — every counter is deterministic (bit-identical across runs and
// thread counts for the same plan + seed) and checkpointed.
// ---------------------------------------------------------------------------

struct MembershipLedger {
  /// transitions[from][to], indexed by MemberState.
  std::int64_t transitions[kMemberStateCount][kMemberStateCount] = {};
  std::int64_t strikes = 0;
  std::int64_t quarantines = 0;
  std::int64_t readmissions = 0;      ///< probation readmissions
  std::int64_t probation_clears = 0;  ///< probations served clean
  std::int64_t rejected_nonfinite = 0;
  std::int64_t rejected_normbomb = 0;
  std::int64_t rejoins_warm = 0;
  std::int64_t rejoins_cold = 0;
  std::int64_t heartbeats_fresh = 0;
  std::int64_t heartbeats_stale = 0;  ///< replayed / duplicated beats ignored
  std::int64_t deadline_misses = 0;
  std::int64_t void_rounds = 0;
  std::int64_t crashes = 0;
  /// Examples a platform would have contributed during offline rounds —
  /// the outage extension of Platform::examples_lost.
  std::int64_t outage_examples_lost = 0;

  [[nodiscard]] std::int64_t rejected_updates() const {
    return rejected_nonfinite + rejected_normbomb;
  }
  /// FNV-1a over every counter — the value the chaos tests pin and compare
  /// across runs / thread counts.
  [[nodiscard]] std::uint64_t fingerprint() const;
};

// ---------------------------------------------------------------------------
// MembershipService
// ---------------------------------------------------------------------------

/// The membership authority. One instance per training session, owned by the
/// trainer and shared with the CentralServer (which consults it for update
/// admission and feeds it contact observations). All times are simulated
/// seconds from net::SimClock.
class MembershipService {
 public:
  MembershipService(const MembershipConfig& config, ChurnPlan plan,
                    std::size_t num_platforms, std::uint64_t seed,
                    std::vector<std::int64_t> minibatches);

  // --- trainer-side round driver -------------------------------------------

  /// Opens round `round` at sim time `now`: applies this round's crash
  /// events, sweeps leases (ACTIVE -> SUSPECT -> DEAD), expires quarantines
  /// into seeded probation draws, promotes returned platforms to REJOINING,
  /// and accounts outage example loss.
  void begin_round(std::int64_t round, double now);

  /// Ground truth (the environment script): is the platform powered on?
  [[nodiscard]] bool online(std::size_t p) const;
  /// May the trainer start a protocol step for p this round?
  [[nodiscard]] bool can_step(std::size_t p) const;
  /// Must the trainer run the join handshake for p this round?
  [[nodiscard]] bool needs_rejoin(std::size_t p) const;
  /// Should p send a liveness heartbeat at this round's start?
  [[nodiscard]] bool sends_heartbeat(std::size_t p, double now) const;
  /// Marks p's heartbeat as sent at `now` (interval bookkeeping).
  void note_heartbeat_sent(std::size_t p, double now);
  [[nodiscard]] RejoinMode rejoin_mode(std::size_t p) const;
  /// The poison spell active for (p, round), if any.
  [[nodiscard]] std::optional<PoisonEvent> active_poison(
      std::size_t p, std::int64_t round) const;

  /// The platform completed the join handshake (JoinAccept landed).
  void note_rejoin_completed(std::size_t p, double now);
  /// The platform's step never started — the round deadline had passed.
  void note_deadline_miss(std::size_t p);
  /// The platform's protocol step completed (optimizer stepped both sides).
  void note_step_completed(std::size_t p, double now);
  /// Closes the round; returns true when it is VOID (fewer completed steps
  /// than min_quorum — the caller carries the reported loss).
  bool end_round(std::int64_t round, std::int64_t steps_completed);

  // --- server-side hooks ---------------------------------------------------

  [[nodiscard]] std::int64_t current_round() const { return current_round_; }
  /// Any authenticated frame from p renews its lease; JOINING / SUSPECT /
  /// DEAD beliefs recover to ACTIVE (quarantine and a join-in-flight do
  /// not — quarantine only ends through probation).
  void observe_contact(std::size_t p, double now);

  enum class Verdict : std::uint8_t {
    kAccept = 0,
    kRejectNonFinite = 1,
    kRejectNormBomb = 2,
  };
  /// Polices one incoming tensor update (activation or logit-grad RMS norm
  /// against the running per-kind median). kAccept feeds the norm history;
  /// a rejection records a strike and may quarantine the platform.
  /// `kind_index` selects the norm history (0 = activation, 1 = logit-grad).
  Verdict admit_update(std::size_t p, int kind_index, const Tensor& t);

  /// Heartbeat bookkeeping; false = replayed/duplicated beat (counted and
  /// ignored — no state mutation beyond the stale counter).
  bool note_heartbeat(std::size_t p, std::uint64_t beat, double now);
  /// Join admission. Throws ProtocolError (before any mutation) when p is
  /// quarantined — a rejoin must never bypass quarantine.
  void note_join_request(std::size_t p, RejoinMode mode, double now);

  // --- introspection -------------------------------------------------------

  [[nodiscard]] std::size_t num_platforms() const { return records_.size(); }
  [[nodiscard]] MemberState state(std::size_t p) const;
  [[nodiscard]] int strikes(std::size_t p) const;
  [[nodiscard]] bool on_probation(std::size_t p) const;
  [[nodiscard]] std::size_t count_in_state(MemberState s) const;
  [[nodiscard]] const MembershipLedger& ledger() const { return ledger_; }
  [[nodiscard]] const ChurnPlan& plan() const { return plan_; }

  /// Serializes the complete membership state: every member record, the
  /// probation Rng, the per-kind norm histories, and the ledger. The churn
  /// plan itself is config (rebuilt, never trusted from disk).
  void save_state(BufferWriter& w) const;
  /// Mirror of save_state. Throws SerializationError on malformed input,
  /// unknown lifecycle states, or a record count that does not match this
  /// session's roster.
  void load_state(BufferReader& r);

 private:
  struct MemberRecord {
    MemberState state = MemberState::kJoining;
    double last_heard = 0.0;
    double last_beat_sent = -1.0e300;  ///< -inf-ish: first beat fires at once
    double offline_until = -1.0;       ///< >= 0 while offline (sim seconds)
    std::uint8_t rejoin_mode = 0;      ///< RejoinMode while pending_rejoin
    std::uint8_t pending_rejoin = 0;   ///< crash consumed local liveness
    std::int32_t strikes = 0;
    std::int64_t quarantined_until_round = 0;
    std::int64_t quarantine_spell = 0;  ///< current spell length (escalates)
    std::uint8_t probation = 0;
    std::int64_t clean_accepts = 0;
    std::uint64_t last_beat_seen = 0;  ///< replay horizon for heartbeats
  };

  void transition(std::size_t p, MemberState to);
  void quarantine(std::size_t p);
  void check_platform(std::size_t p) const;

  MembershipConfig config_;
  ChurnPlan plan_;
  std::vector<std::int64_t> minibatches_;
  std::vector<MemberRecord> records_;
  /// Accepted RMS-norm history: [0] activations, [1] logit grads.
  std::deque<double> norm_history_[2];
  Rng probation_rng_;
  std::int64_t current_round_ = 0;
  MembershipLedger ledger_;
};

/// RMS norm (sqrt(sum(x^2)/numel), doubles, serial fold) — the batch-size-
/// invariant magnitude the norm-bomb policy compares. NaN/Inf payloads
/// produce a non-finite result. Exposed for tests.
double update_rms_norm(const Tensor& t);

}  // namespace splitmed::core
