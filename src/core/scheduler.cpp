#include "src/core/scheduler.hpp"

#include <limits>

#include "src/common/error.hpp"
#include "src/obs/obs.hpp"

namespace splitmed::core {

namespace {
constexpr std::size_t kNoPlatform = std::numeric_limits<std::size_t>::max();
}  // namespace

EventScheduler::EventScheduler(
    net::Network& network, CentralServer& server,
    const std::vector<std::unique_ptr<PlatformNode>>& platforms)
    : network_(network), server_(server), platforms_(platforms) {
  node_to_platform_.assign(network.node_count(), kNoPlatform);
  for (std::size_t p = 0; p < platforms_.size(); ++p) {
    const NodeId node = platforms_[p]->id();
    SPLITMED_CHECK(node < node_to_platform_.size(),
                   "platform node id " << node << " outside the network");
    node_to_platform_[node] = p;
  }
  in_flight_.assign(platforms_.size(), std::nullopt);
}

void EventScheduler::sample_queue_depth() const {
  if (obs::Gauge* g = obs::event_queue_depth_gauge()) {
    g->set(static_cast<double>(network_.total_in_flight()));
  }
}

void EventScheduler::begin_step(std::size_t platform, std::uint64_t step_id,
                                std::int64_t round) {
  SPLITMED_CHECK(platform < platforms_.size(), "platform index out of range");
  SPLITMED_ASSERT(!in_flight_[platform],
                  "platform " << platform << " already has a step in flight");
  platforms_[platform]->send_activation(network_, step_id);
  in_flight_[platform] = InFlightStep{step_id, round};
  ++inflight_by_round_[round];
  ++steps_in_flight_;
}

void EventScheduler::dispatch(const Envelope& envelope) {
  if (envelope.dst == server_.id()) {
    server_.handle(network_, envelope);
    return;
  }
  const std::size_t p = node_to_platform_[envelope.dst];
  SPLITMED_ASSERT(p != kNoPlatform,
                  "frame addressed to unknown node " << envelope.dst);
  platforms_[p]->handle(network_, envelope);
}

std::optional<std::size_t> EventScheduler::pump_one() {
  const auto event = network_.next_event();
  SPLITMED_ASSERT(event.has_value(), "pump_one with nothing in flight");
  if (event->node == server_.id()) {
    server_.handle(network_, network_.receive(server_.id()));
    sample_queue_depth();
    return std::nullopt;
  }
  const std::size_t p = node_to_platform_[event->node];
  SPLITMED_ASSERT(p != kNoPlatform,
                  "frame addressed to unknown node " << event->node);
  const Envelope envelope = network_.receive(event->node);
  const bool is_cut_grad =
      static_cast<MsgKind>(envelope.kind) == MsgKind::kCutGrad;
  platforms_[p]->handle(network_, envelope);
  sample_queue_depth();
  if (!is_cut_grad || platforms_[p]->state() != PlatformState::kIdle) {
    return std::nullopt;
  }
  // The cut gradient was applied — platform p's step is complete.
  SPLITMED_ASSERT(in_flight_[p], "completion for an untracked step");
  const auto round_it = inflight_by_round_.find(in_flight_[p]->start_round);
  SPLITMED_ASSERT(round_it != inflight_by_round_.end(),
                  "in-flight round accounting out of sync");
  if (--round_it->second == 0) inflight_by_round_.erase(round_it);
  in_flight_[p].reset();
  --steps_in_flight_;
  return p;
}

void EventScheduler::drain(std::int64_t horizon,
                           std::vector<std::size_t>& completed) {
  const std::size_t entry_count = completed.size();
  while (steps_in_flight_ > 0 &&
         (has_step_at_or_before(horizon) ||
          completed.size() == entry_count)) {
    const auto done = pump_one();
    if (done) completed.push_back(*done);
  }
}

}  // namespace splitmed::core
