// Splitting a network at the paper's cut point.
//
// split_at consumes a Sequential and divides it into the platform part
// ("L1": the first `cut` entries) and the server part ("L2..Lk": the rest).
// The split is a pure refactoring of the computation — tests verify that a
// split step with one platform is bit-identical to a centralized step.
#pragma once

#include "src/nn/sequential.hpp"

namespace splitmed::core {

struct SplitParts {
  nn::Sequential platform;  // L1
  nn::Sequential server;    // L2 .. Lk (incl. output layer)
};

/// Requires 0 < cut < net.size() so both sides are non-empty.
SplitParts split_at(nn::Sequential&& net, std::size_t cut);

/// Deep-copies the parameter values of `src` into `dst` (same architecture
/// required) — used to give every platform identical initial L1 weights, the
/// paper's initialization postulate.
void copy_parameters(nn::Layer& src, nn::Layer& dst);

}  // namespace splitmed::core
