// Deterministic simulated clock. Time is seconds as double; it only moves
// forward via advance_to(), driven by the Network when messages are received.
#pragma once

#include "src/common/error.hpp"

namespace splitmed::net {

class SimClock {
 public:
  [[nodiscard]] double now() const { return now_; }

  /// Moves time forward to t (no-op when t <= now; time never goes back).
  void advance_to(double t) {
    if (t > now_) now_ = t;
  }

  void reset() { now_ = 0.0; }

 private:
  double now_ = 0.0;
};

}  // namespace splitmed::net
