#include "src/net/network.hpp"

#include <algorithm>
#include <string>

#include "src/common/error.hpp"
#include "src/obs/obs.hpp"
#include "src/serial/crc32.hpp"
#include "src/serial/state_codec.hpp"

namespace splitmed::net {

namespace {

// Sim-time latency buckets: WAN round trips live in the 1ms..5s decade
// range (delay spikes push the tail out to seconds).
const std::vector<double> kSimLatencyBounds{
    0.001, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0};

/// Per-envelope send span + per-kind counters/latency + flight note.
/// `now` is the sim clock at the send call, `start`/`arrival` the frame's
/// final transmission window (arrival includes any injected delay spike).
void obs_send(const std::vector<std::string>& nodes, const Envelope& e,
              std::uint64_t bytes, double now, double start, double arrival) {
  if (obs::TraceRecorder* tr = obs::trace()) {
    obs::TraceEvent ev;
    ev.ph = 'X';
    ev.name = "net.send";
    ev.cat = "net";
    ev.sim_s = start;
    ev.sim_dur_s = arrival - start;
    ev.args = {obs::arg("kind", obs::kind_name(e.kind)),
               obs::arg("src", std::string_view(nodes[e.src])),
               obs::arg("dst", std::string_view(nodes[e.dst])),
               obs::arg("round", e.round),
               obs::arg("bytes", bytes),
               obs::arg("retransmit", e.retransmit)};
    tr->record(std::move(ev));
  }
  if (obs::MetricsRegistry* m = obs::metrics()) {
    const obs::Labels by_kind{{"kind", obs::kind_name(e.kind)}};
    m->counter("splitmed_net_messages_total",
               "Messages handed to the simulated WAN", by_kind)
        .inc();
    m->counter("splitmed_net_bytes_total",
               "Wire bytes handed to the simulated WAN", by_kind)
        .inc(static_cast<double>(bytes));
    m->histogram("splitmed_net_sim_latency_seconds",
                 "Simulated send-to-arrival latency (link queueing + "
                 "serialization + propagation + injected delay spikes)",
                 kSimLatencyBounds, by_kind)
        .observe(arrival - now);
  }
  if (obs::FlightRecorder* fr = obs::flight()) {
    fr->note(start, "send " + obs::kind_name(e.kind) + " " + nodes[e.src] +
                        "->" + nodes[e.dst] + " round=" +
                        std::to_string(e.round) + " bytes=" +
                        std::to_string(bytes) +
                        (e.retransmit ? " retransmit" : ""));
  }
}

/// Injected-fault instant event ("drop", "duplicate", "corrupt",
/// "delay_spike") plus the per-type fault counter and a flight note.
void obs_fault(const std::vector<std::string>& nodes, const Envelope& e,
               const char* type, double sim_s) {
  if (obs::TraceRecorder* tr = obs::trace()) {
    obs::TraceEvent ev;
    ev.name = std::string("net.") + type;
    ev.cat = "fault";
    ev.sim_s = sim_s;
    ev.args = {obs::arg("kind", obs::kind_name(e.kind)),
               obs::arg("src", std::string_view(nodes[e.src])),
               obs::arg("dst", std::string_view(nodes[e.dst])),
               obs::arg("round", e.round)};
    tr->record(std::move(ev));
  }
  if (obs::MetricsRegistry* m = obs::metrics()) {
    m->counter("splitmed_net_faults_total", "Injected WAN faults by type",
               {{"type", type}})
        .inc();
  }
  if (obs::FlightRecorder* fr = obs::flight()) {
    fr->note(sim_s, std::string("FAULT ") + type + " " +
                        obs::kind_name(e.kind) + " " + nodes[e.src] + "->" +
                        nodes[e.dst] + " round=" + std::to_string(e.round));
  }
}

/// Delivery instant event + flight note (the moment protocol code gets the
/// frame, or discards it as corrupted).
void obs_deliver(const std::vector<std::string>& nodes, const Envelope& e,
                 double sim_s, bool corrupt_discarded) {
  const char* name = corrupt_discarded ? "net.corrupt_discarded"
                                       : "net.deliver";
  if (obs::TraceRecorder* tr = obs::trace()) {
    obs::TraceEvent ev;
    ev.name = name;
    ev.cat = corrupt_discarded ? "fault" : "net";
    ev.sim_s = sim_s;
    ev.args = {obs::arg("kind", obs::kind_name(e.kind)),
               obs::arg("src", std::string_view(nodes[e.src])),
               obs::arg("dst", std::string_view(nodes[e.dst])),
               obs::arg("round", e.round)};
    tr->record(std::move(ev));
  }
  if (obs::FlightRecorder* fr = obs::flight()) {
    fr->note(sim_s, std::string(corrupt_discarded ? "DISCARD corrupt "
                                                  : "deliver ") +
                        obs::kind_name(e.kind) + " " + nodes[e.src] + "->" +
                        nodes[e.dst] + " round=" + std::to_string(e.round));
  }
  if (corrupt_discarded) {
    if (obs::MetricsRegistry* m = obs::metrics()) {
      m->counter("splitmed_net_corrupt_discarded_total",
                 "Frames discarded at delivery after CRC mismatch")
          .inc();
    }
  }
}

}  // namespace

NodeId Network::add_node(std::string name) {
  nodes_.push_back(std::move(name));
  inbox_.emplace_back();
  return static_cast<NodeId>(nodes_.size() - 1);
}

const std::string& Network::node_name(NodeId id) const {
  check_node(id);
  return nodes_[id];
}

void Network::check_node(NodeId id) const {
  SPLITMED_CHECK(id < nodes_.size(), "unknown node id " << id);
}

void Network::set_link(NodeId a, NodeId b, Link link) {
  check_node(a);
  check_node(b);
  SPLITMED_CHECK(a != b, "cannot set a self-link");
  links_[{a, b}] = link;
  links_[{b, a}] = link;
}

const Link& Network::link(NodeId src, NodeId dst) const {
  const auto it = links_.find({src, dst});
  return it == links_.end() ? default_link_ : it->second;
}

void Network::set_default_fault_plan(FaultPlan plan) {
  plan.validate();
  default_fault_plan_ = plan;
  faults_enabled_ = faults_enabled_ || plan.any();
}

void Network::set_fault_plan(NodeId src, NodeId dst, FaultPlan plan) {
  check_node(src);
  check_node(dst);
  SPLITMED_CHECK(src != dst, "cannot set a self-link fault plan");
  plan.validate();
  fault_plans_[{src, dst}] = plan;
  faults_enabled_ = faults_enabled_ || plan.any();
}

const FaultPlan& Network::fault_plan(NodeId src, NodeId dst) const {
  const auto it = fault_plans_.find({src, dst});
  return it == fault_plans_.end() ? default_fault_plan_ : it->second;
}

std::uint64_t Network::bytes_on_wire(const Envelope& envelope) const {
  return envelope.wire_bytes() +
         (faults_enabled_ ? Envelope::kCrcTrailerBytes : 0);
}

bool Network::intact(const Envelope& envelope) {
  return envelope.crc == crc32({envelope.payload.data(),
                                envelope.payload.size()});
}

void Network::corrupt_in_flight(Envelope& envelope) {
  if (envelope.payload.empty()) {
    envelope.crc ^= 1U + static_cast<std::uint32_t>(fault_rng_.uniform_u64(
                             0xFFFFFFFFULL));
    return;
  }
  const int flips = 1 + static_cast<int>(fault_rng_.uniform_u64(4));
  for (int f = 0; f < flips; ++f) {
    const std::size_t at = static_cast<std::size_t>(
        fault_rng_.uniform_u64(envelope.payload.size()));
    envelope.payload[at] ^=
        static_cast<std::uint8_t>(1 + fault_rng_.uniform_u64(255));
  }
}

void Network::send(Envelope envelope) {
  check_node(envelope.src);
  check_node(envelope.dst);
  SPLITMED_CHECK(envelope.src != envelope.dst,
                 "node " << envelope.src << " sending to itself");
  const Link& l = link(envelope.src, envelope.dst);
  const std::uint64_t bytes = bytes_on_wire(envelope);

  // The link serializes transmissions: start when it frees up.
  double& busy_until = link_busy_until_[{envelope.src, envelope.dst}];
  const double now = clock_.now();
  const double start = std::max(now, busy_until);
  const double serialization =
      static_cast<double>(bytes) / l.bandwidth_bytes_per_sec;
  busy_until = start + serialization;
  double arrival = busy_until + l.latency_sec;

  stats_.record(envelope, bytes);
  if (envelope.retransmit) stats_.record_retransmit(bytes);

  if (!faults_enabled_) {
    obs_send(nodes_, envelope, bytes, now, start, arrival);
    inbox_[envelope.dst].push_back(
        InFlight{arrival, sequence_++, std::move(envelope)});
    return;
  }

  envelope.crc = crc32({envelope.payload.data(), envelope.payload.size()});
  const FaultPlan& plan = fault_plan(envelope.src, envelope.dst);
  bool drop = false;
  bool duplicate = false;
  if (plan.any()) {
    // Fixed draw order keeps the fault stream a pure function of the seed
    // and the send sequence.
    bool spiked = false;
    if (plan.delay_spike_rate > 0.0 &&
        fault_rng_.bernoulli(static_cast<float>(plan.delay_spike_rate))) {
      arrival += plan.delay_spike_sec;
      spiked = true;
    }
    duplicate = plan.duplicate_rate > 0.0 &&
                fault_rng_.bernoulli(static_cast<float>(plan.duplicate_rate));
    drop = plan.drop_rate > 0.0 &&
           fault_rng_.bernoulli(static_cast<float>(plan.drop_rate));
    const bool corrupt =
        plan.corrupt_rate > 0.0 &&
        fault_rng_.bernoulli(static_cast<float>(plan.corrupt_rate));

    obs_send(nodes_, envelope, bytes, now, start, arrival);
    if (spiked) obs_fault(nodes_, envelope, "delay_spike", start);

    if (duplicate) {
      // The extra copy re-serializes on the link right behind the original
      // (taken before any corruption — it is an independent transmission).
      Envelope copy = envelope;
      const double copy_start = busy_until;
      busy_until += serialization;
      const double copy_arrival = busy_until + l.latency_sec;
      stats_.record(copy, bytes);
      stats_.record_duplicate(bytes);
      obs_fault(nodes_, envelope, "duplicate", start);
      obs_send(nodes_, copy, bytes, now, copy_start, copy_arrival);
      if (drop) {
        stats_.record_dropped(bytes);
        obs_fault(nodes_, envelope, "drop", start);
      } else {
        if (corrupt) {
          corrupt_in_flight(envelope);
          obs_fault(nodes_, envelope, "corrupt", start);
        }
      }
      const NodeId dst = envelope.dst;
      if (!drop) {
        inbox_[dst].push_back(
            InFlight{arrival, sequence_++, std::move(envelope)});
      }
      inbox_[dst].push_back(
          InFlight{copy_arrival, sequence_++, std::move(copy)});
      return;
    }
    if (drop) {
      stats_.record_dropped(bytes);
      obs_fault(nodes_, envelope, "drop", start);
      return;
    }
    if (corrupt) {
      corrupt_in_flight(envelope);
      obs_fault(nodes_, envelope, "corrupt", start);
    }
  } else {
    obs_send(nodes_, envelope, bytes, now, start, arrival);
  }
  inbox_[envelope.dst].push_back(
      InFlight{arrival, sequence_++, std::move(envelope)});
}

Envelope Network::receive(NodeId node) {
  check_node(node);
  auto& box = inbox_[node];
  while (true) {
    if (box.empty()) {
      const std::string reason = "receive on node '" + nodes_[node] +
                                 "' with no message in flight";
      obs::postmortem(reason);
      throw ProtocolError(reason);
    }
    const auto it = std::min_element(
        box.begin(), box.end(), [](const InFlight& a, const InFlight& b) {
          return a.arrival != b.arrival ? a.arrival < b.arrival
                                        : a.sequence < b.sequence;
        });
    clock_.advance_to(it->arrival);
    Envelope out = std::move(it->envelope);
    box.erase(it);
    if (!faults_enabled_ || intact(out)) {
      obs_deliver(nodes_, out, clock_.now(), /*corrupt_discarded=*/false);
      return out;
    }
    stats_.record_corrupted(bytes_on_wire(out));
    obs_deliver(nodes_, out, clock_.now(), /*corrupt_discarded=*/true);
  }
}

std::optional<Envelope> Network::try_receive(NodeId node) {
  check_node(node);
  auto& box = inbox_[node];
  while (true) {
    auto best = box.end();
    for (auto it = box.begin(); it != box.end(); ++it) {
      if (it->arrival > clock_.now()) continue;
      if (best == box.end() || it->arrival < best->arrival ||
          (it->arrival == best->arrival && it->sequence < best->sequence)) {
        best = it;
      }
    }
    if (best == box.end()) return std::nullopt;
    const double arrived = best->arrival;
    Envelope out = std::move(best->envelope);
    box.erase(best);
    if (!faults_enabled_ || intact(out)) {
      obs_deliver(nodes_, out, arrived, /*corrupt_discarded=*/false);
      return out;
    }
    stats_.record_corrupted(bytes_on_wire(out));
    obs_deliver(nodes_, out, arrived, /*corrupt_discarded=*/true);
  }
}

std::optional<Envelope> Network::receive_before(NodeId node, double deadline) {
  check_node(node);
  auto& box = inbox_[node];
  while (true) {
    auto best = box.end();
    for (auto it = box.begin(); it != box.end(); ++it) {
      if (it->arrival > deadline) continue;
      if (best == box.end() || it->arrival < best->arrival ||
          (it->arrival == best->arrival && it->sequence < best->sequence)) {
        best = it;
      }
    }
    if (best == box.end()) return std::nullopt;
    clock_.advance_to(best->arrival);
    Envelope out = std::move(best->envelope);
    box.erase(best);
    if (!faults_enabled_ || intact(out)) {
      obs_deliver(nodes_, out, clock_.now(), /*corrupt_discarded=*/false);
      return out;
    }
    stats_.record_corrupted(bytes_on_wire(out));
    obs_deliver(nodes_, out, clock_.now(), /*corrupt_discarded=*/true);
  }
}

std::optional<double> Network::next_arrival(NodeId node) const {
  check_node(node);
  const auto& box = inbox_[node];
  std::optional<double> earliest;
  for (const auto& m : box) {
    if (!earliest || m.arrival < *earliest) earliest = m.arrival;
  }
  return earliest;
}

std::size_t Network::pending(NodeId node) const {
  SPLITMED_CHECK(node < nodes_.size(), "unknown node id " << node);
  return inbox_[node].size();
}

bool Network::quiescent() const {
  return std::all_of(inbox_.begin(), inbox_.end(),
                     [](const auto& box) { return box.empty(); });
}

void Network::save_state(BufferWriter& writer) const {
  writer.write_u32(static_cast<std::uint32_t>(nodes_.size()));
  writer.write_f64(clock_.now());
  writer.write_u64(sequence_);
  writer.write_u32(static_cast<std::uint32_t>(link_busy_until_.size()));
  for (const auto& [pair, busy_until] : link_busy_until_) {
    writer.write_u32(pair.first);
    writer.write_u32(pair.second);
    writer.write_f64(busy_until);
  }
  // In-flight frames, per destination inbox. Fault-free round boundaries are
  // quiescent and write zero entries; under WAN fault injection, late
  // duplicates and post-timeout replies legitimately straddle the boundary
  // and MUST travel with the checkpoint — the resumed run has to deliver
  // (and ignore) exactly the frames the uninterrupted run would have.
  for (const auto& box : inbox_) {
    writer.write_u32(static_cast<std::uint32_t>(box.size()));
    for (const InFlight& f : box) {
      writer.write_f64(f.arrival);
      writer.write_u64(f.sequence);
      encode_envelope(f.envelope, writer);
    }
  }
  encode_rng(fault_rng_, writer);
  stats_.save_state(writer);
}

void Network::load_state(BufferReader& reader) {
  SPLITMED_CHECK(quiescent(),
                 "Network::load_state requires an empty network");
  const std::uint32_t node_count = reader.read_u32();
  if (node_count != nodes_.size()) {
    throw SerializationError("Network state: checkpoint has " +
                             std::to_string(node_count) + " nodes, network " +
                             "has " + std::to_string(nodes_.size()));
  }
  const double now = reader.read_f64();
  if (!(now >= 0.0)) {  // also rejects NaN
    throw SerializationError("Network state: invalid clock time");
  }
  const std::uint64_t sequence = reader.read_u64();
  const std::uint32_t n_busy = reader.read_u32();
  std::map<std::pair<NodeId, NodeId>, double> busy;
  for (std::uint32_t i = 0; i < n_busy; ++i) {
    const NodeId src = reader.read_u32();
    const NodeId dst = reader.read_u32();
    if (src >= nodes_.size() || dst >= nodes_.size()) {
      throw SerializationError("Network state: busy-link node id out of "
                               "range");
    }
    busy[{src, dst}] = reader.read_f64();
  }
  std::vector<std::vector<InFlight>> inbox(nodes_.size());
  constexpr std::uint32_t kMaxInFlight = 1U << 20;
  for (std::size_t node = 0; node < nodes_.size(); ++node) {
    const std::uint32_t n_flight = reader.read_u32();
    if (n_flight > kMaxInFlight) {
      throw SerializationError("Network state: absurd in-flight count " +
                               std::to_string(n_flight));
    }
    inbox[node].reserve(n_flight);
    for (std::uint32_t i = 0; i < n_flight; ++i) {
      InFlight f;
      f.arrival = reader.read_f64();
      if (!(f.arrival >= 0.0)) {  // also rejects NaN
        throw SerializationError("Network state: invalid arrival time");
      }
      f.sequence = reader.read_u64();
      f.envelope = decode_envelope(reader);
      if (f.envelope.dst != node || f.envelope.src >= nodes_.size()) {
        throw SerializationError(
            "Network state: in-flight frame routed to the wrong inbox");
      }
      inbox[node].push_back(std::move(f));
    }
  }
  Rng fault_rng = fault_rng_;
  decode_rng(reader, fault_rng);
  TrafficStats stats;
  stats.load_state(reader);
  clock_.reset();
  clock_.advance_to(now);
  sequence_ = sequence;
  link_busy_until_ = std::move(busy);
  inbox_ = std::move(inbox);
  fault_rng_ = fault_rng;
  stats_ = std::move(stats);
}

}  // namespace splitmed::net
