#include "src/net/network.hpp"

#include <algorithm>
#include <limits>
#include <string>

#include "src/common/error.hpp"
#include "src/obs/critical_path.hpp"
#include "src/obs/obs.hpp"
#include "src/serial/crc32.hpp"
#include "src/serial/state_codec.hpp"
#include "src/serial/wire_codec.hpp"

namespace splitmed::net {

namespace {

constexpr std::size_t kNotIndexed = std::numeric_limits<std::size_t>::max();

// Sim-time latency buckets: WAN round trips live in the 1ms..5s decade
// range (delay spikes push the tail out to seconds).
const std::vector<double> kSimLatencyBounds{
    0.001, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0};

/// Per-envelope send span + per-kind counters/latency + flight note.
/// `now` is the sim clock at the send call, `start`/`arrival` the frame's
/// final transmission window (arrival includes any injected delay spike).
void obs_send(const std::vector<std::string>& nodes, const Envelope& e,
              std::uint64_t bytes, double now, double start, double arrival) {
  if (obs::TraceRecorder* tr = obs::trace()) {
    obs::TraceEvent ev;
    ev.ph = 'X';
    ev.name = "net.send";
    ev.cat = "net";
    ev.sim_s = start;
    ev.sim_dur_s = arrival - start;
    ev.args = {obs::arg("kind", obs::kind_name(e.kind)),
               obs::arg("src", std::string_view(nodes[e.src])),
               obs::arg("dst", std::string_view(nodes[e.dst])),
               obs::arg("round", e.round),
               obs::arg("bytes", bytes),
               obs::arg("retransmit", e.retransmit)};
    tr->record(std::move(ev));
  }
  if (obs::MetricsRegistry* m = obs::metrics()) {
    const obs::Labels by_kind{{"kind", obs::kind_name(e.kind)}};
    m->counter("splitmed_net_messages_total",
               "Messages handed to the simulated WAN", by_kind)
        .inc();
    m->counter("splitmed_net_bytes_total",
               "Wire bytes handed to the simulated WAN", by_kind)
        .inc(static_cast<double>(bytes));
    m->counter("splitmed_net_codec_bytes_total",
               "Wire bytes by negotiated payload codec",
               obs::Labels{{"codec", wire_codec_name(e.codec)}})
        .inc(static_cast<double>(bytes));
    m->histogram("splitmed_net_sim_latency_seconds",
                 "Simulated send-to-arrival latency (link queueing + "
                 "serialization + propagation + injected delay spikes)",
                 kSimLatencyBounds,
                 obs::Labels{{"kind", obs::kind_name(e.kind)},
                             {"codec", wire_codec_name(e.codec)}})
        .observe(arrival - now);
  }
  if (obs::FlightRecorder* fr = obs::flight()) {
    fr->note(start, "send " + obs::kind_name(e.kind) + " " + nodes[e.src] +
                        "->" + nodes[e.dst] + " round=" +
                        std::to_string(e.round) + " bytes=" +
                        std::to_string(bytes) +
                        (e.retransmit ? " retransmit" : ""));
  }
}

/// Injected-fault instant event ("drop", "duplicate", "corrupt",
/// "delay_spike") plus the per-type fault counter and a flight note.
void obs_fault(const std::vector<std::string>& nodes, const Envelope& e,
               const char* type, double sim_s) {
  if (obs::TraceRecorder* tr = obs::trace()) {
    obs::TraceEvent ev;
    ev.name = std::string("net.") + type;
    ev.cat = "fault";
    ev.sim_s = sim_s;
    ev.args = {obs::arg("kind", obs::kind_name(e.kind)),
               obs::arg("src", std::string_view(nodes[e.src])),
               obs::arg("dst", std::string_view(nodes[e.dst])),
               obs::arg("round", e.round)};
    tr->record(std::move(ev));
  }
  if (obs::MetricsRegistry* m = obs::metrics()) {
    m->counter("splitmed_net_faults_total", "Injected WAN faults by type",
               {{"type", type}})
        .inc();
  }
  if (obs::FlightRecorder* fr = obs::flight()) {
    fr->note(sim_s, std::string("FAULT ") + type + " " +
                        obs::kind_name(e.kind) + " " + nodes[e.src] + "->" +
                        nodes[e.dst] + " round=" + std::to_string(e.round));
  }
}

/// Flow-start event ('s'): emitted per physical frame put in flight, at the
/// flight's start on the sim clock. The matching flow-finish ('f') fires at
/// delivery (obs_deliver), sharing the frame's sideband flow id — the edge
/// that links the sender's net.send span to the receiver's timeline.
void obs_flow_start(const std::vector<std::string>& nodes, const Envelope& e,
                    double start) {
  if (obs::TraceRecorder* tr = obs::trace()) {
    obs::TraceEvent ev;
    ev.ph = 's';
    ev.name = "net.flow";
    ev.cat = "net";
    ev.sim_s = start;
    ev.flow_id = e.trace.flow_id;
    ev.args = {obs::arg("kind", obs::kind_name(e.kind)),
               obs::arg("src", std::string_view(nodes[e.src])),
               obs::arg("dst", std::string_view(nodes[e.dst])),
               obs::arg("round", e.round),
               obs::arg("attempt",
                        static_cast<std::uint64_t>(e.trace.attempt))};
    tr->record(std::move(ev));
  }
}

/// Delivery instant event + flow-finish + flight note (the moment protocol
/// code gets the frame, or discards it as corrupted).
void obs_deliver(const std::vector<std::string>& nodes, const Envelope& e,
                 double sim_s, bool corrupt_discarded) {
  const char* name = corrupt_discarded ? "net.corrupt_discarded"
                                       : "net.deliver";
  if (obs::TraceRecorder* tr = obs::trace()) {
    obs::TraceEvent ev;
    ev.name = name;
    ev.cat = corrupt_discarded ? "fault" : "net";
    ev.sim_s = sim_s;
    ev.args = {obs::arg("kind", obs::kind_name(e.kind)),
               obs::arg("src", std::string_view(nodes[e.src])),
               obs::arg("dst", std::string_view(nodes[e.dst])),
               obs::arg("round", e.round)};
    tr->record(std::move(ev));
    if (e.trace.flow_id != 0) {
      // A CRC-discarded frame still finishes its flow — the WAN delivered
      // it; the receiver observed and rejected it.
      obs::TraceEvent fin;
      fin.ph = 'f';
      fin.name = "net.flow";
      fin.cat = "net";
      fin.sim_s = sim_s;
      fin.flow_id = e.trace.flow_id;
      tr->record(std::move(fin));
    }
  }
  if (obs::FlightRecorder* fr = obs::flight()) {
    fr->note(sim_s, std::string(corrupt_discarded ? "DISCARD corrupt "
                                                  : "deliver ") +
                        obs::kind_name(e.kind) + " " + nodes[e.src] + "->" +
                        nodes[e.dst] + " round=" + std::to_string(e.round));
  }
  if (corrupt_discarded) {
    if (obs::MetricsRegistry* m = obs::metrics()) {
      m->counter("splitmed_net_corrupt_discarded_total",
                 "Frames discarded at delivery after CRC mismatch")
          .inc();
    }
  }
}

/// Reports a delivery wait [before, after) on frame `e` to the critical-path
/// analyzer: the receiver's clock moved because this frame gated it.
void obs_wait(obs::CriticalPathAnalyzer* cp, double before, double after,
              const Envelope& e, bool corrupt_discarded) {
  obs::MsgWait wait;
  wait.from = before;
  wait.to = after;
  wait.sent_sim = e.trace.sent_sim;
  wait.src = e.src;
  wait.dst = e.dst;
  wait.kind = e.kind;
  wait.step = e.trace.step;
  wait.attempt = e.trace.attempt;
  wait.retransmit = e.retransmit;
  wait.corrupt_discarded = corrupt_discarded;
  cp->observe_wait(wait);
}

/// (arrival, sequence) total order — sequences are unique, so no two frames
/// ever compare equal and every heap has a single well-defined head.
bool frame_before(double arrival_a, std::uint64_t seq_a, double arrival_b,
                  std::uint64_t seq_b) {
  return arrival_a != arrival_b ? arrival_a < arrival_b : seq_a < seq_b;
}

}  // namespace

NodeId Network::add_node(std::string name) {
  nodes_.push_back(std::move(name));
  inbox_.emplace_back();
  index_pos_.push_back(kNotIndexed);
  return static_cast<NodeId>(nodes_.size() - 1);
}

const std::string& Network::node_name(NodeId id) const {
  check_node(id);
  return nodes_[id];
}

void Network::check_node(NodeId id) const {
  SPLITMED_CHECK(id < nodes_.size(), "unknown node id " << id);
}

void Network::set_link(NodeId a, NodeId b, Link link) {
  check_node(a);
  check_node(b);
  SPLITMED_CHECK(a != b, "cannot set a self-link");
  links_[{a, b}] = link;
  links_[{b, a}] = link;
}

const Link& Network::link(NodeId src, NodeId dst) const {
  const auto it = links_.find({src, dst});
  return it == links_.end() ? default_link_ : it->second;
}

void Network::set_default_fault_plan(FaultPlan plan) {
  plan.validate();
  default_fault_plan_ = plan;
  faults_enabled_ = faults_enabled_ || plan.any();
}

void Network::set_fault_plan(NodeId src, NodeId dst, FaultPlan plan) {
  check_node(src);
  check_node(dst);
  SPLITMED_CHECK(src != dst, "cannot set a self-link fault plan");
  plan.validate();
  fault_plans_[{src, dst}] = plan;
  faults_enabled_ = faults_enabled_ || plan.any();
}

const FaultPlan& Network::fault_plan(NodeId src, NodeId dst) const {
  const auto it = fault_plans_.find({src, dst});
  return it == fault_plans_.end() ? default_fault_plan_ : it->second;
}

std::uint64_t Network::bytes_on_wire(const Envelope& envelope) const {
  return envelope.wire_bytes() +
         (faults_enabled_ ? Envelope::kCrcTrailerBytes : 0);
}

bool Network::intact(const Envelope& envelope) {
  return envelope.crc == crc32({envelope.payload.data(),
                                envelope.payload.size()});
}

void Network::corrupt_in_flight(Envelope& envelope) {
  if (envelope.payload.empty()) {
    envelope.crc ^= 1U + static_cast<std::uint32_t>(fault_rng_.uniform_u64(
                             0xFFFFFFFFULL));
    return;
  }
  const int flips = 1 + static_cast<int>(fault_rng_.uniform_u64(4));
  for (int f = 0; f < flips; ++f) {
    const std::size_t at = static_cast<std::size_t>(
        fault_rng_.uniform_u64(envelope.payload.size()));
    envelope.payload[at] ^=
        static_cast<std::uint8_t>(1 + fault_rng_.uniform_u64(255));
  }
}

// ---------------------------------------------------------------------------
// Arrival index maintenance. Inboxes are binary min-heaps; the global index
// is a second min-heap of node ids keyed by each inbox head, with a position
// table so a node's key change is a single O(log nodes) sift rather than a
// rebuild.

bool Network::head_before(NodeId a, NodeId b) const {
  const InFlight& fa = inbox_[a].front();
  const InFlight& fb = inbox_[b].front();
  return frame_before(fa.arrival, fa.sequence, fb.arrival, fb.sequence);
}

void Network::index_sift_up(std::size_t i) {
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    if (!head_before(index_heap_[i], index_heap_[parent])) break;
    std::swap(index_heap_[i], index_heap_[parent]);
    index_pos_[index_heap_[i]] = i;
    index_pos_[index_heap_[parent]] = parent;
    i = parent;
  }
}

void Network::index_sift_down(std::size_t i) {
  const std::size_t n = index_heap_.size();
  while (true) {
    const std::size_t left = 2 * i + 1;
    if (left >= n) break;
    std::size_t best = left;
    const std::size_t right = left + 1;
    if (right < n && head_before(index_heap_[right], index_heap_[left])) {
      best = right;
    }
    if (!head_before(index_heap_[best], index_heap_[i])) break;
    std::swap(index_heap_[i], index_heap_[best]);
    index_pos_[index_heap_[i]] = i;
    index_pos_[index_heap_[best]] = best;
    i = best;
  }
}

void Network::inbox_push(InFlight frame) {
  const NodeId node = frame.envelope.dst;
  auto& box = inbox_[node];
  // Standard binary-heap insertion: append, then sift the new frame up.
  box.push_back(std::move(frame));
  std::size_t i = box.size() - 1;
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    if (!frame_before(box[i].arrival, box[i].sequence, box[parent].arrival,
                      box[parent].sequence)) {
      break;
    }
    std::swap(box[i], box[parent]);
    i = parent;
  }
  ++in_flight_count_;
  if (index_pos_[node] == kNotIndexed) {
    index_heap_.push_back(node);
    index_pos_[node] = index_heap_.size() - 1;
    index_sift_up(index_pos_[node]);
  } else if (i == 0) {
    // The new frame became this inbox's head — the node's key decreased.
    index_sift_up(index_pos_[node]);
  }
}

Network::InFlight Network::inbox_pop(NodeId node) {
  auto& box = inbox_[node];
  SPLITMED_ASSERT(!box.empty(), "inbox_pop on an empty inbox");
  InFlight out = std::move(box.front());
  box.front() = std::move(box.back());
  box.pop_back();
  // Sift the relocated tail element down to restore the heap.
  std::size_t i = 0;
  const std::size_t n = box.size();
  while (true) {
    const std::size_t left = 2 * i + 1;
    if (left >= n) break;
    std::size_t best = left;
    const std::size_t right = left + 1;
    if (right < n && frame_before(box[right].arrival, box[right].sequence,
                                  box[left].arrival, box[left].sequence)) {
      best = right;
    }
    if (!frame_before(box[best].arrival, box[best].sequence, box[i].arrival,
                      box[i].sequence)) {
      break;
    }
    std::swap(box[i], box[best]);
    i = best;
  }
  --in_flight_count_;
  const std::size_t pos = index_pos_[node];
  if (box.empty()) {
    // Remove the node from the index: swap with the last slot and re-sift
    // the displaced node (its key is unchanged but its position moved).
    const NodeId moved = index_heap_.back();
    index_heap_.pop_back();
    index_pos_[node] = kNotIndexed;
    if (moved != node) {
      index_heap_[pos] = moved;
      index_pos_[moved] = pos;
      index_sift_up(pos);
      index_sift_down(index_pos_[moved]);
    }
  } else {
    // The inbox head changed to a later frame — the node's key increased.
    index_sift_down(pos);
  }
  return out;
}

void Network::index_rebuild() {
  index_heap_.clear();
  std::fill(index_pos_.begin(), index_pos_.end(), kNotIndexed);
  in_flight_count_ = 0;
  for (NodeId node = 0; node < inbox_.size(); ++node) {
    auto& box = inbox_[node];
    if (box.empty()) continue;
    in_flight_count_ += box.size();
    std::make_heap(box.begin(), box.end(),
                   [](const InFlight& a, const InFlight& b) {
                     // std::make_heap builds a max-heap under its comparator,
                     // so invert to get the (arrival, sequence) min at front.
                     return frame_before(b.arrival, b.sequence, a.arrival,
                                         a.sequence);
                   });
    index_heap_.push_back(node);
    index_pos_[node] = index_heap_.size() - 1;
    index_sift_up(index_pos_[node]);
  }
}

// ---------------------------------------------------------------------------

void Network::put_in_flight(Envelope envelope, double start, double arrival) {
  envelope.trace.flow_id = ++flow_next_;
  envelope.trace.sent_sim = start;
  obs_flow_start(nodes_, envelope, start);
  inbox_push(InFlight{arrival, sequence_++, std::move(envelope)});
}

void Network::send(Envelope envelope) {
  check_node(envelope.src);
  check_node(envelope.dst);
  SPLITMED_CHECK(envelope.src != envelope.dst,
                 "node " << envelope.src << " sending to itself");
  const Link& l = link(envelope.src, envelope.dst);
  const std::uint64_t bytes = bytes_on_wire(envelope);

  // The link serializes transmissions: start when it frees up.
  double& busy_until = link_busy_until_[{envelope.src, envelope.dst}];
  const double now = clock_.now();
  const double start = std::max(now, busy_until);
  const double serialization = l.serialization_time(bytes);
  busy_until = start + serialization;
  double arrival = busy_until + l.latency_sec;

  stats_.record(envelope, bytes);
  if (envelope.retransmit) stats_.record_retransmit(bytes);

  if (!faults_enabled_) {
    obs_send(nodes_, envelope, bytes, now, start, arrival);
    put_in_flight(std::move(envelope), start, arrival);
    return;
  }

  envelope.crc = crc32({envelope.payload.data(), envelope.payload.size()});
  const FaultPlan& plan = fault_plan(envelope.src, envelope.dst);
  bool drop = false;
  bool duplicate = false;
  if (plan.any()) {
    // Fixed draw order keeps the fault stream a pure function of the seed
    // and the send sequence.
    bool spiked = false;
    if (plan.delay_spike_rate > 0.0 &&
        fault_rng_.bernoulli(static_cast<float>(plan.delay_spike_rate))) {
      arrival += plan.delay_spike_sec;
      spiked = true;
    }
    duplicate = plan.duplicate_rate > 0.0 &&
                fault_rng_.bernoulli(static_cast<float>(plan.duplicate_rate));
    drop = plan.drop_rate > 0.0 &&
           fault_rng_.bernoulli(static_cast<float>(plan.drop_rate));
    const bool corrupt =
        plan.corrupt_rate > 0.0 &&
        fault_rng_.bernoulli(static_cast<float>(plan.corrupt_rate));

    obs_send(nodes_, envelope, bytes, now, start, arrival);
    if (spiked) obs_fault(nodes_, envelope, "delay_spike", start);

    if (duplicate) {
      // The extra copy re-serializes on the link right behind the original
      // (taken before any corruption — it is an independent transmission).
      Envelope copy = envelope;
      const double copy_start = busy_until;
      busy_until += serialization;
      const double copy_arrival = busy_until + l.latency_sec;
      stats_.record(copy, bytes);
      stats_.record_duplicate(bytes);
      obs_fault(nodes_, envelope, "duplicate", start);
      obs_send(nodes_, copy, bytes, now, copy_start, copy_arrival);
      if (drop) {
        stats_.record_dropped(bytes);
        obs_fault(nodes_, envelope, "drop", start);
      } else {
        if (corrupt) {
          corrupt_in_flight(envelope);
          obs_fault(nodes_, envelope, "corrupt", start);
        }
      }
      if (!drop) {
        put_in_flight(std::move(envelope), start, arrival);
      }
      put_in_flight(std::move(copy), copy_start, copy_arrival);
      return;
    }
    if (drop) {
      stats_.record_dropped(bytes);
      obs_fault(nodes_, envelope, "drop", start);
      return;
    }
    if (corrupt) {
      corrupt_in_flight(envelope);
      obs_fault(nodes_, envelope, "corrupt", start);
    }
  } else {
    obs_send(nodes_, envelope, bytes, now, start, arrival);
  }
  put_in_flight(std::move(envelope), start, arrival);
}

Envelope Network::receive(NodeId node) {
  check_node(node);
  while (true) {
    if (inbox_[node].empty()) {
      const std::string reason = "receive on node '" + nodes_[node] +
                                 "' with no message in flight";
      obs::postmortem(reason);
      throw ProtocolError(reason);
    }
    obs::CriticalPathAnalyzer* cp = obs::attribution();
    const double before = cp != nullptr ? clock_.now() : 0.0;
    InFlight f = inbox_pop(node);
    clock_.advance_to(f.arrival);
    Envelope out = std::move(f.envelope);
    if (!faults_enabled_ || intact(out)) {
      if (cp != nullptr) {
        obs_wait(cp, before, clock_.now(), out, /*corrupt_discarded=*/false);
      }
      obs_deliver(nodes_, out, clock_.now(), /*corrupt_discarded=*/false);
      return out;
    }
    stats_.record_corrupted(bytes_on_wire(out));
    if (cp != nullptr) {
      obs_wait(cp, before, clock_.now(), out, /*corrupt_discarded=*/true);
    }
    obs_deliver(nodes_, out, clock_.now(), /*corrupt_discarded=*/true);
  }
}

std::optional<Envelope> Network::try_receive(NodeId node) {
  check_node(node);
  while (true) {
    const auto& box = inbox_[node];
    if (box.empty() || box.front().arrival > clock_.now()) {
      return std::nullopt;
    }
    InFlight f = inbox_pop(node);
    const double arrived = f.arrival;
    Envelope out = std::move(f.envelope);
    if (!faults_enabled_ || intact(out)) {
      obs_deliver(nodes_, out, arrived, /*corrupt_discarded=*/false);
      return out;
    }
    stats_.record_corrupted(bytes_on_wire(out));
    obs_deliver(nodes_, out, arrived, /*corrupt_discarded=*/true);
  }
}

std::optional<Envelope> Network::receive_before(NodeId node, double deadline) {
  check_node(node);
  while (true) {
    const auto& box = inbox_[node];
    if (box.empty() || box.front().arrival > deadline) {
      return std::nullopt;
    }
    obs::CriticalPathAnalyzer* cp = obs::attribution();
    const double before = cp != nullptr ? clock_.now() : 0.0;
    InFlight f = inbox_pop(node);
    clock_.advance_to(f.arrival);
    Envelope out = std::move(f.envelope);
    if (!faults_enabled_ || intact(out)) {
      if (cp != nullptr) {
        obs_wait(cp, before, clock_.now(), out, /*corrupt_discarded=*/false);
      }
      obs_deliver(nodes_, out, clock_.now(), /*corrupt_discarded=*/false);
      return out;
    }
    stats_.record_corrupted(bytes_on_wire(out));
    if (cp != nullptr) {
      obs_wait(cp, before, clock_.now(), out, /*corrupt_discarded=*/true);
    }
    obs_deliver(nodes_, out, clock_.now(), /*corrupt_discarded=*/true);
  }
}

std::optional<double> Network::next_arrival(NodeId node) const {
  check_node(node);
  const auto& box = inbox_[node];
  if (box.empty()) return std::nullopt;
  return box.front().arrival;
}

std::optional<NextEvent> Network::next_event() const {
  if (index_heap_.empty()) return std::nullopt;
  const NodeId node = index_heap_.front();
  return NextEvent{inbox_[node].front().arrival, node};
}

std::size_t Network::pending(NodeId node) const {
  SPLITMED_CHECK(node < nodes_.size(), "unknown node id " << node);
  return inbox_[node].size();
}

void Network::save_state(BufferWriter& writer) const {
  writer.write_u32(static_cast<std::uint32_t>(nodes_.size()));
  writer.write_f64(clock_.now());
  writer.write_u64(sequence_);
  writer.write_u32(static_cast<std::uint32_t>(link_busy_until_.size()));
  for (const auto& [pair, busy_until] : link_busy_until_) {
    writer.write_u32(pair.first);
    writer.write_u32(pair.second);
    writer.write_f64(busy_until);
  }
  // In-flight frames, per destination inbox, in (arrival, sequence) order —
  // deterministic regardless of the heap's internal array layout. Fault-free
  // round boundaries are quiescent and write zero entries; under WAN fault
  // injection, late duplicates and post-timeout replies legitimately
  // straddle the boundary and MUST travel with the checkpoint — the resumed
  // run has to deliver (and ignore) exactly the frames the uninterrupted run
  // would have.
  for (const auto& box : inbox_) {
    writer.write_u32(static_cast<std::uint32_t>(box.size()));
    std::vector<const InFlight*> ordered;
    ordered.reserve(box.size());
    for (const InFlight& f : box) ordered.push_back(&f);
    std::sort(ordered.begin(), ordered.end(),
              [](const InFlight* a, const InFlight* b) {
                return frame_before(a->arrival, a->sequence, b->arrival,
                                    b->sequence);
              });
    for (const InFlight* f : ordered) {
      writer.write_f64(f->arrival);
      writer.write_u64(f->sequence);
      encode_envelope(f->envelope, writer);
    }
  }
  encode_rng(fault_rng_, writer);
  stats_.save_state(writer);
}

void Network::load_state(BufferReader& reader) {
  SPLITMED_CHECK(quiescent(),
                 "Network::load_state requires an empty network");
  const std::uint32_t node_count = reader.read_u32();
  if (node_count != nodes_.size()) {
    throw SerializationError("Network state: checkpoint has " +
                             std::to_string(node_count) + " nodes, network " +
                             "has " + std::to_string(nodes_.size()));
  }
  const double now = reader.read_f64();
  if (!(now >= 0.0)) {  // also rejects NaN
    throw SerializationError("Network state: invalid clock time");
  }
  const std::uint64_t sequence = reader.read_u64();
  const std::uint32_t n_busy = reader.read_u32();
  std::map<std::pair<NodeId, NodeId>, double> busy;
  for (std::uint32_t i = 0; i < n_busy; ++i) {
    const NodeId src = reader.read_u32();
    const NodeId dst = reader.read_u32();
    if (src >= nodes_.size() || dst >= nodes_.size()) {
      throw SerializationError("Network state: busy-link node id out of "
                               "range");
    }
    busy[{src, dst}] = reader.read_f64();
  }
  std::vector<std::vector<InFlight>> inbox(nodes_.size());
  constexpr std::uint32_t kMaxInFlight = 1U << 20;
  for (std::size_t node = 0; node < nodes_.size(); ++node) {
    const std::uint32_t n_flight = reader.read_u32();
    if (n_flight > kMaxInFlight) {
      throw SerializationError("Network state: absurd in-flight count " +
                               std::to_string(n_flight));
    }
    inbox[node].reserve(n_flight);
    for (std::uint32_t i = 0; i < n_flight; ++i) {
      InFlight f;
      f.arrival = reader.read_f64();
      if (!(f.arrival >= 0.0)) {  // also rejects NaN
        throw SerializationError("Network state: invalid arrival time");
      }
      f.sequence = reader.read_u64();
      f.envelope = decode_envelope(reader);
      if (f.envelope.dst != node || f.envelope.src >= nodes_.size()) {
        throw SerializationError(
            "Network state: in-flight frame routed to the wrong inbox");
      }
      inbox[node].push_back(std::move(f));
    }
  }
  Rng fault_rng = fault_rng_;
  decode_rng(reader, fault_rng);
  TrafficStats stats;
  stats.load_state(reader);
  clock_.reset();
  clock_.advance_to(now);
  sequence_ = sequence;
  link_busy_until_ = std::move(busy);
  inbox_ = std::move(inbox);
  index_rebuild();
  fault_rng_ = fault_rng;
  stats_ = std::move(stats);
}

}  // namespace splitmed::net
