#include "src/net/network.hpp"

#include <algorithm>

#include "src/common/error.hpp"

namespace splitmed::net {

NodeId Network::add_node(std::string name) {
  nodes_.push_back(std::move(name));
  inbox_.emplace_back();
  return static_cast<NodeId>(nodes_.size() - 1);
}

const std::string& Network::node_name(NodeId id) const {
  check_node(id);
  return nodes_[id];
}

void Network::check_node(NodeId id) const {
  SPLITMED_CHECK(id < nodes_.size(), "unknown node id " << id);
}

void Network::set_link(NodeId a, NodeId b, Link link) {
  check_node(a);
  check_node(b);
  SPLITMED_CHECK(a != b, "cannot set a self-link");
  links_[{a, b}] = link;
  links_[{b, a}] = link;
}

const Link& Network::link(NodeId src, NodeId dst) const {
  const auto it = links_.find({src, dst});
  return it == links_.end() ? default_link_ : it->second;
}

void Network::send(Envelope envelope) {
  check_node(envelope.src);
  check_node(envelope.dst);
  SPLITMED_CHECK(envelope.src != envelope.dst,
                 "node " << envelope.src << " sending to itself");
  const Link& l = link(envelope.src, envelope.dst);
  const std::uint64_t bytes = envelope.wire_bytes();

  // The link serializes transmissions: start when it frees up.
  double& busy_until = link_busy_until_[{envelope.src, envelope.dst}];
  const double start = std::max(clock_.now(), busy_until);
  const double serialization =
      static_cast<double>(bytes) / l.bandwidth_bytes_per_sec;
  busy_until = start + serialization;
  const double arrival = busy_until + l.latency_sec;

  stats_.record(envelope);
  inbox_[envelope.dst].push_back(
      InFlight{arrival, sequence_++, std::move(envelope)});
}

Envelope Network::receive(NodeId node) {
  check_node(node);
  auto& box = inbox_[node];
  if (box.empty()) {
    throw ProtocolError("receive on node '" + nodes_[node] +
                        "' with no message in flight");
  }
  const auto it = std::min_element(
      box.begin(), box.end(), [](const InFlight& a, const InFlight& b) {
        return a.arrival != b.arrival ? a.arrival < b.arrival
                                      : a.sequence < b.sequence;
      });
  clock_.advance_to(it->arrival);
  Envelope out = std::move(it->envelope);
  box.erase(it);
  return out;
}

std::optional<Envelope> Network::try_receive(NodeId node) {
  check_node(node);
  auto& box = inbox_[node];
  auto best = box.end();
  for (auto it = box.begin(); it != box.end(); ++it) {
    if (it->arrival > clock_.now()) continue;
    if (best == box.end() || it->arrival < best->arrival ||
        (it->arrival == best->arrival && it->sequence < best->sequence)) {
      best = it;
    }
  }
  if (best == box.end()) return std::nullopt;
  Envelope out = std::move(best->envelope);
  box.erase(best);
  return out;
}

std::size_t Network::pending(NodeId node) const {
  SPLITMED_CHECK(node < nodes_.size(), "unknown node id " << node);
  return inbox_[node].size();
}

}  // namespace splitmed::net
