// Traffic accounting — the ground truth behind every communication figure.
//
// Counts messages and wire bytes per (src, dst) pair and per message kind.
// Fig. 4's x-axis is total_bytes() over a training run. Under WAN fault
// injection the fault counters (retransmit / duplicate / dropped /
// corrupted) separate goodput — bytes that carried novel, intact protocol
// payload — from total wire bytes.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "src/serial/buffer.hpp"
#include "src/serial/message.hpp"

namespace splitmed::net {

class TrafficStats {
 public:
  /// Accounts one transmission. `bytes_on_wire` is what the link carried
  /// (envelope wire bytes plus the CRC trailer on fault-injecting networks).
  void record(const Envelope& envelope, std::uint64_t bytes_on_wire);
  void record(const Envelope& envelope) {
    record(envelope, envelope.wire_bytes());
  }

  /// Fault-channel events (all byte counts are bytes_on_wire):
  void record_retransmit(std::uint64_t bytes);  // protocol-level re-send
  void record_duplicate(std::uint64_t bytes);   // link-injected extra copy
  void record_dropped(std::uint64_t bytes);     // lost in flight
  void record_corrupted(std::uint64_t bytes);   // CRC mismatch at delivery

  [[nodiscard]] std::uint64_t total_bytes() const { return total_bytes_; }
  [[nodiscard]] std::uint64_t total_messages() const { return total_messages_; }

  [[nodiscard]] std::uint64_t retransmits() const { return retransmits_; }
  [[nodiscard]] std::uint64_t retransmit_bytes() const {
    return retransmit_bytes_;
  }
  [[nodiscard]] std::uint64_t duplicates() const { return duplicates_; }
  [[nodiscard]] std::uint64_t duplicate_bytes() const {
    return duplicate_bytes_;
  }
  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }
  [[nodiscard]] std::uint64_t dropped_bytes() const { return dropped_bytes_; }
  [[nodiscard]] std::uint64_t corrupted() const { return corrupted_; }
  [[nodiscard]] std::uint64_t corrupted_bytes() const {
    return corrupted_bytes_;
  }

  /// Wire bytes minus the copies known to have carried nothing useful:
  /// dropped and corrupted frames never reached protocol code, and injected
  /// duplicates repeat a frame already on the wire. Retransmissions are NOT
  /// subtracted — a retransmission is often the copy that gets through (its
  /// lost predecessor is already in dropped/corrupted). Fault-free runs:
  /// goodput == total.
  [[nodiscard]] std::uint64_t goodput_bytes() const {
    return total_bytes_ - dropped_bytes_ - corrupted_bytes_ -
           duplicate_bytes_;
  }

  /// Bytes carried by messages of one protocol kind.
  [[nodiscard]] std::uint64_t bytes_for_kind(std::uint32_t kind) const;
  [[nodiscard]] std::uint64_t messages_for_kind(std::uint32_t kind) const;

  /// Bytes that crossed the (src -> dst) direction.
  [[nodiscard]] std::uint64_t bytes_between(NodeId src, NodeId dst) const;

  /// Per-kind byte map (kind -> bytes), for reports.
  [[nodiscard]] const std::map<std::uint32_t, std::uint64_t>& bytes_by_kind()
      const {
    return by_kind_bytes_;
  }

  /// Bytes / messages carried under one payload codec (Envelope::codec —
  /// the negotiated tensor encoding; non-tensor messages count as kF32).
  [[nodiscard]] std::uint64_t bytes_for_codec(WireCodec codec) const;
  [[nodiscard]] std::uint64_t messages_for_codec(WireCodec codec) const;

  /// Per-codec byte map (codec tag -> bytes), for reports.
  [[nodiscard]] const std::map<std::uint8_t, std::uint64_t>& bytes_by_codec()
      const {
    return by_codec_bytes_;
  }

  void reset();

  /// Serializes every counter and per-kind/per-pair map, so a resumed run's
  /// communication report continues the original byte series exactly.
  void save_state(BufferWriter& writer) const;

  /// Mirror of save_state; replaces all counters. Throws SerializationError
  /// on malformed input.
  void load_state(BufferReader& reader);

 private:
  std::uint64_t total_bytes_ = 0;
  std::uint64_t total_messages_ = 0;
  std::uint64_t retransmits_ = 0;
  std::uint64_t retransmit_bytes_ = 0;
  std::uint64_t duplicates_ = 0;
  std::uint64_t duplicate_bytes_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t dropped_bytes_ = 0;
  std::uint64_t corrupted_ = 0;
  std::uint64_t corrupted_bytes_ = 0;
  std::map<std::uint32_t, std::uint64_t> by_kind_bytes_;
  std::map<std::uint32_t, std::uint64_t> by_kind_messages_;
  std::map<std::pair<NodeId, NodeId>, std::uint64_t> by_pair_bytes_;
  std::map<std::uint8_t, std::uint64_t> by_codec_bytes_;
  std::map<std::uint8_t, std::uint64_t> by_codec_messages_;
};

}  // namespace splitmed::net
