// Traffic accounting — the ground truth behind every communication figure.
//
// Counts messages and wire bytes per (src, dst) pair and per message kind.
// Fig. 4's x-axis is total_bytes() over a training run.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "src/serial/message.hpp"

namespace splitmed::net {

class TrafficStats {
 public:
  void record(const Envelope& envelope);

  [[nodiscard]] std::uint64_t total_bytes() const { return total_bytes_; }
  [[nodiscard]] std::uint64_t total_messages() const { return total_messages_; }

  /// Bytes carried by messages of one protocol kind.
  [[nodiscard]] std::uint64_t bytes_for_kind(std::uint32_t kind) const;
  [[nodiscard]] std::uint64_t messages_for_kind(std::uint32_t kind) const;

  /// Bytes that crossed the (src -> dst) direction.
  [[nodiscard]] std::uint64_t bytes_between(NodeId src, NodeId dst) const;

  /// Per-kind byte map (kind -> bytes), for reports.
  [[nodiscard]] const std::map<std::uint32_t, std::uint64_t>& bytes_by_kind()
      const {
    return by_kind_bytes_;
  }

  void reset();

 private:
  std::uint64_t total_bytes_ = 0;
  std::uint64_t total_messages_ = 0;
  std::map<std::uint32_t, std::uint64_t> by_kind_bytes_;
  std::map<std::uint32_t, std::uint64_t> by_kind_messages_;
  std::map<std::pair<NodeId, NodeId>, std::uint64_t> by_pair_bytes_;
};

}  // namespace splitmed::net
