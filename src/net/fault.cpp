#include "src/net/fault.hpp"

#include "src/common/error.hpp"

namespace splitmed::net {

namespace {

void check_rate(double rate, const char* name) {
  SPLITMED_CHECK(rate >= 0.0 && rate <= 1.0,
                 name << " must be in [0, 1], got " << rate);
}

}  // namespace

bool FaultPlan::any() const {
  return drop_rate > 0.0 || duplicate_rate > 0.0 || corrupt_rate > 0.0 ||
         delay_spike_rate > 0.0;
}

void FaultPlan::validate() const {
  check_rate(drop_rate, "drop_rate");
  check_rate(duplicate_rate, "duplicate_rate");
  check_rate(corrupt_rate, "corrupt_rate");
  check_rate(delay_spike_rate, "delay_spike_rate");
  SPLITMED_CHECK(delay_spike_sec >= 0.0, "delay_spike_sec must be >= 0");
}

void RetryPolicy::validate() const {
  SPLITMED_CHECK(timeout_sec > 0.0, "timeout_sec must be > 0");
  SPLITMED_CHECK(backoff >= 1.0, "backoff must be >= 1");
  SPLITMED_CHECK(max_retries >= 0, "max_retries must be >= 0");
}

}  // namespace splitmed::net
