#include "src/net/link.hpp"

#include "src/common/error.hpp"

namespace splitmed::net {

double Link::transfer_time(std::uint64_t bytes) const {
  SPLITMED_CHECK(bandwidth_bytes_per_sec > 0.0, "link bandwidth must be > 0");
  SPLITMED_CHECK(latency_sec >= 0.0, "link latency must be >= 0");
  return latency_sec + serialization_time(bytes);
}

Link Link::mbps(double megabits_per_sec, double latency_ms) {
  return Link{megabits_per_sec * 1e6 / 8.0, latency_ms * 1e-3};
}

Link Link::gbps(double gigabits_per_sec, double latency_ms) {
  return Link{gigabits_per_sec * 1e9 / 8.0, latency_ms * 1e-3};
}

}  // namespace splitmed::net
