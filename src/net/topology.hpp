// Geo-distributed topology presets.
//
// The paper's deployment scenario is K hospitals and one central server
// connected over a WAN (its future-work names Seoul National University
// Hospitals). GeoTopology builds a star: one server node plus K platform
// nodes with heterogeneous WAN links drawn from realistic hospital-to-
// datacenter profiles.
#pragma once

#include <string>
#include <vector>

#include "src/net/network.hpp"

namespace splitmed::net {

struct StarTopology {
  NodeId server = 0;
  std::vector<NodeId> platforms;
};

/// Per-platform WAN profile.
struct WanProfile {
  std::string name;
  double bandwidth_mbps = 0.0;
  double latency_ms = 0.0;
};

/// Eight metro-hospital profiles (bandwidth 200..1000 Mbps, latency
/// 5..60 ms); selected round-robin when num_platforms > 8.
const std::vector<WanProfile>& hospital_wan_profiles();

/// Builds the star into `network`: adds 1 server + K platforms and installs
/// heterogeneous links per hospital_wan_profiles().
StarTopology build_hospital_star(Network& network, std::int64_t num_platforms);

/// Same star but every link identical — for controlled experiments where
/// heterogeneity is a confounder.
StarTopology build_uniform_star(Network& network, std::int64_t num_platforms,
                                Link link);

}  // namespace splitmed::net
