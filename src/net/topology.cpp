#include "src/net/topology.hpp"

#include "src/common/error.hpp"

namespace splitmed::net {

const std::vector<WanProfile>& hospital_wan_profiles() {
  static const std::vector<WanProfile> kProfiles = {
      {"metro-hospital-a", 1000.0, 5.0},  {"metro-hospital-b", 600.0, 8.0},
      {"regional-clinic-a", 400.0, 15.0}, {"regional-clinic-b", 300.0, 20.0},
      {"rural-hospital-a", 200.0, 35.0},  {"rural-hospital-b", 200.0, 45.0},
      {"research-institute", 800.0, 12.0}, {"overseas-partner", 250.0, 60.0},
  };
  return kProfiles;
}

StarTopology build_hospital_star(Network& network,
                                 std::int64_t num_platforms) {
  SPLITMED_CHECK(num_platforms > 0, "need at least one platform");
  StarTopology topo;
  topo.server = network.add_node("central-server");
  const auto& profiles = hospital_wan_profiles();
  for (std::int64_t k = 0; k < num_platforms; ++k) {
    const WanProfile& p = profiles[static_cast<std::size_t>(k) %
                                   profiles.size()];
    const NodeId id = network.add_node(p.name + "-" + std::to_string(k));
    network.set_link(id, topo.server,
                     Link::mbps(p.bandwidth_mbps, p.latency_ms));
    topo.platforms.push_back(id);
  }
  return topo;
}

StarTopology build_uniform_star(Network& network, std::int64_t num_platforms,
                                Link link) {
  SPLITMED_CHECK(num_platforms > 0, "need at least one platform");
  StarTopology topo;
  topo.server = network.add_node("central-server");
  for (std::int64_t k = 0; k < num_platforms; ++k) {
    const NodeId id = network.add_node("platform-" + std::to_string(k));
    network.set_link(id, topo.server, link);
    topo.platforms.push_back(id);
  }
  return topo;
}

}  // namespace splitmed::net
