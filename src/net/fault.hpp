// WAN failure model — seeded, deterministic fault injection per directed link.
//
// The paper's deployment is hospitals on real WANs, where links drop,
// duplicate, delay, and corrupt frames. A FaultPlan attaches those behaviours
// to a link; every decision is drawn from the Network's dedicated fault Rng,
// so a faulted run is exactly reproducible from its seed. An all-zero plan
// is inert: it changes no byte, no arrival time, and consumes no randomness
// (the determinism contract in docs/PROTOCOL.md).
#pragma once

#include <cstdint>

namespace splitmed::net {

struct FaultPlan {
  /// Probability a transmission is lost in flight (still occupies the link
  /// and is byte-accounted — the sender paid for it).
  double drop_rate = 0.0;
  /// Probability an extra copy of the frame is injected right behind the
  /// original (re-serializes on the same link).
  double duplicate_rate = 0.0;
  /// Probability the frame's payload is bit-flipped in flight. Detected by
  /// the CRC-32 trailer at the receiver and discarded, never delivered.
  double corrupt_rate = 0.0;
  /// Probability the frame's arrival is delayed by delay_spike_sec
  /// (congestion / rerouting spike on top of the deterministic link model).
  double delay_spike_rate = 0.0;
  double delay_spike_sec = 1.0;

  /// True when any fault behaviour is active.
  [[nodiscard]] bool any() const;

  /// Throws InvalidArgument unless all rates are probabilities and the
  /// spike duration is non-negative.
  void validate() const;
};

/// Client-side recovery parameters for the split protocol under faults:
/// a platform that sent a request re-sends it when no reply lands within
/// the (simulated-time) timeout, backing off exponentially; after
/// max_retries unanswered retransmissions the trainer folds the platform
/// into the round's non-participants instead of aborting training.
struct RetryPolicy {
  /// First-attempt reply timeout in simulated seconds.
  double timeout_sec = 30.0;
  /// Timeout multiplier applied after each retransmission.
  double backoff = 2.0;
  /// Retransmissions before the platform is skipped for the round.
  int max_retries = 5;

  void validate() const;
};

}  // namespace splitmed::net
