// Point-to-point link model: fixed propagation latency plus serialization
// delay at a given bandwidth. Deterministic — no jitter — so byte and time
// accounting are exactly reproducible.
#pragma once

#include <cstdint>

namespace splitmed::net {

struct Link {
  /// Usable bandwidth in bytes per second (not bits).
  double bandwidth_bytes_per_sec = 125e6;  // 1 Gbps default
  /// One-way propagation latency in seconds.
  double latency_sec = 0.0;

  /// Time to clock `bytes` onto the wire at this bandwidth (no latency).
  [[nodiscard]] double serialization_time(std::uint64_t bytes) const {
    return static_cast<double>(bytes) / bandwidth_bytes_per_sec;
  }

  /// Time between send start and full arrival of `bytes`.
  [[nodiscard]] double transfer_time(std::uint64_t bytes) const;

  /// Convenience constructors in conventional units.
  static Link mbps(double megabits_per_sec, double latency_ms);
  static Link gbps(double gigabits_per_sec, double latency_ms);
};

}  // namespace splitmed::net
