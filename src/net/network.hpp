// Deterministic simulated network.
//
// Nodes exchange Envelopes over point-to-point links. Each directed link
// serializes transmissions (a second message on the same link waits for the
// first), models bandwidth + latency, and every envelope is byte-accounted in
// TrafficStats. Delivery order per receiving node is by arrival time, with
// send order as the tie-breaker — deterministic for equal inputs.
//
// The transport is in-process and synchronous by design (DESIGN.md decision
// #2): protocol code sees only send()/receive(), so a socket transport could
// replace this class without touching the trainers.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "src/net/link.hpp"
#include "src/net/sim_clock.hpp"
#include "src/net/traffic_stats.hpp"
#include "src/serial/message.hpp"

namespace splitmed::net {

class Network {
 public:
  /// Registers a node; ids are dense and start at 0.
  NodeId add_node(std::string name);

  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }
  [[nodiscard]] const std::string& node_name(NodeId id) const;

  /// Link used for a directed pair without an explicit override.
  void set_default_link(Link link) { default_link_ = link; }
  /// Overrides the link for both directions between a and b.
  void set_link(NodeId a, NodeId b, Link link);
  [[nodiscard]] const Link& link(NodeId src, NodeId dst) const;

  /// Sends an envelope from envelope.src to envelope.dst. The transmission
  /// starts at the current simulated time (or when the link frees up) and is
  /// accounted immediately.
  void send(Envelope envelope);

  /// Receives the earliest message addressed to `node`, advancing the clock
  /// to its arrival time. Throws ProtocolError if none is in flight —
  /// in a synchronous protocol that is always a bug.
  Envelope receive(NodeId node);

  /// Receives only if a message for `node` has already arrived (clock not
  /// advanced). Used by tests.
  std::optional<Envelope> try_receive(NodeId node);

  /// Number of in-flight + queued messages for a node.
  [[nodiscard]] std::size_t pending(NodeId node) const;

  [[nodiscard]] SimClock& clock() { return clock_; }
  [[nodiscard]] const SimClock& clock() const { return clock_; }
  [[nodiscard]] TrafficStats& stats() { return stats_; }
  [[nodiscard]] const TrafficStats& stats() const { return stats_; }

 private:
  struct InFlight {
    double arrival = 0.0;
    std::uint64_t sequence = 0;  // send order tie-breaker
    Envelope envelope;
  };

  void check_node(NodeId id) const;

  std::vector<std::string> nodes_;
  Link default_link_{};
  std::map<std::pair<NodeId, NodeId>, Link> links_;
  std::map<std::pair<NodeId, NodeId>, double> link_busy_until_;
  std::vector<std::vector<InFlight>> inbox_;  // per destination node
  std::uint64_t sequence_ = 0;
  SimClock clock_;
  TrafficStats stats_;
};

}  // namespace splitmed::net
