// Deterministic simulated network.
//
// Nodes exchange Envelopes over point-to-point links. Each directed link
// serializes transmissions (a second message on the same link waits for the
// first), models bandwidth + latency, and every envelope is byte-accounted in
// TrafficStats. Delivery order per receiving node is by arrival time, with
// send order as the tie-breaker — deterministic for equal inputs.
//
// Arrival indexing: each node's inbox is a binary min-heap ordered by
// (arrival, sequence), and a global indexed min-heap over the inbox heads
// answers "which node receives next" in O(1) (next_event). receive/send are
// O(log n) in the inbox size; the global index holds each non-empty node
// exactly once, so its size is bounded by the node count — no lazy-deletion
// growth. This is what lets an event-driven trainer scale to thousands of
// platforms (the old linear-scanned inboxes made every delivery O(inbox)).
//
// WAN fault injection (extension): a FaultPlan attached per directed link (or
// as the network default) drops, duplicates, delay-spikes, and bit-corrupts
// frames, all driven by a dedicated seeded Rng so faulted runs are exactly
// reproducible. When any plan is active every frame additionally carries a
// CRC-32 trailer (4 accounted bytes); frames whose trailer fails at delivery
// are counted and discarded, never handed to protocol code. With no active
// plan the fault path is never consulted and behaviour is bit-identical to a
// fault-free network.
//
// The transport is in-process and synchronous by design (DESIGN.md decision
// #2): protocol code sees only send()/receive(), so a socket transport could
// replace this class without touching the trainers.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "src/common/rng.hpp"
#include "src/net/fault.hpp"
#include "src/net/link.hpp"
#include "src/net/sim_clock.hpp"
#include "src/net/traffic_stats.hpp"
#include "src/serial/message.hpp"

namespace splitmed::net {

/// The head of the global arrival index: the earliest in-flight frame across
/// every inbox, identified by its destination node and arrival time.
struct NextEvent {
  double arrival = 0.0;
  NodeId node = 0;
};

class Network {
 public:
  /// Registers a node; ids are dense and start at 0.
  NodeId add_node(std::string name);

  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }
  [[nodiscard]] const std::string& node_name(NodeId id) const;

  /// Link used for a directed pair without an explicit override.
  void set_default_link(Link link) { default_link_ = link; }
  /// Overrides the link for both directions between a and b.
  void set_link(NodeId a, NodeId b, Link link);
  [[nodiscard]] const Link& link(NodeId src, NodeId dst) const;

  /// Fault plan used for a directed pair without an explicit override.
  void set_default_fault_plan(FaultPlan plan);
  /// Overrides the fault plan for the directed link src -> dst only (WAN
  /// impairments are frequently asymmetric).
  void set_fault_plan(NodeId src, NodeId dst, FaultPlan plan);
  [[nodiscard]] const FaultPlan& fault_plan(NodeId src, NodeId dst) const;
  /// Seeds the dedicated fault Rng (independent of every training stream).
  void set_fault_seed(std::uint64_t seed) { fault_rng_ = Rng(seed); }
  /// True when any attached plan has a nonzero rate — the switch that turns
  /// on the CRC trailer and its 4-byte-per-frame accounting.
  [[nodiscard]] bool faults_enabled() const { return faults_enabled_; }

  /// Sends an envelope from envelope.src to envelope.dst. The transmission
  /// starts at the current simulated time (or when the link frees up) and is
  /// accounted immediately; link faults are applied here.
  void send(Envelope envelope);

  /// Receives the earliest message addressed to `node`, advancing the clock
  /// to its arrival time. Throws ProtocolError if none is in flight —
  /// in a synchronous protocol that is always a bug. Corrupted frames are
  /// counted, discarded, and skipped.
  Envelope receive(NodeId node);

  /// Receives only if a message for `node` has already arrived (clock not
  /// advanced). Used by tests.
  std::optional<Envelope> try_receive(NodeId node);

  /// Receives the earliest intact message for `node` arriving at or before
  /// `deadline`, advancing the clock to its arrival; returns nullopt when
  /// none qualifies. Corrupted frames arriving in the window are counted and
  /// discarded (the clock does advance past them — the receiver observed
  /// the bad frame). The recovery protocol's timeout primitive.
  std::optional<Envelope> receive_before(NodeId node, double deadline);

  /// Arrival time of the earliest in-flight message for `node` (corrupt or
  /// not), or nullopt when its inbox is empty. O(1) — the inbox head.
  [[nodiscard]] std::optional<double> next_arrival(NodeId node) const;

  /// The globally earliest in-flight frame across every node, or nullopt
  /// when nothing is in flight. O(1) — the head of the arrival index. The
  /// event-driven scheduler's only polling primitive: "who receives next".
  [[nodiscard]] std::optional<NextEvent> next_event() const;

  /// Number of in-flight + queued messages for a node.
  [[nodiscard]] std::size_t pending(NodeId node) const;

  /// Total frames in flight across every inbox (the event-queue depth).
  [[nodiscard]] std::size_t total_in_flight() const {
    return in_flight_count_;
  }

  [[nodiscard]] SimClock& clock() { return clock_; }
  [[nodiscard]] const SimClock& clock() const { return clock_; }
  [[nodiscard]] TrafficStats& stats() { return stats_; }
  [[nodiscard]] const TrafficStats& stats() const { return stats_; }

  /// True when no message is in flight to any node. Fault-free round
  /// boundaries are always quiescent; under fault injection, late duplicates
  /// may straddle a boundary (they are checkpointed, see save_state).
  [[nodiscard]] bool quiescent() const { return in_flight_count_ == 0; }

  /// Serializes the dynamic transport state: clock, send sequence, per-link
  /// busy times, every in-flight frame (fault injection legitimately leaves
  /// late duplicates straddling a round boundary — a resumed run must
  /// deliver exactly what the uninterrupted run would have), the fault Rng,
  /// and TrafficStats. In-flight frames are written in (arrival, sequence)
  /// order, so the byte stream is independent of inbox heap layout.
  /// Topology, links, and fault plans are NOT serialized — they are
  /// reconstructed from config, so a checkpoint cannot smuggle in a
  /// different network.
  void save_state(BufferWriter& writer) const;

  /// Mirror of save_state; requires the same node set and an empty inbox set
  /// on THIS network (the restore target is always freshly built). Throws
  /// SerializationError on malformed input, out-of-range node ids, or
  /// misrouted in-flight frames.
  void load_state(BufferReader& reader);

 private:
  struct InFlight {
    double arrival = 0.0;
    std::uint64_t sequence = 0;  // send order tie-breaker
    Envelope envelope;
  };

  void check_node(NodeId id) const;
  /// Final enqueue of a frame whose transmission window [start, arrival) is
  /// settled: stamps the sideband trace context (fresh flow id, flight
  /// start), emits the flow-start trace event, and pushes the frame. Every
  /// physical frame put in flight — including injected duplicates — passes
  /// through here exactly once; dropped frames never do (no flow, no
  /// orphaned flow-start).
  void put_in_flight(Envelope envelope, double start, double arrival);
  /// Bytes a frame occupies on the wire (adds the CRC trailer when faults
  /// are enabled).
  [[nodiscard]] std::uint64_t bytes_on_wire(const Envelope& envelope) const;
  /// True when the frame's CRC trailer still matches its payload.
  [[nodiscard]] static bool intact(const Envelope& envelope);
  /// Flips 1-4 payload bytes (or the trailer itself for empty payloads).
  void corrupt_in_flight(Envelope& envelope);

  /// Inserts a frame into its destination inbox heap and updates the global
  /// arrival index. O(log inbox + log nodes).
  void inbox_push(InFlight frame);
  /// Pops the earliest frame of `node`'s inbox heap (which must be
  /// non-empty) and updates the global arrival index.
  InFlight inbox_pop(NodeId node);
  /// True when node a's inbox head sorts before node b's (both non-empty).
  [[nodiscard]] bool head_before(NodeId a, NodeId b) const;
  void index_sift_up(std::size_t i);
  void index_sift_down(std::size_t i);
  /// Rebuilds the global arrival index from scratch (after load_state).
  void index_rebuild();

  std::vector<std::string> nodes_;
  Link default_link_{};
  std::map<std::pair<NodeId, NodeId>, Link> links_;
  FaultPlan default_fault_plan_{};
  std::map<std::pair<NodeId, NodeId>, FaultPlan> fault_plans_;
  bool faults_enabled_ = false;
  Rng fault_rng_{0x57A8F001DULL};
  std::map<std::pair<NodeId, NodeId>, double> link_busy_until_;
  /// Per-destination inbox, maintained as a binary min-heap ordered by
  /// (arrival, sequence) — element 0 is the next delivery for that node.
  std::vector<std::vector<InFlight>> inbox_;
  /// Global arrival index: node ids arranged as a binary min-heap keyed by
  /// each node's inbox head; `index_pos_[n]` is n's slot (kNotIndexed when
  /// the inbox is empty). Every non-empty node appears exactly once.
  std::vector<NodeId> index_heap_;
  std::vector<std::size_t> index_pos_;
  std::size_t in_flight_count_ = 0;
  std::uint64_t sequence_ = 0;
  /// Flow-id source for the sideband trace context: incremented for every
  /// frame actually put in flight, a pure function of the send sequence and
  /// the (seeded) fault draws — identical with observability on or off.
  /// NOT serialized (the context is sideband): frames restored from a
  /// checkpoint carry flow id 0 and emit no flow events.
  std::uint64_t flow_next_ = 0;
  SimClock clock_;
  TrafficStats stats_;
};

}  // namespace splitmed::net
