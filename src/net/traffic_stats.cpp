#include "src/net/traffic_stats.hpp"

#include "src/common/error.hpp"

namespace splitmed::net {
namespace {

template <typename Key, typename WriteKey>
void write_map(BufferWriter& w,
               const std::map<Key, std::uint64_t>& m,
               WriteKey&& write_key) {
  w.write_u32(static_cast<std::uint32_t>(m.size()));
  for (const auto& [key, value] : m) {
    write_key(key);
    w.write_u64(value);
  }
}

}  // namespace

void TrafficStats::record(const Envelope& envelope,
                          std::uint64_t bytes_on_wire) {
  total_bytes_ += bytes_on_wire;
  ++total_messages_;
  by_kind_bytes_[envelope.kind] += bytes_on_wire;
  ++by_kind_messages_[envelope.kind];
  by_pair_bytes_[{envelope.src, envelope.dst}] += bytes_on_wire;
  const auto codec = static_cast<std::uint8_t>(envelope.codec);
  by_codec_bytes_[codec] += bytes_on_wire;
  ++by_codec_messages_[codec];
}

void TrafficStats::record_retransmit(std::uint64_t bytes) {
  ++retransmits_;
  retransmit_bytes_ += bytes;
}

void TrafficStats::record_duplicate(std::uint64_t bytes) {
  ++duplicates_;
  duplicate_bytes_ += bytes;
}

void TrafficStats::record_dropped(std::uint64_t bytes) {
  ++dropped_;
  dropped_bytes_ += bytes;
}

void TrafficStats::record_corrupted(std::uint64_t bytes) {
  ++corrupted_;
  corrupted_bytes_ += bytes;
}

std::uint64_t TrafficStats::bytes_for_kind(std::uint32_t kind) const {
  const auto it = by_kind_bytes_.find(kind);
  return it == by_kind_bytes_.end() ? 0 : it->second;
}

std::uint64_t TrafficStats::messages_for_kind(std::uint32_t kind) const {
  const auto it = by_kind_messages_.find(kind);
  return it == by_kind_messages_.end() ? 0 : it->second;
}

std::uint64_t TrafficStats::bytes_between(NodeId src, NodeId dst) const {
  const auto it = by_pair_bytes_.find({src, dst});
  return it == by_pair_bytes_.end() ? 0 : it->second;
}

std::uint64_t TrafficStats::bytes_for_codec(WireCodec codec) const {
  const auto it = by_codec_bytes_.find(static_cast<std::uint8_t>(codec));
  return it == by_codec_bytes_.end() ? 0 : it->second;
}

std::uint64_t TrafficStats::messages_for_codec(WireCodec codec) const {
  const auto it = by_codec_messages_.find(static_cast<std::uint8_t>(codec));
  return it == by_codec_messages_.end() ? 0 : it->second;
}

void TrafficStats::reset() {
  total_bytes_ = 0;
  total_messages_ = 0;
  retransmits_ = 0;
  retransmit_bytes_ = 0;
  duplicates_ = 0;
  duplicate_bytes_ = 0;
  dropped_ = 0;
  dropped_bytes_ = 0;
  corrupted_ = 0;
  corrupted_bytes_ = 0;
  by_kind_bytes_.clear();
  by_kind_messages_.clear();
  by_pair_bytes_.clear();
  by_codec_bytes_.clear();
  by_codec_messages_.clear();
}

void TrafficStats::save_state(BufferWriter& writer) const {
  writer.write_u64(total_bytes_);
  writer.write_u64(total_messages_);
  writer.write_u64(retransmits_);
  writer.write_u64(retransmit_bytes_);
  writer.write_u64(duplicates_);
  writer.write_u64(duplicate_bytes_);
  writer.write_u64(dropped_);
  writer.write_u64(dropped_bytes_);
  writer.write_u64(corrupted_);
  writer.write_u64(corrupted_bytes_);
  write_map(writer, by_kind_bytes_,
            [&](std::uint32_t kind) { writer.write_u32(kind); });
  write_map(writer, by_kind_messages_,
            [&](std::uint32_t kind) { writer.write_u32(kind); });
  write_map(writer, by_pair_bytes_, [&](const std::pair<NodeId, NodeId>& p) {
    writer.write_u32(p.first);
    writer.write_u32(p.second);
  });
  write_map(writer, by_codec_bytes_,
            [&](std::uint8_t codec) { writer.write_u8(codec); });
  write_map(writer, by_codec_messages_,
            [&](std::uint8_t codec) { writer.write_u8(codec); });
}

void TrafficStats::load_state(BufferReader& reader) {
  TrafficStats loaded;
  loaded.total_bytes_ = reader.read_u64();
  loaded.total_messages_ = reader.read_u64();
  loaded.retransmits_ = reader.read_u64();
  loaded.retransmit_bytes_ = reader.read_u64();
  loaded.duplicates_ = reader.read_u64();
  loaded.duplicate_bytes_ = reader.read_u64();
  loaded.dropped_ = reader.read_u64();
  loaded.dropped_bytes_ = reader.read_u64();
  loaded.corrupted_ = reader.read_u64();
  loaded.corrupted_bytes_ = reader.read_u64();
  const std::uint32_t n_kind_bytes = reader.read_u32();
  for (std::uint32_t i = 0; i < n_kind_bytes; ++i) {
    const std::uint32_t kind = reader.read_u32();
    loaded.by_kind_bytes_[kind] = reader.read_u64();
  }
  const std::uint32_t n_kind_messages = reader.read_u32();
  for (std::uint32_t i = 0; i < n_kind_messages; ++i) {
    const std::uint32_t kind = reader.read_u32();
    loaded.by_kind_messages_[kind] = reader.read_u64();
  }
  const std::uint32_t n_pairs = reader.read_u32();
  for (std::uint32_t i = 0; i < n_pairs; ++i) {
    const NodeId src = reader.read_u32();
    const NodeId dst = reader.read_u32();
    loaded.by_pair_bytes_[{src, dst}] = reader.read_u64();
  }
  const std::uint32_t n_codec_bytes = reader.read_u32();
  for (std::uint32_t i = 0; i < n_codec_bytes; ++i) {
    const std::uint8_t codec = reader.read_u8();
    if (codec >= kWireCodecCount) {
      throw SerializationError("traffic stats: unknown codec tag " +
                               std::to_string(codec));
    }
    loaded.by_codec_bytes_[codec] = reader.read_u64();
  }
  const std::uint32_t n_codec_messages = reader.read_u32();
  for (std::uint32_t i = 0; i < n_codec_messages; ++i) {
    const std::uint8_t codec = reader.read_u8();
    if (codec >= kWireCodecCount) {
      throw SerializationError("traffic stats: unknown codec tag " +
                               std::to_string(codec));
    }
    loaded.by_codec_messages_[codec] = reader.read_u64();
  }
  *this = std::move(loaded);
}

}  // namespace splitmed::net
