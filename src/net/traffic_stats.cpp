#include "src/net/traffic_stats.hpp"

namespace splitmed::net {

void TrafficStats::record(const Envelope& envelope,
                          std::uint64_t bytes_on_wire) {
  total_bytes_ += bytes_on_wire;
  ++total_messages_;
  by_kind_bytes_[envelope.kind] += bytes_on_wire;
  ++by_kind_messages_[envelope.kind];
  by_pair_bytes_[{envelope.src, envelope.dst}] += bytes_on_wire;
}

void TrafficStats::record_retransmit(std::uint64_t bytes) {
  ++retransmits_;
  retransmit_bytes_ += bytes;
}

void TrafficStats::record_duplicate(std::uint64_t bytes) {
  ++duplicates_;
  duplicate_bytes_ += bytes;
}

void TrafficStats::record_dropped(std::uint64_t bytes) {
  ++dropped_;
  dropped_bytes_ += bytes;
}

void TrafficStats::record_corrupted(std::uint64_t bytes) {
  ++corrupted_;
  corrupted_bytes_ += bytes;
}

std::uint64_t TrafficStats::bytes_for_kind(std::uint32_t kind) const {
  const auto it = by_kind_bytes_.find(kind);
  return it == by_kind_bytes_.end() ? 0 : it->second;
}

std::uint64_t TrafficStats::messages_for_kind(std::uint32_t kind) const {
  const auto it = by_kind_messages_.find(kind);
  return it == by_kind_messages_.end() ? 0 : it->second;
}

std::uint64_t TrafficStats::bytes_between(NodeId src, NodeId dst) const {
  const auto it = by_pair_bytes_.find({src, dst});
  return it == by_pair_bytes_.end() ? 0 : it->second;
}

void TrafficStats::reset() {
  total_bytes_ = 0;
  total_messages_ = 0;
  retransmits_ = 0;
  retransmit_bytes_ = 0;
  duplicates_ = 0;
  duplicate_bytes_ = 0;
  dropped_ = 0;
  dropped_bytes_ = 0;
  corrupted_ = 0;
  corrupted_bytes_ = 0;
  by_kind_bytes_.clear();
  by_kind_messages_.clear();
  by_pair_bytes_.clear();
}

}  // namespace splitmed::net
