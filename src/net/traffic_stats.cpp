#include "src/net/traffic_stats.hpp"

namespace splitmed::net {

void TrafficStats::record(const Envelope& envelope) {
  const std::uint64_t bytes = envelope.wire_bytes();
  total_bytes_ += bytes;
  ++total_messages_;
  by_kind_bytes_[envelope.kind] += bytes;
  ++by_kind_messages_[envelope.kind];
  by_pair_bytes_[{envelope.src, envelope.dst}] += bytes;
}

std::uint64_t TrafficStats::bytes_for_kind(std::uint32_t kind) const {
  const auto it = by_kind_bytes_.find(kind);
  return it == by_kind_bytes_.end() ? 0 : it->second;
}

std::uint64_t TrafficStats::messages_for_kind(std::uint32_t kind) const {
  const auto it = by_kind_messages_.find(kind);
  return it == by_kind_messages_.end() ? 0 : it->second;
}

std::uint64_t TrafficStats::bytes_between(NodeId src, NodeId dst) const {
  const auto it = by_pair_bytes_.find({src, dst});
  return it == by_pair_bytes_.end() ? 0 : it->second;
}

void TrafficStats::reset() {
  total_bytes_ = 0;
  total_messages_ = 0;
  by_kind_bytes_.clear();
  by_kind_messages_.clear();
  by_pair_bytes_.clear();
}

}  // namespace splitmed::net
