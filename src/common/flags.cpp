#include "src/common/flags.hpp"

#include <cstdlib>

#include "src/common/error.hpp"

namespace splitmed {

Flags::Flags(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    SPLITMED_CHECK(arg.rfind("--", 0) == 0,
                   "expected --flag, got '" << arg << "'");
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
      continue;
    }
    // --name value, unless the next token is another flag (bare bool).
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[arg] = argv[++i];
    } else {
      values_[arg] = "true";
    }
  }
  for (const auto& [name, value] : values_) {
    (void)value;
    consumed_[name] = false;
  }
}

const std::string* Flags::find(const std::string& name) {
  queried_.push_back(name);
  const auto it = values_.find(name);
  if (it == values_.end()) return nullptr;
  consumed_[name] = true;
  return &it->second;
}

std::int64_t Flags::get_int(const std::string& name, std::int64_t fallback) {
  const std::string* v = find(name);
  if (v == nullptr) return fallback;
  char* end = nullptr;
  const long long parsed = std::strtoll(v->c_str(), &end, 10);
  SPLITMED_CHECK(end != nullptr && *end == '\0' && !v->empty(),
                 "--" << name << " expects an integer, got '" << *v << "'");
  return parsed;
}

double Flags::get_double(const std::string& name, double fallback) {
  const std::string* v = find(name);
  if (v == nullptr) return fallback;
  char* end = nullptr;
  const double parsed = std::strtod(v->c_str(), &end);
  SPLITMED_CHECK(end != nullptr && *end == '\0' && !v->empty(),
                 "--" << name << " expects a number, got '" << *v << "'");
  return parsed;
}

std::string Flags::get_string(const std::string& name, std::string fallback) {
  const std::string* v = find(name);
  return v == nullptr ? fallback : *v;
}

bool Flags::get_bool(const std::string& name, bool fallback) {
  const std::string* v = find(name);
  if (v == nullptr) return fallback;
  if (*v == "true" || *v == "1" || *v == "yes") return true;
  if (*v == "false" || *v == "0" || *v == "no") return false;
  throw InvalidArgument("--" + name + " expects a boolean, got '" + *v + "'");
}

void Flags::validate_no_unknown() const {
  std::string unknown;
  for (const auto& [name, used] : consumed_) {
    if (!used) unknown += (unknown.empty() ? "--" : ", --") + name;
  }
  if (!unknown.empty()) {
    throw InvalidArgument("unknown flag(s): " + unknown +
                          " (known: " + usage() + ")");
  }
}

std::string Flags::usage() const {
  std::string out;
  for (const auto& name : queried_) {
    if (out.find("--" + name) != std::string::npos) continue;
    out += (out.empty() ? "--" : " --") + name;
  }
  return out;
}

}  // namespace splitmed
