#include "src/common/format.hpp"

#include <array>
#include <cmath>
#include <cstdio>

namespace splitmed {

std::string format_bytes(std::uint64_t bytes) {
  static constexpr std::array<const char*, 5> kUnits = {"B", "kB", "MB", "GB",
                                                        "TB"};
  double v = static_cast<double>(bytes);
  std::size_t unit = 0;
  while (v >= 1000.0 && unit + 1 < kUnits.size()) {
    v /= 1000.0;
    ++unit;
  }
  char buf[64];
  if (unit == 0) {
    std::snprintf(buf, sizeof(buf), "%llu B",
                  static_cast<unsigned long long>(bytes));
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f %s", v, kUnits[unit]);
  }
  return buf;
}

std::string format_fixed(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
  return buf;
}

std::string format_percent(double fraction, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", digits, fraction * 100.0);
  return buf;
}

std::string format_duration(double seconds) {
  char buf[64];
  if (seconds < 1.0) {
    std::snprintf(buf, sizeof(buf), "%.0f ms", seconds * 1e3);
  } else if (seconds < 60.0) {
    std::snprintf(buf, sizeof(buf), "%.2f s", seconds);
  } else {
    const int minutes = static_cast<int>(seconds / 60.0);
    const int rem = static_cast<int>(std::lround(seconds - minutes * 60.0));
    std::snprintf(buf, sizeof(buf), "%d m %d s", minutes, rem);
  }
  return buf;
}

std::string pad_left(const std::string& s, std::size_t width) {
  return s.size() >= width ? s : std::string(width - s.size(), ' ') + s;
}

std::string pad_right(const std::string& s, std::size_t width) {
  return s.size() >= width ? s : s + std::string(width - s.size(), ' ');
}

}  // namespace splitmed
