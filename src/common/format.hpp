// Small formatting helpers shared by metrics, benches and examples.
#pragma once

#include <cstdint>
#include <string>

namespace splitmed {

/// "1.50 GB", "312.0 MB", "4.2 kB", "17 B" — decimal units (matches how the
/// paper reports GB-scale traffic).
std::string format_bytes(std::uint64_t bytes);

/// Fixed-point with `digits` decimals, e.g. format_fixed(0.12345, 3) == "0.123".
std::string format_fixed(double value, int digits);

/// "12.3%" from a fraction in [0,1].
std::string format_percent(double fraction, int digits = 1);

/// Seconds to human-readable: "431 ms", "2.31 s", "1 m 12 s".
std::string format_duration(double seconds);

/// Left/right-pads `s` with spaces to `width` (no-op if already longer).
std::string pad_left(const std::string& s, std::size_t width);
std::string pad_right(const std::string& s, std::size_t width);

}  // namespace splitmed
