// Error handling primitives for splitmed.
//
// The library reports contract violations and runtime failures with exceptions
// (C++ Core Guidelines I.10/E.2). SPLITMED_CHECK is used for preconditions and
// invariants that depend on runtime values; logic errors in the library itself
// use SPLITMED_ASSERT which compiles to the same check (kept on in release
// builds — this is a research library where silent corruption is worse than a
// branch).
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace splitmed {

/// Base class of all exceptions thrown by splitmed.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when a function argument or object state violates a precondition.
class InvalidArgument : public Error {
 public:
  explicit InvalidArgument(const std::string& what) : Error(what) {}
};

/// Thrown when tensor shapes are incompatible for a requested operation.
class ShapeError : public Error {
 public:
  explicit ShapeError(const std::string& what) : Error(what) {}
};

/// Thrown on malformed serialized payloads.
class SerializationError : public Error {
 public:
  explicit SerializationError(const std::string& what) : Error(what) {}
};

/// Thrown on protocol violations in the distributed training layers
/// (unexpected message kind, mismatched round ids, unknown node, ...).
class ProtocolError : public Error {
 public:
  explicit ProtocolError(const std::string& what) : Error(what) {}
};

namespace detail {

[[noreturn]] inline void throw_check_failure(const char* expr, const char* file,
                                             int line, const std::string& msg) {
  std::ostringstream os;
  os << "check failed: " << expr << " at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw InvalidArgument(os.str());
}

}  // namespace detail
}  // namespace splitmed

/// Precondition / invariant check that stays on in release builds.
/// Usage: SPLITMED_CHECK(n > 0, "batch size must be positive, got " << n);
#define SPLITMED_CHECK(expr, ...)                                             \
  do {                                                                        \
    if (!(expr)) {                                                            \
      std::ostringstream splitmed_check_os;                                   \
      splitmed_check_os __VA_OPT__(<< __VA_ARGS__);                           \
      ::splitmed::detail::throw_check_failure(#expr, __FILE__, __LINE__,      \
                                              splitmed_check_os.str());       \
    }                                                                         \
  } while (false)

/// Internal-consistency assertion. Same behaviour as SPLITMED_CHECK; separate
/// name so call sites document whose bug a failure would be.
#define SPLITMED_ASSERT(expr, ...) SPLITMED_CHECK(expr, __VA_ARGS__)
