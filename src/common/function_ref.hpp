// Non-owning callable reference.
//
// std::function type-erases by COPYING the callable, which heap-allocates
// whenever the captures exceed the small-buffer size — the parallel_for
// bodies in the tensor substrate capture ~10 references and allocated on
// every call, putting malloc on the hottest loop in the system. The pool
// always finishes a job before the call returns, so it never needs to own
// the callable: FunctionRef erases through two words (object pointer +
// invoke thunk) with zero allocation.
//
// Lifetime contract: a FunctionRef must not outlive the callable it was
// built from. Use only for synchronous calls (ThreadPool::run blocks until
// every chunk finished, so the caller's lambda outlives the reference).
#pragma once

#include <memory>
#include <type_traits>
#include <utility>

namespace splitmed {

template <class Signature>
class FunctionRef;

template <class R, class... Args>
class FunctionRef<R(Args...)> {
 public:
  /// Binds any callable lvalue or temporary (the temporary must survive the
  /// full expression containing the call, which a blocking call guarantees).
  template <class F,
            class = std::enable_if_t<
                !std::is_same_v<std::remove_cvref_t<F>, FunctionRef> &&
                std::is_invocable_r_v<R, F&, Args...>>>
  // NOLINTNEXTLINE(google-explicit-constructor): implicit by design.
  FunctionRef(F&& f) noexcept
      : obj_(const_cast<void*>(
            static_cast<const void*>(std::addressof(f)))),
        invoke_([](void* obj, Args... args) -> R {
          return (*static_cast<std::remove_reference_t<F>*>(obj))(
              std::forward<Args>(args)...);
        }) {}

  R operator()(Args... args) const {
    return invoke_(obj_, std::forward<Args>(args)...);
  }

 private:
  void* obj_;
  R (*invoke_)(void*, Args...);
};

}  // namespace splitmed
