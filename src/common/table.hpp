// Pretty-printed ASCII tables — the benches print the same rows the paper's
// figures/tables report, and this keeps them legible in a terminal.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace splitmed {

/// Column-aligned table. Usage:
///   Table t({"protocol", "bytes", "accuracy"});
///   t.add_row({"split", "0.8 GB", "95%"});
///   t.print(std::cout);
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Adds a row; must have the same arity as the header.
  void add_row(std::vector<std::string> row);

  /// Renders with a header rule and column padding.
  void print(std::ostream& os) const;

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace splitmed
