// CSV writer used by the experiment recorder so every bench emits a
// machine-readable artifact next to its pretty-printed table.
#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace splitmed {

/// Writes RFC-4180-style CSV. Fields containing commas, quotes or newlines are
/// quoted; embedded quotes are doubled.
class CsvWriter {
 public:
  /// Opens `path` for writing (truncates). Throws splitmed::Error on failure.
  explicit CsvWriter(const std::string& path);

  /// Writes one row. Every row may have a different arity; callers are
  /// expected to write a header row first.
  void write_row(const std::vector<std::string>& fields);

  /// Convenience: formats doubles with enough digits to round-trip.
  static std::string field(double v);
  static std::string field(std::uint64_t v);

  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  static std::string escape(const std::string& raw);

  std::string path_;
  std::ofstream out_;
};

}  // namespace splitmed
