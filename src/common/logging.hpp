// Minimal leveled logger.
//
// splitmed is a library, so logging defaults to quiet (warnings and errors)
// and writes to a caller-settable sink. Benches and examples raise the level
// to Info to narrate experiment progress.
#pragma once

#include <ostream>
#include <sstream>
#include <string>

namespace splitmed {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global logging configuration. set_level/set_sink are startup-only:
/// configure once before spawning work. write() itself is thread-safe and
/// whole-line atomic — concurrent lines never interleave mid-line.
class Log {
 public:
  static void set_level(LogLevel level);
  static LogLevel level();
  /// Redirects output (default: std::clog). Pass nullptr to restore default.
  /// Startup-only, like set_level.
  static void set_sink(std::ostream* sink);
  static void write(LogLevel level, const std::string& message);

 private:
  static LogLevel level_;
  static std::ostream* sink_;
};

namespace detail {

class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { Log::write(level_, os_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};

}  // namespace detail
}  // namespace splitmed

#define SPLITMED_LOG(severity)                                   \
  if (static_cast<int>(::splitmed::Log::level()) <=              \
      static_cast<int>(::splitmed::LogLevel::severity))          \
  ::splitmed::detail::LogLine(::splitmed::LogLevel::severity)
