#include "src/common/rng.hpp"

#include <cmath>

#include "src/common/error.hpp"

namespace splitmed {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::uniform_u64(std::uint64_t n) {
  SPLITMED_CHECK(n > 0, "uniform_u64 requires n > 0");
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t threshold = (0 - n) % n;
  for (;;) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) return r % n;
  }
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  SPLITMED_CHECK(lo <= hi, "uniform_int requires lo <= hi");
  const std::uint64_t span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  return lo + static_cast<std::int64_t>(uniform_u64(span));
}

float Rng::uniform() {
  // 24 top bits -> [0,1) with full float precision.
  return static_cast<float>(next_u64() >> 40) * 0x1.0p-24F;
}

float Rng::uniform(float lo, float hi) { return lo + (hi - lo) * uniform(); }

float Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  float u1 = uniform();
  while (u1 <= 1e-12F) u1 = uniform();
  const float u2 = uniform();
  const float r = std::sqrt(-2.0F * std::log(u1));
  const float theta = 6.28318530717958647692F * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

float Rng::normal(float mean, float stddev) { return mean + stddev * normal(); }

bool Rng::bernoulli(float p) { return uniform() < p; }

bool Rng::bernoulli(double p) {
  // 53 top bits -> [0,1) with full double precision.
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53 < p;
}

RngState Rng::state() const {
  RngState st;
  for (std::size_t i = 0; i < 4; ++i) st.s[i] = s_[i];
  st.cached_normal = cached_normal_;
  st.has_cached_normal = has_cached_normal_;
  return st;
}

void Rng::set_state(const RngState& state) {
  for (std::size_t i = 0; i < 4; ++i) s_[i] = state.s[i];
  cached_normal_ = state.cached_normal;
  has_cached_normal_ = state.has_cached_normal;
}

Rng Rng::split(std::uint64_t salt) {
  return Rng(next_u64() ^ (salt * 0x9E3779B97F4A7C15ULL + 0xD1B54A32D192ED03ULL));
}

}  // namespace splitmed
