#include "src/common/csv.hpp"

#include <cstdio>

#include "src/common/error.hpp"

namespace splitmed {

CsvWriter::CsvWriter(const std::string& path) : path_(path), out_(path) {
  if (!out_) throw Error("CsvWriter: cannot open '" + path + "' for writing");
}

void CsvWriter::write_row(const std::vector<std::string>& fields) {
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) out_ << ',';
    out_ << escape(fields[i]);
  }
  out_ << '\n';
  if (!out_) throw Error("CsvWriter: write to '" + path_ + "' failed");
}

std::string CsvWriter::field(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.10g", v);
  return buf;
}

std::string CsvWriter::field(std::uint64_t v) {
  return std::to_string(v);
}

std::string CsvWriter::escape(const std::string& raw) {
  const bool needs_quote =
      raw.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quote) return raw;
  std::string out = "\"";
  for (const char c : raw) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

}  // namespace splitmed
