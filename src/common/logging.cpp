#include "src/common/logging.hpp"

#include <iostream>

namespace splitmed {

LogLevel Log::level_ = LogLevel::kWarn;
std::ostream* Log::sink_ = nullptr;

void Log::set_level(LogLevel level) { level_ = level; }
LogLevel Log::level() { return level_; }
void Log::set_sink(std::ostream* sink) { sink_ = sink; }

void Log::write(LogLevel level, const std::string& message) {
  static const char* kNames[] = {"DEBUG", "INFO ", "WARN ", "ERROR"};
  std::ostream& out = sink_ != nullptr ? *sink_ : std::clog;
  out << '[' << kNames[static_cast<int>(level)] << "] " << message << '\n';
}

}  // namespace splitmed
