#include "src/common/logging.hpp"

#include <iostream>
#include <mutex>

namespace splitmed {

LogLevel Log::level_ = LogLevel::kWarn;
std::ostream* Log::sink_ = nullptr;

void Log::set_level(LogLevel level) { level_ = level; }
LogLevel Log::level() { return level_; }
void Log::set_sink(std::ostream* sink) { sink_ = sink; }

void Log::write(LogLevel level, const std::string& message) {
  static const char* kNames[] = {"DEBUG", "INFO ", "WARN ", "ERROR"};
  // Lines can originate on pool workers (instrumented kernels, parallel
  // regions); build the whole line first and write it under a mutex so
  // concurrent lines never interleave mid-line. set_level/set_sink remain
  // startup-only.
  static std::mutex mu;
  std::string line;
  line.reserve(message.size() + 9);
  line += '[';
  line += kNames[static_cast<int>(level)];
  line += "] ";
  line += message;
  line += '\n';
  const std::lock_guard<std::mutex> lock(mu);
  std::ostream& out = sink_ != nullptr ? *sink_ : std::clog;
  out << line;
}

}  // namespace splitmed
