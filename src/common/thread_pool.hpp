// Deterministic fork-join thread pool for the tensor substrate.
//
// Parallelism in splitmed must never change results: byte accounting, RNG
// streams, and training curves are required to be invariant to the thread
// count (docs/PROTOCOL.md "Determinism contract"). parallel_for therefore
// only partitions loops whose iterations are independent and write disjoint
// outputs — each subrange runs the exact serial code, so every output value
// is bitwise identical to a single-threaded run regardless of how the range
// is chunked. No atomics or locks ever sit on an accumulation path.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

#include "src/common/function_ref.hpp"

namespace splitmed {

/// Fixed-size fork-join pool. `threads` counts the calling thread too, so a
/// pool of size 1 spawns no workers and run() degenerates to a plain loop.
class ThreadPool {
 public:
  /// threads <= 0 selects the default (SPLITMED_THREADS env var if set,
  /// otherwise std::thread::hardware_concurrency).
  explicit ThreadPool(int threads = 0);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total execution lanes (workers + the calling thread).
  [[nodiscard]] int size() const {
    return static_cast<int>(workers_.size()) + 1;
  }

  /// Executes chunk_fn(c) for every c in [0, num_chunks), distributed over
  /// the workers and the calling thread; blocks until all chunks finished.
  /// Each chunk runs exactly once. The first exception thrown by any chunk
  /// is rethrown on the calling thread (remaining chunks still run).
  /// Not reentrant: must not be called from inside a chunk (parallel_for
  /// handles nesting by running nested loops serially).
  ///
  /// Takes a FunctionRef, not std::function: run() always outlives the
  /// callable's use (it blocks until every chunk finished), and the
  /// non-owning reference keeps heap allocation off this hot path —
  /// parallel_for sits under every kernel in the tensor substrate.
  void run(int num_chunks, FunctionRef<void(int)> chunk_fn);

  /// The pool's default size given the environment (never < 1).
  static int default_threads();

 private:
  void worker_loop();
  /// Claims and executes chunks until the current job is exhausted; returns
  /// the number of chunks this thread completed.
  int drain_job(FunctionRef<void(int)> fn, int num_chunks);

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable work_cv_;   // signals workers: new job / shutdown
  std::condition_variable done_cv_;   // signals caller: all chunks finished
  const FunctionRef<void(int)>* job_ = nullptr;  // guarded by mu_; points at
                                                 // run()'s parameter, which
                                                 // outlives the job
  int job_chunks_ = 0;                             // guarded by mu_
  int next_chunk_ = 0;                             // guarded by mu_
  int chunks_done_ = 0;                            // guarded by mu_
  std::uint64_t generation_ = 0;                   // guarded by mu_
  std::exception_ptr first_error_;                 // guarded by mu_
  bool stop_ = false;                              // guarded by mu_
};

/// Process-wide pool used by parallel_for. Initialized lazily with
/// ThreadPool::default_threads(); replaced by set_global_threads().
ThreadPool& global_thread_pool();

/// Resizes the global pool. n <= 0 restores the environment default; n == 1
/// makes every parallel_for run serially on the calling thread. Must not be
/// called while a parallel_for is executing on another thread.
void set_global_threads(int n);

/// Current size of the global pool (>= 1).
int global_threads();

/// True while the calling thread is executing a parallel_for body; nested
/// parallel_for calls detect this and run serially (fork-join pools would
/// otherwise deadlock waiting on their own lane).
bool in_parallel_region();

/// Runs body(lo, hi) over disjoint contiguous subranges covering
/// [begin, end). At most global_threads() chunks are formed and no chunk is
/// smaller than `grain` iterations (except the last); if only one chunk
/// results — small range, single-thread pool, or nested call — the body runs
/// inline on the calling thread. Safe only for bodies whose iterations are
/// independent and write disjoint outputs; under that contract the result is
/// bitwise identical for every thread count. The body is borrowed, never
/// copied (see FunctionRef) — parallel_for itself performs no allocation.
void parallel_for(std::int64_t begin, std::int64_t end, std::int64_t grain,
                  FunctionRef<void(std::int64_t, std::int64_t)> body);

}  // namespace splitmed
