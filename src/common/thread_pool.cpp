#include "src/common/thread_pool.hpp"

#include <algorithm>
#include <cstdlib>
#include <memory>
#include <string>

#include "src/common/error.hpp"

namespace splitmed {
namespace {

thread_local bool tls_in_parallel_region = false;

/// RAII guard marking the current thread as inside a parallel body.
struct ParallelRegionScope {
  bool saved = tls_in_parallel_region;
  ParallelRegionScope() { tls_in_parallel_region = true; }
  ~ParallelRegionScope() { tls_in_parallel_region = saved; }
};

}  // namespace

int ThreadPool::default_threads() {
  if (const char* env = std::getenv("SPLITMED_THREADS")) {
    const int n = std::atoi(env);
    if (n >= 1) return n;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

ThreadPool::ThreadPool(int threads) {
  if (threads <= 0) threads = default_threads();
  workers_.reserve(static_cast<std::size_t>(threads - 1));
  for (int t = 1; t < threads; ++t) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

int ThreadPool::drain_job(FunctionRef<void(int)> fn, int num_chunks) {
  int done = 0;
  for (;;) {
    int chunk;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (next_chunk_ >= num_chunks) return done;
      chunk = next_chunk_++;
    }
    try {
      fn(chunk);
    } catch (...) {
      std::lock_guard<std::mutex> lock(mu_);
      if (!first_error_) first_error_ = std::current_exception();
    }
    ++done;
  }
}

void ThreadPool::worker_loop() {
  std::uint64_t seen_generation = 0;
  for (;;) {
    const FunctionRef<void(int)>* fn = nullptr;
    int num_chunks = 0;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] {
        return stop_ || (job_ != nullptr && generation_ != seen_generation);
      });
      if (stop_) return;
      seen_generation = generation_;
      fn = job_;
      num_chunks = job_chunks_;
    }
    const int done = drain_job(*fn, num_chunks);
    if (done > 0) {
      std::lock_guard<std::mutex> lock(mu_);
      chunks_done_ += done;
      if (chunks_done_ == num_chunks) done_cv_.notify_all();
    }
  }
}

void ThreadPool::run(int num_chunks, FunctionRef<void(int)> chunk_fn) {
  SPLITMED_CHECK(num_chunks >= 0, "ThreadPool::run: negative chunk count");
  if (num_chunks == 0) return;
  if (workers_.empty() || num_chunks == 1) {
    for (int c = 0; c < num_chunks; ++c) chunk_fn(c);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    SPLITMED_ASSERT(job_ == nullptr, "ThreadPool::run is not reentrant");
    job_ = &chunk_fn;
    job_chunks_ = num_chunks;
    next_chunk_ = 0;
    chunks_done_ = 0;
    first_error_ = nullptr;
    ++generation_;
  }
  work_cv_.notify_all();
  const int done = drain_job(chunk_fn, num_chunks);
  std::exception_ptr error;
  {
    std::unique_lock<std::mutex> lock(mu_);
    chunks_done_ += done;
    done_cv_.wait(lock, [&] { return chunks_done_ == job_chunks_; });
    job_ = nullptr;
    error = first_error_;
    first_error_ = nullptr;
  }
  if (error) std::rethrow_exception(error);
}

namespace {

std::mutex g_pool_mutex;
std::unique_ptr<ThreadPool> g_pool;  // guarded by g_pool_mutex

}  // namespace

ThreadPool& global_thread_pool() {
  std::lock_guard<std::mutex> lock(g_pool_mutex);
  if (!g_pool) g_pool = std::make_unique<ThreadPool>();
  return *g_pool;
}

void set_global_threads(int n) {
  std::lock_guard<std::mutex> lock(g_pool_mutex);
  const int target = n <= 0 ? ThreadPool::default_threads() : n;
  if (g_pool && g_pool->size() == target) return;
  g_pool = std::make_unique<ThreadPool>(target);
}

int global_threads() { return global_thread_pool().size(); }

bool in_parallel_region() { return tls_in_parallel_region; }

void parallel_for(std::int64_t begin, std::int64_t end, std::int64_t grain,
                  FunctionRef<void(std::int64_t, std::int64_t)> body) {
  const std::int64_t range = end - begin;
  if (range <= 0) return;
  grain = std::max<std::int64_t>(grain, 1);
  if (tls_in_parallel_region) {  // nested: the outer loop owns the lanes
    body(begin, end);
    return;
  }
  ThreadPool& pool = global_thread_pool();
  const std::int64_t max_chunks = (range + grain - 1) / grain;
  const int chunks =
      static_cast<int>(std::min<std::int64_t>(pool.size(), max_chunks));
  if (chunks <= 1) {
    body(begin, end);
    return;
  }
  // Balanced contiguous partition: chunk c covers [lo, hi) with the first
  // `rem` chunks one iteration longer. The split depends only on (range,
  // chunks), never on scheduling — and the body contract makes the output
  // independent of the split itself.
  const std::int64_t base = range / chunks;
  const std::int64_t rem = range % chunks;
  pool.run(chunks, [&](int c) {
    const std::int64_t lo =
        begin + c * base + std::min<std::int64_t>(c, rem);
    const std::int64_t hi = lo + base + (c < rem ? 1 : 0);
    ParallelRegionScope scope;
    body(lo, hi);
  });
}

}  // namespace splitmed
