// Wall-clock stopwatch for benches and examples. Simulated time lives in
// net::SimClock; this class only measures host time.
#pragma once

#include <chrono>

namespace splitmed {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  /// Elapsed seconds since construction or last reset().
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  [[nodiscard]] double milliseconds() const { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace splitmed
