// Minimal command-line flag parser for the benches and examples.
//
// Supports --name=value and --name value for int64/double/string/bool
// (--flag alone sets a bool true). Unknown flags are an error so typos
// don't silently run the default experiment.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace splitmed {

class Flags {
 public:
  /// Parses argv. Throws InvalidArgument on malformed input; call
  /// validate_no_unknown() after reading all flags to reject typos.
  Flags(int argc, const char* const* argv);

  /// Readers: return the flag's value or `fallback` when absent.
  [[nodiscard]] std::int64_t get_int(const std::string& name,
                                     std::int64_t fallback);
  [[nodiscard]] double get_double(const std::string& name, double fallback);
  [[nodiscard]] std::string get_string(const std::string& name,
                                       std::string fallback);
  [[nodiscard]] bool get_bool(const std::string& name, bool fallback);

  /// Throws InvalidArgument listing flags that were passed but never read.
  void validate_no_unknown() const;

  /// "--help"-style summary of everything that was queried.
  [[nodiscard]] std::string usage() const;

 private:
  const std::string* find(const std::string& name);

  std::map<std::string, std::string> values_;
  std::map<std::string, bool> consumed_;
  std::vector<std::string> queried_;  // for usage()
};

}  // namespace splitmed
