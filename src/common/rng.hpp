// Deterministic random number generation.
//
// All stochastic behaviour in splitmed (weight init, data synthesis, batch
// sampling, dropout) flows through Rng so experiments are reproducible from a
// single seed. The generator is xoshiro256** seeded via splitmix64 — fast,
// high quality, and stable across platforms (unlike std::mt19937 distributions,
// whose outputs are not specified bit-exactly across standard libraries for
// floating-point distributions).
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace splitmed {

/// Complete, copyable snapshot of an Rng — the unit a full-state checkpoint
/// captures so a resumed run continues every stream (shuffle, dropout, noise,
/// fault injection, participation) bit-exactly where it left off.
struct RngState {
  std::array<std::uint64_t, 4> s{};
  float cached_normal = 0.0F;
  bool has_cached_normal = false;
};

/// Deterministic pseudo-random generator. Copyable; copies diverge from the
/// copy point (useful for giving each platform an independent stream via
/// Rng::split()).
class Rng {
 public:
  /// Seeds the state from `seed` via splitmix64.
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Next raw 64-bit value.
  std::uint64_t next_u64();

  /// Uniform in [0, n). Requires n > 0.
  std::uint64_t uniform_u64(std::uint64_t n);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform float in [0, 1).
  float uniform();

  /// Uniform float in [lo, hi).
  float uniform(float lo, float hi);

  /// Standard normal via Box–Muller (cached second value).
  float normal();

  /// Normal with given mean / stddev.
  float normal(float mean, float stddev);

  /// Bernoulli(p) — true with probability p.
  bool bernoulli(float p);

  /// Bernoulli(p) at double precision — compares a 53-bit uniform against p
  /// without narrowing it to float first (a float cast shifts p by up to
  /// ~6e-8, a real bias at the extreme participation rates the trainer
  /// sweeps). Consumes exactly one next_u64, like the float overload.
  bool bernoulli(double p);

  /// In-place Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(uniform_u64(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Derives an independent generator; deterministic in (this state, salt).
  Rng split(std::uint64_t salt);

  /// Snapshot of the full generator state (xoshiro words + the Box–Muller
  /// cache). state() -> set_state() round-trips bit-exactly.
  [[nodiscard]] RngState state() const;
  void set_state(const RngState& state);

 private:
  std::uint64_t s_[4];
  float cached_normal_ = 0.0F;
  bool has_cached_normal_ = false;
};

}  // namespace splitmed
