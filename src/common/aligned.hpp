// 64-byte-aligned allocation helpers for the tensor substrate.
//
// Vectorized kernels load tensor and workspace memory in 16/32/64-byte
// chunks; cacheline-aligning every float buffer keeps those loads within a
// single line and lets the compiler use aligned move instructions where it
// can prove alignment. Alignment changes WHERE bytes live, never what they
// hold — it is invisible to the determinism contract.
#pragma once

#include <cstddef>
#include <new>
#include <vector>

namespace splitmed {

/// Cacheline alignment used for Tensor storage and workspace-arena blocks.
inline constexpr std::size_t kTensorAlignment = 64;

/// Minimal std allocator handing out `Alignment`-aligned memory via the
/// C++17 aligned operator new. Stateless: all instances compare equal.
template <class T, std::size_t Alignment = kTensorAlignment>
class AlignedAllocator {
  static_assert((Alignment & (Alignment - 1)) == 0,
                "Alignment must be a power of two");
  static_assert(Alignment >= alignof(T),
                "Alignment weaker than the type requires");

 public:
  using value_type = T;

  AlignedAllocator() noexcept = default;
  template <class U>
  AlignedAllocator(const AlignedAllocator<U, Alignment>&) noexcept {}  // NOLINT

  template <class U>
  struct rebind {
    using other = AlignedAllocator<U, Alignment>;
  };

  T* allocate(std::size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t{Alignment}));
  }
  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, std::align_val_t{Alignment});
  }

  friend bool operator==(const AlignedAllocator&,
                         const AlignedAllocator&) noexcept {
    return true;
  }
};

/// Cacheline-aligned float buffer — the storage type of Tensor and the
/// workspace arena's block type.
using AlignedFloatVec = std::vector<float, AlignedAllocator<float>>;

}  // namespace splitmed
