// 64-byte-aligned allocation helpers for the tensor substrate.
//
// Vectorized kernels load tensor and workspace memory in 16/32/64-byte
// chunks; cacheline-aligning every float buffer keeps those loads within a
// single line and lets the compiler use aligned move instructions where it
// can prove alignment. Alignment changes WHERE bytes live, never what they
// hold — it is invisible to the determinism contract.
#pragma once

#include <atomic>
#include <cstddef>
#include <new>
#include <vector>

namespace splitmed {

/// Cacheline alignment used for Tensor storage and workspace-arena blocks.
inline constexpr std::size_t kTensorAlignment = 64;

namespace detail {
// Process-wide accounting of live aligned-buffer bytes (Tensor storage).
// Relaxed monitoring counters only — never synchronization, never fed back
// into any computed value, so bitwise inert. The peak watermark lets the
// depth sweep measure how resident tensor bytes grow with chain depth when
// the planner is off (per-layer intermediates) vs on (arena slabs).
inline std::atomic<std::size_t> g_aligned_live_bytes{0};
inline std::atomic<std::size_t> g_aligned_peak_bytes{0};

inline void aligned_bytes_add(std::size_t bytes) {
  const std::size_t now =
      g_aligned_live_bytes.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  std::size_t seen = g_aligned_peak_bytes.load(std::memory_order_relaxed);
  while (seen < now && !g_aligned_peak_bytes.compare_exchange_weak(
                           seen, now, std::memory_order_relaxed)) {
  }
}
inline void aligned_bytes_sub(std::size_t bytes) {
  g_aligned_live_bytes.fetch_sub(bytes, std::memory_order_relaxed);
}
}  // namespace detail

/// Live bytes currently held by AlignedAllocator buffers (Tensor storage,
/// process-wide).
[[nodiscard]] inline std::size_t aligned_live_bytes() {
  return detail::g_aligned_live_bytes.load(std::memory_order_relaxed);
}
/// Max of aligned_live_bytes() since the last reset_aligned_peak_bytes().
[[nodiscard]] inline std::size_t aligned_peak_bytes() {
  return detail::g_aligned_peak_bytes.load(std::memory_order_relaxed);
}
/// Restarts the peak watermark at the current live total.
inline void reset_aligned_peak_bytes() {
  detail::g_aligned_peak_bytes.store(aligned_live_bytes(),
                                     std::memory_order_relaxed);
}

/// Minimal std allocator handing out `Alignment`-aligned memory via the
/// C++17 aligned operator new. Stateless: all instances compare equal.
template <class T, std::size_t Alignment = kTensorAlignment>
class AlignedAllocator {
  static_assert((Alignment & (Alignment - 1)) == 0,
                "Alignment must be a power of two");
  static_assert(Alignment >= alignof(T),
                "Alignment weaker than the type requires");

 public:
  using value_type = T;

  AlignedAllocator() noexcept = default;
  template <class U>
  AlignedAllocator(const AlignedAllocator<U, Alignment>&) noexcept {}  // NOLINT

  template <class U>
  struct rebind {
    using other = AlignedAllocator<U, Alignment>;
  };

  T* allocate(std::size_t n) {
    T* p = static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t{Alignment}));
    detail::aligned_bytes_add(n * sizeof(T));
    return p;
  }
  void deallocate(T* p, std::size_t n) noexcept {
    detail::aligned_bytes_sub(n * sizeof(T));
    ::operator delete(p, std::align_val_t{Alignment});
  }

  friend bool operator==(const AlignedAllocator&,
                         const AlignedAllocator&) noexcept {
    return true;
  }
};

/// Cacheline-aligned float buffer — the storage type of Tensor and the
/// workspace arena's block type.
using AlignedFloatVec = std::vector<float, AlignedAllocator<float>>;

}  // namespace splitmed
