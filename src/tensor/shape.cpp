#include "src/tensor/shape.hpp"

#include <sstream>

#include "src/common/error.hpp"

namespace splitmed {

Shape::Shape(std::initializer_list<std::int64_t> dims) : dims_(dims) {
  for (const auto d : dims_) {
    SPLITMED_CHECK(d >= 0, "negative dimension in shape " << str());
  }
}

Shape::Shape(std::vector<std::int64_t> dims) : dims_(std::move(dims)) {
  for (const auto d : dims_) {
    SPLITMED_CHECK(d >= 0, "negative dimension in shape " << str());
  }
}

std::int64_t Shape::dim(std::int64_t axis) const {
  const auto r = static_cast<std::int64_t>(rank());
  if (axis < 0) axis += r;
  SPLITMED_CHECK(axis >= 0 && axis < r,
                 "axis " << axis << " out of range for shape " << str());
  return dims_[static_cast<std::size_t>(axis)];
}

std::int64_t Shape::numel() const {
  std::int64_t n = 1;
  for (const auto d : dims_) n *= d;
  return n;
}

std::vector<std::int64_t> Shape::strides() const {
  std::vector<std::int64_t> s(rank(), 1);
  for (std::size_t i = rank(); i-- > 1;) {
    s[i - 1] = s[i] * dims_[i];
  }
  return s;
}

std::string Shape::str() const {
  std::ostringstream os;
  os << '[';
  for (std::size_t i = 0; i < dims_.size(); ++i) {
    if (i > 0) os << ", ";
    os << dims_[i];
  }
  os << ']';
  return os.str();
}

void check_same_shape(const Shape& a, const Shape& b, const char* context) {
  if (a != b) {
    throw ShapeError(std::string(context) + ": shape mismatch " + a.str() +
                     " vs " + b.str());
  }
}

}  // namespace splitmed
