// Elementwise / reduction operations on tensors. Free functions (not members)
// so the op vocabulary can grow without touching the Tensor ABI.
#pragma once

#include <cstdint>
#include <functional>

#include "src/tensor/tensor.hpp"

namespace splitmed::ops {

/// out-of-place elementwise --------------------------------------------------
Tensor add(const Tensor& a, const Tensor& b);
Tensor sub(const Tensor& a, const Tensor& b);
Tensor mul(const Tensor& a, const Tensor& b);
Tensor scale(const Tensor& a, float s);
Tensor map(const Tensor& a, const std::function<float(float)>& f);

/// in-place accumulation: a += s * b (the optimizer/backprop workhorse).
void axpy(float s, const Tensor& b, Tensor& a);

/// reductions -----------------------------------------------------------------
float sum(const Tensor& a);
float mean(const Tensor& a);
float max(const Tensor& a);
/// Index of maximum along the last axis of a rank-2 tensor; returns [rows].
std::vector<std::int64_t> argmax_rows(const Tensor& a);
/// L2 norm of all elements.
float l2_norm(const Tensor& a);
/// Mean squared difference between equal-shaped tensors.
float mse(const Tensor& a, const Tensor& b);
/// Largest absolute elementwise difference.
float max_abs_diff(const Tensor& a, const Tensor& b);

/// matrix helpers (rank-2) -----------------------------------------------------
/// C = A · B, shapes [m,k]·[k,n] -> [m,n].
Tensor matmul(const Tensor& a, const Tensor& b);
/// C = Aᵀ · B, shapes [k,m]·[k,n] -> [m,n].
Tensor matmul_tn(const Tensor& a, const Tensor& b);
/// C = A · Bᵀ, shapes [m,k]·[n,k] -> [m,n].
Tensor matmul_nt(const Tensor& a, const Tensor& b);
Tensor transpose(const Tensor& a);

/// Concatenates along axis 0. All inputs must agree on trailing dims.
Tensor concat_rows(const std::vector<Tensor>& parts);

}  // namespace splitmed::ops
