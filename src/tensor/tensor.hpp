// Dense float32 tensor with row-major layout and value semantics.
//
// Design notes:
//  - Copies are deep. Training-scale tensors here are small (CPU simulator),
//    and deep copies remove a whole class of aliasing bugs at module
//    boundaries (activations crossing the simulated network must not alias
//    platform-side buffers).
//  - Element type is float only. The paper's evaluation is entirely fp32; a
//    dtype-generic tensor would buy nothing but template noise.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "src/common/aligned.hpp"
#include "src/tensor/shape.hpp"

namespace splitmed {

class Rng;

class Tensor {
 public:
  /// Rank-0 scalar containing 0.
  Tensor();

  /// Zero-initialized tensor of the given shape.
  explicit Tensor(Shape shape);

  /// Copies `data` into the tensor's (64-byte aligned) storage;
  /// data.size() must equal shape.numel().
  Tensor(Shape shape, const std::vector<float>& data);

  /// --- factories -----------------------------------------------------------
  static Tensor zeros(Shape shape);
  static Tensor ones(Shape shape);
  static Tensor full(Shape shape, float value);
  /// Uniform in [lo, hi).
  static Tensor uniform(Shape shape, Rng& rng, float lo = 0.0F, float hi = 1.0F);
  /// Normal(mean, stddev).
  static Tensor normal(Shape shape, Rng& rng, float mean = 0.0F,
                       float stddev = 1.0F);
  /// 0,1,2,... (useful in tests).
  static Tensor arange(std::int64_t n);

  /// --- structure -----------------------------------------------------------
  [[nodiscard]] const Shape& shape() const { return shape_; }
  [[nodiscard]] std::int64_t numel() const { return shape_.numel(); }
  [[nodiscard]] std::size_t byte_size() const {
    return static_cast<std::size_t>(numel()) * sizeof(float);
  }

  /// Same data, new shape; numel must match.
  [[nodiscard]] Tensor reshape(Shape new_shape) const;

  /// Rows [row_begin, row_end) along axis 0 (deep copy).
  [[nodiscard]] Tensor slice_rows(std::int64_t row_begin,
                                  std::int64_t row_end) const;

  /// --- element access ------------------------------------------------------
  [[nodiscard]] std::span<float> data() { return {data_.data(), data_.size()}; }
  [[nodiscard]] std::span<const float> data() const {
    return {data_.data(), data_.size()};
  }

  float& at(std::initializer_list<std::int64_t> index);
  [[nodiscard]] float at(std::initializer_list<std::int64_t> index) const;

  /// Flat (row-major) access with bounds check.
  float& operator[](std::int64_t i);
  float operator[](std::int64_t i) const;

  /// --- in-place helpers ----------------------------------------------------
  void fill(float value);
  void zero() { fill(0.0F); }

  /// "Tensor[2, 3] {1, 2, 3, 4, 5, 6}" — truncated for large tensors.
  [[nodiscard]] std::string str() const;

 private:
  // Tag keeps this overload invisible to brace-initialized public calls
  // (overload resolution runs before access control).
  struct AlignedTag {};
  /// Internal move path for reshape/slice_rows (already-aligned storage).
  Tensor(Shape shape, AlignedFloatVec data, AlignedTag);

  Shape shape_;
  // 64-byte aligned so every tensor's rows can feed the vector kernels and
  // the serializer at full cacheline granularity (see src/common/aligned.hpp).
  AlignedFloatVec data_;
};

}  // namespace splitmed
