#include "src/tensor/tensor.hpp"

#include <algorithm>
#include <sstream>

#include "src/common/error.hpp"
#include "src/common/rng.hpp"

namespace splitmed {

Tensor::Tensor() : shape_({}), data_(1, 0.0F) {}

Tensor::Tensor(Shape shape)
    : shape_(std::move(shape)),
      data_(static_cast<std::size_t>(shape_.numel()), 0.0F) {}

Tensor::Tensor(Shape shape, const std::vector<float>& data)
    : shape_(std::move(shape)), data_(data.begin(), data.end()) {
  SPLITMED_CHECK(static_cast<std::int64_t>(data_.size()) == shape_.numel(),
                 "data size " << data_.size() << " != numel of shape "
                              << shape_.str());
}

Tensor::Tensor(Shape shape, AlignedFloatVec data, AlignedTag /*tag*/)
    : shape_(std::move(shape)), data_(std::move(data)) {
  SPLITMED_CHECK(static_cast<std::int64_t>(data_.size()) == shape_.numel(),
                 "data size " << data_.size() << " != numel of shape "
                              << shape_.str());
}

Tensor Tensor::zeros(Shape shape) { return Tensor(std::move(shape)); }

Tensor Tensor::ones(Shape shape) { return full(std::move(shape), 1.0F); }

Tensor Tensor::full(Shape shape, float value) {
  Tensor t(std::move(shape));
  t.fill(value);
  return t;
}

Tensor Tensor::uniform(Shape shape, Rng& rng, float lo, float hi) {
  Tensor t(std::move(shape));
  for (auto& v : t.data_) v = rng.uniform(lo, hi);
  return t;
}

Tensor Tensor::normal(Shape shape, Rng& rng, float mean, float stddev) {
  Tensor t(std::move(shape));
  for (auto& v : t.data_) v = rng.normal(mean, stddev);
  return t;
}

Tensor Tensor::arange(std::int64_t n) {
  SPLITMED_CHECK(n >= 0, "arange requires n >= 0");
  Tensor t(Shape{n});
  for (std::int64_t i = 0; i < n; ++i) t.data_[static_cast<std::size_t>(i)] =
      static_cast<float>(i);
  return t;
}

Tensor Tensor::reshape(Shape new_shape) const {
  SPLITMED_CHECK(new_shape.numel() == numel(),
                 "reshape " << shape_.str() << " -> " << new_shape.str()
                            << " changes element count");
  return Tensor(std::move(new_shape), data_, AlignedTag{});
}

Tensor Tensor::slice_rows(std::int64_t row_begin, std::int64_t row_end) const {
  SPLITMED_CHECK(shape_.rank() >= 1, "slice_rows requires rank >= 1");
  const std::int64_t rows = shape_.dim(0);
  SPLITMED_CHECK(0 <= row_begin && row_begin <= row_end && row_end <= rows,
                 "slice_rows [" << row_begin << ", " << row_end
                                << ") out of range for " << shape_.str());
  const std::int64_t row_elems = rows == 0 ? 0 : numel() / rows;
  std::vector<std::int64_t> dims = shape_.dims();
  dims[0] = row_end - row_begin;
  AlignedFloatVec out(static_cast<std::size_t>((row_end - row_begin) *
                                               row_elems));
  std::copy_n(data_.begin() + row_begin * row_elems, out.size(), out.begin());
  return Tensor(Shape(std::move(dims)), std::move(out), AlignedTag{});
}

float& Tensor::at(std::initializer_list<std::int64_t> index) {
  return data_[static_cast<std::size_t>(
      [this, &index] {
        SPLITMED_CHECK(index.size() == shape_.rank(),
                       "index rank " << index.size() << " != tensor rank "
                                     << shape_.rank());
        const auto strides = shape_.strides();
        std::int64_t flat = 0;
        std::size_t axis = 0;
        for (const auto i : index) {
          SPLITMED_CHECK(i >= 0 && i < shape_.dim(static_cast<std::int64_t>(axis)),
                         "index " << i << " out of range at axis " << axis
                                  << " for " << shape_.str());
          flat += i * strides[axis];
          ++axis;
        }
        return flat;
      }())];
}

float Tensor::at(std::initializer_list<std::int64_t> index) const {
  return const_cast<Tensor*>(this)->at(index);
}

float& Tensor::operator[](std::int64_t i) {
  SPLITMED_CHECK(i >= 0 && i < numel(),
                 "flat index " << i << " out of range for " << shape_.str());
  return data_[static_cast<std::size_t>(i)];
}

float Tensor::operator[](std::int64_t i) const {
  return (*const_cast<Tensor*>(this))[i];
}

void Tensor::fill(float value) {
  std::fill(data_.begin(), data_.end(), value);
}

std::string Tensor::str() const {
  std::ostringstream os;
  os << "Tensor" << shape_.str() << " {";
  const std::int64_t n = std::min<std::int64_t>(numel(), 16);
  for (std::int64_t i = 0; i < n; ++i) {
    if (i > 0) os << ", ";
    os << data_[static_cast<std::size_t>(i)];
  }
  if (numel() > n) os << ", ...";
  os << '}';
  return os.str();
}

}  // namespace splitmed
