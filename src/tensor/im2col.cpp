#include "src/tensor/im2col.hpp"

#include <algorithm>

#include "src/common/error.hpp"
#include "src/common/thread_pool.hpp"

namespace splitmed {
namespace {

// Minimum per-chunk element traffic before a fork-join pays off.
constexpr std::int64_t kParallelElems = 16 * 1024;

/// The x range [x0, x1) for which ix = x*stride + shift stays inside
/// [0, in_w), clamped to [0, ow) — the branch-free interior of the output
/// row; everything outside is padding. x0 <= x1 always.
struct XRange {
  std::int64_t x0 = 0;
  std::int64_t x1 = 0;
};

XRange interior_range(std::int64_t shift, std::int64_t stride,
                      std::int64_t in_w, std::int64_t ow) {
  XRange r;
  r.x0 = shift < 0 ? (-shift + stride - 1) / stride : 0;
  r.x0 = std::min(r.x0, ow);
  const std::int64_t hi = in_w - 1 - shift;  // largest valid x*stride
  r.x1 = hi < 0 ? 0 : std::min(ow, hi / stride + 1);
  r.x1 = std::max(r.x1, r.x0);
  return r;
}

/// Channels per parallel chunk; each channel moves kernel_h*kernel_w*oh*ow
/// elements and touches only its own slice of both buffers.
std::int64_t channel_grain(const ConvGeometry& g) {
  const std::int64_t per_channel = std::max<std::int64_t>(
      g.kernel_h * g.kernel_w * g.out_h() * g.out_w(), 1);
  return std::max<std::int64_t>(1, kParallelElems / per_channel);
}

}  // namespace

void ConvGeometry::validate() const {
  SPLITMED_CHECK(channels > 0 && in_h > 0 && in_w > 0,
                 "conv geometry: non-positive input dims");
  SPLITMED_CHECK(kernel_h > 0 && kernel_w > 0, "conv geometry: bad kernel");
  SPLITMED_CHECK(stride > 0, "conv geometry: stride must be positive");
  SPLITMED_CHECK(pad >= 0, "conv geometry: negative padding");
  SPLITMED_CHECK(out_h() > 0 && out_w() > 0,
                 "conv geometry: kernel larger than padded input");
}

void im2col(const ConvGeometry& g, std::span<const float> image,
            std::span<float> col) {
  SPLITMED_CHECK(image.size() >=
                     static_cast<std::size_t>(g.channels * g.in_h * g.in_w),
                 "im2col: image span too small");
  SPLITMED_CHECK(col.size() >=
                     static_cast<std::size_t>(g.col_rows() * g.col_cols()),
                 "im2col: col span too small");
  const std::int64_t oh = g.out_h(), ow = g.out_w();
  // Channel c fills exactly col rows [c*kh*kw, (c+1)*kh*kw) from its own
  // image plane — disjoint reads and writes, so any channel partition is
  // bitwise identical to the serial sweep.
  parallel_for(0, g.channels, channel_grain(g), [&](std::int64_t c0,
                                                    std::int64_t c1) {
  for (std::int64_t c = c0; c < c1; ++c) {
    const float* chan = image.data() + c * g.in_h * g.in_w;
    std::size_t r = static_cast<std::size_t>(c * g.kernel_h * g.kernel_w);
    for (std::int64_t kh = 0; kh < g.kernel_h; ++kh) {
      for (std::int64_t kw = 0; kw < g.kernel_w; ++kw) {
        float* out_row = col.data() + r * oh * ow;
        ++r;
        // Split each output row into zero prefix / branch-free interior /
        // zero suffix instead of testing bounds per element — identical
        // values, and the interior copy vectorizes.
        const std::int64_t shift = kw - g.pad;
        const auto [x0, x1] = interior_range(shift, g.stride, g.in_w, ow);
        for (std::int64_t y = 0; y < oh; ++y) {
          const std::int64_t iy = y * g.stride + kh - g.pad;
          float* out = out_row + y * ow;
          if (iy < 0 || iy >= g.in_h) {
            for (std::int64_t x = 0; x < ow; ++x) out[x] = 0.0F;
            continue;
          }
          const float* in_row = chan + iy * g.in_w;
          for (std::int64_t x = 0; x < x0; ++x) out[x] = 0.0F;
          if (g.stride == 1) {
            const float* src = in_row + shift;
            for (std::int64_t x = x0; x < x1; ++x) out[x] = src[x];
          } else {
            for (std::int64_t x = x0; x < x1; ++x) {
              out[x] = in_row[x * g.stride + shift];
            }
          }
          for (std::int64_t x = x1; x < ow; ++x) out[x] = 0.0F;
        }
      }
    }
  }
  });
}

void col2im(const ConvGeometry& g, std::span<const float> col,
            std::span<float> image) {
  SPLITMED_CHECK(image.size() >=
                     static_cast<std::size_t>(g.channels * g.in_h * g.in_w),
                 "col2im: image span too small");
  SPLITMED_CHECK(col.size() >=
                     static_cast<std::size_t>(g.col_rows() * g.col_cols()),
                 "col2im: col span too small");
  const std::int64_t oh = g.out_h(), ow = g.out_w();
  // Channel c accumulates only into its own image plane, from its own col
  // rows, in the serial kh/kw/y/x order — the accumulation order within a
  // plane is identical for every channel partition.
  parallel_for(0, g.channels, channel_grain(g), [&](std::int64_t c0,
                                                    std::int64_t c1) {
  for (std::int64_t c = c0; c < c1; ++c) {
    float* chan = image.data() + c * g.in_h * g.in_w;
    std::size_t r = static_cast<std::size_t>(c * g.kernel_h * g.kernel_w);
    for (std::int64_t kh = 0; kh < g.kernel_h; ++kh) {
      for (std::int64_t kw = 0; kw < g.kernel_w; ++kw) {
        const float* in_row_base = col.data() + r * oh * ow;
        ++r;
        // Only the in-bounds interior contributes; x still ascends, so the
        // accumulation order per image element is unchanged.
        const std::int64_t shift = kw - g.pad;
        const auto [x0, x1] = interior_range(shift, g.stride, g.in_w, ow);
        for (std::int64_t y = 0; y < oh; ++y) {
          const std::int64_t iy = y * g.stride + kh - g.pad;
          if (iy < 0 || iy >= g.in_h) continue;
          const float* in = in_row_base + y * ow;
          float* out_row = chan + iy * g.in_w;
          if (g.stride == 1) {
            float* dst = out_row + shift;
            for (std::int64_t x = x0; x < x1; ++x) dst[x] += in[x];
          } else {
            for (std::int64_t x = x0; x < x1; ++x) {
              out_row[x * g.stride + shift] += in[x];
            }
          }
        }
      }
    }
  }
  });
}

}  // namespace splitmed
