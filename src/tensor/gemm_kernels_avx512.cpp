// AVX-512F micro-kernel variant. Compiled with -mavx512f
// -mprefer-vector-width=512 -ffp-contract=off (see
// src/tensor/CMakeLists.txt): 512-bit vectors, 4×32 accumulators in 8 zmm
// registers; -ffp-contract=off keeps results bitwise identical to the
// baseline variant (no FMA contraction; see gemm_kernels_impl.hpp).
//
// This TU must contain only the raw-pointer impl header — it is compiled
// for an ISA the host CPU may not have, and is only entered through the
// dispatch in active_kernel().
#include "src/tensor/gemm_kernels.hpp"
#include "src/tensor/gemm_kernels_impl.hpp"

#if defined(__x86_64__) && defined(__GNUC__)

namespace splitmed::gemmk {

MicroKernel avx512_kernel() { return {&micro_kernel, kMR, kNR, kIsaName}; }

}  // namespace splitmed::gemmk

#endif  // x86-64 GNU
