// Register-blocked GEMM micro-kernel variants.
//
// The packed GEMM path (src/tensor/gemm.cpp) splits C into MR×NR tiles and
// computes each tile from a packed A panel (MR-column-interleaved) and a
// packed B panel (NR-row-interleaved) with one register accumulator per C
// element. The micro-kernel is the only ISA-sensitive code: each variant
// below is compiled in its own translation unit with wider vector flags
// (see src/tensor/CMakeLists.txt) and contains NOTHING but raw-pointer
// arithmetic — no headers whose inline functions could leak wider-ISA code
// into translation units that run unconditionally.
//
// Determinism: every variant computes each C element as the identical
// strict left fold over k (first product written, later products added,
// k ascending, mul and add separately rounded — the variant TUs compile
// with -ffp-contract=off so no FMA contraction can change a rounding).
// Vector width only changes how many independent accumulators advance per
// instruction, never the per-element operation sequence, so all variants
// are bitwise identical to each other and to the naive reference kernels.
#pragma once

#include <cstdint>

namespace splitmed::gemmk {

/// Write-back epilogue: an elementwise transform applied to each C element
/// AFTER its k-fold completes, at the moment the accumulator leaves the
/// registers. Because it runs per element on the finished fold value, it
/// never reorders the reduction — fused results are bitwise identical to
/// running the same elementwise passes after an unfused GEMM (each step is
/// one separately-rounded IEEE op in the same order the unfused layer code
/// uses; the variant TUs compile with -ffp-contract=off so no FMA fusion).
///
/// Per-element sequence for C[i][j], with p = per_row ? i : j:
///   1. bias      : x = x + bias[p]                       (conv/linear bias)
///   2. bn scale  : x = ((gamma[p]*(x - mean[p])) * inv_std[p]) + beta[p]
///                  (inference-mode BatchNorm; exactly batchnorm.cpp's
///                  eval expression, left-associated)
///   3. relu      : x = x > 0 ? x : 0
/// Null pointers / relu=false skip a step. POD only — this header is
/// included by every ISA variant TU, so it must carry no code with vague
/// linkage, just types.
struct Epilogue {
  const float* bias = nullptr;      ///< [m] if per_row else [n]
  const float* bn_gamma = nullptr;  ///< all four set together, or none
  const float* bn_mean = nullptr;
  const float* bn_inv_std = nullptr;
  const float* bn_beta = nullptr;
  bool relu = false;
  bool per_row = true;  ///< parameter index: C row (conv) vs column (linear)
};

/// Computes the mr×nr tile C[r][j] (r < mr, j < nr) from packed panels:
///   ap[kk*MR + r] — A panel, MR floats per k step (rows ≥ mr zero-padded)
///   bp[kk*NR + j] — B panel, NR floats per k step (cols ≥ nr zero-padded)
/// with k ≥ 1; C is written (write-first), ldc is C's row stride.
/// `ep` (nullable) is applied at write-back; (i0, j0) is the tile's origin
/// in C, used only to index the epilogue's per-row/per-column parameters.
using MicroKernelFn = void (*)(std::int64_t k, const float* ap,
                               const float* bp, float* c, std::int64_t ldc,
                               std::int64_t mr, std::int64_t nr,
                               const Epilogue* ep, std::int64_t i0,
                               std::int64_t j0);

/// One compiled variant plus the panel geometry its packing must use.
struct MicroKernel {
  MicroKernelFn fn = nullptr;
  std::int64_t block_rows = 0;  ///< MR: A-panel interleave width.
  std::int64_t panel_cols = 0;  ///< NR: B-panel interleave width.
  const char* isa = "";
};

/// Baseline variant, compiled with the project's default flags.
MicroKernel base_kernel();

#if defined(__x86_64__) && defined(__GNUC__)
/// Wider-vector variants; call only when the CPU supports the ISA.
MicroKernel avx2_kernel();
MicroKernel avx512_kernel();
#endif

/// The variant gemm_nn/tn/nt dispatch to: the widest ISA this CPU supports,
/// overridable with SPLITMED_GEMM_ISA=base|avx2|avx512 (unsupported or
/// unknown values fall back to the best supported variant). Resolved once
/// per process.
const MicroKernel& active_kernel();

}  // namespace splitmed::gemmk
