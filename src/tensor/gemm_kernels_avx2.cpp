// AVX2 micro-kernel variant. Compiled with -mavx2 -ffp-contract=off (see
// src/tensor/CMakeLists.txt): 256-bit vectors double the per-instruction
// accumulator width; -ffp-contract=off keeps mul and add separately rounded
// so results stay bitwise identical to the baseline variant.
//
// This TU must contain only the raw-pointer impl header (see
// gemm_kernels_impl.hpp) — it is compiled for an ISA the host CPU may not
// have, and is only entered through the dispatch in active_kernel().
#include "src/tensor/gemm_kernels.hpp"
#include "src/tensor/gemm_kernels_impl.hpp"

#if defined(__x86_64__) && defined(__GNUC__)

namespace splitmed::gemmk {

MicroKernel avx2_kernel() { return {&micro_kernel, kMR, kNR, kIsaName}; }

}  // namespace splitmed::gemmk

#endif  // x86-64 GNU
