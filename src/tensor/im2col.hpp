// im2col / col2im lowering for convolutions.
//
// Conv2d forward is im2col + GEMM; its backward passes are GEMMs + col2im.
// Layout: images are NCHW; the column matrix is
// [C*kh*kw, out_h*out_w] per image (one image at a time keeps the working set
// small on the single-core simulator).
#pragma once

#include <cstdint>
#include <span>

namespace splitmed {

struct ConvGeometry {
  std::int64_t channels = 0;
  std::int64_t in_h = 0;
  std::int64_t in_w = 0;
  std::int64_t kernel_h = 0;
  std::int64_t kernel_w = 0;
  std::int64_t stride = 1;
  std::int64_t pad = 0;

  [[nodiscard]] std::int64_t out_h() const {
    return (in_h + 2 * pad - kernel_h) / stride + 1;
  }
  [[nodiscard]] std::int64_t out_w() const {
    return (in_w + 2 * pad - kernel_w) / stride + 1;
  }
  /// Rows of the column matrix: channels * kernel_h * kernel_w.
  [[nodiscard]] std::int64_t col_rows() const {
    return channels * kernel_h * kernel_w;
  }
  /// Columns of the column matrix: out_h * out_w.
  [[nodiscard]] std::int64_t col_cols() const { return out_h() * out_w(); }

  /// Throws InvalidArgument if the geometry is degenerate.
  void validate() const;
};

/// image: CHW contiguous (channels*in_h*in_w floats);
/// col: col_rows()*col_cols() floats, overwritten.
void im2col(const ConvGeometry& g, std::span<const float> image,
            std::span<float> col);

/// Inverse scatter-add: accumulates col back into image (image must be
/// zeroed by the caller when a fresh gradient is wanted).
void col2im(const ConvGeometry& g, std::span<const float> col,
            std::span<float> image);

}  // namespace splitmed
