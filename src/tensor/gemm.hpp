// Packed, register-blocked single-precision GEMM kernels on raw spans.
// ops::matmul* wrap these with shape checking; nn::Conv2d uses them via
// im2col. See docs/PERFORMANCE.md for the kernel design and the bitwise-
// determinism contract (identical results for any thread count and any
// micro-kernel ISA variant, bitwise equal to the *_ref kernels below).
#pragma once

#include <cstdint>
#include <span>

#include "src/tensor/gemm_kernels.hpp"

namespace splitmed {

/// C[m,n] = A[m,k] * B[k,n]  (C is overwritten).
void gemm_nn(std::int64_t m, std::int64_t n, std::int64_t k,
             std::span<const float> a, std::span<const float> b,
             std::span<float> c);

/// C[m,n] = A[k,m]^T * B[k,n].
void gemm_tn(std::int64_t m, std::int64_t n, std::int64_t k,
             std::span<const float> a, std::span<const float> b,
             std::span<float> c);

/// C[m,n] = A[m,k] * B[n,k]^T.
void gemm_nt(std::int64_t m, std::int64_t n, std::int64_t k,
             std::span<const float> a, std::span<const float> b,
             std::span<float> c);

/// gemm_nn with a fused write-back epilogue (gemmk::Epilogue): each C
/// element gets the elementwise tail applied AFTER its k-fold completes, at
/// write-back — bitwise identical to gemm_nn followed by the same
/// elementwise passes, for any thread count and ISA variant. When k <= 0
/// the epilogue is applied to the zero matrix (matching the unfused
/// sequence). Parameter spans must cover m (per_row) or n (per-column).
void gemm_nn_ep(std::int64_t m, std::int64_t n, std::int64_t k,
                std::span<const float> a, std::span<const float> b,
                std::span<float> c, const gemmk::Epilogue& ep);

/// gemm_nt with a fused write-back epilogue; see gemm_nn_ep.
void gemm_nt_ep(std::int64_t m, std::int64_t n, std::int64_t k,
                std::span<const float> a, std::span<const float> b,
                std::span<float> c, const gemmk::Epilogue& ep);

/// Serial naive reference kernels: the strict k-ascending, write-first left
/// fold that the packed kernels above must reproduce BITWISE (asserted
/// across shapes and thread counts by gemm_test). Single-threaded, no
/// packing, no scratch — the semantic ground truth and the benchmark
/// baseline.
void gemm_nn_ref(std::int64_t m, std::int64_t n, std::int64_t k,
                 std::span<const float> a, std::span<const float> b,
                 std::span<float> c);
void gemm_tn_ref(std::int64_t m, std::int64_t n, std::int64_t k,
                 std::span<const float> a, std::span<const float> b,
                 std::span<float> c);
void gemm_nt_ref(std::int64_t m, std::int64_t n, std::int64_t k,
                 std::span<const float> a, std::span<const float> b,
                 std::span<float> c);

/// Name of the micro-kernel variant the packed kernels dispatched to for
/// this process: "base", "avx2", or "avx512f" (see
/// src/tensor/gemm_kernels.hpp).
[[nodiscard]] const char* gemm_kernel_isa();

}  // namespace splitmed
