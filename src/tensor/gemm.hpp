// Blocked single-precision GEMM kernels on raw spans. ops::matmul* wrap these
// with shape checking; nn::Conv2d uses them via im2col.
#pragma once

#include <cstdint>
#include <span>

namespace splitmed {

/// C[m,n] = A[m,k] * B[k,n]  (C is overwritten).
void gemm_nn(std::int64_t m, std::int64_t n, std::int64_t k,
             std::span<const float> a, std::span<const float> b,
             std::span<float> c);

/// C[m,n] = A[k,m]^T * B[k,n].
void gemm_tn(std::int64_t m, std::int64_t n, std::int64_t k,
             std::span<const float> a, std::span<const float> b,
             std::span<float> c);

/// C[m,n] = A[m,k] * B[n,k]^T.
void gemm_nt(std::int64_t m, std::int64_t n, std::int64_t k,
             std::span<const float> a, std::span<const float> b,
             std::span<float> c);

}  // namespace splitmed
