#include "src/tensor/workspace.hpp"

#include <algorithm>
#include <atomic>
#include <new>

#include "src/common/aligned.hpp"
#include "src/common/error.hpp"
#include "src/obs/obs.hpp"

namespace splitmed::ws {
namespace {

// Checkout granularity: every span starts on a 64-byte boundary, so sizes
// are rounded up to whole cachelines of floats.
constexpr std::size_t kAlignFloats = kTensorAlignment / sizeof(float);

// First block size (floats). Small enough that incidental users stay cheap,
// large enough that conv-scale scratch usually fits after one doubling.
constexpr std::size_t kMinBlockFloats = 16 * 1024;

constexpr std::size_t round_up(std::size_t n, std::size_t unit) {
  return (n + unit - 1) / unit * unit;
}

// Process-wide totals, mirrored into the obs gauges when a session is
// active. Relaxed: these are monitoring values, never synchronization.
std::atomic<std::size_t> g_reserved_bytes{0};
std::atomic<std::size_t> g_in_use_bytes{0};
std::atomic<std::uint64_t> g_block_allocs{0};
std::atomic<std::size_t> g_step_peak_bytes{0};

/// CAS-max of the step-peak watermark. Relaxed is fine: the value is a
/// monitoring high-water mark, read at step boundaries.
void bump_step_peak(std::size_t now) {
  std::size_t seen = g_step_peak_bytes.load(std::memory_order_relaxed);
  while (seen < now && !g_step_peak_bytes.compare_exchange_weak(
                           seen, now, std::memory_order_relaxed)) {
  }
  if (obs::Gauge* g = obs::workspace_step_peak_gauge()) {
    g->set(static_cast<double>(
        g_step_peak_bytes.load(std::memory_order_relaxed)));
  }
}

void publish_reserved(std::size_t delta_add, std::size_t delta_sub) {
  const std::size_t now =
      g_reserved_bytes.fetch_add(delta_add - delta_sub,
                                 std::memory_order_relaxed) +
      delta_add - delta_sub;
  if (obs::Gauge* g = obs::workspace_reserved_gauge()) {
    g->set(static_cast<double>(now));
  }
}

void publish_in_use(std::size_t old_bytes, std::size_t new_bytes) {
  const std::size_t now =
      g_in_use_bytes.fetch_add(new_bytes - old_bytes,
                               std::memory_order_relaxed) +
      new_bytes - old_bytes;
  if (new_bytes > old_bytes) bump_step_peak(now);
  if (obs::Gauge* g = obs::workspace_in_use_gauge()) {
    g->set(static_cast<double>(now));
  }
}

float* alloc_floats(std::size_t n) {
  return static_cast<float*>(::operator new(
      n * sizeof(float), std::align_val_t{kTensorAlignment}));
}

void free_floats(float* p) {
  ::operator delete(p, std::align_val_t{kTensorAlignment});
}

}  // namespace

Workspace& Workspace::local() {
  static thread_local Workspace arena;
  return arena;
}

Workspace::~Workspace() { free_blocks(); }

void Workspace::free_blocks() {
  std::size_t freed = 0;
  for (Block& b : blocks_) {
    freed += b.capacity * sizeof(float);
    free_floats(b.data);
  }
  blocks_.clear();
  current_ = 0;
  if (freed > 0) publish_reserved(0, freed);
}

void Workspace::add_block(std::size_t min_floats) {
  // Geometric growth over the total already reserved keeps the block count
  // logarithmic in the final high-water mark.
  std::size_t reserved = 0;
  for (const Block& b : blocks_) reserved += b.capacity;
  const std::size_t want = std::max(
      {round_up(min_floats, kAlignFloats), kMinBlockFloats, reserved});
  Block b;
  b.data = alloc_floats(want);
  b.capacity = want;
  blocks_.push_back(b);
  current_ = blocks_.size() - 1;
  ++block_allocs_;
  g_block_allocs.fetch_add(1, std::memory_order_relaxed);
  publish_reserved(want * sizeof(float), 0);
}

std::span<float> Workspace::checkout(std::int64_t n) {
  SPLITMED_CHECK(n >= 0, "workspace: negative checkout size " << n);
  SPLITMED_CHECK(scope_depth_ > 0,
                 "workspace: checkout without an open WorkspaceScope");
  ++checkouts_;
  if (n == 0) return {};
  const std::size_t need = round_up(static_cast<std::size_t>(n), kAlignFloats);
  // Find room: bump the current block, else move to the next existing
  // block, else grow. Spans already handed out never move.
  while (current_ < blocks_.size() &&
         blocks_[current_].capacity - blocks_[current_].used < need) {
    ++current_;
    if (current_ < blocks_.size()) blocks_[current_].used = 0;
  }
  if (current_ >= blocks_.size()) add_block(need);
  Block& b = blocks_[current_];
  float* p = b.data + b.used;
  b.used += need;
  const std::size_t old_in_use = in_use_floats_;
  in_use_floats_ += need;
  high_water_floats_ = std::max(high_water_floats_, in_use_floats_);
  publish_in_use(old_in_use * sizeof(float), in_use_floats_ * sizeof(float));
  return {p, static_cast<std::size_t>(n)};
}

void Workspace::release_to(std::size_t block_index, std::size_t block_used) {
  std::size_t freed = 0;
  for (std::size_t i = block_index + 1; i <= current_ && i < blocks_.size();
       ++i) {
    freed += blocks_[i].used;
    blocks_[i].used = 0;
  }
  if (block_index < blocks_.size()) {
    freed += blocks_[block_index].used - block_used;
    blocks_[block_index].used = block_used;
  }
  current_ = block_index;
  const std::size_t old_in_use = in_use_floats_;
  in_use_floats_ -= freed;
  publish_in_use(old_in_use * sizeof(float), in_use_floats_ * sizeof(float));

  // Outermost release with a fragmented block list: replace it with one
  // block sized to the high-water mark, so the next step's checkouts all
  // land in a single block and never allocate again.
  if (scope_depth_ == 0 && blocks_.size() > 1) {
    SPLITMED_ASSERT(in_use_floats_ == 0,
                    "workspace: outermost scope released with "
                        << in_use_floats_ << " floats still checked out");
    const std::size_t target = high_water_floats_;
    free_blocks();
    add_block(target);
  }
}

WorkspaceStats Workspace::stats() const {
  WorkspaceStats s;
  for (const Block& b : blocks_) s.bytes_reserved += b.capacity * sizeof(float);
  s.bytes_in_use = in_use_floats_ * sizeof(float);
  s.high_water = high_water_floats_ * sizeof(float);
  s.blocks = blocks_.size();
  s.block_allocs = block_allocs_;
  s.checkouts = checkouts_;
  return s;
}

void Workspace::trim() {
  SPLITMED_CHECK(scope_depth_ == 0 && in_use_floats_ == 0,
                 "workspace: trim with an open scope");
  free_blocks();
  high_water_floats_ = 0;
}

WorkspaceScope::WorkspaceScope() : arena_(Workspace::local()) {
  mark_block_ = arena_.current_;
  mark_used_ = arena_.blocks_.empty() ? 0 : arena_.blocks_[arena_.current_].used;
  ++arena_.scope_depth_;
}

WorkspaceScope::~WorkspaceScope() {
  --arena_.scope_depth_;
  arena_.release_to(mark_block_, mark_used_);
}

std::span<float> WorkspaceScope::floats(std::int64_t n) {
  return arena_.checkout(n);
}

std::size_t global_bytes_reserved() {
  return g_reserved_bytes.load(std::memory_order_relaxed);
}
std::size_t global_bytes_in_use() {
  return g_in_use_bytes.load(std::memory_order_relaxed);
}
std::uint64_t global_block_allocs() {
  return g_block_allocs.load(std::memory_order_relaxed);
}
std::size_t global_step_peak_bytes() {
  return g_step_peak_bytes.load(std::memory_order_relaxed);
}
void reset_step_peak() {
  g_step_peak_bytes.store(0, std::memory_order_relaxed);
  if (obs::Gauge* g = obs::workspace_step_peak_gauge()) g->set(0.0);
}

}  // namespace splitmed::ws
