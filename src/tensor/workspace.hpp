// Thread-local, high-water-mark workspace arena for kernel scratch memory.
//
// The hot path of the system — im2col + GEMM inside Conv2d, the GEMM pack
// buffers, the per-sample weight-gradient slabs — needs large scratch
// buffers whose sizes repeat exactly from step to step. Allocating them
// with malloc/std::vector put the allocator on every training step. The
// arena replaces that with stack-disciplined checkout from a per-thread
// block list that only ever grows to its high-water mark: after one warm-up
// step, steady-state training performs ZERO heap allocations for kernel
// scratch (asserted by workspace_test via the counters below).
//
// Usage (strictly scoped, LIFO):
//
//   ws::WorkspaceScope ws;                   // marks the arena
//   std::span<float> col = ws.floats(n);     // 64-byte aligned, UNINITIALIZED
//   ...                                      // scope destructor releases all
//
// Scopes nest (Conv2d opens one, the GEMM inside it opens another); each
// scope releases exactly what was checked out after its mark. Every thread
// — the caller and each pool worker — owns an independent arena, so
// checkout is lock-free and parallel_for bodies can grab scratch without
// synchronization.
//
// Determinism: the arena hands out UNINITIALIZED memory; callers must fully
// overwrite what they read (the GEMM/im2col contracts guarantee this).
// Nothing about placement, growth, or reuse feeds back into any computed
// value, so the arena is bitwise inert by construction.
//
// Observability: global byte totals are mirrored into the obs gauges
// `splitmed_workspace_reserved_bytes` / `splitmed_workspace_in_use_bytes`
// whenever a session is active (src/obs/obs.hpp pre-registers them; the
// disabled path is one relaxed load and a branch).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace splitmed::ws {

/// Point-in-time accounting for one thread's arena.
struct WorkspaceStats {
  std::size_t bytes_reserved = 0;  ///< Sum of block capacities.
  std::size_t bytes_in_use = 0;    ///< Bytes currently checked out.
  std::size_t high_water = 0;      ///< Max bytes_in_use ever seen.
  std::size_t blocks = 0;          ///< Live block count (1 in steady state).
  std::uint64_t block_allocs = 0;  ///< Lifetime heap allocations.
  std::uint64_t checkouts = 0;     ///< Lifetime spans handed out.
};

/// One thread's arena: a list of 64-byte-aligned blocks with bump-pointer
/// checkout. Obtain via Workspace::local(); never share across threads.
class Workspace {
 public:
  Workspace() = default;
  ~Workspace();
  Workspace(const Workspace&) = delete;
  Workspace& operator=(const Workspace&) = delete;

  /// The calling thread's arena (created on first use, lives until thread
  /// exit).
  static Workspace& local();

  [[nodiscard]] WorkspaceStats stats() const;

  /// Frees every block (requires no open scope). Test helper — production
  /// code keeps the high-water blocks alive for reuse.
  void trim();

 private:
  friend class WorkspaceScope;

  struct Block {
    float* data = nullptr;
    std::size_t capacity = 0;  // floats
    std::size_t used = 0;      // floats, bump offset
  };

  /// Checks out `n` floats (64-byte aligned, uninitialized).
  std::span<float> checkout(std::int64_t n);
  /// Restores the bump state captured by a scope; on outermost release,
  /// coalesces a fragmented block list into one high-water block.
  void release_to(std::size_t block_index, std::size_t block_used);

  void add_block(std::size_t min_floats);
  void free_blocks();

  std::vector<Block> blocks_;
  std::size_t current_ = 0;        // index of the block being bumped
  std::size_t in_use_floats_ = 0;  // total checked-out floats (incl. padding)
  std::size_t high_water_floats_ = 0;
  int scope_depth_ = 0;
  std::uint64_t block_allocs_ = 0;
  std::uint64_t checkouts_ = 0;
};

/// RAII checkout scope on the calling thread's arena. All spans obtained
/// from a scope are released together when it destructs; scopes must nest
/// LIFO (automatic with block scoping).
class WorkspaceScope {
 public:
  WorkspaceScope();
  ~WorkspaceScope();
  WorkspaceScope(const WorkspaceScope&) = delete;
  WorkspaceScope& operator=(const WorkspaceScope&) = delete;

  /// `n` floats, 64-byte aligned, UNINITIALIZED. n == 0 returns an empty
  /// span. The span stays valid until this scope destructs (later checkouts
  /// never move earlier ones).
  std::span<float> floats(std::int64_t n);

  /// `n` bytes of scratch carved from the float arena (64-byte aligned,
  /// UNINITIALIZED). The wire codecs pack i8 bodies here before one bulk
  /// append. Write-only until copied out — never read back as floats.
  std::span<std::uint8_t> bytes(std::int64_t n) {
    const auto f = floats((n + 3) / 4);
    return {reinterpret_cast<std::uint8_t*>(f.data()),
            static_cast<std::size_t>(n)};
  }

  /// `n` uint16 scratch slots, same contract as bytes() (f16 pack buffer).
  std::span<std::uint16_t> u16s(std::int64_t n) {
    const auto f = floats((n + 1) / 2);
    return {reinterpret_cast<std::uint16_t*>(f.data()),
            static_cast<std::size_t>(n)};
  }

 private:
  Workspace& arena_;
  std::size_t mark_block_;
  std::size_t mark_used_;
};

/// Process-wide totals across every thread's arena (lock-free reads).
[[nodiscard]] std::size_t global_bytes_reserved();
[[nodiscard]] std::size_t global_bytes_in_use();
/// Lifetime count of arena block heap allocations across all threads — the
/// steady-state zero-allocation assertion watches this stand still.
[[nodiscard]] std::uint64_t global_block_allocs();

/// Max of global_bytes_in_use() observed since the last reset_step_peak():
/// the peak concurrent arena footprint of a step (all threads combined),
/// mirrored into the `splitmed_workspace_step_peak_bytes` gauge. The
/// execution planner's depth-flat memory claim is measured against this.
[[nodiscard]] std::size_t global_step_peak_bytes();
/// Restarts the step-peak watermark (call at a step/measurement boundary).
void reset_step_peak();

}  // namespace splitmed::ws
