#include "src/tensor/ops.hpp"

#include <algorithm>
#include <cmath>

#include "src/common/error.hpp"
#include "src/tensor/gemm.hpp"

namespace splitmed::ops {
namespace {

Tensor binary(const Tensor& a, const Tensor& b, const char* name,
              float (*f)(float, float)) {
  check_same_shape(a.shape(), b.shape(), name);
  Tensor out(a.shape());
  auto ad = a.data();
  auto bd = b.data();
  auto od = out.data();
  for (std::size_t i = 0; i < od.size(); ++i) od[i] = f(ad[i], bd[i]);
  return out;
}

}  // namespace

Tensor add(const Tensor& a, const Tensor& b) {
  return binary(a, b, "add", [](float x, float y) { return x + y; });
}

Tensor sub(const Tensor& a, const Tensor& b) {
  return binary(a, b, "sub", [](float x, float y) { return x - y; });
}

Tensor mul(const Tensor& a, const Tensor& b) {
  return binary(a, b, "mul", [](float x, float y) { return x * y; });
}

Tensor scale(const Tensor& a, float s) {
  Tensor out(a.shape());
  auto ad = a.data();
  auto od = out.data();
  for (std::size_t i = 0; i < od.size(); ++i) od[i] = ad[i] * s;
  return out;
}

Tensor map(const Tensor& a, const std::function<float(float)>& f) {
  Tensor out(a.shape());
  auto ad = a.data();
  auto od = out.data();
  for (std::size_t i = 0; i < od.size(); ++i) od[i] = f(ad[i]);
  return out;
}

void axpy(float s, const Tensor& b, Tensor& a) {
  check_same_shape(a.shape(), b.shape(), "axpy");
  auto ad = a.data();
  auto bd = b.data();
  for (std::size_t i = 0; i < ad.size(); ++i) ad[i] += s * bd[i];
}

float sum(const Tensor& a) {
  double acc = 0.0;  // double accumulator: stable across large tensors
  for (const float v : a.data()) acc += v;
  return static_cast<float>(acc);
}

float mean(const Tensor& a) {
  SPLITMED_CHECK(a.numel() > 0, "mean of empty tensor");
  return sum(a) / static_cast<float>(a.numel());
}

float max(const Tensor& a) {
  SPLITMED_CHECK(a.numel() > 0, "max of empty tensor");
  return *std::max_element(a.data().begin(), a.data().end());
}

std::vector<std::int64_t> argmax_rows(const Tensor& a) {
  SPLITMED_CHECK(a.shape().rank() == 2, "argmax_rows requires rank-2 tensor");
  const std::int64_t rows = a.shape().dim(0);
  const std::int64_t cols = a.shape().dim(1);
  SPLITMED_CHECK(cols > 0, "argmax_rows requires at least one column");
  std::vector<std::int64_t> out(static_cast<std::size_t>(rows));
  auto d = a.data();
  for (std::int64_t r = 0; r < rows; ++r) {
    const float* row = d.data() + r * cols;
    out[static_cast<std::size_t>(r)] =
        std::max_element(row, row + cols) - row;
  }
  return out;
}

float l2_norm(const Tensor& a) {
  double acc = 0.0;
  for (const float v : a.data()) acc += static_cast<double>(v) * v;
  return static_cast<float>(std::sqrt(acc));
}

float mse(const Tensor& a, const Tensor& b) {
  check_same_shape(a.shape(), b.shape(), "mse");
  SPLITMED_CHECK(a.numel() > 0, "mse of empty tensors");
  double acc = 0.0;
  auto ad = a.data();
  auto bd = b.data();
  for (std::size_t i = 0; i < ad.size(); ++i) {
    const double d = static_cast<double>(ad[i]) - bd[i];
    acc += d * d;
  }
  return static_cast<float>(acc / static_cast<double>(a.numel()));
}

float max_abs_diff(const Tensor& a, const Tensor& b) {
  check_same_shape(a.shape(), b.shape(), "max_abs_diff");
  float m = 0.0F;
  auto ad = a.data();
  auto bd = b.data();
  for (std::size_t i = 0; i < ad.size(); ++i) {
    m = std::max(m, std::abs(ad[i] - bd[i]));
  }
  return m;
}

namespace {

void check_rank2(const Tensor& t, const char* name) {
  SPLITMED_CHECK(t.shape().rank() == 2,
                 name << " requires rank-2 tensors, got " << t.shape().str());
}

}  // namespace

Tensor matmul(const Tensor& a, const Tensor& b) {
  check_rank2(a, "matmul");
  check_rank2(b, "matmul");
  const std::int64_t m = a.shape().dim(0), k = a.shape().dim(1);
  SPLITMED_CHECK(b.shape().dim(0) == k, "matmul: inner dims " << a.shape().str()
                                          << " vs " << b.shape().str());
  const std::int64_t n = b.shape().dim(1);
  Tensor c(Shape{m, n});
  gemm_nn(m, n, k, a.data(), b.data(), c.data());
  return c;
}

Tensor matmul_tn(const Tensor& a, const Tensor& b) {
  check_rank2(a, "matmul_tn");
  check_rank2(b, "matmul_tn");
  const std::int64_t k = a.shape().dim(0), m = a.shape().dim(1);
  SPLITMED_CHECK(b.shape().dim(0) == k, "matmul_tn: inner dims "
                                            << a.shape().str() << " vs "
                                            << b.shape().str());
  const std::int64_t n = b.shape().dim(1);
  Tensor c(Shape{m, n});
  gemm_tn(m, n, k, a.data(), b.data(), c.data());
  return c;
}

Tensor matmul_nt(const Tensor& a, const Tensor& b) {
  check_rank2(a, "matmul_nt");
  check_rank2(b, "matmul_nt");
  const std::int64_t m = a.shape().dim(0), k = a.shape().dim(1);
  SPLITMED_CHECK(b.shape().dim(1) == k, "matmul_nt: inner dims "
                                            << a.shape().str() << " vs "
                                            << b.shape().str());
  const std::int64_t n = b.shape().dim(0);
  Tensor c(Shape{m, n});
  gemm_nt(m, n, k, a.data(), b.data(), c.data());
  return c;
}

Tensor transpose(const Tensor& a) {
  check_rank2(a, "transpose");
  const std::int64_t rows = a.shape().dim(0), cols = a.shape().dim(1);
  Tensor out(Shape{cols, rows});
  auto ad = a.data();
  auto od = out.data();
  for (std::int64_t r = 0; r < rows; ++r) {
    for (std::int64_t c = 0; c < cols; ++c) {
      od[static_cast<std::size_t>(c * rows + r)] =
          ad[static_cast<std::size_t>(r * cols + c)];
    }
  }
  return out;
}

Tensor concat_rows(const std::vector<Tensor>& parts) {
  SPLITMED_CHECK(!parts.empty(), "concat_rows of zero tensors");
  const Shape& first = parts.front().shape();
  SPLITMED_CHECK(first.rank() >= 1, "concat_rows requires rank >= 1");
  std::int64_t total_rows = 0;
  for (const auto& p : parts) {
    SPLITMED_CHECK(p.shape().rank() == first.rank(),
                   "concat_rows: rank mismatch");
    for (std::int64_t ax = 1; ax < static_cast<std::int64_t>(first.rank());
         ++ax) {
      SPLITMED_CHECK(p.shape().dim(ax) == first.dim(ax),
                     "concat_rows: trailing dim mismatch at axis " << ax);
    }
    total_rows += p.shape().dim(0);
  }
  std::vector<std::int64_t> dims = first.dims();
  dims[0] = total_rows;
  Tensor out{Shape(std::move(dims))};
  auto od = out.data();
  std::size_t offset = 0;
  for (const auto& p : parts) {
    auto pd = p.data();
    std::copy(pd.begin(), pd.end(), od.begin() + offset);
    offset += pd.size();
  }
  return out;
}

}  // namespace splitmed::ops
