// Baseline micro-kernel variant: project default flags (x86-64 SSE2, or
// whatever the target's baseline is). The included impl picks its vector
// width from the ISA macros in effect for THIS translation unit.
#include "src/tensor/gemm_kernels.hpp"
#include "src/tensor/gemm_kernels_impl.hpp"

namespace splitmed::gemmk {

MicroKernel base_kernel() { return {&micro_kernel, kMR, kNR, "base"}; }

}  // namespace splitmed::gemmk
