// Micro-kernel definition shared by the per-ISA translation units.
//
// Everything here lives in an ANONYMOUS namespace on purpose: each variant
// TU that includes this header gets its own internal-linkage copy, compiled
// with that TU's vector flags. Nothing may have external or vague (inline/
// template COMDAT) linkage — a linker merging identically-named symbols
// across variant TUs would silently route every variant through one ISA's
// code, crashing CPUs that lack it. For the same reason this header may
// include nothing beyond <cstdint> and gemm_kernels.hpp (types and plain
// function declarations only — nothing with vague linkage).
//
// The kernel is hand-vectorized with GCC/Clang vector extensions rather
// than left to the auto-vectorizer (which produces shuffle-heavy code for
// this accumulator shape). The vector width tracks the ISA macros the TU
// was compiled with; MR×NR accumulators fill 8 vector registers at every
// width.
//
// Determinism: each C element is one accumulator advanced by exactly one
// separately-rounded multiply and one add per k step, k ascending, seeded
// by the k=0 product (write-first). Vector lanes are independent element
// accumulators — width never changes any element's operation sequence, so
// every variant is bitwise identical (TUs compile with -ffp-contract=off,
// which keeps FMA-capable ISAs from fusing the mul and add). The splat
// helper broadcasts by copy, never via `0 + x`, which would flip the sign
// of a negative zero.
#pragma once

#include <cstdint>

#include "src/tensor/gemm_kernels.hpp"  // Epilogue (POD only; linkage-safe)

namespace splitmed::gemmk {
namespace {

// Scalar epilogue application for edge tiles and the portable fallback.
// Must stay the exact op-for-op sequence of the vector path below (and of
// the unfused layer code): each step is one separately-rounded IEEE op, so
// an element gets identical bits whether it was written by a full vector
// tile, an edge-tile spill, or any ISA variant. (pi, pj) are the element's
// global row/column in C.
inline float epilogue_apply(float x, const Epilogue& ep, std::int64_t pi,
                            std::int64_t pj) {
  const std::int64_t p = ep.per_row ? pi : pj;
  if (ep.bias != nullptr) x = x + ep.bias[p];
  if (ep.bn_gamma != nullptr) {
    x = ((ep.bn_gamma[p] * (x - ep.bn_mean[p])) * ep.bn_inv_std[p]) +
        ep.bn_beta[p];
  }
  if (ep.relu) x = x > 0.0F ? x : 0.0F;
  return x;
}

#if defined(__GNUC__) || defined(__clang__)

// vsplat uses an explicit initializer list (not a lane-assignment loop,
// which GCC lowers through the stack at 512 bits) so it compiles to one
// vbroadcastss. It must stay a pure copy — a `0 + s` style broadcast would
// flip the sign of a negative zero.
#if defined(__AVX512F__)
typedef float VecF __attribute__((vector_size(64), may_alias, aligned(4)));
constexpr const char* kIsaName = "avx512f";
inline VecF vsplat(float s) {
  return (VecF){s, s, s, s, s, s, s, s, s, s, s, s, s, s, s, s};
}
#elif defined(__AVX2__)
typedef float VecF __attribute__((vector_size(32), may_alias, aligned(4)));
constexpr const char* kIsaName = "avx2";
inline VecF vsplat(float s) { return (VecF){s, s, s, s, s, s, s, s}; }
#else
typedef float VecF __attribute__((vector_size(16), may_alias, aligned(4)));
constexpr const char* kIsaName = "base";
inline VecF vsplat(float s) { return (VecF){s, s, s, s}; }
#endif

constexpr int kW = static_cast<int>(sizeof(VecF) / sizeof(float));
constexpr int kMR = 4;        // A-block rows
constexpr int kNV = 2;        // vectors per row
constexpr int kNR = kW * kNV; // B-panel columns

inline VecF vload(const float* p) {
  return *reinterpret_cast<const VecF*>(p);
}
inline void vstore(float* p, VecF v) { *reinterpret_cast<VecF*>(p) = v; }

void micro_kernel(std::int64_t k, const float* ap, const float* bp, float* c,
                  std::int64_t ldc, std::int64_t mr, std::int64_t nr,
                  const Epilogue* ep, std::int64_t i0, std::int64_t j0) {
  VecF acc[kMR][kNV];
  for (int r = 0; r < kMR; ++r) {
    const VecF ar = vsplat(ap[r]);
    for (int v = 0; v < kNV; ++v) acc[r][v] = ar * vload(bp + v * kW);
  }
  for (std::int64_t kk = 1; kk < k; ++kk) {
    const float* a = ap + kk * kMR;
    const float* b = bp + kk * kNR;
    VecF bv[kNV];
    for (int v = 0; v < kNV; ++v) bv[v] = vload(b + v * kW);
    for (int r = 0; r < kMR; ++r) {
      const VecF ar = vsplat(a[r]);
      for (int v = 0; v < kNV; ++v) acc[r][v] += ar * bv[v];
    }
  }
  if (mr == kMR && nr == kNR) {
    if (ep == nullptr) {
      for (int r = 0; r < kMR; ++r) {
        for (int v = 0; v < kNV; ++v) vstore(c + r * ldc + v * kW, acc[r][v]);
      }
      return;
    }
    // Vectorized write-back epilogue on the full tile. Per-row parameters
    // broadcast (vsplat is a pure copy); per-column parameters load the
    // lane-aligned slice [j0 + v*kW, +kW) — in bounds on a full tile. Every
    // lane runs the identical scalar op sequence of epilogue_apply, one
    // separately-rounded IEEE op per step (the vector ?: selects lanes,
    // matching `x > 0 ? x : 0` including -0.0 and NaN-to-zero).
    const VecF vzero = vsplat(0.0F);
    for (int r = 0; r < kMR; ++r) {
      for (int v = 0; v < kNV; ++v) {
        VecF x = acc[r][v];
        if (ep->bias != nullptr) {
          x = x + (ep->per_row ? vsplat(ep->bias[i0 + r])
                               : vload(ep->bias + j0 + v * kW));
        }
        if (ep->bn_gamma != nullptr) {
          VecF g, mean, inv, beta;
          if (ep->per_row) {
            g = vsplat(ep->bn_gamma[i0 + r]);
            mean = vsplat(ep->bn_mean[i0 + r]);
            inv = vsplat(ep->bn_inv_std[i0 + r]);
            beta = vsplat(ep->bn_beta[i0 + r]);
          } else {
            g = vload(ep->bn_gamma + j0 + v * kW);
            mean = vload(ep->bn_mean + j0 + v * kW);
            inv = vload(ep->bn_inv_std + j0 + v * kW);
            beta = vload(ep->bn_beta + j0 + v * kW);
          }
          x = ((g * (x - mean)) * inv) + beta;
        }
        if (ep->relu) x = x > vzero ? x : vzero;
        vstore(c + r * ldc + v * kW, x);
      }
    }
  } else {
    // Edge tile: spill the full block, then copy only the live mr×nr
    // corner (the packed panels are zero-padded past mr/nr, so the spilled
    // values are well-defined; identical floats to the full-tile path).
    // The epilogue runs scalarly on the live corner — elementwise, so bits
    // match the vector path exactly.
    float tmp[kMR][kNR];
    for (int r = 0; r < kMR; ++r) {
      for (int v = 0; v < kNV; ++v) vstore(&tmp[r][v * kW], acc[r][v]);
    }
    if (ep == nullptr) {
      for (std::int64_t r = 0; r < mr; ++r) {
        for (std::int64_t j = 0; j < nr; ++j) c[r * ldc + j] = tmp[r][j];
      }
    } else {
      for (std::int64_t r = 0; r < mr; ++r) {
        for (std::int64_t j = 0; j < nr; ++j) {
          c[r * ldc + j] =
              epilogue_apply(tmp[r][j], *ep, i0 + r, j0 + j);
        }
      }
    }
  }
}

#else  // portable scalar fallback, same fold

constexpr const char* kIsaName = "scalar";
constexpr int kMR = 4;
constexpr int kNR = 8;

void micro_kernel(std::int64_t k, const float* ap, const float* bp, float* c,
                  std::int64_t ldc, std::int64_t mr, std::int64_t nr,
                  const Epilogue* ep, std::int64_t i0, std::int64_t j0) {
  float acc[kMR][kNR];
  for (int r = 0; r < kMR; ++r) {
    const float ar = ap[r];
    for (int j = 0; j < kNR; ++j) acc[r][j] = ar * bp[j];
  }
  for (std::int64_t kk = 1; kk < k; ++kk) {
    const float* a = ap + kk * kMR;
    const float* b = bp + kk * kNR;
    for (int r = 0; r < kMR; ++r) {
      const float ar = a[r];
      for (int j = 0; j < kNR; ++j) acc[r][j] += ar * b[j];
    }
  }
  for (std::int64_t r = 0; r < mr; ++r) {
    for (std::int64_t j = 0; j < nr; ++j) {
      c[r * ldc + j] = (ep != nullptr)
                           ? epilogue_apply(acc[r][j], *ep, i0 + r, j0 + j)
                           : acc[r][j];
    }
  }
}

#endif

}  // namespace
}  // namespace splitmed::gemmk
