// Tensor shapes. A Shape is an ordered list of non-negative dimensions
// (row-major layout throughout the library). Rank 0 denotes a scalar.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

namespace splitmed {

class Shape {
 public:
  Shape() = default;
  Shape(std::initializer_list<std::int64_t> dims);
  explicit Shape(std::vector<std::int64_t> dims);

  [[nodiscard]] std::size_t rank() const { return dims_.size(); }

  /// Dimension at axis; negative axes count from the back (-1 == last).
  [[nodiscard]] std::int64_t dim(std::int64_t axis) const;

  [[nodiscard]] const std::vector<std::int64_t>& dims() const { return dims_; }

  /// Product of all dims (1 for a scalar shape).
  [[nodiscard]] std::int64_t numel() const;

  /// Row-major strides in elements.
  [[nodiscard]] std::vector<std::int64_t> strides() const;

  /// "[2, 3, 32, 32]"
  [[nodiscard]] std::string str() const;

  bool operator==(const Shape& other) const { return dims_ == other.dims_; }
  bool operator!=(const Shape& other) const { return !(*this == other); }

 private:
  std::vector<std::int64_t> dims_;
};

/// Throws ShapeError with a readable message when a != b.
void check_same_shape(const Shape& a, const Shape& b, const char* context);

}  // namespace splitmed
