#include "src/tensor/gemm.hpp"

#include <algorithm>
#include <cstring>

#include "src/common/error.hpp"

namespace splitmed {
namespace {

// Cache-blocking tile sizes; modest because the simulator's matrices are
// small-to-medium. The i-k-j loop order keeps the innermost loop contiguous
// in both B and C, which the compiler auto-vectorizes.
constexpr std::int64_t kTileI = 32;
constexpr std::int64_t kTileK = 64;

void check_sizes(std::int64_t m, std::int64_t n, std::int64_t k,
                 std::size_t a, std::size_t b, std::size_t c) {
  SPLITMED_CHECK(m >= 0 && n >= 0 && k >= 0, "gemm: negative dimension");
  SPLITMED_CHECK(a >= static_cast<std::size_t>(m * k) &&
                     b >= static_cast<std::size_t>(k * n) &&
                     c >= static_cast<std::size_t>(m * n),
                 "gemm: span smaller than m/n/k imply");
}

}  // namespace

void gemm_nn(std::int64_t m, std::int64_t n, std::int64_t k,
             std::span<const float> a, std::span<const float> b,
             std::span<float> c) {
  check_sizes(m, n, k, a.size(), b.size(), c.size());
  std::memset(c.data(), 0, static_cast<std::size_t>(m * n) * sizeof(float));
  for (std::int64_t i0 = 0; i0 < m; i0 += kTileI) {
    const std::int64_t i1 = std::min(i0 + kTileI, m);
    for (std::int64_t k0 = 0; k0 < k; k0 += kTileK) {
      const std::int64_t k1 = std::min(k0 + kTileK, k);
      for (std::int64_t i = i0; i < i1; ++i) {
        float* ci = c.data() + i * n;
        for (std::int64_t kk = k0; kk < k1; ++kk) {
          const float aik = a[static_cast<std::size_t>(i * k + kk)];
          const float* bk = b.data() + kk * n;
          for (std::int64_t j = 0; j < n; ++j) ci[j] += aik * bk[j];
        }
      }
    }
  }
}

void gemm_tn(std::int64_t m, std::int64_t n, std::int64_t k,
             std::span<const float> a, std::span<const float> b,
             std::span<float> c) {
  check_sizes(m, n, k, a.size(), b.size(), c.size());
  std::memset(c.data(), 0, static_cast<std::size_t>(m * n) * sizeof(float));
  // A is [k, m]; walk k outermost so both A-row and B-row are contiguous.
  for (std::int64_t kk = 0; kk < k; ++kk) {
    const float* ak = a.data() + kk * m;
    const float* bk = b.data() + kk * n;
    for (std::int64_t i = 0; i < m; ++i) {
      const float aki = ak[i];
      float* ci = c.data() + i * n;
      for (std::int64_t j = 0; j < n; ++j) ci[j] += aki * bk[j];
    }
  }
}

void gemm_nt(std::int64_t m, std::int64_t n, std::int64_t k,
             std::span<const float> a, std::span<const float> b,
             std::span<float> c) {
  check_sizes(m, n, k, a.size(), b.size(), c.size());
  // B is [n, k]; dot products over contiguous rows of A and B.
  for (std::int64_t i = 0; i < m; ++i) {
    const float* ai = a.data() + i * k;
    float* ci = c.data() + i * n;
    for (std::int64_t j = 0; j < n; ++j) {
      const float* bj = b.data() + j * k;
      float acc = 0.0F;
      for (std::int64_t kk = 0; kk < k; ++kk) acc += ai[kk] * bj[kk];
      ci[j] = acc;
    }
  }
}

}  // namespace splitmed
