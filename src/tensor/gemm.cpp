#include "src/tensor/gemm.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>

#include "src/common/error.hpp"
#include "src/common/thread_pool.hpp"
#include "src/obs/obs.hpp"

namespace splitmed {
namespace {

/// Accounts one gemm call against the pre-registered observability counters.
/// gemm runs inside parallel_for bodies (conv2d parallelizes over the
/// batch), so this must never touch the registry mutex: the counters are
/// fetched as single atomic pointer loads, null when observability is off —
/// the disabled path is two relaxed loads and two branches, no clock read.
class GemmTimer {
 public:
  GemmTimer()
      : seconds_(obs::gemm_seconds_counter()),
        calls_(obs::gemm_calls_counter()) {
    if (seconds_ != nullptr) begin_ = std::chrono::steady_clock::now();
  }
  ~GemmTimer() {
    if (calls_ != nullptr) calls_->inc();
    if (seconds_ != nullptr) {
      seconds_->inc(std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - begin_)
                        .count());
    }
  }
  GemmTimer(const GemmTimer&) = delete;
  GemmTimer& operator=(const GemmTimer&) = delete;

 private:
  obs::Counter* seconds_;
  obs::Counter* calls_;
  std::chrono::steady_clock::time_point begin_;
};

// Cache-blocking tile sizes; modest because the simulator's matrices are
// small-to-medium. The i-k-j loop order keeps the innermost loop contiguous
// in both B and C, which the compiler auto-vectorizes.
constexpr std::int64_t kTileI = 32;
constexpr std::int64_t kTileK = 64;

// Matrices below this many multiply-adds are not worth a fork-join; also
// sets the minimum per-chunk work when partitioning rows across threads.
constexpr std::int64_t kParallelFlops = 32 * 1024;

/// Multiplies non-negative int64 dims, throwing instead of overflowing.
std::int64_t checked_mul(std::int64_t x, std::int64_t y) {
  std::int64_t out = 0;
  SPLITMED_CHECK(!__builtin_mul_overflow(x, y, &out),
                 "gemm: dimension product " << x << " * " << y
                                            << " overflows int64");
  return out;
}

void check_sizes(std::int64_t m, std::int64_t n, std::int64_t k,
                 std::size_t a, std::size_t b, std::size_t c) {
  SPLITMED_CHECK(m >= 0 && n >= 0 && k >= 0, "gemm: negative dimension");
  SPLITMED_CHECK(a >= static_cast<std::size_t>(checked_mul(m, k)) &&
                     b >= static_cast<std::size_t>(checked_mul(k, n)) &&
                     c >= static_cast<std::size_t>(checked_mul(m, n)),
                 "gemm: span smaller than m/n/k imply");
}

/// Minimum rows per parallel chunk so each chunk does >= kParallelFlops
/// multiply-adds (rows below that run serially inline).
std::int64_t row_grain(std::int64_t n, std::int64_t k) {
  const std::int64_t per_row = std::max<std::int64_t>(n * k, 1);
  return std::max<std::int64_t>(1, kParallelFlops / per_row);
}

}  // namespace

void gemm_nn(std::int64_t m, std::int64_t n, std::int64_t k,
             std::span<const float> a, std::span<const float> b,
             std::span<float> c) {
  const GemmTimer timer;
  check_sizes(m, n, k, a.size(), b.size(), c.size());
  std::memset(c.data(), 0, static_cast<std::size_t>(m * n) * sizeof(float));
  // Rows of C are independent; each chunk runs the serial tiled kernel over
  // its own disjoint row span, so any partition is bitwise identical to the
  // single-threaded result (per row, the k-loop order never changes).
  parallel_for(0, m, row_grain(n, k), [&](std::int64_t r0, std::int64_t r1) {
    for (std::int64_t i0 = r0; i0 < r1; i0 += kTileI) {
      const std::int64_t i1 = std::min(i0 + kTileI, r1);
      for (std::int64_t k0 = 0; k0 < k; k0 += kTileK) {
        const std::int64_t k1 = std::min(k0 + kTileK, k);
        for (std::int64_t i = i0; i < i1; ++i) {
          float* ci = c.data() + i * n;
          for (std::int64_t kk = k0; kk < k1; ++kk) {
            const float aik = a[static_cast<std::size_t>(i * k + kk)];
            const float* bk = b.data() + kk * n;
            for (std::int64_t j = 0; j < n; ++j) ci[j] += aik * bk[j];
          }
        }
      }
    }
  });
}

void gemm_tn(std::int64_t m, std::int64_t n, std::int64_t k,
             std::span<const float> a, std::span<const float> b,
             std::span<float> c) {
  const GemmTimer timer;
  check_sizes(m, n, k, a.size(), b.size(), c.size());
  std::memset(c.data(), 0, static_cast<std::size_t>(m * n) * sizeof(float));
  // A is [k, m]; walk k outermost so both A-row and B-row are contiguous.
  // Partitioning over rows of C keeps each row's k-ascending accumulation
  // order intact, so results match the serial path bitwise.
  parallel_for(0, m, row_grain(n, k), [&](std::int64_t r0, std::int64_t r1) {
    for (std::int64_t kk = 0; kk < k; ++kk) {
      const float* ak = a.data() + kk * m;
      const float* bk = b.data() + kk * n;
      for (std::int64_t i = r0; i < r1; ++i) {
        const float aki = ak[i];
        float* ci = c.data() + i * n;
        for (std::int64_t j = 0; j < n; ++j) ci[j] += aki * bk[j];
      }
    }
  });
}

void gemm_nt(std::int64_t m, std::int64_t n, std::int64_t k,
             std::span<const float> a, std::span<const float> b,
             std::span<float> c) {
  const GemmTimer timer;
  check_sizes(m, n, k, a.size(), b.size(), c.size());
  // B is [n, k]; dot products over contiguous rows of A and B.
  parallel_for(0, m, row_grain(n, k), [&](std::int64_t r0, std::int64_t r1) {
    for (std::int64_t i = r0; i < r1; ++i) {
      const float* ai = a.data() + i * k;
      float* ci = c.data() + i * n;
      for (std::int64_t j = 0; j < n; ++j) {
        const float* bj = b.data() + j * k;
        float acc = 0.0F;
        for (std::int64_t kk = 0; kk < k; ++kk) acc += ai[kk] * bj[kk];
        ci[j] = acc;
      }
    }
  });
}

}  // namespace splitmed
