// Packed, register-blocked GEMM.
//
// Each kernel has three stages:
//   1. Pack B once (calling thread) into NR-column panels, k-major with the
//      NR columns interleaved, tail columns zero-padded.
//   2. parallel_for over rows of C; each chunk packs its own A rows into
//      MR-row blocks in its thread's workspace arena.
//   3. An MR×NR micro-kernel (src/tensor/gemm_kernels.hpp) computes each C
//      tile with one register accumulator per element, write-first.
//
// Determinism: every C element is the strict left fold
//   c = a[i,0]*b[0,j]; c += a[i,1]*b[1,j]; ... (k ascending)
// exactly as in the *_ref kernels — packing is pure data movement, row
// partitioning never splits a row, and the micro-kernel keeps one
// accumulator per element. Results are bitwise identical for any thread
// count and any dispatched ISA variant; gemm_test asserts this against the
// reference.
#include "src/tensor/gemm.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <string>

#include "src/common/error.hpp"
#include "src/common/thread_pool.hpp"
#include "src/obs/obs.hpp"
#include "src/tensor/gemm_kernels.hpp"
#include "src/tensor/workspace.hpp"

namespace splitmed {
namespace {

/// Accounts one gemm call against the pre-registered observability counters.
/// gemm runs inside parallel_for bodies (conv2d parallelizes over the
/// batch), so this must never touch the registry mutex: the counters are
/// fetched as single atomic pointer loads, null when observability is off —
/// the disabled path is two relaxed loads and two branches, no clock read.
class GemmTimer {
 public:
  GemmTimer()
      : seconds_(obs::gemm_seconds_counter()),
        calls_(obs::gemm_calls_counter()) {
    if (seconds_ != nullptr) begin_ = std::chrono::steady_clock::now();
  }
  ~GemmTimer() {
    if (calls_ != nullptr) calls_->inc();
    if (seconds_ != nullptr) {
      seconds_->inc(std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - begin_)
                        .count());
    }
  }
  GemmTimer(const GemmTimer&) = delete;
  GemmTimer& operator=(const GemmTimer&) = delete;

 private:
  obs::Counter* seconds_;
  obs::Counter* calls_;
  std::chrono::steady_clock::time_point begin_;
};

// Matrices below this many multiply-adds are not worth a fork-join; also
// sets the minimum per-chunk work when partitioning rows across threads.
constexpr std::int64_t kParallelFlops = 32 * 1024;

/// Multiplies non-negative int64 dims, throwing instead of overflowing.
std::int64_t checked_mul(std::int64_t x, std::int64_t y) {
  std::int64_t out = 0;
  SPLITMED_CHECK(!__builtin_mul_overflow(x, y, &out),
                 "gemm: dimension product " << x << " * " << y
                                            << " overflows int64");
  return out;
}

void check_sizes(std::int64_t m, std::int64_t n, std::int64_t k,
                 std::size_t a, std::size_t b, std::size_t c) {
  SPLITMED_CHECK(m >= 0 && n >= 0 && k >= 0, "gemm: negative dimension");
  SPLITMED_CHECK(a >= static_cast<std::size_t>(checked_mul(m, k)) &&
                     b >= static_cast<std::size_t>(checked_mul(k, n)) &&
                     c >= static_cast<std::size_t>(checked_mul(m, n)),
                 "gemm: span smaller than m/n/k imply");
}

/// Minimum rows per parallel chunk so each chunk does >= kParallelFlops
/// multiply-adds (rows below that run serially inline).
std::int64_t row_grain(std::int64_t n, std::int64_t k) {
  const std::int64_t per_row = std::max<std::int64_t>(n * k, 1);
  return std::max<std::int64_t>(1, kParallelFlops / per_row);
}

/// Handles the degenerate shapes every kernel shares: nothing to write when
/// m or n is zero; an empty reduction writes zeros (the write-first kernels
/// need k >= 1). Returns true when the call is fully handled.
bool handle_empty(std::int64_t m, std::int64_t n, std::int64_t k, float* c) {
  if (m <= 0 || n <= 0) return true;
  if (k <= 0) {
    std::memset(c, 0, static_cast<std::size_t>(m * n) * sizeof(float));
    return true;
  }
  return false;
}

/// Scalar epilogue pass over all of C, used only for the degenerate k <= 0
/// shape (where no micro-kernel runs): the same per-element op sequence as
/// gemmk's epilogue_apply, applied to the zeroed C. This TU compiles with
/// the project's default flags (generic x86-64, no FMA), so each step stays
/// one separately-rounded op exactly like the kernel write-back path.
void apply_epilogue_full(std::int64_t m, std::int64_t n, float* c,
                         const gemmk::Epilogue& ep) {
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      const std::int64_t p = ep.per_row ? i : j;
      float x = c[i * n + j];
      if (ep.bias != nullptr) x = x + ep.bias[p];
      if (ep.bn_gamma != nullptr) {
        x = ((ep.bn_gamma[p] * (x - ep.bn_mean[p])) * ep.bn_inv_std[p]) +
            ep.bn_beta[p];
      }
      if (ep.relu) x = x > 0.0F ? x : 0.0F;
      c[i * n + j] = x;
    }
  }
}

// A's element (i, kk) lives at a[i*k + kk] (kNormal, A is [m,k]) or at
// a[kk*m + i] (kTransposed, A is [k,m]). Likewise B's (kk, j) is
// b[kk*n + j] (kNormal, B is [k,n]) or b[j*k + kk] (kTransposed, B [n,k]).
enum class AKind { kNormal, kTransposed };
enum class BKind { kNormal, kTransposed };

/// Packs all of B into ceil(n/NR) panels; panel jp holds columns
/// [jp*NR, jp*NR+NR) as k-major rows of NR interleaved floats, tail columns
/// zero-padded so the micro-kernel never branches on column bounds.
void pack_b(BKind kind, std::int64_t n, std::int64_t k, const float* b,
            std::int64_t nr_max, float* bp) {
  const std::int64_t panels = (n + nr_max - 1) / nr_max;
  for (std::int64_t jp = 0; jp < panels; ++jp) {
    const std::int64_t j0 = jp * nr_max;
    const std::int64_t nr = std::min(nr_max, n - j0);
    float* dst = bp + jp * k * nr_max;
    if (kind == BKind::kNormal) {
      for (std::int64_t kk = 0; kk < k; ++kk) {
        const float* src = b + kk * n + j0;
        float* d = dst + kk * nr_max;
        for (std::int64_t j = 0; j < nr; ++j) d[j] = src[j];
        for (std::int64_t j = nr; j < nr_max; ++j) d[j] = 0.0F;
      }
    } else {
      for (std::int64_t j = 0; j < nr; ++j) {
        const float* src = b + (j0 + j) * k;
        for (std::int64_t kk = 0; kk < k; ++kk) dst[kk * nr_max + j] = src[kk];
      }
      for (std::int64_t j = nr; j < nr_max; ++j) {
        for (std::int64_t kk = 0; kk < k; ++kk) dst[kk * nr_max + j] = 0.0F;
      }
    }
  }
}

/// Packs A rows [r0, r1) into ceil((r1-r0)/MR) blocks; block ib holds rows
/// [r0+ib*MR, +MR) as k-major groups of MR interleaved floats, tail rows
/// zero-padded.
void pack_a(AKind kind, std::int64_t m, std::int64_t k, const float* a,
            std::int64_t r0, std::int64_t r1, std::int64_t mr_max,
            float* ap) {
  const std::int64_t blocks = (r1 - r0 + mr_max - 1) / mr_max;
  for (std::int64_t ib = 0; ib < blocks; ++ib) {
    const std::int64_t i0 = r0 + ib * mr_max;
    const std::int64_t mr = std::min(mr_max, r1 - i0);
    float* dst = ap + ib * k * mr_max;
    if (kind == AKind::kNormal) {
      for (std::int64_t r = 0; r < mr; ++r) {
        const float* src = a + (i0 + r) * k;
        for (std::int64_t kk = 0; kk < k; ++kk) dst[kk * mr_max + r] = src[kk];
      }
      for (std::int64_t r = mr; r < mr_max; ++r) {
        for (std::int64_t kk = 0; kk < k; ++kk) dst[kk * mr_max + r] = 0.0F;
      }
    } else {
      for (std::int64_t kk = 0; kk < k; ++kk) {
        const float* src = a + kk * m + i0;
        float* d = dst + kk * mr_max;
        for (std::int64_t r = 0; r < mr; ++r) d[r] = src[r];
        for (std::int64_t r = mr; r < mr_max; ++r) d[r] = 0.0F;
      }
    }
  }
}

/// The shared driver behind gemm_nn/tn/nt. Preconditions: m, n, k >= 1 and
/// spans validated. C rows are partitioned across threads; chunks never
/// split a row, so any partition is bitwise identical to serial execution.
void gemm_packed(AKind ak, BKind bk, std::int64_t m, std::int64_t n,
                 std::int64_t k, const float* a, const float* b, float* c,
                 const gemmk::Epilogue* ep = nullptr) {
  const gemmk::MicroKernel& mk = gemmk::active_kernel();
  const std::int64_t mr_max = mk.block_rows;
  const std::int64_t nr_max = mk.panel_cols;
  const std::int64_t panels = (n + nr_max - 1) / nr_max;
  // B is packed once by the calling thread and read by every worker; the
  // pool's fork ordering publishes it before any chunk runs.
  ws::WorkspaceScope bscope;
  float* bp = bscope.floats(checked_mul(panels * nr_max, k)).data();
  pack_b(bk, n, k, b, nr_max, bp);
  parallel_for(0, m, row_grain(n, k), [&](std::int64_t r0, std::int64_t r1) {
    // Each chunk packs its rows of A into its own thread's arena.
    ws::WorkspaceScope ascope;
    const std::int64_t blocks = (r1 - r0 + mr_max - 1) / mr_max;
    float* ap = ascope.floats(checked_mul(blocks * mr_max, k)).data();
    pack_a(ak, m, k, a, r0, r1, mr_max, ap);
    // A block (k*MR floats) stays hot in L1 while the B panels stream by.
    for (std::int64_t ib = 0; ib < blocks; ++ib) {
      const std::int64_t i0 = r0 + ib * mr_max;
      const std::int64_t mr = std::min(mr_max, r1 - i0);
      const float* ablock = ap + ib * k * mr_max;
      for (std::int64_t jp = 0; jp < panels; ++jp) {
        const std::int64_t j0 = jp * nr_max;
        const std::int64_t nr = std::min(nr_max, n - j0);
        mk.fn(k, ablock, bp + jp * k * nr_max, c + i0 * n + j0, n, mr, nr, ep,
              i0, j0);
      }
    }
  });
}

/// Picks the widest micro-kernel this CPU supports; SPLITMED_GEMM_ISA
/// narrows it (values: base, avx2, avx512 — unsupported requests fall back
/// to the best available, never up).
gemmk::MicroKernel pick_kernel() {
#if defined(__x86_64__) && defined(__GNUC__)
  const char* env = std::getenv("SPLITMED_GEMM_ISA");
  const std::string want = (env != nullptr) ? env : "";
  const bool has_avx2 = __builtin_cpu_supports("avx2") != 0;
  const bool has_avx512 = __builtin_cpu_supports("avx512f") != 0;
  if (want == "base") return gemmk::base_kernel();
  if (want == "avx2" && has_avx2) return gemmk::avx2_kernel();
  if (want != "avx2" && has_avx512) return gemmk::avx512_kernel();
  if (has_avx2) return gemmk::avx2_kernel();
#endif
  return gemmk::base_kernel();
}

}  // namespace

namespace gemmk {

const MicroKernel& active_kernel() {
  static const MicroKernel kernel = pick_kernel();
  return kernel;
}

}  // namespace gemmk

const char* gemm_kernel_isa() { return gemmk::active_kernel().isa; }

void gemm_nn(std::int64_t m, std::int64_t n, std::int64_t k,
             std::span<const float> a, std::span<const float> b,
             std::span<float> c) {
  const GemmTimer timer;
  check_sizes(m, n, k, a.size(), b.size(), c.size());
  if (handle_empty(m, n, k, c.data())) return;
  gemm_packed(AKind::kNormal, BKind::kNormal, m, n, k, a.data(), b.data(),
              c.data());
}

void gemm_tn(std::int64_t m, std::int64_t n, std::int64_t k,
             std::span<const float> a, std::span<const float> b,
             std::span<float> c) {
  const GemmTimer timer;
  check_sizes(m, n, k, a.size(), b.size(), c.size());
  if (handle_empty(m, n, k, c.data())) return;
  gemm_packed(AKind::kTransposed, BKind::kNormal, m, n, k, a.data(), b.data(),
              c.data());
}

void gemm_nt(std::int64_t m, std::int64_t n, std::int64_t k,
             std::span<const float> a, std::span<const float> b,
             std::span<float> c) {
  const GemmTimer timer;
  check_sizes(m, n, k, a.size(), b.size(), c.size());
  if (handle_empty(m, n, k, c.data())) return;
  gemm_packed(AKind::kNormal, BKind::kTransposed, m, n, k, a.data(), b.data(),
              c.data());
}

void gemm_nn_ep(std::int64_t m, std::int64_t n, std::int64_t k,
                std::span<const float> a, std::span<const float> b,
                std::span<float> c, const gemmk::Epilogue& ep) {
  const GemmTimer timer;
  check_sizes(m, n, k, a.size(), b.size(), c.size());
  if (handle_empty(m, n, k, c.data())) {
    if (m > 0 && n > 0) apply_epilogue_full(m, n, c.data(), ep);
    return;
  }
  gemm_packed(AKind::kNormal, BKind::kNormal, m, n, k, a.data(), b.data(),
              c.data(), &ep);
}

void gemm_nt_ep(std::int64_t m, std::int64_t n, std::int64_t k,
                std::span<const float> a, std::span<const float> b,
                std::span<float> c, const gemmk::Epilogue& ep) {
  const GemmTimer timer;
  check_sizes(m, n, k, a.size(), b.size(), c.size());
  if (handle_empty(m, n, k, c.data())) {
    if (m > 0 && n > 0) apply_epilogue_full(m, n, c.data(), ep);
    return;
  }
  gemm_packed(AKind::kNormal, BKind::kTransposed, m, n, k, a.data(), b.data(),
              c.data(), &ep);
}

// ---------------------------------------------------------------------------
// Reference kernels: the ground-truth fold, serial and pack-free. The first
// k term is WRITTEN (never read-modify-write of stale C), later terms are
// added in ascending k — exactly what the packed path reproduces.

void gemm_nn_ref(std::int64_t m, std::int64_t n, std::int64_t k,
                 std::span<const float> a, std::span<const float> b,
                 std::span<float> c) {
  check_sizes(m, n, k, a.size(), b.size(), c.size());
  if (handle_empty(m, n, k, c.data())) return;
  for (std::int64_t i = 0; i < m; ++i) {
    const float* ai = a.data() + i * k;
    float* ci = c.data() + i * n;
    const float ai0 = ai[0];
    const float* b0 = b.data();
    for (std::int64_t j = 0; j < n; ++j) ci[j] = ai0 * b0[j];
    for (std::int64_t kk = 1; kk < k; ++kk) {
      const float aik = ai[kk];
      const float* bk = b.data() + kk * n;
      for (std::int64_t j = 0; j < n; ++j) ci[j] += aik * bk[j];
    }
  }
}

void gemm_tn_ref(std::int64_t m, std::int64_t n, std::int64_t k,
                 std::span<const float> a, std::span<const float> b,
                 std::span<float> c) {
  check_sizes(m, n, k, a.size(), b.size(), c.size());
  if (handle_empty(m, n, k, c.data())) return;
  // A is [k, m]; k outermost keeps both A and B rows contiguous.
  const float* a0 = a.data();
  const float* b0 = b.data();
  for (std::int64_t i = 0; i < m; ++i) {
    const float a0i = a0[i];
    float* ci = c.data() + i * n;
    for (std::int64_t j = 0; j < n; ++j) ci[j] = a0i * b0[j];
  }
  for (std::int64_t kk = 1; kk < k; ++kk) {
    const float* ak = a.data() + kk * m;
    const float* bk = b.data() + kk * n;
    for (std::int64_t i = 0; i < m; ++i) {
      const float aki = ak[i];
      float* ci = c.data() + i * n;
      for (std::int64_t j = 0; j < n; ++j) ci[j] += aki * bk[j];
    }
  }
}

void gemm_nt_ref(std::int64_t m, std::int64_t n, std::int64_t k,
                 std::span<const float> a, std::span<const float> b,
                 std::span<float> c) {
  check_sizes(m, n, k, a.size(), b.size(), c.size());
  if (handle_empty(m, n, k, c.data())) return;
  // B is [n, k]; dot products over contiguous rows of A and B.
  for (std::int64_t i = 0; i < m; ++i) {
    const float* ai = a.data() + i * k;
    float* ci = c.data() + i * n;
    for (std::int64_t j = 0; j < n; ++j) {
      const float* bj = b.data() + j * k;
      float acc = ai[0] * bj[0];
      for (std::int64_t kk = 1; kk < k; ++kk) acc += ai[kk] * bj[kk];
      ci[j] = acc;
    }
  }
}

}  // namespace splitmed
