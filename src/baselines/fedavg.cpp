#include "src/baselines/fedavg.hpp"

#include "src/common/error.hpp"
#include "src/common/logging.hpp"
#include "src/common/thread_pool.hpp"
#include "src/core/protocol.hpp"
#include "src/metrics/evaluate.hpp"
#include "src/nn/loss.hpp"
#include "src/nn/param_util.hpp"
#include "src/tensor/ops.hpp"

namespace splitmed::baselines {

FedAvgTrainer::FedAvgTrainer(core::ModelBuilder builder,
                             const data::Dataset& train,
                             data::Partition partition,
                             const data::Dataset& test, BaselineConfig config)
    : config_(std::move(config)), train_(&train), test_(&test) {
  if (config_.threads > 0) set_global_threads(config_.threads);
  SPLITMED_CHECK(!partition.empty(), "partition has no platforms");
  SPLITMED_CHECK(config_.local_steps > 0, "local_steps must be positive");
  const std::int64_t k = static_cast<std::int64_t>(partition.size());
  SPLITMED_CHECK(config_.total_batch >= k, "batch below one per platform");

  topology_ = config_.hospital_wan
                  ? net::build_hospital_star(network_, k)
                  : net::build_uniform_star(network_, k, config_.uniform_link);
  model_ = std::make_unique<models::BuiltModel>(builder());

  double total = 0.0;
  for (const auto& shard : partition) {
    SPLITMED_CHECK(!shard.empty(), "empty platform shard");
    total += static_cast<double>(shard.size());
  }
  const std::int64_t local_batch = config_.total_batch / k;
  Rng loader_rng(config_.seed);
  for (std::int64_t p = 0; p < k; ++p) {
    shard_weights_.push_back(
        static_cast<double>(partition[static_cast<std::size_t>(p)].size()) /
        total);
    loaders_.emplace_back(train, partition[static_cast<std::size_t>(p)],
                          std::max<std::int64_t>(1, local_batch),
                          loader_rng.split(static_cast<std::uint64_t>(p)));
  }
}

metrics::TrainReport FedAvgTrainer::run() {
  metrics::TrainReport report;
  report.protocol = "fedavg";
  report.model = model_->name;

  const auto params = model_->net.parameters();
  nn::SoftmaxCrossEntropy loss_fn;
  const auto kPull = static_cast<std::uint32_t>(BaselineMsg::kFedPull);
  const auto kPush = static_cast<std::uint32_t>(BaselineMsg::kFedPush);

  for (std::int64_t round = 1; round <= config_.steps; ++round) {
    const Tensor global = nn::flatten_values(params);
    Tensor average(global.shape());
    double loss_acc = 0.0;

    for (std::size_t p = 0; p < loaders_.size(); ++p) {
      // Server -> platform: global parameters.
      network_.send(core::make_tensor_envelope(
          topology_.server, topology_.platforms[p], kPull,
          static_cast<std::uint64_t>(round), global));
      const Tensor pulled = core::decode_tensor_payload(
          network_.receive(topology_.platforms[p]).payload);
      nn::load_values(params, pulled);

      // Local training: fresh optimizer per round (no stale momentum from
      // other platforms' passes through the shared instance).
      optim::Sgd local_opt(params, config_.sgd);
      if (config_.lr_schedule) {
        const auto epoch = static_cast<std::int64_t>(
            static_cast<double>(round * config_.local_steps *
                                config_.total_batch) /
            static_cast<double>(train_->size()));
        local_opt.set_learning_rate(config_.lr_schedule(epoch));
      }
      for (std::int64_t s = 0; s < config_.local_steps; ++s) {
        data::Batch batch = loaders_[p].next_batch();
        model_->net.zero_grad();
        const Tensor logits = model_->net.forward(batch.images, true);
        loss_acc += loss_fn.forward(logits, batch.labels);
        model_->net.backward(loss_fn.backward());
        local_opt.step();
      }

      // Platform -> server: updated parameters; server accumulates the
      // shard-size-weighted average.
      const Tensor updated = nn::flatten_values(params);
      network_.send(core::make_tensor_envelope(
          topology_.platforms[p], topology_.server, kPush,
          static_cast<std::uint64_t>(round), updated));
      const Tensor pushed = core::decode_tensor_payload(
          network_.receive(topology_.server).payload);
      ops::axpy(static_cast<float>(shard_weights_[p]), pushed, average);
    }
    nn::load_values(params, average);

    const bool budget_hit =
        config_.byte_budget > 0 &&
        network_.stats().total_bytes() >= config_.byte_budget;
    if (round % config_.eval_every == 0 || round == config_.steps ||
        budget_hit) {
      metrics::CurvePoint point;
      point.step = round;
      point.epoch =
          static_cast<double>(round * config_.local_steps *
                              config_.total_batch) /
          static_cast<double>(train_->size());
      point.cumulative_bytes = network_.stats().total_bytes();
      point.sim_seconds = network_.clock().now();
      point.train_loss =
          loss_acc / static_cast<double>(loaders_.size() *
                                         static_cast<std::size_t>(
                                             config_.local_steps));
      point.test_accuracy =
          metrics::evaluate_model(model_->net, *test_, config_.eval_batch);
      report.curve.push_back(point);
      SPLITMED_LOG(kInfo) << "fedavg round " << round << " loss "
                          << point.train_loss << " acc "
                          << point.test_accuracy;
      report.steps_completed = round;
      report.final_accuracy = point.test_accuracy;
    }
    if (budget_hit) break;
  }
  report.total_bytes = network_.stats().total_bytes();
  report.total_sim_seconds = network_.clock().now();
  return report;
}

}  // namespace splitmed::baselines
