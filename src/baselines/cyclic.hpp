// Cyclic parameter sharing (Jeon, Kim & Kim, ICAIIC 2019 — the paper's
// reference [3], the authors' own prior approach): the FULL model travels
// hospital -> hospital in a ring. Each platform trains it locally for a few
// steps on its own data, then forwards the weights to the next platform
// (one full-parameter transfer per hop; no central server involved in
// training). Privacy-preserving like the split framework (raw data never
// moves) but pays parameter-sized messages and learns sequentially.
#pragma once

#include <memory>

#include "src/baselines/baseline_config.hpp"
#include "src/core/trainer.hpp"

namespace splitmed::baselines {

/// Message kind for ring transfers (disjoint from other protocols).
inline constexpr std::uint32_t kCyclicTransfer = 301;

class CyclicTrainer {
 public:
  CyclicTrainer(core::ModelBuilder builder, const data::Dataset& train,
                data::Partition partition, const data::Dataset& test,
                BaselineConfig config);

  /// config.steps counts full CYCLES around the ring; each platform runs
  /// config.local_steps local SGD steps per visit.
  metrics::TrainReport run();

  [[nodiscard]] net::Network& network() { return network_; }
  [[nodiscard]] nn::Sequential& model() { return model_->net; }

 private:
  BaselineConfig config_;
  const data::Dataset* train_;
  const data::Dataset* test_;
  net::Network network_;
  std::vector<NodeId> ring_;  // platform nodes in visit order
  std::unique_ptr<models::BuiltModel> model_;
  std::vector<data::DataLoader> loaders_;
};

}  // namespace splitmed::baselines
