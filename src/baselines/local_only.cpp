#include "src/baselines/local_only.hpp"

#include <algorithm>

#include "src/common/error.hpp"
#include "src/common/logging.hpp"
#include "src/common/thread_pool.hpp"
#include "src/metrics/evaluate.hpp"
#include "src/nn/loss.hpp"

namespace splitmed::baselines {

LocalOnlyTrainer::LocalOnlyTrainer(core::ModelBuilder builder,
                                   const data::Dataset& train,
                                   data::Partition partition,
                                   const data::Dataset& test,
                                   BaselineConfig config)
    : config_(std::move(config)), train_(&train), test_(&test) {
  if (config_.threads > 0) set_global_threads(config_.threads);
  SPLITMED_CHECK(!partition.empty(), "partition has no platforms");
  const std::int64_t k = static_cast<std::int64_t>(partition.size());
  const std::int64_t local_batch =
      std::max<std::int64_t>(1, config_.total_batch / k);
  Rng loader_rng(config_.seed);
  for (std::int64_t p = 0; p < k; ++p) {
    SPLITMED_CHECK(!partition[static_cast<std::size_t>(p)].empty(),
                   "empty platform shard");
    models_.push_back(std::make_unique<models::BuiltModel>(builder()));
    optimizers_.push_back(std::make_unique<optim::Sgd>(
        models_.back()->net.parameters(), config_.sgd));
    loaders_.emplace_back(
        train, partition[static_cast<std::size_t>(p)],
        std::min<std::int64_t>(
            local_batch,
            static_cast<std::int64_t>(
                partition[static_cast<std::size_t>(p)].size())),
        loader_rng.split(static_cast<std::uint64_t>(p)));
  }
}

LocalOnlyReport LocalOnlyTrainer::run() {
  LocalOnlyReport out;
  out.combined.protocol = "local-only";
  out.combined.model = models_.front()->name;

  nn::SoftmaxCrossEntropy loss_fn;
  for (std::int64_t step = 1; step <= config_.steps; ++step) {
    double loss_acc = 0.0;
    for (std::size_t p = 0; p < models_.size(); ++p) {
      data::Batch batch = loaders_[p].next_batch();
      models_[p]->net.zero_grad();
      const Tensor logits = models_[p]->net.forward(batch.images, true);
      loss_acc += loss_fn.forward(logits, batch.labels);
      models_[p]->net.backward(loss_fn.backward());
      optimizers_[p]->step();
    }
    if (step % config_.eval_every == 0 || step == config_.steps) {
      double mean_acc = 0.0;
      out.platform_accuracy.clear();
      for (auto& m : models_) {
        const double acc =
            metrics::evaluate_model(m->net, *test_, config_.eval_batch);
        out.platform_accuracy.push_back(acc);
        mean_acc += acc;
      }
      mean_acc /= static_cast<double>(models_.size());
      metrics::CurvePoint point;
      point.step = step;
      point.train_loss = loss_acc / static_cast<double>(models_.size());
      point.test_accuracy = mean_acc;
      out.combined.curve.push_back(point);
      SPLITMED_LOG(kInfo) << "local-only step " << step << " mean acc "
                          << mean_acc;
      out.combined.steps_completed = step;
      out.combined.final_accuracy = mean_acc;
    }
  }
  if (!out.platform_accuracy.empty()) {
    out.min_accuracy = *std::min_element(out.platform_accuracy.begin(),
                                         out.platform_accuracy.end());
    out.max_accuracy = *std::max_element(out.platform_accuracy.begin(),
                                         out.platform_accuracy.end());
  }
  return out;
}

}  // namespace splitmed::baselines
