#include "src/baselines/cyclic.hpp"

#include "src/common/error.hpp"
#include "src/common/logging.hpp"
#include "src/common/thread_pool.hpp"
#include "src/core/protocol.hpp"
#include "src/metrics/evaluate.hpp"
#include "src/nn/loss.hpp"
#include "src/nn/param_util.hpp"

namespace splitmed::baselines {

CyclicTrainer::CyclicTrainer(core::ModelBuilder builder,
                             const data::Dataset& train,
                             data::Partition partition,
                             const data::Dataset& test, BaselineConfig config)
    : config_(std::move(config)), train_(&train), test_(&test) {
  if (config_.threads > 0) set_global_threads(config_.threads);
  SPLITMED_CHECK(partition.size() >= 2,
                 "cyclic transfer needs at least two platforms");
  SPLITMED_CHECK(config_.local_steps > 0, "local_steps must be positive");
  const std::int64_t k = static_cast<std::int64_t>(partition.size());

  // Ring topology: hospital i <-> hospital (i+1) % K. We reuse the WAN
  // profiles for the inter-hospital links.
  const auto& profiles = net::hospital_wan_profiles();
  for (std::int64_t p = 0; p < k; ++p) {
    ring_.push_back(network_.add_node("hospital-" + std::to_string(p)));
  }
  for (std::int64_t p = 0; p < k; ++p) {
    const auto& prof = profiles[static_cast<std::size_t>(p) % profiles.size()];
    network_.set_link(ring_[static_cast<std::size_t>(p)],
                      ring_[static_cast<std::size_t>((p + 1) % k)],
                      config_.hospital_wan
                          ? net::Link::mbps(prof.bandwidth_mbps,
                                            prof.latency_ms)
                          : config_.uniform_link);
  }

  model_ = std::make_unique<models::BuiltModel>(builder());
  const std::int64_t local_batch =
      std::max<std::int64_t>(1, config_.total_batch / k);
  Rng loader_rng(config_.seed);
  for (std::int64_t p = 0; p < k; ++p) {
    SPLITMED_CHECK(!partition[static_cast<std::size_t>(p)].empty(),
                   "empty platform shard");
    loaders_.emplace_back(
        train, partition[static_cast<std::size_t>(p)],
        std::min<std::int64_t>(
            local_batch,
            static_cast<std::int64_t>(
                partition[static_cast<std::size_t>(p)].size())),
        loader_rng.split(static_cast<std::uint64_t>(p)));
  }
}

metrics::TrainReport CyclicTrainer::run() {
  metrics::TrainReport report;
  report.protocol = "cyclic";
  report.model = model_->name;

  const auto params = model_->net.parameters();
  nn::SoftmaxCrossEntropy loss_fn;

  for (std::int64_t cycle = 1; cycle <= config_.steps; ++cycle) {
    double loss_acc = 0.0;
    for (std::size_t p = 0; p < loaders_.size(); ++p) {
      // Local training at hospital p (fresh optimizer per visit: momentum
      // does not survive the hand-off in the cyclic scheme).
      optim::Sgd local_opt(params, config_.sgd);
      for (std::int64_t s = 0; s < config_.local_steps; ++s) {
        data::Batch batch = loaders_[p].next_batch();
        model_->net.zero_grad();
        const Tensor logits = model_->net.forward(batch.images, true);
        loss_acc += loss_fn.forward(logits, batch.labels);
        model_->net.backward(loss_fn.backward());
        local_opt.step();
      }
      // Hand the full model to the next hospital in the ring.
      const std::size_t next = (p + 1) % loaders_.size();
      const Tensor flat = nn::flatten_values(params);
      network_.send(core::make_tensor_envelope(
          ring_[p], ring_[next], kCyclicTransfer,
          static_cast<std::uint64_t>(cycle), flat));
      const Tensor received = core::decode_tensor_payload(
          network_.receive(ring_[next]).payload);
      nn::load_values(params, received);
    }

    const bool budget_hit =
        config_.byte_budget > 0 &&
        network_.stats().total_bytes() >= config_.byte_budget;
    if (cycle % config_.eval_every == 0 || cycle == config_.steps ||
        budget_hit) {
      metrics::CurvePoint point;
      point.step = cycle;
      point.epoch = static_cast<double>(cycle * config_.local_steps *
                                        config_.total_batch) /
                    static_cast<double>(train_->size());
      point.cumulative_bytes = network_.stats().total_bytes();
      point.sim_seconds = network_.clock().now();
      point.train_loss =
          loss_acc / static_cast<double>(loaders_.size() *
                                         static_cast<std::size_t>(
                                             config_.local_steps));
      point.test_accuracy =
          metrics::evaluate_model(model_->net, *test_, config_.eval_batch);
      report.curve.push_back(point);
      SPLITMED_LOG(kInfo) << "cyclic cycle " << cycle << " loss "
                          << point.train_loss << " acc "
                          << point.test_accuracy;
      report.steps_completed = cycle;
      report.final_accuracy = point.test_accuracy;
    }
    if (budget_hit) break;
  }
  report.total_bytes = network_.stats().total_bytes();
  report.total_sim_seconds = network_.clock().now();
  return report;
}

}  // namespace splitmed::baselines
