// Shared configuration for the baseline trainers. Field meanings match
// core::SplitConfig so Fig. 4 comparisons differ only in the protocol.
#pragma once

#include <cstdint>

#include "src/net/link.hpp"
#include "src/optim/lr_schedule.hpp"
#include "src/optim/sgd.hpp"

namespace splitmed::baselines {

struct BaselineConfig {
  /// Global batch per step (divided across workers where applicable).
  std::int64_t total_batch = 64;
  /// Optimization steps (sync SGD / centralized / local-only) or
  /// communication rounds (FedAvg).
  std::int64_t steps = 100;
  std::int64_t eval_every = 10;
  /// Stop once this many wire bytes moved (0 = unlimited).
  std::uint64_t byte_budget = 0;
  std::int64_t eval_batch = 64;
  optim::SgdOptions sgd{};
  optim::LrSchedule lr_schedule;  // optional, over integer epochs
  bool hospital_wan = true;
  net::Link uniform_link = net::Link::mbps(300.0, 20.0);
  std::uint64_t seed = 123;
  /// FedAvg only: local SGD steps per round on each platform.
  std::int64_t local_steps = 5;
  /// Compute threads for the tensor substrate (same contract as
  /// core::SplitConfig::threads): 0 = keep the global default, 1 = serial.
  int threads = 0;
};

/// Message kinds used by the baselines (disjoint from core::MsgKind values).
enum class BaselineMsg : std::uint32_t {
  kGradPush = 101,   // worker -> server: flattened gradient
  kParamPull = 102,  // server -> worker: flattened parameters
  kFedPull = 201,    // server -> platform: global parameters
  kFedPush = 202,    // platform -> server: locally updated parameters
};

}  // namespace splitmed::baselines
