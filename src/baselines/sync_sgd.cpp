#include "src/baselines/sync_sgd.hpp"

#include "src/baselines/baseline_config.hpp"
#include "src/common/error.hpp"
#include "src/common/logging.hpp"
#include "src/common/thread_pool.hpp"
#include "src/core/protocol.hpp"
#include "src/metrics/evaluate.hpp"
#include "src/nn/loss.hpp"
#include "src/nn/param_util.hpp"
#include "src/tensor/ops.hpp"

namespace splitmed::baselines {

SyncSgdTrainer::SyncSgdTrainer(core::ModelBuilder builder,
                               const data::Dataset& train,
                               data::Partition partition,
                               const data::Dataset& test,
                               BaselineConfig config)
    : config_(std::move(config)), train_(&train), test_(&test) {
  if (config_.threads > 0) set_global_threads(config_.threads);
  SPLITMED_CHECK(!partition.empty(), "partition has no workers");
  const std::int64_t k = static_cast<std::int64_t>(partition.size());
  SPLITMED_CHECK(config_.total_batch >= k, "batch below one per worker");

  topology_ = config_.hospital_wan
                  ? net::build_hospital_star(network_, k)
                  : net::build_uniform_star(network_, k, config_.uniform_link);
  model_ = std::make_unique<models::BuiltModel>(builder());
  optimizer_ =
      std::make_unique<optim::Sgd>(model_->net.parameters(), config_.sgd);

  // Workers sample uniform minibatches (the baseline has no imbalance
  // mitigation — that is the proposed framework's contribution).
  minibatches_.assign(static_cast<std::size_t>(k), config_.total_batch / k);
  for (std::int64_t r = 0; r < config_.total_batch % k; ++r) {
    ++minibatches_[static_cast<std::size_t>(r)];
  }
  Rng loader_rng(config_.seed);
  for (std::int64_t p = 0; p < k; ++p) {
    SPLITMED_CHECK(!partition[static_cast<std::size_t>(p)].empty(),
                   "worker " << p << " has an empty shard");
    loaders_.emplace_back(train, partition[static_cast<std::size_t>(p)],
                          minibatches_[static_cast<std::size_t>(p)],
                          loader_rng.split(static_cast<std::uint64_t>(p)));
  }
}

metrics::TrainReport SyncSgdTrainer::run() {
  metrics::TrainReport report;
  report.protocol = "sync-sgd";
  report.model = model_->name;

  const auto params = model_->net.parameters();
  nn::SoftmaxCrossEntropy loss_fn;
  const auto kGrad = static_cast<std::uint32_t>(BaselineMsg::kGradPush);
  const auto kPull = static_cast<std::uint32_t>(BaselineMsg::kParamPull);

  for (std::int64_t step = 1; step <= config_.steps; ++step) {
    if (config_.lr_schedule) {
      const auto epoch = static_cast<std::int64_t>(
          static_cast<double>(step * config_.total_batch) /
          static_cast<double>(train_->size()));
      optimizer_->set_learning_rate(config_.lr_schedule(epoch));
    }

    // Each worker computes its gradient and pushes the flat vector.
    Tensor grad_sum;
    double loss_acc = 0.0;
    for (std::size_t w = 0; w < loaders_.size(); ++w) {
      data::Batch batch = loaders_[w].next_batch();
      model_->net.zero_grad();
      const Tensor logits = model_->net.forward(batch.images, true);
      loss_acc += loss_fn.forward(logits, batch.labels);
      model_->net.backward(loss_fn.backward());
      Tensor flat = nn::flatten_gradients(params);
      network_.send(core::make_tensor_envelope(
          topology_.platforms[w], topology_.server, kGrad,
          static_cast<std::uint64_t>(step), flat));
      const Tensor received = core::decode_tensor_payload(
          network_.receive(topology_.server).payload);
      if (w == 0) {
        grad_sum = received;
      } else {
        ops::axpy(1.0F, received, grad_sum);
      }
    }
    // Server averages and applies the update.
    nn::load_gradients(
        params, ops::scale(grad_sum,
                           1.0F / static_cast<float>(loaders_.size())));
    optimizer_->step();
    // Every worker pulls the fresh parameter vector.
    const Tensor flat_params = nn::flatten_values(params);
    for (std::size_t w = 0; w < loaders_.size(); ++w) {
      network_.send(core::make_tensor_envelope(
          topology_.server, topology_.platforms[w], kPull,
          static_cast<std::uint64_t>(step), flat_params));
      const Tensor pulled = core::decode_tensor_payload(
          network_.receive(topology_.platforms[w]).payload);
      // Shared-instance replica: loading is a logical no-op, but run it so
      // the code path (and its cost model) matches physical replicas.
      nn::load_values(params, pulled);
    }

    const bool budget_hit =
        config_.byte_budget > 0 &&
        network_.stats().total_bytes() >= config_.byte_budget;
    if (step % config_.eval_every == 0 || step == config_.steps ||
        budget_hit) {
      metrics::CurvePoint point;
      point.step = step;
      point.epoch = static_cast<double>(step * config_.total_batch) /
                    static_cast<double>(train_->size());
      point.cumulative_bytes = network_.stats().total_bytes();
      point.sim_seconds = network_.clock().now();
      point.train_loss = loss_acc / static_cast<double>(loaders_.size());
      point.test_accuracy =
          metrics::evaluate_model(model_->net, *test_, config_.eval_batch);
      report.curve.push_back(point);
      SPLITMED_LOG(kInfo) << "sync-sgd step " << step << " loss "
                          << point.train_loss << " acc "
                          << point.test_accuracy;
      report.steps_completed = step;
      report.final_accuracy = point.test_accuracy;
    }
    if (budget_hit) break;
  }
  report.total_bytes = network_.stats().total_bytes();
  report.total_sim_seconds = network_.clock().now();
  return report;
}

}  // namespace splitmed::baselines
