// Local-only training — what the paper says hospitals do today (§I): each
// platform trains an independent model on its own shard, "leading to
// overfitting" and imbalance-driven accuracy spread. Zero traffic; the
// interesting outputs are the per-platform accuracies and their spread.
#pragma once

#include <memory>

#include "src/baselines/baseline_config.hpp"
#include "src/core/trainer.hpp"

namespace splitmed::baselines {

struct LocalOnlyReport {
  metrics::TrainReport combined;           // mean-accuracy curve
  std::vector<double> platform_accuracy;   // final per-platform accuracies
  double min_accuracy = 0.0;
  double max_accuracy = 0.0;
};

class LocalOnlyTrainer {
 public:
  LocalOnlyTrainer(core::ModelBuilder builder, const data::Dataset& train,
                   data::Partition partition, const data::Dataset& test,
                   BaselineConfig config);

  /// Trains each platform model for config.steps local steps.
  LocalOnlyReport run();

 private:
  BaselineConfig config_;
  const data::Dataset* train_;
  const data::Dataset* test_;
  std::vector<std::unique_ptr<models::BuiltModel>> models_;
  std::vector<std::unique_ptr<optim::Sgd>> optimizers_;
  std::vector<data::DataLoader> loaders_;
};

}  // namespace splitmed::baselines
