// Federated Averaging (McMahan et al., AISTATS 2017) — the related-work
// baseline the paper describes as "the de facto standard" (§II): platforms
// pull the full model, train locally for several steps, push the full model
// back; the server averages weighted by shard size.
//
// Implemented with one shared model instance plus parameter snapshots —
// mathematically identical to per-platform replicas; traffic is generated
// per platform and byte-accounted exactly (2 x full parameter vector per
// platform per round).
#pragma once

#include <memory>

#include "src/baselines/baseline_config.hpp"
#include "src/core/trainer.hpp"

namespace splitmed::baselines {

class FedAvgTrainer {
 public:
  FedAvgTrainer(core::ModelBuilder builder, const data::Dataset& train,
                data::Partition partition, const data::Dataset& test,
                BaselineConfig config);

  /// config.steps counts FedAvg ROUNDS; each round performs
  /// config.local_steps local SGD steps per platform.
  metrics::TrainReport run();

  [[nodiscard]] net::Network& network() { return network_; }
  [[nodiscard]] nn::Sequential& model() { return model_->net; }

 private:
  BaselineConfig config_;
  const data::Dataset* train_;
  const data::Dataset* test_;
  net::Network network_;
  net::StarTopology topology_;
  std::unique_ptr<models::BuiltModel> model_;
  std::vector<data::DataLoader> loaders_;
  std::vector<double> shard_weights_;  // |D_k| / N
};

}  // namespace splitmed::baselines
