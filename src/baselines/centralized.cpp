#include "src/baselines/centralized.hpp"

#include <numeric>

#include "src/common/error.hpp"
#include "src/common/logging.hpp"
#include "src/common/thread_pool.hpp"
#include "src/metrics/evaluate.hpp"
#include "src/nn/loss.hpp"

namespace splitmed::baselines {

CentralizedTrainer::CentralizedTrainer(core::ModelBuilder builder,
                                       const data::Dataset& train,
                                       const data::Dataset& test,
                                       BaselineConfig config)
    : config_(std::move(config)), train_(&train), test_(&test) {
  if (config_.threads > 0) set_global_threads(config_.threads);
  model_ = std::make_unique<models::BuiltModel>(builder());
  optimizer_ =
      std::make_unique<optim::Sgd>(model_->net.parameters(), config_.sgd);
  std::vector<std::int64_t> all(static_cast<std::size_t>(train.size()));
  std::iota(all.begin(), all.end(), 0);
  loader_ = std::make_unique<data::DataLoader>(train, std::move(all),
                                               config_.total_batch,
                                               Rng(config_.seed));
}

metrics::TrainReport CentralizedTrainer::run() {
  metrics::TrainReport report;
  report.protocol = "centralized";
  report.model = model_->name;

  nn::SoftmaxCrossEntropy loss_fn;
  for (std::int64_t step = 1; step <= config_.steps; ++step) {
    if (config_.lr_schedule) {
      const auto epoch = static_cast<std::int64_t>(
          static_cast<double>(step * config_.total_batch) /
          static_cast<double>(train_->size()));
      optimizer_->set_learning_rate(config_.lr_schedule(epoch));
    }
    data::Batch batch = loader_->next_batch();
    model_->net.zero_grad();
    const Tensor logits = model_->net.forward(batch.images, true);
    const float loss = loss_fn.forward(logits, batch.labels);
    model_->net.backward(loss_fn.backward());
    optimizer_->step();

    if (step % config_.eval_every == 0 || step == config_.steps) {
      metrics::CurvePoint point;
      point.step = step;
      point.epoch = static_cast<double>(step * config_.total_batch) /
                    static_cast<double>(train_->size());
      point.train_loss = loss;
      point.test_accuracy =
          metrics::evaluate_model(model_->net, *test_, config_.eval_batch);
      report.curve.push_back(point);
      SPLITMED_LOG(kInfo) << "centralized step " << step << " loss " << loss
                          << " acc " << point.test_accuracy;
      report.steps_completed = step;
      report.final_accuracy = point.test_accuracy;
    }
  }
  return report;
}

}  // namespace splitmed::baselines
