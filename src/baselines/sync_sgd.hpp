// Large-Scale Synchronous SGD (Chen et al., arXiv:1604.00981) — the paper's
// comparison baseline in Fig. 4.
//
// Every worker holds a full model replica and its local data shard. Per
// step, each worker computes a gradient on its minibatch and pushes the
// FLATTENED FULL GRADIENT to the parameter server; the server averages,
// applies SGD, and every worker pulls the FULL PARAMETER VECTOR back. Both
// transfers cross the WAN every step — the bandwidth cost the paper's
// framework avoids.
//
// Implementation note: since synchronized replicas are bit-identical after
// every pull, a single shared model instance stands in for all K replicas.
// The mathematics is unchanged; the wire traffic is generated exactly as if
// the replicas were physical (K gradient pushes + K parameter pulls per
// step, all byte-accounted).
#pragma once

#include <memory>

#include "src/baselines/baseline_config.hpp"
#include "src/core/trainer.hpp"

namespace splitmed::baselines {

class SyncSgdTrainer {
 public:
  SyncSgdTrainer(core::ModelBuilder builder, const data::Dataset& train,
                 data::Partition partition, const data::Dataset& test,
                 BaselineConfig config);

  metrics::TrainReport run();

  [[nodiscard]] net::Network& network() { return network_; }
  [[nodiscard]] nn::Sequential& model() { return model_->net; }

 private:
  BaselineConfig config_;
  const data::Dataset* train_;
  const data::Dataset* test_;
  net::Network network_;
  net::StarTopology topology_;
  std::unique_ptr<models::BuiltModel> model_;
  std::unique_ptr<optim::Sgd> optimizer_;
  std::vector<data::DataLoader> loaders_;
  std::vector<std::int64_t> minibatches_;
};

}  // namespace splitmed::baselines
