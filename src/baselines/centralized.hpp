// Centralized training — the privacy-violating upper bound: all data pooled
// in one place, plain minibatch SGD, zero network traffic. The accuracy
// ceiling the distributed protocols are measured against.
#pragma once

#include <memory>

#include "src/baselines/baseline_config.hpp"
#include "src/core/trainer.hpp"

namespace splitmed::baselines {

class CentralizedTrainer {
 public:
  CentralizedTrainer(core::ModelBuilder builder, const data::Dataset& train,
                     const data::Dataset& test, BaselineConfig config);

  metrics::TrainReport run();

  [[nodiscard]] nn::Sequential& model() { return model_->net; }

 private:
  BaselineConfig config_;
  const data::Dataset* train_;
  const data::Dataset* test_;
  std::unique_ptr<models::BuiltModel> model_;
  std::unique_ptr<optim::Sgd> optimizer_;
  std::unique_ptr<data::DataLoader> loader_;
};

}  // namespace splitmed::baselines
