// Train-time augmentation transforms on CHW images — the standard CIFAR
// recipe (random horizontal flip, random crop with zero padding) plus
// per-channel normalization. Transforms are deterministic in the Rng they
// are given, keeping end-to-end runs reproducible.
#pragma once

#include <memory>
#include <vector>

#include "src/common/rng.hpp"
#include "src/tensor/tensor.hpp"

namespace splitmed::data {

/// A transform maps one CHW image to another (shape-preserving).
class Transform {
 public:
  virtual ~Transform() = default;
  virtual Tensor apply(const Tensor& chw, Rng& rng) const = 0;
};

/// Mirrors the image horizontally with probability p.
class RandomHorizontalFlip final : public Transform {
 public:
  explicit RandomHorizontalFlip(float p = 0.5F);
  Tensor apply(const Tensor& chw, Rng& rng) const override;

 private:
  float p_;
};

/// Pads by `padding` zeros on each side and crops back to the original size
/// at a uniformly random offset (the CIFAR "random crop" augmentation).
class RandomCrop final : public Transform {
 public:
  explicit RandomCrop(std::int64_t padding);
  Tensor apply(const Tensor& chw, Rng& rng) const override;

 private:
  std::int64_t padding_;
};

/// (x - mean[c]) / stddev[c] per channel. Deterministic (ignores the rng).
class Normalize final : public Transform {
 public:
  Normalize(std::vector<float> mean, std::vector<float> stddev);
  Tensor apply(const Tensor& chw, Rng& rng) const override;

 private:
  std::vector<float> mean_;
  std::vector<float> stddev_;
};

/// Applies transforms in order.
class Compose final : public Transform {
 public:
  explicit Compose(std::vector<std::unique_ptr<Transform>> transforms);
  Tensor apply(const Tensor& chw, Rng& rng) const override;

 private:
  std::vector<std::unique_ptr<Transform>> transforms_;
};

/// Applies `t` to every image of an NCHW batch in place of the original.
Tensor apply_to_batch(const Transform& t, const Tensor& nchw, Rng& rng);

}  // namespace splitmed::data
