// Dataset abstraction.
//
// Images are CHW float tensors; a batch gathers to NCHW. Datasets are
// immutable after construction and generate examples deterministically from
// (seed, index), so two runs with the same seed see identical data without
// storing anything — the synthetic stand-ins for CIFAR / patient records can
// be arbitrarily large at zero memory cost.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "src/tensor/tensor.hpp"

namespace splitmed::data {

class Dataset {
 public:
  virtual ~Dataset() = default;

  [[nodiscard]] virtual std::int64_t size() const = 0;
  [[nodiscard]] virtual Shape image_shape() const = 0;  // CHW
  [[nodiscard]] virtual std::int64_t num_classes() const = 0;

  /// Example i as a CHW tensor. Deterministic in (dataset seed, i).
  [[nodiscard]] virtual Tensor image(std::int64_t i) const = 0;
  [[nodiscard]] virtual std::int64_t label(std::int64_t i) const = 0;

  /// Gathers examples into an NCHW batch.
  [[nodiscard]] Tensor batch_images(std::span<const std::int64_t> indices) const;
  [[nodiscard]] std::vector<std::int64_t> batch_labels(
      std::span<const std::int64_t> indices) const;

 protected:
  /// Bounds check helper for subclasses.
  void check_index(std::int64_t i) const;
};

}  // namespace splitmed::data
