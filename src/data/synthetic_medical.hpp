// Synthetic medical-imaging dataset.
//
// Stand-in for the patient scans the paper's motivating scenario distributes
// across hospitals (real PHI is unavailable by definition — see DESIGN.md
// substitution table). Single-channel "scans": smooth anatomical background
// (low-frequency gradients + ring structure) with an optional lesion — a
// bright Gaussian blob whose size/intensity depend on the lesion grade.
// Labels are lesion grades 0..num_grades-1, grade 0 meaning "healthy".
#pragma once

#include "src/data/dataset.hpp"

namespace splitmed::data {

struct SyntheticMedicalOptions {
  std::int64_t num_examples = 1024;
  std::int64_t num_grades = 4;   // classes: healthy + 3 lesion grades
  std::int64_t image_size = 32;
  float noise_stddev = 0.08F;
  std::uint64_t seed = 7;
  /// Virtual index shift; see SyntheticCifarOptions::index_offset.
  std::int64_t index_offset = 0;
};

class SyntheticMedical final : public Dataset {
 public:
  explicit SyntheticMedical(SyntheticMedicalOptions options);

  [[nodiscard]] std::int64_t size() const override {
    return options_.num_examples;
  }
  [[nodiscard]] Shape image_shape() const override;
  [[nodiscard]] std::int64_t num_classes() const override {
    return options_.num_grades;
  }
  [[nodiscard]] Tensor image(std::int64_t i) const override;
  [[nodiscard]] std::int64_t label(std::int64_t i) const override;

 private:
  SyntheticMedicalOptions options_;
};

}  // namespace splitmed::data
