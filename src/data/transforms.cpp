#include "src/data/transforms.hpp"

#include <algorithm>

#include "src/common/error.hpp"

namespace splitmed::data {

RandomHorizontalFlip::RandomHorizontalFlip(float p) : p_(p) {
  SPLITMED_CHECK(p >= 0.0F && p <= 1.0F, "flip probability must be in [0,1]");
}

Tensor RandomHorizontalFlip::apply(const Tensor& chw, Rng& rng) const {
  SPLITMED_CHECK(chw.shape().rank() == 3, "transforms expect CHW images");
  if (!rng.bernoulli(p_)) return chw;
  const std::int64_t c = chw.shape().dim(0), h = chw.shape().dim(1),
                     w = chw.shape().dim(2);
  Tensor out(chw.shape());
  auto id = chw.data();
  auto od = out.data();
  for (std::int64_t ch = 0; ch < c; ++ch) {
    for (std::int64_t y = 0; y < h; ++y) {
      const float* row = id.data() + (ch * h + y) * w;
      float* orow = od.data() + (ch * h + y) * w;
      for (std::int64_t x = 0; x < w; ++x) orow[x] = row[w - 1 - x];
    }
  }
  return out;
}

RandomCrop::RandomCrop(std::int64_t padding) : padding_(padding) {
  SPLITMED_CHECK(padding > 0, "crop padding must be positive");
}

Tensor RandomCrop::apply(const Tensor& chw, Rng& rng) const {
  SPLITMED_CHECK(chw.shape().rank() == 3, "transforms expect CHW images");
  const std::int64_t c = chw.shape().dim(0), h = chw.shape().dim(1),
                     w = chw.shape().dim(2);
  // Offset of the crop window inside the padded image.
  const std::int64_t oy = rng.uniform_int(0, 2 * padding_);
  const std::int64_t ox = rng.uniform_int(0, 2 * padding_);
  Tensor out(chw.shape());
  auto id = chw.data();
  auto od = out.data();
  for (std::int64_t ch = 0; ch < c; ++ch) {
    for (std::int64_t y = 0; y < h; ++y) {
      const std::int64_t sy = y + oy - padding_;
      float* orow = od.data() + (ch * h + y) * w;
      if (sy < 0 || sy >= h) {
        std::fill(orow, orow + w, 0.0F);
        continue;
      }
      const float* row = id.data() + (ch * h + sy) * w;
      for (std::int64_t x = 0; x < w; ++x) {
        const std::int64_t sx = x + ox - padding_;
        orow[x] = (sx >= 0 && sx < w) ? row[sx] : 0.0F;
      }
    }
  }
  return out;
}

Normalize::Normalize(std::vector<float> mean, std::vector<float> stddev)
    : mean_(std::move(mean)), stddev_(std::move(stddev)) {
  SPLITMED_CHECK(mean_.size() == stddev_.size() && !mean_.empty(),
                 "Normalize: mean/stddev must be same non-zero size");
  for (const float s : stddev_) {
    SPLITMED_CHECK(s > 0.0F, "Normalize: stddev must be positive");
  }
}

Tensor Normalize::apply(const Tensor& chw, Rng& /*rng*/) const {
  SPLITMED_CHECK(chw.shape().rank() == 3, "transforms expect CHW images");
  SPLITMED_CHECK(chw.shape().dim(0) ==
                     static_cast<std::int64_t>(mean_.size()),
                 "Normalize: channel count mismatch");
  const std::int64_t hw = chw.shape().dim(1) * chw.shape().dim(2);
  Tensor out(chw.shape());
  auto id = chw.data();
  auto od = out.data();
  for (std::size_t c = 0; c < mean_.size(); ++c) {
    const float m = mean_[c];
    const float inv = 1.0F / stddev_[c];
    const float* in = id.data() + static_cast<std::int64_t>(c) * hw;
    float* o = od.data() + static_cast<std::int64_t>(c) * hw;
    for (std::int64_t i = 0; i < hw; ++i) o[i] = (in[i] - m) * inv;
  }
  return out;
}

Compose::Compose(std::vector<std::unique_ptr<Transform>> transforms)
    : transforms_(std::move(transforms)) {
  for (const auto& t : transforms_) {
    SPLITMED_CHECK(t != nullptr, "Compose: null transform");
  }
}

Tensor Compose::apply(const Tensor& chw, Rng& rng) const {
  Tensor out = chw;
  for (const auto& t : transforms_) out = t->apply(out, rng);
  return out;
}

Tensor apply_to_batch(const Transform& t, const Tensor& nchw, Rng& rng) {
  SPLITMED_CHECK(nchw.shape().rank() == 4, "apply_to_batch expects NCHW");
  const std::int64_t n = nchw.shape().dim(0);
  Tensor out(nchw.shape());
  const std::int64_t elems = n == 0 ? 0 : nchw.numel() / n;
  const Shape chw_shape{nchw.shape().dim(1), nchw.shape().dim(2),
                        nchw.shape().dim(3)};
  auto od = out.data();
  for (std::int64_t i = 0; i < n; ++i) {
    const Tensor img =
        nchw.slice_rows(i, i + 1).reshape(chw_shape);
    const Tensor transformed = t.apply(img, rng);
    check_same_shape(transformed.shape(), chw_shape, "apply_to_batch");
    auto td = transformed.data();
    std::copy(td.begin(), td.end(), od.begin() + i * elems);
  }
  return out;
}

}  // namespace splitmed::data
