// Partitioning a dataset across K geo-distributed platforms.
//
// The paper's setting: each hospital owns a disjoint shard of the global
// data, and shard sizes are unequal ("data imbalance"). Partition strategies
// produce the index sets; the imbalance-mitigation policy (minibatch size
// proportional to |D_k|) lives in core::MinibatchPolicy.
#pragma once

#include <cstdint>
#include <vector>

#include "src/common/rng.hpp"
#include "src/data/dataset.hpp"

namespace splitmed::data {

using Partition = std::vector<std::vector<std::int64_t>>;

/// Shuffles indices and deals them out as evenly as possible.
Partition partition_iid(std::int64_t dataset_size, std::int64_t num_platforms,
                        Rng& rng);

/// Shard sizes proportional to `weights` (positive, need not sum to 1).
/// Every platform receives at least one example when dataset_size >= K.
Partition partition_weighted(std::int64_t dataset_size,
                             const std::vector<double>& weights, Rng& rng);

/// Zipf-like imbalance: platform k gets weight 1/(k+1)^alpha. alpha = 0 is
/// IID-sized; larger alpha is more skewed. Matches the paper's "the amount of
/// data in each platform is not equal" scenario.
Partition partition_zipf(std::int64_t dataset_size, std::int64_t num_platforms,
                         double alpha, Rng& rng);

/// Label-skewed shards: sorts by label and deals contiguous shards, giving
/// each platform `shards_per_platform` label-homogeneous chunks (non-IID in
/// the FedAvg sense).
Partition partition_label_skew(const Dataset& dataset,
                               std::int64_t num_platforms,
                               std::int64_t shards_per_platform, Rng& rng);

/// Sum of shard sizes (sanity helper).
std::int64_t partition_total(const Partition& p);

}  // namespace splitmed::data
