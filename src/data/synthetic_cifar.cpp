#include "src/data/synthetic_cifar.hpp"

#include <cmath>

#include "src/common/error.hpp"
#include "src/common/rng.hpp"

namespace splitmed::data {

SyntheticCifar::SyntheticCifar(SyntheticCifarOptions options)
    : options_(options) {
  SPLITMED_CHECK(options_.num_examples >= 0, "negative example count");
  SPLITMED_CHECK(options_.num_classes > 0, "need at least one class");
  SPLITMED_CHECK(options_.image_size > 0 && options_.channels > 0,
                 "bad image geometry");
  signatures_.reserve(static_cast<std::size_t>(options_.num_classes));
  for (std::int64_t c = 0; c < options_.num_classes; ++c) {
    Rng rng(options_.seed * 0x9E3779B9ULL + static_cast<std::uint64_t>(c));
    ClassSignature sig;
    for (std::int64_t ch = 0; ch < options_.channels; ++ch) {
      sig.base.push_back(rng.uniform(0.2F, 0.8F));
      sig.freq_x.push_back(rng.uniform(0.5F, 3.0F));
      sig.freq_y.push_back(rng.uniform(0.5F, 3.0F));
      sig.phase.push_back(rng.uniform(0.0F, 6.28F));
    }
    sig.patch_x = rng.uniform(0.2F, 0.8F);
    sig.patch_y = rng.uniform(0.2F, 0.8F);
    sig.patch_intensity = rng.uniform(0.3F, 0.6F);
    signatures_.push_back(std::move(sig));
  }
}

Shape SyntheticCifar::image_shape() const {
  return Shape{options_.channels, options_.image_size, options_.image_size};
}

std::int64_t SyntheticCifar::label(std::int64_t i) const {
  check_index(i);
  // Uniform class distribution, deterministic in the (offset) index.
  return (i + options_.index_offset) % options_.num_classes;
}

Tensor SyntheticCifar::image(std::int64_t i) const {
  check_index(i);
  const std::int64_t cls = label(i);
  const ClassSignature& sig = signatures_[static_cast<std::size_t>(cls)];
  const auto virtual_index =
      static_cast<std::uint64_t>(i + options_.index_offset);
  Rng rng(options_.seed ^ (0xA24BAED4963EE407ULL +
                           virtual_index * 0x9E3779B97F4A7C15ULL));
  const std::int64_t n = options_.image_size;
  Tensor img(image_shape());
  auto d = img.data();

  // Per-example jitter keeps within-class variety high.
  const float jitter_x = rng.uniform(-0.08F, 0.08F);
  const float jitter_y = rng.uniform(-0.08F, 0.08F);
  const float amp = rng.uniform(0.15F, 0.3F);
  const float patch_half = rng.uniform(0.10F, 0.16F);

  const float px = (sig.patch_x + jitter_x) * static_cast<float>(n);
  const float py = (sig.patch_y + jitter_y) * static_cast<float>(n);
  const float ph = patch_half * static_cast<float>(n);

  const float two_pi_over_n = 6.28318530718F / static_cast<float>(n);
  for (std::int64_t ch = 0; ch < options_.channels; ++ch) {
    float* plane = d.data() + ch * n * n;
    const float base = sig.base[static_cast<std::size_t>(ch)];
    const float fx = sig.freq_x[static_cast<std::size_t>(ch)];
    const float fy = sig.freq_y[static_cast<std::size_t>(ch)];
    const float phase = sig.phase[static_cast<std::size_t>(ch)];
    for (std::int64_t y = 0; y < n; ++y) {
      for (std::int64_t x = 0; x < n; ++x) {
        float v = base +
                  amp * std::sin(two_pi_over_n * (fx * static_cast<float>(x) +
                                                  fy * static_cast<float>(y)) +
                                 phase);
        if (std::abs(static_cast<float>(x) - px) < ph &&
            std::abs(static_cast<float>(y) - py) < ph) {
          v += sig.patch_intensity;
        }
        v += options_.noise_stddev * rng.normal();
        plane[y * n + x] = v;
      }
    }
  }
  return img;
}

}  // namespace splitmed::data
