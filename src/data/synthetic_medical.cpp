#include "src/data/synthetic_medical.hpp"

#include <cmath>

#include "src/common/error.hpp"
#include "src/common/rng.hpp"

namespace splitmed::data {

SyntheticMedical::SyntheticMedical(SyntheticMedicalOptions options)
    : options_(options) {
  SPLITMED_CHECK(options_.num_examples >= 0, "negative example count");
  SPLITMED_CHECK(options_.num_grades >= 2, "need at least healthy + 1 grade");
  SPLITMED_CHECK(options_.image_size >= 8, "image too small for lesions");
}

Shape SyntheticMedical::image_shape() const {
  return Shape{1, options_.image_size, options_.image_size};
}

std::int64_t SyntheticMedical::label(std::int64_t i) const {
  check_index(i);
  return (i + options_.index_offset) % options_.num_grades;
}

Tensor SyntheticMedical::image(std::int64_t i) const {
  check_index(i);
  const std::int64_t grade = label(i);
  const auto virtual_index =
      static_cast<std::uint64_t>(i + options_.index_offset);
  Rng rng(options_.seed ^ (0xBF58476D1CE4E5B9ULL +
                           virtual_index * 0x94D049BB133111EBULL));
  const std::int64_t n = options_.image_size;
  Tensor img(image_shape());
  auto d = img.data();

  // Anatomical background: radial ring structure + smooth gradient, shared by
  // all grades so only the lesion is informative.
  const float cx = static_cast<float>(n) / 2 + rng.uniform(-2.0F, 2.0F);
  const float cy = static_cast<float>(n) / 2 + rng.uniform(-2.0F, 2.0F);
  const float ring_freq = rng.uniform(0.5F, 0.7F);
  const float gx = rng.uniform(-0.3F, 0.3F) / static_cast<float>(n);
  const float gy = rng.uniform(-0.3F, 0.3F) / static_cast<float>(n);

  // Lesion parameters scale with grade; grade 0 has no lesion.
  const float grade_frac =
      static_cast<float>(grade) / static_cast<float>(options_.num_grades - 1);
  const float lesion_sigma = 1.5F + 2.5F * grade_frac;
  const float lesion_gain = grade == 0 ? 0.0F : 0.5F + 0.5F * grade_frac;
  const float lx = rng.uniform(0.25F, 0.75F) * static_cast<float>(n);
  const float ly = rng.uniform(0.25F, 0.75F) * static_cast<float>(n);

  for (std::int64_t y = 0; y < n; ++y) {
    for (std::int64_t x = 0; x < n; ++x) {
      const float dx = static_cast<float>(x) - cx;
      const float dy = static_cast<float>(y) - cy;
      const float r = std::sqrt(dx * dx + dy * dy);
      float v = 0.45F + 0.15F * std::sin(ring_freq * r) +
                gx * static_cast<float>(x) + gy * static_cast<float>(y);
      if (lesion_gain > 0.0F) {
        const float ldx = static_cast<float>(x) - lx;
        const float ldy = static_cast<float>(y) - ly;
        v += lesion_gain *
             std::exp(-(ldx * ldx + ldy * ldy) /
                      (2.0F * lesion_sigma * lesion_sigma));
      }
      v += options_.noise_stddev * rng.normal();
      d[static_cast<std::size_t>(y * n + x)] = v;
    }
  }
  return img;
}

}  // namespace splitmed::data
