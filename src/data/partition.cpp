#include "src/data/partition.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "src/common/error.hpp"

namespace splitmed::data {
namespace {

std::vector<std::int64_t> shuffled_indices(std::int64_t n, Rng& rng) {
  std::vector<std::int64_t> idx(static_cast<std::size_t>(n));
  std::iota(idx.begin(), idx.end(), 0);
  rng.shuffle(idx);
  return idx;
}

}  // namespace

Partition partition_iid(std::int64_t dataset_size, std::int64_t num_platforms,
                        Rng& rng) {
  SPLITMED_CHECK(num_platforms > 0, "need at least one platform");
  SPLITMED_CHECK(dataset_size >= 0, "negative dataset size");
  const auto idx = shuffled_indices(dataset_size, rng);
  Partition out(static_cast<std::size_t>(num_platforms));
  for (std::size_t i = 0; i < idx.size(); ++i) {
    out[i % static_cast<std::size_t>(num_platforms)].push_back(idx[i]);
  }
  return out;
}

Partition partition_weighted(std::int64_t dataset_size,
                             const std::vector<double>& weights, Rng& rng) {
  SPLITMED_CHECK(!weights.empty(), "need at least one weight");
  double total = 0.0;
  for (const double w : weights) {
    SPLITMED_CHECK(w > 0.0, "weights must be positive, got " << w);
    total += w;
  }
  const std::int64_t k = static_cast<std::int64_t>(weights.size());
  SPLITMED_CHECK(dataset_size >= k,
                 "dataset of " << dataset_size << " cannot cover " << k
                               << " platforms");
  // Largest-remainder apportionment with a floor of 1 example per platform.
  std::vector<std::int64_t> counts(weights.size(), 1);
  std::int64_t assigned = k;
  std::vector<std::pair<double, std::size_t>> remainders;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    const double exact =
        weights[i] / total * static_cast<double>(dataset_size);
    const std::int64_t extra =
        std::max<std::int64_t>(0, static_cast<std::int64_t>(exact) - 1);
    counts[i] += extra;
    assigned += extra;
    remainders.emplace_back(exact - std::floor(exact), i);
  }
  std::sort(remainders.rbegin(), remainders.rend());
  for (std::size_t r = 0; assigned < dataset_size; ++assigned, ++r) {
    ++counts[remainders[r % remainders.size()].second];
  }
  // Over-assignment can only come from the +1 floors; trim the largest shard.
  while (assigned > dataset_size) {
    auto it = std::max_element(counts.begin(), counts.end());
    SPLITMED_ASSERT(*it > 1, "cannot trim below the one-example floor");
    --*it;
    --assigned;
  }

  const auto idx = shuffled_indices(dataset_size, rng);
  Partition out(weights.size());
  std::size_t cursor = 0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    out[i].assign(idx.begin() + static_cast<std::ptrdiff_t>(cursor),
                  idx.begin() + static_cast<std::ptrdiff_t>(
                                    cursor + static_cast<std::size_t>(counts[i])));
    cursor += static_cast<std::size_t>(counts[i]);
  }
  SPLITMED_ASSERT(cursor == idx.size(), "apportionment lost examples");
  return out;
}

Partition partition_zipf(std::int64_t dataset_size, std::int64_t num_platforms,
                         double alpha, Rng& rng) {
  SPLITMED_CHECK(num_platforms > 0, "need at least one platform");
  SPLITMED_CHECK(alpha >= 0.0, "alpha must be non-negative");
  std::vector<double> weights;
  weights.reserve(static_cast<std::size_t>(num_platforms));
  for (std::int64_t k = 0; k < num_platforms; ++k) {
    weights.push_back(1.0 / std::pow(static_cast<double>(k + 1), alpha));
  }
  return partition_weighted(dataset_size, weights, rng);
}

Partition partition_label_skew(const Dataset& dataset,
                               std::int64_t num_platforms,
                               std::int64_t shards_per_platform, Rng& rng) {
  SPLITMED_CHECK(num_platforms > 0 && shards_per_platform > 0,
                 "bad label-skew parameters");
  const std::int64_t n = dataset.size();
  std::vector<std::int64_t> idx(static_cast<std::size_t>(n));
  std::iota(idx.begin(), idx.end(), 0);
  std::stable_sort(idx.begin(), idx.end(),
                   [&dataset](std::int64_t a, std::int64_t b) {
                     return dataset.label(a) < dataset.label(b);
                   });
  const std::int64_t num_shards = num_platforms * shards_per_platform;
  SPLITMED_CHECK(n >= num_shards, "dataset too small for " << num_shards
                                                           << " shards");
  std::vector<std::int64_t> shard_order(static_cast<std::size_t>(num_shards));
  std::iota(shard_order.begin(), shard_order.end(), 0);
  rng.shuffle(shard_order);

  Partition out(static_cast<std::size_t>(num_platforms));
  for (std::int64_t s = 0; s < num_shards; ++s) {
    const std::int64_t shard = shard_order[static_cast<std::size_t>(s)];
    const std::int64_t begin = shard * n / num_shards;
    const std::int64_t end = (shard + 1) * n / num_shards;
    auto& dest = out[static_cast<std::size_t>(s % num_platforms)];
    dest.insert(dest.end(), idx.begin() + begin, idx.begin() + end);
  }
  return out;
}

std::int64_t partition_total(const Partition& p) {
  std::int64_t total = 0;
  for (const auto& shard : p) total += static_cast<std::int64_t>(shard.size());
  return total;
}

}  // namespace splitmed::data
