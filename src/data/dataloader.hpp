// Minibatch iteration over an index shard of a dataset.
//
// A DataLoader owns its shard (the platform's local indices) and an Rng for
// per-epoch shuffling; next_batch() cycles forever, reshuffling at each epoch
// boundary, which matches how the paper's platforms keep feeding minibatches
// of size s_k.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "src/common/rng.hpp"
#include "src/data/dataset.hpp"
#include "src/data/transforms.hpp"
#include "src/serial/buffer.hpp"

namespace splitmed::data {

struct Batch {
  Tensor images;                      // NCHW
  std::vector<std::int64_t> labels;   // size N
};

class DataLoader {
 public:
  /// `indices` is the shard this loader draws from; `batch_size` may be
  /// smaller on the final batch of an epoch when drop_last is false.
  DataLoader(const Dataset& dataset, std::vector<std::int64_t> indices,
             std::int64_t batch_size, Rng rng, bool drop_last = false);

  /// Optional train-time augmentation applied to every image of every
  /// next_batch() (not to full_shard(), which is for evaluation). Shared so
  /// multiple loaders can reuse one pipeline.
  void set_transform(std::shared_ptr<const Transform> transform);

  /// Next minibatch; reshuffles and restarts when the shard is exhausted.
  Batch next_batch();

  /// All examples of the shard in index order (for evaluation).
  [[nodiscard]] Batch full_shard() const;

  [[nodiscard]] std::int64_t shard_size() const {
    return static_cast<std::int64_t>(indices_.size());
  }
  [[nodiscard]] std::int64_t batch_size() const { return batch_size_; }
  void set_batch_size(std::int64_t batch_size);

  /// Batches per epoch under the current batch size.
  [[nodiscard]] std::int64_t batches_per_epoch() const;

  /// Serializes iteration state: the current epoch's shuffled permutation,
  /// the cursor into it, and the shuffle RNG. The shard *membership* is not
  /// state — it is derived from config at construction — so load_state
  /// verifies the stored permutation is a permutation of this loader's shard.
  void save_state(BufferWriter& writer) const;

  /// Mirror of save_state. Throws SerializationError on malformed input or a
  /// permutation that does not match this loader's shard.
  void load_state(BufferReader& reader);

 private:
  void start_epoch();

  const Dataset* dataset_;  // non-owning; outlives the loader
  std::vector<std::int64_t> indices_;
  std::int64_t batch_size_;
  bool drop_last_;
  Rng rng_;
  std::size_t cursor_ = 0;
  std::shared_ptr<const Transform> transform_;
};

}  // namespace splitmed::data
