// Synthetic CIFAR-shaped dataset (3x32x32 by default, 10 or 100 classes).
//
// Substitution for the real CIFAR-10/100 used in the paper's Fig. 4 (see
// DESIGN.md): byte accounting depends only on tensor shapes, and the accuracy
// axis needs a learnable task of identical shape, which this provides.
//
// Each class c has a deterministic signature drawn from Rng(seed, c):
//   * a base colour per channel,
//   * an oriented sinusoidal texture (frequency + phase per channel),
//   * a bright square patch whose position is class-dependent.
// Each example adds per-example jitter (patch offset, amplitude) and pixel
// noise, so the task is non-trivial but solvable by small conv nets.
#pragma once

#include <vector>

#include "src/data/dataset.hpp"

namespace splitmed::data {

struct SyntheticCifarOptions {
  std::int64_t num_examples = 1024;
  std::int64_t num_classes = 10;
  std::int64_t image_size = 32;   // height == width
  std::int64_t channels = 3;
  float noise_stddev = 0.15F;     // per-pixel Gaussian noise
  std::uint64_t seed = 42;
  /// Shifts the per-example generator: examples are drawn at virtual indices
  /// [index_offset, index_offset + num_examples). A held-out test set uses
  /// the SAME seed (same class signatures = same task) with an offset past
  /// the training range (fresh examples).
  std::int64_t index_offset = 0;
};

class SyntheticCifar final : public Dataset {
 public:
  explicit SyntheticCifar(SyntheticCifarOptions options);

  [[nodiscard]] std::int64_t size() const override {
    return options_.num_examples;
  }
  [[nodiscard]] Shape image_shape() const override;
  [[nodiscard]] std::int64_t num_classes() const override {
    return options_.num_classes;
  }
  [[nodiscard]] Tensor image(std::int64_t i) const override;
  [[nodiscard]] std::int64_t label(std::int64_t i) const override;

 private:
  struct ClassSignature {
    std::vector<float> base;      // per channel
    std::vector<float> freq_x;    // per channel
    std::vector<float> freq_y;
    std::vector<float> phase;
    float patch_x = 0.0F;         // patch centre, fraction of width/height
    float patch_y = 0.0F;
    float patch_intensity = 0.0F;
  };

  SyntheticCifarOptions options_;
  std::vector<ClassSignature> signatures_;
};

}  // namespace splitmed::data
