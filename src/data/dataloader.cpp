#include "src/data/dataloader.hpp"

#include <algorithm>

#include "src/common/error.hpp"
#include "src/serial/state_codec.hpp"

namespace splitmed::data {

DataLoader::DataLoader(const Dataset& dataset,
                       std::vector<std::int64_t> indices,
                       std::int64_t batch_size, Rng rng, bool drop_last)
    : dataset_(&dataset),
      indices_(std::move(indices)),
      batch_size_(batch_size),
      drop_last_(drop_last),
      rng_(rng) {
  SPLITMED_CHECK(batch_size_ > 0, "batch size must be positive");
  SPLITMED_CHECK(!indices_.empty(), "DataLoader needs a non-empty shard");
  for (const auto i : indices_) {
    SPLITMED_CHECK(i >= 0 && i < dataset.size(),
                   "shard index " << i << " out of dataset range");
  }
  start_epoch();
}

void DataLoader::set_batch_size(std::int64_t batch_size) {
  SPLITMED_CHECK(batch_size > 0, "batch size must be positive");
  batch_size_ = batch_size;
}

std::int64_t DataLoader::batches_per_epoch() const {
  const std::int64_t n = shard_size();
  return drop_last_ ? n / batch_size_ : (n + batch_size_ - 1) / batch_size_;
}

void DataLoader::start_epoch() {
  rng_.shuffle(indices_);
  cursor_ = 0;
}

Batch DataLoader::next_batch() {
  if (cursor_ >= indices_.size() ||
      (drop_last_ &&
       cursor_ + static_cast<std::size_t>(batch_size_) > indices_.size())) {
    start_epoch();
  }
  const std::size_t take = std::min(static_cast<std::size_t>(batch_size_),
                                    indices_.size() - cursor_);
  std::span<const std::int64_t> slice(indices_.data() + cursor_, take);
  cursor_ += take;
  Tensor images = dataset_->batch_images(slice);
  if (transform_ != nullptr) {
    images = apply_to_batch(*transform_, images, rng_);
  }
  return Batch{std::move(images), dataset_->batch_labels(slice)};
}

void DataLoader::set_transform(std::shared_ptr<const Transform> transform) {
  transform_ = std::move(transform);
}

void DataLoader::save_state(BufferWriter& writer) const {
  writer.write_u64(indices_.size());
  for (const std::int64_t i : indices_) writer.write_i64(i);
  writer.write_u64(cursor_);
  encode_rng(rng_, writer);
}

void DataLoader::load_state(BufferReader& reader) {
  const std::uint64_t count = reader.read_u64();
  if (count != indices_.size()) {
    throw SerializationError("DataLoader state: checkpoint shard has " +
                             std::to_string(count) + " indices, loader has " +
                             std::to_string(indices_.size()));
  }
  std::vector<std::int64_t> permutation;
  permutation.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    permutation.push_back(reader.read_i64());
  }
  std::vector<std::int64_t> ours = indices_;
  std::vector<std::int64_t> theirs = permutation;
  std::sort(ours.begin(), ours.end());
  std::sort(theirs.begin(), theirs.end());
  if (ours != theirs) {
    throw SerializationError(
        "DataLoader state: stored permutation is not a permutation of this "
        "loader's shard");
  }
  const std::uint64_t cursor = reader.read_u64();
  if (cursor > count) {
    throw SerializationError("DataLoader state: cursor " +
                             std::to_string(cursor) + " past shard size " +
                             std::to_string(count));
  }
  Rng rng = rng_;
  decode_rng(reader, rng);
  indices_ = std::move(permutation);
  cursor_ = static_cast<std::size_t>(cursor);
  rng_ = rng;
}

Batch DataLoader::full_shard() const {
  std::vector<std::int64_t> sorted = indices_;
  std::sort(sorted.begin(), sorted.end());
  return Batch{dataset_->batch_images(sorted), dataset_->batch_labels(sorted)};
}

}  // namespace splitmed::data
