#include "src/data/dataloader.hpp"

#include <algorithm>

#include "src/common/error.hpp"

namespace splitmed::data {

DataLoader::DataLoader(const Dataset& dataset,
                       std::vector<std::int64_t> indices,
                       std::int64_t batch_size, Rng rng, bool drop_last)
    : dataset_(&dataset),
      indices_(std::move(indices)),
      batch_size_(batch_size),
      drop_last_(drop_last),
      rng_(rng) {
  SPLITMED_CHECK(batch_size_ > 0, "batch size must be positive");
  SPLITMED_CHECK(!indices_.empty(), "DataLoader needs a non-empty shard");
  for (const auto i : indices_) {
    SPLITMED_CHECK(i >= 0 && i < dataset.size(),
                   "shard index " << i << " out of dataset range");
  }
  start_epoch();
}

void DataLoader::set_batch_size(std::int64_t batch_size) {
  SPLITMED_CHECK(batch_size > 0, "batch size must be positive");
  batch_size_ = batch_size;
}

std::int64_t DataLoader::batches_per_epoch() const {
  const std::int64_t n = shard_size();
  return drop_last_ ? n / batch_size_ : (n + batch_size_ - 1) / batch_size_;
}

void DataLoader::start_epoch() {
  rng_.shuffle(indices_);
  cursor_ = 0;
}

Batch DataLoader::next_batch() {
  if (cursor_ >= indices_.size() ||
      (drop_last_ &&
       cursor_ + static_cast<std::size_t>(batch_size_) > indices_.size())) {
    start_epoch();
  }
  const std::size_t take = std::min(static_cast<std::size_t>(batch_size_),
                                    indices_.size() - cursor_);
  std::span<const std::int64_t> slice(indices_.data() + cursor_, take);
  cursor_ += take;
  Tensor images = dataset_->batch_images(slice);
  if (transform_ != nullptr) {
    images = apply_to_batch(*transform_, images, rng_);
  }
  return Batch{std::move(images), dataset_->batch_labels(slice)};
}

void DataLoader::set_transform(std::shared_ptr<const Transform> transform) {
  transform_ = std::move(transform);
}

Batch DataLoader::full_shard() const {
  std::vector<std::int64_t> sorted = indices_;
  std::sort(sorted.begin(), sorted.end());
  return Batch{dataset_->batch_images(sorted), dataset_->batch_labels(sorted)};
}

}  // namespace splitmed::data
