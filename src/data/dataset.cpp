#include "src/data/dataset.hpp"

#include <algorithm>

#include "src/common/error.hpp"

namespace splitmed::data {

void Dataset::check_index(std::int64_t i) const {
  SPLITMED_CHECK(i >= 0 && i < size(),
                 "dataset index " << i << " out of range [0, " << size()
                                  << ')');
}

Tensor Dataset::batch_images(std::span<const std::int64_t> indices) const {
  const Shape chw = image_shape();
  SPLITMED_CHECK(chw.rank() == 3, "image_shape must be CHW");
  std::vector<std::int64_t> dims = {static_cast<std::int64_t>(indices.size())};
  for (const auto d : chw.dims()) dims.push_back(d);
  Tensor batch{Shape(std::move(dims))};
  auto bd = batch.data();
  const std::int64_t elems = chw.numel();
  for (std::size_t r = 0; r < indices.size(); ++r) {
    const Tensor img = image(indices[r]);
    check_same_shape(img.shape(), chw, "batch_images");
    auto id = img.data();
    std::copy(id.begin(), id.end(),
              bd.begin() + static_cast<std::ptrdiff_t>(r) * elems);
  }
  return batch;
}

std::vector<std::int64_t> Dataset::batch_labels(
    std::span<const std::int64_t> indices) const {
  std::vector<std::int64_t> out;
  out.reserve(indices.size());
  for (const auto i : indices) out.push_back(label(i));
  return out;
}

}  // namespace splitmed::data
