#include "src/nn/param_util.hpp"

#include <algorithm>

#include "src/common/error.hpp"

namespace splitmed::nn {
namespace {

template <typename Select>
Tensor flatten_impl(const std::vector<Parameter*>& params, Select select) {
  Tensor flat(Shape{parameter_numel(params)});
  auto out = flat.data();
  std::size_t offset = 0;
  for (Parameter* p : params) {
    const auto src = select(*p).data();
    std::copy(src.begin(), src.end(), out.begin() + offset);
    offset += src.size();
  }
  return flat;
}

template <typename Select>
void scatter_impl(const std::vector<Parameter*>& params, const Tensor& flat,
                  Select select) {
  SPLITMED_CHECK(flat.shape().rank() == 1 &&
                     flat.numel() == parameter_numel(params),
                 "flat tensor " << flat.shape().str()
                                << " does not match parameter count "
                                << parameter_numel(params));
  auto src = flat.data();
  std::size_t offset = 0;
  for (Parameter* p : params) {
    auto dst = select(*p).data();
    std::copy_n(src.begin() + offset, dst.size(), dst.begin());
    offset += dst.size();
  }
}

}  // namespace

std::int64_t parameter_numel(const std::vector<Parameter*>& params) {
  std::int64_t n = 0;
  for (const Parameter* p : params) {
    SPLITMED_CHECK(p != nullptr, "null parameter pointer");
    n += p->value.numel();
  }
  return n;
}

Tensor flatten_values(const std::vector<Parameter*>& params) {
  return flatten_impl(params,
                      [](Parameter& p) -> Tensor& { return p.value; });
}

Tensor flatten_gradients(const std::vector<Parameter*>& params) {
  return flatten_impl(params, [](Parameter& p) -> Tensor& { return p.grad; });
}

void load_values(const std::vector<Parameter*>& params, const Tensor& flat) {
  scatter_impl(params, flat,
               [](Parameter& p) -> Tensor& { return p.value; });
}

void load_gradients(const std::vector<Parameter*>& params,
                    const Tensor& flat) {
  scatter_impl(params, flat, [](Parameter& p) -> Tensor& { return p.grad; });
}

void axpy_values(const std::vector<Parameter*>& params, float scale,
                 const Tensor& flat) {
  SPLITMED_CHECK(flat.shape().rank() == 1 &&
                     flat.numel() == parameter_numel(params),
                 "flat tensor does not match parameter count");
  auto src = flat.data();
  std::size_t offset = 0;
  for (Parameter* p : params) {
    auto dst = p->value.data();
    for (std::size_t i = 0; i < dst.size(); ++i) {
      dst[i] += scale * src[offset + i];
    }
    offset += dst.size();
  }
}

}  // namespace splitmed::nn
