#include "src/nn/flatten.hpp"

#include "src/common/error.hpp"

namespace splitmed::nn {

Shape Flatten::output_shape(const Shape& input) const {
  SPLITMED_CHECK(input.rank() >= 1, "Flatten: rank must be >= 1");
  const std::int64_t batch = input.dim(0);
  const std::int64_t rest = batch == 0 ? 0 : input.numel() / batch;
  return Shape{batch, rest};
}

Tensor Flatten::forward(const Tensor& input, bool /*training*/) {
  cached_input_shape_ = input.shape();
  return input.reshape(output_shape(input.shape()));
}

Tensor Flatten::backward(const Tensor& grad_output) {
  SPLITMED_CHECK(cached_input_shape_.rank() >= 1,
                 "Flatten backward before forward");
  return grad_output.reshape(cached_input_shape_);
}

}  // namespace splitmed::nn
