// 2-D convolution (NCHW) via im2col + GEMM.
#pragma once

#include <span>

#include "src/common/rng.hpp"
#include "src/nn/layer.hpp"
#include "src/tensor/gemm_kernels.hpp"
#include "src/tensor/im2col.hpp"

namespace splitmed::nn {

class Conv2d final : public Layer {
 public:
  /// Square kernel, symmetric padding. He-normal init, zero bias.
  Conv2d(std::int64_t in_channels, std::int64_t out_channels,
         std::int64_t kernel, std::int64_t stride, std::int64_t pad, Rng& rng);

  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  Tensor infer(const Tensor& input) override;
  [[nodiscard]] Shape output_shape(const Shape& input) const override;
  std::vector<Parameter*> parameters() override { return {&weight_, &bias_}; }
  [[nodiscard]] std::string name() const override;

  [[nodiscard]] std::int64_t in_channels() const { return in_c_; }
  [[nodiscard]] std::int64_t out_channels() const { return out_c_; }
  [[nodiscard]] const Tensor& bias_value() const { return bias_.value; }

  /// Planner entry points (src/nn/plan.cpp). The convolution with the
  /// elementwise tail `ep` (which must already include this layer's bias —
  /// per_row=true, indexed by output channel) fused into the GEMM
  /// write-back. Caches the input for backward when `cache` is set; the
  /// fused OUTPUT is the caller's to cache (dReLU masks on it).
  Tensor forward_fused(const Tensor& input, const gemmk::Epilogue& ep,
                       bool cache);
  /// Raw-span variant for slab-chained inference: input/out are NCHW with
  /// the given geometry; out must hold batch*out_channels*out_h*out_w.
  void run_fused(std::span<const float> input, std::int64_t batch,
                 std::int64_t in_h, std::int64_t in_w, std::span<float> out,
                 const gemmk::Epilogue& ep) const;
  /// backward() against a raw grad span (the planner's fused groups mask
  /// dReLU into arena scratch and feed it here — bitwise identical to
  /// backward(Tensor) on the same bytes).
  Tensor backward_from(std::span<const float> grad_output,
                       const Shape& grad_shape);

 private:
  [[nodiscard]] ConvGeometry geometry(std::int64_t in_h,
                                      std::int64_t in_w) const;

  std::int64_t in_c_;
  std::int64_t out_c_;
  std::int64_t kernel_;
  std::int64_t stride_;
  std::int64_t pad_;
  Parameter weight_;  // [out_c, in_c * k * k]
  Parameter bias_;    // [out_c]
  Tensor cached_input_;
};

}  // namespace splitmed::nn
