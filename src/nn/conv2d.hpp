// 2-D convolution (NCHW) via im2col + GEMM.
#pragma once

#include "src/common/rng.hpp"
#include "src/nn/layer.hpp"
#include "src/tensor/im2col.hpp"

namespace splitmed::nn {

class Conv2d final : public Layer {
 public:
  /// Square kernel, symmetric padding. He-normal init, zero bias.
  Conv2d(std::int64_t in_channels, std::int64_t out_channels,
         std::int64_t kernel, std::int64_t stride, std::int64_t pad, Rng& rng);

  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  [[nodiscard]] Shape output_shape(const Shape& input) const override;
  std::vector<Parameter*> parameters() override { return {&weight_, &bias_}; }
  [[nodiscard]] std::string name() const override;

  [[nodiscard]] std::int64_t in_channels() const { return in_c_; }
  [[nodiscard]] std::int64_t out_channels() const { return out_c_; }

 private:
  [[nodiscard]] ConvGeometry geometry(std::int64_t in_h,
                                      std::int64_t in_w) const;

  std::int64_t in_c_;
  std::int64_t out_c_;
  std::int64_t kernel_;
  std::int64_t stride_;
  std::int64_t pad_;
  Parameter weight_;  // [out_c, in_c * k * k]
  Parameter bias_;    // [out_c]
  Tensor cached_input_;
};

}  // namespace splitmed::nn
