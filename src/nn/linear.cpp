#include "src/nn/linear.hpp"

#include <sstream>

#include "src/common/error.hpp"
#include "src/nn/init.hpp"
#include "src/tensor/gemm.hpp"
#include "src/tensor/ops.hpp"
#include "src/tensor/workspace.hpp"

namespace splitmed::nn {

Linear::Linear(std::int64_t in_features, std::int64_t out_features, Rng& rng)
    : in_(in_features),
      out_(out_features),
      weight_("linear.weight",
              he_normal(Shape{out_features, in_features}, in_features, rng)),
      bias_("linear.bias", Tensor::zeros(Shape{out_features})) {
  SPLITMED_CHECK(in_features > 0 && out_features > 0,
                 "Linear: feature counts must be positive");
}

Tensor Linear::forward(const Tensor& input, bool /*training*/) {
  SPLITMED_CHECK(input.shape().rank() == 2 && input.shape().dim(1) == in_,
                 "Linear(" << in_ << "->" << out_ << "): bad input "
                           << input.shape().str());
  cached_input_ = input;
  Tensor out = ops::matmul_nt(input, weight_.value);  // [b,in]·[out,in]ᵀ
  auto od = out.data();
  auto bd = bias_.value.data();
  const std::int64_t batch = input.shape().dim(0);
  for (std::int64_t r = 0; r < batch; ++r) {
    float* row = od.data() + r * out_;
    for (std::int64_t c = 0; c < out_; ++c) row[c] += bd[c];
  }
  return out;
}

Tensor Linear::infer(const Tensor& input) {
  // Inference-only: bias fused at GEMM write-back (same single add per
  // element as forward's read-modify-write loop), no input cache. Bitwise
  // identical to forward(input, false).
  SPLITMED_CHECK(input.shape().rank() == 2 && input.shape().dim(1) == in_,
                 "Linear(" << in_ << "->" << out_ << "): bad input "
                           << input.shape().str());
  gemmk::Epilogue ep;
  ep.bias = bias_.value.data().data();
  ep.per_row = false;  // bias indexed by output feature = C column
  Tensor out(Shape{input.shape().dim(0), out_});
  run_fused(input.data(), input.shape().dim(0), out.data(), ep);
  return out;
}

Tensor Linear::forward_fused(const Tensor& input, const gemmk::Epilogue& ep,
                             bool cache) {
  SPLITMED_CHECK(input.shape().rank() == 2 && input.shape().dim(1) == in_,
                 "Linear(" << in_ << "->" << out_ << "): bad input "
                           << input.shape().str());
  if (cache) cached_input_ = input;
  Tensor out(Shape{input.shape().dim(0), out_});
  run_fused(input.data(), input.shape().dim(0), out.data(), ep);
  return out;
}

void Linear::run_fused(std::span<const float> input, std::int64_t batch,
                       std::span<float> out,
                       const gemmk::Epilogue& ep) const {
  SPLITMED_CHECK(input.size() >= static_cast<std::size_t>(batch * in_) &&
                     out.size() >= static_cast<std::size_t>(batch * out_),
                 name() << ": run_fused span too small");
  // Same x·Wᵀ GEMM ops::matmul_nt runs (gemm_nt with identical dims), with
  // the elementwise tail applied per C column at write-back.
  gemm_nt_ep(batch, out_, in_, input.first(static_cast<std::size_t>(
                                  batch * in_)),
             weight_.value.data(),
             out.first(static_cast<std::size_t>(batch * out_)), ep);
}

Tensor Linear::backward(const Tensor& grad_output) {
  return backward_from(grad_output.data(), grad_output.shape());
}

Tensor Linear::backward_from(std::span<const float> grad_output,
                             const Shape& grad_shape) {
  SPLITMED_CHECK(grad_shape.rank() == 2 && grad_shape.dim(1) == out_,
                 "Linear backward: bad grad " << grad_shape.str());
  SPLITMED_CHECK(cached_input_.shape().rank() == 2,
                 "Linear backward before forward");
  // dW += gᵀ·x : [out,b]·[b,in]; db += column sums of g; dx = g·W.
  // The dW product lands in workspace scratch instead of a fresh Tensor —
  // no heap allocation in steady state. Adding it elementwise matches the
  // old axpy(1.0F, ...) bitwise (1.0f * x == x exactly).
  const std::int64_t batch = grad_shape.dim(0);
  {
    ws::WorkspaceScope scratch;
    std::span<float> dw = scratch.floats(out_ * in_);
    gemm_tn(out_, in_, batch, grad_output, cached_input_.data(), dw);
    auto wg = weight_.grad.data();
    for (std::int64_t i = 0; i < out_ * in_; ++i) wg[i] += dw[i];
  }
  auto bg = bias_.grad.data();
  for (std::int64_t r = 0; r < batch; ++r) {
    const float* row = grad_output.data() + r * out_;
    for (std::int64_t c = 0; c < out_; ++c) bg[c] += row[c];
  }
  // dx = g·W — the same gemm_nn call ops::matmul(grad_output, weight_.value)
  // lowers to (ops.cpp), bitwise identical.
  Tensor dx(Shape{batch, in_});
  gemm_nn(batch, in_, out_, grad_output, weight_.value.data(), dx.data());
  return dx;
}

Shape Linear::output_shape(const Shape& input) const {
  SPLITMED_CHECK(input.rank() == 2 && input.dim(1) == in_,
                 "Linear::output_shape: bad input " << input.str());
  return Shape{input.dim(0), out_};
}

std::string Linear::name() const {
  std::ostringstream os;
  os << "Linear(" << in_ << "->" << out_ << ')';
  return os.str();
}

}  // namespace splitmed::nn
