#include "src/nn/linear.hpp"

#include <sstream>

#include "src/common/error.hpp"
#include "src/nn/init.hpp"
#include "src/tensor/gemm.hpp"
#include "src/tensor/ops.hpp"
#include "src/tensor/workspace.hpp"

namespace splitmed::nn {

Linear::Linear(std::int64_t in_features, std::int64_t out_features, Rng& rng)
    : in_(in_features),
      out_(out_features),
      weight_("linear.weight",
              he_normal(Shape{out_features, in_features}, in_features, rng)),
      bias_("linear.bias", Tensor::zeros(Shape{out_features})) {
  SPLITMED_CHECK(in_features > 0 && out_features > 0,
                 "Linear: feature counts must be positive");
}

Tensor Linear::forward(const Tensor& input, bool /*training*/) {
  SPLITMED_CHECK(input.shape().rank() == 2 && input.shape().dim(1) == in_,
                 "Linear(" << in_ << "->" << out_ << "): bad input "
                           << input.shape().str());
  cached_input_ = input;
  Tensor out = ops::matmul_nt(input, weight_.value);  // [b,in]·[out,in]ᵀ
  auto od = out.data();
  auto bd = bias_.value.data();
  const std::int64_t batch = input.shape().dim(0);
  for (std::int64_t r = 0; r < batch; ++r) {
    float* row = od.data() + r * out_;
    for (std::int64_t c = 0; c < out_; ++c) row[c] += bd[c];
  }
  return out;
}

Tensor Linear::backward(const Tensor& grad_output) {
  SPLITMED_CHECK(grad_output.shape().rank() == 2 &&
                     grad_output.shape().dim(1) == out_,
                 "Linear backward: bad grad " << grad_output.shape().str());
  SPLITMED_CHECK(cached_input_.shape().rank() == 2,
                 "Linear backward before forward");
  // dW += gᵀ·x : [out,b]·[b,in]; db += column sums of g; dx = g·W.
  // The dW product lands in workspace scratch instead of a fresh Tensor —
  // no heap allocation in steady state. Adding it elementwise matches the
  // old axpy(1.0F, ...) bitwise (1.0f * x == x exactly).
  {
    const std::int64_t batch = grad_output.shape().dim(0);
    ws::WorkspaceScope scratch;
    std::span<float> dw = scratch.floats(out_ * in_);
    gemm_tn(out_, in_, batch, grad_output.data(), cached_input_.data(), dw);
    auto wg = weight_.grad.data();
    for (std::int64_t i = 0; i < out_ * in_; ++i) wg[i] += dw[i];
  }
  auto gd = grad_output.data();
  auto bg = bias_.grad.data();
  const std::int64_t batch = grad_output.shape().dim(0);
  for (std::int64_t r = 0; r < batch; ++r) {
    const float* row = gd.data() + r * out_;
    for (std::int64_t c = 0; c < out_; ++c) bg[c] += row[c];
  }
  return ops::matmul(grad_output, weight_.value);
}

Shape Linear::output_shape(const Shape& input) const {
  SPLITMED_CHECK(input.rank() == 2 && input.dim(1) == in_,
                 "Linear::output_shape: bad input " << input.str());
  return Shape{input.dim(0), out_};
}

std::string Linear::name() const {
  std::ostringstream os;
  os << "Linear(" << in_ << "->" << out_ << ')';
  return os.str();
}

}  // namespace splitmed::nn
