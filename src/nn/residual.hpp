// Basic residual block (ResNet v1): conv-bn-relu-conv-bn + skip, then ReLU.
// When stride > 1 or channel counts differ, the skip path is a 1x1
// projection conv + BN (option B of He et al.).
#pragma once

#include "src/common/rng.hpp"
#include "src/nn/batchnorm.hpp"
#include "src/nn/conv2d.hpp"
#include "src/nn/layer.hpp"

namespace splitmed::nn {

class ResidualBlock final : public Layer {
 public:
  ResidualBlock(std::int64_t in_channels, std::int64_t out_channels,
                std::int64_t stride, Rng& rng);

  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  /// Planner-fused inference: conv+bn(+relu) stages run with epilogue-fused
  /// GEMMs through workspace slabs; the residual join and final ReLU stay
  /// elementwise OUTSIDE the GEMM (the join reads two producers, so folding
  /// it into either would need the other materialized anyway — adding it
  /// post-fold keeps the exact ops::add float sequence). Bitwise identical
  /// to forward(input, false); falls back to it when the planner is off.
  Tensor infer(const Tensor& input) override;
  [[nodiscard]] Shape output_shape(const Shape& input) const override;
  std::vector<Parameter*> parameters() override;
  [[nodiscard]] std::string name() const override;

  /// Forwards to the embedded BatchNorm layers (running statistics).
  void save_extra_state(BufferWriter& writer) const override;
  void load_extra_state(BufferReader& reader) override;

 private:
  Conv2d conv1_;
  BatchNorm2d bn1_;
  Conv2d conv2_;
  BatchNorm2d bn2_;
  bool has_projection_;
  std::unique_ptr<Conv2d> proj_conv_;
  std::unique_ptr<BatchNorm2d> proj_bn_;
  // Caches for backward.
  Tensor cached_relu1_out_;
  Tensor cached_sum_;  // pre-activation of the final ReLU
};

}  // namespace splitmed::nn
