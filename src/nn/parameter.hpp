// A trainable parameter: value + gradient accumulator + name.
#pragma once

#include <string>
#include <utility>

#include "src/tensor/tensor.hpp"

namespace splitmed::nn {

struct Parameter {
  Parameter() = default;
  Parameter(std::string param_name, Tensor initial_value)
      : name(std::move(param_name)),
        value(std::move(initial_value)),
        grad(value.shape()) {}

  /// Resets the gradient accumulator to zero (kept same-shape as value).
  void zero_grad() { grad.zero(); }

  std::string name;
  Tensor value;
  Tensor grad;
};

}  // namespace splitmed::nn
