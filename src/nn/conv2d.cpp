#include "src/nn/conv2d.hpp"

#include <sstream>

#include "src/common/error.hpp"
#include "src/common/thread_pool.hpp"
#include "src/nn/init.hpp"
#include "src/tensor/gemm.hpp"
#include "src/tensor/workspace.hpp"

namespace splitmed::nn {

Conv2d::Conv2d(std::int64_t in_channels, std::int64_t out_channels,
               std::int64_t kernel, std::int64_t stride, std::int64_t pad,
               Rng& rng)
    : in_c_(in_channels),
      out_c_(out_channels),
      kernel_(kernel),
      stride_(stride),
      pad_(pad),
      weight_("conv.weight",
              he_normal(Shape{out_channels, in_channels * kernel * kernel},
                        in_channels * kernel * kernel, rng)),
      bias_("conv.bias", Tensor::zeros(Shape{out_channels})) {
  SPLITMED_CHECK(in_channels > 0 && out_channels > 0 && kernel > 0 &&
                     stride > 0 && pad >= 0,
                 "Conv2d: bad hyperparameters");
}

ConvGeometry Conv2d::geometry(std::int64_t in_h, std::int64_t in_w) const {
  ConvGeometry g;
  g.channels = in_c_;
  g.in_h = in_h;
  g.in_w = in_w;
  g.kernel_h = kernel_;
  g.kernel_w = kernel_;
  g.stride = stride_;
  g.pad = pad_;
  g.validate();
  return g;
}

Tensor Conv2d::forward(const Tensor& input, bool /*training*/) {
  SPLITMED_CHECK(input.shape().rank() == 4 && input.shape().dim(1) == in_c_,
                 name() << ": bad input " << input.shape().str());
  cached_input_ = input;
  const std::int64_t batch = input.shape().dim(0);
  const ConvGeometry g = geometry(input.shape().dim(2), input.shape().dim(3));
  const std::int64_t oh = g.out_h(), ow = g.out_w();
  Tensor out(Shape{batch, out_c_, oh, ow});

  const std::int64_t image_elems = in_c_ * g.in_h * g.in_w;
  const std::int64_t out_elems = out_c_ * oh * ow;
  auto id = input.data();
  auto od = out.data();
  auto bd = bias_.value.data();
  // Samples write disjoint output planes, so the batch loop partitions
  // cleanly across threads; each chunk checks its col scratch out of its
  // own thread's workspace arena — zero heap allocations once the arenas
  // are warm. (Nested kernel calls run serially inside a chunk; with a
  // single-sample batch the chunk runs inline and the kernels parallelize
  // instead.)
  parallel_for(0, batch, 1, [&](std::int64_t b0, std::int64_t b1) {
    ws::WorkspaceScope scratch;
    std::span<float> col = scratch.floats(g.col_rows() * g.col_cols());
    for (std::int64_t b = b0; b < b1; ++b) {
      im2col(g, id.subspan(static_cast<std::size_t>(b * image_elems),
                           static_cast<std::size_t>(image_elems)),
             col);
      // out[b] = W[out_c, crk] · col[crk, oh*ow]
      gemm_nn(out_c_, g.col_cols(), g.col_rows(), weight_.value.data(), col,
              od.subspan(static_cast<std::size_t>(b * out_elems),
                         static_cast<std::size_t>(out_elems)));
      float* ob = od.data() + b * out_elems;
      for (std::int64_t c = 0; c < out_c_; ++c) {
        float* plane = ob + c * oh * ow;
        const float bias = bd[c];
        for (std::int64_t i = 0; i < oh * ow; ++i) plane[i] += bias;
      }
    }
  });
  return out;
}

Tensor Conv2d::infer(const Tensor& input) {
  // Inference-only: same GEMM fold, bias applied at write-back (one add per
  // element, the same single add forward() does read-modify-write), and no
  // input cache. Bitwise identical to forward(input, false).
  SPLITMED_CHECK(input.shape().rank() == 4 && input.shape().dim(1) == in_c_,
                 name() << ": bad input " << input.shape().str());
  gemmk::Epilogue ep;
  ep.bias = bias_.value.data().data();
  Tensor out(output_shape(input.shape()));
  run_fused(input.data(), input.shape().dim(0), input.shape().dim(2),
            input.shape().dim(3), out.data(), ep);
  return out;
}

Tensor Conv2d::forward_fused(const Tensor& input, const gemmk::Epilogue& ep,
                             bool cache) {
  SPLITMED_CHECK(input.shape().rank() == 4 && input.shape().dim(1) == in_c_,
                 name() << ": bad input " << input.shape().str());
  if (cache) cached_input_ = input;
  Tensor out(output_shape(input.shape()));
  run_fused(input.data(), input.shape().dim(0), input.shape().dim(2),
            input.shape().dim(3), out.data(), ep);
  return out;
}

void Conv2d::run_fused(std::span<const float> input, std::int64_t batch,
                       std::int64_t in_h, std::int64_t in_w,
                       std::span<float> out,
                       const gemmk::Epilogue& ep) const {
  const ConvGeometry g = geometry(in_h, in_w);
  const std::int64_t oh = g.out_h(), ow = g.out_w();
  const std::int64_t image_elems = in_c_ * g.in_h * g.in_w;
  const std::int64_t out_elems = out_c_ * oh * ow;
  SPLITMED_CHECK(
      input.size() >= static_cast<std::size_t>(batch * image_elems) &&
          out.size() >= static_cast<std::size_t>(batch * out_elems),
      name() << ": run_fused span too small");
  // Same batch partitioning and per-sample GEMM as forward(); the epilogue
  // (bias / bn / relu, per output channel = per C row) replaces the
  // read-modify-write bias loop with the identical adds at write-back.
  parallel_for(0, batch, 1, [&](std::int64_t b0, std::int64_t b1) {
    ws::WorkspaceScope scratch;
    std::span<float> col = scratch.floats(g.col_rows() * g.col_cols());
    for (std::int64_t b = b0; b < b1; ++b) {
      im2col(g, input.subspan(static_cast<std::size_t>(b * image_elems),
                              static_cast<std::size_t>(image_elems)),
             col);
      gemm_nn_ep(out_c_, g.col_cols(), g.col_rows(), weight_.value.data(),
                 col,
                 out.subspan(static_cast<std::size_t>(b * out_elems),
                             static_cast<std::size_t>(out_elems)),
                 ep);
    }
  });
}

Tensor Conv2d::backward(const Tensor& grad_output) {
  return backward_from(grad_output.data(), grad_output.shape());
}

Tensor Conv2d::backward_from(std::span<const float> grad_output,
                             const Shape& grad_shape) {
  SPLITMED_CHECK(cached_input_.shape().rank() == 4,
                 "Conv2d backward before forward");
  const std::int64_t batch = cached_input_.shape().dim(0);
  const ConvGeometry g =
      geometry(cached_input_.shape().dim(2), cached_input_.shape().dim(3));
  const std::int64_t oh = g.out_h(), ow = g.out_w();
  check_same_shape(grad_shape, Shape{batch, out_c_, oh, ow},
                   "Conv2d backward");

  Tensor grad_input(cached_input_.shape());

  const std::int64_t image_elems = in_c_ * g.in_h * g.in_w;
  const std::int64_t out_elems = out_c_ * oh * ow;
  const std::int64_t wn = weight_.value.numel();
  auto id = cached_input_.data();
  auto gd = grad_output;
  auto gi = grad_input.data();
  auto wg = weight_.grad.data();
  auto bg = bias_.grad.data();

  // Per-sample weight/bias gradient slabs, checked out of the CALLING
  // thread's arena so they survive the parallel region below; workers fill
  // disjoint slabs, then one serial pass reduces them in ascending sample
  // order — the identical float grouping to a serial batch loop, so the
  // result is bitwise thread-invariant.
  ws::WorkspaceScope slabs;
  std::span<float> dw_slabs = slabs.floats(batch * wn);
  std::span<float> db_slabs = slabs.floats(batch * out_c_);

  // One fused pass over the batch; samples are independent:
  //  - dcol = Wᵀ[crk, out_c] · g_out[out_c, ohw] (gemm_tn), scatter-added
  //    back to this sample's disjoint grad_input planes (col2im);
  //  - bias slab: spatial sums per channel;
  //  - weight slab: dW_b = g_out[out_c, ohw] · colᵀ[ohw, crk]  (gemm_nt).
  // col/dcol scratch comes from each worker's own arena.
  parallel_for(0, batch, 1, [&](std::int64_t b0, std::int64_t b1) {
    ws::WorkspaceScope scratch;
    std::span<float> col = scratch.floats(g.col_rows() * g.col_cols());
    std::span<float> dcol = scratch.floats(g.col_rows() * g.col_cols());
    for (std::int64_t b = b0; b < b1; ++b) {
      auto g_out = gd.subspan(static_cast<std::size_t>(b * out_elems),
                              static_cast<std::size_t>(out_elems));
      gemm_tn(g.col_rows(), g.col_cols(), out_c_, weight_.value.data(), g_out,
              dcol);
      col2im(g, dcol,
             gi.subspan(static_cast<std::size_t>(b * image_elems),
                        static_cast<std::size_t>(image_elems)));
      float* db = db_slabs.data() + b * out_c_;
      for (std::int64_t c = 0; c < out_c_; ++c) {
        const float* plane = g_out.data() + c * oh * ow;
        float acc = plane[0];
        for (std::int64_t i = 1; i < oh * ow; ++i) acc += plane[i];
        db[c] = acc;
      }
      im2col(g, id.subspan(static_cast<std::size_t>(b * image_elems),
                           static_cast<std::size_t>(image_elems)),
             col);
      gemm_nt(out_c_, g.col_rows(), g.col_cols(), g_out, col,
              dw_slabs.subspan(static_cast<std::size_t>(b * wn),
                               static_cast<std::size_t>(wn)));
    }
  });

  // Serial, sample-ascending reduction: wg/bg see the same addends in the
  // same order for every thread count.
  for (std::int64_t b = 0; b < batch; ++b) {
    const float* db = db_slabs.data() + b * out_c_;
    for (std::int64_t c = 0; c < out_c_; ++c) bg[c] += db[c];
    const float* dw = dw_slabs.data() + b * wn;
    for (std::int64_t i = 0; i < wn; ++i) wg[i] += dw[i];
  }
  return grad_input;
}

Shape Conv2d::output_shape(const Shape& input) const {
  SPLITMED_CHECK(input.rank() == 4 && input.dim(1) == in_c_,
                 name() << "::output_shape: bad input " << input.str());
  const ConvGeometry g = geometry(input.dim(2), input.dim(3));
  return Shape{input.dim(0), out_c_, g.out_h(), g.out_w()};
}

std::string Conv2d::name() const {
  std::ostringstream os;
  os << "Conv2d(" << in_c_ << "->" << out_c_ << ", k" << kernel_ << " s"
     << stride_ << " p" << pad_ << ')';
  return os.str();
}

}  // namespace splitmed::nn
