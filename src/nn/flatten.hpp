// Flattens [b, ...] -> [b, prod(...)]. Pure reshape; gradients reshape back.
#pragma once

#include "src/nn/layer.hpp"

namespace splitmed::nn {

class Flatten final : public Layer {
 public:
  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  [[nodiscard]] Shape output_shape(const Shape& input) const override;
  [[nodiscard]] std::string name() const override { return "Flatten"; }

 private:
  Shape cached_input_shape_;
};

}  // namespace splitmed::nn
