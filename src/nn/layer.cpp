// Layer is header-only today; this TU anchors the vtable.
#include "src/nn/layer.hpp"
