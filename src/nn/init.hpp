// Weight initializers. fan_in/fan_out are passed explicitly because the
// caller (Linear/Conv2d) knows the semantic fan, not the raw shape.
#pragma once

#include "src/common/rng.hpp"
#include "src/tensor/tensor.hpp"

namespace splitmed::nn {

/// He/Kaiming normal — stddev sqrt(2/fan_in); the right choice before ReLU.
Tensor he_normal(Shape shape, std::int64_t fan_in, Rng& rng);

/// Glorot/Xavier uniform — limit sqrt(6/(fan_in+fan_out)).
Tensor xavier_uniform(Shape shape, std::int64_t fan_in, std::int64_t fan_out,
                      Rng& rng);

}  // namespace splitmed::nn
