#include "src/nn/residual.hpp"

#include <sstream>

#include "src/common/error.hpp"
#include "src/nn/plan.hpp"
#include "src/tensor/ops.hpp"
#include "src/tensor/workspace.hpp"

namespace splitmed::nn {

ResidualBlock::ResidualBlock(std::int64_t in_channels,
                             std::int64_t out_channels, std::int64_t stride,
                             Rng& rng)
    : conv1_(in_channels, out_channels, 3, stride, 1, rng),
      bn1_(out_channels),
      conv2_(out_channels, out_channels, 3, 1, 1, rng),
      bn2_(out_channels),
      has_projection_(stride != 1 || in_channels != out_channels) {
  if (has_projection_) {
    proj_conv_ =
        std::make_unique<Conv2d>(in_channels, out_channels, 1, stride, 0, rng);
    proj_bn_ = std::make_unique<BatchNorm2d>(out_channels);
  }
}

Tensor ResidualBlock::forward(const Tensor& input, bool training) {
  Tensor main = bn1_.forward(conv1_.forward(input, training), training);
  // ReLU 1 (inline so we can cache its output for the backward mask).
  {
    auto d = main.data();
    for (auto& v : d) v = v > 0.0F ? v : 0.0F;
  }
  cached_relu1_out_ = main;
  main = bn2_.forward(conv2_.forward(main, training), training);

  Tensor skip = has_projection_
                    ? proj_bn_->forward(proj_conv_->forward(input, training),
                                        training)
                    : input;
  Tensor sum = ops::add(main, skip);
  cached_sum_ = sum;
  auto d = sum.data();
  for (auto& v : d) v = v > 0.0F ? v : 0.0F;
  return sum;
}

Tensor ResidualBlock::infer(const Tensor& input) {
  if (!planner_enabled()) return forward(input, /*training=*/false);
  // Fused inference: both main-path stages and the projection run as
  // epilogue-fused GEMMs (bias + eval BN, plus ReLU on stage 1) into arena
  // slabs — no intermediate Tensors, no backward caches. The residual join
  // and final ReLU run elementwise on the finished stage outputs, the same
  // float sequence as ops::add + the in-place ReLU of forward().
  const Shape s1 = conv1_.output_shape(input.shape());
  const Shape s2 = conv2_.output_shape(s1);
  Tensor out(s2);
  ws::WorkspaceScope scope;
  std::span<float> t1 = scope.floats(s1.numel());
  std::span<float> t2 = scope.floats(s2.numel());
  std::span<float> inv1 = scope.floats(bn1_.channels());
  std::span<float> inv2 = scope.floats(bn2_.channels());
  {
    const gemmk::Epilogue ep =
        make_conv_epilogue(conv1_, &bn1_, inv1, /*relu=*/true);
    conv1_.run_fused(input.data(), input.shape().dim(0),
                     input.shape().dim(2), input.shape().dim(3), t1, ep);
  }
  {
    const gemmk::Epilogue ep =
        make_conv_epilogue(conv2_, &bn2_, inv2, /*relu=*/false);
    conv2_.run_fused(t1, s1.dim(0), s1.dim(2), s1.dim(3), t2, ep);
  }
  std::span<const float> skip = input.data();
  if (has_projection_) {
    std::span<float> sp = scope.floats(s2.numel());
    std::span<float> invp = scope.floats(proj_bn_->channels());
    const gemmk::Epilogue ep = make_conv_epilogue(
        *proj_conv_, proj_bn_.get(), invp, /*relu=*/false);
    proj_conv_->run_fused(input.data(), input.shape().dim(0),
                          input.shape().dim(2), input.shape().dim(3), sp, ep);
    skip = sp;
  }
  auto od = out.data();
  for (std::size_t i = 0; i < od.size(); ++i) {
    const float v = t2[i] + skip[i];
    od[i] = v > 0.0F ? v : 0.0F;
  }
  return out;
}

Tensor ResidualBlock::backward(const Tensor& grad_output) {
  SPLITMED_CHECK(cached_sum_.shape().rank() == 4,
                 "ResidualBlock backward before forward");
  check_same_shape(grad_output.shape(), cached_sum_.shape(),
                   "ResidualBlock backward");
  // Final ReLU mask.
  Tensor g = grad_output;
  {
    auto gd = g.data();
    auto sd = cached_sum_.data();
    for (std::size_t i = 0; i < gd.size(); ++i) {
      if (sd[i] <= 0.0F) gd[i] = 0.0F;
    }
  }
  // Main path: bn2 -> conv2 -> relu1 mask -> bn1 -> conv1.
  Tensor g_main = conv2_.backward(bn2_.backward(g));
  {
    auto gd = g_main.data();
    auto rd = cached_relu1_out_.data();
    for (std::size_t i = 0; i < gd.size(); ++i) {
      if (rd[i] <= 0.0F) gd[i] = 0.0F;
    }
  }
  Tensor grad_input = conv1_.backward(bn1_.backward(g_main));
  // Skip path adds its gradient contribution.
  if (has_projection_) {
    ops::axpy(1.0F, proj_conv_->backward(proj_bn_->backward(g)), grad_input);
  } else {
    ops::axpy(1.0F, g, grad_input);
  }
  return grad_input;
}

Shape ResidualBlock::output_shape(const Shape& input) const {
  return bn2_.output_shape(
      conv2_.output_shape(bn1_.output_shape(conv1_.output_shape(input))));
}

std::vector<Parameter*> ResidualBlock::parameters() {
  std::vector<Parameter*> out;
  for (Parameter* p : conv1_.parameters()) out.push_back(p);
  for (Parameter* p : bn1_.parameters()) out.push_back(p);
  for (Parameter* p : conv2_.parameters()) out.push_back(p);
  for (Parameter* p : bn2_.parameters()) out.push_back(p);
  if (has_projection_) {
    for (Parameter* p : proj_conv_->parameters()) out.push_back(p);
    for (Parameter* p : proj_bn_->parameters()) out.push_back(p);
  }
  return out;
}

std::string ResidualBlock::name() const {
  std::ostringstream os;
  os << "ResidualBlock(" << conv1_.in_channels() << "->"
     << conv1_.out_channels() << (has_projection_ ? ", proj" : "") << ')';
  return os.str();
}

void ResidualBlock::save_extra_state(BufferWriter& writer) const {
  bn1_.save_extra_state(writer);
  bn2_.save_extra_state(writer);
  writer.write_u8(has_projection_ ? 1 : 0);
  if (has_projection_) proj_bn_->save_extra_state(writer);
}

void ResidualBlock::load_extra_state(BufferReader& reader) {
  bn1_.load_extra_state(reader);
  bn2_.load_extra_state(reader);
  const std::uint8_t flag = reader.read_u8();
  if (flag != (has_projection_ ? 1 : 0)) {
    throw SerializationError(
        "ResidualBlock extra state: projection flag mismatch (checkpoint " +
        std::to_string(flag) + ", model " +
        std::to_string(has_projection_ ? 1 : 0) + ")");
  }
  if (has_projection_) proj_bn_->load_extra_state(reader);
}

}  // namespace splitmed::nn
