// Parameter checkpointing — save/restore a model's (or a split half's)
// parameters to a file. Production necessity for geo-distributed training:
// platforms and server checkpoint independently and can resume after faults.
//
// File format: magic "SMCKPT01", u32 parameter count, then per parameter a
// length-prefixed name and the tensor payload. Files are published
// atomically (temp file + fsync + rename), so a crash mid-save leaves the
// previous checkpoint intact, never a torn file.
//
// Scope: trainable parameters only. Non-parameter state (BatchNorm running
// statistics, optimizer momentum) is not captured here — the full-state
// SMCKPT02 checkpoint (core/checkpoint.hpp) exists for that.
#pragma once

#include <string>
#include <vector>

#include "src/nn/parameter.hpp"
#include "src/serial/buffer.hpp"

namespace splitmed {

/// Appends the parameter block (u32 count, then per parameter a
/// length-prefixed name and the tensor payload) to `w`. Reused by both the
/// params-only file below and the full-state node checkpoints.
void write_parameters(BufferWriter& w,
                      const std::vector<nn::Parameter*>& params);

/// Mirror of write_parameters. Decodes every tensor into temporaries and
/// validates count, names (in order), and shapes BEFORE applying anything —
/// `params` are untouched when this throws. Errors name the offending
/// parameter and the expected vs actual shape; `context` names the source.
void read_parameters(BufferReader& r,
                     const std::vector<nn::Parameter*>& params,
                     const std::string& context);

/// Writes all parameter VALUES to `path`, atomically (overwrites). Throws
/// Error on I/O failure.
void save_parameters(const std::string& path,
                     const std::vector<nn::Parameter*>& params);

/// Restores parameter values from `path`. The file must contain exactly the
/// same parameters (count, names in order, shapes) and nothing else —
/// mismatches, short reads, and trailing garbage throw SerializationError
/// rather than silently loading a different model, and the in-memory
/// parameters are untouched on any failure.
void load_parameters(const std::string& path,
                     const std::vector<nn::Parameter*>& params);

}  // namespace splitmed
