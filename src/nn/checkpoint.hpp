// Parameter checkpointing — save/restore a model's (or a split half's)
// parameters to a file. Production necessity for geo-distributed training:
// platforms and server checkpoint independently and can resume after faults.
//
// File format: magic "SMCKPT01", u32 parameter count, then per parameter a
// length-prefixed name and the tensor payload.
//
// Scope: trainable parameters only. Non-parameter state (BatchNorm running
// statistics, optimizer momentum) is not captured; a restored model is exact
// for parameter-only layers, while BatchNorm eval statistics re-estimate
// from post-restore batches.
#pragma once

#include <string>
#include <vector>

#include "src/nn/parameter.hpp"

namespace splitmed {

/// Writes all parameter VALUES to `path` (overwrites). Throws Error on I/O
/// failure.
void save_parameters(const std::string& path,
                     const std::vector<nn::Parameter*>& params);

/// Restores parameter values from `path`. The file must contain exactly the
/// same parameters (count, names in order, shapes) — mismatches throw
/// SerializationError rather than silently loading a different model.
void load_parameters(const std::string& path,
                     const std::vector<nn::Parameter*>& params);

}  // namespace splitmed
