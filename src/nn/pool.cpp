#include "src/nn/pool.hpp"

#include <algorithm>
#include <limits>
#include <sstream>

#include "src/common/error.hpp"
#include "src/common/thread_pool.hpp"

namespace splitmed::nn {
namespace {

/// Planes per parallel chunk so each chunk moves >= ~16k elements; pooling
/// planes are fully independent in both forward and backward.
std::int64_t plane_grain(std::int64_t per_plane_cost) {
  constexpr std::int64_t kParallelElems = 16 * 1024;
  return std::max<std::int64_t>(
      1, kParallelElems / std::max<std::int64_t>(per_plane_cost, 1));
}

}  // namespace

MaxPool2d::MaxPool2d(std::int64_t window, std::int64_t stride)
    : window_(window), stride_(stride == 0 ? window : stride) {
  SPLITMED_CHECK(window_ > 0 && stride_ > 0, "MaxPool2d: bad window/stride");
}

Shape MaxPool2d::output_shape(const Shape& input) const {
  SPLITMED_CHECK(input.rank() == 4, "MaxPool2d: input must be NCHW");
  SPLITMED_CHECK(input.dim(2) >= window_ && input.dim(3) >= window_,
                 "MaxPool2d: window " << window_ << " larger than input "
                                      << input.str());
  const std::int64_t oh = (input.dim(2) - window_) / stride_ + 1;
  const std::int64_t ow = (input.dim(3) - window_) / stride_ + 1;
  SPLITMED_CHECK(oh > 0 && ow > 0,
                 "MaxPool2d: window " << window_ << " too large for "
                                      << input.str());
  return Shape{input.dim(0), input.dim(1), oh, ow};
}

Tensor MaxPool2d::forward(const Tensor& input, bool /*training*/) {
  const Shape out_shape = output_shape(input.shape());
  cached_input_shape_ = input.shape();
  Tensor out(out_shape);
  // resize, not assign: every slot is overwritten below, so the zero-fill
  // pass would be a wasted sweep over the whole index buffer.
  argmax_.resize(static_cast<std::size_t>(out.numel()));

  const std::int64_t batch = input.shape().dim(0), ch = input.shape().dim(1);
  const std::int64_t ih = input.shape().dim(2), iw = input.shape().dim(3);
  const std::int64_t oh = out_shape.dim(2), ow = out_shape.dim(3);
  auto id = input.data();
  auto od = out.data();
  // Each (batch, channel) plane reads and writes its own slices only.
  parallel_for(0, batch * ch, plane_grain(oh * ow * window_ * window_),
               [&](std::int64_t p0, std::int64_t p1) {
    for (std::int64_t bc = p0; bc < p1; ++bc) {
      const float* plane = id.data() + bc * ih * iw;
      const std::int64_t plane_base = bc * ih * iw;
      std::size_t o = static_cast<std::size_t>(bc * oh * ow);
      for (std::int64_t y = 0; y < oh; ++y) {
        for (std::int64_t x = 0; x < ow; ++x) {
          float best = -std::numeric_limits<float>::infinity();
          std::int64_t best_idx = 0;
          for (std::int64_t wy = 0; wy < window_; ++wy) {
            const std::int64_t iy = y * stride_ + wy;
            for (std::int64_t wx = 0; wx < window_; ++wx) {
              const std::int64_t ix = x * stride_ + wx;
              const float v = plane[iy * iw + ix];
              if (v > best) {
                best = v;
                best_idx = plane_base + iy * iw + ix;
              }
            }
          }
          od[o] = best;
          argmax_[o] = best_idx;
          ++o;
        }
      }
    }
  });
  return out;
}

Tensor MaxPool2d::infer(const Tensor& input) {
  // forward() minus the argmax bookkeeping; the max scan is identical
  // (strict > keeps the first maximum), so outputs match bitwise.
  const Shape out_shape = output_shape(input.shape());
  Tensor out(out_shape);
  const std::int64_t batch = input.shape().dim(0), ch = input.shape().dim(1);
  const std::int64_t ih = input.shape().dim(2), iw = input.shape().dim(3);
  const std::int64_t oh = out_shape.dim(2), ow = out_shape.dim(3);
  auto id = input.data();
  auto od = out.data();
  parallel_for(0, batch * ch, plane_grain(oh * ow * window_ * window_),
               [&](std::int64_t p0, std::int64_t p1) {
    for (std::int64_t bc = p0; bc < p1; ++bc) {
      const float* plane = id.data() + bc * ih * iw;
      std::size_t o = static_cast<std::size_t>(bc * oh * ow);
      for (std::int64_t y = 0; y < oh; ++y) {
        for (std::int64_t x = 0; x < ow; ++x) {
          float best = -std::numeric_limits<float>::infinity();
          for (std::int64_t wy = 0; wy < window_; ++wy) {
            const std::int64_t iy = y * stride_ + wy;
            for (std::int64_t wx = 0; wx < window_; ++wx) {
              const std::int64_t ix = x * stride_ + wx;
              const float v = plane[iy * iw + ix];
              if (v > best) best = v;
            }
          }
          od[o] = best;
          ++o;
        }
      }
    }
  });
  return out;
}

Tensor MaxPool2d::backward(const Tensor& grad_output) {
  SPLITMED_CHECK(cached_input_shape_.rank() == 4,
                 "MaxPool2d backward before forward");
  check_same_shape(grad_output.shape(), output_shape(cached_input_shape_),
                   "MaxPool2d backward");
  Tensor grad(cached_input_shape_);
  auto gd = grad_output.data();
  auto out = grad.data();
  // argmax indices never leave their own input plane, so partitioning the
  // scatter-add at plane boundaries keeps writes disjoint across chunks.
  const std::int64_t planes =
      cached_input_shape_.dim(0) * cached_input_shape_.dim(1);
  const std::int64_t per_plane =
      static_cast<std::int64_t>(gd.size()) / std::max<std::int64_t>(planes, 1);
  parallel_for(0, planes, plane_grain(per_plane),
               [&](std::int64_t p0, std::int64_t p1) {
    for (std::size_t i = static_cast<std::size_t>(p0 * per_plane);
         i < static_cast<std::size_t>(p1 * per_plane); ++i) {
      out[static_cast<std::size_t>(argmax_[i])] += gd[i];
    }
  });
  return grad;
}

std::string MaxPool2d::name() const {
  std::ostringstream os;
  os << "MaxPool2d(w" << window_ << " s" << stride_ << ')';
  return os.str();
}

AvgPool2d::AvgPool2d(std::int64_t window, std::int64_t stride)
    : window_(window), stride_(stride == 0 ? window : stride) {
  SPLITMED_CHECK(window_ > 0 && stride_ > 0, "AvgPool2d: bad window/stride");
}

Shape AvgPool2d::output_shape(const Shape& input) const {
  SPLITMED_CHECK(input.rank() == 4, "AvgPool2d: input must be NCHW");
  SPLITMED_CHECK(input.dim(2) >= window_ && input.dim(3) >= window_,
                 "AvgPool2d: window " << window_ << " larger than input "
                                      << input.str());
  const std::int64_t oh = (input.dim(2) - window_) / stride_ + 1;
  const std::int64_t ow = (input.dim(3) - window_) / stride_ + 1;
  return Shape{input.dim(0), input.dim(1), oh, ow};
}

Tensor AvgPool2d::forward(const Tensor& input, bool /*training*/) {
  const Shape out_shape = output_shape(input.shape());
  cached_input_shape_ = input.shape();
  Tensor out(out_shape);
  const std::int64_t planes = input.shape().dim(0) * input.shape().dim(1);
  const std::int64_t ih = input.shape().dim(2), iw = input.shape().dim(3);
  const std::int64_t oh = out_shape.dim(2), ow = out_shape.dim(3);
  const float inv = 1.0F / static_cast<float>(window_ * window_);
  auto id = input.data();
  auto od = out.data();
  parallel_for(0, planes, plane_grain(oh * ow * window_ * window_),
               [&](std::int64_t p0, std::int64_t p1) {
    for (std::int64_t p = p0; p < p1; ++p) {
      const float* plane = id.data() + p * ih * iw;
      float* out_plane = od.data() + p * oh * ow;
      for (std::int64_t y = 0; y < oh; ++y) {
        for (std::int64_t x = 0; x < ow; ++x) {
          float acc = 0.0F;
          for (std::int64_t wy = 0; wy < window_; ++wy) {
            const float* row = plane + (y * stride_ + wy) * iw + x * stride_;
            for (std::int64_t wx = 0; wx < window_; ++wx) acc += row[wx];
          }
          out_plane[y * ow + x] = acc * inv;
        }
      }
    }
  });
  return out;
}

Tensor AvgPool2d::backward(const Tensor& grad_output) {
  SPLITMED_CHECK(cached_input_shape_.rank() == 4,
                 "AvgPool2d backward before forward");
  check_same_shape(grad_output.shape(), output_shape(cached_input_shape_),
                   "AvgPool2d backward");
  Tensor grad(cached_input_shape_);
  const std::int64_t planes =
      cached_input_shape_.dim(0) * cached_input_shape_.dim(1);
  const std::int64_t ih = cached_input_shape_.dim(2),
                     iw = cached_input_shape_.dim(3);
  const std::int64_t oh = grad_output.shape().dim(2),
                     ow = grad_output.shape().dim(3);
  const float inv = 1.0F / static_cast<float>(window_ * window_);
  auto gd = grad_output.data();
  auto out = grad.data();
  parallel_for(0, planes, plane_grain(oh * ow * window_ * window_),
               [&](std::int64_t p0, std::int64_t p1) {
    for (std::int64_t p = p0; p < p1; ++p) {
      const float* g_plane = gd.data() + p * oh * ow;
      float* plane = out.data() + p * ih * iw;
      for (std::int64_t y = 0; y < oh; ++y) {
        for (std::int64_t x = 0; x < ow; ++x) {
          const float g = g_plane[y * ow + x] * inv;
          for (std::int64_t wy = 0; wy < window_; ++wy) {
            float* row = plane + (y * stride_ + wy) * iw + x * stride_;
            for (std::int64_t wx = 0; wx < window_; ++wx) row[wx] += g;
          }
        }
      }
    }
  });
  return grad;
}

std::string AvgPool2d::name() const {
  std::ostringstream os;
  os << "AvgPool2d(w" << window_ << " s" << stride_ << ')';
  return os.str();
}

Shape GlobalAvgPool::output_shape(const Shape& input) const {
  SPLITMED_CHECK(input.rank() == 4, "GlobalAvgPool: input must be NCHW");
  return Shape{input.dim(0), input.dim(1)};
}

Tensor GlobalAvgPool::forward(const Tensor& input, bool /*training*/) {
  const Shape out_shape = output_shape(input.shape());
  cached_input_shape_ = input.shape();
  Tensor out(out_shape);
  const std::int64_t planes = input.shape().dim(0) * input.shape().dim(1);
  const std::int64_t hw = input.shape().dim(2) * input.shape().dim(3);
  auto id = input.data();
  auto od = out.data();
  parallel_for(0, planes, plane_grain(hw), [&](std::int64_t p0,
                                               std::int64_t p1) {
    for (std::int64_t p = p0; p < p1; ++p) {
      const float* plane = id.data() + p * hw;
      float acc = 0.0F;
      for (std::int64_t i = 0; i < hw; ++i) acc += plane[i];
      od[static_cast<std::size_t>(p)] = acc / static_cast<float>(hw);
    }
  });
  return out;
}

Tensor GlobalAvgPool::backward(const Tensor& grad_output) {
  SPLITMED_CHECK(cached_input_shape_.rank() == 4,
                 "GlobalAvgPool backward before forward");
  check_same_shape(grad_output.shape(), output_shape(cached_input_shape_),
                   "GlobalAvgPool backward");
  Tensor grad(cached_input_shape_);
  const std::int64_t planes =
      cached_input_shape_.dim(0) * cached_input_shape_.dim(1);
  const std::int64_t hw =
      cached_input_shape_.dim(2) * cached_input_shape_.dim(3);
  auto gd = grad_output.data();
  auto out = grad.data();
  const float inv = 1.0F / static_cast<float>(hw);
  parallel_for(0, planes, plane_grain(hw), [&](std::int64_t p0,
                                               std::int64_t p1) {
    for (std::int64_t p = p0; p < p1; ++p) {
      const float g = gd[static_cast<std::size_t>(p)] * inv;
      float* plane = out.data() + p * hw;
      for (std::int64_t i = 0; i < hw; ++i) plane[i] = g;
    }
  });
  return grad;
}

}  // namespace splitmed::nn
