#include "src/nn/loss.hpp"

#include <algorithm>
#include <cmath>

#include "src/common/error.hpp"
#include "src/tensor/ops.hpp"

namespace splitmed::nn {

float SoftmaxCrossEntropy::forward(const Tensor& logits,
                                   const std::vector<std::int64_t>& labels) {
  SPLITMED_CHECK(logits.shape().rank() == 2,
                 "SoftmaxCrossEntropy: logits must be [batch, classes]");
  const std::int64_t batch = logits.shape().dim(0);
  const std::int64_t classes = logits.shape().dim(1);
  SPLITMED_CHECK(static_cast<std::int64_t>(labels.size()) == batch,
                 "SoftmaxCrossEntropy: " << labels.size() << " labels for "
                                         << batch << " rows");
  SPLITMED_CHECK(batch > 0 && classes > 0,
                 "SoftmaxCrossEntropy: empty batch or classes");

  probs_ = Tensor(logits.shape());
  labels_ = labels;
  auto ld = logits.data();
  auto pd = probs_.data();
  double loss = 0.0;
  for (std::int64_t r = 0; r < batch; ++r) {
    const float* row = ld.data() + r * classes;
    float* prow = pd.data() + r * classes;
    const std::int64_t y = labels[static_cast<std::size_t>(r)];
    SPLITMED_CHECK(y >= 0 && y < classes,
                   "label " << y << " out of range [0, " << classes << ')');
    const float mx = *std::max_element(row, row + classes);
    double denom = 0.0;
    for (std::int64_t c = 0; c < classes; ++c) {
      prow[c] = std::exp(row[c] - mx);
      denom += prow[c];
    }
    const float inv = static_cast<float>(1.0 / denom);
    for (std::int64_t c = 0; c < classes; ++c) prow[c] *= inv;
    loss -= std::log(std::max(static_cast<double>(prow[y]), 1e-12));
  }
  return static_cast<float>(loss / batch);
}

Tensor SoftmaxCrossEntropy::backward() const {
  SPLITMED_CHECK(probs_.shape().rank() == 2,
                 "SoftmaxCrossEntropy::backward before forward");
  const std::int64_t batch = probs_.shape().dim(0);
  const std::int64_t classes = probs_.shape().dim(1);
  Tensor grad = probs_;
  auto gd = grad.data();
  const float inv_batch = 1.0F / static_cast<float>(batch);
  for (std::int64_t r = 0; r < batch; ++r) {
    float* row = gd.data() + r * classes;
    row[labels_[static_cast<std::size_t>(r)]] -= 1.0F;
    for (std::int64_t c = 0; c < classes; ++c) row[c] *= inv_batch;
  }
  return grad;
}

double accuracy(const Tensor& logits,
                const std::vector<std::int64_t>& labels) {
  const auto pred = ops::argmax_rows(logits);
  SPLITMED_CHECK(pred.size() == labels.size(),
                 "accuracy: prediction/label count mismatch");
  if (pred.empty()) return 0.0;
  std::size_t correct = 0;
  for (std::size_t i = 0; i < pred.size(); ++i) {
    if (pred[i] == labels[i]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(pred.size());
}

}  // namespace splitmed::nn
