#include "src/nn/batchnorm.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "src/common/error.hpp"
#include "src/common/thread_pool.hpp"
#include "src/serial/tensor_codec.hpp"

namespace splitmed::nn {
namespace {

/// Channels per parallel chunk. Every BatchNorm loop below is a sweep of
/// independent channels — statistics, parameters, and activation planes are
/// all indexed by c — so a channel partition writes disjoint memory and the
/// per-channel accumulation order never changes with the thread count.
std::int64_t bn_channel_grain(std::int64_t batch, std::int64_t hw) {
  constexpr std::int64_t kParallelElems = 16 * 1024;
  return std::max<std::int64_t>(
      1, kParallelElems / std::max<std::int64_t>(batch * hw, 1));
}

}  // namespace

BatchNorm2d::BatchNorm2d(std::int64_t channels, float momentum, float eps)
    : channels_(channels),
      momentum_(momentum),
      eps_(eps),
      gamma_("bn.gamma", Tensor::ones(Shape{channels})),
      beta_("bn.beta", Tensor::zeros(Shape{channels})),
      running_mean_(Shape{channels}),
      running_var_(Tensor::ones(Shape{channels})) {
  SPLITMED_CHECK(channels > 0, "BatchNorm2d: channels must be positive");
  SPLITMED_CHECK(momentum > 0.0F && momentum <= 1.0F,
                 "BatchNorm2d: momentum in (0,1]");
}

Shape BatchNorm2d::output_shape(const Shape& input) const {
  SPLITMED_CHECK(input.rank() == 4 && input.dim(1) == channels_,
                 "BatchNorm2d(" << channels_ << "): bad input "
                                << input.str());
  return input;
}

Tensor BatchNorm2d::forward(const Tensor& input, bool training) {
  (void)output_shape(input.shape());
  const std::int64_t batch = input.shape().dim(0);
  const std::int64_t hw = input.shape().dim(2) * input.shape().dim(3);
  const std::int64_t m = batch * hw;
  SPLITMED_CHECK(m > 0, "BatchNorm2d: empty batch");

  Tensor out(input.shape());
  auto id = input.data();
  auto od = out.data();
  auto gd = gamma_.value.data();
  auto bd = beta_.value.data();

  last_forward_training_ = training;
  has_forward_ = true;
  if (training) {
    cached_xhat_ = Tensor(input.shape());
    cached_inv_std_ = Tensor(Shape{channels_});
    auto xh = cached_xhat_.data();
    auto is = cached_inv_std_.data();
    auto rm = running_mean_.data();
    auto rv = running_var_.data();
    parallel_for(0, channels_, bn_channel_grain(batch, hw),
                 [&](std::int64_t cc0, std::int64_t cc1) {
    for (std::int64_t c = cc0; c < cc1; ++c) {
      double sum = 0.0, sq = 0.0;
      for (std::int64_t b = 0; b < batch; ++b) {
        const float* plane = id.data() + (b * channels_ + c) * hw;
        for (std::int64_t i = 0; i < hw; ++i) {
          sum += plane[i];
          sq += static_cast<double>(plane[i]) * plane[i];
        }
      }
      const float mean = static_cast<float>(sum / m);
      const float var =
          static_cast<float>(sq / m - static_cast<double>(mean) * mean);
      const float inv_std = 1.0F / std::sqrt(var + eps_);
      is[static_cast<std::size_t>(c)] = inv_std;
      rm[static_cast<std::size_t>(c)] =
          (1.0F - momentum_) * rm[static_cast<std::size_t>(c)] +
          momentum_ * mean;
      rv[static_cast<std::size_t>(c)] =
          (1.0F - momentum_) * rv[static_cast<std::size_t>(c)] +
          momentum_ * var;
      const float g = gd[static_cast<std::size_t>(c)];
      const float bt = bd[static_cast<std::size_t>(c)];
      for (std::int64_t b = 0; b < batch; ++b) {
        const float* in_plane = id.data() + (b * channels_ + c) * hw;
        float* xhat_plane = xh.data() + (b * channels_ + c) * hw;
        float* out_plane = od.data() + (b * channels_ + c) * hw;
        for (std::int64_t i = 0; i < hw; ++i) {
          const float xhat = (in_plane[i] - mean) * inv_std;
          xhat_plane[i] = xhat;
          out_plane[i] = g * xhat + bt;
        }
      }
    }
    });
  } else {
    cached_eval_input_ = input;
    auto rm = running_mean_.data();
    auto rv = running_var_.data();
    parallel_for(0, channels_, bn_channel_grain(batch, hw),
                 [&](std::int64_t cc0, std::int64_t cc1) {
    for (std::int64_t c = cc0; c < cc1; ++c) {
      const float mean = rm[static_cast<std::size_t>(c)];
      const float inv_std =
          1.0F / std::sqrt(rv[static_cast<std::size_t>(c)] + eps_);
      const float g = gd[static_cast<std::size_t>(c)];
      const float bt = bd[static_cast<std::size_t>(c)];
      for (std::int64_t b = 0; b < batch; ++b) {
        const float* in_plane = id.data() + (b * channels_ + c) * hw;
        float* out_plane = od.data() + (b * channels_ + c) * hw;
        for (std::int64_t i = 0; i < hw; ++i) {
          out_plane[i] = g * (in_plane[i] - mean) * inv_std + bt;
        }
      }
    }
    });
  }
  return out;
}

Tensor BatchNorm2d::infer(const Tensor& input) {
  // The eval-mode normalization loop of forward(), minus the backward cache
  // (cached_eval_input_ copy) and the mode flags. Expression, association,
  // and channel partitioning are identical, so the output bits are too.
  (void)output_shape(input.shape());
  const std::int64_t batch = input.shape().dim(0);
  const std::int64_t hw = input.shape().dim(2) * input.shape().dim(3);
  SPLITMED_CHECK(batch * hw > 0, "BatchNorm2d: empty batch");
  Tensor out(input.shape());
  auto id = input.data();
  auto od = out.data();
  auto gd = gamma_.value.data();
  auto bd = beta_.value.data();
  auto rm = running_mean_.data();
  auto rv = running_var_.data();
  parallel_for(0, channels_, bn_channel_grain(batch, hw),
               [&](std::int64_t cc0, std::int64_t cc1) {
    for (std::int64_t c = cc0; c < cc1; ++c) {
      const float mean = rm[static_cast<std::size_t>(c)];
      const float inv_std =
          1.0F / std::sqrt(rv[static_cast<std::size_t>(c)] + eps_);
      const float g = gd[static_cast<std::size_t>(c)];
      const float bt = bd[static_cast<std::size_t>(c)];
      for (std::int64_t b = 0; b < batch; ++b) {
        const float* in_plane = id.data() + (b * channels_ + c) * hw;
        float* out_plane = od.data() + (b * channels_ + c) * hw;
        for (std::int64_t i = 0; i < hw; ++i) {
          out_plane[i] = g * (in_plane[i] - mean) * inv_std + bt;
        }
      }
    }
  });
  return out;
}

Tensor BatchNorm2d::backward(const Tensor& grad_output) {
  SPLITMED_CHECK(has_forward_, "BatchNorm2d backward before forward");
  if (!last_forward_training_) {
    // Eval mode: y = gamma * (x - rm) / sqrt(rv + eps) + beta with constant
    // statistics — a per-channel affine map.
    check_same_shape(grad_output.shape(), cached_eval_input_.shape(),
                     "BatchNorm2d eval backward");
    const std::int64_t batch = grad_output.shape().dim(0);
    const std::int64_t hw =
        grad_output.shape().dim(2) * grad_output.shape().dim(3);
    Tensor grad_input(grad_output.shape());
    auto gd = grad_output.data();
    auto id = cached_eval_input_.data();
    auto gi = grad_input.data();
    auto gg = gamma_.grad.data();
    auto bg = beta_.grad.data();
    auto gv = gamma_.value.data();
    auto rm = running_mean_.data();
    auto rv = running_var_.data();
    parallel_for(0, channels_, bn_channel_grain(batch, hw),
                 [&](std::int64_t cc0, std::int64_t cc1) {
    for (std::int64_t c = cc0; c < cc1; ++c) {
      const float mean = rm[static_cast<std::size_t>(c)];
      const float inv_std =
          1.0F / std::sqrt(rv[static_cast<std::size_t>(c)] + eps_);
      const float scale = gv[static_cast<std::size_t>(c)] * inv_std;
      double sum_g = 0.0, sum_gx = 0.0;
      for (std::int64_t b = 0; b < batch; ++b) {
        const float* g_plane = gd.data() + (b * channels_ + c) * hw;
        const float* in_plane = id.data() + (b * channels_ + c) * hw;
        float* out_plane = gi.data() + (b * channels_ + c) * hw;
        for (std::int64_t i = 0; i < hw; ++i) {
          sum_g += g_plane[i];
          sum_gx += static_cast<double>(g_plane[i]) *
                    ((in_plane[i] - mean) * inv_std);
          out_plane[i] = scale * g_plane[i];
        }
      }
      bg[static_cast<std::size_t>(c)] += static_cast<float>(sum_g);
      gg[static_cast<std::size_t>(c)] += static_cast<float>(sum_gx);
    }
    });
    return grad_input;
  }
  SPLITMED_CHECK(cached_xhat_.shape().rank() == 4,
                 "BatchNorm2d backward requires a training-mode forward");
  check_same_shape(grad_output.shape(), cached_xhat_.shape(),
                   "BatchNorm2d backward");
  const std::int64_t batch = grad_output.shape().dim(0);
  const std::int64_t hw =
      grad_output.shape().dim(2) * grad_output.shape().dim(3);
  const float m = static_cast<float>(batch * hw);

  Tensor grad_input(grad_output.shape());
  auto gd = grad_output.data();
  auto xh = cached_xhat_.data();
  auto is = cached_inv_std_.data();
  auto gg = gamma_.grad.data();
  auto bg = beta_.grad.data();
  auto gv = gamma_.value.data();
  auto gi = grad_input.data();

  parallel_for(0, channels_, bn_channel_grain(batch, hw),
               [&](std::int64_t cc0, std::int64_t cc1) {
  for (std::int64_t c = cc0; c < cc1; ++c) {
    double sum_g = 0.0, sum_gx = 0.0;
    for (std::int64_t b = 0; b < batch; ++b) {
      const float* g_plane = gd.data() + (b * channels_ + c) * hw;
      const float* x_plane = xh.data() + (b * channels_ + c) * hw;
      for (std::int64_t i = 0; i < hw; ++i) {
        sum_g += g_plane[i];
        sum_gx += static_cast<double>(g_plane[i]) * x_plane[i];
      }
    }
    bg[static_cast<std::size_t>(c)] += static_cast<float>(sum_g);
    gg[static_cast<std::size_t>(c)] += static_cast<float>(sum_gx);
    const float mean_g = static_cast<float>(sum_g) / m;
    const float mean_gx = static_cast<float>(sum_gx) / m;
    const float scale =
        gv[static_cast<std::size_t>(c)] * is[static_cast<std::size_t>(c)];
    for (std::int64_t b = 0; b < batch; ++b) {
      const float* g_plane = gd.data() + (b * channels_ + c) * hw;
      const float* x_plane = xh.data() + (b * channels_ + c) * hw;
      float* out_plane = gi.data() + (b * channels_ + c) * hw;
      for (std::int64_t i = 0; i < hw; ++i) {
        out_plane[i] =
            scale * (g_plane[i] - mean_g - x_plane[i] * mean_gx);
      }
    }
  }
  });
  return grad_input;
}

std::string BatchNorm2d::name() const {
  std::ostringstream os;
  os << "BatchNorm2d(" << channels_ << ')';
  return os.str();
}

void BatchNorm2d::save_extra_state(BufferWriter& writer) const {
  encode_tensor(running_mean_, writer);
  encode_tensor(running_var_, writer);
}

void BatchNorm2d::load_extra_state(BufferReader& reader) {
  Tensor mean = decode_tensor(reader);
  Tensor var = decode_tensor(reader);
  const Shape expected({channels_});
  if (mean.shape() != expected || var.shape() != expected) {
    throw SerializationError(
        "BatchNorm2d running stats: expected shape " + expected.str() +
        ", got mean " + mean.shape().str() + ", var " + var.shape().str());
  }
  running_mean_ = std::move(mean);
  running_var_ = std::move(var);
}

}  // namespace splitmed::nn
