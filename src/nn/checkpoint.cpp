#include "src/nn/checkpoint.hpp"

#include <fstream>
#include <utility>

#include "src/common/error.hpp"
#include "src/serial/section_file.hpp"
#include "src/serial/tensor_codec.hpp"

namespace splitmed {

namespace {
constexpr char kMagic[] = "SMCKPT01";
constexpr std::size_t kMagicLen = 8;
}  // namespace

void write_parameters(BufferWriter& w,
                      const std::vector<nn::Parameter*>& params) {
  w.write_u32(static_cast<std::uint32_t>(params.size()));
  for (const nn::Parameter* p : params) {
    SPLITMED_CHECK(p != nullptr, "null parameter");
    w.write_string(p->name);
    encode_tensor(p->value, w);
  }
}

namespace {

// Decodes the parameter block into temporaries without touching `params` —
// the caller applies only after every cross-block validation passed.
std::vector<Tensor> decode_parameters(BufferReader& r,
                                      const std::vector<nn::Parameter*>& params,
                                      const std::string& context) {
  const std::uint32_t count = r.read_u32();
  if (count != params.size()) {
    throw SerializationError(context + ": parameter count mismatch: file has " +
                             std::to_string(count) + ", model has " +
                             std::to_string(params.size()));
  }
  std::vector<Tensor> values;
  values.reserve(params.size());
  for (const nn::Parameter* p : params) {
    const std::string name = r.read_string();
    if (name != p->name) {
      throw SerializationError(context + ": parameter name mismatch: file '" +
                               name + "' vs model '" + p->name + "'");
    }
    Tensor value;
    try {
      value = decode_tensor(r);
    } catch (const SerializationError& e) {
      throw SerializationError(context + ": short read in parameter '" + name +
                               "' (expected shape " + p->value.shape().str() +
                               "): " + e.what());
    }
    if (value.shape() != p->value.shape()) {
      throw SerializationError(context + ": shape mismatch for '" + name +
                               "': file " + value.shape().str() +
                               " vs model " + p->value.shape().str());
    }
    values.push_back(std::move(value));
  }
  return values;
}

}  // namespace

void read_parameters(BufferReader& r,
                     const std::vector<nn::Parameter*>& params,
                     const std::string& context) {
  std::vector<Tensor> values = decode_parameters(r, params, context);
  for (std::size_t i = 0; i < params.size(); ++i) {
    params[i]->value = std::move(values[i]);
  }
}

void save_parameters(const std::string& path,
                     const std::vector<nn::Parameter*>& params) {
  BufferWriter w;
  for (std::size_t i = 0; i < kMagicLen; ++i) w.write_u8(kMagic[i]);
  write_parameters(w, params);
  atomic_write_file(path, {w.bytes().data(), w.size()});
}

void load_parameters(const std::string& path,
                     const std::vector<nn::Parameter*>& params) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw Error("checkpoint: cannot open '" + path + "'");
  std::vector<std::uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                                  std::istreambuf_iterator<char>());
  BufferReader r({bytes.data(), bytes.size()});
  for (std::size_t i = 0; i < kMagicLen; ++i) {
    if (r.remaining() == 0 ||
        r.read_u8() != static_cast<std::uint8_t>(kMagic[i])) {
      throw SerializationError("checkpoint: bad magic in '" + path + "'");
    }
  }
  // Decode and validate everything — including trailing-garbage rejection —
  // before mutating a single parameter: a bad file never partially loads.
  std::vector<Tensor> values =
      decode_parameters(r, params, "checkpoint '" + path + "'");
  if (!r.exhausted()) {
    throw SerializationError("checkpoint: trailing bytes in '" + path + "' (" +
                             std::to_string(r.remaining()) +
                             " bytes past the last parameter)");
  }
  for (std::size_t i = 0; i < params.size(); ++i) {
    params[i]->value = std::move(values[i]);
  }
}

}  // namespace splitmed
