#include "src/nn/checkpoint.hpp"

#include <fstream>

#include "src/common/error.hpp"
#include "src/serial/buffer.hpp"
#include "src/serial/tensor_codec.hpp"

namespace splitmed {

namespace {
constexpr char kMagic[] = "SMCKPT01";
constexpr std::size_t kMagicLen = 8;
}  // namespace

void save_parameters(const std::string& path,
                     const std::vector<nn::Parameter*>& params) {
  BufferWriter w;
  for (std::size_t i = 0; i < kMagicLen; ++i) w.write_u8(kMagic[i]);
  w.write_u32(static_cast<std::uint32_t>(params.size()));
  for (const nn::Parameter* p : params) {
    SPLITMED_CHECK(p != nullptr, "null parameter");
    w.write_string(p->name);
    encode_tensor(p->value, w);
  }
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw Error("checkpoint: cannot open '" + path + "' for writing");
  out.write(reinterpret_cast<const char*>(w.bytes().data()),
            static_cast<std::streamsize>(w.size()));
  if (!out) throw Error("checkpoint: write to '" + path + "' failed");
}

void load_parameters(const std::string& path,
                     const std::vector<nn::Parameter*>& params) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw Error("checkpoint: cannot open '" + path + "'");
  std::vector<std::uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                                  std::istreambuf_iterator<char>());
  BufferReader r({bytes.data(), bytes.size()});
  for (std::size_t i = 0; i < kMagicLen; ++i) {
    if (r.read_u8() != static_cast<std::uint8_t>(kMagic[i])) {
      throw SerializationError("checkpoint: bad magic in '" + path + "'");
    }
  }
  const std::uint32_t count = r.read_u32();
  if (count != params.size()) {
    throw SerializationError(
        "checkpoint: parameter count mismatch: file has " +
        std::to_string(count) + ", model has " +
        std::to_string(params.size()));
  }
  for (nn::Parameter* p : params) {
    const std::string name = r.read_string();
    if (name != p->name) {
      throw SerializationError("checkpoint: parameter name mismatch: file '" +
                               name + "' vs model '" + p->name + "'");
    }
    Tensor value = decode_tensor(r);
    if (value.shape() != p->value.shape()) {
      throw SerializationError("checkpoint: shape mismatch for '" + name +
                               "': file " + value.shape().str() + " vs model " +
                               p->value.shape().str());
    }
    p->value = std::move(value);
  }
  if (!r.exhausted()) {
    throw SerializationError("checkpoint: trailing bytes in '" + path + "'");
  }
}

}  // namespace splitmed
