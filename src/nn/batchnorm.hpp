// Batch normalization over NCHW (per-channel statistics across N, H, W).
#pragma once

#include "src/nn/layer.hpp"

namespace splitmed::nn {

class BatchNorm2d final : public Layer {
 public:
  explicit BatchNorm2d(std::int64_t channels, float momentum = 0.1F,
                       float eps = 1e-5F);

  /// training=true uses batch statistics and updates the running estimates;
  /// training=false normalizes with the running estimates.
  Tensor forward(const Tensor& input, bool training) override;
  /// After a training forward: full batch-coupled gradient. After an eval
  /// forward the layer is a frozen per-channel affine map, and backward
  /// differentiates exactly that (used by privacy::reconstruct_inputs,
  /// which attacks the deployed eval-mode L1).
  Tensor backward(const Tensor& grad_output) override;
  /// Eval normalization without the backward cache (no input copy, no
  /// has_forward_ flip). Bitwise identical to forward(input, false).
  Tensor infer(const Tensor& input) override;
  [[nodiscard]] Shape output_shape(const Shape& input) const override;
  std::vector<Parameter*> parameters() override { return {&gamma_, &beta_}; }
  [[nodiscard]] std::string name() const override;

  /// Running mean/var are training state outside parameters(); a checkpoint
  /// that skipped them would change every post-resume evaluation.
  void save_extra_state(BufferWriter& writer) const override;
  void load_extra_state(BufferReader& reader) override;

  [[nodiscard]] const Tensor& running_mean() const { return running_mean_; }
  [[nodiscard]] const Tensor& running_var() const { return running_var_; }
  [[nodiscard]] const Tensor& gamma_value() const { return gamma_.value; }
  [[nodiscard]] const Tensor& beta_value() const { return beta_.value; }
  [[nodiscard]] float eps() const { return eps_; }
  [[nodiscard]] std::int64_t channels() const { return channels_; }

 private:
  std::int64_t channels_;
  float momentum_;
  float eps_;
  Parameter gamma_;
  Parameter beta_;
  Tensor running_mean_;
  Tensor running_var_;
  // Backward cache; which members are valid depends on the last forward's
  // mode (last_forward_training_).
  bool last_forward_training_ = false;
  bool has_forward_ = false;
  Tensor cached_xhat_;
  Tensor cached_inv_std_;  // [channels]; training-mode batch stats
  Tensor cached_eval_input_;
};

}  // namespace splitmed::nn
