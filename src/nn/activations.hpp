// Pointwise activation layers.
#pragma once

#include "src/nn/layer.hpp"

namespace splitmed::nn {

class ReLU final : public Layer {
 public:
  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  /// Same max(x, 0), no input cache.
  Tensor infer(const Tensor& input) override;
  [[nodiscard]] Shape output_shape(const Shape& input) const override {
    return input;
  }
  [[nodiscard]] std::string name() const override { return "ReLU"; }

 private:
  Tensor cached_input_;
};

class Tanh final : public Layer {
 public:
  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  [[nodiscard]] Shape output_shape(const Shape& input) const override {
    return input;
  }
  [[nodiscard]] std::string name() const override { return "Tanh"; }

 private:
  Tensor cached_output_;
};

class Sigmoid final : public Layer {
 public:
  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  [[nodiscard]] Shape output_shape(const Shape& input) const override {
    return input;
  }
  [[nodiscard]] std::string name() const override { return "Sigmoid"; }

 private:
  Tensor cached_output_;
};

}  // namespace splitmed::nn
