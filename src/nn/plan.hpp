// Static execution planner over layer chains.
//
// Two cooperating passes, both bitwise inert (docs/PROTOCOL.md):
//
//  Pass 1 — epilogue fusion. Recognizes conv→bn→relu / conv→relu /
//  linear→relu chains in a Sequential and folds the elementwise tail into
//  the producing GEMM's write-back (gemmk::Epilogue), so the intermediate
//  tensors are never materialized. Legality is proved per edge:
//    - bias-add and ReLU are elementwise on the finished per-element
//      k-fold, so fusing them never reorders the reduction — legal in
//      training AND inference forward. Backward masks dReLU on the fused
//      OUTPUT (x > 0 on the output is exactly x > 0 on the pre-activation,
//      including -0.0 and NaN→0), then feeds the producing layer's
//      backward — the identical float sequence to ReLU::backward followed
//      by the layer backward.
//    - inference-mode BatchNorm is a frozen per-channel affine map — legal
//      as an epilogue, but ONLY on the infer() path. Training-mode BN needs
//      batch statistics of the conv output, so the plan REFUSES to fuse it
//      in forward(): kConvBn/kConvBnRelu groups run per-layer (unfused)
//      under training, and fuse only under Sequential::infer().
//
//  Pass 2 — lifetime-based buffer reuse. Under Sequential::infer(), runs of
//  fused groups chain through workspace-arena slabs instead of Tensors:
//  each intermediate's lifetime is the closed interval [def group,
//  last-use group], and a greedy interval coloring assigns intervals to
//  reusable slabs (a straight chain ping-pongs between 2), so steady-state
//  peak memory stops scaling with depth. Measured via
//  ws::global_step_peak_bytes() / `splitmed_workspace_step_peak_bytes`.
//
// The planner is ON by default; SPLITMED_PLAN=0 or
// set_planner_enabled(false) disables it, falling every path back to the
// legacy per-layer loops. Fused and unfused execution are BITWISE IDENTICAL
// (asserted by plan_test and the pinned golden curves).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "src/nn/layer.hpp"
#include "src/tensor/gemm_kernels.hpp"

namespace splitmed::nn {

class Conv2d;
class Linear;
class BatchNorm2d;

/// Whether plan-driven execution is active. Defaults to the SPLITMED_PLAN
/// environment variable (unset or anything but "0" → on), read once;
/// set_planner_enabled overrides it at runtime (tests and the fusion smoke
/// toggle it around runs).
[[nodiscard]] bool planner_enabled();
void set_planner_enabled(bool enabled);

/// What a recognized group of consecutive layers fuses into.
enum class FuseKind : std::uint8_t {
  kPassthrough,  ///< single layer, no fusion
  kConvRelu,     ///< Conv2d + ReLU  (fusible in training and inference)
  kConvBn,       ///< Conv2d + BatchNorm2d  (fusible in inference only)
  kConvBnRelu,   ///< Conv2d + BatchNorm2d + ReLU  (inference only)
  kLinearRelu,   ///< Linear + ReLU  (fusible in training and inference)
};

/// One plan node: layers [begin, end) of the Sequential, plus typed views
/// of the members the fused paths need. `ran_fused`/`fused_out` are
/// per-forward state written by Sequential::forward so backward mirrors
/// exactly what forward did.
struct FusedGroup {
  FuseKind kind = FuseKind::kPassthrough;
  std::size_t begin = 0;
  std::size_t end = 0;
  Conv2d* conv = nullptr;
  Linear* linear = nullptr;
  BatchNorm2d* bn = nullptr;
  Layer* layer = nullptr;  ///< the passthrough layer (kind == kPassthrough)
  // Per-forward state (training path only):
  bool ran_fused = false;
  Tensor fused_out;  ///< group output, cached for the dReLU backward mask
};

/// Lifetime of one chained intermediate: defined by group `def`, last read
/// by group `last_use` (closed interval — two values conflict iff their
/// intervals intersect, so [i, i+1] and [i+1, i+2] DO conflict: both are
/// live while group i+1 runs).
struct LifeInterval {
  std::int64_t def = 0;
  std::int64_t last_use = 0;
  std::int64_t floats = 0;
};

/// Result of the greedy interval coloring: one slab per color, each sized
/// to the largest interval assigned to it.
struct SlabAssignment {
  std::vector<std::size_t> color;       ///< per interval, index into slabs
  std::vector<std::int64_t> slab_floats;  ///< per color, max floats needed
};

/// Greedy interval-graph coloring in def order: an interval reuses the
/// lowest color whose previous occupant's last_use is strictly before this
/// def, else opens a new color. For a straight chain this yields the
/// classic 2-slab ping-pong regardless of depth.
[[nodiscard]] SlabAssignment color_intervals(
    std::span<const LifeInterval> intervals);

/// Assembles the write-back epilogue for a conv-rooted group: conv bias
/// (per C row = output channel), optional inference-mode BN (caller
/// provides `inv_std` scratch of bn->channels() floats, filled here with
/// 1/sqrt(running_var + eps) — the exact expression batchnorm.cpp uses),
/// optional trailing ReLU. Pointers alias the layers' parameter tensors;
/// the epilogue is valid while the layers and scratch live.
[[nodiscard]] gemmk::Epilogue make_conv_epilogue(const Conv2d& conv,
                                                 const BatchNorm2d* bn,
                                                 std::span<float> inv_std,
                                                 bool relu);

/// Linear-rooted variant: bias per C column (output feature), optional
/// trailing ReLU.
[[nodiscard]] gemmk::Epilogue make_linear_epilogue(const Linear& linear,
                                                   bool relu);

/// The static plan for one Sequential: its layer list partitioned into
/// FusedGroups. Rebuilt whenever the layer list changes (Sequential tracks
/// a structure version).
class ExecutionPlan {
 public:
  ExecutionPlan() = default;

  /// Chain recognition over the layer list. Greedy, left to right:
  /// Conv2d [+ BatchNorm2d(channels match)] [+ ReLU] and Linear + ReLU
  /// become fused groups; everything else is its own passthrough group.
  [[nodiscard]] static ExecutionPlan build(std::span<const LayerPtr> layers);

  [[nodiscard]] const std::vector<FusedGroup>& groups() const {
    return groups_;
  }
  [[nodiscard]] std::vector<FusedGroup>& groups() { return groups_; }

  /// True when any group actually fuses (the planned paths short-circuit to
  /// the legacy loops otherwise).
  [[nodiscard]] bool has_fusion() const;

 private:
  std::vector<FusedGroup> groups_;
};

}  // namespace splitmed::nn
