// The Layer abstraction.
//
// Layers use explicit forward/backward (Caffe-style) rather than a tape
// autograd: the split-learning protocol cuts the network at an arbitrary
// layer boundary and ships activations/gradients across a (simulated) WAN, so
// "gradient w.r.t. my input given gradient w.r.t. my output" must be a
// first-class operation.
//
// Contract:
//  - forward(x, training) caches whatever backward needs. One forward is
//    matched by at most one backward before the next forward.
//  - backward(grad_out) ACCUMULATES into each Parameter::grad (callers run
//    zero_grad() between steps) and returns grad w.r.t. the forward input.
//  - output_shape(in) is pure: it computes shapes without running data
//    through the layer (used by the analytic communication model).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "src/nn/parameter.hpp"
#include "src/serial/buffer.hpp"
#include "src/tensor/tensor.hpp"

namespace splitmed::nn {

class Layer {
 public:
  virtual ~Layer() = default;

  /// Runs the layer. `training` toggles train-time behaviour (dropout masks,
  /// batchnorm batch statistics).
  virtual Tensor forward(const Tensor& input, bool training) = 0;

  /// Backpropagates: accumulates parameter gradients, returns dL/dinput.
  /// Precondition: forward() was called and its cache is still valid.
  virtual Tensor backward(const Tensor& grad_output) = 0;

  /// Inference-only forward: bitwise identical outputs to
  /// forward(input, /*training=*/false), but with NO obligation to leave a
  /// usable backward cache behind (layers override to skip caching, and the
  /// execution planner overrides to fuse whole chains through arena slabs).
  /// Callers that need backward after an eval-mode pass — the privacy
  /// reconstruction attack — must keep using forward(x, false).
  virtual Tensor infer(const Tensor& input) {
    return forward(input, /*training=*/false);
  }

  /// Output shape for a given input shape, without executing.
  [[nodiscard]] virtual Shape output_shape(const Shape& input) const = 0;

  /// Trainable parameters (may be empty). Pointers remain valid for the
  /// lifetime of the layer (C.G. R.3: non-owning raw pointers).
  virtual std::vector<Parameter*> parameters() { return {}; }

  /// Human-readable layer description, e.g. "Conv2d(3->64, k3 s1 p1)".
  [[nodiscard]] virtual std::string name() const = 0;

  /// Serializes state a full checkpoint must capture BEYOND parameters():
  /// BatchNorm running statistics today, anything similar tomorrow. Layers
  /// without such state write nothing; containers recurse into children.
  /// Forward/backward caches are deliberately excluded — checkpoints are
  /// taken at step boundaries, where the next forward rebuilds them.
  virtual void save_extra_state(BufferWriter& writer) const { (void)writer; }

  /// Mirror of save_extra_state. Throws SerializationError on truncated or
  /// shape-mismatched input; the layer is unchanged when it throws.
  virtual void load_extra_state(BufferReader& reader) { (void)reader; }

  /// Zeroes all parameter gradients.
  void zero_grad() {
    for (Parameter* p : parameters()) p->zero_grad();
  }

  /// Total number of trainable scalars.
  [[nodiscard]] std::int64_t parameter_count() {
    std::int64_t n = 0;
    for (Parameter* p : parameters()) n += p->value.numel();
    return n;
  }
};

using LayerPtr = std::unique_ptr<Layer>;

}  // namespace splitmed::nn
