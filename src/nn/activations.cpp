#include "src/nn/activations.hpp"

#include <cmath>

#include "src/common/error.hpp"

namespace splitmed::nn {

Tensor ReLU::forward(const Tensor& input, bool /*training*/) {
  cached_input_ = input;
  Tensor out(input.shape());
  auto id = input.data();
  auto od = out.data();
  for (std::size_t i = 0; i < id.size(); ++i) {
    od[i] = id[i] > 0.0F ? id[i] : 0.0F;
  }
  return out;
}

Tensor ReLU::infer(const Tensor& input) {
  Tensor out(input.shape());
  auto id = input.data();
  auto od = out.data();
  for (std::size_t i = 0; i < id.size(); ++i) {
    od[i] = id[i] > 0.0F ? id[i] : 0.0F;
  }
  return out;
}

Tensor ReLU::backward(const Tensor& grad_output) {
  check_same_shape(grad_output.shape(), cached_input_.shape(),
                   "ReLU backward");
  Tensor grad(grad_output.shape());
  auto gd = grad_output.data();
  auto id = cached_input_.data();
  auto out = grad.data();
  for (std::size_t i = 0; i < gd.size(); ++i) {
    out[i] = id[i] > 0.0F ? gd[i] : 0.0F;
  }
  return grad;
}

Tensor Tanh::forward(const Tensor& input, bool /*training*/) {
  Tensor out(input.shape());
  auto id = input.data();
  auto od = out.data();
  for (std::size_t i = 0; i < id.size(); ++i) od[i] = std::tanh(id[i]);
  cached_output_ = out;
  return out;
}

Tensor Tanh::backward(const Tensor& grad_output) {
  check_same_shape(grad_output.shape(), cached_output_.shape(),
                   "Tanh backward");
  Tensor grad(grad_output.shape());
  auto gd = grad_output.data();
  auto yd = cached_output_.data();
  auto out = grad.data();
  for (std::size_t i = 0; i < gd.size(); ++i) {
    out[i] = gd[i] * (1.0F - yd[i] * yd[i]);
  }
  return grad;
}

Tensor Sigmoid::forward(const Tensor& input, bool /*training*/) {
  Tensor out(input.shape());
  auto id = input.data();
  auto od = out.data();
  for (std::size_t i = 0; i < id.size(); ++i) {
    od[i] = 1.0F / (1.0F + std::exp(-id[i]));
  }
  cached_output_ = out;
  return out;
}

Tensor Sigmoid::backward(const Tensor& grad_output) {
  check_same_shape(grad_output.shape(), cached_output_.shape(),
                   "Sigmoid backward");
  Tensor grad(grad_output.shape());
  auto gd = grad_output.data();
  auto yd = cached_output_.data();
  auto out = grad.data();
  for (std::size_t i = 0; i < gd.size(); ++i) {
    out[i] = gd[i] * yd[i] * (1.0F - yd[i]);
  }
  return grad;
}

}  // namespace splitmed::nn
