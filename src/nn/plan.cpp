#include "src/nn/plan.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <string_view>

#include "src/common/error.hpp"
#include "src/nn/activations.hpp"
#include "src/nn/batchnorm.hpp"
#include "src/nn/conv2d.hpp"
#include "src/nn/linear.hpp"

namespace splitmed::nn {
namespace {

bool planner_env_default() {
  const char* env = std::getenv("SPLITMED_PLAN");
  return env == nullptr || std::string_view(env) != "0";
}

std::atomic<int>& planner_state() {
  // -1 = unresolved (read env on first query), 0 = off, 1 = on.
  static std::atomic<int> state{-1};
  return state;
}

}  // namespace

bool planner_enabled() {
  int s = planner_state().load(std::memory_order_relaxed);
  if (s < 0) {
    s = planner_env_default() ? 1 : 0;
    planner_state().store(s, std::memory_order_relaxed);
  }
  return s != 0;
}

void set_planner_enabled(bool enabled) {
  planner_state().store(enabled ? 1 : 0, std::memory_order_relaxed);
}

SlabAssignment color_intervals(std::span<const LifeInterval> intervals) {
  SlabAssignment out;
  out.color.resize(intervals.size());
  // Per color: last_use of its current occupant, and the slab size so far.
  std::vector<std::int64_t> expires;
  for (std::size_t i = 0; i < intervals.size(); ++i) {
    const LifeInterval& iv = intervals[i];
    SPLITMED_CHECK(iv.def <= iv.last_use && iv.floats >= 0,
                   "color_intervals: malformed interval [" << iv.def << ", "
                                                           << iv.last_use
                                                           << ")");
    SPLITMED_CHECK(i == 0 || intervals[i - 1].def <= iv.def,
                   "color_intervals: intervals must be sorted by def");
    std::size_t c = expires.size();
    for (std::size_t j = 0; j < expires.size(); ++j) {
      // Closed intervals: reuse only when the occupant died strictly
      // before this value is defined.
      if (expires[j] < iv.def) {
        c = j;
        break;
      }
    }
    if (c == expires.size()) {
      expires.push_back(iv.last_use);
      out.slab_floats.push_back(iv.floats);
    } else {
      expires[c] = iv.last_use;
      out.slab_floats[c] = std::max(out.slab_floats[c], iv.floats);
    }
    out.color[i] = c;
  }
  return out;
}

gemmk::Epilogue make_conv_epilogue(const Conv2d& conv, const BatchNorm2d* bn,
                                   std::span<float> inv_std, bool relu) {
  gemmk::Epilogue ep;
  ep.bias = conv.bias_value().data().data();
  ep.per_row = true;  // conv GEMM rows are output channels
  if (bn != nullptr) {
    SPLITMED_CHECK(bn->channels() == conv.out_channels(),
                   "make_conv_epilogue: BN channels " << bn->channels()
                                                      << " != conv out "
                                                      << conv.out_channels());
    SPLITMED_CHECK(
        inv_std.size() >= static_cast<std::size_t>(bn->channels()),
        "make_conv_epilogue: inv_std scratch too small");
    auto rv = bn->running_var().data();
    const float eps = bn->eps();
    for (std::int64_t c = 0; c < bn->channels(); ++c) {
      // Exactly batchnorm.cpp's eval expression; precomputing it per
      // channel (instead of per element) changes nothing — the unfused
      // loop also hoists it per channel.
      inv_std[static_cast<std::size_t>(c)] =
          1.0F / std::sqrt(rv[static_cast<std::size_t>(c)] + eps);
    }
    ep.bn_gamma = bn->gamma_value().data().data();
    ep.bn_mean = bn->running_mean().data().data();
    ep.bn_inv_std = inv_std.data();
    ep.bn_beta = bn->beta_value().data().data();
  }
  ep.relu = relu;
  return ep;
}

gemmk::Epilogue make_linear_epilogue(const Linear& linear, bool relu) {
  gemmk::Epilogue ep;
  ep.bias = linear.bias_value().data().data();
  ep.per_row = false;  // x·Wᵀ puts output features in C columns
  ep.relu = relu;
  return ep;
}

ExecutionPlan ExecutionPlan::build(std::span<const LayerPtr> layers) {
  ExecutionPlan plan;
  std::size_t i = 0;
  while (i < layers.size()) {
    FusedGroup g;
    g.begin = i;
    if (auto* conv = dynamic_cast<Conv2d*>(layers[i].get())) {
      g.conv = conv;
      auto* bn = (i + 1 < layers.size())
                     ? dynamic_cast<BatchNorm2d*>(layers[i + 1].get())
                     : nullptr;
      if (bn != nullptr && bn->channels() == conv->out_channels()) {
        g.bn = bn;
        const bool relu =
            i + 2 < layers.size() &&
            dynamic_cast<ReLU*>(layers[i + 2].get()) != nullptr;
        g.kind = relu ? FuseKind::kConvBnRelu : FuseKind::kConvBn;
        g.end = i + (relu ? 3 : 2);
      } else if (i + 1 < layers.size() &&
                 dynamic_cast<ReLU*>(layers[i + 1].get()) != nullptr) {
        g.kind = FuseKind::kConvRelu;
        g.end = i + 2;
      } else {
        g.kind = FuseKind::kPassthrough;
        g.conv = nullptr;
        g.layer = layers[i].get();
        g.end = i + 1;
      }
    } else if (auto* linear = dynamic_cast<Linear*>(layers[i].get())) {
      if (i + 1 < layers.size() &&
          dynamic_cast<ReLU*>(layers[i + 1].get()) != nullptr) {
        g.kind = FuseKind::kLinearRelu;
        g.linear = linear;
        g.end = i + 2;
      } else {
        g.kind = FuseKind::kPassthrough;
        g.layer = layers[i].get();
        g.end = i + 1;
      }
    } else {
      g.kind = FuseKind::kPassthrough;
      g.layer = layers[i].get();
      g.end = i + 1;
    }
    i = g.end;
    plan.groups_.push_back(std::move(g));
  }
  return plan;
}

bool ExecutionPlan::has_fusion() const {
  for (const FusedGroup& g : groups_) {
    if (g.kind != FuseKind::kPassthrough) return true;
  }
  return false;
}

}  // namespace splitmed::nn
