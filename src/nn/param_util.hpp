// Parameter vector utilities: flattening model parameters/gradients into one
// contiguous tensor and back. This is the wire representation the baselines
// exchange (gradient push / parameter pull in Large-Scale SGD, weight
// averaging in FedAvg).
#pragma once

#include <vector>

#include "src/nn/parameter.hpp"

namespace splitmed::nn {

/// Total scalar count across parameters.
std::int64_t parameter_numel(const std::vector<Parameter*>& params);

/// Concatenates all parameter VALUES into one rank-1 tensor.
Tensor flatten_values(const std::vector<Parameter*>& params);

/// Concatenates all parameter GRADIENTS into one rank-1 tensor.
Tensor flatten_gradients(const std::vector<Parameter*>& params);

/// Writes a flat tensor back into the parameter values. Sizes must match.
void load_values(const std::vector<Parameter*>& params, const Tensor& flat);

/// Writes a flat tensor into the parameter GRADIENT accumulators
/// (overwrites, does not accumulate).
void load_gradients(const std::vector<Parameter*>& params, const Tensor& flat);

/// values += scale * flat (e.g. FedAvg weighted accumulation).
void axpy_values(const std::vector<Parameter*>& params, float scale,
                 const Tensor& flat);

}  // namespace splitmed::nn
