#include "src/nn/sequential.hpp"

#include <sstream>

#include "src/common/error.hpp"
#include "src/nn/batchnorm.hpp"
#include "src/nn/conv2d.hpp"
#include "src/nn/linear.hpp"
#include "src/obs/obs.hpp"
#include "src/tensor/workspace.hpp"

namespace splitmed::nn {
namespace {

/// Trace label for one plan group, e.g. "Conv2d(3->16, k3 s1 p1)+ReLU".
std::string group_label(const FusedGroup& g,
                        const std::vector<LayerPtr>& layers) {
  std::string label;
  for (std::size_t i = g.begin; i < g.end; ++i) {
    if (i > g.begin) label += '+';
    label += layers[i]->name();
  }
  return label;
}

}  // namespace

Sequential& Sequential::add(LayerPtr layer) {
  SPLITMED_CHECK(layer != nullptr, "Sequential::add: null layer");
  layers_.push_back(std::move(layer));
  ++structure_version_;
  return *this;
}

void Sequential::ensure_plan() {
  if (planned_version_ != structure_version_) {
    plan_ = ExecutionPlan::build(layers_);
    planned_version_ = structure_version_;
  }
}

void Sequential::prepare_plan() { ensure_plan(); }

const ExecutionPlan& Sequential::plan() {
  ensure_plan();
  return plan_;
}

Tensor Sequential::forward(const Tensor& input, bool training) {
  ensure_plan();
  if (planner_enabled() && plan_.has_fusion()) {
    return forward_planned(input, training);
  }
  last_forward_planned_ = false;
  Tensor x = input;
  if (obs::detail_at_least(2)) {
    // Per-layer spans (--trace-detail=2): where the compute time goes.
    std::uint64_t index = 0;
    for (const auto& layer : layers_) {
      obs::Span span(obs::trace(), "nn." + layer->name(), "nn");
      span.arg("dir", "forward");
      span.arg("index", index++);
      x = layer->forward(x, training);
    }
    return x;
  }
  for (const auto& layer : layers_) x = layer->forward(x, training);
  return x;
}

Tensor Sequential::forward_planned(const Tensor& input, bool training) {
  last_forward_planned_ = true;
  Tensor x = input;
  // Runs one plan group. conv→relu and linear→relu fuse the ReLU into the
  // GEMM write-back in BOTH modes (elementwise-after-fold, bitwise inert;
  // the group's output is cached for the dReLU backward mask). BN-rooted
  // groups run per-layer here: training-mode BN needs batch statistics of
  // the conv output, and eval-mode forward() must leave BatchNorm's
  // backward cache intact (privacy::reconstruct_inputs differentiates an
  // eval forward) — only infer() fuses BN.
  auto run_group = [&](FusedGroup& g) {
    switch (g.kind) {
      case FuseKind::kConvRelu: {
        const gemmk::Epilogue ep =
            make_conv_epilogue(*g.conv, nullptr, {}, /*relu=*/true);
        x = g.conv->forward_fused(x, ep, /*cache=*/true);
        g.fused_out = x;
        g.ran_fused = true;
        break;
      }
      case FuseKind::kLinearRelu: {
        const gemmk::Epilogue ep = make_linear_epilogue(*g.linear, true);
        x = g.linear->forward_fused(x, ep, /*cache=*/true);
        g.fused_out = x;
        g.ran_fused = true;
        break;
      }
      default: {
        g.ran_fused = false;
        for (std::size_t i = g.begin; i < g.end; ++i) {
          x = layers_[i]->forward(x, training);
        }
        break;
      }
    }
  };
  if (obs::detail_at_least(2)) {
    std::uint64_t index = 0;
    for (FusedGroup& g : plan_.groups()) {
      obs::Span span(obs::trace(), "nn." + group_label(g, layers_), "nn");
      span.arg("dir", "forward");
      span.arg("index", index++);
      run_group(g);
    }
    return x;
  }
  for (FusedGroup& g : plan_.groups()) run_group(g);
  return x;
}

Tensor Sequential::backward(const Tensor& grad_output) {
  if (last_forward_planned_) return backward_planned(grad_output);
  Tensor g = grad_output;
  if (obs::detail_at_least(2)) {
    for (std::size_t i = layers_.size(); i-- > 0;) {
      obs::Span span(obs::trace(), "nn." + layers_[i]->name(), "nn");
      span.arg("dir", "backward");
      span.arg("index", static_cast<std::uint64_t>(i));
      g = layers_[i]->backward(g);
    }
    return g;
  }
  for (std::size_t i = layers_.size(); i-- > 0;) {
    g = layers_[i]->backward(g);
  }
  return g;
}

Tensor Sequential::backward_planned(const Tensor& grad_output) {
  Tensor g = grad_output;
  auto& groups = plan_.groups();
  // Mirrors forward_planned exactly: groups that ran fused get the dReLU
  // mask applied to the incoming gradient on the cached fused OUTPUT
  // (out > 0 ⟺ pre-activation > 0, including -0.0 and NaN→0, so the
  // masked bytes equal ReLU::backward's result), scratch-buffered in the
  // arena, then the producing layer's backward runs on those bytes.
  auto run_group = [&](FusedGroup& grp) {
    if (grp.ran_fused) {
      check_same_shape(g.shape(), grp.fused_out.shape(),
                       "Sequential fused backward");
      ws::WorkspaceScope scope;
      std::span<float> masked = scope.floats(grp.fused_out.numel());
      auto fd = grp.fused_out.data();
      auto gd = g.data();
      for (std::size_t i = 0; i < gd.size(); ++i) {
        masked[i] = fd[i] > 0.0F ? gd[i] : 0.0F;
      }
      g = (grp.conv != nullptr)
              ? grp.conv->backward_from(masked, grp.fused_out.shape())
              : grp.linear->backward_from(masked, grp.fused_out.shape());
    } else {
      for (std::size_t i = grp.end; i-- > grp.begin;) {
        g = layers_[i]->backward(g);
      }
    }
  };
  if (obs::detail_at_least(2)) {
    for (std::size_t gi = groups.size(); gi-- > 0;) {
      obs::Span span(obs::trace(),
                     "nn." + group_label(groups[gi], layers_), "nn");
      span.arg("dir", "backward");
      span.arg("index", static_cast<std::uint64_t>(gi));
      run_group(groups[gi]);
    }
    return g;
  }
  for (std::size_t gi = groups.size(); gi-- > 0;) run_group(groups[gi]);
  return g;
}

Tensor Sequential::infer(const Tensor& input) {
  ensure_plan();
  if (!planner_enabled() || !plan_.has_fusion()) {
    // Legacy eval loop — per-layer forward(x, false), the unfused
    // comparator (keeps every layer's backward cache, as evaluate did
    // before the planner existed).
    Tensor x = input;
    for (const auto& layer : layers_) x = layer->forward(x, false);
    return x;
  }
  Tensor x = input;
  auto& groups = plan_.groups();
  std::size_t gi = 0;
  while (gi < groups.size()) {
    if (groups[gi].kind == FuseKind::kPassthrough) {
      x = groups[gi].layer->infer(x);
      ++gi;
      continue;
    }
    // Maximal run of fused groups chains through arena slabs.
    std::size_t gj = gi + 1;
    while (gj < groups.size() &&
           groups[gj].kind != FuseKind::kPassthrough) {
      ++gj;
    }
    x = infer_fused_run(x, gi, gj);
    gi = gj;
  }
  return x;
}

Tensor Sequential::infer_fused_run(const Tensor& input, std::size_t g0,
                                   std::size_t g1) {
  auto& groups = plan_.groups();
  const std::size_t r = g1 - g0;
  // Output shape per group in the run.
  std::vector<Shape> shapes;
  shapes.reserve(r);
  Shape s = input.shape();
  for (std::size_t i = g0; i < g1; ++i) {
    for (std::size_t li = groups[i].begin; li < groups[i].end; ++li) {
      s = layers_[li]->output_shape(s);
    }
    shapes.push_back(s);
  }
  Tensor out(shapes.back());
  ws::WorkspaceScope scope;
  // Chained intermediates (every group output but the last, which writes
  // the result Tensor): value i is defined by group i and last read by
  // group i+1 — closed intervals, colored onto reusable slabs. A straight
  // chain ping-pongs between two slabs regardless of depth.
  std::vector<LifeInterval> intervals;
  intervals.reserve(r > 0 ? r - 1 : 0);
  for (std::size_t i = 0; i + 1 < r; ++i) {
    intervals.push_back({static_cast<std::int64_t>(i),
                         static_cast<std::int64_t>(i) + 1,
                         shapes[i].numel()});
  }
  const SlabAssignment assignment = color_intervals(intervals);
  std::vector<std::span<float>> slabs;
  slabs.reserve(assignment.slab_floats.size());
  for (std::int64_t f : assignment.slab_floats) {
    slabs.push_back(scope.floats(f));
  }
  std::span<const float> cur = input.data();
  Shape cur_shape = input.shape();
  for (std::size_t i = 0; i < r; ++i) {
    FusedGroup& g = groups[g0 + i];
    std::span<float> dst =
        (i + 1 == r)
            ? out.data()
            : slabs[assignment.color[i]].first(
                  static_cast<std::size_t>(shapes[i].numel()));
    if (g.conv != nullptr) {
      std::span<float> inv_std =
          (g.bn != nullptr) ? scope.floats(g.bn->channels())
                            : std::span<float>{};
      const bool relu = g.kind == FuseKind::kConvRelu ||
                        g.kind == FuseKind::kConvBnRelu;
      const gemmk::Epilogue ep =
          make_conv_epilogue(*g.conv, g.bn, inv_std, relu);
      g.conv->run_fused(cur, cur_shape.dim(0), cur_shape.dim(2),
                        cur_shape.dim(3), dst, ep);
    } else {
      const gemmk::Epilogue ep = make_linear_epilogue(*g.linear, true);
      g.linear->run_fused(cur, cur_shape.dim(0), dst, ep);
    }
    cur = dst;
    cur_shape = shapes[i];
  }
  return out;
}

Shape Sequential::output_shape(const Shape& input) const {
  Shape s = input;
  for (const auto& layer : layers_) s = layer->output_shape(s);
  return s;
}

std::vector<Parameter*> Sequential::parameters() {
  std::vector<Parameter*> out;
  for (const auto& layer : layers_) {
    for (Parameter* p : layer->parameters()) out.push_back(p);
  }
  return out;
}

std::string Sequential::name() const {
  std::ostringstream os;
  os << "Sequential(" << layers_.size() << " layers)";
  return os.str();
}

Layer& Sequential::layer(std::size_t i) {
  SPLITMED_CHECK(i < layers_.size(), "Sequential::layer: index " << i
                                         << " out of range");
  return *layers_[i];
}

const Layer& Sequential::layer(std::size_t i) const {
  SPLITMED_CHECK(i < layers_.size(), "Sequential::layer: index " << i
                                         << " out of range");
  return *layers_[i];
}

Sequential Sequential::extract(std::size_t begin, std::size_t end) {
  SPLITMED_CHECK(begin <= end && end <= layers_.size(),
                 "Sequential::extract [" << begin << ", " << end
                                         << ") out of range, size "
                                         << layers_.size());
  Sequential out;
  for (std::size_t i = begin; i < end; ++i) {
    out.add(std::move(layers_[i]));
  }
  layers_.erase(layers_.begin() + static_cast<std::ptrdiff_t>(begin),
                layers_.begin() + static_cast<std::ptrdiff_t>(end));
  ++structure_version_;  // stale plan would hold dangling layer pointers
  return out;
}

void Sequential::save_extra_state(BufferWriter& writer) const {
  writer.write_u32(static_cast<std::uint32_t>(layers_.size()));
  for (const auto& layer : layers_) layer->save_extra_state(writer);
}

void Sequential::load_extra_state(BufferReader& reader) {
  const std::uint32_t count = reader.read_u32();
  if (count != layers_.size()) {
    throw SerializationError("Sequential extra state: checkpoint has " +
                             std::to_string(count) + " layers, model has " +
                             std::to_string(layers_.size()));
  }
  for (auto& layer : layers_) layer->load_extra_state(reader);
}

std::vector<Shape> Sequential::activation_shapes(const Shape& input) const {
  std::vector<Shape> shapes;
  shapes.reserve(layers_.size() + 1);
  shapes.push_back(input);
  Shape s = input;
  for (const auto& layer : layers_) {
    s = layer->output_shape(s);
    shapes.push_back(s);
  }
  return shapes;
}

}  // namespace splitmed::nn
