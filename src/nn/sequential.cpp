#include "src/nn/sequential.hpp"

#include <sstream>

#include "src/common/error.hpp"
#include "src/obs/obs.hpp"

namespace splitmed::nn {

Sequential& Sequential::add(LayerPtr layer) {
  SPLITMED_CHECK(layer != nullptr, "Sequential::add: null layer");
  layers_.push_back(std::move(layer));
  return *this;
}

Tensor Sequential::forward(const Tensor& input, bool training) {
  Tensor x = input;
  if (obs::detail_at_least(2)) {
    // Per-layer spans (--trace-detail=2): where the compute time goes.
    std::uint64_t index = 0;
    for (const auto& layer : layers_) {
      obs::Span span(obs::trace(), "nn." + layer->name(), "nn");
      span.arg("dir", "forward");
      span.arg("index", index++);
      x = layer->forward(x, training);
    }
    return x;
  }
  for (const auto& layer : layers_) x = layer->forward(x, training);
  return x;
}

Tensor Sequential::backward(const Tensor& grad_output) {
  Tensor g = grad_output;
  if (obs::detail_at_least(2)) {
    for (std::size_t i = layers_.size(); i-- > 0;) {
      obs::Span span(obs::trace(), "nn." + layers_[i]->name(), "nn");
      span.arg("dir", "backward");
      span.arg("index", static_cast<std::uint64_t>(i));
      g = layers_[i]->backward(g);
    }
    return g;
  }
  for (std::size_t i = layers_.size(); i-- > 0;) {
    g = layers_[i]->backward(g);
  }
  return g;
}

Shape Sequential::output_shape(const Shape& input) const {
  Shape s = input;
  for (const auto& layer : layers_) s = layer->output_shape(s);
  return s;
}

std::vector<Parameter*> Sequential::parameters() {
  std::vector<Parameter*> out;
  for (const auto& layer : layers_) {
    for (Parameter* p : layer->parameters()) out.push_back(p);
  }
  return out;
}

std::string Sequential::name() const {
  std::ostringstream os;
  os << "Sequential(" << layers_.size() << " layers)";
  return os.str();
}

Layer& Sequential::layer(std::size_t i) {
  SPLITMED_CHECK(i < layers_.size(), "Sequential::layer: index " << i
                                         << " out of range");
  return *layers_[i];
}

const Layer& Sequential::layer(std::size_t i) const {
  SPLITMED_CHECK(i < layers_.size(), "Sequential::layer: index " << i
                                         << " out of range");
  return *layers_[i];
}

Sequential Sequential::extract(std::size_t begin, std::size_t end) {
  SPLITMED_CHECK(begin <= end && end <= layers_.size(),
                 "Sequential::extract [" << begin << ", " << end
                                         << ") out of range, size "
                                         << layers_.size());
  Sequential out;
  for (std::size_t i = begin; i < end; ++i) {
    out.add(std::move(layers_[i]));
  }
  layers_.erase(layers_.begin() + static_cast<std::ptrdiff_t>(begin),
                layers_.begin() + static_cast<std::ptrdiff_t>(end));
  return out;
}

void Sequential::save_extra_state(BufferWriter& writer) const {
  writer.write_u32(static_cast<std::uint32_t>(layers_.size()));
  for (const auto& layer : layers_) layer->save_extra_state(writer);
}

void Sequential::load_extra_state(BufferReader& reader) {
  const std::uint32_t count = reader.read_u32();
  if (count != layers_.size()) {
    throw SerializationError("Sequential extra state: checkpoint has " +
                             std::to_string(count) + " layers, model has " +
                             std::to_string(layers_.size()));
  }
  for (auto& layer : layers_) layer->load_extra_state(reader);
}

std::vector<Shape> Sequential::activation_shapes(const Shape& input) const {
  std::vector<Shape> shapes;
  shapes.reserve(layers_.size() + 1);
  shapes.push_back(input);
  Shape s = input;
  for (const auto& layer : layers_) {
    s = layer->output_shape(s);
    shapes.push_back(s);
  }
  return shapes;
}

}  // namespace splitmed::nn
