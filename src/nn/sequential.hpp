// Ordered container of layers — the unit the split-learning cut operates on.
#pragma once

#include <memory>

#include "src/nn/layer.hpp"
#include "src/nn/plan.hpp"

namespace splitmed::nn {

class Sequential final : public Layer {
 public:
  Sequential() = default;

  /// Appends a layer; returns *this for chaining.
  Sequential& add(LayerPtr layer);

  /// Emplace-style append: seq.emplace<ReLU>(); seq.emplace<Linear>(4, 2, rng);
  template <typename L, typename... Args>
  Sequential& emplace(Args&&... args) {
    return add(std::make_unique<L>(std::forward<Args>(args)...));
  }

  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  /// Plan-driven inference: fused groups (including inference-mode BN)
  /// chain through lifetime-colored workspace slabs; with the planner off,
  /// falls back to the legacy per-layer forward(x, false) loop. Outputs are
  /// bitwise identical either way.
  Tensor infer(const Tensor& input) override;
  [[nodiscard]] Shape output_shape(const Shape& input) const override;
  std::vector<Parameter*> parameters() override;
  [[nodiscard]] std::string name() const override;

  /// Recurses into children (prefixed with a layer-count self-check so a
  /// checkpoint from a differently built model fails loudly, not silently).
  void save_extra_state(BufferWriter& writer) const override;
  void load_extra_state(BufferReader& reader) override;

  [[nodiscard]] std::size_t size() const { return layers_.size(); }
  [[nodiscard]] Layer& layer(std::size_t i);
  [[nodiscard]] const Layer& layer(std::size_t i) const;

  /// Moves layers [begin, end) out into a new Sequential, erasing them from
  /// this one. This is the primitive the split framework uses to divide a
  /// network between platform (front) and server (back).
  Sequential extract(std::size_t begin, std::size_t end);

  /// Shapes of every intermediate activation for the given input shape:
  /// result[0] = input, result[i+1] = output of layer i. Pure.
  [[nodiscard]] std::vector<Shape> activation_shapes(const Shape& input) const;

  /// Builds (or rebuilds) the execution plan now instead of lazily on the
  /// first forward. Models call this once after construction.
  void prepare_plan();

  /// The current plan (building it first if stale). Test/introspection
  /// hook.
  [[nodiscard]] const ExecutionPlan& plan();

  /// Whether the most recent forward() took the plan-driven path (backward
  /// mirrors this; exposed for tests).
  [[nodiscard]] bool last_forward_planned() const {
    return last_forward_planned_;
  }

 private:
  void ensure_plan();
  Tensor forward_planned(const Tensor& input, bool training);
  Tensor backward_planned(const Tensor& grad_output);
  /// Chains fused groups [g0, g1) of the plan through lifetime-colored
  /// arena slabs (inference only — no caches survive).
  Tensor infer_fused_run(const Tensor& input, std::size_t g0, std::size_t g1);

  std::vector<LayerPtr> layers_;
  // Plan cache, invalidated by structural edits (add/extract).
  ExecutionPlan plan_;
  std::uint64_t structure_version_ = 0;
  std::uint64_t planned_version_ = ~std::uint64_t{0};
  bool last_forward_planned_ = false;
};

}  // namespace splitmed::nn
