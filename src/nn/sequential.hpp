// Ordered container of layers — the unit the split-learning cut operates on.
#pragma once

#include <memory>

#include "src/nn/layer.hpp"

namespace splitmed::nn {

class Sequential final : public Layer {
 public:
  Sequential() = default;

  /// Appends a layer; returns *this for chaining.
  Sequential& add(LayerPtr layer);

  /// Emplace-style append: seq.emplace<ReLU>(); seq.emplace<Linear>(4, 2, rng);
  template <typename L, typename... Args>
  Sequential& emplace(Args&&... args) {
    return add(std::make_unique<L>(std::forward<Args>(args)...));
  }

  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  [[nodiscard]] Shape output_shape(const Shape& input) const override;
  std::vector<Parameter*> parameters() override;
  [[nodiscard]] std::string name() const override;

  /// Recurses into children (prefixed with a layer-count self-check so a
  /// checkpoint from a differently built model fails loudly, not silently).
  void save_extra_state(BufferWriter& writer) const override;
  void load_extra_state(BufferReader& reader) override;

  [[nodiscard]] std::size_t size() const { return layers_.size(); }
  [[nodiscard]] Layer& layer(std::size_t i);
  [[nodiscard]] const Layer& layer(std::size_t i) const;

  /// Moves layers [begin, end) out into a new Sequential, erasing them from
  /// this one. This is the primitive the split framework uses to divide a
  /// network between platform (front) and server (back).
  Sequential extract(std::size_t begin, std::size_t end);

  /// Shapes of every intermediate activation for the given input shape:
  /// result[0] = input, result[i+1] = output of layer i. Pure.
  [[nodiscard]] std::vector<Shape> activation_shapes(const Shape& input) const;

 private:
  std::vector<LayerPtr> layers_;
};

}  // namespace splitmed::nn
