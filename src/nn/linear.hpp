// Fully-connected layer: y = x·Wᵀ + b, x: [batch, in], W: [out, in].
#pragma once

#include <span>

#include "src/common/rng.hpp"
#include "src/nn/layer.hpp"
#include "src/tensor/gemm_kernels.hpp"

namespace splitmed::nn {

class Linear final : public Layer {
 public:
  /// He-normal weight init (library default: layers feed ReLUs), zero bias.
  Linear(std::int64_t in_features, std::int64_t out_features, Rng& rng);

  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  Tensor infer(const Tensor& input) override;
  [[nodiscard]] Shape output_shape(const Shape& input) const override;
  std::vector<Parameter*> parameters() override { return {&weight_, &bias_}; }
  [[nodiscard]] std::string name() const override;

  [[nodiscard]] std::int64_t in_features() const { return in_; }
  [[nodiscard]] std::int64_t out_features() const { return out_; }
  Parameter& weight() { return weight_; }
  Parameter& bias() { return bias_; }
  [[nodiscard]] const Tensor& bias_value() const { return bias_.value; }

  /// Planner entry points (src/nn/plan.cpp); see Conv2d for the contract.
  /// Here the GEMM is x·Wᵀ so the epilogue parameters index C COLUMNS
  /// (per_row=false, one per output feature).
  Tensor forward_fused(const Tensor& input, const gemmk::Epilogue& ep,
                       bool cache);
  void run_fused(std::span<const float> input, std::int64_t batch,
                 std::span<float> out, const gemmk::Epilogue& ep) const;
  Tensor backward_from(std::span<const float> grad_output,
                       const Shape& grad_shape);

 private:
  std::int64_t in_;
  std::int64_t out_;
  Parameter weight_;  // [out, in]
  Parameter bias_;    // [out]
  Tensor cached_input_;
};

}  // namespace splitmed::nn
