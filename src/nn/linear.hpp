// Fully-connected layer: y = x·Wᵀ + b, x: [batch, in], W: [out, in].
#pragma once

#include "src/common/rng.hpp"
#include "src/nn/layer.hpp"

namespace splitmed::nn {

class Linear final : public Layer {
 public:
  /// He-normal weight init (library default: layers feed ReLUs), zero bias.
  Linear(std::int64_t in_features, std::int64_t out_features, Rng& rng);

  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  [[nodiscard]] Shape output_shape(const Shape& input) const override;
  std::vector<Parameter*> parameters() override { return {&weight_, &bias_}; }
  [[nodiscard]] std::string name() const override;

  [[nodiscard]] std::int64_t in_features() const { return in_; }
  [[nodiscard]] std::int64_t out_features() const { return out_; }
  Parameter& weight() { return weight_; }
  Parameter& bias() { return bias_; }

 private:
  std::int64_t in_;
  std::int64_t out_;
  Parameter weight_;  // [out, in]
  Parameter bias_;    // [out]
  Tensor cached_input_;
};

}  // namespace splitmed::nn
