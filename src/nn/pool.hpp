// Spatial pooling layers (NCHW).
#pragma once

#include <vector>

#include "src/nn/layer.hpp"

namespace splitmed::nn {

/// Non-overlapping-or-strided max pooling with square window.
class MaxPool2d final : public Layer {
 public:
  explicit MaxPool2d(std::int64_t window, std::int64_t stride = 0);

  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  /// Same window max, without recording argmax indices.
  Tensor infer(const Tensor& input) override;
  [[nodiscard]] Shape output_shape(const Shape& input) const override;
  [[nodiscard]] std::string name() const override;

 private:
  std::int64_t window_;
  std::int64_t stride_;
  Shape cached_input_shape_;
  std::vector<std::int64_t> argmax_;  // flat input index per output element
};

/// Windowed average pooling with square window.
class AvgPool2d final : public Layer {
 public:
  explicit AvgPool2d(std::int64_t window, std::int64_t stride = 0);

  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  [[nodiscard]] Shape output_shape(const Shape& input) const override;
  [[nodiscard]] std::string name() const override;

 private:
  std::int64_t window_;
  std::int64_t stride_;
  Shape cached_input_shape_;
};

/// Global average pooling: [b,c,h,w] -> [b,c].
class GlobalAvgPool final : public Layer {
 public:
  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  [[nodiscard]] Shape output_shape(const Shape& input) const override;
  [[nodiscard]] std::string name() const override { return "GlobalAvgPool"; }

 private:
  Shape cached_input_shape_;
};

}  // namespace splitmed::nn
