#include "src/nn/init.hpp"

#include <cmath>

#include "src/common/error.hpp"

namespace splitmed::nn {

Tensor he_normal(Shape shape, std::int64_t fan_in, Rng& rng) {
  SPLITMED_CHECK(fan_in > 0, "he_normal: fan_in must be positive");
  const float stddev = std::sqrt(2.0F / static_cast<float>(fan_in));
  return Tensor::normal(std::move(shape), rng, 0.0F, stddev);
}

Tensor xavier_uniform(Shape shape, std::int64_t fan_in, std::int64_t fan_out,
                      Rng& rng) {
  SPLITMED_CHECK(fan_in > 0 && fan_out > 0,
                 "xavier_uniform: fans must be positive");
  const float limit =
      std::sqrt(6.0F / static_cast<float>(fan_in + fan_out));
  return Tensor::uniform(std::move(shape), rng, -limit, limit);
}

}  // namespace splitmed::nn
