// Losses. In the split protocol the loss lives on the PLATFORM (labels never
// leave the hospital), so losses are standalone objects, not layers.
#pragma once

#include <cstdint>
#include <vector>

#include "src/tensor/tensor.hpp"

namespace splitmed::nn {

/// Softmax + cross-entropy, fused for numerical stability.
/// forward: logits [batch, classes], labels in [0, classes).
class SoftmaxCrossEntropy {
 public:
  /// Returns the mean loss over the batch; caches softmax for backward.
  float forward(const Tensor& logits, const std::vector<std::int64_t>& labels);

  /// Gradient of the mean loss w.r.t. the logits: (softmax - onehot)/batch.
  [[nodiscard]] Tensor backward() const;

  /// Softmax probabilities from the last forward (for metrics).
  [[nodiscard]] const Tensor& probabilities() const { return probs_; }

 private:
  Tensor probs_;
  std::vector<std::int64_t> labels_;
};

/// Accuracy of argmax(logits) against labels, in [0,1].
double accuracy(const Tensor& logits, const std::vector<std::int64_t>& labels);

}  // namespace splitmed::nn
