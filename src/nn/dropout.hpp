// Inverted dropout: activations are scaled by 1/(1-p) at train time so
// inference needs no rescaling.
#pragma once

#include "src/common/rng.hpp"
#include "src/nn/layer.hpp"

namespace splitmed::nn {

class Dropout final : public Layer {
 public:
  /// p is the drop probability in [0, 1). The rng reference must outlive the
  /// layer (it is the model's generator, threaded through for determinism).
  Dropout(float p, Rng& rng);

  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  [[nodiscard]] Shape output_shape(const Shape& input) const override {
    return input;
  }
  [[nodiscard]] std::string name() const override;

 private:
  float p_;
  Rng* rng_;       // non-owning
  Tensor mask_;    // scaled keep-mask of the last training forward
  bool last_training_ = false;
};

}  // namespace splitmed::nn
