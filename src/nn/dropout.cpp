#include "src/nn/dropout.hpp"

#include <sstream>

#include "src/common/error.hpp"
#include "src/tensor/ops.hpp"

namespace splitmed::nn {

Dropout::Dropout(float p, Rng& rng) : p_(p), rng_(&rng) {
  SPLITMED_CHECK(p >= 0.0F && p < 1.0F, "Dropout: p must be in [0,1)");
}

Tensor Dropout::forward(const Tensor& input, bool training) {
  last_training_ = training;
  if (!training || p_ == 0.0F) return input;
  mask_ = Tensor(input.shape());
  const float keep_scale = 1.0F / (1.0F - p_);
  auto md = mask_.data();
  for (auto& m : md) m = rng_->bernoulli(p_) ? 0.0F : keep_scale;
  return ops::mul(input, mask_);
}

Tensor Dropout::backward(const Tensor& grad_output) {
  if (!last_training_ || p_ == 0.0F) return grad_output;
  check_same_shape(grad_output.shape(), mask_.shape(), "Dropout backward");
  return ops::mul(grad_output, mask_);
}

std::string Dropout::name() const {
  std::ostringstream os;
  os << "Dropout(p=" << p_ << ')';
  return os.str();
}

}  // namespace splitmed::nn
