// Message envelope — the unit the simulated network transfers.
//
// An Envelope carries an opaque payload plus routing/framing metadata. The
// wire size of an envelope (header + payload) is THE quantity Fig. 4 counts,
// so it is defined here once and used by both the real transport
// (net::Network) and the analytic communication model (models::ModelStats).
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "src/serial/wire_codec.hpp"

namespace splitmed {

/// Identifies a node in the simulated network (platforms, server).
using NodeId = std::uint32_t;

/// Sideband trace/span context riding on every envelope — the causal
/// identity of one protocol message. NEVER serialized: encode_envelope /
/// decode_envelope skip it (checkpoints stay byte-identical) and it is not
/// counted in wire_bytes(), so golden byte fingerprints are untouched. The
/// flow id and flight start are stamped by net::Network::send (one per
/// physical frame, including injected duplicates); the protocol fields are
/// stamped by the platform/server state machines.
struct TraceContext {
  /// Unique per physical frame actually put in flight (a deterministic
  /// network-owned counter); 0 = no flow (dropped frames, frames restored
  /// from a checkpoint). The id Chrome flow events ("ph":"s"/"f") share.
  std::uint64_t flow_id = 0;
  /// Simulated time the flight started (link occupancy begin).
  double sent_sim = 0.0;
  /// Originating platform node of the protocol step this frame belongs to
  /// (for server replies: the platform being replied to).
  NodeId platform = 0;
  /// Protocol step id (trace id = (round, platform, step)).
  std::uint64_t step = 0;
  /// Retransmission attempt: 0 = first transmission, 1+ = retries.
  std::uint32_t attempt = 0;
  /// Flow id of the request this frame replies to (0 = none) — the causal
  /// edge from request to reply.
  std::uint64_t parent_flow = 0;
};

struct Envelope {
  NodeId src = 0;
  NodeId dst = 0;
  /// Protocol-defined discriminator (core::MsgKind, baseline kinds, ...).
  std::uint32_t kind = 0;
  /// Training round / step the message belongs to.
  std::uint64_t round = 0;
  std::vector<std::uint8_t> payload;
  /// CRC-32 trailer over the payload. Stamped by net::Network::send and
  /// verified at delivery only when fault injection is enabled on the
  /// network; a mismatch means the frame was corrupted in flight and it is
  /// discarded (counted in TrafficStats), never handed to protocol code.
  std::uint32_t crc = 0;
  /// Marks a protocol-level retransmission (recovery path) so TrafficStats
  /// can separate goodput from total wire bytes. Not a wire field.
  bool retransmit = false;
  /// Codec of the tensor payload, mirrored from the payload's own tag byte
  /// so TrafficStats / obs can account bytes per codec without re-decoding.
  /// Not a wire field (the authoritative tag lives inside the payload);
  /// kF32 for non-tensor and full-precision messages.
  WireCodec codec = WireCodec::kF32;
  /// Causal trace context. Not a wire field — sideband metadata only.
  TraceContext trace{};

  /// Bytes this envelope occupies on the wire (excluding the CRC trailer,
  /// which only exists — and is only accounted — on fault-injecting
  /// networks; see Network::send).
  [[nodiscard]] std::uint64_t wire_bytes() const {
    return kEnvelopeHeaderBytes + payload.size();
  }

  /// src(4) + dst(4) + kind(4) + round(8) + payload length(8).
  static constexpr std::uint64_t kEnvelopeHeaderBytes = 28;
  /// CRC-32 trailer appended to every frame when faults are enabled.
  static constexpr std::uint64_t kCrcTrailerBytes = 4;
};

/// Convenience constructor.
inline Envelope make_envelope(NodeId src, NodeId dst, std::uint32_t kind,
                              std::uint64_t round,
                              std::vector<std::uint8_t> payload) {
  return Envelope{src, dst, kind, round, std::move(payload)};
}

}  // namespace splitmed
