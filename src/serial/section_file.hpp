// SMCKPT02 — the sectioned, integrity-checked checkpoint container.
//
// A checkpoint is a flat list of named byte sections:
//
//   magic "SMCKPT02"                                  (8 B)
//   u32 section_count
//   per section:
//     u32 name length + name bytes                    (BufferWriter::write_string)
//     u64 payload length
//     payload bytes
//     u32 CRC-32 over everything from the name length through the payload
//
// Every section is covered end-to-end by its CRC trailer, lengths are
// validated against the remaining buffer BEFORE any allocation, and the
// decoder requires the buffer to be consumed exactly — so a truncated,
// bit-flipped, length-lying, or wrong-version file always throws
// SerializationError and can never decode into a partial checkpoint.
//
// Publication is atomic: write_file() writes `<path>.tmp`, fsyncs it,
// renames it over `path`, and fsyncs the directory. A crash at any point
// leaves either the previous file or the complete new one — never a torn
// mixture (a torn file produced by a lying filesystem is still caught by
// the CRC trailers at load time).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "src/serial/buffer.hpp"

namespace splitmed {

/// One named section of an SMCKPT02 container.
struct Section {
  std::string name;
  std::vector<std::uint8_t> payload;
};

/// Writes `bytes` to `path` atomically: temp file in the same directory,
/// fsync, rename over the target, fsync the directory. Throws Error on any
/// I/O failure (the temp file is removed on failure).
void atomic_write_file(const std::string& path,
                       std::span<const std::uint8_t> bytes);

/// Builds and publishes an SMCKPT02 container.
class SectionFileWriter {
 public:
  /// Adds a section. Names must be non-empty and unique per file.
  void add(std::string name, std::vector<std::uint8_t> payload);
  /// Convenience: drains `w` into a section.
  void add(std::string name, BufferWriter&& w) { add(std::move(name), w.take()); }

  /// The full container image (magic + sections + trailers).
  [[nodiscard]] std::vector<std::uint8_t> encode() const;

  /// Atomic publication of encode() to `path` (see atomic_write_file).
  void write_file(const std::string& path) const;

 private:
  std::vector<Section> sections_;
};

/// Decodes and fully validates an SMCKPT02 container. All validation (magic,
/// version, counts, lengths, CRCs, exact consumption) happens before the
/// first section is handed out — callers never observe a partial file.
class SectionFileReader {
 public:
  /// Decodes from memory. `context` names the source in error messages.
  static SectionFileReader decode(std::span<const std::uint8_t> bytes,
                                  const std::string& context);
  /// Reads and decodes `path`. Throws Error when the file cannot be read,
  /// SerializationError when its contents are invalid.
  static SectionFileReader read_file(const std::string& path);

  [[nodiscard]] bool has(const std::string& name) const;
  /// Payload of the named section; throws SerializationError when absent.
  [[nodiscard]] const std::vector<std::uint8_t>& payload(
      const std::string& name) const;
  /// Cursor over the named section's payload.
  [[nodiscard]] BufferReader reader(const std::string& name) const;
  [[nodiscard]] const std::vector<Section>& sections() const {
    return sections_;
  }

 private:
  std::string context_;
  std::vector<Section> sections_;
};

}  // namespace splitmed
