#include "src/serial/f16.hpp"

#include "src/common/error.hpp"

namespace splitmed {

void f16_pack(std::span<const float> src, std::span<std::uint16_t> dst) {
  SPLITMED_CHECK(src.size() == dst.size(),
                 "f16_pack: " << src.size() << " floats into " << dst.size()
                              << " halves");
  for (std::size_t i = 0; i < src.size(); ++i) {
    dst[i] = f32_to_f16_bits(src[i]);
  }
}

void f16_unpack(std::span<const std::uint16_t> src, std::span<float> dst) {
  SPLITMED_CHECK(src.size() == dst.size(),
                 "f16_unpack: " << src.size() << " halves into " << dst.size()
                                << " floats");
  for (std::size_t i = 0; i < src.size(); ++i) {
    dst[i] = f16_bits_to_f32(src[i]);
  }
}

}  // namespace splitmed
