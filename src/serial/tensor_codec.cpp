#include "src/serial/tensor_codec.hpp"

#include "src/common/error.hpp"

namespace splitmed {

namespace {
// Guards against hostile/corrupt headers allocating unbounded memory.
constexpr std::uint32_t kMaxRank = 16;
constexpr std::int64_t kMaxElements = std::int64_t{1} << 32;
}  // namespace

void encode_tensor(const Tensor& t, BufferWriter& w) {
  w.write_u32(static_cast<std::uint32_t>(t.shape().rank()));
  for (const auto d : t.shape().dims()) w.write_i64(d);
  w.write_f32_span(t.data());
}

Tensor decode_tensor(BufferReader& r) {
  const std::uint32_t rank = r.read_u32();
  if (rank > kMaxRank) {
    throw SerializationError("tensor rank " + std::to_string(rank) +
                             " exceeds limit");
  }
  std::vector<std::int64_t> dims(rank);
  std::int64_t numel = 1;
  for (auto& d : dims) {
    d = r.read_i64();
    if (d < 0) throw SerializationError("negative tensor dimension");
    // Overflow-safe: reject BEFORE multiplying (a corrupt header can carry
    // dimensions whose product overflows int64).
    if (d > kMaxElements || (d != 0 && numel > kMaxElements / d)) {
      throw SerializationError("tensor payload exceeds element limit");
    }
    numel *= d;
  }
  // Validate against the actual remaining bytes BEFORE allocating — a
  // corrupt header must not trigger a giant allocation.
  if (static_cast<std::uint64_t>(numel) * 4 > r.remaining()) {
    throw SerializationError("tensor header larger than remaining payload");
  }
  Tensor t{Shape(std::move(dims))};
  r.read_f32_span(t.data());
  return t;
}

std::uint64_t encoded_tensor_bytes(const Shape& s) {
  return 4 + 8 * static_cast<std::uint64_t>(s.rank()) +
         4 * static_cast<std::uint64_t>(s.numel());
}

}  // namespace splitmed
