#include "src/serial/tensor_codec.hpp"

#include "src/common/error.hpp"

namespace splitmed {

void encode_tensor(const Tensor& t, BufferWriter& w) {
  encode_tensor_tagged(t, WireCodec::kF32, w);
}

Tensor decode_tensor(BufferReader& r) {
  TaggedTensor tagged = decode_tensor_tagged(r);
  if (tagged.codec != WireCodec::kF32) {
    throw SerializationError(std::string("expected f32 tensor frame, got ") +
                             wire_codec_name(tagged.codec));
  }
  return std::move(tagged.tensor);
}

std::uint64_t encoded_tensor_bytes(const Shape& s) {
  return encoded_tensor_bytes(s, WireCodec::kF32);
}

}  // namespace splitmed
