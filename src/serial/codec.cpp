#include "src/serial/codec.hpp"

#include <cmath>
#include <cstring>

#include "src/common/error.hpp"
#include "src/serial/f16.hpp"
#include "src/tensor/workspace.hpp"

namespace splitmed {

namespace {
// Guards against hostile/corrupt headers allocating unbounded memory.
constexpr std::uint32_t kMaxRank = 16;
constexpr std::int64_t kMaxElements = std::int64_t{1} << 32;
constexpr std::uint32_t kRankMask = 0x00FFFFFFU;

/// Round half away from zero (2.5 -> 3, -2.5 -> -3). std::nearbyint honors
/// the process FP rounding mode (round-half-to-even by default, and mutable
/// at runtime), which would make the wire bytes platform-dependent; this is
/// a fixed function of the value only.
float round_half_away(float v) {
  return std::copysign(std::floor(std::abs(v) + 0.5F), v);
}

void encode_header(const Shape& s, WireCodec codec, BufferWriter& w) {
  w.write_u32(static_cast<std::uint32_t>(s.rank()) |
              (static_cast<std::uint32_t>(codec) << 24));
  for (const auto d : s.dims()) w.write_i64(d);
}

struct Header {
  WireCodec codec;
  std::vector<std::int64_t> dims;
  std::int64_t numel;
};

Header decode_header(BufferReader& r) {
  const std::uint32_t word = r.read_u32();
  const std::uint32_t tag = word >> 24;
  const std::uint32_t rank = word & kRankMask;
  if (tag >= kWireCodecCount) {
    throw SerializationError("unknown tensor codec tag " + std::to_string(tag));
  }
  if (rank > kMaxRank) {
    throw SerializationError("tensor rank " + std::to_string(rank) +
                             " exceeds limit");
  }
  Header h;
  h.codec = static_cast<WireCodec>(tag);
  h.dims.resize(rank);
  h.numel = 1;
  for (auto& d : h.dims) {
    d = r.read_i64();
    if (d < 0) throw SerializationError("negative tensor dimension");
    // Overflow-safe: reject BEFORE multiplying (a corrupt header can carry
    // dimensions whose product overflows int64).
    if (d > kMaxElements || (d != 0 && h.numel > kMaxElements / d)) {
      throw SerializationError("tensor payload exceeds element limit");
    }
    h.numel *= d;
  }
  return h;
}

void encode_body_f16(const Tensor& t, BufferWriter& w) {
  const auto src = t.data();
  ws::WorkspaceScope scratch;
  const auto halves = scratch.u16s(static_cast<std::int64_t>(src.size()));
  f16_pack(src, halves);
  w.write_bytes({reinterpret_cast<const std::uint8_t*>(halves.data()),
                 halves.size() * 2});
}

void encode_body_i8(const Tensor& t, BufferWriter& w) {
  const auto src = t.data();
  float max_abs = 0.0F;
  for (const float v : src) {
    // A NaN/Inf element would poison max_abs and therefore scale, silently
    // producing garbage wire bytes the decoder cannot detect.
    if (!std::isfinite(v)) {
      throw SerializationError(
          "encode_tensor_i8: non-finite tensor element cannot be quantized");
    }
    max_abs = std::max(max_abs, std::abs(v));
  }
  const float scale = max_abs / 127.0F;
  w.write_f32(scale);
  const float inv = scale > 0.0F ? 1.0F / scale : 0.0F;
  ws::WorkspaceScope scratch;
  const auto q = scratch.bytes(static_cast<std::int64_t>(src.size()));
  for (std::size_t i = 0; i < src.size(); ++i) {
    const float qv = round_half_away(src[i] * inv);
    q[i] = static_cast<std::uint8_t>(
        static_cast<std::int8_t>(std::max(-127.0F, std::min(127.0F, qv))));
  }
  w.write_bytes(q);
}

Tensor decode_body_f16(Header&& h, BufferReader& r) {
  const std::uint64_t body = static_cast<std::uint64_t>(h.numel) * 2;
  // Validate against the actual remaining bytes BEFORE allocating — a
  // corrupt header must not trigger a giant allocation.
  if (body > r.remaining()) {
    throw SerializationError("tensor header larger than remaining payload");
  }
  Tensor t{Shape(std::move(h.dims))};
  const auto raw = r.read_bytes(static_cast<std::size_t>(body));
  const auto dst = t.data();
  for (std::size_t i = 0; i < dst.size(); ++i) {
    std::uint16_t half;
    std::memcpy(&half, raw.data() + 2 * i, 2);
    dst[i] = f16_bits_to_f32(half);
  }
  return t;
}

Tensor decode_body_i8(Header&& h, BufferReader& r) {
  const float scale = r.read_f32();
  if (!(scale >= 0.0F) || !std::isfinite(scale)) {
    throw SerializationError("invalid quantization scale");
  }
  // Validate the payload size before allocating (corrupt-header safety).
  if (static_cast<std::uint64_t>(h.numel) > r.remaining()) {
    throw SerializationError("tensor header larger than remaining payload");
  }
  Tensor t{Shape(std::move(h.dims))};
  const auto raw = r.read_bytes(static_cast<std::size_t>(h.numel));
  const auto dst = t.data();
  for (std::size_t i = 0; i < dst.size(); ++i) {
    dst[i] = scale * static_cast<float>(static_cast<std::int8_t>(raw[i]));
  }
  return t;
}

Tensor decode_body_f32(Header&& h, BufferReader& r) {
  if (static_cast<std::uint64_t>(h.numel) * 4 > r.remaining()) {
    throw SerializationError("tensor header larger than remaining payload");
  }
  Tensor t{Shape(std::move(h.dims))};
  r.read_f32_span(t.data());
  return t;
}

}  // namespace

const char* wire_codec_name(WireCodec codec) {
  switch (codec) {
    case WireCodec::kF32:
      return "f32";
    case WireCodec::kF16:
      return "f16";
    case WireCodec::kI8:
      return "i8";
  }
  return "unknown";
}

WireCodec parse_wire_codec(const std::string& name) {
  if (name == "f32") return WireCodec::kF32;
  if (name == "f16") return WireCodec::kF16;
  if (name == "i8") return WireCodec::kI8;
  throw InvalidArgument("unknown wire codec '" + name +
                        "' (expected f32, f16, or i8)");
}

void encode_tensor_tagged(const Tensor& t, WireCodec codec, BufferWriter& w) {
  encode_header(t.shape(), codec, w);
  switch (codec) {
    case WireCodec::kF32:
      w.write_f32_span(t.data());
      return;
    case WireCodec::kF16:
      encode_body_f16(t, w);
      return;
    case WireCodec::kI8:
      encode_body_i8(t, w);
      return;
  }
  throw SerializationError("unknown tensor codec tag " +
                           std::to_string(static_cast<unsigned>(codec)));
}

TaggedTensor decode_tensor_tagged(BufferReader& r) {
  Header h = decode_header(r);
  const WireCodec codec = h.codec;
  switch (codec) {
    case WireCodec::kF32:
      return {decode_body_f32(std::move(h), r), codec};
    case WireCodec::kF16:
      return {decode_body_f16(std::move(h), r), codec};
    case WireCodec::kI8:
      return {decode_body_i8(std::move(h), r), codec};
  }
  throw SerializationError("unknown tensor codec tag " +
                           std::to_string(static_cast<unsigned>(codec)));
}

std::uint64_t encoded_tensor_bytes(const Shape& s, WireCodec codec) {
  const std::uint64_t header =
      4 + 8 * static_cast<std::uint64_t>(s.rank());
  const auto numel = static_cast<std::uint64_t>(s.numel());
  switch (codec) {
    case WireCodec::kF32:
      return header + 4 * numel;
    case WireCodec::kF16:
      return header + 2 * numel;
    case WireCodec::kI8:
      return header + 4 + numel;
  }
  throw SerializationError("unknown tensor codec tag " +
                           std::to_string(static_cast<unsigned>(codec)));
}

}  // namespace splitmed
