// Int8 tensor quantization for the wire — the kI8 case of the tagged
// format (codec.hpp).
//
// Extension to the paper: the split protocol's traffic is dominated by the
// smashed activations and their gradients; symmetric per-tensor int8
// quantization cuts those messages ~4x at a small accuracy cost (the
// accuracy-vs-bytes frontier lives in bench/quantization). Frame layout:
// tagged header word ((kI8 << 24) | rank), dims, scale (f32), then int8
// payload — encoded_tensor_bytes(s, WireCodec::kI8) is the size authority.
#pragma once

#include "src/serial/codec.hpp"

namespace splitmed {

/// Symmetric linear quantization: q = round(x / scale), scale = max|x| / 127.
/// An all-zero tensor encodes with scale 0 and decodes to zeros. Non-finite
/// elements are rejected with SerializationError (they would poison scale).
void encode_tensor_i8(const Tensor& t, BufferWriter& w);

/// Decodes and dequantizes; throws SerializationError on malformed input or
/// on a frame tagged with any codec other than kI8.
Tensor decode_tensor_i8(BufferReader& r);

/// Exact encoded size: 4 (tag+rank word) + 8*rank (dims) + 4 (scale) +
/// numel (int8 payload). Equals encoded_tensor_bytes(s, WireCodec::kI8).
std::uint64_t encoded_tensor_i8_bytes(const Shape& s);

/// Worst-case elementwise quantization error for data of amplitude max_abs:
/// half a quantization step.
inline float quantization_step(float max_abs) { return max_abs / 127.0F; }

}  // namespace splitmed
