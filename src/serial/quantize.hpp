// Int8 tensor quantization for the wire.
//
// Extension to the paper: the split protocol's traffic is dominated by the
// smashed activations and their gradients; symmetric per-tensor int8
// quantization cuts those messages ~4x at a small accuracy cost (ablated in
// bench/quantization). Format: rank, dims, scale (f32), then int8 payload.
#pragma once

#include "src/serial/buffer.hpp"
#include "src/tensor/tensor.hpp"

namespace splitmed {

/// Symmetric linear quantization: q = round(x / scale), scale = max|x| / 127.
/// An all-zero tensor encodes with scale 0 and decodes to zeros.
void encode_tensor_i8(const Tensor& t, BufferWriter& w);

/// Decodes and dequantizes.
Tensor decode_tensor_i8(BufferReader& r);

/// Exact encoded size: 4 (rank) + 8*rank (dims) + 4 (scale) + numel bytes.
std::uint64_t encoded_tensor_i8_bytes(const Shape& s);

/// Worst-case elementwise quantization error for data of amplitude max_abs:
/// half a quantization step.
inline float quantization_step(float max_abs) { return max_abs / 127.0F; }

}  // namespace splitmed
