// CRC-32 (IEEE 802.3, reflected, polynomial 0xEDB88320) — the integrity
// trailer on Envelope wire framing when WAN fault injection is enabled.
// Detects every single-bit flip and every error burst up to 32 bits, so a
// corrupted frame is discarded at the receiver instead of being decoded
// into garbage tensors and silently trained on.
#pragma once

#include <cstdint>
#include <span>

namespace splitmed {

/// CRC-32 of `bytes`, starting from (and returning) the conventional
/// pre/post-inverted form: crc32({}) == 0.
std::uint32_t crc32(std::span<const std::uint8_t> bytes);

/// Incremental form: continue a running checksum (`seed` is a previous
/// crc32() result). crc32(ab) == crc32(b, crc32(a)).
std::uint32_t crc32(std::span<const std::uint8_t> bytes, std::uint32_t seed);

}  // namespace splitmed
