#include "src/serial/quantize.hpp"

#include "src/common/error.hpp"

namespace splitmed {

void encode_tensor_i8(const Tensor& t, BufferWriter& w) {
  encode_tensor_tagged(t, WireCodec::kI8, w);
}

Tensor decode_tensor_i8(BufferReader& r) {
  TaggedTensor tagged = decode_tensor_tagged(r);
  if (tagged.codec != WireCodec::kI8) {
    throw SerializationError(std::string("expected i8 tensor frame, got ") +
                             wire_codec_name(tagged.codec));
  }
  return std::move(tagged.tensor);
}

std::uint64_t encoded_tensor_i8_bytes(const Shape& s) {
  return encoded_tensor_bytes(s, WireCodec::kI8);
}

}  // namespace splitmed
