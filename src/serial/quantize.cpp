#include "src/serial/quantize.hpp"

#include <cmath>

#include "src/common/error.hpp"

namespace splitmed {

namespace {
constexpr std::uint32_t kMaxRank = 16;
constexpr std::int64_t kMaxElements = std::int64_t{1} << 32;

/// Round half away from zero (2.5 -> 3, -2.5 -> -3). std::nearbyint honors
/// the process FP rounding mode (round-half-to-even by default, and mutable
/// at runtime), which would make the wire bytes platform-dependent; this is
/// a fixed function of the value only.
float round_half_away(float v) {
  return std::copysign(std::floor(std::abs(v) + 0.5F), v);
}

}  // namespace

void encode_tensor_i8(const Tensor& t, BufferWriter& w) {
  w.write_u32(static_cast<std::uint32_t>(t.shape().rank()));
  for (const auto d : t.shape().dims()) w.write_i64(d);
  float max_abs = 0.0F;
  for (const float v : t.data()) {
    // A NaN/Inf element would poison max_abs and therefore scale, silently
    // producing garbage wire bytes the decoder cannot detect.
    if (!std::isfinite(v)) {
      throw SerializationError(
          "encode_tensor_i8: non-finite tensor element cannot be quantized");
    }
    max_abs = std::max(max_abs, std::abs(v));
  }
  const float scale = max_abs / 127.0F;
  w.write_f32(scale);
  const float inv = scale > 0.0F ? 1.0F / scale : 0.0F;
  for (const float v : t.data()) {
    const float q = round_half_away(v * inv);
    w.write_u8(static_cast<std::uint8_t>(
        static_cast<std::int8_t>(std::max(-127.0F, std::min(127.0F, q)))));
  }
}

Tensor decode_tensor_i8(BufferReader& r) {
  const std::uint32_t rank = r.read_u32();
  if (rank > kMaxRank) {
    throw SerializationError("quantized tensor rank exceeds limit");
  }
  std::vector<std::int64_t> dims(rank);
  std::int64_t numel = 1;
  for (auto& d : dims) {
    d = r.read_i64();
    if (d < 0) throw SerializationError("negative quantized tensor dim");
    // Overflow-safe: reject BEFORE multiplying (a corrupt header can carry
    // dimensions whose product overflows int64).
    if (d > kMaxElements || (d != 0 && numel > kMaxElements / d)) {
      throw SerializationError("quantized tensor exceeds element limit");
    }
    numel *= d;
  }
  const float scale = r.read_f32();
  if (!(scale >= 0.0F) || !std::isfinite(scale)) {
    throw SerializationError("invalid quantization scale");
  }
  // Validate the payload size before allocating (corrupt-header safety).
  if (static_cast<std::uint64_t>(numel) > r.remaining()) {
    throw SerializationError(
        "quantized tensor header larger than remaining payload");
  }
  Tensor t{Shape(std::move(dims))};
  auto d = t.data();
  for (auto& v : d) {
    v = scale * static_cast<float>(static_cast<std::int8_t>(r.read_u8()));
  }
  return t;
}

std::uint64_t encoded_tensor_i8_bytes(const Shape& s) {
  return 4 + 8 * static_cast<std::uint64_t>(s.rank()) + 4 +
         static_cast<std::uint64_t>(s.numel());
}

}  // namespace splitmed
