// Tensor wire codec: rank, dims, then raw fp32 payload.
//
// encoded_tensor_bytes() is the single source of truth for "how many bytes
// does sending this tensor cost" — used both by the real encoder and by the
// analytic communication model in models::ModelStats, so the measured and
// analytic Fig. 4 numbers can never drift apart.
#pragma once

#include "src/serial/buffer.hpp"
#include "src/tensor/tensor.hpp"

namespace splitmed {

/// Appends `t` to `w`.
void encode_tensor(const Tensor& t, BufferWriter& w);

/// Reads one tensor; throws SerializationError on malformed input.
Tensor decode_tensor(BufferReader& r);

/// Exact encoded size of a tensor of shape `s`:
/// 4 (rank) + 8*rank (dims) + 4*numel (payload).
std::uint64_t encoded_tensor_bytes(const Shape& s);

}  // namespace splitmed
