// f32 tensor wire codec — the kF32 case of the tagged format (codec.hpp).
//
// These wrappers serve the state streams (optimizer buffers, BatchNorm
// running stats, checkpoints) that are always full-precision: encode_tensor
// emits a kF32-tagged frame — bitwise identical to the untagged legacy
// format, since the kF32 tag is the always-zero high byte of the rank word —
// and decode_tensor refuses any other tag.
//
// encoded_tensor_bytes() stays the single source of truth for "how many
// bytes does sending this tensor cost" — used both by the real encoder and
// by the analytic communication model in models::ModelStats, so the measured
// and analytic Fig. 4 numbers can never drift apart.
#pragma once

#include "src/serial/codec.hpp"

namespace splitmed {

/// Appends `t` to `w` as a kF32-tagged frame.
void encode_tensor(const Tensor& t, BufferWriter& w);

/// Reads one f32 tensor; throws SerializationError on malformed input or on
/// a frame tagged with any codec other than kF32.
Tensor decode_tensor(BufferReader& r);

/// Exact encoded size of a tensor of shape `s`:
/// 4 (tag+rank word) + 8*rank (dims) + 4*numel (payload).
std::uint64_t encoded_tensor_bytes(const Shape& s);

}  // namespace splitmed
