// WireCodec — the negotiated element encoding of tensor payloads.
//
// Minimal header (no tensor/buffer dependencies) so Envelope and config
// structs can carry a codec without pulling in the codec implementation.
#pragma once

#include <cstdint>
#include <string>

namespace splitmed {

/// Element encoding of a tensor payload on the wire. Every tensor-bearing
/// payload carries its codec in the high byte of the leading header word
/// (see docs/PROTOCOL.md "Tensor payloads"); kF32's tag is 0, which keeps
/// the f32 wire byte-identical to the untagged legacy format.
///
/// kF16 (IEEE 754 binary16, round-to-nearest-even) halves the dominant
/// messages; kI8 (symmetric per-tensor int8) cuts them ~4x. Both ends of a
/// deployment must be configured identically — a frame whose tag does not
/// match the negotiated codec is a ProtocolError.
enum class WireCodec : std::uint8_t { kF32 = 0, kF16 = 1, kI8 = 2 };

/// Number of valid codec tags (tags >= this are unknown and rejected).
inline constexpr std::uint8_t kWireCodecCount = 3;

/// "f32" / "f16" / "i8" — stable names used in reports, metrics labels and
/// --codec flags.
const char* wire_codec_name(WireCodec codec);

/// Inverse of wire_codec_name; throws InvalidArgument on unknown names.
WireCodec parse_wire_codec(const std::string& name);

}  // namespace splitmed
