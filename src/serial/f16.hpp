// IEEE 754 binary16 (half precision) conversion, software bit-twiddling.
//
// The f16 wire codec needs f32<->f16 conversion that is a pure function of
// the value — no dependence on FP environment, rounding mode, or hardware
// F16C availability — so the kF16 golden curves are bitwise reproducible on
// every host. Rounding is round-to-nearest-even (the IEEE default):
// overflow beyond 65504 becomes +/-Inf, values under the f16 subnormal
// range flush to signed zero, and NaN stays NaN (quiet bit forced, payload
// truncated). Integer-only: both directions auto-vectorize.
#pragma once

#include <bit>
#include <cstdint>
#include <cstring>
#include <span>

namespace splitmed {

/// f32 -> binary16 bits, round-to-nearest-even.
inline std::uint16_t f32_to_f16_bits(float value) {
  std::uint32_t f;
  std::memcpy(&f, &value, 4);
  const auto sign = static_cast<std::uint16_t>((f >> 16) & 0x8000U);
  f &= 0x7FFFFFFFU;
  if (f >= 0x7F800000U) {  // Inf / NaN (NaN keeps a quiet-bit mantissa)
    return static_cast<std::uint16_t>(
        sign | 0x7C00U | (f > 0x7F800000U ? 0x0200U : 0U));
  }
  if (f >= 0x477FF000U) {  // rounds past 65504 (max f16) -> Inf
    return static_cast<std::uint16_t>(sign | 0x7C00U);
  }
  if (f < 0x38800000U) {  // |x| < 2^-14: f16 subnormal (or zero)
    const std::uint32_t shift = 126U - (f >> 23);
    if (shift > 24U) return sign;  // below half the smallest subnormal
    const std::uint32_t mant = (f & 0x7FFFFFU) | 0x800000U;
    const std::uint32_t q = mant >> shift;
    const std::uint32_t rem = mant & ((1U << shift) - 1U);
    const std::uint32_t halfway = 1U << (shift - 1U);
    const std::uint32_t up =
        (rem > halfway || (rem == halfway && (q & 1U))) ? 1U : 0U;
    return static_cast<std::uint16_t>(sign | (q + up));
  }
  // Normal range: rebias exponent 127 -> 15, round the 13 dropped bits.
  const std::uint32_t base = ((f >> 23) - 112U) << 10 | ((f >> 13) & 0x3FFU);
  const std::uint32_t rem = f & 0x1FFFU;
  const std::uint32_t up =
      (rem > 0x1000U || (rem == 0x1000U && (base & 1U))) ? 1U : 0U;
  // A mantissa carry propagates into the exponent correctly (and into Inf
  // only when the overflow guard above already fired).
  return static_cast<std::uint16_t>(sign | (base + up));
}

/// binary16 bits -> f32 (exact — every f16 value is representable).
inline float f16_bits_to_f32(std::uint16_t h) {
  const std::uint32_t sign = static_cast<std::uint32_t>(h & 0x8000U) << 16;
  const std::uint32_t em = h & 0x7FFFU;
  std::uint32_t f;
  if (em >= 0x7C00U) {  // Inf / NaN
    f = sign | 0x7F800000U | ((em & 0x3FFU) << 13);
  } else if (em >= 0x0400U) {  // normal: rebias 15 -> 127
    f = sign | ((em + (112U << 10)) << 13);
  } else if (em != 0) {  // subnormal: value = em * 2^-24, normalize
    const int p = 31 - std::countl_zero(em);  // MSB position, 0..9
    f = sign | (static_cast<std::uint32_t>(p + 103) << 23) |
        ((em ^ (1U << p)) << (23 - p));
  } else {  // signed zero
    f = sign;
  }
  float out;
  std::memcpy(&out, &f, 4);
  return out;
}

/// Packs `src` into `dst` (must be the same length).
void f16_pack(std::span<const float> src, std::span<std::uint16_t> dst);

/// Unpacks `src` into `dst` (must be the same length).
void f16_unpack(std::span<const std::uint16_t> src, std::span<float> dst);

}  // namespace splitmed
