// Tagged tensor wire codec: one header word carrying (codec tag, rank),
// dims, then a codec-specific body.
//
//   header u32 = (codec tag << 24) | rank      rank <= 16, tag < 3
//   dims        rank x i64
//   body        kF32: numel x f32
//               kF16: numel x binary16 (2 bytes each, RTNE from f32)
//               kI8 : scale f32, then numel x int8 (symmetric, q = x/scale)
//
// The tag rides in the always-zero high byte of the legacy rank word, so a
// kF32 frame is bitwise identical to the untagged format this repo shipped
// with — the pinned f32 golden fingerprints cannot move. encoded_tensor_bytes
// is the single source of truth for per-codec message cost: the encoders,
// the TrafficStats accounting, and ModelStats' analytic communication model
// all derive from it, so measured and analytic Fig. 4 bytes can never drift.
//
// Decoding is hostile-input safe: unknown tags, oversized ranks, negative or
// overflowing dims, and bodies larger than the remaining payload all raise
// SerializationError before any allocation. Whether a *valid* tag is the one
// a channel negotiated is the caller's policy (core::decode_tensor_payload
// raises ProtocolError on mismatch).
#pragma once

#include "src/serial/buffer.hpp"
#include "src/serial/wire_codec.hpp"
#include "src/tensor/tensor.hpp"

namespace splitmed {

/// Appends `t` to `w` under `codec`. Scratch for the f16/i8 pack runs
/// through the thread-local workspace arena — zero steady-state heap
/// allocations beyond the output buffer itself. kF16 converts with
/// round-to-nearest-even; kI8 rejects non-finite elements (they would
/// poison the scale) with SerializationError.
void encode_tensor_tagged(const Tensor& t, WireCodec codec, BufferWriter& w);

/// One decoded tensor plus the codec its frame was tagged with.
struct TaggedTensor {
  Tensor tensor;
  WireCodec codec;
};

/// Reads one tagged tensor; throws SerializationError on malformed input
/// (unknown tag, hostile header, truncated body, invalid i8 scale).
TaggedTensor decode_tensor_tagged(BufferReader& r);

/// Exact encoded size of shape `s` under `codec`:
///   kF32: 4 + 8*rank + 4*numel
///   kF16: 4 + 8*rank + 2*numel
///   kI8 : 4 + 8*rank + 4 + numel
std::uint64_t encoded_tensor_bytes(const Shape& s, WireCodec codec);

}  // namespace splitmed
