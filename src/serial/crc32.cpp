#include "src/serial/crc32.hpp"

#include <array>

namespace splitmed {

namespace {

constexpr std::uint32_t kPoly = 0xEDB88320U;

constexpr std::array<std::uint32_t, 256> make_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1U) != 0 ? kPoly ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

constexpr std::array<std::uint32_t, 256> kTable = make_table();

}  // namespace

std::uint32_t crc32(std::span<const std::uint8_t> bytes, std::uint32_t seed) {
  std::uint32_t c = ~seed;
  for (const std::uint8_t b : bytes) {
    c = kTable[(c ^ b) & 0xFFU] ^ (c >> 8);
  }
  return ~c;
}

std::uint32_t crc32(std::span<const std::uint8_t> bytes) {
  return crc32(bytes, 0);
}

}  // namespace splitmed
