#include "src/serial/section_file.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>

#include "src/common/error.hpp"
#include "src/serial/crc32.hpp"

namespace splitmed {

namespace {

constexpr char kMagic[] = "SMCKPT02";
constexpr std::size_t kMagicLen = 8;
constexpr std::size_t kVersionDigits = 2;  // trailing "02" of the magic
constexpr std::uint32_t kMaxSections = 65536;
constexpr std::uint32_t kMaxNameLen = 4096;

[[noreturn]] void throw_io(const std::string& what, const std::string& path) {
  throw Error("checkpoint: " + what + " '" + path +
              "': " + std::strerror(errno));
}

void fsync_parent_dir(const std::string& path) {
  const auto slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash == 0 ? 1 : slash);
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) throw_io("cannot open directory of", path);
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) throw_io("cannot fsync directory of", path);
}

}  // namespace

void atomic_write_file(const std::string& path,
                       std::span<const std::uint8_t> bytes) {
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) throw_io("cannot open temp file", tmp);
  std::size_t written = 0;
  while (written < bytes.size()) {
    const ssize_t n =
        ::write(fd, bytes.data() + written, bytes.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      ::unlink(tmp.c_str());
      throw_io("write failed on temp file", tmp);
    }
    written += static_cast<std::size_t>(n);
  }
  if (::fsync(fd) != 0) {
    ::close(fd);
    ::unlink(tmp.c_str());
    throw_io("fsync failed on temp file", tmp);
  }
  ::close(fd);
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    throw_io("cannot publish (rename) checkpoint file", path);
  }
  fsync_parent_dir(path);
}

void SectionFileWriter::add(std::string name,
                            std::vector<std::uint8_t> payload) {
  SPLITMED_CHECK(!name.empty(), "checkpoint section name must be non-empty");
  for (const Section& s : sections_) {
    SPLITMED_CHECK(s.name != name,
                   "duplicate checkpoint section '" << name << "'");
  }
  sections_.push_back(Section{std::move(name), std::move(payload)});
}

std::vector<std::uint8_t> SectionFileWriter::encode() const {
  BufferWriter w;
  for (std::size_t i = 0; i < kMagicLen; ++i) {
    w.write_u8(static_cast<std::uint8_t>(kMagic[i]));
  }
  w.write_u32(static_cast<std::uint32_t>(sections_.size()));
  for (const Section& s : sections_) {
    // The CRC trailer covers the whole section record (name length, name,
    // payload length, payload), so a bit flip anywhere in a section — header
    // included — fails verification at load time.
    BufferWriter section;
    section.write_string(s.name);
    section.write_u64(s.payload.size());
    const std::size_t at = section.size();
    std::vector<std::uint8_t> bytes = section.take();
    bytes.resize(at + s.payload.size());
    if (!s.payload.empty()) {
      std::memcpy(bytes.data() + at, s.payload.data(), s.payload.size());
    }
    const std::uint32_t crc = crc32({bytes.data(), bytes.size()});
    for (const std::uint8_t b : bytes) w.write_u8(b);
    w.write_u32(crc);
  }
  return w.take();
}

void SectionFileWriter::write_file(const std::string& path) const {
  const std::vector<std::uint8_t> bytes = encode();
  atomic_write_file(path, {bytes.data(), bytes.size()});
}

SectionFileReader SectionFileReader::decode(std::span<const std::uint8_t> bytes,
                                            const std::string& context) {
  SectionFileReader out;
  out.context_ = context;
  BufferReader r(bytes);
  if (r.remaining() < kMagicLen) {
    throw SerializationError("checkpoint " + context +
                             ": file too short for magic");
  }
  bool prefix_ok = true;
  for (std::size_t i = 0; i < kMagicLen - kVersionDigits; ++i) {
    if (r.read_u8() != static_cast<std::uint8_t>(kMagic[i])) prefix_ok = false;
  }
  bool version_ok = true;
  for (std::size_t i = kMagicLen - kVersionDigits; i < kMagicLen; ++i) {
    if (r.read_u8() != static_cast<std::uint8_t>(kMagic[i])) version_ok = false;
  }
  if (!prefix_ok) {
    throw SerializationError("checkpoint " + context +
                             ": bad magic (not an SMCKPT file)");
  }
  if (!version_ok) {
    throw SerializationError("checkpoint " + context +
                             ": unsupported checkpoint version (expected " +
                             std::string(kMagic) + ")");
  }
  const std::uint32_t count = r.read_u32();
  if (count > kMaxSections) {
    throw SerializationError("checkpoint " + context +
                             ": absurd section count " + std::to_string(count));
  }
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::size_t record_begin = r.pos();
    const std::uint32_t name_len = r.read_u32();
    if (name_len == 0 || name_len > kMaxNameLen) {
      throw SerializationError("checkpoint " + context +
                               ": invalid section name length " +
                               std::to_string(name_len));
    }
    if (r.remaining() < name_len) {
      throw SerializationError("checkpoint " + context +
                               ": truncated inside a section name");
    }
    std::string name(reinterpret_cast<const char*>(bytes.data() + r.pos()),
                     name_len);
    r.skip(name_len);
    const std::uint64_t payload_len = r.read_u64();
    // Validate the declared length against what is actually left BEFORE
    // allocating — a lying length field must not drive an allocation.
    if (payload_len > r.remaining() ||
        r.remaining() - payload_len < 4 /* CRC trailer */) {
      throw SerializationError(
          "checkpoint " + context + ": section '" + name + "' claims " +
          std::to_string(payload_len) + " payload bytes, only " +
          std::to_string(r.remaining()) + " remain");
    }
    std::vector<std::uint8_t> payload(
        bytes.begin() + static_cast<std::ptrdiff_t>(r.pos()),
        bytes.begin() +
            static_cast<std::ptrdiff_t>(r.pos() + payload_len));
    r.skip(static_cast<std::size_t>(payload_len));
    const std::size_t record_end = r.pos();
    const std::uint32_t stored_crc = r.read_u32();
    const std::uint32_t actual_crc = crc32(
        bytes.subspan(record_begin, record_end - record_begin));
    if (stored_crc != actual_crc) {
      throw SerializationError("checkpoint " + context + ": section '" + name +
                               "' failed its CRC-32 check (stored " +
                               std::to_string(stored_crc) + ", computed " +
                               std::to_string(actual_crc) + ")");
    }
    for (const Section& s : out.sections_) {
      if (s.name == name) {
        throw SerializationError("checkpoint " + context +
                                 ": duplicate section '" + name + "'");
      }
    }
    out.sections_.push_back(Section{std::move(name), std::move(payload)});
  }
  if (!r.exhausted()) {
    throw SerializationError("checkpoint " + context + ": " +
                             std::to_string(r.remaining()) +
                             " trailing bytes after the last section");
  }
  return out;
}

SectionFileReader SectionFileReader::read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw Error("checkpoint: cannot open '" + path + "'");
  std::vector<std::uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                                  std::istreambuf_iterator<char>());
  return decode({bytes.data(), bytes.size()}, "'" + path + "'");
}

bool SectionFileReader::has(const std::string& name) const {
  for (const Section& s : sections_) {
    if (s.name == name) return true;
  }
  return false;
}

const std::vector<std::uint8_t>& SectionFileReader::payload(
    const std::string& name) const {
  for (const Section& s : sections_) {
    if (s.name == name) return s.payload;
  }
  throw SerializationError("checkpoint " + context_ + ": missing section '" +
                           name + "'");
}

BufferReader SectionFileReader::reader(const std::string& name) const {
  const auto& p = payload(name);
  return BufferReader({p.data(), p.size()});
}

}  // namespace splitmed
