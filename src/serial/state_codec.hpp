// Byte codecs for runtime-state objects that live below the serial layer
// (so they cannot serialize themselves without a dependency cycle). Used by
// the SMCKPT02 full-state checkpoint.
#pragma once

#include "src/common/rng.hpp"
#include "src/serial/buffer.hpp"
#include "src/serial/message.hpp"

namespace splitmed {

/// Appends the generator's complete state (4 xoshiro words + Box–Muller
/// cache) to `w`. 37 bytes.
void encode_rng(const Rng& rng, BufferWriter& w);

/// Restores a generator state written by encode_rng. Throws
/// SerializationError on truncated or malformed input.
void decode_rng(BufferReader& r, Rng& rng);

/// Appends a complete envelope (routing header, payload, CRC stamp,
/// retransmit flag) to `w`. Used by the full-state checkpoint to capture
/// in-flight frames and cached replies — under WAN fault injection a round
/// boundary is NOT always quiescent (late duplicates linger), and dropping
/// such frames would fork the resumed run from the uninterrupted one.
void encode_envelope(const Envelope& envelope, BufferWriter& w);

/// Mirror of encode_envelope. The declared payload length is validated
/// against the remaining buffer BEFORE allocation. Throws SerializationError
/// on truncated or malformed input.
Envelope decode_envelope(BufferReader& r);

}  // namespace splitmed
