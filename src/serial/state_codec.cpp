#include "src/serial/state_codec.hpp"

#include "src/common/error.hpp"

namespace splitmed {

void encode_rng(const Rng& rng, BufferWriter& w) {
  const RngState st = rng.state();
  for (const std::uint64_t word : st.s) w.write_u64(word);
  w.write_f32(st.cached_normal);
  w.write_u8(st.has_cached_normal ? 1 : 0);
}

void decode_rng(BufferReader& r, Rng& rng) {
  RngState st;
  for (auto& word : st.s) word = r.read_u64();
  st.cached_normal = r.read_f32();
  const std::uint8_t flag = r.read_u8();
  if (flag > 1) {
    throw SerializationError("rng state: normal-cache flag must be 0/1, got " +
                             std::to_string(flag));
  }
  st.has_cached_normal = flag == 1;
  rng.set_state(st);
}

void encode_envelope(const Envelope& envelope, BufferWriter& w) {
  w.write_u32(envelope.src);
  w.write_u32(envelope.dst);
  w.write_u32(envelope.kind);
  w.write_u64(envelope.round);
  w.write_u64(envelope.payload.size());
  w.write_bytes(envelope.payload);
  w.write_u32(envelope.crc);
  w.write_u8(envelope.retransmit ? 1 : 0);
  w.write_u8(static_cast<std::uint8_t>(envelope.codec));
}

Envelope decode_envelope(BufferReader& r) {
  Envelope e;
  e.src = r.read_u32();
  e.dst = r.read_u32();
  e.kind = r.read_u32();
  e.round = r.read_u64();
  const std::uint64_t payload_len = r.read_u64();
  if (payload_len > r.remaining()) {
    throw SerializationError("envelope state: payload claims " +
                             std::to_string(payload_len) + " bytes, only " +
                             std::to_string(r.remaining()) + " remain");
  }
  const auto payload = r.read_bytes(static_cast<std::size_t>(payload_len));
  e.payload.assign(payload.begin(), payload.end());
  e.crc = r.read_u32();
  const std::uint8_t retransmit = r.read_u8();
  if (retransmit > 1) {
    throw SerializationError("envelope state: retransmit flag must be 0/1");
  }
  e.retransmit = retransmit == 1;
  const std::uint8_t codec = r.read_u8();
  if (codec >= kWireCodecCount) {
    throw SerializationError("envelope state: unknown codec tag " +
                             std::to_string(codec));
  }
  e.codec = static_cast<WireCodec>(codec);
  return e;
}

}  // namespace splitmed
