#include "src/serial/buffer.hpp"

#include <bit>
#include <cstring>

#include "src/common/error.hpp"

namespace splitmed {

static_assert(std::endian::native == std::endian::little,
              "splitmed wire codec assumes a little-endian host");
static_assert(sizeof(float) == 4 && sizeof(double) == 8,
              "splitmed wire codec assumes IEEE-754 float/double");

void BufferWriter::write_u8(std::uint8_t v) { buf_.push_back(v); }

void BufferWriter::write_u32(std::uint32_t v) {
  const std::size_t at = buf_.size();
  buf_.resize(at + 4);
  std::memcpy(buf_.data() + at, &v, 4);
}

void BufferWriter::write_u64(std::uint64_t v) {
  const std::size_t at = buf_.size();
  buf_.resize(at + 8);
  std::memcpy(buf_.data() + at, &v, 8);
}

void BufferWriter::write_i64(std::int64_t v) {
  write_u64(static_cast<std::uint64_t>(v));
}

void BufferWriter::write_f32(float v) {
  const std::size_t at = buf_.size();
  buf_.resize(at + 4);
  std::memcpy(buf_.data() + at, &v, 4);
}

void BufferWriter::write_f64(double v) {
  const std::size_t at = buf_.size();
  buf_.resize(at + 8);
  std::memcpy(buf_.data() + at, &v, 8);
}

void BufferWriter::write_string(const std::string& s) {
  write_u32(static_cast<std::uint32_t>(s.size()));
  const std::size_t at = buf_.size();
  buf_.resize(at + s.size());
  std::memcpy(buf_.data() + at, s.data(), s.size());
}

void BufferWriter::write_f32_span(std::span<const float> vs) {
  if (vs.empty()) return;  // empty span may carry a null data()
  const std::size_t at = buf_.size();
  buf_.resize(at + vs.size() * 4);
  std::memcpy(buf_.data() + at, vs.data(), vs.size() * 4);
}

void BufferWriter::write_bytes(std::span<const std::uint8_t> vs) {
  if (vs.empty()) return;  // empty span may carry a null data()
  const std::size_t at = buf_.size();
  buf_.resize(at + vs.size());
  std::memcpy(buf_.data() + at, vs.data(), vs.size());
}

void BufferReader::require(std::size_t n) const {
  if (remaining() < n) {
    throw SerializationError("truncated buffer: need " + std::to_string(n) +
                             " bytes, have " + std::to_string(remaining()));
  }
}

void BufferReader::skip(std::size_t n) {
  require(n);
  pos_ += n;
}

std::uint8_t BufferReader::read_u8() {
  require(1);
  return bytes_[pos_++];
}

std::uint32_t BufferReader::read_u32() {
  require(4);
  std::uint32_t v;
  std::memcpy(&v, bytes_.data() + pos_, 4);
  pos_ += 4;
  return v;
}

std::uint64_t BufferReader::read_u64() {
  require(8);
  std::uint64_t v;
  std::memcpy(&v, bytes_.data() + pos_, 8);
  pos_ += 8;
  return v;
}

std::int64_t BufferReader::read_i64() {
  return static_cast<std::int64_t>(read_u64());
}

float BufferReader::read_f32() {
  require(4);
  float v;
  std::memcpy(&v, bytes_.data() + pos_, 4);
  pos_ += 4;
  return v;
}

double BufferReader::read_f64() {
  require(8);
  double v;
  std::memcpy(&v, bytes_.data() + pos_, 8);
  pos_ += 8;
  return v;
}

std::string BufferReader::read_string() {
  const std::uint32_t n = read_u32();
  require(n);
  std::string s(reinterpret_cast<const char*>(bytes_.data() + pos_), n);
  pos_ += n;
  return s;
}

void BufferReader::read_f32_span(std::span<float> out) {
  if (out.empty()) return;  // empty span may carry a null data()
  require(out.size() * 4);
  std::memcpy(out.data(), bytes_.data() + pos_, out.size() * 4);
  pos_ += out.size() * 4;
}

std::span<const std::uint8_t> BufferReader::read_bytes(std::size_t n) {
  require(n);
  const auto view = bytes_.subspan(pos_, n);
  pos_ += n;
  return view;
}

}  // namespace splitmed
