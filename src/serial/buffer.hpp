// Binary serialization buffers.
//
// Wire format is little-endian, fixed-width, no alignment padding. These are
// the byte streams the simulated network transfers and whose sizes the
// Fig. 4 reproduction counts, so the encoding is explicit rather than
// memcpy-of-struct (which would make message size compiler-dependent).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace splitmed {

/// Append-only write buffer.
class BufferWriter {
 public:
  void write_u8(std::uint8_t v);
  void write_u32(std::uint32_t v);
  void write_u64(std::uint64_t v);
  void write_i64(std::int64_t v);
  void write_f32(float v);
  void write_f64(double v);
  void write_string(const std::string& s);
  void write_f32_span(std::span<const float> vs);
  /// Appends raw bytes (one resize + memcpy — the bulk path the tensor
  /// codecs use instead of per-byte write_u8 loops).
  void write_bytes(std::span<const std::uint8_t> vs);

  [[nodiscard]] const std::vector<std::uint8_t>& bytes() const { return buf_; }
  [[nodiscard]] std::size_t size() const { return buf_.size(); }
  std::vector<std::uint8_t> take() { return std::move(buf_); }

 private:
  std::vector<std::uint8_t> buf_;
};

/// Sequential read cursor over a byte span. Throws SerializationError on
/// truncated input — a malformed message must never produce garbage tensors.
class BufferReader {
 public:
  explicit BufferReader(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

  std::uint8_t read_u8();
  std::uint32_t read_u32();
  std::uint64_t read_u64();
  std::int64_t read_i64();
  float read_f32();
  double read_f64();
  std::string read_string();
  void read_f32_span(std::span<float> out);
  /// Returns a view of the next `n` bytes and advances past them. The view
  /// aliases the underlying buffer — consume it before that buffer moves.
  std::span<const std::uint8_t> read_bytes(std::size_t n);

  [[nodiscard]] std::size_t remaining() const { return bytes_.size() - pos_; }
  [[nodiscard]] bool exhausted() const { return remaining() == 0; }
  /// Cursor position from the start of the span (for framing that checksums
  /// a byte range, e.g. the SMCKPT02 section trailer).
  [[nodiscard]] std::size_t pos() const { return pos_; }
  /// Advances the cursor by n bytes; throws SerializationError when fewer
  /// remain.
  void skip(std::size_t n);

 private:
  void require(std::size_t n) const;

  std::span<const std::uint8_t> bytes_;
  std::size_t pos_ = 0;
};

}  // namespace splitmed
