// VGG family (Simonyan & Zisserman), adapted to small inputs as in the
// paper's CIFAR evaluation, plus a "mini" variant that is actually trainable
// on the single-core simulator while keeping VGG's defining property for the
// communication study: parameter mass concentrated in fully-connected layers.
#pragma once

#include <cstdint>

#include "src/models/model.hpp"

namespace splitmed::models {

enum class VggVariant { kVgg11, kVgg13, kVgg16, kMini };

struct VggConfig {
  VggVariant variant = VggVariant::kMini;
  std::int64_t in_channels = 3;
  std::int64_t image_size = 32;  // must be divisible by 2^(#pool stages)
  std::int64_t num_classes = 10;
  /// Hidden width of the FC head (4096 in the paper-scale variants; the mini
  /// variant defaults to 512).
  std::int64_t fc_width = 0;  // 0 = variant default
  float dropout = 0.5F;
  /// VGG-BN style: BatchNorm after every conv (faster convergence; shifts
  /// default_cut to conv+bn+relu).
  bool batch_norm = false;
  std::uint64_t seed = 1;
};

/// Builds the network. default_cut = 2 (first Conv + ReLU): the paper keeps
/// exactly the first hidden layer on the platform.
BuiltModel make_vgg(const VggConfig& config);

/// Variant name for reports ("vgg16", "vgg-mini", ...).
std::string vgg_variant_name(VggVariant variant);

}  // namespace splitmed::models
