#include "src/models/model_stats.hpp"

#include "src/common/error.hpp"
#include "src/serial/codec.hpp"
#include "src/serial/message.hpp"

namespace splitmed::models {
namespace {

/// Shape [batch, per-example dims...].
Shape with_batch(const Shape& per_example, std::int64_t batch) {
  std::vector<std::int64_t> dims = {batch};
  for (const auto d : per_example.dims()) dims.push_back(d);
  return Shape(std::move(dims));
}

std::uint64_t message_bytes(const Shape& tensor_shape,
                            WireCodec codec = WireCodec::kF32) {
  return Envelope::kEnvelopeHeaderBytes +
         encoded_tensor_bytes(tensor_shape, codec);
}

}  // namespace

ModelStats ModelStats::analyze(BuiltModel& model, std::size_t cut) {
  SPLITMED_CHECK(cut > 0 && cut < model.net.size(),
                 "cut " << cut << " must leave layers on both sides of "
                        << model.net.size());
  ModelStats s;
  s.model_name = model.name;
  s.input_chw = model.input_shape;
  s.num_classes = model.num_classes;

  const auto shapes = model.net.activation_shapes(with_batch(model.input_shape, 1));
  const Shape& at_cut = shapes[cut];
  // Strip the leading batch dim to store the per-example activation shape.
  std::vector<std::int64_t> dims(at_cut.dims().begin() + 1,
                                 at_cut.dims().end());
  s.cut_activation_chw = Shape(std::move(dims));

  for (std::size_t i = 0; i < model.net.size(); ++i) {
    const std::int64_t p = model.net.layer(i).parameter_count();
    s.total_params += p;
    if (i < cut) {
      s.platform_params += p;
    } else {
      s.server_params += p;
    }
  }
  return s;
}

ModelStats ModelStats::analyze(BuiltModel& model) {
  return analyze(model, model.default_cut);
}

std::uint64_t ModelStats::activation_message_bytes(std::int64_t batch,
                                                   WireCodec codec) const {
  SPLITMED_CHECK(batch > 0, "batch must be positive");
  return message_bytes(with_batch(cut_activation_chw, batch), codec);
}

std::uint64_t ModelStats::logits_message_bytes(std::int64_t batch) const {
  SPLITMED_CHECK(batch > 0, "batch must be positive");
  return message_bytes(Shape{batch, num_classes});
}

std::uint64_t ModelStats::parameter_message_bytes() const {
  // Parameters travel as one flat tensor — the tightest realistic encoding.
  return message_bytes(Shape{total_params});
}

std::uint64_t ModelStats::split_step_bytes(
    std::span<const std::int64_t> platform_batches, WireCodec codec) const {
  std::uint64_t total = 0;
  for (const auto s_k : platform_batches) {
    total += 2 * activation_message_bytes(s_k, codec) +
             2 * logits_message_bytes(s_k);
  }
  return total;
}

std::uint64_t ModelStats::split_step_bytes_uniform(std::int64_t total_batch,
                                                   std::int64_t num_platforms,
                                                   WireCodec codec) const {
  SPLITMED_CHECK(num_platforms > 0 && total_batch >= num_platforms,
                 "cannot split batch " << total_batch << " across "
                                       << num_platforms << " platforms");
  std::vector<std::int64_t> batches(static_cast<std::size_t>(num_platforms),
                                    total_batch / num_platforms);
  for (std::int64_t r = 0; r < total_batch % num_platforms; ++r) {
    ++batches[static_cast<std::size_t>(r)];
  }
  return split_step_bytes(batches, codec);
}

std::uint64_t ModelStats::split_epoch_bytes(std::int64_t dataset_size,
                                            std::int64_t num_platforms,
                                            std::int64_t steps_per_epoch,
                                            WireCodec codec) const {
  SPLITMED_CHECK(dataset_size > 0 && num_platforms > 0 && steps_per_epoch > 0,
                 "bad epoch parameters");
  // Payload: every example's activation crosses twice (under the negotiated
  // codec), its logit row twice (always f32).
  const std::uint64_t act_elem_bytes =
      codec == WireCodec::kF16 ? 2 : codec == WireCodec::kI8 ? 1 : 4;
  const std::uint64_t per_example =
      2 * act_elem_bytes * static_cast<std::uint64_t>(cut_activation_chw.numel()) +
      2 * 4 * static_cast<std::uint64_t>(num_classes);
  // Framing: 4 messages per platform per step; under kI8 the two
  // activation-class messages each carry a 4-byte scale.
  const std::uint64_t framing_per_message =
      Envelope::kEnvelopeHeaderBytes + 4 /*tag+rank*/ +
      8 * (1 + static_cast<std::uint64_t>(cut_activation_chw.rank()));
  const std::uint64_t scale_bytes =
      codec == WireCodec::kI8
          ? 2 * 4 * static_cast<std::uint64_t>(num_platforms * steps_per_epoch)
          : 0;
  return static_cast<std::uint64_t>(dataset_size) * per_example +
         4 * static_cast<std::uint64_t>(num_platforms * steps_per_epoch) *
             framing_per_message +
         scale_bytes;
}

std::uint64_t ModelStats::syncsgd_step_bytes(std::int64_t num_workers) const {
  SPLITMED_CHECK(num_workers > 0, "need at least one worker");
  return 2 * static_cast<std::uint64_t>(num_workers) *
         parameter_message_bytes();
}

std::uint64_t ModelStats::syncsgd_epoch_bytes(std::int64_t dataset_size,
                                              std::int64_t total_batch,
                                              std::int64_t num_workers) const {
  SPLITMED_CHECK(dataset_size > 0 && total_batch > 0, "bad epoch parameters");
  const std::int64_t steps = (dataset_size + total_batch - 1) / total_batch;
  return static_cast<std::uint64_t>(steps) * syncsgd_step_bytes(num_workers);
}

std::uint64_t ModelStats::fedavg_round_bytes(std::int64_t num_platforms) const {
  SPLITMED_CHECK(num_platforms > 0, "need at least one platform");
  return 2 * static_cast<std::uint64_t>(num_platforms) *
         parameter_message_bytes();
}

std::uint64_t ModelStats::cyclic_cycle_bytes(std::int64_t num_platforms) const {
  SPLITMED_CHECK(num_platforms > 0, "need at least one platform");
  return static_cast<std::uint64_t>(num_platforms) *
         parameter_message_bytes();
}

}  // namespace splitmed::models
