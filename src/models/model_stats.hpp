// Analytic communication model.
//
// Computes, from architecture alone (shape propagation — no training), the
// exact wire bytes each protocol moves. This powers the paper-scale Fig. 4
// rows (full VGG-16 / ResNet on CIFAR shapes, which would take GPU-weeks to
// actually train) and cross-checks the measured byte counts of the simulated
// runs — both paths share encoded_tensor_bytes() and the envelope header, so
// they cannot drift apart.
//
// Protocol byte model (per DESIGN.md):
//  split, one step, platform k with minibatch s_k — four messages:
//    1. platform->server  activations  [s_k, cut CHW]
//    2. server->platform  logits       [s_k, classes]
//    3. platform->server  logit grads  [s_k, classes]
//    4. server->platform  cut grads    [s_k, cut CHW]
//  large-scale sync SGD, one step, per worker: gradient push [P] +
//    parameter pull [P].
//  FedAvg, one round, per platform: parameter pull [P] + update push [P].
#pragma once

#include <cstdint>
#include <span>
#include <string>

#include "src/models/model.hpp"
#include "src/serial/wire_codec.hpp"

namespace splitmed::models {

struct ModelStats {
  std::string model_name;
  std::int64_t total_params = 0;
  std::int64_t platform_params = 0;  // parameters in L1 (before the cut)
  std::int64_t server_params = 0;    // parameters in L2..Lk
  Shape input_chw;                   // per-example input
  Shape cut_activation_chw;          // per-example activation at the cut
  std::int64_t num_classes = 0;

  /// Analyzes `model` cut after its first `cut` Sequential entries.
  static ModelStats analyze(BuiltModel& model, std::size_t cut);
  /// Same, using the model's default (paper-faithful) cut.
  static ModelStats analyze(BuiltModel& model);

  /// --- per-message building blocks ----------------------------------------
  /// Activation / cut-grad message under the negotiated codec (the bulky
  /// tensors the codec applies to). Logits / logit-grads are always kF32.
  [[nodiscard]] std::uint64_t activation_message_bytes(
      std::int64_t batch, WireCodec codec = WireCodec::kF32) const;
  [[nodiscard]] std::uint64_t logits_message_bytes(std::int64_t batch) const;
  [[nodiscard]] std::uint64_t parameter_message_bytes() const;

  /// --- split protocol -------------------------------------------------------
  /// One step with the given per-platform minibatch sizes (4 messages each).
  [[nodiscard]] std::uint64_t split_step_bytes(
      std::span<const std::int64_t> platform_batches,
      WireCodec codec = WireCodec::kF32) const;
  /// One step, `total_batch` split evenly across `num_platforms`.
  [[nodiscard]] std::uint64_t split_step_bytes_uniform(
      std::int64_t total_batch, std::int64_t num_platforms,
      WireCodec codec = WireCodec::kF32) const;
  /// One epoch: every one of `dataset_size` examples crosses the cut once in
  /// each direction (plus the logits round-trip).
  [[nodiscard]] std::uint64_t split_epoch_bytes(
      std::int64_t dataset_size, std::int64_t num_platforms,
      std::int64_t steps_per_epoch, WireCodec codec = WireCodec::kF32) const;

  /// --- baselines ------------------------------------------------------------
  [[nodiscard]] std::uint64_t syncsgd_step_bytes(
      std::int64_t num_workers) const;
  [[nodiscard]] std::uint64_t syncsgd_epoch_bytes(std::int64_t dataset_size,
                                                  std::int64_t total_batch,
                                                  std::int64_t num_workers) const;
  [[nodiscard]] std::uint64_t fedavg_round_bytes(
      std::int64_t num_platforms) const;
  /// Cyclic parameter sharing (paper ref [3]): one full-parameter transfer
  /// per hop, K hops per cycle around the ring.
  [[nodiscard]] std::uint64_t cyclic_cycle_bytes(
      std::int64_t num_platforms) const;
};

}  // namespace splitmed::models
