// String-keyed model factory, so benches and examples can select
// architectures from the command line.
#pragma once

#include <string>
#include <vector>

#include "src/models/model.hpp"

namespace splitmed::models {

struct FactoryConfig {
  /// One of model_names().
  std::string name = "vgg-mini";
  std::int64_t in_channels = 3;
  std::int64_t image_size = 32;
  std::int64_t num_classes = 10;
  std::uint64_t seed = 1;
};

/// Builds a model by name. Throws InvalidArgument for unknown names.
BuiltModel build_model(const FactoryConfig& config);

/// {"vgg11","vgg13","vgg16","vgg-mini","resnet18","resnet20","resnet32",
///  "resnet-mini","mlp"}.
const std::vector<std::string>& model_names();

}  // namespace splitmed::models
