#include "src/models/vgg.hpp"

#include <vector>

#include "src/common/error.hpp"
#include "src/nn/activations.hpp"
#include "src/nn/batchnorm.hpp"
#include "src/nn/conv2d.hpp"
#include "src/nn/dropout.hpp"
#include "src/nn/flatten.hpp"
#include "src/nn/linear.hpp"
#include "src/nn/pool.hpp"

namespace splitmed::models {
namespace {

// Conv plans: positive = conv to that many channels (3x3, pad 1), -1 = 2x2
// max-pool. These are the standard VGG-A/B/D tables.
std::vector<std::int64_t> conv_plan(VggVariant v) {
  switch (v) {
    case VggVariant::kVgg11:
      return {64, -1, 128, -1, 256, 256, -1, 512, 512, -1, 512, 512, -1};
    case VggVariant::kVgg13:
      return {64, 64, -1, 128, 128, -1, 256, 256, -1,
              512, 512, -1, 512, 512, -1};
    case VggVariant::kVgg16:
      return {64, 64, -1, 128, 128, -1, 256, 256, 256, -1,
              512, 512, 512, -1, 512, 512, 512, -1};
    case VggVariant::kMini:
      return {16, -1, 32, -1, 64, -1};
  }
  throw InvalidArgument("unknown VGG variant");
}

std::int64_t default_fc_width(VggVariant v) {
  return v == VggVariant::kMini ? 512 : 4096;
}

std::int64_t pool_stages(const std::vector<std::int64_t>& plan) {
  std::int64_t n = 0;
  for (const auto p : plan) {
    if (p == -1) ++n;
  }
  return n;
}

}  // namespace

std::string vgg_variant_name(VggVariant variant) {
  switch (variant) {
    case VggVariant::kVgg11: return "vgg11";
    case VggVariant::kVgg13: return "vgg13";
    case VggVariant::kVgg16: return "vgg16";
    case VggVariant::kMini: return "vgg-mini";
  }
  throw InvalidArgument("unknown VGG variant");
}

BuiltModel make_vgg(const VggConfig& config) {
  const auto plan = conv_plan(config.variant);
  const std::int64_t stages = pool_stages(plan);
  const std::int64_t divisor = std::int64_t{1} << stages;
  SPLITMED_CHECK(config.image_size % divisor == 0 &&
                     config.image_size / divisor >= 1,
                 "image size " << config.image_size << " incompatible with "
                               << stages << " pool stages");
  SPLITMED_CHECK(config.num_classes > 0 && config.in_channels > 0,
                 "bad VGG config");

  BuiltModel model;
  model.name = vgg_variant_name(config.variant);
  model.input_shape =
      Shape{config.in_channels, config.image_size, config.image_size};
  model.num_classes = config.num_classes;
  model.rng = std::make_unique<Rng>(config.seed);
  Rng& rng = *model.rng;

  std::int64_t channels = config.in_channels;
  for (const auto p : plan) {
    if (p == -1) {
      model.net.emplace<nn::MaxPool2d>(2);
    } else {
      model.net.emplace<nn::Conv2d>(channels, p, 3, 1, 1, rng);
      if (config.batch_norm) model.net.emplace<nn::BatchNorm2d>(p);
      model.net.emplace<nn::ReLU>();
      channels = p;
    }
  }
  model.net.emplace<nn::Flatten>();
  const Shape flat = model.net.output_shape(
      Shape{1, config.in_channels, config.image_size, config.image_size});
  const std::int64_t features = flat.dim(1);
  const std::int64_t fc =
      config.fc_width > 0 ? config.fc_width : default_fc_width(config.variant);
  model.net.emplace<nn::Linear>(features, fc, rng);
  model.net.emplace<nn::ReLU>();
  if (config.dropout > 0.0F) model.net.emplace<nn::Dropout>(config.dropout, rng);
  if (config.variant != VggVariant::kMini) {
    // Paper-scale head has two 4096-wide FC layers.
    model.net.emplace<nn::Linear>(fc, fc, rng);
    model.net.emplace<nn::ReLU>();
    if (config.dropout > 0.0F) {
      model.net.emplace<nn::Dropout>(config.dropout, rng);
    }
  }
  model.net.emplace<nn::Linear>(fc, config.num_classes, rng);

  // The paper's L1 = first hidden layer: the first conv + its activation
  // (+ its BN when enabled).
  model.default_cut = config.batch_norm ? 3 : 2;
  model.net.prepare_plan();
  return model;
}

}  // namespace splitmed::models
