// BuiltModel: a constructed network plus the metadata the split framework
// needs — most importantly `default_cut`, the number of leading Sequential
// entries that constitute the paper's "first hidden layer L1" (kept on the
// platform; everything after it goes to the server).
#pragma once

#include <memory>
#include <string>

#include "src/common/rng.hpp"
#include "src/nn/sequential.hpp"

namespace splitmed::models {

struct BuiltModel {
  nn::Sequential net;
  /// Leading `default_cut` Sequential entries form L1 (e.g. {Conv, ReLU}).
  std::size_t default_cut = 0;
  std::string name;
  Shape input_shape;  // per-example CHW
  std::int64_t num_classes = 0;
  /// Generator threaded into stochastic layers (Dropout); owned here so its
  /// address is stable across moves of the BuiltModel.
  std::unique_ptr<Rng> rng;
};

}  // namespace splitmed::models
