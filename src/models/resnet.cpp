#include "src/models/resnet.hpp"

#include <vector>

#include "src/common/error.hpp"
#include "src/nn/activations.hpp"
#include "src/nn/batchnorm.hpp"
#include "src/nn/conv2d.hpp"
#include "src/nn/linear.hpp"
#include "src/nn/pool.hpp"
#include "src/nn/residual.hpp"

namespace splitmed::models {
namespace {

struct Stage {
  std::int64_t channels = 0;
  std::int64_t blocks = 0;
  std::int64_t stride = 1;
};

struct Plan {
  std::int64_t stem_channels = 0;
  std::vector<Stage> stages;
};

Plan plan_for(ResNetVariant v) {
  switch (v) {
    case ResNetVariant::kResNet18:
      return {64, {{64, 2, 1}, {128, 2, 2}, {256, 2, 2}, {512, 2, 2}}};
    case ResNetVariant::kResNet20:
      return {16, {{16, 3, 1}, {32, 3, 2}, {64, 3, 2}}};
    case ResNetVariant::kResNet32:
      return {16, {{16, 5, 1}, {32, 5, 2}, {64, 5, 2}}};
    case ResNetVariant::kMini:
      return {16, {{16, 1, 1}, {32, 1, 2}, {64, 1, 2}, {128, 1, 2}}};
  }
  throw InvalidArgument("unknown ResNet variant");
}

}  // namespace

std::string resnet_variant_name(ResNetVariant variant) {
  switch (variant) {
    case ResNetVariant::kResNet18: return "resnet18";
    case ResNetVariant::kResNet20: return "resnet20";
    case ResNetVariant::kResNet32: return "resnet32";
    case ResNetVariant::kMini: return "resnet-mini";
  }
  throw InvalidArgument("unknown ResNet variant");
}

BuiltModel make_resnet(const ResNetConfig& config) {
  SPLITMED_CHECK(config.num_classes > 0 && config.in_channels > 0 &&
                     config.image_size >= 8,
                 "bad ResNet config");
  const Plan plan = plan_for(config.variant);

  BuiltModel model;
  model.name = resnet_variant_name(config.variant);
  model.input_shape =
      Shape{config.in_channels, config.image_size, config.image_size};
  model.num_classes = config.num_classes;
  model.rng = std::make_unique<Rng>(config.seed);
  Rng& rng = *model.rng;

  // CIFAR-style stem (3x3 stride 1) — the paper trains on 32x32 inputs where
  // ImageNet's 7x7/s2 stem would destroy resolution.
  model.net.emplace<nn::Conv2d>(config.in_channels, plan.stem_channels, 3, 1,
                                1, rng);
  model.net.emplace<nn::BatchNorm2d>(plan.stem_channels);
  model.net.emplace<nn::ReLU>();

  std::int64_t channels = plan.stem_channels;
  for (const Stage& stage : plan.stages) {
    for (std::int64_t b = 0; b < stage.blocks; ++b) {
      const std::int64_t stride = b == 0 ? stage.stride : 1;
      model.net.emplace<nn::ResidualBlock>(channels, stage.channels, stride,
                                           rng);
      channels = stage.channels;
    }
  }
  model.net.emplace<nn::GlobalAvgPool>();
  model.net.emplace<nn::Linear>(channels, config.num_classes, rng);

  // L1 = stem conv + BN + ReLU.
  model.default_cut = 3;
  model.net.prepare_plan();
  return model;
}

}  // namespace splitmed::models
