// Plain MLP — the smallest model the split framework supports; used by the
// quickstart example and by tests where conv depth is irrelevant.
#pragma once

#include <cstdint>
#include <vector>

#include "src/models/model.hpp"

namespace splitmed::models {

struct MlpConfig {
  Shape input_shape{3, 32, 32};  // per-example CHW (flattened internally)
  std::vector<std::int64_t> hidden = {128, 64};
  std::int64_t num_classes = 10;
  std::uint64_t seed = 1;
};

/// default_cut = 3 (Flatten + first Linear + ReLU) — the first hidden layer.
BuiltModel make_mlp(const MlpConfig& config);

}  // namespace splitmed::models
