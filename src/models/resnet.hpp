// ResNet family (He et al.): ImageNet-style ResNet-18 adapted to small
// inputs, the CIFAR-style ResNet-20/32, and a "mini" variant trainable on
// the single-core simulator (one block per stage, narrower widths — but four
// stages so parameter mass still dominates cut-activation traffic, the
// property Fig. 4 depends on).
#pragma once

#include <cstdint>

#include "src/models/model.hpp"

namespace splitmed::models {

enum class ResNetVariant { kResNet18, kResNet20, kResNet32, kMini };

struct ResNetConfig {
  ResNetVariant variant = ResNetVariant::kMini;
  std::int64_t in_channels = 3;
  std::int64_t image_size = 32;
  std::int64_t num_classes = 10;
  std::uint64_t seed = 1;
};

/// Builds the network. default_cut = 3 (Conv + BatchNorm + ReLU): the
/// paper's L1 on the platform, residual trunk + head on the server.
BuiltModel make_resnet(const ResNetConfig& config);

std::string resnet_variant_name(ResNetVariant variant);

}  // namespace splitmed::models
