#include "src/models/factory.hpp"

#include "src/common/error.hpp"
#include "src/models/mlp.hpp"
#include "src/models/resnet.hpp"
#include "src/models/vgg.hpp"

namespace splitmed::models {

const std::vector<std::string>& model_names() {
  static const std::vector<std::string> kNames = {
      "vgg11",    "vgg13",    "vgg16",    "vgg-mini",    "vgg16-bn",
      "vgg-mini-bn", "resnet18", "resnet20", "resnet32", "resnet-mini",
      "mlp"};
  return kNames;
}

BuiltModel build_model(const FactoryConfig& config) {
  const auto vgg = [&](VggVariant v, bool batch_norm = false) {
    VggConfig c;
    c.variant = v;
    c.in_channels = config.in_channels;
    c.image_size = config.image_size;
    c.num_classes = config.num_classes;
    c.batch_norm = batch_norm;
    c.seed = config.seed;
    BuiltModel m = make_vgg(c);
    if (batch_norm) m.name += "-bn";
    return m;
  };
  const auto resnet = [&](ResNetVariant v) {
    ResNetConfig c;
    c.variant = v;
    c.in_channels = config.in_channels;
    c.image_size = config.image_size;
    c.num_classes = config.num_classes;
    c.seed = config.seed;
    return make_resnet(c);
  };

  if (config.name == "vgg11") return vgg(VggVariant::kVgg11);
  if (config.name == "vgg13") return vgg(VggVariant::kVgg13);
  if (config.name == "vgg16") return vgg(VggVariant::kVgg16);
  if (config.name == "vgg-mini") return vgg(VggVariant::kMini);
  if (config.name == "vgg16-bn") return vgg(VggVariant::kVgg16, true);
  if (config.name == "vgg-mini-bn") return vgg(VggVariant::kMini, true);
  if (config.name == "resnet18") return resnet(ResNetVariant::kResNet18);
  if (config.name == "resnet20") return resnet(ResNetVariant::kResNet20);
  if (config.name == "resnet32") return resnet(ResNetVariant::kResNet32);
  if (config.name == "resnet-mini") return resnet(ResNetVariant::kMini);
  if (config.name == "mlp") {
    MlpConfig c;
    c.input_shape =
        Shape{config.in_channels, config.image_size, config.image_size};
    c.num_classes = config.num_classes;
    c.seed = config.seed;
    return make_mlp(c);
  }
  throw InvalidArgument("unknown model '" + config.name +
                        "'; see models::model_names()");
}

}  // namespace splitmed::models
