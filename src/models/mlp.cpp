#include "src/models/mlp.hpp"

#include "src/common/error.hpp"
#include "src/nn/activations.hpp"
#include "src/nn/flatten.hpp"
#include "src/nn/linear.hpp"

namespace splitmed::models {

BuiltModel make_mlp(const MlpConfig& config) {
  SPLITMED_CHECK(!config.hidden.empty(), "MLP needs at least one hidden layer");
  SPLITMED_CHECK(config.num_classes > 0, "bad class count");

  BuiltModel model;
  model.name = "mlp";
  model.input_shape = config.input_shape;
  model.num_classes = config.num_classes;
  model.rng = std::make_unique<Rng>(config.seed);
  Rng& rng = *model.rng;

  model.net.emplace<nn::Flatten>();
  std::int64_t features = config.input_shape.numel();
  for (const auto h : config.hidden) {
    model.net.emplace<nn::Linear>(features, h, rng);
    model.net.emplace<nn::ReLU>();
    features = h;
  }
  model.net.emplace<nn::Linear>(features, config.num_classes, rng);

  model.default_cut = 3;  // Flatten + Linear + ReLU
  model.net.prepare_plan();
  return model;
}

}  // namespace splitmed::models
