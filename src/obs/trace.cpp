#include "src/obs/trace.hpp"

#include <array>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <thread>
#include <unordered_map>

#include "src/common/logging.hpp"

namespace splitmed::obs {

std::string json_string(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";
  // Shortest round-trip representation, the same convention JSON emitters
  // use ("0.005", not "0.0050000000000000001").
  std::array<char, 32> buf{};
  const auto res = std::to_chars(buf.data(), buf.data() + buf.size(), v);
  return std::string(buf.data(), res.ptr);
}

TraceArg arg(std::string key, std::string_view value) {
  return TraceArg{std::move(key), json_string(value)};
}
TraceArg arg(std::string key, const char* value) {
  return arg(std::move(key), std::string_view(value));
}
TraceArg arg(std::string key, double value) {
  return TraceArg{std::move(key), json_number(value)};
}
TraceArg arg(std::string key, std::uint64_t value) {
  return TraceArg{std::move(key), std::to_string(value)};
}
TraceArg arg(std::string key, std::int64_t value) {
  return TraceArg{std::move(key), std::to_string(value)};
}
TraceArg arg(std::string key, bool value) {
  return TraceArg{std::move(key), value ? "true" : "false"};
}

TraceRecorder::TraceRecorder(std::size_t max_events)
    : max_events_(max_events), epoch_(std::chrono::steady_clock::now()) {}

void TraceRecorder::set_sim_source(std::function<double()> source) {
  const std::lock_guard<std::mutex> lock(mu_);
  sim_source_ = std::move(source);
}

double TraceRecorder::sim_now() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return sim_source_ ? sim_source_() : -1.0;
}

std::uint64_t TraceRecorder::wall_now_us() const {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

std::uint32_t TraceRecorder::thread_id() {
  // Dense per-recorder thread ids keep the exported tid values small and
  // stable across runs with identical thread arrival order. Caller holds mu_.
  const auto [it, inserted] =
      tids_.try_emplace(std::this_thread::get_id(), next_tid_);
  if (inserted) ++next_tid_;
  return it->second;
}

void TraceRecorder::record(TraceEvent event) {
  // Stamp-if-unset: spans carry their own BEGIN timestamps; instants and
  // counters arrive unstamped (wall_us == 0, sim_s < 0) and get "now".
  if (event.wall_us == 0) event.wall_us = wall_now_us();
  const std::lock_guard<std::mutex> lock(mu_);
  if (event.sim_s < 0.0 && sim_source_) event.sim_s = sim_source_();
  event.tid = thread_id();
  if (events_.size() >= max_events_) {
    ++dropped_;
    return;
  }
  events_.push_back(std::move(event));
}

void TraceRecorder::instant(std::string name, std::string cat,
                            std::vector<TraceArg> args) {
  TraceEvent ev;
  ev.ph = 'i';
  ev.name = std::move(name);
  ev.cat = std::move(cat);
  ev.args = std::move(args);
  record(std::move(ev));
}

void TraceRecorder::counter(std::string name, double value) {
  TraceEvent ev;
  ev.ph = 'C';
  ev.name = std::move(name);
  ev.cat = "counter";
  ev.args.push_back(arg("value", value));
  record(std::move(ev));
}

std::size_t TraceRecorder::size() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

std::uint64_t TraceRecorder::dropped() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

namespace {

constexpr int kWallPid = 1;
constexpr int kSimPid = 2;

void write_args_object(std::ostream& os, const TraceEvent& ev,
                       bool include_sim) {
  os << "\"args\":{";
  bool first = true;
  for (const auto& a : ev.args) {
    if (!first) os << ',';
    first = false;
    os << json_string(a.key) << ':' << a.value;
  }
  if (include_sim && ev.sim_s >= 0.0) {
    if (!first) os << ',';
    first = false;
    os << "\"sim_s\":" << json_number(ev.sim_s);
    if (ev.ph == 'X') {
      os << ",\"sim_dur_s\":" << json_number(ev.sim_dur_s);
    }
  }
  os << '}';
}

void write_chrome_event(std::ostream& os, const TraceEvent& ev, int pid) {
  // On the sim timeline (pid 2) ts/dur are simulated microseconds; on the
  // wall timeline (pid 1) they are host microseconds since recorder start.
  const bool sim = pid == kSimPid;
  const double ts = sim ? ev.sim_s * 1e6 : static_cast<double>(ev.wall_us);
  const double dur =
      sim ? ev.sim_dur_s * 1e6 : static_cast<double>(ev.wall_dur_us);
  os << "{\"ph\":\"" << ev.ph << "\",\"name\":" << json_string(ev.name)
     << ",\"cat\":" << json_string(ev.cat.empty() ? "default" : ev.cat)
     << ",\"ts\":" << json_number(ts);
  if (ev.ph == 'X') os << ",\"dur\":" << json_number(dur);
  if (ev.ph == 'i') os << ",\"s\":\"t\"";  // instant scope: thread
  if (ev.ph == 's' || ev.ph == 'f') {
    os << ",\"id\":" << ev.flow_id;
    // Binding point "enclosing slice": the finish binds to the slice under
    // the arrival timestamp, not to the next slice that happens to start.
    if (ev.ph == 'f') os << ",\"bp\":\"e\"";
  }
  os << ",\"pid\":" << pid << ",\"tid\":" << ev.tid << ',';
  write_args_object(os, ev, /*include_sim=*/!sim);
  os << '}';
}

void write_process_name(std::ostream& os, int pid, const char* name) {
  os << "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":" << pid
     << ",\"tid\":0,\"args\":{\"name\":\"" << name << "\"}}";
}

}  // namespace

void TraceRecorder::write_chrome_trace(std::ostream& os) const {
  const std::lock_guard<std::mutex> lock(mu_);
  os << "{\"traceEvents\":[\n";
  write_process_name(os, kWallPid, "wall clock");
  os << ",\n";
  write_process_name(os, kSimPid, "simulated WAN clock");
  for (const auto& ev : events_) {
    os << ",\n";
    if (ev.ph == 's' || ev.ph == 'f') {
      // Flow events appear exactly once — mirroring them would duplicate
      // the flow id, which Perfetto treats as two overlapping flows. They
      // live on the sim timeline (the clock the WAN flight ran on) unless
      // they carry no simulated timestamp at all.
      write_chrome_event(os, ev, ev.sim_s >= 0.0 ? kSimPid : kWallPid);
      continue;
    }
    write_chrome_event(os, ev, kWallPid);
    if (ev.sim_s >= 0.0 && ev.ph != 'C') {
      os << ",\n";
      write_chrome_event(os, ev, kSimPid);
    }
  }
  os << "\n],\"displayTimeUnit\":\"ms\",\"otherData\":{"
     << "\"dropped_events\":" << dropped_ << "}}\n";
}

bool TraceRecorder::write_chrome_trace(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    SPLITMED_LOG(kError) << "trace: cannot open '" << path << "' for writing";
    return false;
  }
  write_chrome_trace(out);
  return static_cast<bool>(out);
}

void TraceRecorder::write_jsonl(std::ostream& os) const {
  const std::lock_guard<std::mutex> lock(mu_);
  for (const auto& ev : events_) {
    os << "{\"ph\":\"" << ev.ph << "\",\"name\":" << json_string(ev.name)
       << ",\"cat\":" << json_string(ev.cat)
       << ",\"wall_us\":" << ev.wall_us;
    if (ev.ph == 'X') os << ",\"wall_dur_us\":" << ev.wall_dur_us;
    if (ev.sim_s >= 0.0) {
      os << ",\"sim_s\":" << json_number(ev.sim_s);
      if (ev.ph == 'X') os << ",\"sim_dur_s\":" << json_number(ev.sim_dur_s);
    }
    if (ev.ph == 's' || ev.ph == 'f') os << ",\"flow_id\":" << ev.flow_id;
    os << ",\"tid\":" << ev.tid << ',';
    write_args_object(os, ev, /*include_sim=*/false);
    os << "}\n";
  }
}

bool TraceRecorder::write_jsonl(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    SPLITMED_LOG(kError) << "trace: cannot open '" << path << "' for writing";
    return false;
  }
  write_jsonl(out);
  return static_cast<bool>(out);
}

Span::Span(TraceRecorder* recorder, std::string name, std::string cat)
    : recorder_(recorder) {
  if (recorder_ == nullptr) return;
  event_.ph = 'X';
  event_.name = std::move(name);
  event_.cat = std::move(cat);
  event_.wall_us = recorder_->wall_now_us();
  event_.sim_s = recorder_->sim_now();
}

Span::~Span() {
  if (recorder_ == nullptr) return;
  const std::uint64_t end_us = recorder_->wall_now_us();
  event_.wall_dur_us = end_us - event_.wall_us;
  if (event_.sim_s >= 0.0) {
    const double sim_end = recorder_->sim_now();
    event_.sim_dur_s = sim_end >= event_.sim_s ? sim_end - event_.sim_s : 0.0;
  }
  recorder_->record(std::move(event_));
}

}  // namespace splitmed::obs
