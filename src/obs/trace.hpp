// TraceRecorder — deterministic span/instant tracing on dual clocks.
//
// Every event carries two timestamps: host wall-clock microseconds (steady,
// relative to recorder construction) and the simulated WAN clock in seconds
// (net::SimClock, injected as a callback so this library stays below net/).
// Events export two ways:
//
//   * Chrome trace-event JSON (chrome://tracing, Perfetto): the wall-clock
//     timeline lives under pid 1; events that carry simulated time are
//     mirrored under pid 2 with ts/dur in simulated microseconds, so link
//     occupancy, retransmission storms, and delay spikes are visible on the
//     clock the protocol actually runs on.
//   * JSONL: one self-describing object per line, both clocks explicit —
//     the grep/jq-friendly form.
//
// Determinism contract: recording only READS clocks; it never draws
// randomness, never touches protocol bytes, and is disabled by a null
// recorder pointer (see obs.hpp), so an un-instrumented run is bitwise
// identical to an instrumented one in everything but its output files.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <vector>

namespace splitmed::obs {

/// Renders a string as a quoted, escaped JSON string literal.
std::string json_string(std::string_view s);

/// Renders a double as a JSON number ("null" for non-finite values, which
/// JSON cannot represent).
std::string json_number(double v);

/// One key plus a pre-rendered JSON value ("42", "\"activation\"", ...).
struct TraceArg {
  std::string key;
  std::string value;
};

/// Convenience TraceArg constructors.
TraceArg arg(std::string key, std::string_view value);
TraceArg arg(std::string key, const char* value);
TraceArg arg(std::string key, double value);
TraceArg arg(std::string key, std::uint64_t value);
TraceArg arg(std::string key, std::int64_t value);
TraceArg arg(std::string key, bool value);

/// One trace event. `ph` follows the Chrome trace-event phases actually
/// emitted here: 'X' (complete span), 'i' (instant), 'C' (counter),
/// 's'/'f' (flow start/finish — the causal edge linking a send on one node
/// timeline to its delivery on another).
struct TraceEvent {
  char ph = 'i';
  std::string name;
  std::string cat;
  std::uint64_t wall_us = 0;   // wall-clock ts, us since recorder start
  std::uint64_t wall_dur_us = 0;  // 'X' only
  double sim_s = -1.0;         // simulated seconds; < 0 = no sim timestamp
  double sim_dur_s = 0.0;      // 'X' only
  std::uint32_t tid = 0;
  /// Flow binding id, 's'/'f' only; a matching pair shares one id. Flow
  /// events are exported once, on the simulated timeline (pid 2) — the
  /// clock the WAN flight actually happened on.
  std::uint64_t flow_id = 0;
  std::vector<TraceArg> args;
};

/// Thread-safe, bounded event store. Events past `max_events` are counted
/// and dropped (newest-dropped policy keeps the run's beginning intact —
/// the part that explains how it got into trouble).
class TraceRecorder {
 public:
  explicit TraceRecorder(std::size_t max_events = 1U << 20);

  /// Injects the simulated-time source (e.g. the trainer's network clock).
  /// Events recorded with sim_s < 0 are stamped from this source; without
  /// one they simply carry no simulated timestamp.
  void set_sim_source(std::function<double()> source);

  /// Current simulated time from the injected source (-1.0 without one).
  [[nodiscard]] double sim_now() const;

  /// Microseconds of host wall-clock since recorder construction.
  [[nodiscard]] std::uint64_t wall_now_us() const;

  /// Stores one event, stamping wall_us/tid (and sim_s when unset). The
  /// canonical entry point for Span and the instrumentation sites.
  void record(TraceEvent event);

  /// Convenience: instant event stamped with both clocks now.
  void instant(std::string name, std::string cat,
               std::vector<TraceArg> args = {});

  /// Convenience: counter sample ('C' event) stamped with both clocks now.
  void counter(std::string name, double value);

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::uint64_t dropped() const;

  /// Chrome trace-event JSON (the "JSON Object Format": traceEvents array
  /// plus process-name metadata for the two clock timelines).
  void write_chrome_trace(std::ostream& os) const;
  /// Writes to `path`; returns false (and logs) on I/O failure.
  bool write_chrome_trace(const std::string& path) const;

  /// One JSON object per line; both clocks explicit on every line.
  void write_jsonl(std::ostream& os) const;
  bool write_jsonl(const std::string& path) const;

 private:
  /// Small dense id for the calling thread (1 = first thread seen).
  std::uint32_t thread_id();

  mutable std::mutex mu_;
  std::vector<TraceEvent> events_;
  std::size_t max_events_;
  std::uint64_t dropped_ = 0;
  std::chrono::steady_clock::time_point epoch_;
  std::function<double()> sim_source_;
  std::unordered_map<std::thread::id, std::uint32_t> tids_;
  std::uint32_t next_tid_ = 1;
};

/// RAII span: records a complete ('X') event covering its own lifetime.
/// Constructed against a possibly-null recorder; with null every member is
/// a no-op and no clock is read (the disabled path costs one branch).
class Span {
 public:
  Span(TraceRecorder* recorder, std::string name, std::string cat);
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Attaches an argument (no-op when disabled).
  template <typename V>
  void arg(std::string key, V value) {
    if (recorder_ != nullptr) {
      event_.args.push_back(obs::arg(std::move(key), value));
    }
  }

 private:
  TraceRecorder* recorder_;
  TraceEvent event_;
};

}  // namespace splitmed::obs
