// Process-global observability context.
//
// Instrumentation sites across the stack (net::Network, the trainers, the
// nn layers, gemm) read three global pointers — trace(), metrics(),
// flight() — that are null until an ObsSession installs them. The disabled
// path is therefore one relaxed atomic load and a branch per site: no clock
// reads, no allocation, no RNG draws, no byte changes. That is the repo's
// standing determinism contract — observability off (the default) is
// bitwise inert, and observability ON changes nothing but the output files
// (tracing only ever READS training state; asserted by golden_curve_test).
//
// Lifetime: exactly one ObsSession may be active at a time. SplitTrainer
// owns one when SplitConfig::obs.enabled is set (the usual path — benches
// just fill in SplitConfig::obs from --trace-out / --metrics-out /
// --trace-detail); tests construct sessions directly. Export happens in the
// session destructor (and on flush()), so files land even when the trainer
// dies mid-run — which is what makes the flight-recorder dump a usable
// post-mortem for the crash-injection harness.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "src/obs/flight_recorder.hpp"
#include "src/obs/metrics.hpp"
#include "src/obs/trace.hpp"

namespace splitmed::obs {

class CriticalPathAnalyzer;

/// Everything observable about one run. Defaults are all-off and inert.
struct ObsConfig {
  /// Master switch. False = every global accessor stays null.
  bool enabled = false;
  /// Chrome trace-event JSON output path ("" = don't write).
  std::string trace_path;
  /// JSONL trace output path ("" = don't write).
  std::string trace_jsonl_path;
  /// Prometheus text snapshot output path ("" = don't write).
  std::string metrics_path;
  /// 1 = protocol/trainer/network events; 2 = additionally per-layer spans
  /// inside nn::Sequential (heavier but shows where the compute time goes).
  int detail = 1;
  /// Trace event cap; past it events are counted and dropped.
  std::size_t max_trace_events = 1U << 20;
  /// Flight recorder ring size (last-N protocol events kept).
  std::size_t flight_capacity = 256;
  /// Where postmortem() and the session destructor dump the flight
  /// recorder. "" = postmortem dumps go to the error log only and the
  /// destructor does not dump.
  std::string flight_dump_path;
  /// Per-round critical-path attribution JSONL output path ("" = don't
  /// write). The CriticalPathAnalyzer itself runs whenever the session is
  /// enabled — its metric families land in the Prometheus snapshot either
  /// way — this only controls the JSONL export.
  std::string attribution_path;
};

/// Global accessors — null/false while no session is active.
[[nodiscard]] TraceRecorder* trace();
[[nodiscard]] MetricsRegistry* metrics();
[[nodiscard]] FlightRecorder* flight();
/// The per-round critical-path analyzer (src/obs/critical_path.hpp); the
/// network's receive paths feed it message waits, the trainer opens/closes
/// its rounds. Null while no session is active.
[[nodiscard]] CriticalPathAnalyzer* attribution();
/// True when a session is active AND its detail level is >= `level`.
[[nodiscard]] bool detail_at_least(int level);

/// Pre-registered hot-path counters, readable as one atomic pointer load so
/// worker threads (gemm runs inside parallel_for bodies) never touch the
/// registry mutex. Null while no session is active.
[[nodiscard]] Counter* gemm_seconds_counter();
[[nodiscard]] Counter* gemm_calls_counter();

/// Pre-registered workspace-arena gauges (src/tensor/workspace.hpp):
/// process-wide scratch bytes reserved across all thread arenas, and bytes
/// currently checked out. Same single-atomic-load discipline as the gemm
/// counters — arena checkout runs inside parallel_for bodies. Null while no
/// session is active.
[[nodiscard]] Gauge* workspace_reserved_gauge();
[[nodiscard]] Gauge* workspace_in_use_gauge();
/// Peak checked-out arena bytes since the last ws::reset_step_peak() — the
/// execution planner's peak-bytes-per-step measurement
/// (`splitmed_workspace_step_peak_bytes`). Null while no session is active.
[[nodiscard]] Gauge* workspace_step_peak_gauge();

/// Pre-registered event-queue-depth gauge (frames in flight across every
/// inbox), sampled on every EventScheduler::pump_one and at round
/// boundaries — the intra-round arrival-queue depth, not just its value at
/// the boundary. Same single-atomic-load discipline as the gemm counters.
/// Null while no session is active.
[[nodiscard]] Gauge* event_queue_depth_gauge();

/// Installs a protocol-kind pretty-namer (core::msg_kind_name, injected by
/// the trainer so this library stays below core/). Used for trace args and
/// metric labels; without one kinds render as "kind<N>".
void set_kind_namer(std::function<std::string(std::uint32_t)> namer);
/// "activation", "logits", ... or "kind<N>" without an installed namer.
[[nodiscard]] std::string kind_name(std::uint32_t kind);

/// Records the failure on every active channel: an instant trace event, an
/// error counter, a flight-recorder note, and a flight-recorder dump (to
/// the configured flight_dump_path, else to the error log). Called from
/// ProtocolError / SerializationError throw paths so a failed run leaves an
/// event log of its last moments. No-op while no session is active.
void postmortem(const std::string& reason);

/// RAII installer/exporter. Constructing with config.enabled == false is a
/// cheap no-op session (active() == false) so call sites need no branches.
class ObsSession {
 public:
  explicit ObsSession(const ObsConfig& config);
  ~ObsSession();
  ObsSession(const ObsSession&) = delete;
  ObsSession& operator=(const ObsSession&) = delete;

  [[nodiscard]] bool active() const { return installed_; }
  [[nodiscard]] const ObsConfig& config() const { return config_; }

  /// Injects the simulated-time source into the trace recorder and the
  /// flight recorder notes (normally the trainer's network clock).
  void set_sim_source(std::function<double()> source);

  /// Writes the configured trace/metrics files now (also done on
  /// destruction; flush() exists so benches can export mid-run).
  void flush();

  /// Uninstalls the global accessors, exports all configured files, and
  /// releases the single-session slot — everything the destructor does, on
  /// demand. After close() the session records nothing more (active() is
  /// false); benches use this to stop recording before unrelated work runs
  /// in the same scope. Idempotent.
  void close();

 private:
  ObsConfig config_;
  std::unique_ptr<TraceRecorder> trace_;
  std::unique_ptr<MetricsRegistry> metrics_;
  std::unique_ptr<FlightRecorder> flight_;
  std::unique_ptr<CriticalPathAnalyzer> attribution_;
  bool installed_ = false;
};

/// Flight-recorder note helper: formats and records only when the flight
/// recorder is active. `sim_s < 0` = no sim timestamp.
void flight_note(double sim_s, const std::string& what);

}  // namespace splitmed::obs
