#include "src/obs/flight_recorder.hpp"

#include <chrono>
#include <fstream>
#include <iomanip>

#include "src/common/error.hpp"
#include "src/common/logging.hpp"

namespace splitmed::obs {

FlightRecorder::FlightRecorder(std::size_t capacity)
    : capacity_(capacity), epoch_(std::chrono::steady_clock::now()) {
  SPLITMED_CHECK(capacity_ > 0, "FlightRecorder: capacity must be positive");
  ring_.reserve(capacity_);
}

void FlightRecorder::note(double sim_s, std::string what) {
  FlightEvent ev;
  ev.wall_us = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
  ev.sim_s = sim_s;
  ev.what = std::move(what);
  const std::lock_guard<std::mutex> lock(mu_);
  ev.seq = seq_++;
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(ev));
  } else {
    ring_[next_] = std::move(ev);
    next_ = (next_ + 1) % capacity_;
  }
}

std::vector<FlightEvent> FlightRecorder::snapshot() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::vector<FlightEvent> out;
  out.reserve(ring_.size());
  // Once the ring wrapped, next_ points at the oldest retained event.
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(next_ + i) % ring_.size()]);
  }
  return out;
}

std::uint64_t FlightRecorder::total_recorded() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return seq_;
}

void FlightRecorder::dump(std::ostream& os, const std::string& reason) const {
  const auto events = snapshot();
  const std::uint64_t total = total_recorded();
  os << "=== protocol flight recorder dump ===\n"
     << "reason: " << reason << "\n"
     << "events: " << events.size() << " retained of " << total
     << " recorded (capacity " << capacity_ << ")\n";
  for (const auto& ev : events) {
    os << '#' << ev.seq << " wall+" << ev.wall_us << "us";
    if (ev.sim_s >= 0.0) {
      os << " sim=" << std::fixed << std::setprecision(6) << ev.sim_s << 's'
         << std::defaultfloat;
    }
    os << "  " << ev.what << '\n';
  }
  os << "=== end of dump ===\n";
}

bool FlightRecorder::dump_to_file(const std::string& path,
                                  const std::string& reason) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    SPLITMED_LOG(kError) << "flight recorder: cannot open '" << path
                         << "' for writing";
    return false;
  }
  dump(out, reason);
  return static_cast<bool>(out);
}

}  // namespace splitmed::obs
