// Protocol flight recorder — the black box.
//
// A bounded ring buffer of the last N protocol events (sends, deliveries,
// injected faults, retransmissions, state transitions). It records
// continuously and costs one short formatted string per event; when a
// ProtocolError / SerializationError fires, or the crash-injection harness
// kills a trainer, the ring is dumped so the failed run explains itself —
// the same idea as an aircraft FDR: cheap always-on recording, read only
// after something went wrong.
//
// Events carry both clocks (host wall-clock microseconds since recorder
// start, simulated WAN seconds) and a global sequence number, so a dump can
// be correlated against the full trace when one was taken.
#pragma once

#include <chrono>
#include <cstdint>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

namespace splitmed::obs {

struct FlightEvent {
  std::uint64_t seq = 0;      // global, monotonic — gaps reveal overwrites
  std::uint64_t wall_us = 0;  // host microseconds since recorder start
  double sim_s = -1.0;        // simulated seconds; < 0 = unknown
  std::string what;           // "send activation p0->server round=3 bytes=.."
};

class FlightRecorder {
 public:
  explicit FlightRecorder(std::size_t capacity = 256);

  /// Appends one event (thread-safe). `sim_s < 0` means "no sim timestamp".
  void note(double sim_s, std::string what);

  /// Events currently held, oldest first.
  [[nodiscard]] std::vector<FlightEvent> snapshot() const;

  /// Total events ever recorded (>= snapshot().size() once wrapped).
  [[nodiscard]] std::uint64_t total_recorded() const;
  [[nodiscard]] std::size_t capacity() const { return capacity_; }

  /// Human-readable dump: a header line with `reason` and totals, then one
  /// line per retained event.
  void dump(std::ostream& os, const std::string& reason) const;

  /// Dumps to `path` (truncating); returns false (and logs) on I/O failure.
  bool dump_to_file(const std::string& path, const std::string& reason) const;

 private:
  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::vector<FlightEvent> ring_;
  std::size_t next_ = 0;      // ring write position once full
  std::uint64_t seq_ = 0;
  std::chrono::steady_clock::time_point epoch_;
};

}  // namespace splitmed::obs
