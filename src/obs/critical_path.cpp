#include "src/obs/critical_path.hpp"

#include <algorithm>
#include <fstream>

#include "src/common/logging.hpp"
#include "src/obs/obs.hpp"
#include "src/obs/trace.hpp"

namespace splitmed::obs {

namespace {

const char* const kSegmentNames[CriticalPathAnalyzer::kNumSegments] = {
    "platform_compute", "uplink",     "server_queue", "server_compute",
    "downlink",         "retransmit", "deadline_slack"};

// Round critical-path buckets: segments range from sub-millisecond link
// queueing up to multi-second delay-spiked / deadline-bounded rounds.
const std::vector<double> kSegmentBounds{0.001, 0.005, 0.01,  0.05, 0.1,
                                         0.25,  0.5,   1.0,   2.5,  5.0,
                                         10.0,  30.0};

}  // namespace

const char* CriticalPathAnalyzer::segment_name(int segment) {
  return segment >= 0 && segment < kNumSegments ? kSegmentNames[segment]
                                                : "unknown";
}

void CriticalPathAnalyzer::set_topology(std::uint32_t server_node,
                                        std::vector<std::string> node_names) {
  const std::lock_guard<std::mutex> lock(mu_);
  server_node_ = server_node;
  node_names_ = std::move(node_names);
}

void CriticalPathAnalyzer::begin_round(std::int64_t round, double now) {
  const std::lock_guard<std::mutex> lock(mu_);
  current_ = RoundRecord{};
  current_.round = round;
  current_.start_sim = now;
  attributed_ = 0.0;
  round_open_ = true;
}

void CriticalPathAnalyzer::attribute(int segment, std::uint32_t node,
                                     double seconds) {
  current_.segments[static_cast<std::size_t>(segment)] += seconds;
  current_.per_platform[node][static_cast<std::size_t>(segment)] += seconds;
  attributed_ += seconds;
}

void CriticalPathAnalyzer::observe_wait(const MsgWait& wait) {
  const std::lock_guard<std::mutex> lock(mu_);
  if (!round_open_) return;
  const double dt = wait.to - wait.from;
  if (dt <= 0.0) return;  // the frame had already arrived — no wait
  const bool reply = wait.src == server_node_;
  // The wait belongs to the step's platform: the non-server endpoint.
  const std::uint32_t owner = reply ? wait.dst : wait.src;
  if (wait.retransmit || wait.corrupt_discarded || wait.attempt > 0) {
    // Time spent waiting on a retransmitted or corrupted frame exists only
    // because the WAN faulted — all of it is recovery overhead.
    attribute(kRetransmit, owner, dt);
    return;
  }
  // Split the wait at the frame's flight start, clamped into the window
  // (overlapped flights legitimately start before the driver waits on them):
  // before it the frame was not on the wire yet — the sender's side was the
  // bottleneck — after it the WAN flight itself was.
  const double split = std::min(std::max(wait.sent_sim, wait.from), wait.to);
  const double queued = split - wait.from;
  const double flight = wait.to - split;
  if (queued > 0.0) {
    attribute(reply ? kServerQueue : kPlatformCompute, owner, queued);
  }
  if (flight > 0.0) attribute(reply ? kDownlink : kUplink, owner, flight);
}

void CriticalPathAnalyzer::note_timeout_wait(double from, double to,
                                             std::uint32_t platform_node) {
  const std::lock_guard<std::mutex> lock(mu_);
  if (!round_open_) return;
  if (to > from) attribute(kRetransmit, platform_node, to - from);
}

void CriticalPathAnalyzer::close_round(std::int64_t round, double now) {
  RoundRecord record;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    if (!round_open_ || current_.round != round) return;
    round_open_ = false;
    current_.end_sim = now;
    // Everything the driver did not spend waiting on a frame is slack. The
    // waits are disjoint sub-intervals of the round (the clock only moves
    // inside them), so the remainder is >= 0 up to rounding — clamp the
    // rounding away and the segments sum to the duration exactly.
    current_.segments[kDeadlineSlack] =
        std::max(0.0, current_.duration() - attributed_);
    for (const auto& [node, segments] : current_.per_platform) {
      double total = 0.0;
      for (const double s : segments) total += s;
      // Strict > : ties keep the earlier (lower node id) platform.
      if (!current_.has_straggler || total > current_.straggler_seconds) {
        current_.has_straggler = true;
        current_.straggler_node = node;
        current_.straggler_seconds = total;
        int dominant = 0;
        for (int s = 1; s < kNumSegments; ++s) {
          if (segments[static_cast<std::size_t>(s)] >
              segments[static_cast<std::size_t>(dominant)]) {
            dominant = s;
          }
        }
        current_.straggler_segment = dominant;
      }
    }
    records_.push_back(current_);
    record = current_;
  }
  if (MetricsRegistry* m = metrics()) {
    for (int s = 0; s < kNumSegments; ++s) {
      m->histogram("splitmed_round_critical_path_seconds",
                   "Per-round simulated time by critical-path segment",
                   kSegmentBounds, {{"segment", segment_name(s)}})
          .observe(record.segments[static_cast<std::size_t>(s)]);
    }
    if (record.has_straggler) {
      const std::uint32_t n = record.straggler_node;
      m->counter("splitmed_straggler_total",
                 "Rounds in which this platform was the critical-path "
                 "straggler, by dominant segment",
                 {{"platform", n < node_names_.size()
                                   ? node_names_[n]
                                   : "node" + std::to_string(n)},
                  {"reason", segment_name(record.straggler_segment)}})
          .inc();
    }
  }
}

std::vector<CriticalPathAnalyzer::RoundRecord> CriticalPathAnalyzer::records()
    const {
  const std::lock_guard<std::mutex> lock(mu_);
  return records_;
}

void CriticalPathAnalyzer::write_jsonl(std::ostream& os) const {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto name_of = [this](std::uint32_t node) {
    return node < node_names_.size() ? node_names_[node]
                                     : "node" + std::to_string(node);
  };
  for (const RoundRecord& r : records_) {
    os << "{\"round\":" << r.round
       << ",\"start_sim_s\":" << json_number(r.start_sim)
       << ",\"end_sim_s\":" << json_number(r.end_sim)
       << ",\"duration_s\":" << json_number(r.duration()) << ",\"segments\":{";
    for (int s = 0; s < kNumSegments; ++s) {
      if (s > 0) os << ',';
      os << json_string(segment_name(s)) << ':'
         << json_number(r.segments[static_cast<std::size_t>(s)]);
    }
    os << "},\"straggler\":";
    if (r.has_straggler) {
      os << "{\"node\":" << r.straggler_node
         << ",\"platform\":" << json_string(name_of(r.straggler_node))
         << ",\"reason\":" << json_string(segment_name(r.straggler_segment))
         << ",\"seconds\":" << json_number(r.straggler_seconds) << '}';
    } else {
      os << "null";
    }
    os << ",\"per_platform\":{";
    bool first = true;
    for (const auto& [node, segments] : r.per_platform) {
      if (!first) os << ',';
      first = false;
      os << json_string(name_of(node)) << ":{";
      for (int s = 0; s < kNumSegments; ++s) {
        if (s > 0) os << ',';
        os << json_string(segment_name(s)) << ':'
           << json_number(segments[static_cast<std::size_t>(s)]);
      }
      os << '}';
    }
    os << "}}\n";
  }
}

bool CriticalPathAnalyzer::write_jsonl(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    SPLITMED_LOG(kError) << "attribution: cannot open '" << path
                         << "' for writing";
    return false;
  }
  write_jsonl(out);
  return static_cast<bool>(out);
}

}  // namespace splitmed::obs
