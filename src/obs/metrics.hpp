// Metrics registry — counters, gauges, fixed-bucket histograms, exported in
// the Prometheus text exposition format.
//
// The registry hands out stable references: a Counter/Gauge/Histogram
// pointer obtained once stays valid for the registry's lifetime, so hot
// paths (gemm, the thread pool) update atomics without ever re-entering the
// registry mutex. Counters and gauges are lock-free (CAS loop on a double);
// histograms take a short per-instance mutex — they sit on orchestration
// paths (round timing, message latency), never inside worker loops.
//
// Exposition (write_prometheus) follows the Prometheus text format v0.0.4:
// one `# HELP` / `# TYPE` pair per family, `_bucket{le="..."}` with a
// cumulative `+Inf` bucket plus `_sum` / `_count` for histograms.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

namespace splitmed::obs {

/// Label set rendered into the sample line: {{"kind","activation"}} becomes
/// `{kind="activation"}`. Empty = unlabelled sample.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Monotonically increasing value. inc() with a negative delta throws —
/// counters only go up (use a Gauge for anything that can fall).
class Counter {
 public:
  void inc(double delta = 1.0);
  [[nodiscard]] double value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> value_{0.0};
};

/// Arbitrary settable value.
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  void add(double delta);
  [[nodiscard]] double value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram. Bounds are upper-inclusive (Prometheus `le`
/// semantics): a value v lands in the first bucket with v <= bound, and
/// every observation also lands in the implicit +Inf bucket.
class Histogram {
 public:
  /// `bounds` must be non-empty, finite, and strictly increasing.
  explicit Histogram(std::vector<double> bounds);

  void observe(double v);

  [[nodiscard]] std::uint64_t count() const;
  [[nodiscard]] double sum() const;
  /// Cumulative count of observations <= bounds()[i].
  [[nodiscard]] std::uint64_t cumulative_count(std::size_t i) const;
  [[nodiscard]] const std::vector<double>& bounds() const { return bounds_; }

 private:
  friend class MetricsRegistry;
  std::vector<double> bounds_;
  mutable std::mutex mu_;
  std::vector<std::uint64_t> bucket_counts_;  // per-bucket, NOT cumulative
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
};

/// Named metric store. Thread-safe; lookups are mutex-guarded, so cache the
/// returned reference outside any hot loop.
class MetricsRegistry {
 public:
  /// Registers (or finds) a metric. The same (name, labels) must always be
  /// requested with the same type and, for histograms, the same bounds —
  /// anything else throws InvalidArgument. Names must match the Prometheus
  /// grammar [a-zA-Z_:][a-zA-Z0-9_:]*.
  Counter& counter(const std::string& name, const std::string& help,
                   const Labels& labels = {});
  Gauge& gauge(const std::string& name, const std::string& help,
               const Labels& labels = {});
  Histogram& histogram(const std::string& name, const std::string& help,
                       const std::vector<double>& bounds,
                       const Labels& labels = {});

  [[nodiscard]] std::size_t families() const;

  void write_prometheus(std::ostream& os) const;
  /// Writes to `path`; returns false (and logs) on I/O failure.
  bool write_prometheus(const std::string& path) const;

 private:
  enum class Kind { kCounter, kGauge, kHistogram };

  struct Instance {
    Labels labels;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  struct Family {
    std::string help;
    Kind kind = Kind::kCounter;
    std::vector<double> bounds;  // histograms only
    std::vector<Instance> instances;
  };

  Family& family(const std::string& name, const std::string& help, Kind kind);
  Instance* find_instance(Family& fam, const Labels& labels);

  mutable std::mutex mu_;
  std::map<std::string, Family> families_;
};

}  // namespace splitmed::obs
