// CriticalPathAnalyzer — per-round critical-path attribution and straggler
// identification from the message waits the trainer actually experienced.
//
// The simulator is single-threaded and simulated time advances ONLY when the
// driver waits for a frame (net::Network::receive* advancing the clock to an
// arrival) or gives up on one (a recovery timeout advancing the clock to its
// deadline). Every such advancement [from, to) is therefore a disjoint
// interval of the round's simulated duration, attributable at the moment it
// occurs to the frame (or timeout) that gated the driver — which IS the
// round's critical path. Summing the attributed intervals and assigning the
// remainder to deadline slack makes the per-round segments sum to the round's
// sim duration exactly, by construction, in every schedule (sequential,
// overlapped, bounded staleness, membership).
//
// A wait on frame F with flight window [sent_sim, arrival) splits at the
// flight start: the part before F was even on the wire is queueing on the
// sender's side (server queue for replies, platform compute for requests);
// the part after is the WAN flight itself (downlink / uplink). Waits for
// retransmitted or CRC-discarded frames, and timeout advances, are
// retransmit overhead — sim time the run only spent because the WAN faulted.
//
// Layering: this library sits below serial/ and net/, so the observation API
// takes plain scalars (MsgWait), not Envelopes. Determinism: everything here
// derives from simulated-clock values on the driver thread — attribution and
// straggler identity are invariant across thread counts and repeated runs.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

namespace splitmed::obs {

/// One observed wait: the driver's clock moved [from, to) to take delivery
/// of (or discard) one frame. Plain scalars only — see the layering note.
struct MsgWait {
  double from = 0.0;      ///< clock before the advance
  double to = 0.0;        ///< clock after (the frame's arrival)
  double sent_sim = 0.0;  ///< the frame's flight start (TraceContext)
  std::uint32_t src = 0;  ///< sending node
  std::uint32_t dst = 0;  ///< receiving node
  std::uint32_t kind = 0;           ///< protocol message kind
  std::uint64_t step = 0;           ///< protocol step id (TraceContext)
  std::uint32_t attempt = 0;        ///< retransmission attempt (TraceContext)
  bool retransmit = false;          ///< protocol-level retransmission
  bool corrupt_discarded = false;   ///< CRC-failed, discarded at delivery
};

class CriticalPathAnalyzer {
 public:
  /// Where a round's simulated time went.
  enum Segment : int {
    kPlatformCompute = 0,  ///< request queued behind platform-side work
    kUplink,               ///< platform -> server WAN flight
    kServerQueue,          ///< reply queued behind server-side work
    kServerCompute,        ///< server compute (0 under the instantaneous-
                           ///< compute WAN model; kept for future models)
    kDownlink,             ///< server -> platform WAN flight
    kRetransmit,           ///< retransmissions, CRC discards, timeouts
    kDeadlineSlack,        ///< round time not spent waiting on any frame
    kNumSegments,
  };
  [[nodiscard]] static const char* segment_name(int segment);

  /// Per-round attribution record, in round order.
  struct RoundRecord {
    std::int64_t round = 0;
    double start_sim = 0.0;
    double end_sim = 0.0;
    std::array<double, kNumSegments> segments{};
    /// Per-platform attributed seconds by segment (node id keyed; ordered,
    /// so iteration — and the straggler tie-break — is deterministic).
    std::map<std::uint32_t, std::array<double, kNumSegments>> per_platform;
    bool has_straggler = false;
    std::uint32_t straggler_node = 0;   ///< node id of the slowest platform
    int straggler_segment = 0;          ///< its dominant segment
    double straggler_seconds = 0.0;     ///< its total attributed seconds
    [[nodiscard]] double duration() const { return end_sim - start_sim; }
  };

  /// Installs the star topology: the server's node id and every node's
  /// display name (indexed by node id). Called once by the trainer.
  void set_topology(std::uint32_t server_node,
                    std::vector<std::string> node_names);

  /// Opens round bookkeeping at simulated time `now`. Waits observed while
  /// no round is open (construction traffic, rejoin handshakes before the
  /// first round) are ignored.
  void begin_round(std::int64_t round, double now);

  /// Records one delivery wait (called from the network's receive paths).
  void observe_wait(const MsgWait& wait);

  /// Records a recovery-timeout advance [from, to) waiting on
  /// `platform_node` — pure retransmit overhead.
  void note_timeout_wait(double from, double to, std::uint32_t platform_node);

  /// Closes the round at simulated time `now`: assigns the unattributed
  /// remainder to deadline slack, elects the straggler (max attributed
  /// seconds; ties break to the lower node id — deterministic), emits the
  /// splitmed_round_critical_path_seconds / splitmed_straggler_total metric
  /// families, and appends the record.
  void close_round(std::int64_t round, double now);

  /// Snapshot of every closed round's record.
  [[nodiscard]] std::vector<RoundRecord> records() const;

  /// One JSON object per closed round (the attribution JSONL schema in
  /// docs/OBSERVABILITY.md).
  void write_jsonl(std::ostream& os) const;
  /// Writes to `path`; returns false (and logs) on I/O failure.
  bool write_jsonl(const std::string& path) const;

 private:
  /// Adds `seconds` to a segment, both round-wide and for `node`'s tally.
  void attribute(int segment, std::uint32_t node, double seconds);

  mutable std::mutex mu_;
  std::uint32_t server_node_ = 0;
  std::vector<std::string> node_names_;
  bool round_open_ = false;
  RoundRecord current_;
  double attributed_ = 0.0;
  std::vector<RoundRecord> records_;
};

}  // namespace splitmed::obs
