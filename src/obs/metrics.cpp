#include "src/obs/metrics.hpp"

#include <algorithm>
#include <array>
#include <charconv>
#include <cmath>
#include <fstream>
#include <sstream>

#include "src/common/error.hpp"
#include "src/common/logging.hpp"

namespace splitmed::obs {

namespace {

bool valid_metric_name(const std::string& name) {
  if (name.empty()) return false;
  const auto head = [](char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
           c == ':';
  };
  const auto tail = [&](char c) { return head(c) || (c >= '0' && c <= '9'); };
  if (!head(name.front())) return false;
  return std::all_of(name.begin() + 1, name.end(), tail);
}

bool valid_label_name(const std::string& name) {
  if (name.empty()) return false;
  const auto head = [](char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_';
  };
  const auto tail = [&](char c) { return head(c) || (c >= '0' && c <= '9'); };
  if (!head(name.front())) return false;
  return std::all_of(name.begin() + 1, name.end(), tail);
}

/// Prometheus sample value: integers render without a fractional part so
/// counters read naturally; +Inf/-Inf/NaN use the format's spellings.
std::string prom_number(double v) {
  if (std::isnan(v)) return "NaN";
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  if (v == std::floor(v) && std::abs(v) < 1e15) {
    std::ostringstream os;
    os << static_cast<long long>(v);
    return os.str();
  }
  // Shortest round-trip representation ("0.005", not
  // "0.0050000000000000001") — what Prometheus itself emits.
  std::array<char, 32> buf{};
  const auto res = std::to_chars(buf.data(), buf.data() + buf.size(), v);
  return std::string(buf.data(), res.ptr);
}

std::string escape_label_value(const std::string& v) {
  std::string out;
  out.reserve(v.size());
  for (const char c : v) {
    if (c == '\\') out += "\\\\";
    else if (c == '"') out += "\\\"";
    else if (c == '\n') out += "\\n";
    else out.push_back(c);
  }
  return out;
}

/// `{kind="activation",dir="up"}`, possibly extended with `le`.
std::string render_labels(const Labels& labels, const std::string& extra_key,
                          const std::string& extra_value) {
  if (labels.empty() && extra_key.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ',';
    first = false;
    out += k + "=\"" + escape_label_value(v) + "\"";
  }
  if (!extra_key.empty()) {
    if (!first) out += ',';
    out += extra_key + "=\"" + extra_value + "\"";
  }
  out += '}';
  return out;
}

}  // namespace

void Counter::inc(double delta) {
  SPLITMED_CHECK(delta >= 0.0,
                 "Counter::inc: counters are monotonic, got delta " << delta);
  double cur = value_.load(std::memory_order_relaxed);
  while (!value_.compare_exchange_weak(cur, cur + delta,
                                       std::memory_order_relaxed)) {
  }
}

void Gauge::add(double delta) {
  double cur = value_.load(std::memory_order_relaxed);
  while (!value_.compare_exchange_weak(cur, cur + delta,
                                       std::memory_order_relaxed)) {
  }
}

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  SPLITMED_CHECK(!bounds_.empty(), "Histogram: needs at least one bucket "
                                   "bound (+Inf is implicit)");
  for (std::size_t i = 0; i < bounds_.size(); ++i) {
    SPLITMED_CHECK(std::isfinite(bounds_[i]),
                   "Histogram: bucket bound " << i << " is not finite");
    SPLITMED_CHECK(i == 0 || bounds_[i - 1] < bounds_[i],
                   "Histogram: bucket bounds must be strictly increasing");
  }
  bucket_counts_.assign(bounds_.size(), 0);
}

void Histogram::observe(double v) {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  if (it != bounds_.end()) {
    ++bucket_counts_[static_cast<std::size_t>(it - bounds_.begin())];
  }
  ++count_;
  sum_ += v;
}

std::uint64_t Histogram::count() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return count_;
}

double Histogram::sum() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return sum_;
}

std::uint64_t Histogram::cumulative_count(std::size_t i) const {
  SPLITMED_CHECK(i < bounds_.size(), "Histogram: bucket index out of range");
  const std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t total = 0;
  for (std::size_t b = 0; b <= i; ++b) total += bucket_counts_[b];
  return total;
}

MetricsRegistry::Family& MetricsRegistry::family(const std::string& name,
                                                const std::string& help,
                                                Kind kind) {
  SPLITMED_CHECK(valid_metric_name(name),
                 "metric name '" << name << "' violates the Prometheus "
                 "grammar [a-zA-Z_:][a-zA-Z0-9_:]*");
  auto [it, inserted] = families_.try_emplace(name);
  if (inserted) {
    it->second.help = help;
    it->second.kind = kind;
  } else if (it->second.kind != kind) {
    throw InvalidArgument("metric '" + name +
                          "' re-registered with a different type");
  }
  return it->second;
}

MetricsRegistry::Instance* MetricsRegistry::find_instance(
    Family& fam, const Labels& labels) {
  for (auto& inst : fam.instances) {
    if (inst.labels == labels) return &inst;
  }
  return nullptr;
}

Counter& MetricsRegistry::counter(const std::string& name,
                                  const std::string& help,
                                  const Labels& labels) {
  for (const auto& [k, v] : labels) {
    SPLITMED_CHECK(valid_label_name(k), "invalid label name '" << k << "'");
  }
  const std::lock_guard<std::mutex> lock(mu_);
  Family& fam = family(name, help, Kind::kCounter);
  if (Instance* found = find_instance(fam, labels)) return *found->counter;
  Instance inst;
  inst.labels = labels;
  inst.counter = std::make_unique<Counter>();
  fam.instances.push_back(std::move(inst));
  return *fam.instances.back().counter;
}

Gauge& MetricsRegistry::gauge(const std::string& name, const std::string& help,
                              const Labels& labels) {
  for (const auto& [k, v] : labels) {
    SPLITMED_CHECK(valid_label_name(k), "invalid label name '" << k << "'");
  }
  const std::lock_guard<std::mutex> lock(mu_);
  Family& fam = family(name, help, Kind::kGauge);
  if (Instance* found = find_instance(fam, labels)) return *found->gauge;
  Instance inst;
  inst.labels = labels;
  inst.gauge = std::make_unique<Gauge>();
  fam.instances.push_back(std::move(inst));
  return *fam.instances.back().gauge;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      const std::string& help,
                                      const std::vector<double>& bounds,
                                      const Labels& labels) {
  for (const auto& [k, v] : labels) {
    SPLITMED_CHECK(valid_label_name(k), "invalid label name '" << k << "'");
  }
  const std::lock_guard<std::mutex> lock(mu_);
  Family& fam = family(name, help, Kind::kHistogram);
  if (fam.instances.empty()) {
    fam.bounds = bounds;
  } else if (fam.bounds != bounds) {
    throw InvalidArgument("histogram '" + name +
                          "' re-registered with different bucket bounds");
  }
  if (Instance* found = find_instance(fam, labels)) return *found->histogram;
  Instance inst;
  inst.labels = labels;
  inst.histogram = std::make_unique<Histogram>(bounds);
  fam.instances.push_back(std::move(inst));
  return *fam.instances.back().histogram;
}

std::size_t MetricsRegistry::families() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return families_.size();
}

void MetricsRegistry::write_prometheus(std::ostream& os) const {
  const std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, fam] : families_) {
    if (!fam.help.empty()) os << "# HELP " << name << ' ' << fam.help << '\n';
    os << "# TYPE " << name << ' '
       << (fam.kind == Kind::kCounter
               ? "counter"
               : fam.kind == Kind::kGauge ? "gauge" : "histogram")
       << '\n';
    for (const auto& inst : fam.instances) {
      switch (fam.kind) {
        case Kind::kCounter:
          os << name << render_labels(inst.labels, "", "") << ' '
             << prom_number(inst.counter->value()) << '\n';
          break;
        case Kind::kGauge:
          os << name << render_labels(inst.labels, "", "") << ' '
             << prom_number(inst.gauge->value()) << '\n';
          break;
        case Kind::kHistogram: {
          const Histogram& h = *inst.histogram;
          const std::uint64_t total = h.count();
          for (std::size_t b = 0; b < h.bounds().size(); ++b) {
            os << name << "_bucket"
               << render_labels(inst.labels, "le", prom_number(h.bounds()[b]))
               << ' ' << h.cumulative_count(b) << '\n';
          }
          os << name << "_bucket"
             << render_labels(inst.labels, "le", "+Inf") << ' ' << total
             << '\n';
          os << name << "_sum" << render_labels(inst.labels, "", "") << ' '
             << prom_number(h.sum()) << '\n';
          os << name << "_count" << render_labels(inst.labels, "", "") << ' '
             << total << '\n';
          break;
        }
      }
    }
  }
}

bool MetricsRegistry::write_prometheus(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    SPLITMED_LOG(kError) << "metrics: cannot open '" << path
                         << "' for writing";
    return false;
  }
  write_prometheus(out);
  return static_cast<bool>(out);
}

}  // namespace splitmed::obs
