#include "src/obs/obs.hpp"

#include <atomic>
#include <mutex>
#include <sstream>

#include "src/common/error.hpp"
#include "src/common/logging.hpp"
#include "src/obs/critical_path.hpp"

namespace splitmed::obs {

namespace {

// The installed session's pieces. Written only by ObsSession install/
// uninstall (main thread, outside parallel regions); read from anywhere,
// including pool workers — hence acquire/release atomics, which also keeps
// the TSan build honest.
std::atomic<TraceRecorder*> g_trace{nullptr};
std::atomic<MetricsRegistry*> g_metrics{nullptr};
std::atomic<FlightRecorder*> g_flight{nullptr};
std::atomic<CriticalPathAnalyzer*> g_attribution{nullptr};
std::atomic<int> g_detail{0};
std::atomic<Counter*> g_gemm_seconds{nullptr};
std::atomic<Counter*> g_gemm_calls{nullptr};
std::atomic<Gauge*> g_ws_reserved{nullptr};
std::atomic<Gauge*> g_ws_in_use{nullptr};
std::atomic<Gauge*> g_ws_step_peak{nullptr};
std::atomic<Gauge*> g_event_queue_depth{nullptr};
std::atomic<bool> g_session_active{false};

// Flight-dump destination for postmortem(); guarded by g_mu (error paths
// are not hot).
std::mutex g_mu;
std::string g_flight_dump_path;
std::function<std::string(std::uint32_t)> g_kind_namer;
std::uint64_t g_postmortems = 0;

}  // namespace

TraceRecorder* trace() { return g_trace.load(std::memory_order_acquire); }
MetricsRegistry* metrics() {
  return g_metrics.load(std::memory_order_acquire);
}
FlightRecorder* flight() { return g_flight.load(std::memory_order_acquire); }

CriticalPathAnalyzer* attribution() {
  return g_attribution.load(std::memory_order_acquire);
}

bool detail_at_least(int level) {
  return g_detail.load(std::memory_order_acquire) >= level;
}

Counter* gemm_seconds_counter() {
  return g_gemm_seconds.load(std::memory_order_acquire);
}
Counter* gemm_calls_counter() {
  return g_gemm_calls.load(std::memory_order_acquire);
}

Gauge* workspace_reserved_gauge() {
  return g_ws_reserved.load(std::memory_order_acquire);
}
Gauge* workspace_in_use_gauge() {
  return g_ws_in_use.load(std::memory_order_acquire);
}
Gauge* workspace_step_peak_gauge() {
  return g_ws_step_peak.load(std::memory_order_acquire);
}

Gauge* event_queue_depth_gauge() {
  return g_event_queue_depth.load(std::memory_order_acquire);
}

void set_kind_namer(std::function<std::string(std::uint32_t)> namer) {
  const std::lock_guard<std::mutex> lock(g_mu);
  g_kind_namer = std::move(namer);
}

std::string kind_name(std::uint32_t kind) {
  {
    const std::lock_guard<std::mutex> lock(g_mu);
    if (g_kind_namer) return g_kind_namer(kind);
  }
  return "kind" + std::to_string(kind);
}

void postmortem(const std::string& reason) {
  FlightRecorder* fr = flight();
  if (TraceRecorder* tr = trace()) {
    tr->instant("postmortem", "error", {arg("reason", reason)});
  }
  if (MetricsRegistry* m = metrics()) {
    m->counter("splitmed_postmortems_total",
               "Flight-recorder dumps triggered by protocol or "
               "serialization errors")
        .inc();
  }
  if (fr == nullptr) return;
  fr->note(-1.0, "POSTMORTEM: " + reason);
  std::string path;
  std::uint64_t n = 0;
  {
    const std::lock_guard<std::mutex> lock(g_mu);
    path = g_flight_dump_path;
    n = g_postmortems++;
  }
  if (!path.empty()) {
    // Successive failures get distinct files: first at the configured path,
    // later ones suffixed, so the dump that explains the FIRST error is
    // never overwritten by a cascade.
    if (n > 0) path += "." + std::to_string(n);
    fr->dump_to_file(path, reason);
    SPLITMED_LOG(kError) << "flight recorder dumped to '" << path << "' ("
                         << reason << ")";
  } else {
    std::ostringstream os;
    fr->dump(os, reason);
    SPLITMED_LOG(kError) << os.str();
  }
}

void flight_note(double sim_s, const std::string& what) {
  if (FlightRecorder* fr = flight()) fr->note(sim_s, what);
}

ObsSession::ObsSession(const ObsConfig& config) : config_(config) {
  if (!config_.enabled) return;
  SPLITMED_CHECK(config_.detail >= 1 && config_.detail <= 2,
                 "ObsConfig::detail must be 1 or 2, got " << config_.detail);
  SPLITMED_CHECK(!g_session_active.exchange(true),
                 "an ObsSession is already active — only one observability "
                 "session may exist at a time");
  trace_ = std::make_unique<TraceRecorder>(config_.max_trace_events);
  metrics_ = std::make_unique<MetricsRegistry>();
  flight_ = std::make_unique<FlightRecorder>(config_.flight_capacity);
  // The analyzer runs whenever the session does (it only reads sim-clock
  // values the network hands it), so the inertness tests cover it and its
  // metric families land in every snapshot, JSONL export or not.
  attribution_ = std::make_unique<CriticalPathAnalyzer>();
  {
    const std::lock_guard<std::mutex> lock(g_mu);
    g_flight_dump_path = config_.flight_dump_path;
    g_postmortems = 0;
  }
  // Pre-register the hot-path counters before publishing the registry so a
  // worker can never observe the registry without them.
  g_gemm_seconds.store(
      &metrics_->counter("splitmed_gemm_seconds_total",
                         "Wall-clock seconds spent inside gemm kernels"),
      std::memory_order_release);
  g_gemm_calls.store(&metrics_->counter("splitmed_gemm_calls_total",
                                        "Number of gemm kernel invocations"),
                     std::memory_order_release);
  g_ws_reserved.store(
      &metrics_->gauge("splitmed_workspace_reserved_bytes",
                       "Workspace-arena bytes reserved across all threads"),
      std::memory_order_release);
  g_ws_in_use.store(
      &metrics_->gauge("splitmed_workspace_in_use_bytes",
                       "Workspace-arena bytes currently checked out"),
      std::memory_order_release);
  g_ws_step_peak.store(
      &metrics_->gauge("splitmed_workspace_step_peak_bytes",
                       "Peak workspace-arena bytes checked out since the "
                       "last step-peak reset"),
      std::memory_order_release);
  g_event_queue_depth.store(
      &metrics_->gauge("splitmed_event_queue_depth",
                       "Frames in flight across every inbox (sampled on "
                       "every scheduler pump and at round boundaries)"),
      std::memory_order_release);
  g_detail.store(config_.detail, std::memory_order_release);
  g_attribution.store(attribution_.get(), std::memory_order_release);
  g_flight.store(flight_.get(), std::memory_order_release);
  g_metrics.store(metrics_.get(), std::memory_order_release);
  g_trace.store(trace_.get(), std::memory_order_release);
  installed_ = true;
}

void ObsSession::set_sim_source(std::function<double()> source) {
  if (trace_) trace_->set_sim_source(std::move(source));
}

void ObsSession::flush() {
  if (!installed_) return;
  if (!config_.trace_path.empty()) {
    trace_->write_chrome_trace(config_.trace_path);
  }
  if (!config_.trace_jsonl_path.empty()) {
    trace_->write_jsonl(config_.trace_jsonl_path);
  }
  if (!config_.metrics_path.empty()) {
    metrics_->write_prometheus(config_.metrics_path);
  }
  if (!config_.attribution_path.empty()) {
    attribution_->write_jsonl(config_.attribution_path);
  }
}

ObsSession::~ObsSession() { close(); }

void ObsSession::close() {
  if (!installed_) return;
  // Unpublish before exporting/destroying (readers may race the export but
  // never the teardown: instrumentation runs on threads this process joins
  // before any trainer teardown begins).
  g_trace.store(nullptr, std::memory_order_release);
  g_metrics.store(nullptr, std::memory_order_release);
  g_flight.store(nullptr, std::memory_order_release);
  g_attribution.store(nullptr, std::memory_order_release);
  g_gemm_seconds.store(nullptr, std::memory_order_release);
  g_gemm_calls.store(nullptr, std::memory_order_release);
  g_ws_reserved.store(nullptr, std::memory_order_release);
  g_ws_in_use.store(nullptr, std::memory_order_release);
  g_ws_step_peak.store(nullptr, std::memory_order_release);
  g_event_queue_depth.store(nullptr, std::memory_order_release);
  g_detail.store(0, std::memory_order_release);
  flush();
  // The black box lands on EVERY exit when a dump path is configured: a
  // "kill" (trainer destruction mid-experiment) then leaves its post-mortem
  // event log behind without anyone having had a chance to ask for it. An
  // error-triggered postmortem() already wrote a more precise dump to the
  // same path — don't overwrite it with the exit snapshot.
  {
    const std::lock_guard<std::mutex> lock(g_mu);
    if (!config_.flight_dump_path.empty() && g_postmortems == 0) {
      flight_->dump_to_file(config_.flight_dump_path,
                            "session exit (last protocol events)");
    }
    g_flight_dump_path.clear();
  }
  installed_ = false;
  g_session_active.store(false, std::memory_order_release);
}

}  // namespace splitmed::obs
