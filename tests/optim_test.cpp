// Tests for optim/: SGD variants, Adam, lr schedules, convergence property.
#include <gtest/gtest.h>

#include <cmath>

#include "src/common/error.hpp"
#include "src/common/rng.hpp"
#include "src/nn/activations.hpp"
#include "src/nn/conv2d.hpp"
#include "src/nn/flatten.hpp"
#include "src/nn/linear.hpp"
#include "src/nn/loss.hpp"
#include "src/nn/parameter.hpp"
#include "src/nn/sequential.hpp"
#include "src/optim/adam.hpp"
#include "src/optim/lr_schedule.hpp"
#include "src/optim/sgd.hpp"

namespace splitmed {
namespace {

nn::Parameter make_param(std::vector<float> value) {
  const auto n = static_cast<std::int64_t>(value.size());
  return nn::Parameter("p", Tensor(Shape{n}, std::move(value)));
}

TEST(Sgd, PlainStep) {
  nn::Parameter p = make_param({1.0F, 2.0F});
  p.grad = Tensor(Shape{2}, {0.5F, -1.0F});
  optim::Sgd opt({&p}, {.learning_rate = 0.1F});
  opt.step();
  EXPECT_FLOAT_EQ(p.value[0], 0.95F);
  EXPECT_FLOAT_EQ(p.value[1], 2.1F);
}

TEST(Sgd, StepDoesNotClearGradients) {
  nn::Parameter p = make_param({1.0F});
  p.grad = Tensor(Shape{1}, {1.0F});
  optim::Sgd opt({&p}, {.learning_rate = 0.1F});
  opt.step();
  EXPECT_FLOAT_EQ(p.grad[0], 1.0F);
  opt.zero_grad();
  EXPECT_FLOAT_EQ(p.grad[0], 0.0F);
}

TEST(Sgd, MomentumAccumulates) {
  nn::Parameter p = make_param({0.0F});
  optim::Sgd opt({&p}, {.learning_rate = 1.0F, .momentum = 0.9F});
  p.grad = Tensor(Shape{1}, {1.0F});
  opt.step();  // v=1, p=-1
  EXPECT_FLOAT_EQ(p.value[0], -1.0F);
  p.grad = Tensor(Shape{1}, {1.0F});
  opt.step();  // v=1.9, p=-2.9
  EXPECT_FLOAT_EQ(p.value[0], -2.9F);
}

TEST(Sgd, WeightDecayAddsL2Pull) {
  nn::Parameter p = make_param({2.0F});
  p.grad = Tensor(Shape{1}, {0.0F});
  optim::Sgd opt({&p}, {.learning_rate = 0.5F, .weight_decay = 0.1F});
  opt.step();
  EXPECT_FLOAT_EQ(p.value[0], 2.0F - 0.5F * 0.2F);
}

TEST(Sgd, NesterovDiffersFromHeavyBall) {
  nn::Parameter a = make_param({0.0F});
  nn::Parameter b = make_param({0.0F});
  optim::Sgd heavy({&a}, {.learning_rate = 1.0F, .momentum = 0.9F});
  optim::Sgd nesterov(
      {&b}, {.learning_rate = 1.0F, .momentum = 0.9F, .nesterov = true});
  for (int i = 0; i < 2; ++i) {
    a.grad = Tensor(Shape{1}, {1.0F});
    b.grad = Tensor(Shape{1}, {1.0F});
    heavy.step();
    nesterov.step();
  }
  EXPECT_NE(a.value[0], b.value[0]);
}

TEST(Sgd, ValidatesOptions) {
  nn::Parameter p = make_param({0.0F});
  EXPECT_THROW(optim::Sgd({&p}, {.learning_rate = 0.0F}), InvalidArgument);
  EXPECT_THROW(optim::Sgd({&p}, {.learning_rate = 0.1F, .momentum = 1.0F}),
               InvalidArgument);
  EXPECT_THROW(
      optim::Sgd({&p}, {.learning_rate = 0.1F, .nesterov = true}),
      InvalidArgument);
}

TEST(Sgd, ConvergesOnQuadratic) {
  // minimize f(x) = 0.5*(x-3)^2; grad = x-3.
  nn::Parameter p = make_param({10.0F});
  optim::Sgd opt({&p}, {.learning_rate = 0.1F, .momentum = 0.5F});
  for (int i = 0; i < 200; ++i) {
    p.grad = Tensor(Shape{1}, {p.value[0] - 3.0F});
    opt.step();
  }
  EXPECT_NEAR(p.value[0], 3.0F, 1e-3F);
}

TEST(Adam, FirstStepMovesByLearningRate) {
  nn::Parameter p = make_param({0.0F});
  optim::Adam opt({&p}, {.learning_rate = 0.1F});
  p.grad = Tensor(Shape{1}, {123.0F});
  opt.step();
  // Bias-corrected Adam's first step is ~lr regardless of gradient scale.
  EXPECT_NEAR(p.value[0], -0.1F, 1e-4F);
}

TEST(Adam, ConvergesOnQuadratic) {
  nn::Parameter p = make_param({-5.0F});
  optim::Adam opt({&p}, {.learning_rate = 0.2F});
  for (int i = 0; i < 400; ++i) {
    p.grad = Tensor(Shape{1}, {p.value[0] - 1.5F});
    opt.step();
  }
  EXPECT_NEAR(p.value[0], 1.5F, 1e-2F);
}

TEST(Adam, ValidatesOptions) {
  nn::Parameter p = make_param({0.0F});
  EXPECT_THROW(optim::Adam({&p}, {.learning_rate = -1.0F}), InvalidArgument);
  EXPECT_THROW(optim::Adam({&p}, {.learning_rate = 0.1F, .beta1 = 1.0F}),
               InvalidArgument);
}


TEST(Optim, AdamTrainsASmallConvNet) {
  // End-to-end: Adam on a tiny conv net fits a 4-example batch exactly.
  Rng rng(42);
  nn::Sequential net;
  net.emplace<nn::Conv2d>(1, 4, 3, 1, 1, rng);
  net.emplace<nn::ReLU>();
  net.emplace<nn::Flatten>();
  net.emplace<nn::Linear>(4 * 4 * 4, 2, rng);
  optim::Adam opt(net.parameters(), {.learning_rate = 0.01F});
  Rng xr(1);
  const Tensor x = Tensor::normal(Shape{4, 1, 4, 4}, xr);
  const std::vector<std::int64_t> labels = {0, 1, 0, 1};
  nn::SoftmaxCrossEntropy loss;
  float final_loss = 0.0F;
  for (int i = 0; i < 150; ++i) {
    opt.zero_grad();
    final_loss = loss.forward(net.forward(x, true), labels);
    net.backward(loss.backward());
    opt.step();
  }
  EXPECT_LT(final_loss, 0.05F);
}

TEST(LrSchedule, Constant) {
  const auto s = optim::constant_lr(0.05F);
  EXPECT_FLOAT_EQ(s(0), 0.05F);
  EXPECT_FLOAT_EQ(s(100), 0.05F);
}

TEST(LrSchedule, StepDecay) {
  const auto s = optim::step_lr(1.0F, 10, 0.1F);
  EXPECT_FLOAT_EQ(s(0), 1.0F);
  EXPECT_FLOAT_EQ(s(9), 1.0F);
  EXPECT_FLOAT_EQ(s(10), 0.1F);
  EXPECT_NEAR(s(25), 0.01F, 1e-6F);
}

TEST(LrSchedule, CosineEndpoints) {
  const auto s = optim::cosine_lr(1.0F, 0.0F, 100);
  EXPECT_NEAR(s(0), 1.0F, 1e-5F);
  EXPECT_NEAR(s(50), 0.5F, 1e-5F);
  EXPECT_NEAR(s(100), 0.0F, 1e-5F);
  EXPECT_NEAR(s(200), 0.0F, 1e-5F);  // clamped past the horizon
}

TEST(LrSchedule, ValidatesArguments) {
  EXPECT_THROW(optim::constant_lr(0.0F), InvalidArgument);
  EXPECT_THROW(optim::step_lr(0.1F, 0, 0.5F), InvalidArgument);
  EXPECT_THROW(optim::cosine_lr(0.1F, 0.2F, 10), InvalidArgument);
}

}  // namespace
}  // namespace splitmed
