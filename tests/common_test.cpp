// Tests for src/common: rng, error macros, formatting, csv, table, logging.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "src/common/csv.hpp"
#include "src/common/error.hpp"
#include "src/common/flags.hpp"
#include "src/common/format.hpp"
#include "src/common/logging.hpp"
#include "src/common/rng.hpp"
#include "src/common/table.hpp"

namespace splitmed {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const float u = rng.uniform();
    EXPECT_GE(u, 0.0F);
    EXPECT_LT(u, 1.0F);
    const float v = rng.uniform(-2.0F, 3.0F);
    EXPECT_GE(v, -2.0F);
    EXPECT_LT(v, 3.0F);
  }
}

TEST(Rng, UniformU64Unbiased) {
  Rng rng(3);
  // Mean of uniform over [0, 10) across many draws should be near 4.5.
  double acc = 0.0;
  constexpr int kDraws = 20000;
  for (int i = 0; i < kDraws; ++i) {
    acc += static_cast<double>(rng.uniform_u64(10));
  }
  EXPECT_NEAR(acc / kDraws, 4.5, 0.1);
}

TEST(Rng, UniformU64RejectsZero) {
  Rng rng(1);
  EXPECT_THROW(rng.uniform_u64(0), InvalidArgument);
}

TEST(Rng, UniformIntCoversBounds) {
  Rng rng(11);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NormalMomentsRoughlyStandard) {
  Rng rng(5);
  double sum = 0.0, sq = 0.0;
  constexpr int kDraws = 20000;
  for (int i = 0; i < kDraws; ++i) {
    const double v = rng.normal();
    sum += v;
    sq += v * v;
  }
  EXPECT_NEAR(sum / kDraws, 0.0, 0.05);
  EXPECT_NEAR(sq / kDraws, 1.0, 0.05);
}

TEST(Rng, BernoulliRate) {
  Rng rng(13);
  int hits = 0;
  constexpr int kDraws = 20000;
  for (int i = 0; i < kDraws; ++i) hits += rng.bernoulli(0.3F) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / kDraws, 0.3, 0.02);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(17);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Rng, SplitStreamsIndependent) {
  Rng root(21);
  Rng a = root.split(1);
  Rng b = root.split(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(ErrorMacros, CheckThrowsWithMessage) {
  try {
    SPLITMED_CHECK(1 == 2, "custom detail " << 42);
    FAIL() << "expected throw";
  } catch (const InvalidArgument& e) {
    EXPECT_NE(std::string(e.what()).find("custom detail 42"),
              std::string::npos);
    EXPECT_NE(std::string(e.what()).find("1 == 2"), std::string::npos);
  }
}

TEST(ErrorMacros, CheckPassesSilently) {
  EXPECT_NO_THROW(SPLITMED_CHECK(true, "never"));
}

TEST(ErrorMacros, MessageCanStartWithVariable) {
  const std::string prefix = "prefix";
  EXPECT_THROW(SPLITMED_CHECK(false, prefix << "-suffix"), InvalidArgument);
}

TEST(Format, Bytes) {
  EXPECT_EQ(format_bytes(17), "17 B");
  EXPECT_EQ(format_bytes(1500), "1.50 kB");
  EXPECT_EQ(format_bytes(2'000'000), "2.00 MB");
  EXPECT_EQ(format_bytes(800'000'000), "800.00 MB");
  EXPECT_EQ(format_bytes(1'500'000'000ULL), "1.50 GB");
}

TEST(Format, FixedAndPercent) {
  EXPECT_EQ(format_fixed(0.12345, 3), "0.123");
  EXPECT_EQ(format_percent(0.953, 1), "95.3%");
}

TEST(Format, Duration) {
  EXPECT_EQ(format_duration(0.431), "431 ms");
  EXPECT_EQ(format_duration(2.31), "2.31 s");
  EXPECT_EQ(format_duration(72.0), "1 m 12 s");
}

TEST(Format, Padding) {
  EXPECT_EQ(pad_left("ab", 4), "  ab");
  EXPECT_EQ(pad_right("ab", 4), "ab  ");
  EXPECT_EQ(pad_left("abcdef", 4), "abcdef");
}

TEST(Csv, WritesEscapedRows) {
  const std::string path = testing::TempDir() + "/splitmed_csv_test.csv";
  {
    CsvWriter csv(path);
    csv.write_row({"a", "b,c", "d\"e"});
    csv.write_row({CsvWriter::field(1.5), CsvWriter::field(std::uint64_t{7})});
  }
  std::ifstream in(path);
  std::string line1, line2;
  std::getline(in, line1);
  std::getline(in, line2);
  EXPECT_EQ(line1, "a,\"b,c\",\"d\"\"e\"");
  EXPECT_EQ(line2, "1.5,7");
  std::remove(path.c_str());
}

TEST(Csv, ThrowsOnUnwritablePath) {
  EXPECT_THROW(CsvWriter("/nonexistent-dir-xyz/file.csv"), Error);
}

TEST(TablePrint, AlignsColumns) {
  Table t({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row({"longer", "22"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("| name   | value |"), std::string::npos);
  EXPECT_NE(out.find("| longer | 22    |"), std::string::npos);
}

TEST(TablePrint, RejectsArityMismatch) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), InvalidArgument);
}


TEST(Flags, ParsesAllForms) {
  const char* argv[] = {"prog", "--rounds=50", "--model", "vgg-mini",
                        "--verbose", "--alpha", "1.5"};
  Flags flags(7, argv);
  EXPECT_EQ(flags.get_int("rounds", 1), 50);
  EXPECT_EQ(flags.get_string("model", "x"), "vgg-mini");
  EXPECT_TRUE(flags.get_bool("verbose", false));
  EXPECT_DOUBLE_EQ(flags.get_double("alpha", 0.0), 1.5);
  EXPECT_NO_THROW(flags.validate_no_unknown());
}

TEST(Flags, FallbacksWhenAbsent) {
  const char* argv[] = {"prog"};
  Flags flags(1, argv);
  EXPECT_EQ(flags.get_int("rounds", 7), 7);
  EXPECT_EQ(flags.get_string("model", "mlp"), "mlp");
  EXPECT_FALSE(flags.get_bool("verbose", false));
}

TEST(Flags, RejectsUnknownAndMalformed) {
  const char* argv[] = {"prog", "--typo=1"};
  Flags flags(2, argv);
  EXPECT_EQ(flags.get_int("rounds", 1), 1);
  EXPECT_THROW(flags.validate_no_unknown(), InvalidArgument);

  const char* bad[] = {"prog", "notaflag"};
  EXPECT_THROW(Flags(2, bad), InvalidArgument);

  const char* badint[] = {"prog", "--n=abc"};
  Flags f2(2, badint);
  EXPECT_THROW(f2.get_int("n", 0), InvalidArgument);

  const char* badbool[] = {"prog", "--b=maybe"};
  Flags f3(2, badbool);
  EXPECT_THROW(f3.get_bool("b", false), InvalidArgument);
}

TEST(Logging, RespectsLevelAndSink) {
  std::ostringstream sink;
  Log::set_sink(&sink);
  Log::set_level(LogLevel::kWarn);
  SPLITMED_LOG(kInfo) << "hidden";
  SPLITMED_LOG(kWarn) << "visible";
  Log::set_sink(nullptr);
  Log::set_level(LogLevel::kWarn);
  EXPECT_EQ(sink.str().find("hidden"), std::string::npos);
  EXPECT_NE(sink.str().find("visible"), std::string::npos);
}

}  // namespace
}  // namespace splitmed
