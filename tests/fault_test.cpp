// Tests for the WAN fault-injection channel (net::FaultPlan on Network) and
// the protocol recovery layer (platform retransmission, server idempotent
// replay, trainer skip path). Everything here is seeded and deterministic —
// a "random" fault sequence is asserted to be exactly reproducible.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "src/common/error.hpp"
#include "src/core/platform.hpp"
#include "src/core/protocol.hpp"
#include "src/core/server.hpp"
#include "src/core/split_model.hpp"
#include "src/core/trainer.hpp"
#include "src/data/synthetic_cifar.hpp"
#include "src/models/factory.hpp"
#include "src/models/mlp.hpp"
#include "src/net/network.hpp"
#include "src/obs/critical_path.hpp"
#include "src/obs/obs.hpp"

namespace splitmed {
namespace {

Envelope env(NodeId src, NodeId dst, std::uint32_t kind, std::size_t bytes) {
  return make_envelope(src, dst, kind, 0,
                       std::vector<std::uint8_t>(bytes, 0xA5));
}

TEST(FaultPlan, AnyAndValidate) {
  net::FaultPlan plan;
  EXPECT_FALSE(plan.any());
  plan.drop_rate = 0.1;
  EXPECT_TRUE(plan.any());
  plan.drop_rate = 1.5;
  EXPECT_THROW(plan.validate(), InvalidArgument);
  net::RetryPolicy policy;
  policy.backoff = 0.5;
  EXPECT_THROW(policy.validate(), InvalidArgument);
}

TEST(FaultChannel, ZeroRatePlanIsInert) {
  // Attaching an all-zero plan changes nothing: no trailer bytes, no fault
  // RNG consumption, identical arrivals — the bitwise-identity contract.
  net::Network plain;
  net::Network planned;
  for (net::Network* n : {&plain, &planned}) {
    n->add_node("a");
    n->add_node("b");
    n->set_link(0, 1, net::Link{100.0, 1.0});
  }
  planned.set_default_fault_plan(net::FaultPlan{});
  planned.set_fault_plan(0, 1, net::FaultPlan{});
  EXPECT_FALSE(planned.faults_enabled());

  plain.send(env(0, 1, 1, 72));
  planned.send(env(0, 1, 1, 72));
  EXPECT_EQ(plain.stats().total_bytes(), planned.stats().total_bytes());
  const Envelope a = plain.receive(1);
  const Envelope b = planned.receive(1);
  EXPECT_EQ(plain.clock().now(), planned.clock().now());
  EXPECT_EQ(a.payload, b.payload);
  EXPECT_EQ(planned.stats().goodput_bytes(), planned.stats().total_bytes());
}

TEST(FaultChannel, CrcTrailerAccountedOnlyUnderFaults) {
  net::Network network;
  network.add_node("a");
  network.add_node("b");
  network.send(env(0, 1, 1, 10));
  EXPECT_EQ(network.stats().total_bytes(), 38U);  // 28 header + 10

  net::Network faulted;
  faulted.add_node("a");
  faulted.add_node("b");
  net::FaultPlan plan;
  plan.delay_spike_rate = 1e-9;  // arms the channel, never fires in one send
  faulted.set_default_fault_plan(plan);
  EXPECT_TRUE(faulted.faults_enabled());
  faulted.send(env(0, 1, 1, 10));
  EXPECT_EQ(faulted.stats().total_bytes(), 42U);  // + 4-byte CRC trailer
  const Envelope out = faulted.receive(1);
  EXPECT_EQ(out.payload.size(), 10U);  // trailer is accounting, not payload
}

TEST(FaultChannel, DropLosesTheFrameButPaysForIt) {
  net::Network network;
  network.add_node("a");
  network.add_node("b");
  net::FaultPlan plan;
  plan.drop_rate = 1.0;
  network.set_fault_plan(0, 1, plan);
  network.send(env(0, 1, 1, 20));
  EXPECT_EQ(network.pending(1), 0U);
  EXPECT_EQ(network.stats().dropped(), 1U);
  EXPECT_EQ(network.stats().dropped_bytes(), 52U);  // 28 + 20 + 4
  // The sender still paid the wire bytes; goodput excludes them.
  EXPECT_EQ(network.stats().total_bytes(), 52U);
  EXPECT_EQ(network.stats().goodput_bytes(), 0U);
  // The reverse direction has no plan: frames pass.
  network.send(env(1, 0, 2, 0));
  EXPECT_EQ(network.pending(0), 1U);
}

TEST(FaultChannel, DuplicateDeliversTwoIntactCopies) {
  net::Network network;
  network.add_node("a");
  network.add_node("b");
  network.set_link(0, 1, net::Link{100.0, 0.0});
  net::FaultPlan plan;
  plan.duplicate_rate = 1.0;
  network.set_fault_plan(0, 1, plan);
  network.send(env(0, 1, 7, 48));  // 48 + 28 + 4 = 80 bytes -> 0.8s each
  EXPECT_EQ(network.pending(1), 2U);
  EXPECT_EQ(network.stats().duplicates(), 1U);
  EXPECT_EQ(network.stats().total_messages(), 2U);
  const Envelope first = network.receive(1);
  EXPECT_DOUBLE_EQ(network.clock().now(), 0.8);
  const Envelope second = network.receive(1);
  // The copy re-serialized on the link right behind the original.
  EXPECT_DOUBLE_EQ(network.clock().now(), 1.6);
  EXPECT_EQ(first.payload, second.payload);
  EXPECT_EQ(first.kind, second.kind);
}

TEST(FaultChannel, CorruptionIsDetectedAndDiscarded) {
  net::Network network;
  network.add_node("a");
  network.add_node("b");
  net::FaultPlan plan;
  plan.corrupt_rate = 1.0;
  network.set_fault_plan(0, 1, plan);
  network.send(env(0, 1, 1, 100));
  EXPECT_EQ(network.pending(1), 1U);
  // The only in-flight frame fails its CRC: receive() discards it and then
  // finds an empty inbox — protocol code never sees the garbage.
  EXPECT_THROW(network.receive(1), ProtocolError);
  EXPECT_EQ(network.stats().corrupted(), 1U);
  EXPECT_EQ(network.stats().corrupted_bytes(), 132U);
  EXPECT_EQ(network.stats().goodput_bytes(), 0U);
  // Same through the timeout primitive.
  network.send(env(0, 1, 1, 100));
  EXPECT_FALSE(network.receive_before(1, 1e9).has_value());
  EXPECT_EQ(network.stats().corrupted(), 2U);
}

TEST(FaultChannel, DelaySpikeShiftsArrivalOnly) {
  net::Network network;
  network.add_node("a");
  network.add_node("b");
  network.set_link(0, 1, net::Link{1000.0, 1.0});
  net::FaultPlan plan;
  plan.delay_spike_rate = 1.0;
  plan.delay_spike_sec = 5.0;
  network.set_fault_plan(0, 1, plan);
  network.send(env(0, 1, 1, 968));  // 1000 bytes on wire -> 1s + 1s latency
  ASSERT_TRUE(network.next_arrival(1).has_value());
  EXPECT_DOUBLE_EQ(*network.next_arrival(1), 7.0);  // + 5s spike
  const Envelope out = network.receive(1);
  EXPECT_EQ(out.payload.size(), 968U);  // intact, just late
  EXPECT_EQ(network.stats().corrupted(), 0U);
}

TEST(FaultChannel, FaultSequenceReproducibleFromSeed) {
  const auto run = [](std::uint64_t seed) {
    net::Network network;
    network.add_node("a");
    network.add_node("b");
    network.set_fault_seed(seed);
    net::FaultPlan plan;
    plan.drop_rate = 0.3;
    plan.duplicate_rate = 0.2;
    plan.corrupt_rate = 0.2;
    network.set_default_fault_plan(plan);
    std::vector<std::size_t> delivered;
    for (int i = 0; i < 50; ++i) network.send(env(0, 1, 1, 64));
    while (const auto e = network.receive_before(1, 1e12)) {
      delivered.push_back(e->payload.size());
    }
    return std::tuple{delivered.size(), network.stats().dropped(),
                      network.stats().duplicates(),
                      network.stats().corrupted()};
  };
  const auto a = run(11);
  const auto b = run(11);
  const auto c = run(12);
  EXPECT_EQ(a, b);       // same seed, same fault history
  EXPECT_NE(a, c);       // different seed, different history
  EXPECT_GT(std::get<1>(a), 0U);
  EXPECT_GT(std::get<2>(a), 0U);
  EXPECT_GT(std::get<3>(a), 0U);
}

// --- protocol recovery -----------------------------------------------------

class RecoveryProtocol : public ::testing::Test {
 protected:
  RecoveryProtocol()
      : dataset_(make_dataset()),
        server_id_(network_.add_node("server")),
        platform_id_(network_.add_node("platform")) {
    models::MlpConfig cfg;
    cfg.input_shape = Shape{3, 8, 8};
    cfg.hidden = {8};
    cfg.num_classes = 4;
    auto model = models::make_mlp(cfg);
    auto parts = core::split_at(std::move(model.net), model.default_cut);
    core::ServerOptions server_opt;
    server_opt.tolerate_faults = true;
    server_ = std::make_unique<core::CentralServer>(
        server_id_, std::move(parts.server), optim::SgdOptions{}, server_opt);
    core::PlatformOptions platform_opt;
    platform_opt.tolerate_faults = true;
    std::vector<std::int64_t> shard = {0, 1, 2, 3};
    platform_ = std::make_unique<core::PlatformNode>(
        platform_id_, server_id_, std::move(parts.platform),
        data::DataLoader(dataset_, shard, 2, Rng(1)), optim::SgdOptions{},
        platform_opt);
  }

  static data::SyntheticCifar make_dataset() {
    data::SyntheticCifarOptions opt;
    opt.num_examples = 8;
    opt.num_classes = 4;
    opt.image_size = 8;
    return data::SyntheticCifar(opt);
  }

  data::SyntheticCifar dataset_;
  net::Network network_;
  NodeId server_id_;
  NodeId platform_id_;
  std::unique_ptr<core::CentralServer> server_;
  std::unique_ptr<core::PlatformNode> platform_;
};

TEST_F(RecoveryProtocol, ServerRepliesIdempotentlyToDuplicateActivation) {
  platform_->send_activation(network_, 1);
  const Envelope activation = network_.receive(server_id_);
  server_->handle(network_, activation);
  EXPECT_EQ(network_.pending(platform_id_), 1U);  // logits
  // The same request again (a WAN duplicate): replayed, not re-trained.
  server_->handle(network_, activation);
  EXPECT_EQ(server_->replays(), 1);
  EXPECT_EQ(network_.pending(platform_id_), 2U);  // identical logits again
  const Envelope l1 = network_.receive(platform_id_);
  const Envelope l2 = network_.receive(platform_id_);
  EXPECT_EQ(l1.payload, l2.payload);
  EXPECT_TRUE(l2.retransmit);
  EXPECT_EQ(server_->steps_completed(), 0);  // no optimizer motion yet
}

TEST_F(RecoveryProtocol, ServerRepliesIdempotentlyToDuplicateGrad) {
  platform_->send_activation(network_, 1);
  server_->handle(network_, network_.receive(server_id_));
  platform_->handle(network_, network_.receive(platform_id_));
  const Envelope grad = network_.receive(server_id_);
  server_->handle(network_, grad);
  EXPECT_EQ(server_->steps_completed(), 1);
  // Duplicate gradient: cut-grad replayed, optimizer NOT stepped twice.
  server_->handle(network_, grad);
  EXPECT_EQ(server_->steps_completed(), 1);
  EXPECT_EQ(server_->replays(), 1);
  EXPECT_EQ(network_.pending(platform_id_), 2U);
}

TEST_F(RecoveryProtocol, PlatformIgnoresStaleReplies) {
  // A reply to a round the platform is no longer in: counted, not thrown.
  const Envelope stale = core::make_tensor_envelope(
      server_id_, platform_id_, core::MsgKind::kLogits, 99, Tensor(Shape{2, 4}));
  EXPECT_NO_THROW(platform_->handle(network_, stale));
  EXPECT_EQ(platform_->stale_ignored(), 1);
  EXPECT_EQ(platform_->steps_completed(), 0);
}

TEST_F(RecoveryProtocol, PlatformRetransmitsItsLastMessage) {
  platform_->send_activation(network_, 1);
  platform_->resend_last(network_);
  EXPECT_EQ(network_.pending(server_id_), 2U);
  EXPECT_EQ(network_.stats().retransmits(), 1U);
  const Envelope first = network_.receive(server_id_);
  const Envelope again = network_.receive(server_id_);
  EXPECT_EQ(first.payload, again.payload);
  EXPECT_FALSE(first.retransmit);
  EXPECT_TRUE(again.retransmit);
}

TEST_F(RecoveryProtocol, AbortStepReturnsPlatformToIdle) {
  platform_->send_activation(network_, 1);
  EXPECT_EQ(platform_->state(), core::PlatformState::kAwaitLogits);
  platform_->abort_step();
  EXPECT_EQ(platform_->state(), core::PlatformState::kIdle);
  EXPECT_EQ(platform_->aborted_steps(), 1);
  EXPECT_THROW(platform_->resend_last(network_), InvalidArgument);
  // The platform can start the next round cleanly.
  EXPECT_NO_THROW(platform_->send_activation(network_, 2));
}

TEST_F(RecoveryProtocol, ServerDropsRequestsBelowTheExpectedRound) {
  platform_->send_activation(network_, 1);
  const Envelope activation = network_.receive(server_id_);
  // The trainer has moved on to round 2: round-1 debris must not train.
  server_->expect_round(2);
  server_->handle(network_, activation);
  EXPECT_EQ(server_->stale_ignored(), 1);
  EXPECT_EQ(network_.pending(platform_id_), 0U);
}

// --- end-to-end faulted training -------------------------------------------

data::SyntheticCifar make_train(std::int64_t n) {
  data::SyntheticCifarOptions opt;
  opt.num_examples = n;
  opt.num_classes = 4;
  opt.image_size = 8;
  opt.noise_stddev = 0.1F;
  return data::SyntheticCifar(opt);
}

core::ModelBuilder mlp_builder() {
  return [] {
    models::FactoryConfig cfg;
    cfg.name = "mlp";
    cfg.image_size = 8;
    cfg.num_classes = 4;
    return models::build_model(cfg);
  };
}

core::SplitConfig faulted_config() {
  core::SplitConfig cfg;
  cfg.total_batch = 16;
  cfg.rounds = 40;
  cfg.eval_every = 20;
  cfg.sgd.learning_rate = 0.02F;
  cfg.sgd.momentum = 0.5F;
  cfg.faults.drop_rate = 0.05;
  cfg.faults.duplicate_rate = 0.05;
  cfg.faults.corrupt_rate = 0.05;
  cfg.faults.delay_spike_rate = 0.02;
  cfg.faults.delay_spike_sec = 2.0;
  return cfg;
}

TEST(FaultedTraining, CompletesAndStaysAccurate) {
  const auto train = make_train(128);
  const auto test = make_train(32);
  Rng prng(1);
  const auto partition = data::partition_iid(train.size(), 4, prng);

  // Fault-free reference under the same everything-else.
  auto clean_cfg = faulted_config();
  clean_cfg.faults = net::FaultPlan{};
  core::SplitTrainer clean(mlp_builder(), train, partition, test, clean_cfg);
  const auto clean_report = clean.run();
  EXPECT_FALSE(clean.network().faults_enabled());
  EXPECT_EQ(clean.network().stats().retransmits(), 0U);

  core::SplitTrainer trainer(mlp_builder(), train, partition, test,
                             faulted_config());
  const auto report = trainer.run();
  const auto& stats = trainer.network().stats();
  EXPECT_TRUE(trainer.network().faults_enabled());
  EXPECT_EQ(report.steps_completed, 40);
  // The WAN misbehaved and the protocol recovered.
  EXPECT_GT(stats.dropped() + stats.corrupted() + stats.duplicates(), 0U);
  EXPECT_GT(stats.retransmits(), 0U);
  EXPECT_LT(stats.goodput_bytes(), stats.total_bytes());
  // Training outcome within noise of the fault-free run.
  EXPECT_GT(report.final_accuracy, 0.5);
  EXPECT_NEAR(report.final_accuracy, clean_report.final_accuracy, 0.15);
}

TEST(FaultedTraining, ReproducibleAcrossIdenticalRuns) {
  const auto train = make_train(64);
  const auto test = make_train(16);
  Rng p1(3), p2(3);
  const auto part1 = data::partition_iid(train.size(), 3, p1);
  const auto part2 = data::partition_iid(train.size(), 3, p2);
  auto cfg = faulted_config();
  cfg.rounds = 12;
  cfg.eval_every = 4;
  core::SplitTrainer t1(mlp_builder(), train, part1, test, cfg);
  core::SplitTrainer t2(mlp_builder(), train, part2, test, cfg);
  const auto r1 = t1.run();
  const auto r2 = t2.run();
  ASSERT_EQ(r1.curve.size(), r2.curve.size());
  for (std::size_t i = 0; i < r1.curve.size(); ++i) {
    EXPECT_EQ(r1.curve[i].train_loss, r2.curve[i].train_loss);
    EXPECT_EQ(r1.curve[i].test_accuracy, r2.curve[i].test_accuracy);
    EXPECT_EQ(r1.curve[i].cumulative_bytes, r2.curve[i].cumulative_bytes);
    EXPECT_EQ(r1.curve[i].sim_seconds, r2.curve[i].sim_seconds);
  }
  EXPECT_EQ(r1.total_bytes, r2.total_bytes);
  EXPECT_EQ(r1.skipped_steps, r2.skipped_steps);
  // The fault counters themselves are part of the reproducible surface.
  EXPECT_EQ(t1.network().stats().dropped(), t2.network().stats().dropped());
  EXPECT_EQ(t1.network().stats().corrupted(),
            t2.network().stats().corrupted());
  EXPECT_EQ(t1.network().stats().retransmits(),
            t2.network().stats().retransmits());
}

TEST(FaultedTraining, AttributionSumsToDurationAndIsThreadInvariant) {
  // Critical-path attribution under real faults: every round's segments must
  // sum to the round's simulated duration (the invariant trace_report.py and
  // CI gate on), retransmit overhead must actually show up, and — because
  // the analyzer reads nothing but the simulated clock — the whole record
  // set, straggler identity included, must be bit-identical whether the
  // tensor substrate runs serial or on a worker pool.
  const auto train = make_train(64);
  const auto test = make_train(16);
  const auto run_with_threads = [&](int threads) {
    Rng prng(3);
    const auto partition = data::partition_iid(train.size(), 3, prng);
    auto cfg = faulted_config();
    cfg.rounds = 12;
    cfg.eval_every = 12;
    cfg.threads = threads;
    cfg.obs.enabled = true;
    core::SplitTrainer trainer(mlp_builder(), train, partition, test, cfg);
    (void)trainer.run();
    // The ObsSession is trainer-owned: snapshot before destruction.
    obs::CriticalPathAnalyzer* cp = obs::attribution();
    EXPECT_NE(cp, nullptr);
    return cp->records();
  };

  const auto serial = run_with_threads(1);
  const auto pooled = run_with_threads(4);
  ASSERT_EQ(serial.size(), 12U);
  double retransmit_total = 0.0;
  for (const auto& r : serial) {
    double sum = 0.0;
    for (const double s : r.segments) sum += s;
    EXPECT_NEAR(sum, r.duration(), 1e-6) << "round " << r.round;
    EXPECT_GE(r.segments[obs::CriticalPathAnalyzer::kDeadlineSlack], 0.0);
    retransmit_total += r.segments[obs::CriticalPathAnalyzer::kRetransmit];
  }
  // 5% drop/duplicate/corrupt over 12 rounds: recovery traffic is certain
  // (and seeded, so this is a deterministic assertion, not a flaky one).
  EXPECT_GT(retransmit_total, 0.0);

  ASSERT_EQ(pooled.size(), serial.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].segments, pooled[i].segments);
    EXPECT_EQ(serial[i].has_straggler, pooled[i].has_straggler);
    EXPECT_EQ(serial[i].straggler_node, pooled[i].straggler_node);
    EXPECT_EQ(serial[i].straggler_segment, pooled[i].straggler_segment);
    EXPECT_EQ(serial[i].straggler_seconds, pooled[i].straggler_seconds);
  }
}

TEST(FaultedTraining, UnreachablePlatformIsSkippedNotFatal) {
  const auto train = make_train(64);
  const auto test = make_train(16);
  Rng prng(5);
  const auto partition = data::partition_iid(train.size(), 3, prng);
  auto cfg = faulted_config();
  cfg.faults = net::FaultPlan{};
  cfg.faults.drop_rate = 1e-9;  // arms recovery; effectively never fires
  cfg.rounds = 4;
  cfg.eval_every = 4;
  cfg.recovery.timeout_sec = 5.0;
  cfg.recovery.backoff = 1.0;
  cfg.recovery.max_retries = 1;
  core::SplitTrainer trainer(mlp_builder(), train, partition, test, cfg);
  // Platform 0's uplink black-holes every frame: it can never finish a step.
  net::FaultPlan black_hole;
  black_hole.drop_rate = 1.0;
  trainer.network().set_fault_plan(trainer.platform(0).id(),
                                   trainer.server().id(), black_hole);
  const auto report = trainer.run();
  EXPECT_EQ(report.steps_completed, 4);
  EXPECT_EQ(report.skipped_steps, 4);  // platform 0, every round
  EXPECT_EQ(trainer.platform(0).steps_completed(), 0);
  EXPECT_EQ(trainer.platform(0).aborted_steps(), 4);
  // Every abandoned step consumed platform 0's minibatch from its loader
  // without ever applying it to an optimizer — the examples_lost ledger.
  EXPECT_EQ(trainer.platform(0).examples_lost(),
            4 * trainer.minibatches()[0]);
  EXPECT_EQ(trainer.platform(1).examples_lost(), 0);
  EXPECT_EQ(report.examples_lost, trainer.platform(0).examples_lost());
  EXPECT_GT(trainer.platform(1).steps_completed(), 0);
  EXPECT_GT(trainer.platform(2).steps_completed(), 0);
  EXPECT_GT(report.final_accuracy, 0.25);  // the others still learned
}

TEST(FaultedTraining, AllAbandonedRoundDoesNotFabricateZeroLoss) {
  // Regression: a round where EVERY participant's step is abandoned used to
  // average the platforms' last_loss fields — all still 0.0 — and report a
  // training loss of exactly 0.0. With no observation at all the curve must
  // say NaN (and never a fabricated zero).
  const auto train = make_train(64);
  const auto test = make_train(16);
  Rng prng(5);
  const auto partition = data::partition_iid(train.size(), 3, prng);
  auto cfg = faulted_config();
  cfg.faults = net::FaultPlan{};
  cfg.faults.drop_rate = 1e-9;  // arms recovery; effectively never fires
  cfg.rounds = 1;
  cfg.eval_every = 1;
  cfg.recovery.timeout_sec = 5.0;
  cfg.recovery.backoff = 1.0;
  cfg.recovery.max_retries = 1;
  core::SplitTrainer trainer(mlp_builder(), train, partition, test, cfg);
  // Every uplink black-holes: no platform can ever finish a step.
  net::FaultPlan black_hole;
  black_hole.drop_rate = 1.0;
  for (std::size_t p = 0; p < trainer.num_platforms(); ++p) {
    trainer.network().set_fault_plan(trainer.platform(p).id(),
                                     trainer.server().id(), black_hole);
  }
  const auto report = trainer.run();
  EXPECT_EQ(report.skipped_steps, 3);
  EXPECT_EQ(report.examples_lost, cfg.total_batch);
  ASSERT_EQ(report.curve.size(), 1U);
  EXPECT_TRUE(std::isnan(report.curve[0].train_loss))
      << "an all-abandoned round reported loss "
      << report.curve[0].train_loss << " instead of NaN";
}

}  // namespace
}  // namespace splitmed
