// Tests for net/: link timing, network delivery semantics, traffic stats,
// topology presets.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/common/error.hpp"
#include "src/net/network.hpp"
#include "src/net/topology.hpp"

namespace splitmed {
namespace {

Envelope env(NodeId src, NodeId dst, std::uint32_t kind, std::size_t bytes) {
  return make_envelope(src, dst, kind, 0,
                       std::vector<std::uint8_t>(bytes, 0));
}

TEST(Link, TransferTimeLatencyPlusSerialization) {
  const net::Link l{1000.0, 0.5};  // 1000 B/s, 500ms latency
  EXPECT_DOUBLE_EQ(l.transfer_time(2000), 0.5 + 2.0);
  EXPECT_DOUBLE_EQ(l.transfer_time(0), 0.5);
}

TEST(Link, UnitConstructors) {
  const net::Link m = net::Link::mbps(8.0, 10.0);  // 8 Mbit/s = 1e6 B/s
  EXPECT_DOUBLE_EQ(m.bandwidth_bytes_per_sec, 1e6);
  EXPECT_DOUBLE_EQ(m.latency_sec, 0.01);
  const net::Link g = net::Link::gbps(1.0, 5.0);
  EXPECT_DOUBLE_EQ(g.bandwidth_bytes_per_sec, 1.25e8);
}

TEST(SimClock, OnlyMovesForward) {
  net::SimClock clock;
  clock.advance_to(5.0);
  clock.advance_to(3.0);
  EXPECT_DOUBLE_EQ(clock.now(), 5.0);
}

TEST(Network, DeliversAndAdvancesClock) {
  net::Network network;
  const NodeId a = network.add_node("a");
  const NodeId b = network.add_node("b");
  network.set_link(a, b, net::Link{100.0, 1.0});  // 100 B/s, 1s latency
  network.send(env(a, b, 7, 72));  // 72 + 28 header = 100 bytes -> 1s + 1s
  const Envelope received = network.receive(b);
  EXPECT_EQ(received.kind, 7U);
  EXPECT_DOUBLE_EQ(network.clock().now(), 2.0);
}

TEST(Network, LinkSerializesBackToBackSends) {
  net::Network network;
  const NodeId a = network.add_node("a");
  const NodeId b = network.add_node("b");
  network.set_link(a, b, net::Link{100.0, 0.0});
  network.send(env(a, b, 1, 72));  // 100 B -> occupies [0, 1]
  network.send(env(a, b, 2, 72));  // waits -> arrives at 2
  network.receive(b);
  EXPECT_DOUBLE_EQ(network.clock().now(), 1.0);
  network.receive(b);
  EXPECT_DOUBLE_EQ(network.clock().now(), 2.0);
}

TEST(Network, OppositeDirectionsDoNotSerialize) {
  net::Network network;
  const NodeId a = network.add_node("a");
  const NodeId b = network.add_node("b");
  network.set_link(a, b, net::Link{100.0, 0.0});
  network.send(env(a, b, 1, 72));
  network.send(env(b, a, 2, 72));
  network.receive(b);
  network.receive(a);
  EXPECT_DOUBLE_EQ(network.clock().now(), 1.0);  // both finished at t=1
}

TEST(Network, DeliveryOrderByArrivalThenSendOrder) {
  net::Network network;
  const NodeId a = network.add_node("a");
  const NodeId b = network.add_node("b");
  const NodeId c = network.add_node("c");
  network.set_link(a, c, net::Link{1000.0, 1.0});  // slow path (latency)
  network.set_link(b, c, net::Link{1000.0, 0.0});  // fast path
  network.send(env(a, c, 1, 0));  // arrives ~1.028
  network.send(env(b, c, 2, 0));  // arrives ~0.028
  EXPECT_EQ(network.receive(c).kind, 2U);
  EXPECT_EQ(network.receive(c).kind, 1U);
}

TEST(Network, ReceiveWithNothingInFlightThrows) {
  net::Network network;
  const NodeId a = network.add_node("a");
  EXPECT_THROW(network.receive(a), ProtocolError);
}

TEST(Network, TryReceiveRespectsArrivalTime) {
  net::Network network;
  const NodeId a = network.add_node("a");
  const NodeId b = network.add_node("b");
  network.set_link(a, b, net::Link{1.0, 0.0});  // 1 B/s: 28B header = 28s
  network.send(env(a, b, 1, 0));
  EXPECT_FALSE(network.try_receive(b).has_value());  // clock still at 0
  network.clock().advance_to(30.0);
  EXPECT_TRUE(network.try_receive(b).has_value());
}

TEST(Network, TryReceiveBeforeArrivalDoesNotConsume) {
  net::Network network;
  const NodeId a = network.add_node("a");
  const NodeId b = network.add_node("b");
  network.set_link(a, b, net::Link{1.0, 0.0});  // 28B header = 28s
  network.send(env(a, b, 1, 0));
  // Early polls neither deliver nor drop the in-flight frame.
  EXPECT_FALSE(network.try_receive(b).has_value());
  EXPECT_FALSE(network.try_receive(b).has_value());
  EXPECT_EQ(network.pending(b), 1U);
  EXPECT_DOUBLE_EQ(network.clock().now(), 0.0);  // polling never advances time
  network.clock().advance_to(30.0);
  EXPECT_TRUE(network.try_receive(b).has_value());
  EXPECT_EQ(network.pending(b), 0U);
}

TEST(Network, EqualArrivalsTieBreakBySendOrder) {
  // Two frames from different senders arriving at the exact same instant
  // must deliver in send order — the determinism guarantee delivery relies
  // on when arrival times collide.
  net::Network network;
  const NodeId a = network.add_node("a");
  const NodeId b = network.add_node("b");
  const NodeId c = network.add_node("c");
  network.set_link(a, c, net::Link{100.0, 0.0});
  network.set_link(b, c, net::Link{100.0, 0.0});
  network.send(env(a, c, 1, 72));  // both: 100 bytes at 100 B/s -> t=1.0
  network.send(env(b, c, 2, 72));
  EXPECT_EQ(network.receive(c).kind, 1U);
  EXPECT_EQ(network.receive(c).kind, 2U);
  EXPECT_DOUBLE_EQ(network.clock().now(), 1.0);
}

TEST(Network, ReceiveBeforeHonorsDeadline) {
  net::Network network;
  const NodeId a = network.add_node("a");
  const NodeId b = network.add_node("b");
  network.set_link(a, b, net::Link{100.0, 1.0});
  network.send(env(a, b, 1, 72));  // arrives at 2.0
  // Deadline before the arrival: nothing, and the clock stays put.
  EXPECT_FALSE(network.receive_before(b, 1.5).has_value());
  EXPECT_DOUBLE_EQ(network.clock().now(), 0.0);
  EXPECT_EQ(network.pending(b), 1U);
  // Deadline at the arrival instant: delivered, clock advanced.
  const auto got = network.receive_before(b, 2.0);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->kind, 1U);
  EXPECT_DOUBLE_EQ(network.clock().now(), 2.0);
  // Empty inbox: nullopt, not a throw.
  EXPECT_FALSE(network.receive_before(b, 100.0).has_value());
}

TEST(Network, NextArrivalReportsEarliestWithoutConsuming) {
  net::Network network;
  const NodeId a = network.add_node("a");
  const NodeId b = network.add_node("b");
  EXPECT_FALSE(network.next_arrival(b).has_value());
  network.set_link(a, b, net::Link{100.0, 0.5});
  network.send(env(a, b, 1, 72));  // arrives 1.5
  network.send(env(a, b, 2, 72));  // serialized behind it: arrives 2.5
  ASSERT_TRUE(network.next_arrival(b).has_value());
  EXPECT_DOUBLE_EQ(*network.next_arrival(b), 1.5);
  EXPECT_EQ(network.pending(b), 2U);  // peeking consumed nothing
  network.receive(b);
  EXPECT_DOUBLE_EQ(*network.next_arrival(b), 2.5);
}

TEST(Network, SelfSendAndUnknownNodesRejected) {
  net::Network network;
  const NodeId a = network.add_node("a");
  EXPECT_THROW(network.send(env(a, a, 1, 0)), InvalidArgument);
  EXPECT_THROW(network.send(env(a, 99, 1, 0)), InvalidArgument);
  EXPECT_THROW(network.node_name(5), InvalidArgument);
}

TEST(Network, PendingCounts) {
  net::Network network;
  const NodeId a = network.add_node("a");
  const NodeId b = network.add_node("b");
  network.send(env(a, b, 1, 0));
  network.send(env(a, b, 2, 0));
  EXPECT_EQ(network.pending(b), 2U);
  network.receive(b);
  EXPECT_EQ(network.pending(b), 1U);
}


TEST(Network, DefaultLinkUsedWithoutOverride) {
  net::Network network;
  const NodeId a = network.add_node("a");
  const NodeId b = network.add_node("b");
  network.set_default_link(net::Link{50.0, 0.0});
  EXPECT_DOUBLE_EQ(network.link(a, b).bandwidth_bytes_per_sec, 50.0);
  network.set_link(a, b, net::Link{100.0, 0.0});
  EXPECT_DOUBLE_EQ(network.link(a, b).bandwidth_bytes_per_sec, 100.0);
  EXPECT_DOUBLE_EQ(network.link(b, a).bandwidth_bytes_per_sec, 100.0);
}

TEST(Network, LinkIsSymmetricButDirectionsIndependentlyBusy) {
  net::Network network;
  const NodeId a = network.add_node("a");
  const NodeId b = network.add_node("b");
  network.set_link(a, b, net::Link{100.0, 0.0});
  // Two sends a->b serialize; a send b->a does not wait for them.
  network.send(env(a, b, 1, 72));
  network.send(env(a, b, 2, 72));
  network.send(env(b, a, 3, 72));
  EXPECT_EQ(network.receive(a).kind, 3U);
  EXPECT_DOUBLE_EQ(network.clock().now(), 1.0);
}

TEST(Network, NextEventIsTheGlobalMinimumAcrossNodes) {
  // next_event() is the arrival index the event scheduler pumps: it must
  // always name the globally earliest (arrival, sequence) frame, across ALL
  // destination nodes, without consuming it or advancing the clock.
  net::Network network;
  const NodeId a = network.add_node("a");
  const NodeId b = network.add_node("b");
  const NodeId c = network.add_node("c");
  EXPECT_FALSE(network.next_event().has_value());
  EXPECT_EQ(network.total_in_flight(), 0U);
  EXPECT_TRUE(network.quiescent());

  network.set_link(a, b, net::Link{100.0, 5.0});  // slow: arrives at 6.0
  network.set_link(a, c, net::Link{100.0, 1.0});  // fast: arrives at 2.0
  network.send(env(a, b, 1, 72));
  network.send(env(a, c, 2, 72));
  EXPECT_EQ(network.total_in_flight(), 2U);
  EXPECT_FALSE(network.quiescent());

  auto event = network.next_event();
  ASSERT_TRUE(event.has_value());
  EXPECT_EQ(event->node, c);
  EXPECT_DOUBLE_EQ(event->arrival, 2.0);
  EXPECT_DOUBLE_EQ(network.clock().now(), 0.0);  // peeking never advances

  // Consuming the head re-indexes: the slow frame becomes the global min.
  EXPECT_EQ(network.receive(c).kind, 2U);
  event = network.next_event();
  ASSERT_TRUE(event.has_value());
  EXPECT_EQ(event->node, b);
  EXPECT_DOUBLE_EQ(event->arrival, 6.0);
  EXPECT_EQ(network.total_in_flight(), 1U);

  network.receive(b);
  EXPECT_FALSE(network.next_event().has_value());
  EXPECT_TRUE(network.quiescent());
}

TEST(Network, NextEventTieBreaksBySendSequence) {
  net::Network network;
  const NodeId a = network.add_node("a");
  const NodeId b = network.add_node("b");
  const NodeId c = network.add_node("c");
  // Identical links: both frames arrive at the same instant; the earlier
  // send must win the index — the scheduler's stable event ordering.
  network.set_link(a, b, net::Link{100.0, 1.0});
  network.set_link(a, c, net::Link{100.0, 1.0});
  network.send(env(a, b, 1, 72));
  network.send(env(a, c, 2, 72));
  const auto event = network.next_event();
  ASSERT_TRUE(event.has_value());
  EXPECT_EQ(event->node, b);
  const auto first = network.receive(b);
  EXPECT_EQ(first.kind, 1U);
  EXPECT_EQ(network.next_event()->node, c);
}

TEST(Network, NextEventTracksManyNodesInArrivalOrder) {
  // A fan-out across many nodes with staggered latencies: repeatedly pumping
  // next_event()/receive() must deliver in strict global arrival order.
  net::Network network;
  const NodeId hub = network.add_node("hub");
  std::vector<NodeId> leaves;
  for (int i = 0; i < 8; ++i) {
    leaves.push_back(network.add_node("leaf" + std::to_string(i)));
  }
  for (std::size_t i = 0; i < leaves.size(); ++i) {
    // Descending latency: later sends arrive earlier.
    network.set_link(hub, leaves[i],
                     net::Link{1e6, static_cast<double>(8 - i)});
    network.send(env(hub, leaves[i], static_cast<std::uint32_t>(i + 1), 16));
  }
  EXPECT_EQ(network.total_in_flight(), leaves.size());
  double last_arrival = 0.0;
  std::size_t delivered = 0;
  while (const auto event = network.next_event()) {
    EXPECT_GE(event->arrival, last_arrival);
    last_arrival = event->arrival;
    const Envelope e = network.receive(event->node);
    EXPECT_EQ(e.dst, event->node);
    ++delivered;
  }
  EXPECT_EQ(delivered, leaves.size());
  EXPECT_TRUE(network.quiescent());
}

TEST(Topology, ProfilesAreReusedRoundRobin) {
  net::Network network;
  const auto topo = net::build_hospital_star(network, 10);  // > 8 profiles
  EXPECT_EQ(topo.platforms.size(), 10U);
  const auto& l0 = network.link(topo.platforms[0], topo.server);
  const auto& l8 = network.link(topo.platforms[8], topo.server);
  EXPECT_DOUBLE_EQ(l0.bandwidth_bytes_per_sec, l8.bandwidth_bytes_per_sec);
}

TEST(TrafficStats, CountsBytesPerKindAndPair) {
  net::Network network;
  const NodeId a = network.add_node("a");
  const NodeId b = network.add_node("b");
  network.send(env(a, b, 1, 100));
  network.send(env(a, b, 1, 100));
  network.send(env(b, a, 2, 50));
  const auto& stats = network.stats();
  EXPECT_EQ(stats.total_messages(), 3U);
  EXPECT_EQ(stats.total_bytes(), 2 * 128 + 78U);
  EXPECT_EQ(stats.bytes_for_kind(1), 256U);
  EXPECT_EQ(stats.messages_for_kind(1), 2U);
  EXPECT_EQ(stats.bytes_for_kind(99), 0U);
  EXPECT_EQ(stats.bytes_between(a, b), 256U);
  EXPECT_EQ(stats.bytes_between(b, a), 78U);
}

TEST(TrafficStats, ResetClears) {
  net::Network network;
  const NodeId a = network.add_node("a");
  const NodeId b = network.add_node("b");
  network.send(env(a, b, 1, 10));
  network.stats().reset();
  EXPECT_EQ(network.stats().total_bytes(), 0U);
  EXPECT_EQ(network.stats().total_messages(), 0U);
}

TEST(Topology, HospitalStarShape) {
  net::Network network;
  const auto topo = net::build_hospital_star(network, 5);
  EXPECT_EQ(topo.platforms.size(), 5U);
  EXPECT_EQ(network.node_count(), 6U);
  EXPECT_EQ(network.node_name(topo.server), "central-server");
  // Heterogeneous links: at least two distinct bandwidths.
  const double b0 =
      network.link(topo.platforms[0], topo.server).bandwidth_bytes_per_sec;
  const double b2 =
      network.link(topo.platforms[2], topo.server).bandwidth_bytes_per_sec;
  EXPECT_NE(b0, b2);
}

TEST(Topology, UniformStarUsesGivenLink) {
  net::Network network;
  const auto link = net::Link::mbps(100.0, 30.0);
  const auto topo = net::build_uniform_star(network, 3, link);
  for (const auto p : topo.platforms) {
    EXPECT_DOUBLE_EQ(network.link(p, topo.server).bandwidth_bytes_per_sec,
                     link.bandwidth_bytes_per_sec);
    EXPECT_DOUBLE_EQ(network.link(p, topo.server).latency_sec,
                     link.latency_sec);
  }
}

}  // namespace
}  // namespace splitmed
