// Full-state checkpoint unit tests: the SMCKPT02 section container, atomic
// file publication, and the per-object state round-trips (Rng, DataLoader,
// BatchNorm running statistics, SGD/Adam accumulators, TrafficStats,
// Network). The round-trip tests follow one discipline: save, PERTURB the
// live object, load, and require bitwise-identical behaviour afterwards —
// proving the checkpoint actually carries the state rather than the test
// passively observing an unchanged object.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "src/common/error.hpp"
#include "src/common/rng.hpp"
#include "src/data/dataloader.hpp"
#include "src/data/synthetic_cifar.hpp"
#include "src/net/network.hpp"
#include "src/nn/batchnorm.hpp"
#include "src/nn/checkpoint.hpp"
#include "src/nn/linear.hpp"
#include "src/nn/sequential.hpp"
#include "src/optim/adam.hpp"
#include "src/optim/sgd.hpp"
#include "src/serial/section_file.hpp"
#include "src/serial/state_codec.hpp"

namespace splitmed {
namespace {

namespace fs = std::filesystem;

std::string temp_path(const std::string& name) {
  return (fs::path(::testing::TempDir()) / name).string();
}

std::vector<float> tensor_copy(const Tensor& t) {
  auto d = t.data();
  return {d.begin(), d.end()};
}

// ---------------------------------------------------------------- container

TEST(SectionFile, RoundTripPreservesSectionsInOrder) {
  SectionFileWriter w;
  BufferWriter a;
  a.write_u64(42);
  a.write_string("hello");
  w.add("alpha", std::move(a));
  w.add("empty", std::vector<std::uint8_t>{});
  w.add("beta", std::vector<std::uint8_t>{1, 2, 3, 255});

  const auto bytes = w.encode();
  const auto file = SectionFileReader::decode({bytes.data(), bytes.size()},
                                              "test");
  ASSERT_EQ(file.sections().size(), 3U);
  EXPECT_EQ(file.sections()[0].name, "alpha");
  EXPECT_EQ(file.sections()[1].name, "empty");
  EXPECT_EQ(file.sections()[2].name, "beta");
  EXPECT_TRUE(file.has("empty"));
  EXPECT_FALSE(file.has("gamma"));
  EXPECT_TRUE(file.payload("empty").empty());
  EXPECT_EQ(file.payload("beta"), (std::vector<std::uint8_t>{1, 2, 3, 255}));

  BufferReader r = file.reader("alpha");
  EXPECT_EQ(r.read_u64(), 42U);
  EXPECT_EQ(r.read_string(), "hello");
  EXPECT_TRUE(r.exhausted());

  EXPECT_THROW((void)file.payload("gamma"), SerializationError);
}

TEST(SectionFile, WriterRejectsDuplicateAndEmptyNames) {
  SectionFileWriter w;
  w.add("a", std::vector<std::uint8_t>{});
  EXPECT_THROW(w.add("a", std::vector<std::uint8_t>{}), Error);
  EXPECT_THROW(w.add("", std::vector<std::uint8_t>{}), Error);
}

TEST(SectionFile, AtomicWriteReplacesAndLeavesNoTempFile) {
  const std::string path = temp_path("atomic_write_test.bin");
  const std::vector<std::uint8_t> first = {1, 2, 3};
  const std::vector<std::uint8_t> second = {9, 9, 9, 9};
  atomic_write_file(path, {first.data(), first.size()});
  atomic_write_file(path, {second.data(), second.size()});
  std::ifstream in(path, std::ios::binary);
  std::vector<std::uint8_t> got((std::istreambuf_iterator<char>(in)),
                                std::istreambuf_iterator<char>());
  EXPECT_EQ(got, second);
  EXPECT_FALSE(fs::exists(path + ".tmp"));
  fs::remove(path);
}

// --------------------------------------------------------------------- Rng

TEST(StateCodec, RngRoundTripContinuesTheStream) {
  Rng rng(12345);
  for (int i = 0; i < 17; ++i) (void)rng.next_u64();
  // Park a Box-Muller cache so the flag path is exercised too.
  (void)rng.normal();

  BufferWriter w;
  encode_rng(rng, w);
  std::vector<std::uint64_t> expect_u64;
  std::vector<float> expect_normal;
  for (int i = 0; i < 8; ++i) expect_normal.push_back(rng.normal());
  for (int i = 0; i < 8; ++i) expect_u64.push_back(rng.next_u64());

  // Perturb, then restore into the same generator.
  for (int i = 0; i < 99; ++i) (void)rng.uniform();
  BufferReader r({w.bytes().data(), w.size()});
  decode_rng(r, rng);
  EXPECT_TRUE(r.exhausted());
  for (const float v : expect_normal) EXPECT_EQ(rng.normal(), v);
  for (const std::uint64_t v : expect_u64) EXPECT_EQ(rng.next_u64(), v);
}

TEST(StateCodec, RngRejectsBadNormalFlag) {
  Rng rng(1);
  BufferWriter w;
  encode_rng(rng, w);
  auto bytes = w.take();
  bytes.back() = 7;  // has_cached_normal must be 0/1
  BufferReader r({bytes.data(), bytes.size()});
  EXPECT_THROW(decode_rng(r, rng), SerializationError);
}

// --------------------------------------------------------------- DataLoader

data::SyntheticCifar small_dataset() {
  data::SyntheticCifarOptions opt;
  opt.num_examples = 24;
  opt.num_classes = 4;
  opt.image_size = 6;
  return data::SyntheticCifar(opt);
}

TEST(DataLoaderState, RoundTripResumesTheExactBatchSequence) {
  const auto ds = small_dataset();
  std::vector<std::int64_t> shard;
  for (std::int64_t i = 0; i < 24; ++i) shard.push_back(i);
  data::DataLoader loader(ds, shard, 5, Rng(77), /*drop_last=*/true);
  for (int i = 0; i < 7; ++i) (void)loader.next_batch();  // mid-epoch cursor

  BufferWriter w;
  loader.save_state(w);
  std::vector<std::vector<std::int64_t>> expect_labels;
  for (int i = 0; i < 6; ++i) expect_labels.push_back(loader.next_batch().labels);

  for (int i = 0; i < 3; ++i) (void)loader.next_batch();  // perturb
  BufferReader r({w.bytes().data(), w.size()});
  loader.load_state(r);
  EXPECT_TRUE(r.exhausted());
  for (const auto& labels : expect_labels) {
    EXPECT_EQ(loader.next_batch().labels, labels);
  }
}

TEST(DataLoaderState, RejectsForeignPermutationAndBadCursor) {
  const auto ds = small_dataset();
  std::vector<std::int64_t> shard_a;
  std::vector<std::int64_t> shard_b;
  for (std::int64_t i = 0; i < 12; ++i) shard_a.push_back(i);
  for (std::int64_t i = 12; i < 24; ++i) shard_b.push_back(i);
  data::DataLoader a(ds, shard_a, 3, Rng(1));
  data::DataLoader b(ds, shard_b, 3, Rng(2));

  BufferWriter w;
  b.save_state(w);
  // A's shard is {0..11}, the saved permutation covers {12..23}: refused.
  BufferReader r({w.bytes().data(), w.size()});
  EXPECT_THROW(a.load_state(r), SerializationError);

  // Cursor beyond the shard size: refused.
  BufferWriter w2;
  a.save_state(w2);
  auto bytes = w2.take();
  // Layout: u64 count, count x i64 indices, u64 cursor, rng. Overwrite the
  // cursor with a huge value.
  const std::size_t cursor_at = 8 + 12 * 8;
  for (std::size_t i = 0; i < 8; ++i) bytes[cursor_at + i] = 0xFF;
  BufferReader r2({bytes.data(), bytes.size()});
  EXPECT_THROW(a.load_state(r2), SerializationError);
}

// ---------------------------------------------------------------- BatchNorm

TEST(BatchNormState, RunningStatsRoundTripIsBitwise) {
  Rng rng(5);
  nn::BatchNorm2d bn(3);
  const Tensor fixed = Tensor::normal(Shape{2, 3, 4, 4}, rng);
  for (int i = 0; i < 4; ++i) {
    (void)bn.forward(Tensor::normal(Shape{2, 3, 4, 4}, rng), true);
  }

  // Snapshot state + reference behaviour on the fixed batch.
  BufferWriter params_w;
  write_parameters(params_w, bn.parameters());
  BufferWriter extra_w;
  bn.save_extra_state(extra_w);
  const auto eval_ref = tensor_copy(bn.forward(fixed, false));
  (void)bn.forward(fixed, true);
  bn.zero_grad();
  Rng grad_rng(9);
  const Tensor grad = Tensor::normal(Shape{2, 3, 4, 4}, grad_rng);
  const auto back_ref = tensor_copy(bn.backward(grad));
  const auto gamma_grad_ref = tensor_copy(bn.parameters()[0]->grad);

  // Perturb: more training forwards move the running stats; scale gamma.
  for (int i = 0; i < 5; ++i) {
    (void)bn.forward(Tensor::normal(Shape{2, 3, 4, 4}, rng), true);
  }
  for (auto& v : bn.parameters()[0]->value.data()) v *= 1.5F;
  ASSERT_NE(tensor_copy(bn.forward(fixed, false)), eval_ref);

  // Restore and require bitwise-equal forward AND backward.
  BufferReader params_r({params_w.bytes().data(), params_w.size()});
  read_parameters(params_r, bn.parameters(), "test");
  BufferReader extra_r({extra_w.bytes().data(), extra_w.size()});
  bn.load_extra_state(extra_r);
  EXPECT_TRUE(extra_r.exhausted());
  EXPECT_EQ(tensor_copy(bn.forward(fixed, false)), eval_ref);
  (void)bn.forward(fixed, true);
  bn.zero_grad();
  EXPECT_EQ(tensor_copy(bn.backward(grad)), back_ref);
  EXPECT_EQ(tensor_copy(bn.parameters()[0]->grad), gamma_grad_ref);
}

TEST(BatchNormState, RejectsWrongChannelCount) {
  nn::BatchNorm2d bn3(3);
  nn::BatchNorm2d bn4(4);
  BufferWriter w;
  bn4.save_extra_state(w);
  BufferReader r({w.bytes().data(), w.size()});
  EXPECT_THROW(bn3.load_extra_state(r), SerializationError);
}

TEST(SequentialState, RejectsLayerCountMismatch) {
  Rng rng(3);
  nn::Sequential two;
  two.emplace<nn::Linear>(4, 4, rng);
  two.emplace<nn::Linear>(4, 2, rng);
  nn::Sequential one;
  one.emplace<nn::Linear>(4, 2, rng);
  BufferWriter w;
  two.save_extra_state(w);
  BufferReader r({w.bytes().data(), w.size()});
  EXPECT_THROW(one.load_extra_state(r), SerializationError);
}

// --------------------------------------------------------------- optimizers

/// One deterministic training step on a tiny linear model.
void sgd_like_step(nn::Sequential& net, optim::Optimizer& opt,
                   const Tensor& x, const Tensor& grad) {
  (void)net.forward(x, true);
  net.zero_grad();
  (void)net.backward(grad);
  opt.step();
}

template <typename Opt, typename Options>
void optimizer_round_trip(Options options) {
  Rng rng(21);
  nn::Sequential net;
  net.emplace<nn::Linear>(6, 3, rng);
  Opt opt(net.parameters(), options);
  const Tensor x = Tensor::normal(Shape{4, 6}, rng);
  const Tensor grad = Tensor::normal(Shape{4, 3}, rng);
  for (int i = 0; i < 3; ++i) sgd_like_step(net, opt, x, grad);

  // Snapshot params + accumulators, then run the reference continuation.
  BufferWriter params_w;
  write_parameters(params_w, net.parameters());
  BufferWriter opt_w;
  opt.save_state(opt_w);
  for (int i = 0; i < 2; ++i) sgd_like_step(net, opt, x, grad);
  const auto expect = tensor_copy(net.parameters()[0]->value);

  // Perturb far past the snapshot, restore, replay the same continuation.
  for (int i = 0; i < 4; ++i) sgd_like_step(net, opt, x, grad);
  BufferReader params_r({params_w.bytes().data(), params_w.size()});
  read_parameters(params_r, net.parameters(), "test");
  BufferReader opt_r({opt_w.bytes().data(), opt_w.size()});
  opt.load_state(opt_r);
  EXPECT_TRUE(opt_r.exhausted());
  for (int i = 0; i < 2; ++i) sgd_like_step(net, opt, x, grad);
  // Bitwise equality: the accumulators (velocity / moments / step count)
  // were restored exactly, so the continuation is the same float sequence.
  EXPECT_EQ(tensor_copy(net.parameters()[0]->value), expect);
}

TEST(OptimizerState, SgdMomentumRoundTripIsBitwise) {
  optim::SgdOptions o;
  o.learning_rate = 0.05F;
  o.momentum = 0.9F;
  optimizer_round_trip<optim::Sgd>(o);
}

TEST(OptimizerState, AdamMomentsRoundTripIsBitwise) {
  optim::AdamOptions o;
  o.learning_rate = 0.01F;
  optimizer_round_trip<optim::Adam>(o);
}

TEST(OptimizerState, SgdRejectsMismatchedShapes) {
  Rng rng(2);
  nn::Sequential small;
  small.emplace<nn::Linear>(4, 2, rng);
  nn::Sequential big;
  big.emplace<nn::Linear>(8, 2, rng);
  optim::SgdOptions o;
  o.momentum = 0.5F;
  optim::Sgd opt_small(small.parameters(), o);
  optim::Sgd opt_big(big.parameters(), o);
  BufferWriter w;
  opt_big.save_state(w);
  BufferReader r({w.bytes().data(), w.size()});
  EXPECT_THROW(opt_small.load_state(r), SerializationError);
}

// ----------------------------------------------------- parameter file (v01)

TEST(ParameterFile, TruncatedOrGarbageFileNeverPartiallyLoads) {
  Rng rng(31);
  nn::Sequential net;
  net.emplace<nn::Linear>(5, 4, rng);
  net.emplace<nn::Linear>(4, 2, rng);
  const std::string path = temp_path("params_partial_load.smckpt");
  save_parameters(path, net.parameters());

  // Read the full image back so we can produce corrupted variants.
  std::ifstream in(path, std::ios::binary);
  std::vector<char> image((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
  in.close();

  const auto snapshot = [&] {
    std::vector<std::vector<float>> s;
    for (auto* p : net.parameters()) s.push_back(tensor_copy(p->value));
    return s;
  };
  // Distinct values so a partial load would be visible.
  for (auto* p : net.parameters()) {
    for (auto& v : p->value.data()) v += 100.0F;
  }
  const auto before = snapshot();

  // Truncation at several points, including inside the SECOND parameter —
  // the first must not be applied either.
  for (const std::size_t keep :
       {image.size() - 1, image.size() - 8, image.size() / 2, std::size_t{12}}) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(image.data(), static_cast<std::streamsize>(keep));
    out.close();
    EXPECT_THROW(load_parameters(path, net.parameters()), SerializationError);
    EXPECT_EQ(snapshot(), before) << "partial load after truncation to "
                                  << keep;
  }

  // Trailing garbage: rejected, and still no partial load.
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(image.data(), static_cast<std::streamsize>(image.size()));
    out.write("junk", 4);
    out.close();
    EXPECT_THROW(load_parameters(path, net.parameters()), SerializationError);
    EXPECT_EQ(snapshot(), before);
  }

  // The intact file loads, and the error cases above were real: values move.
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(image.data(), static_cast<std::streamsize>(image.size()));
    out.close();
    load_parameters(path, net.parameters());
    EXPECT_NE(snapshot(), before);
  }
  fs::remove(path);
}

TEST(ParameterFile, ShortReadErrorNamesParameterAndShape) {
  Rng rng(32);
  nn::Sequential net;
  net.emplace<nn::Linear>(3, 2, rng);
  const std::string path = temp_path("params_short_read.smckpt");
  save_parameters(path, net.parameters());
  std::ifstream in(path, std::ios::binary);
  std::vector<char> image((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
  in.close();
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(image.data(), static_cast<std::streamsize>(image.size() - 3));
  out.close();
  try {
    load_parameters(path, net.parameters());
    FAIL() << "expected SerializationError";
  } catch (const SerializationError& e) {
    const std::string what = e.what();
    // The message must point at the offending parameter and its shape.
    EXPECT_NE(what.find(net.parameters().back()->name), std::string::npos)
        << what;
    EXPECT_NE(what.find(net.parameters().back()->value.shape().str()),
              std::string::npos)
        << what;
  }
  fs::remove(path);
}

// ------------------------------------------------------------- net accounts

TEST(TrafficStatsState, RoundTripPreservesEveryCounter) {
  net::TrafficStats stats;
  Envelope e = make_envelope(0, 1, 2, 7, std::vector<std::uint8_t>(100));
  stats.record(e);
  e.kind = 3;
  stats.record(e, 64);
  stats.record_retransmit(50);
  stats.record_duplicate(60);
  stats.record_dropped(70);
  stats.record_corrupted(80);

  BufferWriter w;
  stats.save_state(w);
  net::TrafficStats loaded;
  BufferReader r({w.bytes().data(), w.size()});
  loaded.load_state(r);
  EXPECT_TRUE(r.exhausted());

  EXPECT_EQ(loaded.total_bytes(), stats.total_bytes());
  EXPECT_EQ(loaded.total_messages(), stats.total_messages());
  EXPECT_EQ(loaded.retransmits(), stats.retransmits());
  EXPECT_EQ(loaded.retransmit_bytes(), stats.retransmit_bytes());
  EXPECT_EQ(loaded.duplicates(), stats.duplicates());
  EXPECT_EQ(loaded.duplicate_bytes(), stats.duplicate_bytes());
  EXPECT_EQ(loaded.dropped(), stats.dropped());
  EXPECT_EQ(loaded.dropped_bytes(), stats.dropped_bytes());
  EXPECT_EQ(loaded.corrupted(), stats.corrupted());
  EXPECT_EQ(loaded.corrupted_bytes(), stats.corrupted_bytes());
  EXPECT_EQ(loaded.bytes_for_kind(2), stats.bytes_for_kind(2));
  EXPECT_EQ(loaded.bytes_for_kind(3), stats.bytes_for_kind(3));
  EXPECT_EQ(loaded.messages_for_kind(2), stats.messages_for_kind(2));
  EXPECT_EQ(loaded.bytes_between(0, 1), stats.bytes_between(0, 1));
  EXPECT_EQ(loaded.goodput_bytes(), stats.goodput_bytes());
}

TEST(NetworkState, RoundTripRestoresClockSequenceAndStats) {
  net::Network a;
  const NodeId n0 = a.add_node("a");
  const NodeId n1 = a.add_node("b");
  a.set_link(n0, n1, net::Link::mbps(100.0, 5.0));
  a.send(make_envelope(n0, n1, 1, 1, std::vector<std::uint8_t>(500)));
  (void)a.receive(n1);
  ASSERT_GT(a.clock().now(), 0.0);

  BufferWriter w;
  a.save_state(w);

  net::Network b;
  (void)b.add_node("a");
  (void)b.add_node("b");
  b.set_link(n0, n1, net::Link::mbps(100.0, 5.0));
  BufferReader r({w.bytes().data(), w.size()});
  b.load_state(r);
  EXPECT_TRUE(r.exhausted());
  EXPECT_EQ(b.clock().now(), a.clock().now());
  EXPECT_EQ(b.stats().total_bytes(), a.stats().total_bytes());

  // The continuation is identical: same next message, same arrival time.
  a.send(make_envelope(n1, n0, 2, 2, std::vector<std::uint8_t>(100)));
  b.send(make_envelope(n1, n0, 2, 2, std::vector<std::uint8_t>(100)));
  (void)a.receive(n0);
  (void)b.receive(n0);
  EXPECT_EQ(b.clock().now(), a.clock().now());
  EXPECT_EQ(b.stats().total_bytes(), a.stats().total_bytes());
}

TEST(NetworkState, InFlightFramesTravelWithTheCheckpoint) {
  // Under fault injection a round boundary may not be quiescent: a late
  // duplicate can still be in flight. It must survive the checkpoint and be
  // delivered by the resumed network at the same time with the same bytes.
  net::Network a;
  const NodeId n0 = a.add_node("a");
  const NodeId n1 = a.add_node("b");
  a.set_link(n0, n1, net::Link::mbps(100.0, 5.0));
  a.send(make_envelope(n0, n1, 3, 9, std::vector<std::uint8_t>{7, 8, 9}));
  EXPECT_FALSE(a.quiescent());

  BufferWriter w;
  a.save_state(w);

  net::Network b;
  (void)b.add_node("a");
  (void)b.add_node("b");
  b.set_link(n0, n1, net::Link::mbps(100.0, 5.0));
  BufferReader r({w.bytes().data(), w.size()});
  b.load_state(r);
  EXPECT_TRUE(r.exhausted());
  EXPECT_FALSE(b.quiescent());
  EXPECT_EQ(b.pending(n1), 1U);

  const Envelope from_a = a.receive(n1);
  const Envelope from_b = b.receive(n1);
  EXPECT_EQ(b.clock().now(), a.clock().now());
  EXPECT_EQ(from_b.kind, from_a.kind);
  EXPECT_EQ(from_b.round, from_a.round);
  EXPECT_EQ(from_b.payload, from_a.payload);
  EXPECT_TRUE(b.quiescent());
}

TEST(NetworkState, MisroutedInFlightFrameIsRefused) {
  net::Network a;
  const NodeId n0 = a.add_node("a");
  const NodeId n1 = a.add_node("b");
  a.send(make_envelope(n0, n1, 1, 1, std::vector<std::uint8_t>(10)));
  BufferWriter w;
  a.save_state(w);
  auto bytes = w.take();
  // Rewrite the in-flight frame's dst field so it no longer matches the
  // inbox it was stored under. Fixed layout: node count (4) + clock (8) +
  // sequence (8) + busy count (4) + one busy entry (16) + two inbox counts
  // (8) + arrival (8) + frame sequence (8) + src (4) puts dst at byte 68.
  const std::size_t dst_at = 4 + 8 + 8 + 4 + 16 + 8 + 8 + 8 + 4;
  ASSERT_EQ(bytes[dst_at], 1);  // sanity: this really is the dst field
  bytes[dst_at] = 0;
  net::Network b;
  (void)b.add_node("a");
  (void)b.add_node("b");
  BufferReader r({bytes.data(), bytes.size()});
  EXPECT_THROW(b.load_state(r), SerializationError);
}

}  // namespace
}  // namespace splitmed
