// ThreadPool / parallel_for unit tests, plus the substrate determinism
// contract: every parallelized kernel must produce bitwise-identical output
// at every thread count (docs/PROTOCOL.md).
#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "src/common/error.hpp"
#include "src/common/rng.hpp"
#include "src/common/thread_pool.hpp"
#include "src/nn/batchnorm.hpp"
#include "src/nn/conv2d.hpp"
#include "src/nn/pool.hpp"
#include "src/tensor/gemm.hpp"
#include "src/tensor/im2col.hpp"
#include "src/tensor/tensor.hpp"

namespace splitmed {
namespace {

/// Restores the pool default when a test finishes so thread-count tweaks
/// never leak into other tests.
struct PoolGuard {
  ~PoolGuard() { set_global_threads(0); }
};

TEST(ThreadPool, RunsEveryChunkExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4);
  std::vector<std::atomic<int>> counts(64);
  pool.run(64, [&](int c) { ++counts[static_cast<std::size_t>(c)]; });
  for (const auto& c : counts) EXPECT_EQ(c.load(), 1);
}

TEST(ThreadPool, SingleThreadPoolSpawnsNoWorkers) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.size(), 1);
  int calls = 0;
  pool.run(5, [&](int) { ++calls; });  // runs inline on this thread
  EXPECT_EQ(calls, 5);
}

TEST(ThreadPool, PropagatesChunkExceptions) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.run(8,
               [&](int c) {
                 if (c == 3) throw InvalidArgument("boom");
               }),
      InvalidArgument);
  // The pool survives a throwing job.
  std::atomic<int> done{0};
  pool.run(8, [&](int) { ++done; });
  EXPECT_EQ(done.load(), 8);
}

TEST(ParallelFor, CoversRangeWithDisjointChunks) {
  PoolGuard guard;
  set_global_threads(4);
  std::vector<int> touched(1000, 0);
  parallel_for(0, 1000, 1, [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t i = lo; i < hi; ++i) {
      ++touched[static_cast<std::size_t>(i)];
    }
  });
  for (const int t : touched) EXPECT_EQ(t, 1);
}

TEST(ParallelFor, RespectsGrainAndEmptyRange) {
  PoolGuard guard;
  set_global_threads(4);
  int calls = 0;
  // range 10 with grain 100 -> single inline chunk.
  parallel_for(0, 10, 100, [&](std::int64_t lo, std::int64_t hi) {
    ++calls;
    EXPECT_EQ(lo, 0);
    EXPECT_EQ(hi, 10);
  });
  EXPECT_EQ(calls, 1);
  parallel_for(5, 5, 1, [&](std::int64_t, std::int64_t) { ++calls; });
  EXPECT_EQ(calls, 1);  // empty range never invokes the body
}

TEST(ParallelFor, NestedCallsRunSerially) {
  PoolGuard guard;
  set_global_threads(4);
  std::vector<int> touched(256, 0);
  parallel_for(0, 16, 1, [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t i = lo; i < hi; ++i) {
      EXPECT_TRUE(in_parallel_region());
      // Nested loop must run inline (a fork-join pool waiting on itself
      // would deadlock) and still cover its range exactly once.
      parallel_for(0, 16, 1, [&](std::int64_t lo2, std::int64_t hi2) {
        for (std::int64_t j = lo2; j < hi2; ++j) {
          ++touched[static_cast<std::size_t>(i * 16 + j)];
        }
      });
    }
  });
  for (const int t : touched) EXPECT_EQ(t, 1);
}

TEST(ParallelFor, SetGlobalThreadsOneForcesSerial) {
  PoolGuard guard;
  set_global_threads(1);
  EXPECT_EQ(global_threads(), 1);
  parallel_for(0, 100, 1, [&](std::int64_t lo, std::int64_t hi) {
    EXPECT_EQ(lo, 0);
    EXPECT_EQ(hi, 100);
  });
}

/// Runs `compute` at 1, 2, 4, and 7 threads and expects the float outputs to
/// be bitwise identical across all runs.
void expect_thread_invariant(
    const std::function<std::vector<float>()>& compute) {
  PoolGuard guard;
  set_global_threads(1);
  const std::vector<float> serial = compute();
  for (const int threads : {2, 4, 7}) {
    set_global_threads(threads);
    const std::vector<float> parallel = compute();
    ASSERT_EQ(parallel.size(), serial.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
      ASSERT_EQ(parallel[i], serial[i])
          << "element " << i << " diverged at " << threads << " threads";
    }
  }
}

TEST(SubstrateDeterminism, GemmVariantsBitwiseInvariant) {
  Rng rng(11);
  const Tensor a = Tensor::normal(Shape{37, 53}, rng);
  const Tensor b = Tensor::normal(Shape{53, 29}, rng);
  const Tensor at = Tensor::normal(Shape{53, 37}, rng);
  const Tensor bt = Tensor::normal(Shape{29, 53}, rng);
  expect_thread_invariant([&] {
    std::vector<float> c(37 * 29 * 3);
    std::span<float> all(c);
    gemm_nn(37, 29, 53, a.data(), b.data(), all.subspan(0, 37 * 29));
    gemm_tn(37, 29, 53, at.data(), b.data(), all.subspan(37 * 29, 37 * 29));
    gemm_nt(37, 29, 53, a.data(), bt.data(), all.subspan(2 * 37 * 29, 37 * 29));
    return c;
  });
}

TEST(SubstrateDeterminism, Im2colCol2imBitwiseInvariant) {
  ConvGeometry g{6, 13, 13, 3, 3, 2, 1};
  Rng rng(13);
  const Tensor img = Tensor::normal(Shape{6, 13, 13}, rng);
  const Tensor colsrc =
      Tensor::normal(Shape{g.col_rows(), g.col_cols()}, rng);
  expect_thread_invariant([&] {
    std::vector<float> col(
        static_cast<std::size_t>(g.col_rows() * g.col_cols()));
    std::vector<float> back(static_cast<std::size_t>(6 * 13 * 13), 0.0F);
    im2col(g, img.data(), col);
    col2im(g, colsrc.data(), back);
    col.insert(col.end(), back.begin(), back.end());
    return col;
  });
}

TEST(SubstrateDeterminism, ConvForwardBackwardBitwiseInvariant) {
  expect_thread_invariant([] {
    Rng rng(17);
    nn::Conv2d conv(3, 8, 3, 1, 1, rng);
    const Tensor x = Tensor::normal(Shape{6, 3, 10, 10}, rng);
    const Tensor y = conv.forward(x, /*training=*/true);
    const Tensor g = Tensor::normal(y.shape(), rng);
    const Tensor gi = conv.backward(g);
    std::vector<float> out(y.data().begin(), y.data().end());
    out.insert(out.end(), gi.data().begin(), gi.data().end());
    for (const nn::Parameter* p : conv.parameters()) {
      out.insert(out.end(), p->grad.data().begin(), p->grad.data().end());
    }
    return out;
  });
}

TEST(SubstrateDeterminism, BatchNormAndPoolBitwiseInvariant) {
  expect_thread_invariant([] {
    Rng rng(19);
    nn::BatchNorm2d bn(5);
    nn::MaxPool2d maxp(2);
    nn::AvgPool2d avgp(2);
    const Tensor x = Tensor::normal(Shape{4, 5, 8, 8}, rng);
    const Tensor y = bn.forward(x, /*training=*/true);
    const Tensor g = Tensor::normal(y.shape(), rng);
    const Tensor gi = bn.backward(g);
    const Tensor my = maxp.forward(x, true);
    const Tensor mg = maxp.backward(Tensor::ones(my.shape()));
    const Tensor ay = avgp.forward(x, true);
    const Tensor ag = avgp.backward(Tensor::ones(ay.shape()));
    std::vector<float> out;
    for (const Tensor* t : {&y, &gi, &my, &mg, &ay, &ag}) {
      out.insert(out.end(), t->data().begin(), t->data().end());
    }
    for (const nn::Parameter* p : bn.parameters()) {
      out.insert(out.end(), p->grad.data().begin(), p->grad.data().end());
    }
    return out;
  });
}

}  // namespace
}  // namespace splitmed
