// Unit tests for the observability subsystem (src/obs/): the metrics
// registry and its Prometheus exposition, the dual-clock trace recorder and
// its Chrome trace-event JSON / JSONL exports, the cross-node flow events
// and their start/finish pairing through the simulated network, the
// critical-path analyzer's attribution model, the flight-recorder ring, and
// the ObsSession install/uninstall lifecycle with its single-session and
// postmortem-dump guarantees. The exported JSON is checked with a small
// recursive-descent validator, not substring matching, so a malformed
// escape or a trailing comma fails loudly here instead of in Perfetto.
#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/common/error.hpp"
#include "src/net/fault.hpp"
#include "src/net/link.hpp"
#include "src/net/network.hpp"
#include "src/obs/critical_path.hpp"
#include "src/obs/obs.hpp"
#include "src/serial/message.hpp"

namespace splitmed::obs {
namespace {

namespace fs = std::filesystem;

std::string temp_path(const std::string& name) {
  return (fs::path(::testing::TempDir()) / name).string();
}

// ---------------------------------------------------------------------------
// Minimal JSON validator. Accepts exactly the RFC 8259 grammar (no trailing
// commas, no unquoted keys, \u escapes must have four hex digits). Returns
// true iff `text` is one complete JSON value with nothing but whitespace
// after it.
class JsonValidator {
 public:
  explicit JsonValidator(std::string_view text) : s_(text) {}

  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  bool value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }

  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (consume('}')) return true;
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (!consume(':')) return false;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (consume('}')) return true;
      if (!consume(',')) return false;
    }
  }

  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (consume(']')) return true;
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (consume(']')) return true;
      if (!consume(',')) return false;
    }
  }

  bool string() {
    if (!consume('"')) return false;
    while (pos_ < s_.size()) {
      const char c = s_[pos_++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) return false;  // raw control
      if (c == '\\') {
        if (pos_ >= s_.size()) return false;
        const char e = s_[pos_++];
        if (e == 'u') {
          for (int i = 0; i < 4; ++i) {
            if (pos_ >= s_.size() ||
                std::isxdigit(static_cast<unsigned char>(s_[pos_])) == 0) {
              return false;
            }
            ++pos_;
          }
        } else if (std::string_view("\"\\/bfnrt").find(e) ==
                   std::string_view::npos) {
          return false;
        }
      }
    }
    return false;  // unterminated
  }

  bool number() {
    const std::size_t start = pos_;
    consume('-');
    if (!digits()) return false;
    if (consume('.') && !digits()) return false;
    if (pos_ < s_.size() && (s_[pos_] == 'e' || s_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < s_.size() && (s_[pos_] == '+' || s_[pos_] == '-')) ++pos_;
      if (!digits()) return false;
    }
    return pos_ > start;
  }

  bool digits() {
    const std::size_t start = pos_;
    while (pos_ < s_.size() &&
           std::isdigit(static_cast<unsigned char>(s_[pos_])) != 0) {
      ++pos_;
    }
    return pos_ > start;
  }

  bool literal(std::string_view word) {
    if (s_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  bool consume(char c) {
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_])) != 0) {
      ++pos_;
    }
  }

  std::string_view s_;
  std::size_t pos_ = 0;
};

bool is_valid_json(std::string_view text) {
  return JsonValidator(text).valid();
}

TEST(JsonValidatorSelfTest, AcceptsAndRejects) {
  EXPECT_TRUE(is_valid_json(R"({"a":[1,2.5,-3e+2],"b":"x\n","c":null})"));
  EXPECT_TRUE(is_valid_json("[]"));
  EXPECT_FALSE(is_valid_json(R"({"a":1,})"));     // trailing comma
  EXPECT_FALSE(is_valid_json(R"({"a":01})" "x"));  // trailing garbage
  EXPECT_FALSE(is_valid_json(R"("unterminated)"));
  EXPECT_FALSE(is_valid_json(R"("bad \q escape")"));
}

// ---------------------------------------------------------------------------
// Metrics registry.

TEST(Metrics, CounterOnlyGoesUp) {
  MetricsRegistry reg;
  Counter& c = reg.counter("splitmed_test_total", "help");
  c.inc();
  c.inc(2.5);
  EXPECT_DOUBLE_EQ(c.value(), 3.5);
  EXPECT_THROW(c.inc(-1.0), InvalidArgument);
}

TEST(Metrics, GaugeMovesBothWays) {
  MetricsRegistry reg;
  Gauge& g = reg.gauge("splitmed_test_gauge", "help");
  g.set(4.0);
  g.add(-1.5);
  EXPECT_DOUBLE_EQ(g.value(), 2.5);
}

TEST(Metrics, HistogramUsesUpperInclusiveLeBuckets) {
  MetricsRegistry reg;
  Histogram& h =
      reg.histogram("splitmed_test_seconds", "help", {1.0, 2.0, 5.0});
  // Prometheus `le` semantics: a value exactly on a bound belongs to that
  // bucket; values past the last bound land only in +Inf.
  h.observe(1.0);
  h.observe(1.5);
  h.observe(2.0);
  h.observe(7.0);
  EXPECT_EQ(h.count(), 4U);
  EXPECT_DOUBLE_EQ(h.sum(), 11.5);
  EXPECT_EQ(h.cumulative_count(0), 1U);  // <= 1.0
  EXPECT_EQ(h.cumulative_count(1), 3U);  // <= 2.0
  EXPECT_EQ(h.cumulative_count(2), 3U);  // <= 5.0
}

TEST(Metrics, HistogramRejectsBadBounds) {
  MetricsRegistry reg;
  EXPECT_THROW(reg.histogram("splitmed_test_e", "help", {}), InvalidArgument);
  EXPECT_THROW(reg.histogram("splitmed_test_u", "help", {2.0, 1.0}),
               InvalidArgument);
  EXPECT_THROW(reg.histogram("splitmed_test_d", "help", {1.0, 1.0}),
               InvalidArgument);
}

TEST(Metrics, RejectsInvalidNamesAndTypeConflicts) {
  MetricsRegistry reg;
  EXPECT_THROW(reg.counter("0starts_with_digit", "help"), InvalidArgument);
  EXPECT_THROW(reg.counter("has-dash", "help"), InvalidArgument);
  reg.counter("splitmed_test_total", "help");
  // Same name, different type: must throw, never silently alias.
  EXPECT_THROW(reg.gauge("splitmed_test_total", "help"), InvalidArgument);
  reg.histogram("splitmed_test_h", "help", {1.0, 2.0});
  EXPECT_THROW(reg.histogram("splitmed_test_h", "help", {1.0, 3.0}),
               InvalidArgument);
}

TEST(Metrics, SameNameIsStablePerLabelSet) {
  MetricsRegistry reg;
  Counter& a = reg.counter("splitmed_test_total", "help",
                           {{"kind", "activation"}});
  Counter& b = reg.counter("splitmed_test_total", "help", {{"kind", "logits"}});
  EXPECT_NE(&a, &b);
  // Re-requesting the same (name, labels) returns the same instance.
  EXPECT_EQ(&a, &reg.counter("splitmed_test_total", "help",
                             {{"kind", "activation"}}));
  EXPECT_EQ(reg.families(), 1U);
}

TEST(Metrics, PrometheusExpositionIsExact) {
  MetricsRegistry reg;
  reg.counter("splitmed_msgs_total", "Messages sent", {{"kind", "activation"}})
      .inc(3);
  reg.gauge("splitmed_loss", "Train loss").set(0.5);
  Histogram& h = reg.histogram("splitmed_lat_seconds", "Latency",
                               {0.005, 0.01});
  h.observe(0.004);
  h.observe(0.2);
  std::ostringstream os;
  reg.write_prometheus(os);
  const std::string text = os.str();
  EXPECT_NE(text.find("# HELP splitmed_msgs_total Messages sent\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE splitmed_msgs_total counter\n"),
            std::string::npos);
  EXPECT_NE(text.find("splitmed_msgs_total{kind=\"activation\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE splitmed_loss gauge\n"), std::string::npos);
  EXPECT_NE(text.find("splitmed_loss 0.5\n"), std::string::npos);
  // Bucket bounds render via shortest round-trip, so 0.005 stays "0.005"
  // (not "0.0050000000000000001"); buckets are cumulative and +Inf closes
  // the family.
  EXPECT_NE(text.find("splitmed_lat_seconds_bucket{le=\"0.005\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("splitmed_lat_seconds_bucket{le=\"0.01\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("splitmed_lat_seconds_bucket{le=\"+Inf\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("splitmed_lat_seconds_count 2\n"), std::string::npos);
  EXPECT_NE(text.find("splitmed_lat_seconds_sum "), std::string::npos);
}

// ---------------------------------------------------------------------------
// Trace recorder.

TEST(Trace, JsonPrimitivesEscapeAndRoundTrip) {
  EXPECT_EQ(json_string("a\"b\\c\nd"), R"("a\"b\\c\nd")");
  EXPECT_TRUE(is_valid_json(json_string(std::string("\x01\x1f tab\t"))));
  EXPECT_EQ(json_number(0.005), "0.005");
  EXPECT_EQ(json_number(-2.0), "-2");
  // JSON has no NaN/Inf; they degrade to null.
  EXPECT_EQ(json_number(std::numeric_limits<double>::quiet_NaN()), "null");
  EXPECT_EQ(json_number(std::numeric_limits<double>::infinity()), "null");
}

TEST(Trace, SpanRecordsCompleteEventWithArgs) {
  TraceRecorder rec;
  {
    Span span(&rec, "unit.work", "test");
    span.arg("round", std::uint64_t{3});
    span.arg("kind", "activation");
  }
  rec.instant("unit.mark", "test");
  rec.counter("unit.value", 1.5);
  EXPECT_EQ(rec.size(), 3U);
  EXPECT_EQ(rec.dropped(), 0U);
}

TEST(Trace, NullRecorderSpanIsANoOp) {
  Span span(nullptr, "never.recorded", "test");
  span.arg("key", "value");  // must not crash
}

TEST(Trace, DropsNewestPastCapAndCounts) {
  TraceRecorder rec(/*max_events=*/2);
  rec.instant("first", "test");
  rec.instant("second", "test");
  rec.instant("third", "test");
  EXPECT_EQ(rec.size(), 2U);
  EXPECT_EQ(rec.dropped(), 1U);
}

TEST(Trace, ChromeTraceIsValidJsonWithDualClockMirror) {
  TraceRecorder rec;
  double sim = 1.25;
  rec.set_sim_source([&sim] { return sim; });
  {
    Span span(&rec, "net.send", "net");
    span.arg("bytes", std::uint64_t{4416});
  }
  rec.instant("no \"quotes\" issue", "test");
  std::ostringstream os;
  rec.write_chrome_trace(os);
  const std::string text = os.str();
  ASSERT_TRUE(is_valid_json(text)) << text;
  // Both clock timelines are named, and sim-stamped events are mirrored
  // under pid 2.
  EXPECT_NE(text.find("\"process_name\""), std::string::npos);
  EXPECT_NE(text.find("\"pid\":1"), std::string::npos);
  EXPECT_NE(text.find("\"pid\":2"), std::string::npos);
  EXPECT_NE(text.find("\"net.send\""), std::string::npos);
}

TEST(Trace, JsonlLinesAreEachValidJson) {
  TraceRecorder rec;
  rec.set_sim_source([] { return 2.0; });
  rec.instant("a", "test", {arg("path", "dir\\file \"x\"")});
  rec.counter("b", 0.25);
  std::ostringstream os;
  rec.write_jsonl(os);
  std::istringstream in(os.str());
  std::string line;
  std::size_t lines = 0;
  while (std::getline(in, line)) {
    EXPECT_TRUE(is_valid_json(line)) << line;
    ++lines;
  }
  EXPECT_EQ(lines, 2U);
}

// ---------------------------------------------------------------------------
// Flight recorder.

TEST(Flight, RingKeepsNewestWithContinuousSeq) {
  FlightRecorder fr(/*capacity=*/4);
  for (int i = 0; i < 10; ++i) {
    fr.note(static_cast<double>(i), "event " + std::to_string(i));
  }
  EXPECT_EQ(fr.total_recorded(), 10U);
  const auto events = fr.snapshot();
  ASSERT_EQ(events.size(), 4U);
  // Oldest-first, and the ring holds the LAST four events (6..9) with their
  // original monotone sequence numbers intact.
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].seq, 6U + i);
    EXPECT_EQ(events[i].what, "event " + std::to_string(6 + i));
    EXPECT_DOUBLE_EQ(events[i].sim_s, static_cast<double>(6 + i));
  }
}

TEST(Flight, DumpCarriesReasonAndEvents) {
  FlightRecorder fr(8);
  fr.note(0.5, "send activation p0->server round=1");
  fr.note(-1.0, "TIMEOUT platform 0");
  std::ostringstream os;
  fr.dump(os, "unit-test reason");
  const std::string text = os.str();
  EXPECT_NE(text.find("unit-test reason"), std::string::npos);
  EXPECT_NE(text.find("send activation p0->server round=1"),
            std::string::npos);
  EXPECT_NE(text.find("TIMEOUT platform 0"), std::string::npos);

  const std::string path = temp_path("flight_dump_test.log");
  ASSERT_TRUE(fr.dump_to_file(path, "unit-test reason"));
  std::ifstream in(path);
  const std::string file((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
  EXPECT_EQ(file, text);
  fs::remove(path);
}

// ---------------------------------------------------------------------------
// Flow events: the "ph":"s"/"f" pairs that link a send on one node timeline
// to its delivery on another. The exporter writes one event per line, so the
// pairing checks scan lines of the Chrome export.

struct FlowEvent {
  char ph = '?';
  std::uint64_t id = 0;
  bool bound_enclosing = false;  // carries "bp":"e"
  bool on_sim_pid = false;       // exported on the simulated timeline (pid 2)
};

std::vector<FlowEvent> flow_events(const std::string& chrome) {
  std::vector<FlowEvent> out;
  std::istringstream in(chrome);
  std::string line;
  while (std::getline(in, line)) {
    const bool start = line.find("\"ph\":\"s\"") != std::string::npos;
    const bool finish = line.find("\"ph\":\"f\"") != std::string::npos;
    if (!start && !finish) continue;
    FlowEvent ev;
    ev.ph = start ? 's' : 'f';
    const std::size_t id_pos = line.find("\"id\":");
    if (id_pos != std::string::npos) {
      ev.id = std::strtoull(line.c_str() + id_pos + 5, nullptr, 10);
    }
    ev.bound_enclosing = line.find("\"bp\":\"e\"") != std::string::npos;
    ev.on_sim_pid = line.find("\"pid\":2") != std::string::npos;
    out.push_back(ev);
  }
  return out;
}

/// Asserts the flow events in a Chrome export form a perfect bijection:
/// every start has exactly one finish with the same (nonzero) id, every
/// finish binds to its enclosing slice, and all live on the sim timeline.
/// Returns the sorted flow ids.
std::vector<std::uint64_t> expect_flows_paired(const std::string& chrome) {
  std::vector<std::uint64_t> starts;
  std::vector<std::uint64_t> finishes;
  for (const FlowEvent& ev : flow_events(chrome)) {
    EXPECT_NE(ev.id, 0U);
    EXPECT_TRUE(ev.on_sim_pid);
    EXPECT_EQ(ev.bound_enclosing, ev.ph == 'f');
    (ev.ph == 's' ? starts : finishes).push_back(ev.id);
  }
  std::sort(starts.begin(), starts.end());
  std::sort(finishes.begin(), finishes.end());
  EXPECT_EQ(starts, finishes);
  EXPECT_EQ(std::adjacent_find(starts.begin(), starts.end()), starts.end())
      << "duplicate flow id";
  return starts;
}

std::string session_chrome_trace() {
  std::ostringstream os;
  trace()->write_chrome_trace(os);
  return os.str();
}

TEST(Flow, RecorderExportsEachFlowEventOnceWithIdAndBindingPoint) {
  TraceRecorder rec;
  TraceEvent start;
  start.ph = 's';
  start.name = "net.flow";
  start.cat = "net";
  start.sim_s = 1.0;
  start.flow_id = 42;
  rec.record(start);
  TraceEvent finish;
  finish.ph = 'f';
  finish.name = "net.flow";
  finish.cat = "net";
  finish.sim_s = 2.5;
  finish.flow_id = 42;
  rec.record(finish);

  std::ostringstream os;
  rec.write_chrome_trace(os);
  const std::string text = os.str();
  ASSERT_TRUE(is_valid_json(text)) << text;
  // Exactly one 's' and one 'f' — flow events are never mirrored onto the
  // wall timeline (a duplicated id reads as two overlapping flows).
  const auto flows = flow_events(text);
  ASSERT_EQ(flows.size(), 2U);
  EXPECT_EQ(flows[0].ph, 's');
  EXPECT_EQ(flows[1].ph, 'f');
  EXPECT_EQ(expect_flows_paired(text), std::vector<std::uint64_t>{42});

  std::ostringstream jsonl;
  rec.write_jsonl(jsonl);
  EXPECT_NE(jsonl.str().find("\"flow_id\":42"), std::string::npos);
}

TEST(Flow, NetworkPairsEveryDeliveredFrame) {
  ObsConfig cfg;
  cfg.enabled = true;
  cfg.detail = 2;
  const ObsSession session(cfg);
  net::Network network;
  const NodeId a = network.add_node("a");
  const NodeId b = network.add_node("b");
  network.set_link(a, b, net::Link{100.0, 0.5});
  for (std::uint64_t round = 0; round < 3; ++round) {
    network.send(make_envelope(a, b, 1, round, {1, 2, 3}));
    (void)network.receive(b);
  }
  EXPECT_EQ(expect_flows_paired(session_chrome_trace()).size(), 3U);
}

TEST(Flow, InjectedDuplicateGetsItsOwnFlow) {
  ObsConfig cfg;
  cfg.enabled = true;
  const ObsSession session(cfg);
  net::Network network;
  const NodeId a = network.add_node("a");
  const NodeId b = network.add_node("b");
  network.set_link(a, b, net::Link{100.0, 0.1});
  net::FaultPlan plan;
  plan.duplicate_rate = 1.0;
  network.set_fault_plan(a, b, plan);
  network.set_fault_seed(7);

  network.send(make_envelope(a, b, 1, 0, {9, 9}));
  const Envelope first = network.receive(b);
  const Envelope second = network.receive(b);
  // Two physical frames flew: each carries its own sideband flow id, and
  // the export holds two disjoint start/finish pairs.
  EXPECT_NE(first.trace.flow_id, second.trace.flow_id);
  EXPECT_EQ(expect_flows_paired(session_chrome_trace()).size(), 2U);
}

TEST(Flow, CorruptDiscardedFrameStillFinishesItsFlow) {
  ObsConfig cfg;
  cfg.enabled = true;
  const ObsSession session(cfg);
  net::Network network;
  const NodeId a = network.add_node("a");
  const NodeId b = network.add_node("b");
  network.set_link(a, b, net::Link{100.0, 0.1});
  net::FaultPlan plan;
  plan.corrupt_rate = 1.0;
  network.set_fault_plan(a, b, plan);
  network.set_fault_seed(7);

  network.send(make_envelope(a, b, 1, 0, {1, 2, 3, 4}));
  // The CRC trailer fails at delivery; the frame is discarded, never handed
  // to protocol code — but the WAN did deliver it, so its flow finishes.
  EXPECT_FALSE(network.receive_before(b, 1e9).has_value());
  EXPECT_EQ(network.stats().corrupted(), 1U);
  EXPECT_EQ(expect_flows_paired(session_chrome_trace()).size(), 1U);
}

TEST(Flow, EachRetransmissionAttemptIsItsOwnFlight) {
  ObsConfig cfg;
  cfg.enabled = true;
  const ObsSession session(cfg);
  net::Network network;
  const NodeId a = network.add_node("a");
  const NodeId b = network.add_node("b");
  network.set_link(a, b, net::Link{100.0, 0.2});

  Envelope request = make_envelope(a, b, 1, 0, {5});
  request.trace.platform = a;
  network.send(request);
  // The recovery layer re-sends the same protocol message: a distinct
  // physical frame with the attempt counter bumped (core::Platform's
  // resend_last path).
  Envelope retry = request;
  retry.retransmit = true;
  retry.trace.attempt = 1;
  network.send(retry);

  const Envelope d0 = network.receive(b);
  const Envelope d1 = network.receive(b);
  EXPECT_EQ(d0.trace.attempt, 0U);
  EXPECT_EQ(d1.trace.attempt, 1U);
  EXPECT_NE(d0.trace.flow_id, d1.trace.flow_id);
  EXPECT_EQ(expect_flows_paired(session_chrome_trace()).size(), 2U);
}

// ---------------------------------------------------------------------------
// Critical-path analyzer: the attribution model on crafted waits.

using CP = CriticalPathAnalyzer;

TEST(CriticalPath, WaitsSplitAtFlightStartAndSumToDuration) {
  CP cp;
  cp.set_topology(0, {"server", "p1", "p2"});
  cp.begin_round(1, 10.0);
  // Request wait 10->12 on a frame that took flight at 11: one second of
  // platform-side queueing, one second of uplink.
  MsgWait request;
  request.from = 10.0;
  request.to = 12.0;
  request.sent_sim = 11.0;
  request.src = 1;
  request.dst = 0;
  cp.observe_wait(request);
  // Reply wait 12->15, flight start 13: one second of server queue, two of
  // downlink — owned by the platform being replied to (dst).
  MsgWait reply;
  reply.from = 12.0;
  reply.to = 15.0;
  reply.sent_sim = 13.0;
  reply.src = 0;
  reply.dst = 1;
  cp.observe_wait(reply);
  cp.close_round(1, 16.0);  // one second not spent waiting -> slack

  const auto records = cp.records();
  ASSERT_EQ(records.size(), 1U);
  const auto& r = records[0];
  EXPECT_EQ(r.round, 1);
  EXPECT_DOUBLE_EQ(r.duration(), 6.0);
  EXPECT_DOUBLE_EQ(r.segments[CP::kPlatformCompute], 1.0);
  EXPECT_DOUBLE_EQ(r.segments[CP::kUplink], 1.0);
  EXPECT_DOUBLE_EQ(r.segments[CP::kServerQueue], 1.0);
  EXPECT_DOUBLE_EQ(r.segments[CP::kServerCompute], 0.0);
  EXPECT_DOUBLE_EQ(r.segments[CP::kDownlink], 2.0);
  EXPECT_DOUBLE_EQ(r.segments[CP::kRetransmit], 0.0);
  EXPECT_DOUBLE_EQ(r.segments[CP::kDeadlineSlack], 1.0);
  double sum = 0.0;
  for (const double s : r.segments) sum += s;
  EXPECT_DOUBLE_EQ(sum, r.duration());  // the invariant CI gates on
  ASSERT_TRUE(r.has_straggler);
  EXPECT_EQ(r.straggler_node, 1U);
  EXPECT_EQ(r.straggler_segment, CP::kDownlink);
  EXPECT_DOUBLE_EQ(r.straggler_seconds, 5.0);
}

TEST(CriticalPath, FaultedWaitsAndTimeoutsAreRetransmitOverhead) {
  CP cp;
  cp.set_topology(0, {"server", "p1", "p2"});
  cp.begin_round(4, 0.0);
  MsgWait resent;  // retransmitted reply: every second is recovery overhead
  resent.from = 0.0;
  resent.to = 3.0;
  resent.sent_sim = 1.0;
  resent.src = 0;
  resent.dst = 1;
  resent.retransmit = true;
  cp.observe_wait(resent);
  MsgWait corrupt;  // CRC-discarded request: same bucket
  corrupt.from = 3.0;
  corrupt.to = 4.0;
  corrupt.sent_sim = 3.5;
  corrupt.src = 1;
  corrupt.dst = 0;
  corrupt.corrupt_discarded = true;
  cp.observe_wait(corrupt);
  cp.note_timeout_wait(4.0, 6.0, 2);  // recovery timeout on platform 2
  cp.close_round(4, 6.0);

  const auto& r = cp.records().back();
  EXPECT_DOUBLE_EQ(r.segments[CP::kRetransmit], 6.0);
  EXPECT_DOUBLE_EQ(r.segments[CP::kDeadlineSlack], 0.0);
  ASSERT_TRUE(r.has_straggler);
  EXPECT_EQ(r.straggler_node, 1U);  // 4 s attributed vs p2's 2 s
  EXPECT_EQ(r.straggler_segment, CP::kRetransmit);
}

TEST(CriticalPath, StragglerTiesBreakToTheLowerNodeId) {
  CP cp;
  cp.set_topology(0, {"server", "p1", "p2"});
  cp.begin_round(1, 0.0);
  // Identical two-second uplink waits, the HIGHER node id observed first:
  // the election must still pick node 1 (ordered per-platform map + strict
  // greater-than), so straggler identity is deterministic.
  MsgWait wait;
  wait.from = 0.0;
  wait.to = 2.0;
  wait.sent_sim = 0.0;
  wait.src = 2;
  wait.dst = 0;
  cp.observe_wait(wait);
  wait.from = 2.0;
  wait.to = 4.0;
  wait.sent_sim = 2.0;
  wait.src = 1;
  cp.observe_wait(wait);
  cp.close_round(1, 4.0);

  const auto& r = cp.records().back();
  ASSERT_TRUE(r.has_straggler);
  EXPECT_EQ(r.straggler_node, 1U);
  EXPECT_DOUBLE_EQ(r.straggler_seconds, 2.0);
}

TEST(CriticalPath, WaitsOutsideAnOpenRoundAreIgnored) {
  CP cp;
  cp.set_topology(0, {"server", "p1"});
  MsgWait wait;
  wait.from = 0.0;
  wait.to = 5.0;
  wait.src = 1;
  wait.dst = 0;
  cp.observe_wait(wait);           // before any round: construction traffic
  cp.note_timeout_wait(0.0, 5.0, 1);
  cp.close_round(1, 5.0);          // nothing open: no record
  EXPECT_TRUE(cp.records().empty());

  cp.begin_round(2, 10.0);
  cp.close_round(3, 12.0);         // wrong round id: round 2 stays open
  EXPECT_TRUE(cp.records().empty());
  cp.close_round(2, 12.0);
  ASSERT_EQ(cp.records().size(), 1U);
  // No wait was observed inside the round — all slack.
  EXPECT_DOUBLE_EQ(cp.records()[0].segments[CP::kDeadlineSlack], 2.0);
}

TEST(CriticalPath, JsonlRecordsAreValidJsonWithTheDocumentedSchema) {
  CP cp;
  cp.set_topology(0, {"server", "metro-hospital-a-0"});
  cp.begin_round(1, 0.0);
  MsgWait wait;
  wait.from = 0.0;
  wait.to = 1.5;
  wait.sent_sim = 0.5;
  wait.src = 1;
  wait.dst = 0;
  cp.observe_wait(wait);
  cp.close_round(1, 2.0);

  std::ostringstream os;
  cp.write_jsonl(os);
  std::istringstream in(os.str());
  std::string line;
  std::size_t lines = 0;
  while (std::getline(in, line)) {
    EXPECT_TRUE(is_valid_json(line)) << line;
    for (const char* key : {"\"round\":", "\"duration_s\":", "\"segments\":",
                            "\"straggler\":", "\"per_platform\":"}) {
      EXPECT_NE(line.find(key), std::string::npos) << key;
    }
    ++lines;
  }
  EXPECT_EQ(lines, 1U);
  // The straggler carries the display name and its dominant segment.
  EXPECT_NE(os.str().find("\"platform\":\"metro-hospital-a-0\""),
            std::string::npos);
  EXPECT_NE(os.str().find("\"reason\":\"uplink\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// Session lifecycle.

TEST(Session, DisabledConfigInstallsNothing) {
  const ObsSession session{ObsConfig{}};
  EXPECT_FALSE(session.active());
  EXPECT_EQ(trace(), nullptr);
  EXPECT_EQ(metrics(), nullptr);
  EXPECT_EQ(flight(), nullptr);
  EXPECT_EQ(gemm_seconds_counter(), nullptr);
  EXPECT_FALSE(detail_at_least(1));
}

TEST(Session, InstallsAndUninstallsGlobals) {
  ObsConfig cfg;
  cfg.enabled = true;
  cfg.detail = 2;
  {
    ObsSession session(cfg);
    EXPECT_TRUE(session.active());
    EXPECT_NE(trace(), nullptr);
    EXPECT_NE(metrics(), nullptr);
    EXPECT_NE(flight(), nullptr);
    EXPECT_NE(gemm_seconds_counter(), nullptr);
    EXPECT_NE(gemm_calls_counter(), nullptr);
    EXPECT_TRUE(detail_at_least(2));
    EXPECT_FALSE(detail_at_least(3));
    // A second concurrent session must be refused, not silently layered.
    EXPECT_THROW(ObsSession{cfg}, Error);
    session.close();
    EXPECT_FALSE(session.active());
    EXPECT_EQ(trace(), nullptr);
    session.close();  // idempotent
  }
  // The slot is free again after teardown.
  const ObsSession next(cfg);
  EXPECT_TRUE(next.active());
}

TEST(Session, RejectsBadDetail) {
  ObsConfig cfg;
  cfg.enabled = true;
  cfg.detail = 3;
  EXPECT_THROW(ObsSession{cfg}, Error);
  cfg.detail = 0;
  EXPECT_THROW(ObsSession{cfg}, Error);
}

TEST(Session, WritesConfiguredFilesOnClose) {
  ObsConfig cfg;
  cfg.enabled = true;
  cfg.trace_path = temp_path("obs_session_trace.json");
  cfg.trace_jsonl_path = temp_path("obs_session_trace.jsonl");
  cfg.metrics_path = temp_path("obs_session_metrics.prom");
  {
    ObsSession session(cfg);
    trace()->instant("unit.event", "test");
    metrics()->counter("splitmed_unit_total", "help").inc();
  }
  std::ifstream in(cfg.trace_path);
  const std::string text((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
  EXPECT_TRUE(is_valid_json(text));
  EXPECT_TRUE(fs::exists(cfg.trace_jsonl_path));
  std::ifstream prom(cfg.metrics_path);
  const std::string ptext((std::istreambuf_iterator<char>(prom)),
                          std::istreambuf_iterator<char>());
  EXPECT_NE(ptext.find("splitmed_unit_total 1\n"), std::string::npos);
  for (const auto& p : {cfg.trace_path, cfg.trace_jsonl_path,
                        cfg.metrics_path}) {
    fs::remove(p);
  }
}

TEST(Session, PostmortemDumpsFlightToConfiguredPath) {
  ObsConfig cfg;
  cfg.enabled = true;
  cfg.flight_dump_path = temp_path("obs_postmortem.log");
  {
    ObsSession session(cfg);
    flight()->note(1.0, "send activation p0->server round=7");
    postmortem("unit-test protocol error");
    // Cascading failures must not overwrite the first dump.
    postmortem("secondary failure");
    EXPECT_DOUBLE_EQ(
        metrics()->counter("splitmed_postmortems_total", "").value(), 2.0);
  }
  std::ifstream in(cfg.flight_dump_path);
  const std::string text((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
  EXPECT_NE(text.find("unit-test protocol error"), std::string::npos);
  EXPECT_NE(text.find("send activation p0->server round=7"),
            std::string::npos);
  EXPECT_TRUE(fs::exists(cfg.flight_dump_path + ".1"));
  fs::remove(cfg.flight_dump_path);
  fs::remove(cfg.flight_dump_path + ".1");
}

TEST(Session, PostmortemIsANoOpWithoutASession) {
  postmortem("nobody is listening");  // must not crash or write anything
  flight_note(1.0, "nor this");
}

TEST(Session, KindNamerFallsBackToNumbered) {
  set_kind_namer(nullptr);
  EXPECT_EQ(kind_name(7), "kind7");
  set_kind_namer([](std::uint32_t k) { return "k" + std::to_string(k); });
  EXPECT_EQ(kind_name(7), "k7");
  set_kind_namer(nullptr);
}

}  // namespace
}  // namespace splitmed::obs
