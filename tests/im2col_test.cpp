// Tests for tensor/im2col.hpp: geometry, known lowering results, and the
// adjointness property <im2col(x), y> == <x, col2im(y)> that conv backward
// relies on.
#include <gtest/gtest.h>

#include <vector>

#include "src/common/error.hpp"
#include "src/common/rng.hpp"
#include "src/tensor/im2col.hpp"

namespace splitmed {
namespace {

TEST(ConvGeometry, OutputDims) {
  ConvGeometry g{3, 32, 32, 3, 3, 1, 1};
  EXPECT_EQ(g.out_h(), 32);
  EXPECT_EQ(g.out_w(), 32);
  EXPECT_EQ(g.col_rows(), 27);
  EXPECT_EQ(g.col_cols(), 1024);

  ConvGeometry strided{1, 8, 8, 3, 3, 2, 0};
  EXPECT_EQ(strided.out_h(), 3);
  EXPECT_EQ(strided.out_w(), 3);
}

TEST(ConvGeometry, ValidateRejectsDegenerate) {
  ConvGeometry bad{1, 2, 2, 5, 5, 1, 0};  // kernel larger than input
  EXPECT_THROW(bad.validate(), InvalidArgument);
  ConvGeometry neg{0, 4, 4, 3, 3, 1, 0};
  EXPECT_THROW(neg.validate(), InvalidArgument);
}

TEST(Im2col, Identity1x1Kernel) {
  // 1x1 kernel, stride 1, no pad: col == image.
  ConvGeometry g{2, 3, 3, 1, 1, 1, 0};
  std::vector<float> img(18);
  for (std::size_t i = 0; i < img.size(); ++i) img[i] = static_cast<float>(i);
  std::vector<float> col(static_cast<std::size_t>(g.col_rows() * g.col_cols()));
  im2col(g, img, col);
  for (std::size_t i = 0; i < img.size(); ++i) EXPECT_EQ(col[i], img[i]);
}

TEST(Im2col, KnownSmallCase) {
  // 1 channel 2x2 image, 2x2 kernel, no pad: single output column holding
  // the whole image in kernel order.
  ConvGeometry g{1, 2, 2, 2, 2, 1, 0};
  const std::vector<float> img = {1, 2, 3, 4};
  std::vector<float> col(4);
  im2col(g, img, col);
  EXPECT_EQ(col, (std::vector<float>{1, 2, 3, 4}));
}

TEST(Im2col, PaddingProducesZeros) {
  // 1x1 image, 3x3 kernel, pad 1: only the center tap sees the pixel.
  ConvGeometry g{1, 1, 1, 3, 3, 1, 1};
  const std::vector<float> img = {5.0F};
  std::vector<float> col(9);
  im2col(g, img, col);
  for (std::size_t r = 0; r < 9; ++r) {
    EXPECT_EQ(col[r], r == 4 ? 5.0F : 0.0F) << "tap " << r;
  }
}

TEST(Col2im, AccumulatesOverlaps) {
  // 3x3 image, 2x2 kernel, stride 1: center pixel is covered by all 4
  // windows. col2im of all-ones must count coverage.
  ConvGeometry g{1, 3, 3, 2, 2, 1, 0};
  std::vector<float> col(static_cast<std::size_t>(g.col_rows() * g.col_cols()),
                         1.0F);
  std::vector<float> img(9, 0.0F);
  col2im(g, col, img);
  EXPECT_EQ(img[4], 4.0F);  // center: 4 windows
  EXPECT_EQ(img[0], 1.0F);  // corner: 1 window
  EXPECT_EQ(img[1], 2.0F);  // edge: 2 windows
}

TEST(Col2imAdjoint, InnerProductIdentity) {
  // <im2col(x), y> == <x, col2im(y)> for random x, y — exactly the identity
  // that makes conv's input-gradient correct.
  const ConvGeometry g{3, 7, 6, 3, 3, 2, 1};
  Rng rng(77);
  std::vector<float> x(static_cast<std::size_t>(g.channels * g.in_h * g.in_w));
  std::vector<float> y(static_cast<std::size_t>(g.col_rows() * g.col_cols()));
  for (auto& v : x) v = rng.normal();
  for (auto& v : y) v = rng.normal();

  std::vector<float> cx(y.size());
  im2col(g, x, cx);
  std::vector<float> ay(x.size(), 0.0F);
  col2im(g, y, ay);

  double lhs = 0.0, rhs = 0.0;
  for (std::size_t i = 0; i < y.size(); ++i) lhs += static_cast<double>(cx[i]) * y[i];
  for (std::size_t i = 0; i < x.size(); ++i) rhs += static_cast<double>(x[i]) * ay[i];
  EXPECT_NEAR(lhs, rhs, 1e-3 * (1.0 + std::abs(lhs)));
}

TEST(Im2col, RejectsTooSmallSpans) {
  ConvGeometry g{1, 4, 4, 3, 3, 1, 0};
  std::vector<float> img(15);  // needs 16
  std::vector<float> col(static_cast<std::size_t>(g.col_rows() * g.col_cols()));
  EXPECT_THROW(im2col(g, img, col), InvalidArgument);
}

}  // namespace
}  // namespace splitmed
