// Golden regression test: a fixed-seed split-training run must reproduce an
// exact per-round wire-byte series and a quantized loss/accuracy
// fingerprint. Catches any silent change to the wire format, the byte
// accounting, message ordering, RNG consumption, or the math — the
// determinism contract of docs/PROTOCOL.md, pinned to concrete numbers.
//
// The byte series is compared exactly (integers; platform-independent by
// construction). Losses and accuracies go through coarse quantization
// (1/32 resolution) so the fingerprint tolerates last-ulp libm differences
// across platforms while still catching real numerical drift.
//
// If an INTENDED change shifts these numbers (e.g. a wire-format revision),
// rerun the test: on mismatch it prints the full actual series in
// copy-pasteable form. Update the goldens in the same commit as the change
// and say why in the commit message.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <filesystem>
#include <functional>
#include <sstream>
#include <vector>

#include "src/core/trainer.hpp"
#include "src/data/synthetic_cifar.hpp"
#include "src/models/factory.hpp"

namespace splitmed {
namespace {

core::ModelBuilder builder() {
  return [] {
    models::FactoryConfig cfg;
    cfg.name = "mlp";
    cfg.image_size = 8;
    cfg.num_classes = 4;
    return models::build_model(cfg);
  };
}

/// The fixed-seed reference run. `tweak` mutates the config after the golden
/// settings are applied — used to assert that a feature (e.g. observability)
/// is bitwise inert: the tweaked run must still match the pinned fingerprint.
metrics::TrainReport golden_run(
    const std::function<void(core::SplitConfig&)>& tweak = nullptr) {
  data::SyntheticCifarOptions opt;
  opt.num_examples = 96;
  opt.num_classes = 4;
  opt.image_size = 8;
  opt.noise_stddev = 0.1F;
  opt.seed = 42;
  const data::SyntheticCifar train(opt);
  opt.num_examples = 32;
  opt.index_offset = 96;
  const data::SyntheticCifar test(opt);

  Rng prng(1);
  const auto partition = data::partition_iid(train.size(), 3, prng);
  core::SplitConfig cfg;
  cfg.total_batch = 12;
  cfg.rounds = 10;
  cfg.eval_every = 1;  // one curve point per round = per-round byte series
  cfg.sgd.learning_rate = 0.02F;
  cfg.sgd.momentum = 0.5F;
  cfg.seed = 123;
  if (tweak) tweak(cfg);
  core::SplitTrainer trainer(builder(), train, partition, test, cfg);
  metrics::TrainReport report = trainer.run();
  // A golden run is fault-free: no fault counter may move and every wire
  // byte is goodput.
  EXPECT_EQ(trainer.network().stats().retransmits(), 0U);
  EXPECT_EQ(trainer.network().stats().dropped(), 0U);
  EXPECT_EQ(trainer.network().stats().corrupted(), 0U);
  EXPECT_EQ(trainer.network().stats().duplicates(), 0U);
  EXPECT_EQ(trainer.network().stats().goodput_bytes(),
            trainer.network().stats().total_bytes());
  return report;
}

long quantize(double v) { return std::lround(v * 32.0); }

// The pinned fingerprint. Regenerate from the failure printout below.
const std::vector<std::uint64_t> kGoldenBytes = {
    13248,  26496,  39744,  52992,  66240,
    79488,  92736,  105984, 119232, 132480};
const std::vector<long> kGoldenLoss = {64, 44, 35, 33, 19, 26, 14, 15, 8, 14};
const std::vector<long> kGoldenAcc = {12, 19, 20, 22, 21, 28, 29, 31, 31, 32};

TEST(GoldenCurve, FixedSeedRunMatchesFingerprint) {
  const auto report = golden_run();
  ASSERT_EQ(report.curve.size(), 10U);

  std::vector<std::uint64_t> bytes;
  std::vector<long> loss;
  std::vector<long> acc;
  for (const auto& p : report.curve) {
    bytes.push_back(p.cumulative_bytes);
    loss.push_back(quantize(p.train_loss));
    acc.push_back(quantize(p.test_accuracy));
  }

  EXPECT_EQ(bytes, kGoldenBytes);
  EXPECT_EQ(loss, kGoldenLoss);
  EXPECT_EQ(acc, kGoldenAcc);
  EXPECT_EQ(report.total_bytes, kGoldenBytes.back());
  EXPECT_EQ(report.skipped_steps, 0);

  if (::testing::Test::HasFailure()) {
    const auto dump = [](const char* name, const auto& v) {
      std::ostringstream os;
      os << name << " = {";
      for (std::size_t i = 0; i < v.size(); ++i) {
        os << (i ? ", " : "") << v[i];
      }
      os << "};";
      return os.str();
    };
    ADD_FAILURE() << "golden fingerprint mismatch — actual series:\n"
                  << dump("kGoldenBytes", bytes) << "\n"
                  << dump("kGoldenLoss", loss) << "\n"
                  << dump("kGoldenAcc", acc);
  }
}

TEST(GoldenCurve, ByteSeriesIsReproducible) {
  // Two identical runs produce identical byte series and bit-identical
  // curves — the fingerprint above is stable, not flaky.
  const auto r1 = golden_run();
  const auto r2 = golden_run();
  ASSERT_EQ(r1.curve.size(), r2.curve.size());
  for (std::size_t i = 0; i < r1.curve.size(); ++i) {
    EXPECT_EQ(r1.curve[i].cumulative_bytes, r2.curve[i].cumulative_bytes);
    EXPECT_EQ(r1.curve[i].train_loss, r2.curve[i].train_loss);
    EXPECT_EQ(r1.curve[i].test_accuracy, r2.curve[i].test_accuracy);
    EXPECT_EQ(r1.curve[i].sim_seconds, r2.curve[i].sim_seconds);
  }
}

TEST(GoldenCurve, TracingIsBitwiseInert) {
  // The observability contract (docs/OBSERVABILITY.md): tracing at full
  // detail, with metrics and the flight recorder active, changes NOTHING
  // about the run — same bytes, same quantized loss/accuracy, against the
  // same pinned fingerprint the un-instrumented run above matches.
  namespace fs = std::filesystem;
  const fs::path trace = fs::path(::testing::TempDir()) / "golden_trace.json";
  const fs::path prom = fs::path(::testing::TempDir()) / "golden_metrics.prom";
  const auto report = golden_run([&](core::SplitConfig& cfg) {
    cfg.obs.enabled = true;
    cfg.obs.detail = 2;  // per-layer nn spans — the heaviest setting
    cfg.obs.trace_path = trace.string();
    cfg.obs.metrics_path = prom.string();
  });
  ASSERT_EQ(report.curve.size(), 10U);
  std::vector<std::uint64_t> bytes;
  std::vector<long> loss;
  std::vector<long> acc;
  for (const auto& p : report.curve) {
    bytes.push_back(p.cumulative_bytes);
    loss.push_back(quantize(p.train_loss));
    acc.push_back(quantize(p.test_accuracy));
  }
  EXPECT_EQ(bytes, kGoldenBytes);
  EXPECT_EQ(loss, kGoldenLoss);
  EXPECT_EQ(acc, kGoldenAcc);
  // The instrumented run also actually produced its outputs.
  EXPECT_TRUE(fs::exists(trace));
  EXPECT_TRUE(fs::exists(prom));
  fs::remove(trace);
  fs::remove(prom);
}

TEST(GoldenCurve, EnvelopeFramingOverheadIsPinned) {
  // The wire format: 28 header bytes + payload (docs/PROTOCOL.md). Changing
  // this breaks every recorded byte curve; change it consciously.
  Envelope env;
  EXPECT_EQ(env.wire_bytes(), 28U);
  env.payload.resize(100);
  EXPECT_EQ(env.wire_bytes(), 128U);
  EXPECT_EQ(Envelope::kCrcTrailerBytes, 4U);
}

}  // namespace
}  // namespace splitmed
