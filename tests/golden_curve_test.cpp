// Golden regression test: a fixed-seed split-training run must reproduce an
// exact per-round wire-byte series and a quantized loss/accuracy
// fingerprint. Catches any silent change to the wire format, the byte
// accounting, message ordering, RNG consumption, or the math — the
// determinism contract of docs/PROTOCOL.md, pinned to concrete numbers.
//
// The byte series is compared exactly (integers; platform-independent by
// construction). Losses and accuracies go through coarse quantization
// (1/32 resolution) so the fingerprint tolerates last-ulp libm differences
// across platforms while still catching real numerical drift.
//
// If an INTENDED change shifts these numbers (e.g. a wire-format revision),
// rerun the test: on mismatch it prints the full actual series in
// copy-pasteable form. Update the goldens in the same commit as the change
// and say why in the commit message.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <filesystem>
#include <functional>
#include <sstream>
#include <vector>

#include "src/common/error.hpp"
#include "src/core/trainer.hpp"
#include "src/data/synthetic_cifar.hpp"
#include "src/models/factory.hpp"
#include "src/nn/plan.hpp"

namespace splitmed {
namespace {

core::ModelBuilder builder() {
  return [] {
    models::FactoryConfig cfg;
    cfg.name = "mlp";
    cfg.image_size = 8;
    cfg.num_classes = 4;
    return models::build_model(cfg);
  };
}

/// The fixed-seed reference run. `tweak` mutates the config after the golden
/// settings are applied — used to assert that a feature (e.g. observability)
/// is bitwise inert: the tweaked run must still match the pinned fingerprint.
metrics::TrainReport golden_run(
    const std::function<void(core::SplitConfig&)>& tweak = nullptr) {
  data::SyntheticCifarOptions opt;
  opt.num_examples = 96;
  opt.num_classes = 4;
  opt.image_size = 8;
  opt.noise_stddev = 0.1F;
  opt.seed = 42;
  const data::SyntheticCifar train(opt);
  opt.num_examples = 32;
  opt.index_offset = 96;
  const data::SyntheticCifar test(opt);

  Rng prng(1);
  const auto partition = data::partition_iid(train.size(), 3, prng);
  core::SplitConfig cfg;
  cfg.total_batch = 12;
  cfg.rounds = 10;
  cfg.eval_every = 1;  // one curve point per round = per-round byte series
  cfg.sgd.learning_rate = 0.02F;
  cfg.sgd.momentum = 0.5F;
  cfg.seed = 123;
  if (tweak) tweak(cfg);
  core::SplitTrainer trainer(builder(), train, partition, test, cfg);
  metrics::TrainReport report = trainer.run();
  // A golden run is fault-free: no fault counter may move and every wire
  // byte is goodput.
  EXPECT_EQ(trainer.network().stats().retransmits(), 0U);
  EXPECT_EQ(trainer.network().stats().dropped(), 0U);
  EXPECT_EQ(trainer.network().stats().corrupted(), 0U);
  EXPECT_EQ(trainer.network().stats().duplicates(), 0U);
  EXPECT_EQ(trainer.network().stats().goodput_bytes(),
            trainer.network().stats().total_bytes());
  return report;
}

long quantize(double v) { return std::lround(v * 32.0); }

// The pinned fingerprint. Regenerate from the failure printout below.
// These are the seed repo's kF32 numbers — the codec tag rides in the
// always-zero high byte of the rank word, so introducing the tagged wire
// format must NOT move them.
const std::vector<std::uint64_t> kGoldenBytes = {
    13248,  26496,  39744,  52992,  66240,
    79488,  92736,  105984, 119232, 132480};
const std::vector<long> kGoldenLoss = {64, 44, 35, 33, 19, 26, 14, 15, 8, 14};
const std::vector<long> kGoldenAcc = {12, 19, 20, 22, 21, 28, 29, 31, 31, 32};

/// Extracts the (bytes, quantized loss, quantized accuracy) series and, on
/// mismatch against the pins, prints the actual series copy-pasteable.
void expect_fingerprint(const metrics::TrainReport& report,
                        const std::vector<std::uint64_t>& golden_bytes,
                        const std::vector<long>& golden_loss,
                        const std::vector<long>& golden_acc,
                        const char* tag) {
  std::vector<std::uint64_t> bytes;
  std::vector<long> loss;
  std::vector<long> acc;
  for (const auto& p : report.curve) {
    bytes.push_back(p.cumulative_bytes);
    loss.push_back(quantize(p.train_loss));
    acc.push_back(quantize(p.test_accuracy));
  }
  EXPECT_EQ(bytes, golden_bytes) << tag;
  EXPECT_EQ(loss, golden_loss) << tag;
  EXPECT_EQ(acc, golden_acc) << tag;
  if (::testing::Test::HasFailure()) {
    const auto dump = [](const char* name, const auto& v) {
      std::ostringstream os;
      os << name << " = {";
      for (std::size_t i = 0; i < v.size(); ++i) os << (i ? ", " : "") << v[i];
      os << "};";
      return os.str();
    };
    ADD_FAILURE() << tag << " fingerprint mismatch — actual series:\n"
                  << dump("Bytes", bytes) << "\n"
                  << dump("Loss", loss) << "\n"
                  << dump("Acc", acc);
  }
}

// Pinned per-codec golden curves for the lossy wire codecs. Same fixed-seed
// run as kGoldenBytes, only SplitConfig::codec differs — the lossy paths are
// deterministic and regression-locked exactly like the f32 wire.
const std::vector<std::uint64_t> kGoldenF16Bytes = {
    7104,  14208, 21312, 28416, 35520,
    42624, 49728, 56832, 63936, 71040};
const std::vector<long> kGoldenF16Loss = {64, 44, 35, 33, 19,
                                          26, 14, 15, 8,  14};
const std::vector<long> kGoldenF16Acc = {12, 19, 20, 22, 21,
                                         28, 29, 31, 31, 32};
const std::vector<std::uint64_t> kGoldenI8Bytes = {
    4056,  8112,  12168, 16224, 20280,
    24336, 28392, 32448, 36504, 40560};
const std::vector<long> kGoldenI8Loss = {64, 45, 35, 33, 20,
                                         26, 14, 16, 8,  15};
const std::vector<long> kGoldenI8Acc = {12, 20, 19, 20, 21,
                                        28, 29, 31, 30, 32};

TEST(GoldenCurve, FixedSeedRunMatchesFingerprint) {
  const auto report = golden_run();
  ASSERT_EQ(report.curve.size(), 10U);

  std::vector<std::uint64_t> bytes;
  std::vector<long> loss;
  std::vector<long> acc;
  for (const auto& p : report.curve) {
    bytes.push_back(p.cumulative_bytes);
    loss.push_back(quantize(p.train_loss));
    acc.push_back(quantize(p.test_accuracy));
  }

  EXPECT_EQ(bytes, kGoldenBytes);
  EXPECT_EQ(loss, kGoldenLoss);
  EXPECT_EQ(acc, kGoldenAcc);
  EXPECT_EQ(report.total_bytes, kGoldenBytes.back());
  EXPECT_EQ(report.skipped_steps, 0);

  if (::testing::Test::HasFailure()) {
    const auto dump = [](const char* name, const auto& v) {
      std::ostringstream os;
      os << name << " = {";
      for (std::size_t i = 0; i < v.size(); ++i) {
        os << (i ? ", " : "") << v[i];
      }
      os << "};";
      return os.str();
    };
    ADD_FAILURE() << "golden fingerprint mismatch — actual series:\n"
                  << dump("kGoldenBytes", bytes) << "\n"
                  << dump("kGoldenLoss", loss) << "\n"
                  << dump("kGoldenAcc", acc);
  }
}

TEST(GoldenCurve, PlannerOffMatchesGoldens) {
  // The execution planner is ON by default, so the pinned fingerprints
  // above already certify the FUSED path (the golden MLP trains through
  // fused linear→relu groups). This case certifies the other direction:
  // turning the planner OFF reproduces the exact same numbers — fusion is
  // bitwise inert, not merely "close".
  nn::set_planner_enabled(false);
  const auto report = golden_run();
  nn::set_planner_enabled(true);
  expect_fingerprint(report, kGoldenBytes, kGoldenLoss, kGoldenAcc,
                     "planner off");
}

TEST(GoldenCurve, ByteSeriesIsReproducible) {
  // Two identical runs produce identical byte series and bit-identical
  // curves — the fingerprint above is stable, not flaky.
  const auto r1 = golden_run();
  const auto r2 = golden_run();
  ASSERT_EQ(r1.curve.size(), r2.curve.size());
  for (std::size_t i = 0; i < r1.curve.size(); ++i) {
    EXPECT_EQ(r1.curve[i].cumulative_bytes, r2.curve[i].cumulative_bytes);
    EXPECT_EQ(r1.curve[i].train_loss, r2.curve[i].train_loss);
    EXPECT_EQ(r1.curve[i].test_accuracy, r2.curve[i].test_accuracy);
    EXPECT_EQ(r1.curve[i].sim_seconds, r2.curve[i].sim_seconds);
  }
}

TEST(GoldenCurve, TracingIsBitwiseInert) {
  // The observability contract (docs/OBSERVABILITY.md): tracing at full
  // detail, with metrics and the flight recorder active, changes NOTHING
  // about the run — same bytes, same quantized loss/accuracy, against the
  // same pinned fingerprint the un-instrumented run above matches.
  namespace fs = std::filesystem;
  const fs::path trace = fs::path(::testing::TempDir()) / "golden_trace.json";
  const fs::path prom = fs::path(::testing::TempDir()) / "golden_metrics.prom";
  const fs::path attr =
      fs::path(::testing::TempDir()) / "golden_attribution.jsonl";
  const auto report = golden_run([&](core::SplitConfig& cfg) {
    cfg.obs.enabled = true;
    cfg.obs.detail = 2;  // per-layer nn spans — the heaviest setting
    cfg.obs.trace_path = trace.string();
    cfg.obs.metrics_path = prom.string();
    cfg.obs.attribution_path = attr.string();
  });
  ASSERT_EQ(report.curve.size(), 10U);
  std::vector<std::uint64_t> bytes;
  std::vector<long> loss;
  std::vector<long> acc;
  for (const auto& p : report.curve) {
    bytes.push_back(p.cumulative_bytes);
    loss.push_back(quantize(p.train_loss));
    acc.push_back(quantize(p.test_accuracy));
  }
  EXPECT_EQ(bytes, kGoldenBytes);
  EXPECT_EQ(loss, kGoldenLoss);
  EXPECT_EQ(acc, kGoldenAcc);
  // The instrumented run also actually produced its outputs.
  EXPECT_TRUE(fs::exists(trace));
  EXPECT_TRUE(fs::exists(prom));
  EXPECT_TRUE(fs::exists(attr));
  fs::remove(trace);
  fs::remove(prom);
  fs::remove(attr);
}

TEST(GoldenCurve, KF16FixedSeedRunMatchesFingerprint) {
  const auto report =
      golden_run([](core::SplitConfig& cfg) { cfg.codec = WireCodec::kF16; });
  expect_fingerprint(report, kGoldenF16Bytes, kGoldenF16Loss, kGoldenF16Acc,
                     "kGoldenF16");
}

TEST(GoldenCurve, KI8FixedSeedRunMatchesFingerprint) {
  const auto report =
      golden_run([](core::SplitConfig& cfg) { cfg.codec = WireCodec::kI8; });
  expect_fingerprint(report, kGoldenI8Bytes, kGoldenI8Loss, kGoldenI8Acc,
                     "kGoldenI8");
}

TEST(GoldenCurve, LossyCodecsAreThreadInvariant) {
  // The f16/i8 pack/unpack paths are integer-exact per element and carry no
  // cross-element state, so the substrate thread count must not move the
  // lossy fingerprints either (same contract the f32 wire already has).
  const auto f16 = golden_run([](core::SplitConfig& cfg) {
    cfg.codec = WireCodec::kF16;
    cfg.threads = 3;
  });
  expect_fingerprint(f16, kGoldenF16Bytes, kGoldenF16Loss, kGoldenF16Acc,
                     "kGoldenF16 (threads=3)");
  const auto i8 = golden_run([](core::SplitConfig& cfg) {
    cfg.codec = WireCodec::kI8;
    cfg.threads = 3;
  });
  expect_fingerprint(i8, kGoldenI8Bytes, kGoldenI8Loss, kGoldenI8Acc,
                     "kGoldenI8 (threads=3)");
}

TEST(GoldenCurve, CodecByteTotalsAreStrictlyOrdered) {
  // The point of the codecs: every round moves strictly fewer wire bytes
  // under f16 than f32, and fewer still under i8.
  ASSERT_EQ(kGoldenF16Bytes.size(), kGoldenBytes.size());
  ASSERT_EQ(kGoldenI8Bytes.size(), kGoldenBytes.size());
  for (std::size_t i = 0; i < kGoldenBytes.size(); ++i) {
    EXPECT_LT(kGoldenI8Bytes[i], kGoldenF16Bytes[i]) << "round " << i;
    EXPECT_LT(kGoldenF16Bytes[i], kGoldenBytes[i]) << "round " << i;
  }
}

TEST(GoldenCurve, CrossCodecCheckpointResumeIsBitwise) {
  // Checkpoint/resume under a lossy codec: a kI8 run interrupted at round 5
  // and resumed from disk reproduces the uninterrupted kI8 run bit for bit.
  // The manifest records the codec, so the resumed trainer re-negotiates the
  // same wire format without being told.
  namespace fs = std::filesystem;
  const fs::path dir = fs::path(::testing::TempDir()) / "golden_i8_ckpt";
  fs::remove_all(dir);

  const auto uninterrupted =
      golden_run([](core::SplitConfig& cfg) { cfg.codec = WireCodec::kI8; });

  (void)golden_run([&](core::SplitConfig& cfg) {
    cfg.codec = WireCodec::kI8;
    cfg.rounds = 5;
    cfg.checkpoint_every = 5;
    cfg.checkpoint_dir = dir.string();
  });
  const auto resumed = golden_run([&](core::SplitConfig& cfg) {
    cfg.codec = WireCodec::kI8;
    cfg.resume_from = dir.string();
  });

  ASSERT_EQ(resumed.curve.size(), uninterrupted.curve.size());
  for (std::size_t i = 0; i < resumed.curve.size(); ++i) {
    EXPECT_EQ(resumed.curve[i].cumulative_bytes,
              uninterrupted.curve[i].cumulative_bytes);
    EXPECT_EQ(resumed.curve[i].train_loss, uninterrupted.curve[i].train_loss);
    EXPECT_EQ(resumed.curve[i].test_accuracy,
              uninterrupted.curve[i].test_accuracy);
    EXPECT_EQ(resumed.curve[i].sim_seconds,
              uninterrupted.curve[i].sim_seconds);
  }
  EXPECT_EQ(resumed.total_bytes, uninterrupted.total_bytes);
  fs::remove_all(dir);
}

TEST(GoldenCurve, ResumeRefusesMismatchedCodec) {
  // A checkpoint saved under kI8 must not silently resume onto an f32 wire:
  // the byte curves would diverge from both codecs' goldens. The manifest
  // load rejects the mismatch outright.
  namespace fs = std::filesystem;
  const fs::path dir = fs::path(::testing::TempDir()) / "golden_mismatch_ckpt";
  fs::remove_all(dir);
  (void)golden_run([&](core::SplitConfig& cfg) {
    cfg.codec = WireCodec::kI8;
    cfg.rounds = 5;
    cfg.checkpoint_every = 5;
    cfg.checkpoint_dir = dir.string();
  });
  EXPECT_THROW(golden_run([&](core::SplitConfig& cfg) {
                 // codec left at the kF32 default — mismatch.
                 cfg.resume_from = dir.string();
               }),
               SerializationError);
  fs::remove_all(dir);
}

TEST(GoldenCurve, EnvelopeFramingOverheadIsPinned) {
  // The wire format: 28 header bytes + payload (docs/PROTOCOL.md). Changing
  // this breaks every recorded byte curve; change it consciously.
  Envelope env;
  EXPECT_EQ(env.wire_bytes(), 28U);
  env.payload.resize(100);
  EXPECT_EQ(env.wire_bytes(), 128U);
  EXPECT_EQ(Envelope::kCrcTrailerBytes, 4U);
}

}  // namespace
}  // namespace splitmed
