// Tests for privacy/: distance correlation properties and the reconstruction
// attack's qualitative behaviour (shallow linear cuts leak, deeper
// compressive cuts leak less).
#include <gtest/gtest.h>

#include "src/common/error.hpp"
#include "src/common/rng.hpp"
#include "src/nn/activations.hpp"
#include "src/nn/conv2d.hpp"
#include "src/nn/flatten.hpp"
#include "src/nn/linear.hpp"
#include "src/nn/pool.hpp"
#include "src/nn/sequential.hpp"
#include "src/privacy/distance_correlation.hpp"
#include "src/privacy/reconstruction.hpp"
#include "src/tensor/ops.hpp"

namespace splitmed {
namespace {

TEST(DistanceCorrelation, SelfIsOne) {
  Rng rng(1);
  const Tensor x = Tensor::normal(Shape{24, 10}, rng);
  EXPECT_NEAR(privacy::distance_correlation(x, x), 1.0, 1e-9);
}

TEST(DistanceCorrelation, AffineTransformIsOne) {
  Rng rng(2);
  const Tensor x = Tensor::normal(Shape{24, 10}, rng);
  Tensor y = ops::scale(x, 3.0F);
  for (auto& v : y.data()) v += 7.0F;
  EXPECT_NEAR(privacy::distance_correlation(x, y), 1.0, 1e-6);
}

TEST(DistanceCorrelation, IndependentIsWellBelowDependent) {
  // The empirical dCor of independent samples has a positive finite-sample
  // bias (~0.5 at n=64), so compare against the dependent case rather than
  // asserting near-zero.
  Rng rng(3);
  const Tensor x = Tensor::normal(Shape{64, 8}, rng);
  const Tensor y = Tensor::normal(Shape{64, 8}, rng);
  const double independent = privacy::distance_correlation(x, y);
  EXPECT_LT(independent, 0.7);
  EXPECT_GT(privacy::distance_correlation(x, x), independent + 0.25);
}

TEST(DistanceCorrelation, OrderedByDependence) {
  Rng rng(4);
  const Tensor x = Tensor::normal(Shape{48, 6}, rng);
  // y = x + noise at two noise levels: less noise -> higher dependence.
  Tensor y_low = x, y_high = x;
  for (auto& v : y_low.data()) v += 0.1F * rng.normal();
  for (auto& v : y_high.data()) v += 3.0F * rng.normal();
  EXPECT_GT(privacy::distance_correlation(x, y_low),
            privacy::distance_correlation(x, y_high));
}

TEST(DistanceCorrelation, ValidatesInputs) {
  const Tensor one_sample(Shape{1, 4});
  EXPECT_THROW(privacy::distance_correlation(one_sample, one_sample),
               InvalidArgument);  // needs >= 2 samples
  const Tensor four(Shape{4, 2});
  const Tensor five(Shape{5, 2});
  EXPECT_THROW(privacy::distance_correlation(four, five), InvalidArgument);
}

TEST(Reconstruction, WideLinearCutLeaksInputs) {
  // L1 = Flatten + overcomplete Linear: essentially invertible. The attack
  // should recover the inputs to low MSE.
  Rng rng(5);
  nn::Sequential l1;
  l1.emplace<nn::Flatten>();
  l1.emplace<nn::Linear>(16, 32, rng);

  Rng xr(6);
  const Tensor x = Tensor::normal(Shape{2, 1, 4, 4}, xr, 0.5F, 0.25F);
  privacy::ReconstructionOptions opt;
  opt.iterations = 400;
  const auto result = privacy::reconstruct_inputs(l1, x, opt);
  // Input variance is 0.0625; recovering to far below that = leakage.
  EXPECT_LT(result.input_mse, 0.01F);
  EXPECT_LT(result.activation_mse, 1e-4F);
  EXPECT_EQ(result.reconstruction.shape(), x.shape());
}

TEST(Reconstruction, CompressiveCutLeaksLess) {
  // Deep compressive L1 (conv + relu + pool + conv stride 2) destroys
  // information; the same attack should do clearly worse than on the wide
  // linear cut.
  Rng rng(7);
  nn::Sequential shallow;
  shallow.emplace<nn::Flatten>();
  shallow.emplace<nn::Linear>(64, 128, rng);

  nn::Sequential deep;
  deep.emplace<nn::Conv2d>(1, 2, 3, 1, 1, rng);
  deep.emplace<nn::ReLU>();
  deep.emplace<nn::MaxPool2d>(2);
  deep.emplace<nn::Conv2d>(2, 2, 3, 2, 1, rng);

  Rng xr(8);
  const Tensor x = Tensor::normal(Shape{2, 1, 8, 8}, xr, 0.5F, 0.25F);
  privacy::ReconstructionOptions opt;
  opt.iterations = 300;
  const auto shallow_result = privacy::reconstruct_inputs(shallow, x, opt);
  const auto deep_result = privacy::reconstruct_inputs(deep, x, opt);
  EXPECT_GT(deep_result.input_mse, 2.0F * shallow_result.input_mse);
}

TEST(Reconstruction, DoesNotCorruptL1State) {
  Rng rng(9);
  nn::Sequential l1;
  l1.emplace<nn::Flatten>();
  l1.emplace<nn::Linear>(16, 8, rng);
  const Tensor w_before = l1.parameters()[0]->value;

  Rng xr(10);
  const Tensor x = Tensor::normal(Shape{1, 1, 4, 4}, xr);
  privacy::ReconstructionOptions opt;
  opt.iterations = 50;
  privacy::reconstruct_inputs(l1, x, opt);

  EXPECT_EQ(ops::max_abs_diff(l1.parameters()[0]->value, w_before), 0.0F);
  EXPECT_EQ(ops::l2_norm(l1.parameters()[0]->grad), 0.0F);
}

TEST(Reconstruction, ValidatesOptions) {
  Rng rng(11);
  nn::Sequential l1;
  l1.emplace<nn::Flatten>();
  l1.emplace<nn::Linear>(4, 4, rng);
  privacy::ReconstructionOptions opt;
  opt.iterations = 0;
  const Tensor x(Shape{1, 1, 2, 2});
  EXPECT_THROW(privacy::reconstruct_inputs(l1, x, opt), InvalidArgument);
}

}  // namespace
}  // namespace splitmed
